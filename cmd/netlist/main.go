// Command netlist builds the gate-level DSP core (or the Figure-1 toy
// datapath) and exports it as structural Verilog — the interchange the
// paper's flow obtains from Design Compiler — along with a statistics
// and per-component fault-count summary.
//
//	netlist -core dsp    > dsp_core.v
//	netlist -core simple > simple_dsp.v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/simpledsp"
)

func main() {
	which := flag.String("core", "dsp", "which core to export: dsp or simple")
	branches := flag.Bool("branches", false, "insert fanout-branch buffers (fault-simulation netlist)")
	stats := flag.Bool("stats", false, "print statistics to stderr")
	obsCfg := obs.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()

	var n *logic.Netlist
	var name string
	var regions []string
	switch *which {
	case "dsp":
		c, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: *branches})
		if err != nil {
			fail(err)
		}
		n, name, regions = c.Netlist, "dsp_core", dspgate.ComponentRegions
	case "simple":
		sn, _, _, _, err := simpledsp.BuildGate()
		if err != nil {
			fail(err)
		}
		n, name, regions = sn, "simple_dsp", []string{"Mult", "ALU", "Acc"}
	default:
		fail(fmt.Errorf("unknown core %q", *which))
	}
	span := rt.Span("netlist/" + name)
	if err := logic.WriteVerilog(os.Stdout, n, name); err != nil {
		fail(err)
	}
	st := n.Stats()
	span.Add("nets", int64(st.Nets))
	span.Add("gates", int64(st.Gates))
	span.Add("dffs", int64(st.DFFs))
	span.End()
	if *stats {
		fmt.Fprintf(os.Stderr, "%s: %d nets, %d gates, %d DFFs, %d inputs, %d outputs, %d levels\n",
			name, st.Nets, st.Gates, st.DFFs, st.Inputs, st.Outputs, st.Levels)
		collapsed, _ := fault.Collapse(n, fault.AllFaults(n))
		fmt.Fprintf(os.Stderr, "collapsed stuck-at faults: %d\n", len(collapsed))
		for _, r := range regions {
			if fl := fault.RegionFaults(n, r); fl != nil {
				c, _ := fault.Collapse(n, fl)
				fmt.Fprintf(os.Stderr, "  %-12s %5d\n", r, len(c))
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netlist:", err)
	os.Exit(1)
}
