// Command metrics computes and prints the instruction-level testability
// metric tables: the paper's Table 1 (simple datapath) and Table 2 (the
// pipelined DSP core).
//
// Usage:
//
//	metrics -table 1
//	metrics -table 2 -ctrials 200000 -ogood 200
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simpledsp"
)

func main() {
	table := flag.Int("table", 2, "which table to compute: 1 (simple datapath) or 2 (DSP core)")
	ctrials := flag.Int("ctrials", 50000, "controllability trials per row")
	ogood := flag.Int("ogood", 100, "observability good runs per row (each spawns 2×n injections per component)")
	seed := flag.Int64("seed", 1, "measurement seed")
	obsCfg := obs.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()

	switch *table {
	case 1:
		span := rt.Span("metrics/table1")
		tab := simpledsp.BuildTable(simpledsp.Config{CTrials: *ctrials, OGoodRuns: *ogood, Seed: *seed})
		span.Add("rows", int64(len(tab.Rows)))
		span.End()
		fmt.Println("Table 1 — Controllability/Observability metrics, simple DSP datapath (C/O)")
		fmt.Println(tab.Render())
	case 2:
		span := rt.Span("metrics/table2")
		eng := metrics.NewEngine(metrics.Config{CTrials: *ctrials, OGoodRuns: *ogood, Seed: *seed})
		tab := eng.BuildTable()
		span.Add("rows", int64(len(tab.Rows)))
		span.Add("cols", int64(len(tab.Cols)))
		span.End()
		fmt.Println("Table 2 — Controllability/Observability metrics, pipelined DSP core (C,O; X = covered)")
		fmt.Printf("thresholds: Cθ=%.2f Oθ=%.2f\n\n", tab.CThreshold, tab.OThreshold)
		fmt.Println(tab.Render())
	default:
		fmt.Fprintf(os.Stderr, "metrics: unknown table %d\n", *table)
		os.Exit(2)
	}
}
