// Command faultsim fault-simulates a stimulus stream against a design
// from the registry (the gate-level DSP core by default) and reports
// stuck-at coverage, per-component breakdowns and an optional
// coverage-vs-vectors curve.
//
// -design selects the circuit: "dsp" (default), a generated family
// member like "fam/w8r4s1l1p2", or a bundled netlist like "bench/c432".
// The stream comes either from a self-test program file (assembler
// syntax, looped -iters times through the template architecture; dsp
// only) or from pseudorandom-BIST vectors (-bist; width-matched to the
// design's input port).
//
// Progress renders as a throttled status line on stderr; -trace writes
// the structured NDJSON event stream, -v adds span/summary lines,
// -cpuprofile captures the simulator's hot loops and -workers shards
// the fault list across cores (1 = exact serial path). Ctrl-C stops the
// run at the next segment boundary and still prints the partial summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/bist"
	"repro/internal/chaos"
	"repro/internal/designs"
	"repro/internal/dspgate"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/selftest"
)

func main() {
	designID := flag.String("design", "dsp", "design to simulate: dsp, fam/<params>, or bench/<name>")
	progPath := flag.String("prog", "", "self-test program file (assembler syntax; dsp design only)")
	iters := flag.Int("iters", 1000, "loop iterations through the program")
	useBist := flag.Bool("bist", false, "use raw pseudorandom LFSR vectors instead of a program")
	count := flag.Int("count", bist.FullPeriod, "number of BIST vectors with -bist")
	curve := flag.Bool("curve", false, "print a coverage-vs-vectors curve")
	quality := flag.Bool("quality", false, "grade all fault models (stuck-at, n-detect, transition, bridging, path delay)")
	seed := flag.Int64("seed", 1, "LFSR seed")
	deadline := flag.Duration("deadline", 0, "overall run deadline; the simulation stops at the next segment boundary and prints partial results (0 = none)")
	obsCfg := obs.Flags()
	chaosCfg := chaos.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()
	if err := chaosCfg.Arm(); err != nil {
		fail(err)
	}

	// The status line always renders; -v routes it through the runtime's
	// renderer (alongside span/summary lines), so only add one here when
	// -v is off.
	sink := rt.Sink()
	if !obsCfg.Verbose {
		sink = obs.Combine(sink, obs.NewRenderer(os.Stderr))
	}

	// Ctrl-C cancels at the next segment boundary; the partial result
	// still carries the curve and counts accumulated so far. -deadline
	// bounds the whole run the same way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	d, err := engine.GetDesign(*designID)
	if err != nil {
		fail(err)
	}

	var vecs fault.Vectors
	switch {
	case *useBist:
		if d.InstructionDriven() {
			vecs = bist.PseudorandomVectors(*count, uint64(*seed))
		} else {
			vecs = designs.PseudorandomVectors(len(d.Netlist.Inputs()), *count, uint64(*seed))
		}
	case *progPath != "":
		if !d.InstructionDriven() {
			fail(fmt.Errorf("design %s has no instruction port; -prog needs -design dsp", d.ID))
		}
		src, err := os.ReadFile(*progPath)
		if err != nil {
			fail(err)
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		vecs = selftest.Expand(&selftest.Program{Loop: prog},
			selftest.ExpandOptions{Iterations: *iters, Seed1: uint64(*seed)})
	default:
		fail(fmt.Errorf("need -prog or -bist"))
	}

	fmt.Printf("design %s (hash %s): %+v\n", d.ID, d.Hash, d.Netlist.Stats())
	fmt.Printf("simulating %d vectors...\n", vecs.Len())
	if *quality {
		rep, err := fault.Quality(d.Netlist, vecs, fault.QualityOptions{
			NDetect:      5,
			BridgeSample: 50,
			PathPairs:    200,
			Seed:         *seed,
			Sink:         sink,
		})
		if err != nil {
			fail(err)
		}
		fmt.Print(rep)
		return
	}
	res, err := engine.Simulate(d.Netlist, vecs, engine.SimOptions{
		SimOptions: fault.SimOptions{
			Faults: d.Faults,
			Sink:   sink,
			Ctx:    ctx,
		},
		Workers: obsCfg.Workers,
	})
	if err != nil {
		fail(err)
	}
	if res.Interrupted {
		fmt.Printf("\ninterrupted after %d of %d vectors — partial results:\n",
			res.Cycles, vecs.Len())
	}
	fmt.Printf("\nfault coverage: %.2f%% (%d/%d collapsed faults)\n",
		100*res.Coverage(), res.Detected(), len(res.Faults))
	// Component regions are a property of the DSP core's build; other
	// designs report the flat total only.
	if d.InstructionDriven() {
		fmt.Println("\nper-component coverage:")
		for _, region := range dspgate.ComponentRegions {
			det, tot := res.RegionCoverage(d.Netlist, region)
			if tot == 0 {
				continue
			}
			fmt.Printf("  %-12s %6d faults  %6.2f%%\n", region, tot, 100*float64(det)/float64(tot))
		}
	}
	if *curve {
		fmt.Println("\ncoverage vs vectors:")
		for v := 1024; v <= res.Cycles; v *= 2 {
			fmt.Printf("  %8d  %.2f%%\n", v, 100*res.CoverageAt(v))
		}
		fmt.Printf("  %8d  %.2f%%\n", res.Cycles, 100*res.Coverage())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
