package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/engine"
)

// TestRunList drives the -list mode against a live /v1 server: the
// table must walk every page of GET /v1/jobs in submission order and
// honour the kind filter.
func TestRunList(t *testing.T) {
	q := engine.NewQueue(engine.QueueOptions{
		Workers: 1, MaxPending: 16,
		Exec: func(ctx context.Context, spec engine.JobSpec, update func(engine.Progress)) (*engine.JobResult, error) {
			return &engine.JobResult{Faults: 10, Detected: 9, Coverage: 0.9, Cycles: 42}, nil
		},
	})
	q.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	}()
	srv := httptest.NewServer(engine.NewServerWith(q, engine.ServerOptions{}))
	defer srv.Close()

	specs := []api.JobSpec{
		{Kind: api.JobFaultSim, Vectors: api.VectorSource{Kind: api.VecBIST, Count: 8}},
		{Kind: api.JobGaSearch, Ga: &api.GaSpec{Population: 4, Generations: 2}},
		{Kind: api.JobFaultSim, Vectors: api.VectorSource{Kind: api.VecBIST, Count: 8}},
	}
	c := client.New(srv.URL, client.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var ids []string
	for _, s := range specs {
		job, err := c.SubmitJob(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
		if _, err := c.WaitResult(ctx, job.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	if err := runList(ctx, c, "", "", &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range ids {
		if !strings.Contains(got, id) {
			t.Fatalf("unfiltered listing missing %s:\n%s", id, got)
		}
	}
	if strings.Index(got, ids[0]) > strings.Index(got, ids[1]) {
		t.Fatalf("listing out of submission order:\n%s", got)
	}
	if !strings.Contains(got, "(3 jobs)") || !strings.Contains(got, "90.00%") {
		t.Fatalf("listing missing totals or coverage:\n%s", got)
	}

	out.Reset()
	if err := runList(ctx, c, "ga_search", "completed", &out); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, ids[1]) || strings.Contains(got, ids[0]) || !strings.Contains(got, "(1 jobs)") {
		t.Fatalf("kind+state filter leaked:\n%s", got)
	}

	if err := runList(ctx, c, "bogus", "", &out); err == nil {
		t.Fatal("bogus kind filter did not error")
	}
}
