package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/api"
	"repro/internal/client"
)

// runList renders the coordinator's job table — GET /v1/jobs walked
// page by page through client.ListJobs — optionally narrowed by kind
// and state.
func runList(ctx context.Context, c *client.Client, kind, state string, out io.Writer) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tKIND\tSTATE\tCOVERAGE\tERROR")
	n := 0
	err := c.ListJobs(ctx, client.ListOptions{
		Kind:  api.JobKind(kind),
		State: api.JobState(state),
	}, func(j api.Job) bool {
		cov := "-"
		if j.Result != nil {
			cov = fmt.Sprintf("%.2f%%", j.Result.Coverage*100)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", j.ID, j.Spec.Kind, j.State, cov, j.Error)
		n++
		return true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "(%d jobs)\n", n)
	return tw.Flush()
}

// runEvolve submits a ga_search job through the typed client helper
// and hands off to follow mode for live progress and the final result.
func runEvolve(coordinator, design string, g api.GaSpec) error {
	c := client.New(coordinator, client.Options{})
	job, err := c.SubmitGA(context.Background(), design, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sbstd: submitted %s (ga_search, population %d, generations %d)\n",
		job.ID, g.Population, g.Generations)
	return follow(coordinator, job.ID)
}
