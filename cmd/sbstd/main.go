// Command sbstd is the self-test campaign server: a long-running HTTP
// daemon that queues fault-simulation, n-detect, sequential-ATPG,
// composite experiment, campaign-matrix, online-burst and ga_search
// jobs and runs them on a worker pool, sharding each fault simulation
// across cores. Each job's "design" field selects the simulated
// circuit from the design registry — the gate-level DSP core by
// default, a generated family member ("fam/w8r4s1l1p2"), or a bundled
// .bench netlist ("bench/c432"); GET /v1/meta lists the bundled IDs. A
// campaign_matrix job sweeps N designs × M stimulus schemes and rolls
// the per-cell coverage into one table; a ga_search job evolves a
// self-test program skeleton toward maximum fault coverage per cycle.
// The API is served under /v1 only — the historical unversioned routes
// answer 404 with a Link header to their successor.
//
//	sbstd -addr :8321 -checkpoint campaigns.json
//
//	curl -X POST localhost:8321/v1/jobs \
//	     -d '{"kind":"fault_sim","vectors":{"kind":"bist","count":20000}}'
//	curl -X POST localhost:8321/v1/jobs \
//	     -d '{"kind":"fault_sim","design":"bench/c432","vectors":{"kind":"bist","count":4096}}'
//	curl -X POST localhost:8321/v1/jobs \
//	     -d '{"kind":"campaign_matrix","matrix":{"designs":["dsp","bench/s27"],"schemes":[{"kind":"bist","count":1024}]}}'
//	curl -X POST localhost:8321/v1/jobs \
//	     -d '{"kind":"ga_search","ga":{"population":12,"generations":6,"seed":7}}'
//	curl localhost:8321/v1/jobs/job-0001            # state + progress
//	curl 'localhost:8321/v1/jobs?kind=ga_search&limit=10'   # filtered page
//	curl localhost:8321/v1/jobs/job-0001/result     # coverage numbers
//	curl localhost:8321/v1/metrics                  # Prometheus exposition
//	curl -N localhost:8321/v1/jobs/job-0001/events  # SSE live progress
//
// Client modes turn the binary into a live consumer of a running
// coordinator: -follow streams one job's SSE events and renders
// progress at ~1 Hz, printing the final result as JSON on stdout;
// -list walks GET /v1/jobs (cursor pagination under the hood) with
// optional -kind/-state filters; -evolve submits a ga_search through
// the typed client and follows it to the evolved program.
//
//	sbstd -follow job-0001 -coordinator http://localhost:8321
//	sbstd -list -kind ga_search -coordinator http://localhost:8321
//	sbstd -evolve -ga-population 12 -ga-generations 6 -coordinator http://localhost:8321
//
// SIGTERM/SIGINT drains gracefully: submissions get 503, running jobs
// finish (until -drain-timeout, after which they stop at the next
// segment boundary and return to the queue), and the final checkpoint
// captures every job so a restart with the same -checkpoint resumes the
// campaign. The NDJSON trace buffer is flushed the moment the drain
// begins, so a process killed mid-drain has persisted its tail events.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8321", "HTTP listen address")
	queueWorkers := flag.Int("queue-workers", 2, "concurrent job executors")
	maxPending := flag.Int("max-pending", 64, "bounded pending-job buffer")
	maxAttempts := flag.Int("max-attempts", 2, "attempts per job before a retryable failure fails it")
	checkpoint := flag.String("checkpoint", "", "JSON state file for checkpoint/resume")
	journalPath := flag.String("journal", "", "write-ahead job journal replayed on top of -checkpoint; makes submits and results survive kill -9")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "forced-stop deadline after SIGTERM")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-time bound (0 = none; spec deadline_sec can tighten)")
	stuckTimeout := flag.Duration("stuck-timeout", 10*time.Minute, "cancel+retry a job publishing no progress for this long (0 = off)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "HTTP request handler timeout (0 = none)")
	maxInflight := flag.Int("max-inflight", 128, "concurrent HTTP requests before load shedding (0 = unlimited)")
	distributed := flag.Bool("distributed", false, "run as coordinator: fault campaigns become leased work units for sbst-worker processes")
	units := flag.Int("units", 8, "work units per distributed campaign (ignored without -distributed)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat (ignored without -distributed)")
	unitAttempts := flag.Int("unit-attempts", 3, "grants per work unit before the campaign fails (ignored without -distributed)")
	followJob := flag.String("follow", "", "follow mode: stream this job's SSE events from -coordinator and exit with its result")
	coordinator := flag.String("coordinator", "http://localhost:8321", "coordinator base URL for the client modes (-follow, -list, -evolve)")
	listMode := flag.Bool("list", false, "list mode: print the coordinator's job table and exit")
	listKind := flag.String("kind", "", "with -list: only jobs of this kind (e.g. ga_search)")
	listState := flag.String("state", "", "with -list: only jobs in this state (queued|running|completed|failed)")
	evolveMode := flag.Bool("evolve", false, "evolve mode: submit a ga_search to -coordinator and follow it")
	gaDesign := flag.String("design", "", "with -evolve: design ID (default: the DSP core)")
	gaPopulation := flag.Int("ga-population", 0, "with -evolve: GA population size (0 = server default)")
	gaGenerations := flag.Int("ga-generations", 0, "with -evolve: GA generations (0 = server default)")
	gaSeed := flag.Int64("ga-seed", 0, "with -evolve: GA random seed (0 = server default)")
	obsCfg := obs.Flags()
	chaosCfg := chaos.Flags()
	flag.Parse()

	if *followJob != "" {
		if err := follow(*coordinator, *followJob); err != nil {
			fail(nil, err)
		}
		return
	}
	if *listMode {
		c := client.New(*coordinator, client.Options{})
		if err := runList(context.Background(), c, *listKind, *listState, os.Stdout); err != nil {
			fail(nil, err)
		}
		return
	}
	if *evolveMode {
		err := runEvolve(*coordinator, *gaDesign, api.GaSpec{
			Population:  *gaPopulation,
			Generations: *gaGenerations,
			Seed:        *gaSeed,
		})
		if err != nil {
			fail(nil, err)
		}
		return
	}

	rt := obsCfg.MustStart()
	defer rt.Close()
	if err := chaosCfg.Arm(); err != nil {
		fail(rt, err)
	}

	events := engine.NewJobEventBroker()
	execCfg := engine.ExecConfig{
		Workers: obsCfg.Workers,
		Sink:    rt.Sink(),
	}
	exec := engine.NewExecutor(execCfg)

	// The write-ahead journal opens first: its replayed records stack on
	// top of the checkpoint in Recover, and a torn tail from a previous
	// kill -9 is truncated here, not treated as fatal.
	var journal *engine.Journal
	var journalRecs []engine.JournalRecord
	if *journalPath != "" {
		var err error
		journal, journalRecs, err = engine.OpenJournal(*journalPath)
		if err != nil {
			fail(rt, err)
		}
		defer journal.Close()
	}

	var pool *engine.LeasePool
	var distState func(string) *engine.DistState
	if *distributed {
		pool = engine.NewLeasePool(engine.PoolOptions{
			TTL:          *leaseTTL,
			UnitAttempts: *unitAttempts,
			Sink:         rt.Sink(),
			Events:       events,
			Journal:      journal,
		})
		defer pool.Close()
		exec = engine.NewDistExecutor(execCfg, pool, engine.DistOptions{Units: *units})
		distState = pool.SnapshotJob
	}

	q := engine.NewQueue(engine.QueueOptions{
		Workers:      *queueWorkers,
		MaxPending:   *maxPending,
		MaxAttempts:  *maxAttempts,
		Exec:         exec,
		Checkpoint:   *checkpoint,
		Sink:         rt.Sink(),
		JobTimeout:   *jobTimeout,
		StuckTimeout: *stuckTimeout,
		DistState:    distState,
		Events:       events,
		Journal:      journal,
	})
	if *checkpoint != "" || journal != nil {
		switch err := q.Recover(*checkpoint, journalRecs); {
		case err == nil:
			resumed := 0
			for _, j := range q.Jobs() {
				if j.State == engine.JobQueued {
					resumed++
				}
			}
			if len(q.Jobs()) > 0 || len(journalRecs) > 0 {
				src := *checkpoint
				switch {
				case src == "":
					src = *journalPath
				case *journalPath != "":
					src += " + " + *journalPath
				}
				fmt.Fprintf(os.Stderr, "sbstd: recovered %d jobs (%d resumable, %d journal records) from %s\n",
					len(q.Jobs()), resumed, len(journalRecs), src)
			}
		case errors.Is(err, fs.ErrNotExist):
			// Fresh campaign; the file appears at the first checkpoint.
		case errors.Is(err, engine.ErrCheckpointCorrupt):
			// Neither generation was loadable. Starting an empty campaign
			// is the graceful option — the corrupt files stay on disk for
			// post-mortem until the next successful checkpoint rotates
			// them out.
			fmt.Fprintf(os.Stderr, "sbstd: warning: %v; starting fresh\n", err)
		default:
			fail(rt, err)
		}
	}
	q.Start()

	srv := &http.Server{Addr: *addr, Handler: engine.NewServerWith(q, engine.ServerOptions{
		RequestTimeout: *requestTimeout,
		MaxInflight:    *maxInflight,
		Pool:           pool,
		Events:         events,
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sbstd: listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fail(rt, err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "sbstd: draining...")
	// Persist the trace tail now: if the drain is cut short by SIGKILL,
	// everything emitted up to this point is already on disk.
	if err := rt.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "sbstd: trace flush:", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sbstd: http shutdown:", err)
	}
	if err := q.Drain(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sbstd: drain:", err)
	}
	fmt.Fprintln(os.Stderr, "sbstd: drained")
}

// follow streams one job's SSE events and renders them at ~1 Hz: the
// progress frames drive the rewriting status line, state and lease
// frames print as permanent lines, and the final result lands on
// stdout as JSON (stderr carries only the rendering).
func follow(coordinator, jobID string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := client.New(coordinator, client.Options{})
	r := obs.NewRenderer(os.Stderr)
	res, err := c.Follow(ctx, jobID, 0, func(ev api.JobEvent) {
		switch ev.Type {
		case api.JobEventProgress:
			if ev.Progress == nil {
				return
			}
			r.Emit(obs.Event{Type: obs.EventProgress, Name: jobID, Fields: map[string]any{
				"done": ev.Progress.Done, "total": ev.Progress.Total,
				"detected": ev.Progress.Detected, "remaining": ev.Progress.Remaining,
				"coverage": ev.Progress.Coverage,
			}})
		case api.JobEventState:
			r.Emit(obs.Event{Type: obs.EventCounters, Name: jobID, Fields: map[string]any{
				"state": string(ev.State), "trace": ev.TraceID,
			}})
		case api.JobEventLease:
			if ev.Lease == nil {
				return
			}
			fields := map[string]any{"event": ev.Lease.Event, "unit": ev.Lease.Unit}
			if ev.Lease.WorkerID != "" {
				fields["worker"] = ev.Lease.WorkerID
			}
			if ev.Lease.Reason != "" {
				fields["reason"] = ev.Lease.Reason
			}
			r.Emit(obs.Event{Type: obs.EventCounters, Name: jobID + " lease", Fields: fields})
		}
	})
	if err != nil {
		return err
	}
	r.Emit(obs.Event{Type: obs.EventSummary, Name: jobID, Fields: map[string]any{
		"coverage": res.Coverage, "cycles": res.Cycles,
		"faults": res.Faults, "detected": res.Detected,
	}})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func fail(rt *obs.Runtime, err error) {
	rt.Close()
	fmt.Fprintln(os.Stderr, "sbstd:", err)
	os.Exit(1)
}
