// Command sbstd is the self-test campaign server: a long-running HTTP
// daemon that queues fault-simulation, n-detect, sequential-ATPG and
// composite experiment jobs against the gate-level DSP core and runs
// them on a worker pool, sharding each fault simulation across cores.
//
//	sbstd -addr :8321 -checkpoint campaigns.json
//
//	curl -X POST localhost:8321/jobs \
//	     -d '{"kind":"fault_sim","vectors":{"kind":"bist","count":20000}}'
//	curl localhost:8321/jobs/job-0001            # state + progress
//	curl localhost:8321/jobs/job-0001/result     # coverage numbers
//
// SIGTERM/SIGINT drains gracefully: submissions get 503, running jobs
// finish (until -drain-timeout, after which they stop at the next
// segment boundary and return to the queue), and the final checkpoint
// captures every job so a restart with the same -checkpoint resumes the
// campaign.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8321", "HTTP listen address")
	queueWorkers := flag.Int("queue-workers", 2, "concurrent job executors")
	maxPending := flag.Int("max-pending", 64, "bounded pending-job buffer")
	maxAttempts := flag.Int("max-attempts", 2, "attempts per job before a retryable failure fails it")
	checkpoint := flag.String("checkpoint", "", "JSON state file for checkpoint/resume")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "forced-stop deadline after SIGTERM")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-time bound (0 = none; spec deadline_sec can tighten)")
	stuckTimeout := flag.Duration("stuck-timeout", 10*time.Minute, "cancel+retry a job publishing no progress for this long (0 = off)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "HTTP request handler timeout (0 = none)")
	maxInflight := flag.Int("max-inflight", 128, "concurrent HTTP requests before load shedding (0 = unlimited)")
	distributed := flag.Bool("distributed", false, "run as coordinator: fault campaigns become leased work units for sbst-worker processes")
	units := flag.Int("units", 8, "work units per distributed campaign (ignored without -distributed)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat (ignored without -distributed)")
	unitAttempts := flag.Int("unit-attempts", 3, "grants per work unit before the campaign fails (ignored without -distributed)")
	obsCfg := obs.Flags()
	chaosCfg := chaos.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()
	if err := chaosCfg.Arm(); err != nil {
		fail(err)
	}

	execCfg := engine.ExecConfig{
		Workers: obsCfg.Workers,
		Sink:    rt.Sink(),
	}
	exec := engine.NewExecutor(execCfg)
	var pool *engine.LeasePool
	var distState func(string) *engine.DistState
	if *distributed {
		pool = engine.NewLeasePool(engine.PoolOptions{
			TTL:          *leaseTTL,
			UnitAttempts: *unitAttempts,
			Sink:         rt.Sink(),
		})
		defer pool.Close()
		exec = engine.NewDistExecutor(execCfg, pool, engine.DistOptions{Units: *units})
		distState = pool.SnapshotJob
	}

	q := engine.NewQueue(engine.QueueOptions{
		Workers:      *queueWorkers,
		MaxPending:   *maxPending,
		MaxAttempts:  *maxAttempts,
		Exec:         exec,
		Checkpoint:   *checkpoint,
		Sink:         rt.Sink(),
		JobTimeout:   *jobTimeout,
		StuckTimeout: *stuckTimeout,
		DistState:    distState,
	})
	if *checkpoint != "" {
		switch err := q.Restore(*checkpoint); {
		case err == nil:
			resumed := 0
			for _, j := range q.Jobs() {
				if j.State == engine.JobQueued {
					resumed++
				}
			}
			fmt.Fprintf(os.Stderr, "sbstd: restored %d jobs (%d resumable) from %s\n",
				len(q.Jobs()), resumed, *checkpoint)
		case errors.Is(err, fs.ErrNotExist):
			// Fresh campaign; the file appears at the first checkpoint.
		case errors.Is(err, engine.ErrCheckpointCorrupt):
			// Neither generation was loadable. Starting an empty campaign
			// is the graceful option — the corrupt files stay on disk for
			// post-mortem until the next successful checkpoint rotates
			// them out.
			fmt.Fprintf(os.Stderr, "sbstd: warning: %v; starting fresh\n", err)
		default:
			fail(err)
		}
	}
	q.Start()

	srv := &http.Server{Addr: *addr, Handler: engine.NewServerWith(q, engine.ServerOptions{
		RequestTimeout: *requestTimeout,
		MaxInflight:    *maxInflight,
		Pool:           pool,
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sbstd: listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "sbstd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sbstd: http shutdown:", err)
	}
	if err := q.Drain(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sbstd: drain:", err)
	}
	fmt.Fprintln(os.Stderr, "sbstd: drained")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sbstd:", err)
	os.Exit(1)
}
