// Command sbstgen runs the full self-test program generation flow
// (metrics table → Phase 1 → Phase 2) and prints the resulting loop in
// the paper's Figure-7 style, along with the derivation report. With
// -boost it also prints the Phase-3 frequency-boosted variant.
package main

import (
	"flag"
	"fmt"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
)

func main() {
	ctrials := flag.Int("ctrials", 30000, "controllability trials per metrics row")
	ogood := flag.Int("ogood", 50, "observability good runs per metrics row")
	seed := flag.Int64("seed", 1, "measurement seed")
	boost := flag.Bool("boost", false, "also print the Phase-3 frequency-boosted program")
	obsCfg := obs.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()

	eng := metrics.NewEngine(metrics.Config{CTrials: *ctrials, OGoodRuns: *ogood, Seed: *seed})
	span := rt.Span("sbstgen")
	gen := selftest.NewGenerator(eng).WithObs(span)
	prog, report := gen.Generate()
	span.End()

	fmt.Println("// Self-test program (loop body) — cf. paper Figure 7")
	fmt.Print(prog)
	fmt.Printf("\n%d instructions per iteration\n\n", prog.Len())
	fmt.Println(report.Summary())

	if *boost {
		boosted := selftest.Boost(prog,
			map[isa.Op]bool{isa.OpShift: true, isa.OpMacP: true, isa.OpMacM: true}, 1)
		fmt.Println("// Phase-3 frequency-boosted program")
		fmt.Print(boosted)
		fmt.Printf("\n%d instructions per iteration\n", boosted.Len())
	}
}
