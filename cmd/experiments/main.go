// Command experiments regenerates every table and figure of the paper's
// evaluation, printing paper-reported vs measured values in the format
// EXPERIMENTS.md records.
//
//	E1  Table 1   metrics table, simple datapath
//	E2  Table 2   metrics table, DSP core
//	E3  Table 3   Phase-1 covering result
//	E4  Figure 7  generated self-test program
//	E5  Sec 3.3   fault coverage of the base program (paper: 98.14% FC,
//	              98.33% TC at 6000 iterations = 204,000 vectors)
//	E6  Sec 3.4   shifter control-bit constraint study
//	E7  Sec 3.4/5 enhanced program: coverage and the vector count that
//	              matches the base program's full-run detection
//	              (paper: 27,346 vs 204,000)
//	E8  Sec 3.5   sequential ATPG baseline (paper: 8.51%)
//	E9  Sec 3.5   pseudorandom BIST baseline (all 131,071 LFSR vectors)
//
// -quick shrinks every workload for a fast smoke run; the defaults
// reproduce paper-scale settings. -metrics writes a consolidated
// machine-readable JSON file (per-experiment headline numbers, wall
// times and the global counter registry); -trace/-v/-cpuprofile are the
// shared observability bundle.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

type runContext struct {
	quick   bool
	out     *os.File
	sink    obs.Sink
	workers int
	// ctx carries the -deadline bound into every fault simulation; an
	// expired deadline stops the current campaign at the next segment
	// boundary and the experiment reports partial numbers.
	ctx context.Context
	// cur is the id of the experiment currently running; metric()
	// records headline numbers under it for the -metrics JSON report.
	cur     string
	metrics map[string]map[string]any
	// gaArtifact is E13's -ga-artifact output path ("" = don't write).
	gaArtifact string
}

func (rc *runContext) printf(format string, args ...any) {
	fmt.Printf(format, args...)
	if rc.out != nil {
		fmt.Fprintf(rc.out, format, args...)
	}
}

// metric records one headline number for the running experiment.
func (rc *runContext) metric(key string, value any) {
	if rc.metrics == nil || rc.cur == "" {
		return
	}
	m := rc.metrics[rc.cur]
	if m == nil {
		m = map[string]any{}
		rc.metrics[rc.cur] = m
	}
	m[key] = value
}

type experiment struct {
	id    string
	title string
	run   func(rc *runContext)
}

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	runSel := flag.String("run", "", "comma-separated experiment ids (e.g. E1,E5); empty = all")
	outPath := flag.String("out", "", "also append output to this file")
	metricsPath := flag.String("metrics", "", "write consolidated per-experiment metrics JSON to this file")
	gaArtifact := flag.String("ga-artifact", "", "write E13's self-describing GA-comparison JSON artifact to this file")
	deadline := flag.Duration("deadline", 0, "overall deadline for the whole run; expiring simulations stop at the next segment boundary and report partial numbers (0 = none)")
	obsCfg := obs.Flags()
	chaosCfg := chaos.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()
	if err := chaosCfg.Arm(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	rc := &runContext{quick: *quick, sink: rt.Sink(), workers: obsCfg.Workers, ctx: ctx,
		metrics: map[string]map[string]any{}, gaArtifact: *gaArtifact}
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		rc.out = f
	}

	experiments := []experiment{
		{"E1", "Table 1 — metrics table, simple datapath", runE1},
		{"E2", "Table 2 — metrics table, DSP core", runE2},
		{"E3", "Table 3 — Phase-1 covering", runE3},
		{"E4", "Figure 7 — generated self-test program", runE4},
		{"E5", "Sec 3.3 — base program fault coverage", runE5},
		{"E6", "Sec 3.4 — shifter control-bit constraints", runE6},
		{"E7", "Sec 3.4/3.5 — enhanced program", runE7},
		{"E8", "Sec 3.5 — sequential ATPG baseline", runE8},
		{"E9", "Sec 3.5 — pseudorandom BIST baseline", runE9},
		{"E10", "Sec 1 [4] — instruction-randomization (IRST) baseline", runE10},
		{"E11", "Sec 2.3 — LFSR2 register-rotation ablation", runE11},
		{"E12", "extension — at-speed transition-fault coverage", runE12},
		{"E13", "extension — evolved program (ga_search) vs Phase 1/2 vs raw BIST", runE13},
	}

	want := map[string]bool{}
	if *runSel != "" {
		for _, id := range strings.Split(*runSel, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		rc.printf("\n================ %s: %s ================\n", e.id, e.title)
		rc.cur = e.id
		span := obs.NewSpan(rc.sink, "experiment/"+e.id)
		start := time.Now()
		e.run(rc)
		dur := time.Since(start)
		span.End()
		rc.metric("seconds", dur.Seconds())
		rc.cur = ""
		rc.printf("[%s done in %v]\n", e.id, dur.Round(time.Millisecond))
	}

	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, rc); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *metricsPath)
	}
}

// writeMetrics emits the consolidated machine-readable report: one
// object per experiment run (headline numbers + wall time) plus a
// snapshot of the global counter registry (simulator vectors, PODEM
// backtracks, LFSR reseeds, ...).
func writeMetrics(path string, rc *runContext) error {
	report := struct {
		Quick       bool                      `json:"quick"`
		Experiments map[string]map[string]any `json:"experiments"`
		Counters    map[string]int64          `json:"counters"`
	}{
		Quick:       rc.quick,
		Experiments: rc.metrics,
		Counters:    obs.Default().Snapshot(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
