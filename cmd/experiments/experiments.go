package main

import (
	"encoding/json"
	"os"
	"sync"

	"repro/internal/api"
	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/dspgate"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
	"repro/internal/simpledsp"
)

// Shared state: the metrics table and generated program are reused by
// E2–E5 and E7; the gate-level core by E5 and E7–E9.
var (
	genOnce  sync.Once
	genProg  *selftest.Program
	genRep   *selftest.Report
	coreOnce sync.Once
	gateCore *dspgate.Core
)

func generator(rc *runContext) (*selftest.Program, *selftest.Report) {
	genOnce.Do(func() {
		cfg := metrics.Config{CTrials: 200000, OGoodRuns: 120, Seed: 1}
		if rc.quick {
			cfg = metrics.Config{CTrials: 12000, OGoodRuns: 8, Seed: 1}
		}
		span := obs.NewSpan(rc.sink, "generator")
		gen := selftest.NewGenerator(metrics.NewEngine(cfg)).WithObs(span)
		genProg, genRep = gen.Generate()
		span.End()
	})
	return genProg, genRep
}

func core(rc *runContext) *dspgate.Core {
	coreOnce.Do(func() {
		c, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
		if err != nil {
			panic(err)
		}
		gateCore = c
	})
	return gateCore
}

func progressPrinter(rc *runContext) func(cycles, detected, remaining int) {
	return func(cycles, detected, remaining int) {
		if cycles%65536 == 0 || remaining == 0 {
			rc.printf("    ... %8d cycles, %6d detected, %5d remaining\n", cycles, detected, remaining)
		}
	}
}

// simulate runs a sharded fault simulation with the tool's -workers
// shard count (1 = the exact serial path).
func simulate(rc *runContext, c *dspgate.Core, vecs fault.Vectors, progress bool) *fault.Result {
	opts := fault.SimOptions{Sink: rc.sink, Ctx: rc.ctx}
	if progress {
		opts.Progress = progressPrinter(rc)
	}
	res, err := engine.Simulate(c.Netlist, vecs, engine.SimOptions{
		SimOptions: opts, Workers: rc.workers,
	})
	if err != nil {
		panic(err)
	}
	if res.Interrupted {
		rc.printf("    (deadline hit: %d of %d vectors applied, numbers are partial)\n",
			res.Cycles, vecs.Len())
	}
	return res
}

func runE1(rc *runContext) {
	cfg := simpledsp.Config{CTrials: 50000, OGoodRuns: 200, Seed: 9}
	if rc.quick {
		cfg = simpledsp.Config{CTrials: 4000, OGoodRuns: 30, Seed: 9}
	}
	tab := simpledsp.BuildTable(cfg)
	rc.metric("rows", len(tab.Rows))
	rc.printf("%s\n", tab.Render())
	rc.printf("paper Table 1 reference shape: O≈0.99 everywhere except Clr/Mult O=0.00;\n")
	rc.printf("C in 0.64–0.89; random accumulator state raises ALU/Acc controllability.\n")
}

func runE2(rc *runContext) {
	_, rep := generator(rc)
	rc.metric("rows", len(rep.Table.Rows))
	rc.metric("cols", len(rep.Table.Cols))
	rc.printf("thresholds: Cθ=%.2f Oθ=%.2f\n\n%s\n", rep.Table.CThreshold, rep.Table.OThreshold,
		rep.Table.Render())
	// Spot comparisons against the cells Table 2 prints.
	type ref struct {
		row, col string
		paperC   float64
		paperO   float64
	}
	refs := []ref{
		{"LD", "Shifter 00", 0.18, 0.00},
		{"LDR", "Shifter 00", 0.99, 0.00},
		{"LD", "AddSub 0", 0.35, 0.00},
		{"LDR", "AddSub 0", 0.85, 0.00},
		{"MPY", "Multiplier", 0.99, 0.71},
		{"MAC+R", "AddSub 0", 0.85, 0.51},
	}
	rc.printf("spot check vs paper Table 2 (paper C,O → measured C,O):\n")
	for _, r := range refs {
		cell, ok := findCell(rep.Table, r.row, r.col)
		if !ok {
			rc.printf("  %-6s %-12s  (row/col not present)\n", r.row, r.col)
			continue
		}
		rc.printf("  %-6s %-12s  paper %.2f,%.2f → measured %.2f,%.2f\n",
			r.row, r.col, r.paperC, r.paperO, cell.C, cell.O)
	}
}

func findCell(t *metrics.Table, rowName, colLabel string) (metrics.Cell, bool) {
	for r, row := range t.Rows {
		if row.Name != rowName {
			continue
		}
		for c, col := range t.Cols {
			if col.Label() == colLabel {
				return t.Cells[r][c], true
			}
		}
	}
	return metrics.Cell{}, false
}

func runE3(rc *runContext) {
	_, rep := generator(rc)
	p1 := rep.Phase1
	rc.metric("picks", len(p1.Chosen))
	rc.metric("uncovered", len(p1.Uncovered))
	rc.printf("wrapper rows (Load/Out): %d; columns wrapper-covered: %d\n",
		len(p1.WrapperRows), countCoveredBy(p1, -1))
	for i, ri := range p1.Chosen {
		rc.printf("pick %d: %-14s covers %d columns\n", i+1, rep.Table.Rows[ri].Name, countCoveredBy(p1, ri))
	}
	rc.printf("uncovered after Phase 1: ")
	for _, c := range p1.Uncovered {
		rc.printf("%s  ", rep.Table.Cols[c].Label())
	}
	rc.printf("\npaper: greedy pass picks MpyR first (11 columns), accumulator columns\n")
	rc.printf("and unreachable shifter modes remain for Phase 2.\n")
}

func countCoveredBy(p1 *selftest.Phase1Result, row int) int {
	n := 0
	for _, r := range p1.CoveredBy {
		if r == row {
			n++
		}
	}
	return n
}

func runE4(rc *runContext) {
	prog, rep := generator(rc)
	rc.metric("loop_instrs", prog.Len())
	rc.printf("%s\n%d instructions per loop iteration (paper: 34)\n\n%s\n",
		prog, prog.Len(), rep.Summary())
}

func runE5(rc *runContext) {
	prog, _ := generator(rc)
	iters := 6000
	if rc.quick {
		iters = 300
	}
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: iters})
	c := core(rc)
	rc.printf("program: %d instructions × %d iterations = %d vectors (paper: 34 × 6000 = 204,000)\n",
		prog.Len(), iters, vecs.Len())
	res := simulate(rc, c, vecs, true)
	fc := res.Coverage()
	rc.printf("fault coverage: %.2f%% (%d/%d)   [paper: 98.14%%]\n",
		100*fc, res.Detected(), len(res.Faults))

	// Test coverage: exclude faults PODEM proves untestable even with
	// every flip-flop directly controllable (full-scan bound).
	untestable, aborted := classifyUndetected(c, res)
	tc := float64(res.Detected()) / float64(len(res.Faults)-untestable)
	rc.printf("test coverage:  %.2f%% (%d untestable excluded, %d aborted)   [paper: 98.33%%]\n",
		100*tc, untestable, aborted)
	rc.metric("vectors", vecs.Len())
	rc.metric("fault_coverage", fc)
	rc.metric("test_coverage", tc)
	rc.metric("untestable", untestable)
	rc.metric("aborted", aborted)

	rc.printf("\nper-component coverage (paper Table 2 header gives per-component fault counts):\n")
	for _, region := range dspgate.ComponentRegions {
		det, tot := res.RegionCoverage(c.Netlist, region)
		if tot == 0 {
			continue
		}
		rc.printf("  %-12s %6d faults  %6.2f%%\n", region, tot, 100*float64(det)/float64(tot))
	}
	rc.printf("\ncoverage vs vectors:\n")
	for v := 1024; v < vecs.Len(); v *= 4 {
		rc.printf("  %8d  %.2f%%\n", v, 100*res.CoverageAt(v))
	}
	rc.printf("  %8d  %.2f%%\n", vecs.Len(), 100*fc)
	if assumed := 500e6; true {
		rc.printf("test time at a 500 MHz clock: %.3f ms (paper: 0.408 ms)\n",
			float64(vecs.Len())/assumed*1000)
	}
	baseDetections = res.Detected()
	baseVectors = vecs.Len()
}

// Shared between E5 and E7: the base program's total detections.
var (
	baseDetections int
	baseVectors    int
)

func runE6(rc *runContext) {
	results, err := selftest.ShifterConstraintStudy(selftest.PaperShifterSets())
	if err != nil {
		panic(err)
	}
	paper := map[string]float64{
		"all modes":  100.0,
		"ban 11":     99.86,
		"ban 00":     97.21,
		"ban 01":     13.4,
		"ban 10":     99.95,
		"only 00,01": 99.76,
	}
	rc.printf("%-12s %10s %10s   (coverage of the standalone shifter's faults)\n",
		"constraint", "paper", "measured")
	var all float64
	for _, r := range results {
		if r.Label == "all modes" {
			all = r.Coverage()
		}
	}
	for _, r := range results {
		rel := 100 * r.Coverage() / all
		rc.metric(r.Label, rel)
		rc.printf("%-12s %9.2f%% %9.2f%%   (%d/%d testable, %d aborted; relative to all-modes ceiling)\n",
			r.Label, paper[r.Label], rel, r.Testable, r.Total, r.Aborted)
	}
	rc.printf("conclusion (matches paper): modes 11 and 10 are dispensable, mode 01 is essential.\n")
}

func runE7(rc *runContext) {
	prog, _ := generator(rc)
	boosted := selftest.Boost(prog,
		map[isa.Op]bool{isa.OpShift: true, isa.OpMacP: true, isa.OpMacM: true, isa.OpMpyShiftMac: true}, 1)
	iters := 6000
	if rc.quick {
		iters = 300
	}
	vecs := selftest.Expand(boosted, selftest.ExpandOptions{Iterations: iters})
	c := core(rc)
	rc.printf("boosted program: %d instructions (base: %d)\n", boosted.Len(), prog.Len())
	res := simulate(rc, c, vecs, true)
	rc.printf("enhanced fault coverage at %d iterations: %.2f%%   [paper: 98.42%%]\n",
		iters, 100*res.Coverage())
	rc.metric("enhanced_coverage", res.Coverage())
	if baseDetections > 0 {
		at := res.FirstCycleReaching(baseDetections)
		if at >= 0 {
			rc.metric("crossover_vectors", at+1)
			rc.printf("vectors to match the base program's %d-vector detection count: %d   [paper: 27,346 vs 204,000]\n",
				baseVectors, at+1)
		} else {
			rc.printf("enhanced program did not reach the base detection count (%d vs %d)\n",
				res.Detected(), baseDetections)
		}
	} else {
		rc.printf("(run E5 first for the crossover comparison)\n")
	}

	// Phase-3 random-resistant top-up: component-local ATPG patterns,
	// synthesized into run-once instruction blocks and verified.
	var undetected []fault.Fault
	for i, cdet := range res.DetectedAt {
		if cdet < 0 {
			undetected = append(undetected, res.Faults[i])
		}
	}
	maxPatterns := 60
	if rc.quick {
		maxPatterns = 15
	}
	top := selftest.TopUp(c, undetected, maxPatterns)
	rc.metric("topup_justified", top.Justified)
	rc.printf("ATPG top-up: %d verified run-once patterns (+%.2f%% coverage), %d unjustifiable, %d untestable\n",
		top.Justified, 100*float64(top.Justified)/float64(len(res.Faults)),
		top.Unjustified, top.Untestable)
	rc.printf("(the paper needed 21 instructions for a single adder pattern and notes the\n")
	rc.printf(" justification difficulty; multiplier-cone faults are the mechanizable case.)\n")
}

func runE8(rc *runContext) {
	c := core(rc)
	frames, sample, backtracks := 4, 6, 600
	if rc.quick {
		frames, sample, backtracks = 3, 40, 300
	}
	res, err := bist.SequentialATPGOpts(c.Netlist, bist.SeqATPGOptions{
		Frames: frames, SampleEvery: sample, MaxBacktracks: backtracks, Sink: rc.sink,
	})
	if err != nil {
		panic(err)
	}
	rc.printf("unroll depth %d, every %dth of %d collapsed faults targeted\n",
		res.Frames, sample, res.TotalFaults)
	rc.printf("PODEM: %d tests found, %d untestable within horizon, %d aborted (%d backtracks, %d decisions)\n",
		res.TestsFound, res.Untestable, res.Aborted, res.Stats.Backtracks, res.Stats.Decisions)
	rc.printf("test-set fault coverage: %.2f%%   [paper: 8.51%%]\n", 100*res.Coverage())
	rc.metric("coverage", res.Coverage())
	rc.metric("tests_found", res.TestsFound)
	rc.metric("untestable", res.Untestable)
	rc.metric("aborted", res.Aborted)
	rc.metric("backtracks", res.Stats.Backtracks)
	rc.printf("the pipelined core defeats bounded gate-level sequential ATPG, as in the paper.\n")
}

func runE9(rc *runContext) {
	count := bist.FullPeriod
	if rc.quick {
		count = 8192
	}
	vecs := bist.PseudorandomVectors(count, 1)
	c := core(rc)
	res := simulate(rc, c, vecs, true)
	rc.printf("raw 17-bit LFSR, %d vectors (paper: all 131,071)\n", count)
	rc.printf("fault coverage: %.2f%%\n", 100*res.Coverage())
	rc.metric("vectors", count)
	rc.metric("coverage", res.Coverage())
	rc.printf("coverage vs vectors:\n")
	for v := 1024; v < count; v *= 4 {
		rc.printf("  %8d  %.2f%%\n", v, 100*res.CoverageAt(v))
	}
	rc.printf("  %8d  %.2f%%\n", count, 100*res.Coverage())
	rc.printf("paper reports no number, only that the LFSR ignores core state/behavior;\n")
	rc.printf("compare with E5: the SBST program reaches higher coverage in far fewer vectors.\n")
}

func runE10(rc *runContext) {
	// The scheme of the paper's reference [4]: pseudorandom legal
	// instructions with randomized fields and periodic OUTs, but no
	// metric guidance. The paper's Section 1 critique predicts it lands
	// between raw BIST and the metrics-driven program.
	count := 65536
	if rc.quick {
		count = 8192
	}
	vecs := bist.IRSTVectors(bist.IRSTOptions{Vectors: count, Seed: 1, OutEvery: 6})
	c := core(rc)
	res := simulate(rc, c, vecs, true)
	rc.printf("randomized-instruction stream, %d vectors, OUT every 6th\n", count)
	rc.printf("fault coverage: %.2f%%\n", 100*res.Coverage())
	rc.metric("coverage", res.Coverage())
	rc.printf("coverage vs vectors:\n")
	for v := 1024; v < count; v *= 4 {
		rc.printf("  %8d  %.2f%%\n", v, 100*res.CoverageAt(v))
	}
	rc.printf("  %8d  %.2f%%\n", count, 100*res.Coverage())
	rc.printf("expected ordering at equal vector counts: raw LFSR < IRST < metrics-driven\n")
	rc.printf("SBST — the paper's critique of [4] (\"difficulty targeting components with\n")
	rc.printf("poor controllability and observability\") in numbers.\n")
}

func runE11(rc *runContext) {
	// The template architecture XOR-masks register fields with LFSR2 so
	// each loop iteration exercises a different register group (paper
	// Section 2.3: "exercising a different group of registers each
	// iteration ... allows reuse of the same program"). Disabling the
	// mask at equal vector counts shows what it buys.
	prog, _ := generator(rc)
	iters := 600
	if rc.quick {
		iters = 150
	}
	c := core(rc)
	for _, disable := range []bool{false, true} {
		label := "with LFSR2 rotation"
		if disable {
			label = "rotation disabled"
		}
		vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: iters, DisableRegMask: disable})
		res := simulate(rc, c, vecs, false)
		rfDet, rfTot := res.RegionCoverage(c.Netlist, "RegFile")
		key := "coverage_with_rotation"
		if disable {
			key = "coverage_no_rotation"
		}
		rc.metric(key, res.Coverage())
		rc.printf("%-22s %7d vectors: overall %6.2f%%, register file %6.2f%% (%d/%d)\n",
			label, vecs.Len(), 100*res.Coverage(), 100*float64(rfDet)/float64(rfTot), rfDet, rfTot)
	}
	rc.printf("without rotation the program touches one fixed register group, so the\n")
	rc.printf("register file (the core's largest component) stays mostly dark.\n")
}

func runE12(rc *runContext) {
	// SBST runs at functional speed, so the same program doubles as an
	// at-speed test — the key advantage over slow external ATE that the
	// SBST literature (e.g. the paper's reference [5] on path-delay
	// testing) builds on. Launch-on-capture transition faults measured
	// under the SBST program vs raw pseudorandom BIST at equal length.
	prog, _ := generator(rc)
	count := 4096
	if rc.quick {
		count = 1024
	}
	c := core(rc)
	iters := count/prog.Len() + 1
	sbst := selftest.Expand(prog, selftest.ExpandOptions{Iterations: iters})[:count]
	raw := bist.PseudorandomVectors(count, 1)
	for _, tc := range []struct {
		name string
		vecs fault.Vectors
	}{{"SBST program", sbst}, {"raw LFSR BIST", raw}} {
		res, err := fault.SimulateTransitions(c.Netlist, tc.vecs, nil)
		if err != nil {
			panic(err)
		}
		rc.metric(tc.name, res.Coverage())
		rc.printf("%-14s %6d vectors: transition-fault coverage %6.2f%% (%d/%d)\n",
			tc.name, tc.vecs.Len(), 100*res.Coverage(), res.Detected(), len(res.Faults))
	}
	rc.printf("transition coverage trails stuck-at (each detection needs a launch AND a\n")
	rc.printf("capture), but the metrics-driven program keeps its lead at speed.\n")
}

func runE13(rc *runContext) {
	// Evolutionary search over self-test program skeletons (the
	// ga_search job kind), scored as fault coverage per test cycle, vs
	// the paper's deterministic Phase 1/2 construction and raw LFSR
	// BIST at the evolved program's own cycle budget. The paper builds
	// one program from the metrics table; the GA asks what that budget
	// buys when the skeleton itself is up for negotiation.
	g := &api.GaSpec{Population: 12, Generations: 8, Slots: 10, Iterations: 60, Seed: 3}
	if rc.quick {
		g = &api.GaSpec{Population: 4, Generations: 3, Slots: 6, Iterations: 20, Seed: 3}
	}
	exec := engine.NewExecutor(engine.ExecConfig{Workers: rc.workers, Sink: rc.sink})
	res, err := exec(rc.ctx, engine.JobSpec{Kind: engine.JobGaSearch, Ga: g}, func(engine.Progress) {})
	if err != nil {
		panic(err)
	}
	ga := res.Ga
	rc.printf("GA: population %d × %d generations (%d evaluations, %d cache hits), seed %d\n",
		g.Population, g.Generations, ga.Evaluations, ga.CacheHits, g.Seed)
	for _, gen := range ga.Generations {
		rc.printf("  gen %d: best %.6f (%.2f%% in %d cycles), mean %.6f\n",
			gen.Gen, gen.BestFitness, 100*gen.BestCoverage, gen.BestCycles, gen.MeanFitness)
	}
	rc.printf("best genome: %s\n", ga.BestGenome)
	rc.printf("evolved program: %.2f%% coverage in %d cycles\n", 100*res.Coverage, res.Cycles)

	// Comparators at the evolved budget: the Phase 1/2 program and raw
	// pseudorandom BIST, truncated to the same cycle count.
	budget := res.Cycles
	prog, _ := generator(rc)
	c := core(rc)
	iters := budget/prog.Len() + 1
	baseVecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: iters})[:budget]
	baseRes := simulate(rc, c, baseVecs, false)
	rawRes := simulate(rc, c, bist.PseudorandomVectors(budget, 1), false)
	rc.printf("\nat the evolved program's %d-cycle budget:\n", budget)
	rc.printf("  %-22s %6.2f%%\n", "evolved (ga_search)", 100*res.Coverage)
	rc.printf("  %-22s %6.2f%%\n", "Phase 1/2 program", 100*baseRes.Coverage())
	rc.printf("  %-22s %6.2f%%\n", "raw LFSR BIST", 100*rawRes.Coverage())
	verdict := res.Coverage >= baseRes.Coverage()
	if verdict {
		rc.printf("the evolved skeleton meets or beats the deterministic construction at equal cycles.\n")
	} else {
		rc.printf("the deterministic construction holds its lead at this budget (GA is behind).\n")
	}
	rc.metric("evolved_coverage", res.Coverage)
	rc.metric("evolved_cycles", res.Cycles)
	rc.metric("phase12_coverage_at_budget", baseRes.Coverage())
	rc.metric("raw_bist_coverage_at_budget", rawRes.Coverage())
	rc.metric("best_fitness", ga.BestFitness)
	rc.metric("evaluations", ga.Evaluations)
	rc.metric("beats_phase12", verdict)

	if rc.gaArtifact != "" {
		if err := writeGaArtifact(rc, g, res, baseRes.Coverage(), rawRes.Coverage(), verdict); err != nil {
			panic(err)
		}
		rc.printf("wrote %s\n", rc.gaArtifact)
	}
}

// writeGaArtifact emits E13's self-describing JSON artifact: what was
// compared, how to regenerate it, and every number behind the verdict.
func writeGaArtifact(rc *runContext, g *api.GaSpec, res *api.JobResult, baseCov, rawCov float64, verdict bool) error {
	artifact := struct {
		Experiment  string        `json:"experiment"`
		Description string        `json:"description"`
		Regenerate  string        `json:"regenerate"`
		Quick       bool          `json:"quick"`
		Spec        *api.GaSpec   `json:"ga_spec"`
		Result      *api.GaResult `json:"ga_result"`
		Comparison  struct {
			CycleBudget      int     `json:"cycle_budget"`
			EvolvedCoverage  float64 `json:"evolved_coverage"`
			Phase12Coverage  float64 `json:"phase12_coverage"`
			RawBISTCoverage  float64 `json:"raw_bist_coverage"`
			EvolvedMeetsBase bool    `json:"evolved_meets_or_beats_phase12"`
		} `json:"comparison"`
	}{
		Experiment: "E13",
		Description: "Evolved self-test program (ga_search: GA over instruction-slot skeletons + " +
			"LFSR seed/polynomial/reseed genes, fitness = fault coverage per cycle) vs the paper's " +
			"deterministic Phase 1/2 construction and raw LFSR BIST, all fault-simulated on the " +
			"gate-level DSP core at the evolved program's cycle budget.",
		Regenerate: "go run ./cmd/experiments -run E13 -ga-artifact <path>",
		Quick:      rc.quick,
		Spec:       g,
		Result:     res.Ga,
	}
	artifact.Comparison.CycleBudget = res.Cycles
	artifact.Comparison.EvolvedCoverage = res.Coverage
	artifact.Comparison.Phase12Coverage = baseCov
	artifact.Comparison.RawBISTCoverage = rawCov
	artifact.Comparison.EvolvedMeetsBase = verdict
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(rc.gaArtifact, append(data, '\n'), 0o644)
}

// classifyUndetected runs full-scan-bound PODEM (all flip-flops treated
// as controllable inputs, detection at outputs or flip-flop D pins) on
// each undetected fault: faults untestable even under that relaxation
// are structurally untestable, the basis of the paper's "test coverage".
func classifyUndetected(c *dspgate.Core, res *fault.Result) (untestable, aborted int) {
	n := c.Netlist
	scanPIs := append(append([]logic.NetID(nil), n.Inputs()...), n.DFFs()...)
	observe := append([]logic.NetID(nil), n.Outputs()...)
	for _, q := range n.DFFs() {
		observe = append(observe, n.Gate(q).In[0])
	}
	for i, f := range res.Faults {
		if res.DetectedAt[i] >= 0 {
			continue
		}
		r := atpg.Generate(n, f, atpg.Options{
			PIs:           scanPIs,
			Observe:       observe,
			MaxBacktracks: 2000,
		})
		switch r.Status {
		case atpg.Untestable:
			untestable++
		case atpg.Aborted:
			aborted++
		}
	}
	return untestable, aborted
}
