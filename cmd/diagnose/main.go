// Command diagnose demonstrates the post-self-test diagnosis flow: it
// injects a hidden stuck-at fault into the gate-level core, runs the
// generated self-test program, and — given only the observed failing
// output trace — ranks candidate faults by cause-effect trace matching.
// In production the observed trace comes from the tester after a MISR
// signature mismatch triggers per-cycle capture.
//
//	diagnose -iters 60 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dspgate"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
)

func main() {
	iters := flag.Int("iters", 60, "self-test loop iterations")
	seed := flag.Int64("seed", 7, "selects the hidden fault")
	top := flag.Int("top", 5, "candidates to print")
	obsCfg := obs.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()
	span := rt.Span("diagnose")
	defer span.End()

	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		fail(err)
	}
	eng := metrics.NewEngine(metrics.Config{CTrials: 8000, OGoodRuns: 6, Seed: 1})
	prog, _ := selftest.NewGenerator(eng).WithObs(span).Generate()
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: *iters})

	faults, _ := fault.Collapse(core.Netlist, fault.AllFaults(core.Netlist))
	rng := rand.New(rand.NewSource(*seed))
	hidden := faults[rng.Intn(len(faults))]
	fmt.Printf("hidden fault: %s (%s)\n", hidden, core.Netlist.NameOf(hidden.Site))

	observed := fault.FaultTrace(core.Netlist, vecs, hidden)
	good := fault.GoodTrace(core.Netlist, vecs)
	failures := 0
	for i := range observed {
		if observed[i] != good[i] {
			failures++
		}
	}
	if failures == 0 {
		fmt.Println("fault not excited by this test length — increase -iters")
		return
	}
	fmt.Printf("observed %d failing cycles of %d\n", failures, len(observed))
	span.Add("failing_cycles", int64(failures))

	// Stage-1 candidate simulation shards across -workers cores; the
	// result feeds Diagnose so it skips its own serial pass.
	presim, err := engine.Simulate(core.Netlist, vecs, engine.SimOptions{
		SimOptions: fault.SimOptions{Faults: faults, Sink: rt.Sink()},
		Workers:    obsCfg.Workers,
	})
	if err != nil {
		fail(err)
	}
	cands, err := fault.DiagnoseOpts(core.Netlist, vecs, observed, faults,
		fault.DiagnoseOptions{Presim: presim})
	if err != nil {
		fail(err)
	}
	span.Add("candidates", int64(len(cands)))
	fmt.Printf("%d candidates; top %d:\n", len(cands), *top)
	for i, c := range cands {
		if i >= *top {
			break
		}
		marker := " "
		if c.Fault == hidden {
			marker = "← hidden fault"
		}
		fmt.Printf("  %2d. %-16s exact=%-5v matched=%d missed=%d mispredicted=%d  %s\n",
			i+1, c.Fault, c.ExactMatch, c.MatchedFailures, c.MissedFailures, c.Mispredicts, marker)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
