// Command sbst-worker is one member of a distributed campaign fleet:
// it polls an sbstd coordinator (started with -distributed) for leased
// work units, simulates each unit's fault slice against the unit's
// design — resolved from the spec's design ID through the same
// registry the coordinator uses (an LRU keeps recently built designs
// hot), heartbeats while it runs, and uploads the checksummed
// detection bitmaps. Workers are stateless and interchangeable — kill
// one mid-unit and its lease expires back into the pool; start more
// and the campaign merely finishes sooner. The merged campaign result
// is bit-identical for any fleet size.
//
//	sbstd -addr :8321 -distributed &
//	sbst-worker -coordinator http://localhost:8321 &
//	sbst-worker -coordinator http://localhost:8321 -metrics-addr :9101 &
//	curl localhost:9101/metrics        # Prometheus exposition
//
// SIGTERM/SIGINT exits gracefully: a unit in flight is failed back to
// the coordinator as retryable so another worker picks it up, and the
// NDJSON trace buffer is flushed immediately so a worker killed
// mid-drain has persisted its tail events.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/worker"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8321", "sbstd base URL")
	id := flag.String("id", "", "worker identity in leases and logs (default host-pid)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle sleep between lease polls when the coordinator has no work")
	retries := flag.Int("max-retries", 4, "HTTP retransmissions per call on transport trouble")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9101; empty = off)")
	obsCfg := obs.Flags()
	chaosCfg := chaos.Flags()
	flag.Parse()

	// Name the NDJSON trace after the lease identity, so sbst-trace
	// attributes this file's spans to the same worker the coordinator's
	// lease events talk about.
	if *id != "" {
		obsCfg.Source = *id
	}
	rt := obsCfg.MustStart()
	defer rt.Close()
	if err := chaosCfg.Arm(); err != nil {
		fail(rt, err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", obs.Default().PrometheusHandler())
		mux.Handle("GET "+api.Prefix+"/metrics", obs.Default().PrometheusHandler())
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "sbst-worker: metrics listener:", err)
			}
		}()
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "sbst-worker: metrics on %s\n", *metricsAddr)
	}

	w := worker.New(worker.Options{
		Coordinator: *coordinator,
		ID:          *id,
		Poll:        *poll,
		Exec:        engine.ExecConfig{Workers: obsCfg.Workers, Sink: rt.Sink()},
		Client:      client.New(*coordinator, client.Options{MaxRetries: *retries}),
		Sink:        rt.Sink(),
	})
	fmt.Fprintf(os.Stderr, "sbst-worker: %s polling %s\n", w.ID(), *coordinator)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Persist the trace tail the moment a drain begins: a worker killed
	// while failing its lease back still leaves a complete trace.
	go func() {
		<-ctx.Done()
		_ = rt.Flush()
	}()
	if err := w.Run(ctx); err != nil {
		fail(rt, err)
	}
	fmt.Fprintln(os.Stderr, "sbst-worker: done")
}

func fail(rt *obs.Runtime, err error) {
	rt.Close()
	fmt.Fprintln(os.Stderr, "sbst-worker:", err)
	os.Exit(1)
}
