// Command sbst-trace merges the per-process NDJSON traces of a
// distributed campaign into one timeline. Each process — the sbstd
// coordinator and every sbst-worker — writes its own -trace file with
// relative timestamps; the job's trace ID (minted at submission,
// carried through every /v1 wire type) stamps each event, and the
// trace_open header of each file anchors it on the absolute clock.
//
//	sbstd -distributed -trace coord.ndjson &
//	sbst-worker -trace w1.ndjson &
//	sbst-worker -trace w2.ndjson &
//	...
//	sbst-trace coord.ndjson w1.ndjson w2.ndjson
//	sbst-trace -trace-id 9f3a1c2b4d5e6f70 -json *.ndjson
//
// Without -trace-id the tool picks the trace with the most events. The
// default output is a human-readable timeline: per-process span
// listing, per-worker utilization, and the critical path — the chain
// of spans the campaign's wall clock could not have finished without.
// -json emits the merged timeline as JSON for downstream tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/tracemerge"
)

func main() {
	traceID := flag.String("trace-id", "", "campaign trace ID to extract (default: the dominant trace across files)")
	asJSON := flag.Bool("json", false, "emit the merged timeline as JSON instead of the text summary")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sbst-trace [-trace-id ID] [-json] trace.ndjson...")
		os.Exit(2)
	}
	tl, err := tracemerge.MergeFiles(flag.Args(), *traceID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbst-trace:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tl); err != nil {
			fmt.Fprintln(os.Stderr, "sbst-trace:", err)
			os.Exit(1)
		}
		return
	}
	tl.Render(os.Stdout)
}
