// Command tbgen emits the verification collateral the paper's Perl
// scripts produced: the gate-level core as structural Verilog plus a
// self-checking testbench that applies an expanded self-test program and
// asserts the fault-free responses. Feed both files to any Verilog
// simulator to confirm the fault-simulation model behaves correctly.
//
//	tbgen -iters 3 -o core        # writes core.v and core_tb.v
//	tbgen -prog prog.asm -iters 10 -o core
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dspgate"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
)

func main() {
	progPath := flag.String("prog", "", "program file (selftest Source format); default: generate one")
	iters := flag.Int("iters", 2, "loop iterations to expand into the testbench")
	out := flag.String("o", "dsp_core", "output basename (<o>.v and <o>_tb.v)")
	obsCfg := obs.Flags()
	flag.Parse()

	rt := obsCfg.MustStart()
	defer rt.Close()
	span := rt.Span("tbgen")
	defer span.End()

	var prog *selftest.Program
	if *progPath != "" {
		src, err := os.ReadFile(*progPath)
		if err != nil {
			fail(err)
		}
		prog, err = selftest.ParseProgram(string(src))
		if err != nil {
			fail(err)
		}
	} else {
		eng := metrics.NewEngine(metrics.Config{CTrials: 8000, OGoodRuns: 6, Seed: 1})
		prog, _ = selftest.NewGenerator(eng).WithObs(span).Generate()
	}

	core, err := dspgate.Build(dspgate.Options{})
	if err != nil {
		fail(err)
	}
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: *iters})
	expected := logic.ExpectedOutputs(core.Netlist, vecs)

	vf, err := os.Create(*out + ".v")
	if err != nil {
		fail(err)
	}
	defer vf.Close()
	if err := logic.WriteVerilog(vf, core.Netlist, "dsp_core"); err != nil {
		fail(err)
	}
	tf, err := os.Create(*out + "_tb.v")
	if err != nil {
		fail(err)
	}
	defer tf.Close()
	if err := logic.WriteTestbench(tf, core.Netlist, "dsp_core", vecs, expected); err != nil {
		fail(err)
	}
	span.Add("vectors", int64(len(vecs)))
	span.Add("loop_instrs", int64(prog.Len()))
	fmt.Printf("wrote %s.v and %s_tb.v (%d vectors, %d-instruction loop × %d iterations)\n",
		*out, *out, len(vecs), prog.Len(), *iters)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tbgen:", err)
	os.Exit(1)
}
