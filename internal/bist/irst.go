package bist

import (
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/lfsr"
)

// IRSTOptions configure the instruction-randomization self-test
// baseline, modeled on the scheme of the paper's reference [4] (Batcher
// & Papachristou, "Instruction Randomization Self Test for Processor
// Cores"): opcodes are drawn pseudorandomly from a restricted legal set
// and the data/register fields are fully randomized. Unlike the paper's
// method there is no testability-metric guidance and no coverage-driven
// program structure — which is exactly the gap the paper's Section 1
// identifies ("no specific methodology for constructing the self-test
// program ... difficulty targeting components with poor controllability
// and observability").
type IRSTOptions struct {
	// Vectors is the number of instruction words to generate.
	Vectors int
	// Seed seeds the generator LFSR.
	Seed uint64
	// OutEvery forces an OUT instruction every k-th word (the scheme's
	// "restriction" that keeps responses observable). Zero disables.
	OutEvery int
	// Ops restricts the opcode pool (nil = every operation).
	Ops []isa.Op
}

// IRSTVectors generates the randomized-instruction stream.
func IRSTVectors(opts IRSTOptions) fault.Vectors {
	ops := opts.Ops
	if ops == nil {
		ops = isa.Ops()
	}
	l := lfsr.MustNew(32, opts.Seed|1)
	vecs := make(fault.Vectors, opts.Vectors)
	for i := range vecs {
		if opts.OutEvery > 0 && i%opts.OutEvery == opts.OutEvery-1 {
			in := isa.Instr{Op: isa.OpOut, Src: uint8(l.NextBits(4) & 0xF)}
			vecs[i] = uint64(in.Encode())
			continue
		}
		r := l.NextBits(24)
		op := ops[int(r%uint64(len(ops)))]
		fields := uint32(r >> 5)
		in := isa.Instr{Op: op, Acc: isa.Acc(r >> 4 & 1)}
		switch op.Format() {
		case isa.Format1:
			in.RA = uint8(fields & 0xF)
			in.RB = uint8(fields >> 4 & 0xF)
			in.RD = uint8(fields >> 8 & 0xF)
		case isa.Format2:
			in.Imm = uint8(fields)
			in.RD = uint8(fields >> 8 & 0xF)
		case isa.Format3:
			in.Src = uint8(fields & 0xF)
		case isa.Format4:
			in.Src = uint8(fields & 0xF)
			in.RD = uint8(fields >> 8 & 0xF)
		}
		vecs[i] = uint64(in.Encode())
	}
	return vecs
}
