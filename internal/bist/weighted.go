package bist

import (
	"repro/internal/fault"
	"repro/internal/lfsr"
)

// WeightedOptions configure weighted-random BIST: each input bit is 1
// with its own probability instead of 1/2, the classical fix for
// random-resistant structures (wide AND trees, decoders). Weights are
// quantized to k = Resolution LFSR draws per bit: probability m/2^k is
// realized by OR/AND-combining draws.
type WeightedOptions struct {
	// Vectors is the stream length.
	Vectors int
	// Seed seeds the draw LFSR.
	Seed uint64
	// Weights[i] is P(input bit i = 1), quantized to multiples of
	// 1/2^Resolution. Missing entries default to 0.5.
	Weights []float64
	// Resolution is the quantization depth (default 3: weights in
	// eighths).
	Resolution int
}

// WeightedVectors generates a weighted pseudorandom stream.
func WeightedVectors(bits int, opts WeightedOptions) fault.Vectors {
	res := opts.Resolution
	if res <= 0 {
		res = 3
	}
	l := lfsr.MustNew(32, opts.Seed|1)
	// Per-bit thresholds in [0, 2^res].
	thresholds := make([]uint64, bits)
	for i := range thresholds {
		w := 0.5
		if i < len(opts.Weights) {
			w = opts.Weights[i]
		}
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		thresholds[i] = uint64(w*float64(uint64(1)<<uint(res)) + 0.5)
	}
	vecs := make(fault.Vectors, opts.Vectors)
	for v := range vecs {
		var word uint64
		for i := 0; i < bits; i++ {
			draw := l.NextBits(res) & (1<<uint(res) - 1)
			if draw < thresholds[i] {
				word |= 1 << uint(i)
			}
		}
		vecs[v] = word
	}
	return vecs
}

// OpcodeWeights returns a weight vector for the DSP core's 17
// instruction inputs that biases the opcode field toward the assigned
// encodings' densest region while keeping data fields uniform — a
// simple, metrics-free improvement over raw LFSR words.
func OpcodeWeights() []float64 {
	w := make([]float64, 17)
	for i := range w {
		w[i] = 0.5
	}
	// Opcode bits [16:12]: the MAC-family block lives in 01000–11001,
	// so bias the top bits low-ish and keep bit 15 free.
	w[16] = 0.35
	w[15] = 0.5
	w[14] = 0.55
	return w
}
