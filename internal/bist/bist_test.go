package bist

import (
	"testing"

	"repro/internal/dspgate"
	"repro/internal/fault"
)

func TestPseudorandomVectors(t *testing.T) {
	vecs := PseudorandomVectors(1000, 1)
	seen := map[uint64]bool{}
	for _, v := range vecs {
		if v == 0 || v >= 1<<17 {
			t.Fatalf("vector %x out of 17-bit non-zero range", v)
		}
		seen[v] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("LFSR repeated within 1000 of %d states", FullPeriod)
	}
}

func TestSequentialATPGBaselineCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("unrolled ATPG on the full core is slow")
	}
	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SequentialATPG(core.Netlist, 3, 40, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seq-ATPG baseline: %d faults tried, %d tests, %d untestable, %d aborted, coverage %.2f%%",
		res.FaultsTried, res.TestsFound, res.Untestable, res.Aborted, 100*res.Coverage())
	// The paper's point: sequential ATPG collapses on the pipelined core
	// (8.51% in their flow). Anything below 30% demonstrates the shape;
	// the SBST program reaches >90% on the same netlist.
	if res.Coverage() > 0.30 {
		t.Errorf("sequential ATPG coverage %.2f%% unexpectedly high", 100*res.Coverage())
	}
	if res.FaultsTried == 0 {
		t.Fatal("no faults tried")
	}
}

func TestPseudorandomBISTShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fault simulation of the full core is slow")
	}
	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	vecs := PseudorandomVectors(4096, 1)
	res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pseudorandom BIST: %.2f%% after %d vectors", 100*res.Coverage(), vecs.Len())
	// Raw LFSR words do exercise the core (most words decode to real
	// instructions), but with no load/out structure coverage lags the
	// SBST program at equal vector counts.
	if res.Coverage() < 0.3 || res.Coverage() > 0.98 {
		t.Errorf("coverage %.2f%% outside plausible band", 100*res.Coverage())
	}
}
