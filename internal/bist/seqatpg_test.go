package bist

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
)

// buildPipeline returns a tiny sequential circuit where tests exist but
// need multiple frames: out = DFF(DFF(a XOR b)).
func buildPipeline(t *testing.T) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	a := b.Input("a")
	x := b.Input("b")
	s1 := b.DFF(b.Xor(a, x), "s1")
	s2 := b.DFF(s1, "s2")
	b.MarkOutput(s2, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSequentialATPGOnShallowPipeline(t *testing.T) {
	n := buildPipeline(t)
	// With 4 frames every fault is within reach; coverage should be
	// high — the contrast with the DSP core's collapse shows the effect
	// is pipeline depth + state justification, not the tool.
	res, err := SequentialATPG(n, 4, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.9 {
		t.Fatalf("shallow pipeline coverage %.2f, want ≥0.9 (found %d tests, %d untestable, %d aborted)",
			res.Coverage(), res.TestsFound, res.Untestable, res.Aborted)
	}
	// Every generated test must really detect at least one fault
	// (grading counted them), and tests are Frames cycles long.
	for _, test := range res.Tests {
		if len(test) != 4 {
			t.Fatalf("test length %d != frames", len(test))
		}
	}
}

func TestSequentialATPGOneFrameMissesDeepFaults(t *testing.T) {
	n := buildPipeline(t)
	deep, err := SequentialATPG(n, 1, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SequentialATPG(n, 4, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Coverage() >= full.Coverage() {
		t.Fatalf("1-frame coverage %.2f should trail 4-frame %.2f",
			deep.Coverage(), full.Coverage())
	}
}

func TestSequentialATPGProgressCallback(t *testing.T) {
	n := buildPipeline(t)
	calls := 0
	_, err := SequentialATPG(n, 2, 1, 500, func(done, total int) {
		calls++
		if done > total {
			t.Fatalf("done %d > total %d", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
}

func TestSequentialATPGGradingConsistent(t *testing.T) {
	// DetectedTotal must equal a direct fault-simulation grade of the
	// test set.
	n := buildPipeline(t)
	res, err := SequentialATPG(n, 4, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	detected := map[fault.Fault]bool{}
	for _, test := range res.Tests {
		sim, err := fault.Simulate(n, fault.Vectors(test), fault.SimOptions{Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sim.Faults {
			if sim.DetectedAt[i] >= 0 {
				detected[sim.Faults[i]] = true
			}
		}
	}
	if len(detected) != res.DetectedTotal {
		t.Fatalf("grading mismatch: %d vs %d", len(detected), res.DetectedTotal)
	}
}
