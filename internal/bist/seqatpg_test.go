package bist

import (
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
)

// buildPipeline returns a tiny sequential circuit where tests exist but
// need multiple frames: out = DFF(DFF(a XOR b)).
func buildPipeline(t *testing.T) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	a := b.Input("a")
	x := b.Input("b")
	s1 := b.DFF(b.Xor(a, x), "s1")
	s2 := b.DFF(s1, "s2")
	b.MarkOutput(s2, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSequentialATPGOnShallowPipeline(t *testing.T) {
	n := buildPipeline(t)
	// With 4 frames every fault is within reach; coverage should be
	// high — the contrast with the DSP core's collapse shows the effect
	// is pipeline depth + state justification, not the tool.
	res, err := SequentialATPG(n, 4, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.9 {
		t.Fatalf("shallow pipeline coverage %.2f, want ≥0.9 (found %d tests, %d untestable, %d aborted)",
			res.Coverage(), res.TestsFound, res.Untestable, res.Aborted)
	}
	// Every generated test must really detect at least one fault
	// (grading counted them), and tests are Frames cycles long.
	for _, test := range res.Tests {
		if len(test) != 4 {
			t.Fatalf("test length %d != frames", len(test))
		}
	}
}

func TestSequentialATPGOneFrameMissesDeepFaults(t *testing.T) {
	n := buildPipeline(t)
	deep, err := SequentialATPG(n, 1, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SequentialATPG(n, 4, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Coverage() >= full.Coverage() {
		t.Fatalf("1-frame coverage %.2f should trail 4-frame %.2f",
			deep.Coverage(), full.Coverage())
	}
}

func TestSequentialATPGProgressCallback(t *testing.T) {
	n := buildPipeline(t)
	calls := 0
	_, err := SequentialATPG(n, 2, 1, 500, func(done, total int) {
		calls++
		if done > total {
			t.Fatalf("done %d > total %d", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
}

type recordSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recordSink) Emit(ev obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func TestSequentialATPGStatsAndTrace(t *testing.T) {
	n := buildPipeline(t)
	rec := &recordSink{}
	res, err := SequentialATPGOpts(n, SeqATPGOptions{
		Frames: 4, SampleEvery: 1, MaxBacktracks: 2000, Sink: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Implications == 0 || res.Stats.Decisions == 0 {
		t.Fatalf("aggregated PODEM stats empty: %+v", res.Stats)
	}
	perFault, summaries := 0, 0
	for _, ev := range rec.events {
		switch {
		case ev.Type == obs.EventPhase && ev.Name == "seqatpg/fault":
			perFault++
			for _, key := range []string{"index", "status", "backtracks", "decisions", "seconds"} {
				if _, ok := ev.Fields[key]; !ok {
					t.Fatalf("per-fault event missing %q: %+v", key, ev.Fields)
				}
			}
		case ev.Type == obs.EventSummary:
			summaries++
			if ev.Fields["tests_found"] != res.TestsFound {
				t.Fatalf("summary disagrees with result: %+v", ev.Fields)
			}
		}
	}
	// The pipeline fixture unrolls every net, so every targeted fault
	// has sites and emits exactly one per-fault event.
	if perFault != res.FaultsTried {
		t.Fatalf("per-fault events %d, faults tried %d", perFault, res.FaultsTried)
	}
	if summaries != 1 {
		t.Fatalf("summary events %d", summaries)
	}
}

func TestSequentialATPGGradingConsistent(t *testing.T) {
	// DetectedTotal must equal a direct fault-simulation grade of the
	// test set.
	n := buildPipeline(t)
	res, err := SequentialATPG(n, 4, 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	detected := map[fault.Fault]bool{}
	for _, test := range res.Tests {
		sim, err := fault.Simulate(n, fault.Vectors(test), fault.SimOptions{Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sim.Faults {
			if sim.DetectedAt[i] >= 0 {
				detected[sim.Faults[i]] = true
			}
		}
	}
	if len(detected) != res.DetectedTotal {
		t.Fatalf("grading mismatch: %d vs %d", len(detected), res.DetectedTotal)
	}
}
