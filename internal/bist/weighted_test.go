package bist

import (
	"math"
	"testing"
)

func TestWeightedVectorsBias(t *testing.T) {
	weights := []float64{0.0, 0.125, 0.5, 0.875, 1.0}
	vecs := WeightedVectors(5, WeightedOptions{Vectors: 20000, Seed: 7, Weights: weights})
	counts := make([]int, 5)
	for _, v := range vecs {
		for b := 0; b < 5; b++ {
			if v>>uint(b)&1 == 1 {
				counts[b]++
			}
		}
	}
	for b, w := range weights {
		got := float64(counts[b]) / float64(len(vecs))
		if math.Abs(got-w) > 0.02 {
			t.Errorf("bit %d: P(1) = %.3f, want %.3f", b, got, w)
		}
	}
}

func TestWeightedVectorsDefaults(t *testing.T) {
	// Missing weights default to 0.5; out-of-range weights clamp.
	vecs := WeightedVectors(3, WeightedOptions{Vectors: 8000, Seed: 2, Weights: []float64{-1, 2}})
	counts := make([]int, 3)
	for _, v := range vecs {
		for b := 0; b < 3; b++ {
			if v>>uint(b)&1 == 1 {
				counts[b]++
			}
		}
	}
	if counts[0] != 0 {
		t.Errorf("clamped-0 bit fired %d times", counts[0])
	}
	if counts[1] != len(vecs) {
		t.Errorf("clamped-1 bit fired %d of %d", counts[1], len(vecs))
	}
	mid := float64(counts[2]) / float64(len(vecs))
	if math.Abs(mid-0.5) > 0.03 {
		t.Errorf("default bit P(1) = %.3f", mid)
	}
}

func TestOpcodeWeightsShape(t *testing.T) {
	w := OpcodeWeights()
	if len(w) != 17 {
		t.Fatalf("len = %d", len(w))
	}
	for i, v := range w {
		if v < 0 || v > 1 {
			t.Fatalf("weight %d = %f", i, v)
		}
	}
}
