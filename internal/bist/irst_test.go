package bist

import (
	"testing"

	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
)

func TestIRSTVectorsDecodable(t *testing.T) {
	vecs := IRSTVectors(IRSTOptions{Vectors: 2000, Seed: 3, OutEvery: 8})
	outs := 0
	opsSeen := map[isa.Op]bool{}
	for i, v := range vecs {
		in, err := isa.Decode(uint32(v))
		if err != nil {
			t.Fatalf("vector %d undecodable: %v", i, err)
		}
		opsSeen[in.Op] = true
		if in.Op == isa.OpOut {
			outs++
		}
	}
	if outs < 2000/8 {
		t.Fatalf("only %d OUTs with OutEvery=8", outs)
	}
	if len(opsSeen) < 10 {
		t.Fatalf("opcode pool too narrow: %d ops", len(opsSeen))
	}
}

func TestIRSTRestrictedOps(t *testing.T) {
	vecs := IRSTVectors(IRSTOptions{Vectors: 500, Seed: 1, Ops: []isa.Op{isa.OpLdi, isa.OpMpy}})
	for _, v := range vecs {
		in, err := isa.Decode(uint32(v))
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != isa.OpLdi && in.Op != isa.OpMpy {
			t.Fatalf("op %v outside restricted pool", in.Op)
		}
	}
}

func TestIRSTCoverageBetweenRawAndSBST(t *testing.T) {
	if testing.Short() {
		t.Skip("fault simulation of the full core is slow")
	}
	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	const vectors = 4096
	irst := IRSTVectors(IRSTOptions{Vectors: vectors, Seed: 1, OutEvery: 6})
	raw := PseudorandomVectors(vectors, 1)
	rIRST, err := fault.Simulate(core.Netlist, irst, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rRaw, err := fault.Simulate(core.Netlist, raw, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("at %d vectors: IRST %.2f%%, raw LFSR %.2f%%", vectors,
		100*rIRST.Coverage(), 100*rRaw.Coverage())
	// Guaranteed-legal instructions with regular OUTs should beat raw
	// LFSR words at equal length.
	if rIRST.Coverage() <= rRaw.Coverage()-0.01 {
		t.Errorf("IRST (%.2f%%) should be at least competitive with raw BIST (%.2f%%)",
			100*rIRST.Coverage(), 100*rRaw.Coverage())
	}
}
