// Package bist provides the two comparison baselines of the paper's
// Section 3.5: raw pseudorandom BIST (a 17-bit LFSR driving the
// instruction port directly, with no knowledge of the core's state or
// behavior) and gate-level sequential ATPG via bounded time-frame
// unrolling.
package bist

import (
	"time"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/obs"
)

// PseudorandomVectors returns count raw 17-bit LFSR words (the paper
// generates all 131,071 = 2^17−1 of them, one full LFSR period).
func PseudorandomVectors(count int, seed uint64) fault.Vectors {
	l := lfsr.MustNew(17, seed)
	vecs := make(fault.Vectors, count)
	for i := range vecs {
		vecs[i] = l.Next()
	}
	return vecs
}

// FullPeriod is the number of distinct non-zero 17-bit LFSR states.
const FullPeriod = 1<<17 - 1

// ATPGBaselineResult reports the sequential-ATPG baseline run.
type ATPGBaselineResult struct {
	Frames        int
	FaultsTried   int
	TestsFound    int
	Untestable    int
	Aborted       int
	TotalFaults   int
	DetectedTotal int
	// Tests holds the generated tests; each is Frames input words
	// applied from the reset state.
	Tests [][]uint64
	// Stats aggregates the PODEM search effort over every targeted
	// fault (decisions, backtracks, aborts, implications).
	Stats atpg.Stats
}

// Coverage returns the fraction of the full collapsed fault list the
// generated test set detects — the number a commercial flow reports.
func (r ATPGBaselineResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return float64(r.DetectedTotal) / float64(r.TotalFaults)
}

// SequentialATPG runs the gate-level sequential ATPG baseline: the core
// is unrolled `frames` time frames from the reset state, PODEM targets
// every sampleEvery-th collapsed fault, and the resulting test set is
// fault-simulated (each test from reset) against the full fault list.
//
// A pipelined core defeats this flow for the reason the paper gives: a
// useful test needs a long, coherent instruction sequence (load, compute,
// out), which a bounded unroll from reset cannot express — so coverage
// collapses to single digits.
func SequentialATPG(n *logic.Netlist, frames, sampleEvery, maxBacktracks int,
	progress func(done, total int)) (*ATPGBaselineResult, error) {
	return SequentialATPGOpts(n, SeqATPGOptions{
		Frames:        frames,
		SampleEvery:   sampleEvery,
		MaxBacktracks: maxBacktracks,
		Progress:      progress,
	})
}

// SeqATPGOptions configure the sequential-ATPG baseline.
type SeqATPGOptions struct {
	// Frames is the time-frame unroll depth.
	Frames int
	// SampleEvery targets every k-th collapsed fault (min 1).
	SampleEvery int
	// MaxBacktracks bounds each PODEM run.
	MaxBacktracks int
	// Progress, when non-nil, is called after each targeted fault.
	Progress func(done, total int)
	// Sink, when non-nil, receives a "seqatpg" span, one obs.EventPhase
	// per targeted fault (index, status, backtracks, seconds) and
	// throttleable obs.EventProgress samples.
	Sink obs.Sink
}

// SequentialATPGOpts is SequentialATPG with the full option set,
// including structured per-fault tracing.
func SequentialATPGOpts(n *logic.Netlist, opts SeqATPGOptions) (*ATPGBaselineResult, error) {
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	u, err := atpg.Unroll(n, opts.Frames)
	if err != nil {
		return nil, err
	}
	res := &ATPGBaselineResult{Frames: opts.Frames, TotalFaults: len(faults)}
	sampleEvery := opts.SampleEvery
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	span := obs.NewSpan(opts.Sink, "seqatpg")
	targets := (len(faults) + sampleEvery - 1) / sampleEvery
	numInputs := len(n.Inputs())
	for i := 0; i < len(faults); i += sampleEvery {
		f := faults[i]
		res.FaultsTried++
		sites := u.Sites(f.Site)
		if len(sites) == 0 {
			res.Untestable++
			continue
		}
		var faultStart time.Time
		if span != nil {
			faultStart = time.Now()
		}
		r := atpg.Generate(u.Netlist, fault.Fault{Site: sites[0], SA1: f.SA1}, atpg.Options{
			ExtraSites:    sites[1:],
			MaxBacktracks: opts.MaxBacktracks,
		})
		res.Stats.Merge(r.Stats)
		switch r.Status {
		case atpg.Detected:
			res.TestsFound++
			test := make([]uint64, opts.Frames)
			for fr := 0; fr < opts.Frames; fr++ {
				var word uint64
				for bit := 0; bit < numInputs; bit++ {
					if r.Assignment[u.InputAt[fr][bit]] {
						word |= 1 << uint(bit)
					}
				}
				test[fr] = word
			}
			res.Tests = append(res.Tests, test)
		case atpg.Untestable:
			res.Untestable++
		case atpg.Aborted:
			res.Aborted++
		}
		if span != nil {
			span.EventNamed(obs.EventPhase, "fault", map[string]any{
				"index":      i,
				"status":     r.Status.String(),
				"backtracks": r.Stats.Backtracks,
				"decisions":  r.Stats.Decisions,
				"seconds":    time.Since(faultStart).Seconds(),
			})
			span.Event(obs.EventProgress, map[string]any{
				"done":  res.FaultsTried,
				"total": targets,
			})
		}
		if opts.Progress != nil {
			opts.Progress(res.FaultsTried, targets)
		}
	}
	span.Add("tests_found", int64(res.TestsFound))
	span.Add("untestable", int64(res.Untestable))
	span.Add("aborted", int64(res.Aborted))
	span.Add("backtracks", int64(res.Stats.Backtracks))

	// Grade the test set: each test runs from reset, so faults are
	// simulated test by test with dropping in between.
	remaining := faults
	detected := 0
	for _, test := range res.Tests {
		if len(remaining) == 0 {
			break
		}
		sim, err := fault.Simulate(n, fault.Vectors(test), fault.SimOptions{Faults: remaining})
		if err != nil {
			return nil, err
		}
		var next []fault.Fault
		for i := range sim.Faults {
			if sim.DetectedAt[i] >= 0 {
				detected++
			} else {
				next = append(next, sim.Faults[i])
			}
		}
		remaining = next
	}
	res.DetectedTotal = detected
	span.Event(obs.EventSummary, map[string]any{
		"frames":      res.Frames,
		"tried":       res.FaultsTried,
		"tests_found": res.TestsFound,
		"untestable":  res.Untestable,
		"aborted":     res.Aborted,
		"detected":    res.DetectedTotal,
		"faults":      res.TotalFaults,
		"coverage":    res.Coverage(),
	})
	span.End()
	return res, nil
}
