// Package chaos is a seeded, deterministic fault-injection framework
// for hardening the campaign infrastructure: named injection points are
// threaded through the simulator kernels, the campaign engine and the
// sbstd server, and a spec string arms a subset of them with a failure
// kind (panic, delay, error, corrupted result word, short write,
// context cancel).
//
// The framework follows the fault-injection-as-a-library approach: the
// production code declares *where* a failure could strike
// (chaos.Maybe("engine.shard")), the spec declares *what* strikes and
// *when*, and a seed makes the whole campaign reproducible. When
// nothing is armed, Maybe is a single atomic load — effectively free in
// the simulator hot loops.
//
// Spec grammar (the CHAOS environment variable or the -chaos flag):
//
//	point=kind[:opt=val]...[,point=kind...]
//
// kinds: panic, delay, error, corrupt, shortwrite, cancel
// opts:  p=<probability per hit, default 1>
//	after=<skip the first N hits, default 0>
//	times=<max fires, default 1, 0 = unlimited>
//	delay=<duration for delay/cancel kinds, default 10ms>
//
// Example: one shard panic and a corrupted compiled-kernel batch word,
// reproducible under seed 42:
//
//	CHAOS='engine.shard=panic,logic.eventsim.diff=corrupt:times=50' \
//	CHAOS_SEED=42 sbstd ...
//
// Every fire increments the chaos.injected counter (and a per-point
// chaos.injected.<point> counter) on the default obs registry, so a
// chaos campaign leaves an audit trail of exactly what was injected.
package chaos

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kind is a failure mode an armed point injects.
type Kind uint8

// The failure kinds. Each call site applies only the kinds that make
// sense for it (a Fire of a kind the site never asks about is a no-op),
// so a spec can only trigger failures the code has declared survivable.
const (
	KindNone Kind = iota
	// KindPanic makes Fire.PanicNow panic.
	KindPanic
	// KindDelay makes Fire.Sleep block for the configured duration.
	KindDelay
	// KindError makes Fire.Err return an *InjectedError.
	KindError
	// KindCorrupt makes Fire.CorruptWord flip one seeded-random bit.
	KindCorrupt
	// KindShortWrite makes Fire.ShortWrite truncate a buffer.
	KindShortWrite
	// KindCancel makes Fire.Cancel invoke a cancel function (after the
	// configured delay).
	KindCancel
)

var kindNames = map[string]Kind{
	"panic":      KindPanic,
	"delay":      KindDelay,
	"error":      KindError,
	"corrupt":    KindCorrupt,
	"shortwrite": KindShortWrite,
	"cancel":     KindCancel,
}

// String names the kind as the spec grammar spells it.
func (k Kind) String() string {
	for n, v := range kindNames {
		if v == k {
			return n
		}
	}
	return "none"
}

// InjectedError is the error Fire.Err returns for error-kind fires, so
// call sites (and tests) can recognise injected failures.
type InjectedError struct {
	// Point is the injection point that fired.
	Point string
}

func (e *InjectedError) Error() string {
	return "chaos: injected error at " + e.Point
}

// point is one armed injection point's spec plus its fire bookkeeping.
type point struct {
	name  string
	kind  Kind
	prob  float64
	after int64
	times int64 // max fires; 0 = unlimited
	delay time.Duration

	hits  atomic.Int64
	fired atomic.Int64
	ctr   *obs.Counter
}

// Config is a parsed, armable chaos specification.
type Config struct {
	// Seed drives every probabilistic and randomized decision (fire
	// probability, corrupted bit choice), making a chaos campaign
	// reproducible.
	Seed   int64
	points map[string]*point
}

// Points returns the armed point names, sorted (diagnostics).
func (c *Config) Points() []string {
	names := make([]string, 0, len(c.points))
	for n := range c.points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse compiles a spec string (see the package comment for the
// grammar) into a Config. An empty spec yields an empty, harmless
// config.
func Parse(spec string, seed int64) (*Config, error) {
	cfg := &Config{Seed: seed, points: make(map[string]*point)}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		name, kindName, ok := strings.Cut(parts[0], "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("chaos: clause %q is not point=kind", clause)
		}
		kind, ok := kindNames[kindName]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown kind %q in %q", kindName, clause)
		}
		p := &point{
			name:  name,
			kind:  kind,
			prob:  1,
			times: 1,
			delay: 10 * time.Millisecond,
			ctr:   obs.Default().Counter("chaos.injected." + name),
		}
		for _, opt := range parts[1:] {
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: option %q in %q is not key=val", opt, clause)
			}
			var err error
			switch key {
			case "p":
				p.prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (p.prob < 0 || p.prob > 1) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "after":
				p.after, err = strconv.ParseInt(val, 10, 64)
			case "times":
				p.times, err = strconv.ParseInt(val, 10, 64)
			case "delay":
				p.delay, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("unknown option")
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: option %q in %q: %v", opt, clause, err)
			}
		}
		if prev, dup := cfg.points[name]; dup {
			return nil, fmt.Errorf("chaos: point %q armed twice (%s and %s)", name, prev.kind, kind)
		}
		cfg.points[name] = p
	}
	return cfg, nil
}

var (
	// armed is the fast-path gate every Maybe checks first: when no
	// config is armed, an injection point costs one atomic load.
	armed   atomic.Bool
	mu      sync.Mutex
	current *Config

	ctrInjected = obs.Default().Counter("chaos.injected")
)

// Arm makes the config live. Points reset their hit/fire counters on
// every Arm, so re-arming the same Config restarts the schedule.
func Arm(c *Config) {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range c.points {
		p.hits.Store(0)
		p.fired.Store(0)
	}
	current = c
	armed.Store(len(c.points) > 0)
}

// Disarm returns the process to the no-injection state.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	current = nil
	armed.Store(false)
}

// Armed reports whether any injection point is live.
func Armed() bool { return armed.Load() }

// Maybe is the injection point: it returns a Fire when the named point
// is armed and its schedule (after/times/p) says this hit fires, and
// nil otherwise — including always when chaos is disarmed, in which
// case the cost is a single atomic load.
func Maybe(name string) *Fire {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	cfg := current
	mu.Unlock()
	if cfg == nil {
		return nil
	}
	p := cfg.points[name]
	if p == nil {
		return nil
	}
	hit := p.hits.Add(1)
	if hit <= p.after {
		return nil
	}
	rng := mix(uint64(cfg.Seed), fnvHash(name), uint64(hit))
	if p.prob < 1 && float64(rng>>11)/(1<<53) >= p.prob {
		return nil
	}
	if p.times > 0 {
		// Claim one of the bounded fire slots atomically so concurrent
		// hits never over-fire.
		if n := p.fired.Add(1); n > p.times {
			p.fired.Add(-1)
			return nil
		}
	} else {
		p.fired.Add(1)
	}
	ctrInjected.Add(1)
	p.ctr.Add(1)
	return &Fire{Point: name, Kind: p.kind, Delay: p.delay, rng: mix(rng, 0x9e3779b97f4a7c15, 1)}
}

// Fire is one triggered injection. All methods are nil-safe no-ops, and
// each applies only its own kind, so a call site can declare every
// failure mode it survives in a straight line:
//
//	if f := chaos.Maybe("engine.shard"); f != nil {
//		f.PanicNow()
//		f.Sleep(ctx)
//		if err := f.Err(); err != nil {
//			return nil, err
//		}
//	}
type Fire struct {
	Point string
	Kind  Kind
	Delay time.Duration
	rng   uint64
}

// PanicNow panics for panic-kind fires.
func (f *Fire) PanicNow() {
	if f != nil && f.Kind == KindPanic {
		panic("chaos: injected panic at " + f.Point)
	}
}

// Sleep blocks for the fire's delay (delay kind only), returning early
// when ctx is cancelled. A nil ctx sleeps the full delay.
func (f *Fire) Sleep(ctx context.Context) {
	if f == nil || f.Kind != KindDelay {
		return
	}
	if ctx == nil {
		time.Sleep(f.Delay)
		return
	}
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Err returns an *InjectedError for error-kind fires and nil otherwise.
func (f *Fire) Err() error {
	if f != nil && f.Kind == KindError {
		return &InjectedError{Point: f.Point}
	}
	return nil
}

// CorruptWord flips one seeded-random bit of w for corrupt-kind fires
// and returns w unchanged otherwise.
func (f *Fire) CorruptWord(w uint64) uint64 {
	if f == nil || f.Kind != KindCorrupt {
		return w
	}
	return w ^ 1<<(f.rng&63)
}

// ShortWrite truncates data to half its length for shortwrite-kind
// fires, reporting whether it truncated.
func (f *Fire) ShortWrite(data []byte) ([]byte, bool) {
	if f == nil || f.Kind != KindShortWrite {
		return data, false
	}
	return data[:len(data)/2], true
}

// Cancel invokes cancel for cancel-kind fires, after the fire's delay
// (in a goroutine when the delay is non-zero).
func (f *Fire) Cancel(cancel func()) {
	if f == nil || f.Kind != KindCancel {
		return
	}
	if f.Delay <= 0 {
		cancel()
		return
	}
	d := f.Delay
	go func() {
		time.Sleep(d)
		cancel()
	}()
}

// mix is splitmix64-style avalanche over the three inputs, giving each
// (seed, point, hit) its own reproducible random stream.
func mix(a, b, c uint64) uint64 {
	z := a ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// FlagConfig is the -chaos/-chaos-seed flag pair the cmd tools
// register; Arm resolves flags over the CHAOS/CHAOS_SEED environment.
type FlagConfig struct {
	Spec string
	Seed int64
}

// Flags registers -chaos and -chaos-seed on the default flag set.
func Flags() *FlagConfig { return FlagsOn(flag.CommandLine) }

// FlagsOn registers the pair on an explicit flag set.
func FlagsOn(fs *flag.FlagSet) *FlagConfig {
	c := &FlagConfig{}
	fs.StringVar(&c.Spec, "chaos", "",
		"arm chaos fault injection: point=kind[:opt=val]...,... (overrides $CHAOS)")
	fs.Int64Var(&c.Seed, "chaos-seed", 0,
		"chaos randomness seed (0 = $CHAOS_SEED, else 1)")
	return c
}

// Arm parses and arms the flag (or environment) spec; with neither set
// it leaves chaos disarmed and returns nil.
func (c *FlagConfig) Arm() error {
	spec := c.Spec
	if spec == "" {
		spec = os.Getenv("CHAOS")
	}
	if spec == "" {
		return nil
	}
	seed := c.Seed
	if seed == 0 {
		if env := os.Getenv("CHAOS_SEED"); env != "" {
			var err error
			if seed, err = strconv.ParseInt(env, 10, 64); err != nil {
				return fmt.Errorf("chaos: CHAOS_SEED: %v", err)
			}
		} else {
			seed = 1
		}
	}
	cfg, err := Parse(spec, seed)
	if err != nil {
		return err
	}
	Arm(cfg)
	return nil
}
