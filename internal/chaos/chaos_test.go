package chaos

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// arm arms a spec for the test and disarms on cleanup.
func arm(t *testing.T, spec string, seed int64) *Config {
	t.Helper()
	cfg, err := Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	Arm(cfg)
	t.Cleanup(Disarm)
	return cfg
}

func TestDisarmedIsSilent(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed after Disarm")
	}
	for i := 0; i < 1000; i++ {
		if f := Maybe("any.point"); f != nil {
			t.Fatalf("disarmed Maybe fired %+v", f)
		}
	}
	// Every Fire method is nil-safe, so call sites need no nil checks
	// beyond the one they already write.
	var f *Fire
	f.PanicNow()
	f.Sleep(context.Background())
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if w := f.CorruptWord(42); w != 42 {
		t.Fatalf("nil CorruptWord changed word to %d", w)
	}
	if _, trunc := f.ShortWrite([]byte("abc")); trunc {
		t.Fatal("nil ShortWrite truncated")
	}
	f.Cancel(func() { t.Fatal("nil Cancel invoked") })
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nokind",
		"p=bogus",
		"x=explode",
		"x=panic:times=abc",
		"x=panic:p=2",
		"x=panic:wat=1",
		"x=panic,x=delay",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	cfg, err := Parse(" a.b=panic:times=2 , c.d=delay:delay=5ms:after=1 ", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Points(); len(got) != 2 || got[0] != "a.b" || got[1] != "c.d" {
		t.Fatalf("points %v", got)
	}
}

func TestScheduleAfterTimes(t *testing.T) {
	arm(t, "pt=error:after=2:times=3", 1)
	var fires []int
	for i := 1; i <= 10; i++ {
		if f := Maybe("pt"); f != nil {
			fires = append(fires, i)
			if !errors.As(f.Err(), new(*InjectedError)) {
				t.Fatalf("hit %d: Err() = %v", i, f.Err())
			}
		}
	}
	// Skip the first two hits, then fire exactly three times.
	if len(fires) != 3 || fires[0] != 3 || fires[2] != 5 {
		t.Fatalf("fire pattern %v, want [3 4 5]", fires)
	}
	if f := Maybe("other"); f != nil {
		t.Fatal("unarmed point fired")
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		arm(t, "pt=error:p=0.3:times=0", seed)
		var fires []int
		for i := 0; i < 200; i++ {
			if Maybe("pt") != nil {
				fires = append(fires, i)
			}
		}
		return fires
	}
	a, b := run(11), run(11)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d", i)
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire patterns")
	}
}

func TestPanicKind(t *testing.T) {
	arm(t, "pt=panic", 1)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "chaos: injected panic at pt") {
			t.Fatalf("recover() = %v", r)
		}
	}()
	Maybe("pt").PanicNow()
	t.Fatal("PanicNow did not panic")
}

func TestCorruptWordFlipsOneBit(t *testing.T) {
	arm(t, "pt=corrupt:times=0", 9)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		f := Maybe("pt")
		if f == nil {
			t.Fatal("corrupt point did not fire")
		}
		w := f.CorruptWord(0)
		if w == 0 || w&(w-1) != 0 {
			t.Fatalf("CorruptWord(0) = %#x, want exactly one bit", w)
		}
		seen[w] = true
	}
	if len(seen) < 8 {
		t.Fatalf("bit choice barely varies: %d distinct bits in 64 fires", len(seen))
	}
}

func TestShortWriteAndDelayAndCancel(t *testing.T) {
	arm(t, "sw=shortwrite,dl=delay:delay=1ms,cx=cancel:delay=0s,cxa=cancel:delay=1ms", 1)
	data, trunc := Maybe("sw").ShortWrite([]byte("0123456789"))
	if !trunc || len(data) != 5 {
		t.Fatalf("ShortWrite -> %q trunc=%v", data, trunc)
	}
	start := time.Now()
	Maybe("dl").Sleep(context.Background())
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay fire did not sleep")
	}
	cancelled := false
	Maybe("cx").Cancel(func() { cancelled = true })
	if !cancelled {
		t.Fatal("zero-delay cancel fire did not invoke cancel synchronously")
	}
	async := make(chan struct{})
	Maybe("cxa").Cancel(func() { close(async) })
	select {
	case <-async:
	case <-time.After(5 * time.Second):
		t.Fatal("delayed cancel fire never invoked cancel")
	}
}

func TestSleepRespectsContext(t *testing.T) {
	arm(t, "dl=delay:delay=10s", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Maybe("dl").Sleep(ctx)
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored cancelled context")
	}
}

func TestConcurrentFiresBounded(t *testing.T) {
	arm(t, "pt=error:times=5", 1)
	before := obs.Default().Counter("chaos.injected.pt").Load()
	var fires sync.WaitGroup
	var count, total = make(chan struct{}, 1000), 100
	for g := 0; g < total; g++ {
		fires.Add(1)
		go func() {
			defer fires.Done()
			for i := 0; i < 10; i++ {
				if Maybe("pt") != nil {
					count <- struct{}{}
				}
			}
		}()
	}
	fires.Wait()
	close(count)
	n := 0
	for range count {
		n++
	}
	if n != 5 {
		t.Fatalf("times=5 fired %d times under concurrency", n)
	}
	if got := obs.Default().Counter("chaos.injected.pt").Load() - before; got != 5 {
		t.Fatalf("chaos.injected.pt advanced by %d, want 5", got)
	}
}

func TestFlagConfigArmFromEnv(t *testing.T) {
	t.Setenv("CHAOS", "env.pt=error")
	t.Setenv("CHAOS_SEED", "33")
	c := &FlagConfig{}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disarm)
	if !Armed() {
		t.Fatal("env spec did not arm")
	}
	if Maybe("env.pt") == nil {
		t.Fatal("env-armed point did not fire")
	}
	// Flag spec overrides env.
	c2 := &FlagConfig{Spec: "flag.pt=error", Seed: 1}
	if err := c2.Arm(); err != nil {
		t.Fatal(err)
	}
	if Maybe("env.pt") != nil {
		t.Fatal("env point still armed after flag override")
	}
	if Maybe("flag.pt") == nil {
		t.Fatal("flag point not armed")
	}
}

func TestFlagConfigNoSpecIsNoop(t *testing.T) {
	t.Setenv("CHAOS", "")
	Disarm()
	c := &FlagConfig{}
	if err := c.Arm(); err != nil {
		t.Fatal(err)
	}
	if Armed() {
		t.Fatal("armed with no spec")
	}
}

func BenchmarkMaybeDisarmed(b *testing.B) {
	Disarm()
	for i := 0; i < b.N; i++ {
		if Maybe("bench.point") != nil {
			b.Fatal("fired")
		}
	}
}
