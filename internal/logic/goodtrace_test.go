package logic

import (
	"math/rand"
	"testing"
)

// traceFixture builds a chain circuit whose net count crosses a
// 64-bit row-word boundary (IDs straddle words 0 and 1), so packed-row
// indexing is exercised at and past the seam — and the net count is
// deliberately not a multiple of 64.
func traceFixture(t *testing.T) (*Netlist, *CompiledSim) {
	t.Helper()
	b := NewBuilder()
	in := b.Input("a")
	cur := in
	for i := 0; i < 70; i++ {
		cur = b.Not(cur)
		if i == 20 || i == 40 {
			// Fold in flip-flop state so frontier round-trips are
			// non-trivial.
			cur = b.Xor(cur, b.DFF(cur, ""))
		}
	}
	b.MarkOutput(cur, "y")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNets()%64 == 0 || n.NumNets() < 65 {
		t.Fatalf("fixture wants an odd-sized multi-word circuit, got %d nets", n.NumNets())
	}
	return n, NewCompiledSim(CompiledFor(n))
}

// TestGoodTraceRecordBitWord: recorded rows agree with the simulator's
// lane 0 at every net — including IDs at the 63/64 word seam — and
// Word broadcasts each bit to all 64 lanes.
func TestGoodTraceRecordBitWord(t *testing.T) {
	n, sim := traceFixture(t)
	tr := NewGoodTrace(n.NumNets(), 4)
	rng := rand.New(rand.NewSource(7))
	for cyc := 0; cyc < 4; cyc++ {
		sim.SetInput(n.Inputs()[0], rng.Intn(2) == 1)
		sim.Settle()
		tr.Record(cyc, sim)
		for id := 0; id < n.NumNets(); id++ {
			want := sim.Word(NetID(id)) & 1
			if got := tr.Bit(cyc, NetID(id)); got != want {
				t.Fatalf("cycle %d net %d: Bit=%d sim=%d", cyc, id, got, want)
			}
			if got, want := tr.Word(cyc, NetID(id)), -want; got != uint64(want) {
				t.Fatalf("cycle %d net %d: Word=%#x want %#x", cyc, id, got, want)
			}
		}
		sim.ClockAfterSettle()
	}
}

// TestGoodTraceEnsureCyclesRegrow: growing the window preserves the
// recorded prefix and recording continues from the watermark.
func TestGoodTraceEnsureCyclesRegrow(t *testing.T) {
	n, sim := traceFixture(t)
	in := n.Inputs()[0]
	tr := NewGoodTrace(n.NumNets(), 2)

	var want [5][]uint64
	record := func(cyc int, v bool) {
		sim.SetInput(in, v)
		sim.Settle()
		tr.Record(cyc, sim)
		row := make([]uint64, 0, n.NumNets())
		for id := 0; id < n.NumNets(); id++ {
			row = append(row, sim.Word(NetID(id))&1)
		}
		want[cyc] = row
		sim.ClockAfterSettle()
	}
	record(0, true)
	record(1, false)

	tr.EnsureCycles(5)
	if tr.Cycles() != 5 {
		t.Fatalf("Cycles()=%d after EnsureCycles(5)", tr.Cycles())
	}
	if tr.ValidThrough() != 2 {
		t.Fatalf("regrow moved the watermark: %d", tr.ValidThrough())
	}
	record(2, true)
	record(3, true)
	record(4, false)

	for cyc := 0; cyc < 5; cyc++ {
		for id, bit := range want[cyc] {
			if got := tr.Bit(cyc, NetID(id)); got != bit {
				t.Fatalf("cycle %d net %d lost across regrow: Bit=%d want %d", cyc, id, got, bit)
			}
		}
	}
	// A no-op Ensure (already big enough) must not reallocate rows away.
	tr.EnsureCycles(3)
	if tr.Cycles() != 5 || tr.ValidThrough() != 5 {
		t.Fatalf("shrinking EnsureCycles changed the window: cap=%d valid=%d", tr.Cycles(), tr.ValidThrough())
	}
}

// TestGoodTraceWindowAndFrontier: re-windowing discards rows but keeps
// the frontier, which is how per-segment run-local traces resume; the
// frontier state round-trips through StateInto.
func TestGoodTraceWindowAndFrontier(t *testing.T) {
	n, sim := traceFixture(t)
	in := n.Inputs()[0]
	tr := NewGoodTrace(n.NumNets(), 2)
	for cyc := 0; cyc < 2; cyc++ {
		sim.SetInput(in, true)
		sim.Settle()
		tr.Record(cyc, sim)
		sim.ClockAfterSettle()
	}
	state := make([]uint64, sim.StateWords())
	sim.LaneState(0, state)
	tr.SetFrontier(2, state)

	tr.Window(2, 2)
	if tr.ValidThrough() != 2 {
		t.Fatalf("ValidThrough=%d after Window(2,2)", tr.ValidThrough())
	}
	if fc, _ := tr.Frontier(); fc != 2 {
		t.Fatalf("frontier cycle %d lost by Window", fc)
	}
	got := make([]uint64, len(state))
	tr.StateInto(2, n.DFFs(), got)
	for i := range state {
		if got[i] != state[i] {
			t.Fatalf("frontier state word %d: %#x want %#x", i, got[i], state[i])
		}
	}
	// Recording resumes in the new window at the watermark.
	sim.SetInput(in, false)
	sim.Settle()
	tr.Record(2, sim)
	if tr.ValidThrough() != 3 {
		t.Fatalf("ValidThrough=%d after resumed Record", tr.ValidThrough())
	}
}
