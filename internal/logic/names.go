package logic

import (
	"fmt"
	"strings"
)

// sanitizeIdent rewrites s into an identifier safe for the structural
// interchange formats this package emits (Verilog, .bench): letters,
// digits and underscores, never starting with a digit.
func sanitizeIdent(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "n_" + out
	}
	return out
}

// exportNames assigns every net a sanitized, collision-free identifier.
// Named nets keep their sanitized source name where possible; unnamed
// nets fall back to n<id>. Sanitization can alias distinct source names
// ("a.b" and "a-b" both become "a_b"), and a source name can collide
// with a fallback or a reserved word — every collision is resolved by
// appending the net id (and a further counter in the pathological case
// where that name is itself taken), so two different nets never share
// an exported identifier.
func exportNames(n *Netlist, reserved ...string) []string {
	names := make([]string, n.NumNets())
	used := make(map[string]bool, n.NumNets()+len(reserved))
	for _, r := range reserved {
		used[r] = true
	}
	for id := 0; id < n.NumNets(); id++ {
		name := n.NameOf(NetID(id))
		if name != "" {
			name = sanitizeIdent(name)
		} else {
			name = fmt.Sprintf("n%d", id)
		}
		if used[name] {
			base := name
			name = fmt.Sprintf("%s_%d", base, id)
			for sfx := 2; used[name]; sfx++ {
				name = fmt.Sprintf("%s_%d_%d", base, id, sfx)
			}
		}
		used[name] = true
		names[id] = name
	}
	return names
}
