package logic

import (
	"fmt"
	"io"
	"sort"
)

// VCDWriter streams a simulation as a Value Change Dump file viewable in
// any waveform viewer — the debugging companion every RTL flow has.
// Attach it to a Simulator by sampling after each Step (or Settle).
type VCDWriter struct {
	w       io.Writer
	n       *Netlist
	watched []NetID
	codes   []string
	last    []int8 // -1 unknown, 0, 1
	time    int64
	header  bool
	err     error
}

// NewVCDWriter watches the given nets (nil = all named nets plus ports).
func NewVCDWriter(w io.Writer, n *Netlist, watch []NetID) *VCDWriter {
	if watch == nil {
		seen := map[NetID]bool{}
		add := func(id NetID) {
			if !seen[id] {
				seen[id] = true
				watch = append(watch, id)
			}
		}
		for _, id := range n.Inputs() {
			add(id)
		}
		for _, id := range n.Outputs() {
			add(id)
		}
		for id := 0; id < n.NumNets(); id++ {
			switch n.Gate(NetID(id)).Kind {
			case GateConst0, GateConst1:
				continue // constants never change; skip the noise
			}
			if n.NameOf(NetID(id)) != "" {
				add(NetID(id))
			}
		}
		sort.Slice(watch, func(i, j int) bool { return watch[i] < watch[j] })
	}
	v := &VCDWriter{w: w, n: n, watched: watch}
	v.codes = make([]string, len(watch))
	v.last = make([]int8, len(watch))
	for i := range v.last {
		v.last[i] = -1
		v.codes[i] = vcdCode(i)
	}
	return v
}

// vcdCode assigns compact printable identifier codes.
func vcdCode(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
	code := ""
	for {
		code = string(alphabet[i%len(alphabet)]) + code
		i = i/len(alphabet) - 1
		if i < 0 {
			break
		}
	}
	return code
}

func (v *VCDWriter) writeHeader() {
	fmt.Fprintf(v.w, "$timescale 1ns $end\n$scope module %s $end\n", "netlist")
	for i, id := range v.watched {
		name := v.n.NameOf(id)
		if name == "" {
			name = fmt.Sprintf("n%d", id)
		}
		fmt.Fprintf(v.w, "$var wire 1 %s %s $end\n", v.codes[i], vcdSanitize(name))
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	v.header = true
}

func vcdSanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ' || c == '$':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Sample records the current values from the simulator at one timestamp
// (call once per clock cycle, after Settle or Step).
func (v *VCDWriter) Sample(s *Simulator) {
	if v.err != nil {
		return
	}
	if !v.header {
		v.writeHeader()
	}
	wroteTime := false
	for i, id := range v.watched {
		val := int8(0)
		if s.Value(id) {
			val = 1
		}
		if val == v.last[i] {
			continue
		}
		if !wroteTime {
			if _, err := fmt.Fprintf(v.w, "#%d\n", v.time); err != nil {
				v.err = err
				return
			}
			wroteTime = true
		}
		fmt.Fprintf(v.w, "%d%s\n", val, v.codes[i])
		v.last[i] = val
	}
	v.time += 10
}

// Err reports the first write error, if any.
func (v *VCDWriter) Err() error { return v.err }
