package logic

// LiveNets returns, for every net, whether it lies in the input cone of
// some primary output (crossing flip-flops through their D pins). Nets
// outside that cone drive nothing observable: a synthesis tool would
// have pruned them, and a fault simulator excludes their faults from
// the fault universe as untestable-by-construction. The fault package
// uses this to build realistic fault lists (e.g. decoder one-hot lines
// for opcodes nothing consumes are dead logic).
func (n *Netlist) LiveNets() []bool {
	live := make([]bool, len(n.gates))
	var stack []NetID
	mark := func(id NetID) {
		if !live[id] {
			live[id] = true
			stack = append(stack, id)
		}
	}
	for _, o := range n.outputs {
		mark(o)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range n.gates[id].In {
			mark(in)
		}
	}
	return live
}
