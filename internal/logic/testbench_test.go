package logic

import (
	"math/rand"
	"strings"
	"testing"
)

func TestExpectedOutputs(t *testing.T) {
	// Shift register: expected output lags input by its depth.
	b := NewBuilder()
	din := b.Input("din")
	q := b.DFF(din, "q0")
	q = b.DFF(q, "q1")
	b.MarkOutput(q, "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vectors := []uint64{1, 0, 1, 1, 0, 0}
	exp := ExpectedOutputs(n, vectors)
	want := []uint64{0, 0, 1, 0, 1, 1}
	for i := range exp {
		if exp[i] != want[i] {
			t.Fatalf("cycle %d: expected %d want %d (all %v)", i, exp[i], want[i], exp)
		}
	}
}

func TestWriteTestbench(t *testing.T) {
	n, a, bb, cin, _, _ := buildFullAdder(t, BuildOptions{})
	rng := rand.New(rand.NewSource(3))
	vectors := make([]uint64, 16)
	for i := range vectors {
		vectors[i] = rng.Uint64() & (1<<9 - 1)
	}
	_ = a
	_ = bb
	_ = cin
	exp := ExpectedOutputs(n, vectors)
	var sb strings.Builder
	if err := WriteTestbench(&sb, n, "adder", vectors, exp); err != nil {
		t.Fatal(err)
	}
	tb := sb.String()
	for _, want := range []string{
		"module tb;",
		"adder dut(clk, rst",
		"TESTBENCH PASS",
		"$finish;",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	if got := strings.Count(tb, "if (out_vec !=="); got != len(vectors) {
		t.Errorf("%d assertions for %d vectors", got, len(vectors))
	}
	// Mismatched lengths must error.
	if err := WriteTestbench(&sb, n, "adder", vectors, exp[:3]); err == nil {
		t.Error("expected length-mismatch error")
	}
}
