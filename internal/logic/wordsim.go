package logic

import "fmt"

// WordSim evaluates a Netlist with 64 independent machines in parallel,
// one per bit lane of a uint64 word. All lanes share the same primary
// input values each cycle; they diverge only through per-net injection
// masks, which is exactly the model the stuck-at fault simulator needs:
// lane 0 is the fault-free machine and lanes 1..63 each carry one fault.
type WordSim struct {
	n    *Netlist
	vals []uint64
	next []uint64

	// Injection masks applied after each net is evaluated:
	//   v = (v &^ sa0[id]) | sa1[id]
	// A lane bit set in sa0 forces that lane to 0; in sa1, to 1.
	sa0 []uint64
	sa1 []uint64

	// injected lists nets with non-zero masks so ClearInjections is O(k).
	injected []NetID
}

// NewWordSim returns a WordSim with all lanes reset to state 0.
func NewWordSim(n *Netlist) *WordSim {
	w := &WordSim{
		n:    n,
		vals: make([]uint64, n.NumNets()),
		next: make([]uint64, len(n.dffs)),
		sa0:  make([]uint64, n.NumNets()),
		sa1:  make([]uint64, n.NumNets()),
	}
	w.Reset()
	return w
}

// Reset clears every lane's nets and flip-flops to 0 and removes all
// injections.
func (w *WordSim) Reset() {
	for i := range w.vals {
		w.vals[i] = 0
	}
	for i := range w.next {
		w.next[i] = 0
	}
	for i := range w.n.gates {
		if w.n.gates[i].Kind == GateConst1 {
			w.vals[i] = ^uint64(0)
		}
	}
	w.ClearInjections()
}

// Inject forces net id stuck-at value in lane (1..63). Lane 0 is
// reserved for the fault-free machine.
func (w *WordSim) Inject(id NetID, stuckAt1 bool, lane uint) {
	if lane == 0 || lane > 63 {
		panic(fmt.Sprintf("logic: Inject lane %d out of range 1..63", lane))
	}
	if w.sa0[id] == 0 && w.sa1[id] == 0 {
		w.injected = append(w.injected, id)
	}
	if stuckAt1 {
		w.sa1[id] |= 1 << lane
	} else {
		w.sa0[id] |= 1 << lane
	}
}

// ApplyInjectionsToValues re-forces every injected net's current value
// word. Call after loading lane state with SetLaneState so a fault sited
// on a DFF Q net holds from the very first settle of a segment.
func (w *WordSim) ApplyInjectionsToValues() {
	for _, id := range w.injected {
		w.vals[id] = (w.vals[id] &^ w.sa0[id]) | w.sa1[id]
	}
}

// ClearInjections removes all fault injections (lanes keep their
// diverged state until Reset).
func (w *WordSim) ClearInjections() {
	for _, id := range w.injected {
		w.sa0[id] = 0
		w.sa1[id] = 0
	}
	w.injected = w.injected[:0]
}

// SetInput drives a primary input identically across all lanes.
func (w *WordSim) SetInput(id NetID, v bool) {
	if w.n.gates[id].Kind != GateInput {
		panic(fmt.Sprintf("logic: SetInput on non-input net %d", id))
	}
	if v {
		w.vals[id] = ^uint64(0)
	} else {
		w.vals[id] = 0
	}
	// Input nets are themselves fault sites (stuck-at on a primary input).
	w.vals[id] = (w.vals[id] &^ w.sa0[id]) | w.sa1[id]
}

// SetInputBus drives a bus of primary inputs from the low bits of v.
func (w *WordSim) SetInputBus(bus Bus, v uint64) {
	for i, id := range bus {
		w.SetInput(id, v>>uint(i)&1 == 1)
	}
}

// Word returns the 64-lane value word of net id after the last Step.
func (w *WordSim) Word(id NetID) uint64 { return w.vals[id] }

// LaneBusValue extracts the bus value seen by one lane.
func (w *WordSim) LaneBusValue(bus Bus, lane uint) uint64 {
	var v uint64
	for i, id := range bus {
		if w.vals[id]>>lane&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Step settles the combinational frame and clocks all DFFs in every lane.
func (w *WordSim) Step() {
	w.Settle()
	w.ClockAfterSettle()
}

// ClockAfterSettle clocks all DFFs using the already-settled frame. Use
// it when outputs must be sampled between Settle and the clock edge (the
// fault simulator's strobe point).
func (w *WordSim) ClockAfterSettle() {
	for i, q := range w.n.dffs {
		w.next[i] = w.vals[w.n.gates[q].In[0]]
	}
	for i, q := range w.n.dffs {
		// DFF outputs are fault sites too (stuck-at on the Q net).
		w.vals[q] = (w.next[i] &^ w.sa0[q]) | w.sa1[q]
	}
}

// CaptureNext records every DFF's next-state (D value) from the
// currently settled frame without clocking. CommitNext later applies it.
// The pair lets a caller interpose work (e.g. a re-settle with fault
// injections for transition-fault detection) between computing the good
// next state and the clock edge.
func (w *WordSim) CaptureNext() {
	for i, q := range w.n.dffs {
		w.next[i] = w.vals[w.n.gates[q].In[0]]
	}
}

// CommitNext clocks the DFFs with the values recorded by CaptureNext.
func (w *WordSim) CommitNext() {
	for i, q := range w.n.dffs {
		w.vals[q] = (w.next[i] &^ w.sa0[q]) | w.sa1[q]
	}
}

// Settle evaluates the combinational frame without clocking.
func (w *WordSim) Settle() {
	vals, sa0, sa1 := w.vals, w.sa0, w.sa1
	for _, id := range w.n.order {
		g := &w.n.gates[id]
		var v uint64
		switch g.Kind {
		case GateBuf:
			v = vals[g.In[0]]
		case GateNot:
			v = ^vals[g.In[0]]
		case GateAnd:
			v = vals[g.In[0]]
			for _, in := range g.In[1:] {
				v &= vals[in]
			}
		case GateOr:
			v = vals[g.In[0]]
			for _, in := range g.In[1:] {
				v |= vals[in]
			}
		case GateNand:
			v = vals[g.In[0]]
			for _, in := range g.In[1:] {
				v &= vals[in]
			}
			v = ^v
		case GateNor:
			v = vals[g.In[0]]
			for _, in := range g.In[1:] {
				v |= vals[in]
			}
			v = ^v
		case GateXor:
			v = vals[g.In[0]]
			for _, in := range g.In[1:] {
				v ^= vals[in]
			}
		case GateXnor:
			v = vals[g.In[0]]
			for _, in := range g.In[1:] {
				v ^= vals[in]
			}
			v = ^v
		case GateMux2:
			sel := vals[g.In[0]]
			v = (vals[g.In[1]] &^ sel) | (vals[g.In[2]] & sel)
		default:
			panic(fmt.Sprintf("logic: Settle on %s", g.Kind))
		}
		vals[id] = (v &^ sa0[id]) | sa1[id]
	}
}

// OutputDiff returns, for each primary output, a mask of lanes whose
// value differs from lane 0 (the good machine), OR-ed together.
func (w *WordSim) OutputDiff() uint64 {
	var diff uint64
	for _, id := range w.n.outputs {
		v := w.vals[id]
		good := v & 1
		// Broadcast lane 0 across the word: 0 -> 0..0, 1 -> 1..1.
		var ref uint64
		if good == 1 {
			ref = ^uint64(0)
		}
		diff |= v ^ ref
	}
	return diff &^ 1
}

// LaneState extracts one lane's DFF state as a packed bitset, one bit
// per DFF in Netlist.DFFs order.
func (w *WordSim) LaneState(lane uint, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, q := range w.n.dffs {
		if w.vals[q]>>lane&1 == 1 {
			dst[i/64] |= 1 << uint(i%64)
		}
	}
}

// SetLaneState loads one lane's DFF state from a packed bitset.
func (w *WordSim) SetLaneState(lane uint, src []uint64) {
	bit := uint64(1) << lane
	for i, q := range w.n.dffs {
		if src[i/64]>>(uint(i)%64)&1 == 1 {
			w.vals[q] |= bit
		} else {
			w.vals[q] &^= bit
		}
	}
}

// StateWords returns the number of uint64 words needed by LaneState.
func (w *WordSim) StateWords() int { return (len(w.n.dffs) + 63) / 64 }

// SetWords bulk-writes raw value words for the given nets (all lanes at
// once) — used to restore pristine frame-source values between fault
// groups in transition-fault simulation.
func (w *WordSim) SetWords(nets []NetID, words []uint64) {
	for i, id := range nets {
		w.vals[id] = words[i]
	}
}
