package logic

import "fmt"

// CompiledSim is WordSim's drop-in replacement running a Compiled
// program: the same 64-lane semantics (lane 0 fault-free, lanes 1..63
// carrying per-net stuck-at injection masks), but the combinational
// settle executes the flat instruction stream instead of walking Gate
// structs, and value storage includes the temporary slots the compiler
// introduced for decomposed variadic gates.
//
// Results are bit-identical to WordSim for every method; the
// differential tests in this package and package fault enforce that.
type CompiledSim struct {
	c    *Compiled
	vals []uint64 // len c.slots; indices >= c.numNets are temporaries
	next []uint64

	// Injection masks, sized to slots so the inner loop masks every
	// destination uniformly; temporary slots keep zero masks forever.
	sa0 []uint64
	sa1 []uint64

	injected []NetID

	evals int64
}

// NewCompiledSim returns a CompiledSim with all lanes reset to state 0.
func NewCompiledSim(c *Compiled) *CompiledSim {
	s := &CompiledSim{
		c:    c,
		vals: make([]uint64, c.slots),
		next: make([]uint64, len(c.n.dffs)),
		sa0:  make([]uint64, c.slots),
		sa1:  make([]uint64, c.slots),
	}
	s.Reset()
	return s
}

// Compiled returns the program the simulator runs.
func (s *CompiledSim) Compiled() *Compiled { return s.c }

// Reset clears every lane's nets and flip-flops to 0 and removes all
// injections.
func (s *CompiledSim) Reset() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	for i := range s.next {
		s.next[i] = 0
	}
	for i := range s.c.n.gates {
		if s.c.n.gates[i].Kind == GateConst1 {
			s.vals[i] = ^uint64(0)
		}
	}
	s.ClearInjections()
}

// Inject forces net id stuck-at value in lane (1..63). Lane 0 is
// reserved for the fault-free machine.
func (s *CompiledSim) Inject(id NetID, stuckAt1 bool, lane uint) {
	if lane == 0 || lane > 63 {
		panic(fmt.Sprintf("logic: Inject lane %d out of range 1..63", lane))
	}
	if s.sa0[id] == 0 && s.sa1[id] == 0 {
		s.injected = append(s.injected, id)
	}
	if stuckAt1 {
		s.sa1[id] |= 1 << lane
	} else {
		s.sa0[id] |= 1 << lane
	}
}

// ApplyInjectionsToValues re-forces every injected net's current value
// word (see WordSim.ApplyInjectionsToValues).
func (s *CompiledSim) ApplyInjectionsToValues() {
	for _, id := range s.injected {
		s.vals[id] = (s.vals[id] &^ s.sa0[id]) | s.sa1[id]
	}
}

// ClearInjections removes all fault injections (lanes keep their
// diverged state until Reset).
func (s *CompiledSim) ClearInjections() {
	for _, id := range s.injected {
		s.sa0[id] = 0
		s.sa1[id] = 0
	}
	s.injected = s.injected[:0]
}

// SetInput drives a primary input identically across all lanes.
func (s *CompiledSim) SetInput(id NetID, v bool) {
	if s.c.n.gates[id].Kind != GateInput {
		panic(fmt.Sprintf("logic: SetInput on non-input net %d", id))
	}
	if v {
		s.vals[id] = ^uint64(0)
	} else {
		s.vals[id] = 0
	}
	s.vals[id] = (s.vals[id] &^ s.sa0[id]) | s.sa1[id]
}

// SetInputBus drives a bus of primary inputs from the low bits of v.
func (s *CompiledSim) SetInputBus(bus Bus, v uint64) {
	for i, id := range bus {
		s.SetInput(id, v>>uint(i)&1 == 1)
	}
}

// Word returns the 64-lane value word of net id after the last Step.
func (s *CompiledSim) Word(id NetID) uint64 { return s.vals[id] }

// LaneBusValue extracts the bus value seen by one lane.
func (s *CompiledSim) LaneBusValue(bus Bus, lane uint) uint64 {
	var v uint64
	for i, id := range bus {
		if s.vals[id]>>lane&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Step settles the combinational frame and clocks all DFFs in every lane.
func (s *CompiledSim) Step() {
	s.Settle()
	s.ClockAfterSettle()
}

// ClockAfterSettle clocks all DFFs using the already-settled frame.
func (s *CompiledSim) ClockAfterSettle() {
	n := s.c.n
	for i, q := range n.dffs {
		s.next[i] = s.vals[n.gates[q].In[0]]
	}
	for i, q := range n.dffs {
		s.vals[q] = (s.next[i] &^ s.sa0[q]) | s.sa1[q]
	}
}

// CaptureNext records every DFF's next-state (D value) from the
// currently settled frame without clocking.
func (s *CompiledSim) CaptureNext() {
	n := s.c.n
	for i, q := range n.dffs {
		s.next[i] = s.vals[n.gates[q].In[0]]
	}
}

// CommitNext clocks the DFFs with the values recorded by CaptureNext.
func (s *CompiledSim) CommitNext() {
	for i, q := range s.c.n.dffs {
		s.vals[q] = (s.next[i] &^ s.sa0[q]) | s.sa1[q]
	}
}

// Settle evaluates the combinational frame by executing the full
// compiled program in topological order. With no injections installed
// every mask is zero, so the fault-free settle takes the mask-free
// path.
func (s *CompiledSim) Settle() {
	c := s.c
	if len(s.injected) == 0 {
		runProgram(c.code, c.dst, c.a0, c.a1, c.a2, s.vals, 0, int32(len(c.code)))
	} else {
		evalInto(c, 0, int32(len(c.code)), s.vals, s.sa0, s.sa1)
	}
	s.evals += int64(len(c.code))
}

// TakeEvals returns the number of instructions executed since the last
// call (or construction) and resets the counter.
func (s *CompiledSim) TakeEvals() int64 {
	e := s.evals
	s.evals = 0
	return e
}

// OutputDiff returns, for each primary output, a mask of lanes whose
// value differs from lane 0 (the good machine), OR-ed together.
func (s *CompiledSim) OutputDiff() uint64 {
	var diff uint64
	for _, id := range s.c.n.outputs {
		v := s.vals[id]
		var ref uint64
		if v&1 == 1 {
			ref = ^uint64(0)
		}
		diff |= v ^ ref
	}
	return diff &^ 1
}

// LaneState extracts one lane's DFF state as a packed bitset, one bit
// per DFF in Netlist.DFFs order.
func (s *CompiledSim) LaneState(lane uint, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, q := range s.c.n.dffs {
		if s.vals[q]>>lane&1 == 1 {
			dst[i/64] |= 1 << uint(i%64)
		}
	}
}

// SetLaneState loads one lane's DFF state from a packed bitset.
func (s *CompiledSim) SetLaneState(lane uint, src []uint64) {
	bit := uint64(1) << lane
	for i, q := range s.c.n.dffs {
		if src[i/64]>>(uint(i)%64)&1 == 1 {
			s.vals[q] |= bit
		} else {
			s.vals[q] &^= bit
		}
	}
}

// LoadState loads a packed DFF state (Netlist.DFFs order) into every
// lane at once — the bulk form of SetLaneState, used to seed the
// fault-free machine from a GoodTrace frontier. A nil or empty src is
// the all-zero reset state.
func (s *CompiledSim) LoadState(src []uint64) {
	for i, q := range s.c.n.dffs {
		if len(src) > i/64 && src[i/64]>>(uint(i)%64)&1 == 1 {
			s.vals[q] = ^uint64(0)
		} else {
			s.vals[q] = 0
		}
	}
}

// StateWords returns the number of uint64 words needed by LaneState.
func (s *CompiledSim) StateWords() int { return (len(s.c.n.dffs) + 63) / 64 }

// SetWords bulk-writes raw value words for the given nets (all lanes at
// once).
func (s *CompiledSim) SetWords(nets []NetID, words []uint64) {
	for i, id := range nets {
		s.vals[id] = words[i]
	}
}
