package logic

import (
	"fmt"
	"io"
)

// WriteTestbench emits a self-checking Verilog testbench that applies
// the given per-cycle input vectors to a module produced by WriteVerilog
// and asserts the expected outputs — the role of the paper's
// Perl-generated VHDL testbench ("used to simulate the execution of our
// test program on the core ... for verification purposes").
//
// vectors[i] packs the primary inputs for cycle i (bit b drives
// Inputs()[b]); expected[i] packs the outputs sampled combinationally in
// the same cycle, before the clock edge — matching both simulators'
// strobe point. expected may be nil to emit a stimulus-only bench.
func WriteTestbench(w io.Writer, n *Netlist, moduleName string, vectors []uint64, expected []uint64) error {
	if expected != nil && len(expected) != len(vectors) {
		return fmt.Errorf("logic: WriteTestbench: %d expected values for %d vectors", len(expected), len(vectors))
	}
	ni, no := len(n.Inputs()), len(n.Outputs())
	fmt.Fprintf(w, "`timescale 1ns/1ps\nmodule tb;\n")
	fmt.Fprintf(w, "  reg clk = 0, rst = 1;\n")
	fmt.Fprintf(w, "  reg [%d:0] in_vec = 0;\n", ni-1)
	fmt.Fprintf(w, "  wire [%d:0] out_vec;\n", no-1)
	fmt.Fprintf(w, "  integer errors = 0;\n")

	// Port hookup reuses WriteVerilog's deterministic port order:
	// clk, rst, inputs..., outputs... — positional connection keeps the
	// bench independent of name sanitization.
	fmt.Fprintf(w, "  %s dut(clk, rst", moduleName)
	for i := 0; i < ni; i++ {
		fmt.Fprintf(w, ", in_vec[%d]", i)
	}
	for i := 0; i < no; i++ {
		fmt.Fprintf(w, ", out_vec[%d]", i)
	}
	fmt.Fprintf(w, ");\n")
	fmt.Fprintf(w, "  always #5 clk = ~clk;\n")
	fmt.Fprintf(w, "  initial begin\n")
	fmt.Fprintf(w, "    @(negedge clk); rst = 0;\n")
	for i, v := range vectors {
		fmt.Fprintf(w, "    in_vec = %d'h%x; #1;\n", ni, v&(1<<uint(ni)-1))
		if expected != nil {
			fmt.Fprintf(w, "    if (out_vec !== %d'h%x) begin errors = errors + 1; "+
				"$display(\"cycle %d: out=%%h want %x\", out_vec); end\n",
				no, expected[i]&(1<<uint(no)-1), i, expected[i]&(1<<uint(no)-1))
		}
		fmt.Fprintf(w, "    @(negedge clk);\n")
	}
	fmt.Fprintf(w, "    if (errors == 0) $display(\"TESTBENCH PASS (%d cycles)\");\n", len(vectors))
	fmt.Fprintf(w, "    else $display(\"TESTBENCH FAIL: %%0d mismatches\", errors);\n")
	fmt.Fprintf(w, "    $finish;\n  end\nendmodule\n")
	return nil
}

// ExpectedOutputs simulates the vectors on the fault-free netlist and
// returns the packed primary-output values at each cycle's strobe point,
// ready for WriteTestbench.
func ExpectedOutputs(n *Netlist, vectors []uint64) []uint64 {
	s := NewSimulator(n)
	inputs := n.Inputs()
	outputs := n.Outputs()
	expected := make([]uint64, len(vectors))
	for cyc, v := range vectors {
		for b, in := range inputs {
			s.SetInput(in, v>>uint(b)&1 == 1)
		}
		s.Settle()
		var packed uint64
		for b, out := range outputs {
			if s.Value(out) {
				packed |= 1 << uint(b)
			}
		}
		expected[cyc] = packed
		s.Step()
	}
	return expected
}
