package logic

import "sync"

// compile.go flattens a levelized Netlist into a compact evaluation
// program so simulation kernels can run without chasing Gate structs or
// variable-length In slices. The program is a struct-of-arrays
// instruction stream: one opcode byte plus up to three inline operand
// indices per instruction. Variadic gates (AND/OR/XOR and their
// inverted forms over 3+ inputs) are decomposed into chains of binary
// instructions writing to temporary value slots past the real nets, so
// every instruction in the inner loop is a fixed-shape binary or
// ternary word operation.
//
// The compiled form also carries the levelized metadata the
// event-driven kernel needs: per-net combinational levels, the
// instruction range implementing each net, a CSR-flattened fanout
// table, and dense lookup tables from nets to DFF/output ordinals.

// opcode is one compiled gate operation. The inverted forms exist so a
// decomposed NAND/NOR/XNOR chain applies its inversion in the final
// instruction — the one that drives the real net and takes the
// injection masks.
type opcode uint8

const (
	opBuf opcode = iota
	opNot
	opAnd2
	opOr2
	opNand2
	opNor2
	opXor2
	opXnor2
	opMux
)

// Compiled is the immutable evaluation program for one Netlist.
type Compiled struct {
	n *Netlist

	// Instruction stream (SoA). dst values >= numNets address temporary
	// slots used by decomposed variadic chains; temporaries carry no
	// injection masks and no fanout.
	code []opcode
	dst  []int32
	a0   []int32
	a1   []int32
	a2   []int32

	numNets int // real nets (== n.NumNets())
	slots   int // numNets + temporaries

	// pcStart/pcEnd delimit the instruction chain evaluating each
	// combinational net (zero-length for inputs, constants and DFFs).
	// Chains are contiguous and emitted in schedule order, so executing
	// pcs 0..len(code) is a full frame sweep.
	pcStart []int32
	pcEnd   []int32

	// schedule is the emission order: every combinational net exactly
	// once, topologically sorted, cone-clustered for cache locality.
	// Where Netlist.order is level-major (all of level k before level
	// k+1, so consecutive instructions read operands scattered across
	// the whole previous level), the schedule is built by depth-first
	// postorder from each sink — flip-flop D pins first, then primary
	// outputs — so a sink's entire fanin cone is emitted contiguously
	// and an instruction's operands were usually produced a short
	// distance above it. Any topological order yields bit-identical
	// simulation results; only the memory-access pattern changes.
	schedule []NetID

	// blockOff partitions the schedule's instruction stream into cache
	// blocks: block b is instructions [blockOff[b], blockOff[b+1]), cut
	// when the block's distinct value-slot working set would exceed
	// BlockSlots. The event kernel tiles its per-batch cone sweep with
	// the same budget (scaled down by the lane-word count) so one
	// tile's stripes stay cache-resident across its instructions.
	blockOff []int32

	// level is the combinational depth per net: frame sources (inputs,
	// constants, DFF Q nets) are level 0, every combinational net is
	// 1 + max(input levels). Readers always sit at a strictly higher
	// level than the nets they read, which is what lets the event
	// kernel process dirty nets level by level.
	level    []int32
	maxLevel int32

	// orderPos is each combinational net's chain position in emission
	// order (-1 for non-combinational nets); sorting a net subset by
	// orderPos yields a valid evaluation order.
	orderPos []int32

	// CSR fanout over real nets: readers of net i are
	// foList[foOff[i]:foOff[i+1]].
	foOff  []int32
	foList []NetID

	// CSR fanout restricted to combinational readers, by chain position
	// instead of net id: the positions (orderPos values) of net i's
	// combinational readers are foPosList[foPosOff[i]:foPosOff[i+1]].
	// This is the event kernel's scheduling table — marking a reader is
	// one OR into a position-indexed bitmap, with no gate-kind or
	// membership test, and scanning the bitmap in word order visits
	// gates in topological order.
	foPosOff  []int32
	foPosList []int32

	// dffIndex / outIndex map a net to its ordinal in Netlist.DFFs /
	// Netlist.Outputs, or -1.
	dffIndex []int32
	outIndex []int32

	// dPin marks nets feeding a flip-flop D input. The event kernel's
	// sweep program must materialize these (the clock edge reads them by
	// net id), so its buffer copy-propagation keeps them.
	dPin []bool
}

// Compile builds the evaluation program for n. The result is immutable
// and safe for concurrent use by any number of simulators.
func Compile(n *Netlist) *Compiled {
	numNets := n.NumNets()
	c := &Compiled{
		n:        n,
		numNets:  numNets,
		slots:    numNets,
		pcStart:  make([]int32, numNets),
		pcEnd:    make([]int32, numNets),
		level:    make([]int32, numNets),
		orderPos: make([]int32, numNets),
		dffIndex: make([]int32, numNets),
		outIndex: make([]int32, numNets),
	}
	for i := range c.orderPos {
		c.orderPos[i] = -1
		c.dffIndex[i] = -1
		c.outIndex[i] = -1
	}
	c.dPin = make([]bool, numNets)
	for i, q := range n.dffs {
		c.dffIndex[q] = int32(i)
		c.dPin[n.gates[q].In[0]] = true
	}
	for i, o := range n.outputs {
		c.outIndex[o] = int32(i)
	}

	// Levels over the topological order.
	for _, id := range n.order {
		g := &n.gates[id]
		lv := int32(0)
		for _, in := range g.In {
			if c.level[in]+1 > lv {
				lv = c.level[in] + 1
			}
		}
		c.level[id] = lv
		if lv > c.maxLevel {
			c.maxLevel = lv
		}
	}

	// Emit instruction chains in cone-clustered schedule order.
	c.schedule = buildSchedule(n)
	for pos, id := range c.schedule {
		c.orderPos[id] = int32(pos)
		c.pcStart[id] = int32(len(c.code))
		c.emitNet(id)
		c.pcEnd[id] = int32(len(c.code))
	}
	c.buildBlocks()

	// CSR fanout.
	c.foOff = make([]int32, numNets+1)
	total := 0
	for i := 0; i < numNets; i++ {
		c.foOff[i] = int32(total)
		total += len(n.fanout[i])
	}
	c.foOff[numNets] = int32(total)
	c.foList = make([]NetID, 0, total)
	for i := 0; i < numNets; i++ {
		c.foList = append(c.foList, n.fanout[i]...)
	}

	// Combinational-reader positions (orderPos is -1 for non-comb nets).
	c.foPosOff = make([]int32, numNets+1)
	for i := 0; i < numNets; i++ {
		c.foPosOff[i] = int32(len(c.foPosList))
		for _, r := range n.fanout[i] {
			if p := c.orderPos[r]; p >= 0 {
				c.foPosList = append(c.foPosList, p)
			}
		}
	}
	c.foPosOff[numNets] = int32(len(c.foPosList))
	return c
}

// buildSchedule computes the cone-clustered topological emission order:
// iterative depth-first postorder over the combinational nets, rooted at
// each flip-flop D pin and then each primary output, with any remaining
// nets (cones observed by nothing) appended in Netlist.order. Postorder
// emits a net only after every net it reads, and a net reached from an
// earlier root was already emitted, so the result is topological: in an
// acyclic combinational frame no net on the DFS stack can be read by a
// net beneath it.
func buildSchedule(n *Netlist) []NetID {
	// state: 0 = non-combinational, 1 = pending, 2 = scheduled/on stack.
	state := make([]uint8, n.NumNets())
	for _, id := range n.order {
		state[id] = 1
	}
	sched := make([]NetID, 0, len(n.order))
	type frame struct {
		id NetID
		in int32 // next input ordinal to descend into
	}
	var stack []frame
	visit := func(root NetID) {
		if state[root] != 1 {
			return
		}
		state[root] = 2
		stack = append(stack[:0], frame{id: root})
		for len(stack) > 0 {
			top := len(stack) - 1
			id := stack[top].id
			ins := n.gates[id].In
			if k := stack[top].in; int(k) < len(ins) {
				stack[top].in++
				if ch := ins[k]; state[ch] == 1 {
					state[ch] = 2
					stack = append(stack, frame{id: ch})
				}
				continue
			}
			sched = append(sched, id)
			stack = stack[:top]
		}
	}
	for _, q := range n.dffs {
		visit(n.gates[q].In[0])
	}
	for _, o := range n.outputs {
		visit(o)
	}
	for _, id := range n.order {
		visit(id)
	}
	return sched
}

// BlockSlots is the distinct value-slot budget of one cache block of the
// compiled program: 2048 slots × 8 bytes ≈ 16 KiB of single-word values,
// half a typical 32 KiB L1d so trace rows and instruction operands fit
// alongside. The event kernel divides the budget by its lane-word count
// (wider stripes mean fewer slots per block at the same byte footprint);
// gate-eval counters and pprof on the Table-1 workload drove the choice
// — see docs/PERFORMANCE.md.
const BlockSlots = 2048

// buildBlocks partitions the instruction stream into cache blocks by
// walking it once, counting distinct slots touched (stamp-dedup) and
// cutting whenever a block's working set passes BlockSlots.
func (c *Compiled) buildBlocks() {
	stamp := make([]int32, c.slots)
	for i := range stamp {
		stamp[i] = -1
	}
	epoch := int32(0)
	count := 0
	note := func(slot int32) {
		if stamp[slot] != epoch {
			stamp[slot] = epoch
			count++
		}
	}
	c.blockOff = append(c.blockOff[:0], 0)
	for pc := range c.code {
		note(c.dst[pc])
		note(c.a0[pc])
		switch c.code[pc] {
		case opBuf, opNot:
		case opMux:
			note(c.a1[pc])
			note(c.a2[pc])
		default:
			note(c.a1[pc])
		}
		if count > BlockSlots {
			c.blockOff = append(c.blockOff, int32(pc+1))
			epoch++
			count = 0
		}
	}
	if last := int32(len(c.code)); len(c.blockOff) == 1 || c.blockOff[len(c.blockOff)-1] != last {
		c.blockOff = append(c.blockOff, last)
	}
}

// NumBlocks returns the number of cache blocks the schedule was cut
// into (see BlockSlots).
func (c *Compiled) NumBlocks() int { return len(c.blockOff) - 1 }

// Schedule returns the cone-clustered emission order (read-only).
func (c *Compiled) Schedule() []NetID { return c.schedule }

// SizeBytes estimates the program's resident size, for artifact-cache
// byte budgeting: the instruction stream plus the per-net metadata
// tables (the netlist itself is accounted by its own owner).
func (c *Compiled) SizeBytes() int64 {
	perInstr := int64(1 + 4*4) // code + dst/a0/a1/a2
	perNet := int64(9*4 + 1)   // int32 tables + dPin
	fan := int64(len(c.foList)+len(c.foPosList)) * 4
	return int64(len(c.code))*perInstr + int64(c.numNets)*perNet + fan +
		int64(len(c.schedule))*4 + int64(len(c.blockOff))*4
}

// emitNet appends the instruction chain computing net id.
func (c *Compiled) emitNet(id NetID) {
	g := &c.n.gates[id]
	switch g.Kind {
	case GateBuf:
		c.emit(opBuf, int32(id), int32(g.In[0]), 0, 0)
	case GateNot:
		c.emit(opNot, int32(id), int32(g.In[0]), 0, 0)
	case GateMux2:
		c.emit(opMux, int32(id), int32(g.In[0]), int32(g.In[1]), int32(g.In[2]))
	case GateAnd, GateNand, GateOr, GateNor, GateXor, GateXnor:
		var chain, final opcode
		switch g.Kind {
		case GateAnd:
			chain, final = opAnd2, opAnd2
		case GateNand:
			chain, final = opAnd2, opNand2
		case GateOr:
			chain, final = opOr2, opOr2
		case GateNor:
			chain, final = opOr2, opNor2
		case GateXor:
			chain, final = opXor2, opXor2
		default:
			chain, final = opXor2, opXnor2
		}
		acc := int32(g.In[0])
		for k := 1; k < len(g.In)-1; k++ {
			tmp := int32(c.slots)
			c.slots++
			c.emit(chain, tmp, acc, int32(g.In[k]), 0)
			acc = tmp
		}
		c.emit(final, int32(id), acc, int32(g.In[len(g.In)-1]), 0)
	default:
		// Inputs, constants and DFFs have no combinational program.
	}
}

func (c *Compiled) emit(op opcode, dst, a0, a1, a2 int32) {
	c.code = append(c.code, op)
	c.dst = append(c.dst, dst)
	c.a0 = append(c.a0, a0)
	c.a1 = append(c.a1, a1)
	c.a2 = append(c.a2, a2)
}

// compileCache memoizes Compile per Netlist so every simulator sharing a
// circuit — the campaign engine spawns one per shard — reuses one
// program. Netlists are immutable after Build, so identity keying is
// sound; a rare duplicate Compile under contention is only wasted work.
var compileCache sync.Map // *Netlist -> *Compiled

// CompiledFor returns the (cached) evaluation program for n.
func CompiledFor(n *Netlist) *Compiled {
	if c, ok := compileCache.Load(n); ok {
		return c.(*Compiled)
	}
	c, _ := compileCache.LoadOrStore(n, Compile(n))
	return c.(*Compiled)
}

// Netlist returns the compiled circuit.
func (c *Compiled) Netlist() *Netlist { return c.n }

// NumInstrs returns the instruction count of one full frame sweep (the
// gate-evaluation cost unit the fault simulator's counters report in).
func (c *Compiled) NumInstrs() int { return len(c.code) }

// NumNets returns the number of real nets (temporary slots excluded).
func (c *Compiled) NumNets() int { return c.numNets }

// MaxLevel returns the deepest combinational level.
func (c *Compiled) MaxLevel() int { return int(c.maxLevel) }

// readers returns the fanout of net id as a CSR slice.
func (c *Compiled) readers(id NetID) []NetID {
	return c.foList[c.foOff[id]:c.foOff[id+1]]
}

// runProgram executes instructions [ps, pe) against vals with no
// stuck-at masking — the hot path for fault-free settles and for the
// mask-free stretches between injected sites in the event kernel's cone
// sweep (the masked destinations are ~63 of thousands, so hoisting the
// two mask loads out of the inner loop is worth the split).
func runProgram(code []opcode, dst, a0, a1, a2 []int32, vals []uint64, ps, pe int32) {
	// Re-slice to a common constant bound so the compiler can hoist the
	// per-index bounds checks on the instruction arrays out of the loop
	// (the vals accesses keep theirs — the indices are data).
	code = code[ps:pe]
	dst = dst[ps:pe][:len(code)]
	a0 = a0[ps:pe][:len(code)]
	a1 = a1[ps:pe][:len(code)]
	a2 = a2[ps:pe][:len(code)]
	for pc := range code {
		var v uint64
		switch code[pc] {
		case opBuf:
			v = vals[a0[pc]]
		case opNot:
			v = ^vals[a0[pc]]
		case opAnd2:
			v = vals[a0[pc]] & vals[a1[pc]]
		case opOr2:
			v = vals[a0[pc]] | vals[a1[pc]]
		case opNand2:
			v = ^(vals[a0[pc]] & vals[a1[pc]])
		case opNor2:
			v = ^(vals[a0[pc]] | vals[a1[pc]])
		case opXor2:
			v = vals[a0[pc]] ^ vals[a1[pc]]
		case opXnor2:
			v = ^(vals[a0[pc]] ^ vals[a1[pc]])
		case opMux:
			sel := vals[a0[pc]]
			v = (vals[a1[pc]] &^ sel) | (vals[a2[pc]] & sel)
		}
		vals[dst[pc]] = v
	}
}

// runProgramStripes executes instructions [ps, pe) against lw-word
// value stripes (vals[slot*lw : slot*lw+lw]) with no stuck-at masking —
// the multi-word generalization of runProgram used by the event
// kernel's cone sweep when a batch spans more than one lane word. One
// instruction dispatch covers lw words, which is where widening the
// batch amortizes the per-instruction scheduling cost.
func runProgramStripes(code []opcode, dst, a0, a1, a2 []int32, vals []uint64, lw int, ps, pe int32) {
	code = code[ps:pe]
	dst = dst[ps:pe][:len(code)]
	a0 = a0[ps:pe][:len(code)]
	a1 = a1[ps:pe][:len(code)]
	a2 = a2[ps:pe][:len(code)]
	for pc := range code {
		dv := vals[int(dst[pc])*lw:][:lw]
		xv := vals[int(a0[pc])*lw:][:lw]
		switch code[pc] {
		case opBuf:
			copy(dv, xv)
		case opNot:
			for w := range dv {
				dv[w] = ^xv[w]
			}
		case opAnd2:
			yv := vals[int(a1[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = xv[w] & yv[w]
			}
		case opOr2:
			yv := vals[int(a1[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = xv[w] | yv[w]
			}
		case opNand2:
			yv := vals[int(a1[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = ^(xv[w] & yv[w])
			}
		case opNor2:
			yv := vals[int(a1[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = ^(xv[w] | yv[w])
			}
		case opXor2:
			yv := vals[int(a1[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = xv[w] ^ yv[w]
			}
		case opXnor2:
			yv := vals[int(a1[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = ^(xv[w] ^ yv[w])
			}
		case opMux:
			yv := vals[int(a1[pc])*lw:][:lw]
			zv := vals[int(a2[pc])*lw:][:lw]
			for w := range dv {
				dv[w] = (yv[w] &^ xv[w]) | (zv[w] & xv[w])
			}
		}
	}
}

// runProgramStripes4 is runProgramStripes specialized (and unrolled)
// for the common auto-tuned width of 4 lane words.
func runProgramStripes4(code []opcode, dst, a0, a1, a2 []int32, vals []uint64, ps, pe int32) {
	code = code[ps:pe]
	dst = dst[ps:pe][:len(code)]
	a0 = a0[ps:pe][:len(code)]
	a1 = a1[ps:pe][:len(code)]
	a2 = a2[ps:pe][:len(code)]
	for pc := range code {
		dv := vals[int(dst[pc])<<2:][:4]
		xv := vals[int(a0[pc])<<2:][:4]
		switch code[pc] {
		case opBuf:
			dv[0], dv[1], dv[2], dv[3] = xv[0], xv[1], xv[2], xv[3]
		case opNot:
			dv[0], dv[1], dv[2], dv[3] = ^xv[0], ^xv[1], ^xv[2], ^xv[3]
		case opAnd2:
			yv := vals[int(a1[pc])<<2:][:4]
			dv[0], dv[1], dv[2], dv[3] = xv[0]&yv[0], xv[1]&yv[1], xv[2]&yv[2], xv[3]&yv[3]
		case opOr2:
			yv := vals[int(a1[pc])<<2:][:4]
			dv[0], dv[1], dv[2], dv[3] = xv[0]|yv[0], xv[1]|yv[1], xv[2]|yv[2], xv[3]|yv[3]
		case opNand2:
			yv := vals[int(a1[pc])<<2:][:4]
			dv[0], dv[1], dv[2], dv[3] = ^(xv[0] & yv[0]), ^(xv[1] & yv[1]), ^(xv[2] & yv[2]), ^(xv[3] & yv[3])
		case opNor2:
			yv := vals[int(a1[pc])<<2:][:4]
			dv[0], dv[1], dv[2], dv[3] = ^(xv[0] | yv[0]), ^(xv[1] | yv[1]), ^(xv[2] | yv[2]), ^(xv[3] | yv[3])
		case opXor2:
			yv := vals[int(a1[pc])<<2:][:4]
			dv[0], dv[1], dv[2], dv[3] = xv[0]^yv[0], xv[1]^yv[1], xv[2]^yv[2], xv[3]^yv[3]
		case opXnor2:
			yv := vals[int(a1[pc])<<2:][:4]
			dv[0], dv[1], dv[2], dv[3] = ^(xv[0] ^ yv[0]), ^(xv[1] ^ yv[1]), ^(xv[2] ^ yv[2]), ^(xv[3] ^ yv[3])
		case opMux:
			yv := vals[int(a1[pc])<<2:][:4]
			zv := vals[int(a2[pc])<<2:][:4]
			dv[0] = (yv[0] &^ xv[0]) | (zv[0] & xv[0])
			dv[1] = (yv[1] &^ xv[1]) | (zv[1] & xv[1])
			dv[2] = (yv[2] &^ xv[2]) | (zv[2] & xv[2])
			dv[3] = (yv[3] &^ xv[3]) | (zv[3] & xv[3])
		}
	}
}

// runProgramStripes8 is runProgramStripes specialized (and unrolled)
// for 8 lane words, the widest auto-tuned stripe.
func runProgramStripes8(code []opcode, dst, a0, a1, a2 []int32, vals []uint64, ps, pe int32) {
	code = code[ps:pe]
	dst = dst[ps:pe][:len(code)]
	a0 = a0[ps:pe][:len(code)]
	a1 = a1[ps:pe][:len(code)]
	a2 = a2[ps:pe][:len(code)]
	for pc := range code {
		dv := vals[int(dst[pc])<<3:][:8]
		xv := vals[int(a0[pc])<<3:][:8]
		switch code[pc] {
		case opBuf:
			copy(dv, xv)
		case opNot:
			dv[0], dv[1], dv[2], dv[3] = ^xv[0], ^xv[1], ^xv[2], ^xv[3]
			dv[4], dv[5], dv[6], dv[7] = ^xv[4], ^xv[5], ^xv[6], ^xv[7]
		case opAnd2:
			yv := vals[int(a1[pc])<<3:][:8]
			dv[0], dv[1], dv[2], dv[3] = xv[0]&yv[0], xv[1]&yv[1], xv[2]&yv[2], xv[3]&yv[3]
			dv[4], dv[5], dv[6], dv[7] = xv[4]&yv[4], xv[5]&yv[5], xv[6]&yv[6], xv[7]&yv[7]
		case opOr2:
			yv := vals[int(a1[pc])<<3:][:8]
			dv[0], dv[1], dv[2], dv[3] = xv[0]|yv[0], xv[1]|yv[1], xv[2]|yv[2], xv[3]|yv[3]
			dv[4], dv[5], dv[6], dv[7] = xv[4]|yv[4], xv[5]|yv[5], xv[6]|yv[6], xv[7]|yv[7]
		case opNand2:
			yv := vals[int(a1[pc])<<3:][:8]
			dv[0], dv[1], dv[2], dv[3] = ^(xv[0] & yv[0]), ^(xv[1] & yv[1]), ^(xv[2] & yv[2]), ^(xv[3] & yv[3])
			dv[4], dv[5], dv[6], dv[7] = ^(xv[4] & yv[4]), ^(xv[5] & yv[5]), ^(xv[6] & yv[6]), ^(xv[7] & yv[7])
		case opNor2:
			yv := vals[int(a1[pc])<<3:][:8]
			dv[0], dv[1], dv[2], dv[3] = ^(xv[0] | yv[0]), ^(xv[1] | yv[1]), ^(xv[2] | yv[2]), ^(xv[3] | yv[3])
			dv[4], dv[5], dv[6], dv[7] = ^(xv[4] | yv[4]), ^(xv[5] | yv[5]), ^(xv[6] | yv[6]), ^(xv[7] | yv[7])
		case opXor2:
			yv := vals[int(a1[pc])<<3:][:8]
			dv[0], dv[1], dv[2], dv[3] = xv[0]^yv[0], xv[1]^yv[1], xv[2]^yv[2], xv[3]^yv[3]
			dv[4], dv[5], dv[6], dv[7] = xv[4]^yv[4], xv[5]^yv[5], xv[6]^yv[6], xv[7]^yv[7]
		case opXnor2:
			yv := vals[int(a1[pc])<<3:][:8]
			dv[0], dv[1], dv[2], dv[3] = ^(xv[0] ^ yv[0]), ^(xv[1] ^ yv[1]), ^(xv[2] ^ yv[2]), ^(xv[3] ^ yv[3])
			dv[4], dv[5], dv[6], dv[7] = ^(xv[4] ^ yv[4]), ^(xv[5] ^ yv[5]), ^(xv[6] ^ yv[6]), ^(xv[7] ^ yv[7])
		case opMux:
			yv := vals[int(a1[pc])<<3:][:8]
			zv := vals[int(a2[pc])<<3:][:8]
			dv[0] = (yv[0] &^ xv[0]) | (zv[0] & xv[0])
			dv[1] = (yv[1] &^ xv[1]) | (zv[1] & xv[1])
			dv[2] = (yv[2] &^ xv[2]) | (zv[2] & xv[2])
			dv[3] = (yv[3] &^ xv[3]) | (zv[3] & xv[3])
			dv[4] = (yv[4] &^ xv[4]) | (zv[4] & xv[4])
			dv[5] = (yv[5] &^ xv[5]) | (zv[5] & xv[5])
			dv[6] = (yv[6] &^ xv[6]) | (zv[6] & xv[6])
			dv[7] = (yv[7] &^ xv[7]) | (zv[7] & xv[7])
		}
	}
}

// evalInto executes instructions [ps, pe) against vals, applying the
// per-slot stuck-at masks. It is the single evaluation core shared by
// the full-sweep and event-driven kernels.
func evalInto(c *Compiled, ps, pe int32, vals, sa0, sa1 []uint64) {
	code := c.code[ps:pe]
	dst := c.dst[ps:pe][:len(code)]
	a0 := c.a0[ps:pe][:len(code)]
	a1 := c.a1[ps:pe][:len(code)]
	a2 := c.a2[ps:pe][:len(code)]
	for pc := range code {
		var v uint64
		switch code[pc] {
		case opBuf:
			v = vals[a0[pc]]
		case opNot:
			v = ^vals[a0[pc]]
		case opAnd2:
			v = vals[a0[pc]] & vals[a1[pc]]
		case opOr2:
			v = vals[a0[pc]] | vals[a1[pc]]
		case opNand2:
			v = ^(vals[a0[pc]] & vals[a1[pc]])
		case opNor2:
			v = ^(vals[a0[pc]] | vals[a1[pc]])
		case opXor2:
			v = vals[a0[pc]] ^ vals[a1[pc]]
		case opXnor2:
			v = ^(vals[a0[pc]] ^ vals[a1[pc]])
		case opMux:
			sel := vals[a0[pc]]
			v = (vals[a1[pc]] &^ sel) | (vals[a2[pc]] & sel)
		}
		d := dst[pc]
		vals[d] = (v &^ sa0[d]) | sa1[d]
	}
}
