package logic

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Builder constructs a Netlist incrementally. It is not safe for
// concurrent use. All gate-creation methods return the NetID of the
// driven net.
//
// Builders support hierarchical scopes: nets created between PushScope
// and PopScope are recorded under the scope's full dotted path, which the
// fault simulator uses to attribute faults to datapath components.
type Builder struct {
	gates []Gate
	names []string

	inputs  []NetID
	outputs []NetID
	dffs    []NetID

	byName map[string]NetID

	scope       []string
	regions     map[string][]NetID
	regionOrder []string

	deferred []NetID // unresolved DeferredBuf nets

	const0 NetID
	const1 NetID

	err error
}

// NewBuilder returns an empty Builder with shared constant nets
// pre-created.
func NewBuilder() *Builder {
	b := &Builder{
		byName:  make(map[string]NetID),
		regions: make(map[string][]NetID),
		const0:  InvalidNet,
		const1:  InvalidNet,
	}
	b.const0 = b.newGate(GateConst0, nil, "const0")
	b.const1 = b.newGate(GateConst1, nil, "const1")
	return b
}

// Err returns the first error recorded during construction, if any.
// Build also returns it; checking eagerly is optional.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) NetID {
	if b.err == nil {
		b.err = fmt.Errorf("logic: "+format, args...)
	}
	return InvalidNet
}

func (b *Builder) newGate(kind GateKind, in []NetID, name string) NetID {
	id := NetID(len(b.gates))
	for _, i := range in {
		if i < 0 || int(i) >= len(b.gates) {
			return b.fail("gate %s %q reads invalid net %d", kind, name, i)
		}
	}
	if a := kind.arity(); a >= 0 && len(in) != a {
		return b.fail("gate %s %q needs %d inputs, got %d", kind, name, a, len(in))
	}
	if a := kind.arity(); a == -1 && len(in) < 2 {
		return b.fail("gate %s %q needs at least 2 inputs, got %d", kind, name, len(in))
	}
	full := b.qualify(name)
	if full != "" {
		if _, dup := b.byName[full]; dup {
			return b.fail("duplicate net name %q", full)
		}
		b.byName[full] = id
	}
	b.gates = append(b.gates, Gate{Kind: kind, In: in, Out: id})
	b.names = append(b.names, full)
	for i := range b.scope {
		key := strings.Join(b.scope[:i+1], ".")
		b.regions[key] = append(b.regions[key], id)
	}
	return id
}

func (b *Builder) qualify(name string) string {
	if name == "" {
		return ""
	}
	if len(b.scope) == 0 {
		return name
	}
	return strings.Join(b.scope, ".") + "." + name
}

// PushScope enters a named hierarchical scope. Scopes nest; the full
// dotted path identifies the region.
func (b *Builder) PushScope(name string) {
	b.scope = append(b.scope, name)
	key := strings.Join(b.scope, ".")
	if _, ok := b.regions[key]; !ok {
		b.regions[key] = nil
		b.regionOrder = append(b.regionOrder, key)
	}
}

// PopScope leaves the innermost scope.
func (b *Builder) PopScope() {
	if len(b.scope) == 0 {
		b.fail("PopScope with empty scope stack")
		return
	}
	b.scope = b.scope[:len(b.scope)-1]
}

// Scoped runs fn inside the named scope.
func (b *Builder) Scoped(name string, fn func()) {
	b.PushScope(name)
	fn()
	b.PopScope()
}

// DeferredBuf creates a buffer whose input is not yet known, enabling
// sequential feedback (a DFF whose next-state logic reads its own Q).
// The input must be supplied with ResolveBuf before Build, which fails
// on unresolved deferred buffers.
func (b *Builder) DeferredBuf() NetID {
	id := b.newGate(GateBuf, []NetID{b.const0}, "")
	if id != InvalidNet {
		b.deferred = append(b.deferred, id)
	}
	return id
}

// ResolveBuf supplies the input of a DeferredBuf.
func (b *Builder) ResolveBuf(buf, in NetID) {
	if buf < 0 || int(buf) >= len(b.gates) || b.gates[buf].Kind != GateBuf {
		b.fail("ResolveBuf: net %d is not a buffer", buf)
		return
	}
	idx := -1
	for i, d := range b.deferred {
		if d == buf {
			idx = i
			break
		}
	}
	if idx < 0 {
		b.fail("ResolveBuf: net %d is not an unresolved deferred buffer", buf)
		return
	}
	if in < 0 || int(in) >= len(b.gates) {
		b.fail("ResolveBuf: invalid input net %d", in)
		return
	}
	b.gates[buf].In[0] = in
	b.deferred = append(b.deferred[:idx], b.deferred[idx+1:]...)
}

// Const returns the shared constant net for v.
func (b *Builder) Const(v bool) NetID {
	if v {
		return b.const1
	}
	return b.const0
}

// Input declares a named primary input and returns its net.
func (b *Builder) Input(name string) NetID {
	id := b.newGate(GateInput, nil, name)
	if id != InvalidNet {
		b.inputs = append(b.inputs, id)
	}
	return id
}

// Buf inserts a buffer.
func (b *Builder) Buf(a NetID, name string) NetID { return b.newGate(GateBuf, []NetID{a}, name) }

// Not inserts an inverter.
func (b *Builder) Not(a NetID) NetID { return b.newGate(GateNot, []NetID{a}, "") }

// And inserts an AND gate over two or more inputs.
func (b *Builder) And(in ...NetID) NetID { return b.newGate(GateAnd, in, "") }

// Or inserts an OR gate over two or more inputs.
func (b *Builder) Or(in ...NetID) NetID { return b.newGate(GateOr, in, "") }

// Nand inserts a NAND gate over two or more inputs.
func (b *Builder) Nand(in ...NetID) NetID { return b.newGate(GateNand, in, "") }

// Nor inserts a NOR gate over two or more inputs.
func (b *Builder) Nor(in ...NetID) NetID { return b.newGate(GateNor, in, "") }

// Xor inserts an XOR gate over two or more inputs (odd parity).
func (b *Builder) Xor(in ...NetID) NetID { return b.newGate(GateXor, in, "") }

// Xnor inserts an XNOR gate over two or more inputs (even parity).
func (b *Builder) Xnor(in ...NetID) NetID { return b.newGate(GateXnor, in, "") }

// Mux2 inserts a 2:1 multiplexer returning a when sel=0 and bb when sel=1.
func (b *Builder) Mux2(sel, a, bb NetID) NetID {
	return b.newGate(GateMux2, []NetID{sel, a, bb}, "")
}

// DFF inserts a named D flip-flop and returns its Q net. State resets to 0.
func (b *Builder) DFF(d NetID, name string) NetID {
	id := b.newGate(GateDFF, []NetID{d}, name)
	if id != InvalidNet {
		b.dffs = append(b.dffs, id)
	}
	return id
}

// MarkOutput declares net id as a primary output under the given name.
// The same net may be marked only once; marking creates an alias buffer
// so outputs always have stable, unique names.
func (b *Builder) MarkOutput(id NetID, name string) NetID {
	out := b.Buf(id, name)
	if out != InvalidNet {
		b.outputs = append(b.outputs, out)
	}
	return out
}

// Name assigns a name to an existing unnamed net (used to label
// component boundary signals for metrics and fault reports).
func (b *Builder) Name(id NetID, name string) {
	if id < 0 || int(id) >= len(b.gates) {
		b.fail("Name: invalid net %d", id)
		return
	}
	full := b.qualify(name)
	if full == "" {
		return
	}
	if _, dup := b.byName[full]; dup {
		b.fail("duplicate net name %q", full)
		return
	}
	if b.names[id] == "" {
		b.names[id] = full
	}
	b.byName[full] = id
}

// BuildOptions control Netlist finalization.
type BuildOptions struct {
	// InsertFanoutBranches adds a buffer on every fanout branch of each
	// multi-fanout net so that every stuck-at fault site (stems and
	// branches alike) is a distinct net. Required for full pin-accurate
	// fault lists; adds roughly one buffer per extra fanout.
	InsertFanoutBranches bool
}

// Build finalizes the netlist: optionally inserts fanout-branch buffers,
// verifies the combinational frame is acyclic and levelizes it.
func (b *Builder) Build(opts BuildOptions) (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.deferred) > 0 {
		return nil, fmt.Errorf("logic: %d unresolved deferred buffer(s) at Build", len(b.deferred))
	}
	if opts.InsertFanoutBranches {
		b.insertBranches()
		if b.err != nil {
			return nil, b.err
		}
	}
	n := &Netlist{
		gates:       b.gates,
		names:       b.names,
		inputs:      b.inputs,
		outputs:     b.outputs,
		dffs:        b.dffs,
		byName:      b.byName,
		regions:     b.regions,
		regionOrder: b.regionOrder,
	}
	if err := n.levelize(); err != nil {
		return nil, err
	}
	n.buildFanout()
	return n, nil
}

// insertBranches gives every fanout branch of a multi-fanout net its own
// buffer. Constants and the branch buffers themselves are exempt.
func (b *Builder) insertBranches() {
	fanoutCount := make([]int, len(b.gates))
	for gi := range b.gates {
		for _, in := range b.gates[gi].In {
			fanoutCount[in]++
		}
	}
	numOriginal := len(b.gates)
	branchSeq := make([]int, numOriginal)
	for gi := 0; gi < numOriginal; gi++ {
		g := &b.gates[gi]
		for pi, in := range g.In {
			if in == b.const0 || in == b.const1 {
				continue
			}
			if fanoutCount[in] <= 1 {
				continue
			}
			branchSeq[in]++
			name := ""
			if bn := b.names[in]; bn != "" {
				name = fmt.Sprintf("%s#br%d", bn, branchSeq[in])
			}
			// Create the branch buffer outside any scope prefix the
			// original net might not belong to: attribute it to the same
			// regions as the source net by direct insertion.
			id := NetID(len(b.gates))
			b.gates = append(b.gates, Gate{Kind: GateBuf, In: []NetID{in}, Out: id})
			b.names = append(b.names, name)
			if name != "" {
				b.byName[name] = id
			}
			for _, region := range b.regionsOf(in) {
				b.regions[region] = append(b.regions[region], id)
			}
			g.In[pi] = id
		}
	}
}

// regionsOf returns the scope paths containing net id. Linear scan over
// regions is acceptable because insertBranches runs once at build time.
func (b *Builder) regionsOf(id NetID) []string {
	var out []string
	for _, key := range b.regionOrder {
		nets := b.regions[key]
		// regions store nets in creation order; binary search applies.
		i := sort.Search(len(nets), func(i int) bool { return nets[i] >= id })
		if i < len(nets) && nets[i] == id {
			out = append(out, key)
		}
	}
	return out
}

var errCombLoop = errors.New("logic: combinational loop detected")

// levelize topologically orders the combinational frame. DFF Q nets,
// primary inputs and constants are sources; DFF D pins are sinks.
func (n *Netlist) levelize() error {
	indeg := make([]int32, len(n.gates))
	for i := range n.gates {
		g := &n.gates[i]
		switch g.Kind {
		case GateInput, GateConst0, GateConst1, GateDFF:
			// Sources: DFF output is available at frame start. Its D input
			// is consumed after the frame settles, so a DFF never
			// contributes to combinational ordering.
			continue
		}
		indeg[g.Out] = int32(0)
		for _, in := range g.In {
			switch n.gates[in].Kind {
			case GateInput, GateConst0, GateConst1, GateDFF:
			default:
				indeg[g.Out]++
			}
		}
	}
	queue := make([]NetID, 0, len(n.gates))
	for i := range n.gates {
		g := &n.gates[i]
		switch g.Kind {
		case GateInput, GateConst0, GateConst1, GateDFF:
			continue
		}
		if indeg[g.Out] == 0 {
			queue = append(queue, g.Out)
		}
	}
	// Build reverse adjacency once (combinational readers per net).
	readers := make([][]NetID, len(n.gates))
	for i := range n.gates {
		g := &n.gates[i]
		if g.Kind == GateInput || g.Kind == GateConst0 || g.Kind == GateConst1 || g.Kind == GateDFF {
			continue
		}
		for _, in := range g.In {
			readers[in] = append(readers[in], g.Out)
		}
	}
	order := make([]NetID, 0, len(n.gates))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, r := range readers[id] {
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	want := 0
	for i := range n.gates {
		switch n.gates[i].Kind {
		case GateInput, GateConst0, GateConst1, GateDFF:
		default:
			want++
		}
	}
	if len(order) != want {
		return fmt.Errorf("%w: %d of %d combinational gates ordered", errCombLoop, len(order), want)
	}
	n.order = order
	return nil
}

func (n *Netlist) buildFanout() {
	n.fanout = make([][]NetID, len(n.gates))
	for i := range n.gates {
		g := &n.gates[i]
		for _, in := range g.In {
			n.fanout[in] = append(n.fanout[in], g.Out)
		}
	}
}
