package logic

import (
	"fmt"
	"math/bits"

	"repro/internal/chaos"
)

// eventsim.go is the event-driven half of the compiled fault-simulation
// kernel. The fault simulator runs the fault-free machine once per
// segment (recording every net's value per cycle into a GoodTrace) and
// then replays each fault batch through an EventSim, which tracks only
// *divergence from the good machine*: per cycle the sole sources of
// divergence are the injected sites and flip-flops whose state already
// diverged, so the simulator seeds those and propagates XOR-difference
// words through the batch's fanout cone. A net whose recomputed value
// matches the good machine stops the propagation (the fault effect is
// blocked), so each batch cycle costs the size of the live fault-effect
// region — usually a sliver of the circuit — rather than a full frame
// sweep. Absolute values are never materialized; a gate evaluation
// reconstructs its operands as good-trace bit ⊕ difference on demand.
//
// This is the classic PROOFS-style observation that makes event-driven
// fault simulation pay off under pseudorandom vectors: almost every net
// *toggles* every cycle (so change-driven scheduling saves nothing),
// but almost no net *diverges* from the good machine.
//
// A batch spans laneWords (W) 64-bit words per net — bit 0 of every
// word is kept clear (the good machine lives in the trace), so one
// batch carries up to W×63 faults. Per-net stamps, the event bitmap and
// the cone structure are shared across the W words: one scheduling
// decision, one operand reconstruction dispatch and one sweep
// instruction dispatch amortize over the whole stripe, which is where
// widening the batch beats running W separate 63-fault batches (their
// cones largely overlap, so the union cone is far smaller than W
// disjoint replays).

// MaxLaneWords bounds EventSim stripe width. Memory per simulator grows
// linearly with it; the useful range tops out well below this (see
// docs/PERFORMANCE.md for the measured sweep).
const MaxLaneWords = 16

// BatchFault is one stuck-at injection for an EventSim batch; the fault
// at index i of BeginBatch's slice occupies word i/63, lane 1 + i%63.
type BatchFault struct {
	Site NetID
	SA1  bool
}

// DefaultSweepThreshold is the fraction of the batch cone's instruction
// count a single-word event-driven settle may execute before the cycle
// abandons event scheduling and runs the cone sweep instead. The event
// path costs several times more per instruction than the sweep
// (scattered operand reconstruction and worklist bookkeeping versus a
// linear pass over a compacted program), so the break-even sits well
// below 1.0; 0.2 was measured on the gate-level DSP core (see
// docs/PERFORMANCE.md).
const DefaultSweepThreshold = 0.2

// sweepThresholdFor is the measured event-abandonment threshold for a
// stripe width. The BENCH_4 sweep showed the break-even barely moves
// with width — the event path's scattered operand reconstruction costs
// per word, not per instruction — so all widths share the single-word
// threshold.
func sweepThresholdFor(lw int) float64 {
	return DefaultSweepThreshold
}

// sweepRetryInterval is how many consecutive sweep-mode cycles run
// before the simulator retries event scheduling. Divergence decays as
// faults are detected and retired, so a batch that went dense (sweep
// mode) usually becomes sparse again; the periodic retry converts back
// within a bounded number of cycles while capping the cost of failed
// retries (an abandoned event pass costs at most Threshold of a sweep's
// instructions, paid once per interval).
const sweepRetryInterval = 8

// EventSim replays one fault batch per segment against a GoodTrace.
// Usage per batch: BeginBatch, then per cycle Cycle followed by Clock,
// then LaneStateInto per surviving lane and EndBatch.
type EventSim struct {
	c  *Compiled
	lw int // lane words per stripe (W)

	// Per-net injection mask stripes (sa0[net*lw+w]; real nets only —
	// the final instruction of a chain is the only masked one).
	sa0      []uint64
	sa1      []uint64
	injected []NetID

	// diff[net*lw : net*lw+lw] is the XOR divergence stripe from the
	// good machine, valid only while divStamp[net] == cyc (stamps make
	// per-cycle reset O(1); one stamp covers the whole stripe).
	diff     []uint64
	divStamp []uint64
	cyc      uint64

	// tmpAbs holds absolute value stripes for the temporary slots of the
	// chain currently being evaluated (indices >= numNets only).
	tmpAbs []uint64

	// Scratch stripes for the multi-word event path: the value being
	// computed and up to three reconstructed operands.
	vBuf []uint64
	ob0  []uint64
	ob1  []uint64
	ob2  []uint64

	// Batch membership is epoch-stamped so teardown is O(1).
	epoch     uint32
	rEpoch    []uint32 // net reachable from an injected site
	combEpoch []uint32 // reachable and combinational (eligible for queueing)

	// bm is the event scheduler: one bit per schedule position
	// (Compiled.orderPos), set when the gate at that position must be
	// re-evaluated this cycle. Word-order scanning visits gates in
	// topological order, marking a reader is a single OR (idempotent, so
	// no dedup state), and a settled cycle leaves the bitmap zero.
	bm []uint64

	trace *GoodTrace
	row   []uint64 // trace row of the cycle being settled
	rAll  []NetID  // every reachable net (BFS order)
	rWork []NetID  // reachable combinational nets, topological order
	rDFF  []int32  // ordinals into Netlist.DFFs of reachable flip-flops
	qDiff []uint64 // per-rDFF state divergence stripes (stride lw)
	rOut  []int32  // ordinals into Netlist.Outputs of reachable outputs
	sites []NetID
	// laneSite[i] is fault i's injection site (word i/63, lane 1+i%63),
	// for RetireLane.
	laneSite []NetID
	// Lane retirement bookkeeping: retired[w] is word w's lane bitmask,
	// and when liveCount falls to shrinkAt the cone is rebuilt from the
	// live sites at the next Cycle (pendingShrink defers the rebuild so
	// it never lands between a Cycle and its Clock).
	retired       []uint64
	liveCount     int
	shrinkAt      int
	pendingShrink bool

	// Sweep mode: a compacted copy of the cone's instruction chains in
	// topological order, evaluated over absolute value stripes (swVals)
	// at full-sweep speed when divergence is too dense for event
	// scheduling to pay. bound lists the sweep's read-only frontier —
	// nets read by cone instructions (or cone flip-flop D pins) but
	// computed outside the cone — reseeded from the good trace each
	// sweep cycle; bEpoch dedups it. Injection masks are fused into the
	// program: an injected site's chain is followed by v |= sa1 then
	// v &= ^sa0 instructions whose second operands live in per-site mask
	// slots appended after the compiled slots (maskSlot maps site →
	// first slot while maskSlotEpoch matches; RetireLane edits the slot
	// stripes in place), so a sweep cycle is pure straight-line
	// execution. swBlock tiles the program into cache blocks (see
	// BlockSlots): block budgets shrink with lw so one tile's stripes
	// stay L1-resident across its instructions. swept records which mode
	// settled the current cycle (so Clock reads the matching state);
	// sweepNext and sweepStreak drive the adaptive mode switch.
	swCode        []opcode
	swDst         []int32
	swA0          []int32
	swA1          []int32
	swA2          []int32
	swBlock       []int32
	swVals        []uint64
	nextMaskSlot  int32
	maskSlot      []int32
	maskSlotEpoch []uint32
	bound         []NetID
	boundMsk      []NetID
	bEpoch        []uint32
	blkStamp      []uint32
	blkEpoch      uint32

	// Per-rDFF summaries so quiescent flip-flops cost one word instead
	// of a stripe scan: qAny[k] is the OR of qDiff's stripe, qMask[k]
	// the OR of the Q-site injection mask stripes (nonzero only for
	// injected flip-flop outputs).
	qAny  []uint64
	qMask []uint64

	swept       bool
	sweepNext   bool
	sweepStreak int

	// Buffer copy-propagation: mask-free single-buffer chains (fanout
	// branches, output aliases) are elided from the sweep program and
	// every later operand referencing them is rewritten to their source
	// (aliasTo, valid while aliasEpoch matches the batch epoch). On the
	// fanout-branched DSP core buffers are about two thirds of the
	// compiled program, so this more than halves the dense-cycle cost.
	aliasTo    []int32
	aliasEpoch []uint32

	// Threshold is the event-pass abandonment fraction of the cone's
	// instruction count (see DefaultSweepThreshold); budget is its
	// instruction-count form, recomputed per batch.
	Threshold float64
	budget    int

	evals      int64
	evalsSaved int64
	blocksRun  int64
}

// NewEventSim returns an EventSim for the compiled circuit with stripes
// of laneWords words (clamped to [1, MaxLaneWords]); a batch carries up
// to 63×laneWords faults.
func NewEventSim(c *Compiled, laneWords int) *EventSim {
	lw := laneWords
	if lw < 1 {
		lw = 1
	}
	if lw > MaxLaneWords {
		lw = MaxLaneWords
	}
	return &EventSim{
		c:  c,
		lw: lw,
		// Masks are slot-sized (temporaries are never injected and stay
		// zero) so the sweep can apply them by instruction destination.
		sa0:           make([]uint64, c.slots*lw),
		sa1:           make([]uint64, c.slots*lw),
		diff:          make([]uint64, c.numNets*lw),
		divStamp:      make([]uint64, c.numNets),
		tmpAbs:        make([]uint64, c.slots*lw),
		vBuf:          make([]uint64, lw),
		ob0:           make([]uint64, lw),
		ob1:           make([]uint64, lw),
		ob2:           make([]uint64, lw),
		rEpoch:        make([]uint32, c.numNets),
		combEpoch:     make([]uint32, c.numNets),
		bm:            make([]uint64, (len(c.schedule)+63)/64),
		retired:       make([]uint64, lw),
		swVals:        make([]uint64, c.slots*lw),
		maskSlot:      make([]int32, c.numNets),
		maskSlotEpoch: make([]uint32, c.numNets),
		bEpoch:        make([]uint32, c.numNets),
		blkStamp:      make([]uint32, c.slots),
		aliasTo:       make([]int32, c.numNets),
		aliasEpoch:    make([]uint32, c.numNets),
		Threshold:     sweepThresholdFor(lw),
	}
}

// LaneWords returns the stripe width W (64-bit words per net).
func (e *EventSim) LaneWords() int { return e.lw }

// BeginBatch installs a fault batch: injection masks, the reachable
// cone (transitive fanout of the sites, closed through DFF D→Q edges),
// and each fault's initial flip-flop divergence from laneStates (packed
// per Netlist.DFFs order; nil means the fault starts at the fault-free
// state). The trace must already hold the fault-free run through the
// cycles this batch will replay; base is the absolute cycle the batch
// starts at (laneStates describe the machine entering that cycle).
func (e *EventSim) BeginBatch(faults []BatchFault, trace *GoodTrace, base int, laneStates [][]uint64) {
	lw := e.lw
	if len(faults) > 63*lw {
		panic(fmt.Sprintf("logic: EventSim batch of %d faults exceeds %d lanes (%d words)",
			len(faults), 63*lw, lw))
	}
	c, n := e.c, e.c.n
	e.trace = trace
	e.epoch++
	e.rAll = e.rAll[:0]
	e.rWork = e.rWork[:0]
	e.rDFF = e.rDFF[:0]
	e.rOut = e.rOut[:0]
	e.sites = e.sites[:0]
	e.laneSite = e.laneSite[:0]

	// Injection masks; fault i lands in word i/63, lane 1 + i%63.
	for i, f := range faults {
		e.laneSite = append(e.laneSite, f.Site)
		b := int(f.Site)*lw + i/63
		lane := uint(1 + i%63)
		if f.SA1 {
			e.sa1[b] |= 1 << lane
		} else {
			e.sa0[b] |= 1 << lane
		}
		if e.rEpoch[f.Site] != e.epoch {
			e.rEpoch[f.Site] = e.epoch
			e.rAll = append(e.rAll, f.Site)
			e.sites = append(e.sites, f.Site)
			e.injected = append(e.injected, f.Site)
		}
	}

	// Reachable closure over the fanout relation. Netlist fanout lists
	// a DFF's Q net as a reader of its D net, so the BFS crosses clock
	// edges and the cone bounds every cycle's possible divergence.
	for qi := 0; qi < len(e.rAll); qi++ {
		for _, r := range c.readers(e.rAll[qi]) {
			if e.rEpoch[r] != e.epoch {
				e.rEpoch[r] = e.epoch
				e.rAll = append(e.rAll, r)
			}
		}
	}

	// Partition the cone.
	for _, id := range e.rAll {
		switch n.gates[id].Kind {
		case GateInput, GateConst0, GateConst1:
		case GateDFF:
			e.rDFF = append(e.rDFF, c.dffIndex[id])
		default:
			e.combEpoch[id] = e.epoch
			e.rWork = append(e.rWork, id)
		}
		if c.outIndex[id] >= 0 {
			e.rOut = append(e.rOut, c.outIndex[id])
		}
	}
	// Order rWork topologically: a wide cone (union of many faults'
	// fanouts) usually covers most of the circuit, where filtering the
	// precomputed schedule is a single linear pass; narrow cones sort.
	if len(e.rWork)*4 >= len(c.schedule) {
		e.rWork = e.rWork[:0]
		for _, id := range c.schedule {
			if e.combEpoch[id] == e.epoch {
				e.rWork = append(e.rWork, id)
			}
		}
	} else {
		sortByOrderPos(e.rWork, c.orderPos)
	}
	if cap(e.qDiff) < len(e.rDFF)*lw {
		e.qDiff = make([]uint64, len(e.rDFF)*lw)
	}
	e.qDiff = e.qDiff[:len(e.rDFF)*lw]
	if cap(e.qAny) < len(e.rDFF) {
		e.qAny = make([]uint64, len(e.rDFF))
		e.qMask = make([]uint64, len(e.rDFF))
	}
	e.qAny = e.qAny[:len(e.rDFF)]
	e.qMask = e.qMask[:len(e.rDFF)]
	// The sweep program appends two mask slots per injected site after
	// the compiled slots (see buildSweep); size the value stripes and
	// the block-budget stamp array for the worst case.
	maxSlots := c.slots + 2*len(e.sites)
	if cap(e.swVals) < maxSlots*lw {
		e.swVals = make([]uint64, maxSlots*lw)
	}
	e.swVals = e.swVals[:maxSlots*lw]
	if cap(e.blkStamp) < maxSlots {
		grown := make([]uint32, maxSlots)
		copy(grown, e.blkStamp)
		e.blkStamp = grown
	}
	e.blkStamp = e.blkStamp[:maxSlots]
	e.buildSweep()
	e.budget = int(e.Threshold * float64(len(e.swCode)))
	if e.budget < 16 {
		e.budget = 16
	}
	e.swept = false
	e.sweepNext = false
	e.sweepStreak = 0
	for w := range e.retired {
		e.retired[w] = 0
	}
	e.liveCount = len(faults)
	e.shrinkAt = len(faults) / 2
	e.pendingShrink = false

	// Initial flip-flop divergence: each fault's saved state overlaid on
	// the fault-free batch-start state (the trace's base-cycle Q values),
	// masked for Q-site faults — the analogue of SetLaneState +
	// ApplyInjectionsToValues on the reference simulator.
	for k, di := range e.rDFF {
		q := n.dffs[di]
		good := trace.Word(base, q)
		qb := int(q) * lw
		var anyD, anyM uint64
		for w := 0; w < lw; w++ {
			v := good
			lo := w * 63
			hi := lo + 63
			if hi > len(laneStates) {
				hi = len(laneStates)
			}
			for li := lo; li < hi; li++ {
				st := laneStates[li]
				if st == nil {
					continue
				}
				bit := uint64(1) << uint(1+li-lo)
				if st[di>>6]>>(uint(di)&63)&1 == 1 {
					v |= bit
				} else {
					v &^= bit
				}
			}
			v = (v &^ e.sa0[qb+w]) | e.sa1[qb+w]
			d := (v ^ good) &^ 1
			e.qDiff[k*lw+w] = d
			anyD |= d
			anyM |= e.sa0[qb+w] | e.sa1[qb+w]
		}
		e.qAny[k] = anyD
		e.qMask[k] = anyM
	}
}

// blockBudget is the sweep tile's distinct-slot budget: BlockSlots
// single-word slots shrunk by the stripe width so the tile's byte
// footprint stays constant as lanes widen.
func (e *EventSim) blockBudget() int {
	b := BlockSlots / e.lw
	if b < 256 {
		b = 256
	}
	return b
}

// buildSweep compacts the cone's instruction chains (rWork is already
// in topological order) into the sweep program, collects its read
// frontier — every real-net operand that no cone instruction computes
// and no cone flip-flop seeds, plus the D nets the sweep-mode Clock
// reads — and tiles the program into cache blocks (swBlock) by the
// distinct-slot budget.
//
// Mask-free buffer chains are copy-propagated away instead of emitted:
// on a fanout-branched netlist most "gates" are branch buffers whose
// sweep evaluation is a plain copy, so eliding them and rewriting later
// operands to read the source directly shrinks the program that runs
// every dense cycle. A buffer survives only if something outside the
// program reads its slot by net id: an injection mask applies to it, it
// is a primary output (the detection scan compares swVals[out]), or it
// feeds a flip-flop D pin (the sweep-mode Clock reads swVals[d]). The
// event path is untouched — it evaluates the full compiled program,
// where the buffers still exist.
func (e *EventSim) buildSweep() {
	c, lw := e.c, e.lw
	e.swCode = e.swCode[:0]
	e.swDst = e.swDst[:0]
	e.swA0 = e.swA0[:0]
	e.swA1 = e.swA1[:0]
	e.swA2 = e.swA2[:0]
	e.nextMaskSlot = int32(c.slots)
	e.bound = e.bound[:0]
	e.boundMsk = e.boundMsk[:0]
	e.swBlock = append(e.swBlock[:0], 0)
	e.blkEpoch++
	blkBudget := e.blockBudget()
	blkCount := 0
	note := func(slot int32) {
		if e.blkStamp[slot] != e.blkEpoch {
			e.blkStamp[slot] = e.blkEpoch
			blkCount++
		}
	}
	resolve := func(op int32) int32 {
		if int(op) < c.numNets && e.aliasEpoch[op] == e.epoch {
			return e.aliasTo[op]
		}
		return op
	}
	for _, id := range e.rWork {
		ps, pe := c.pcStart[id], c.pcEnd[id]
		masked := false
		mb := int(id) * lw
		for w := 0; w < lw; w++ {
			if e.sa0[mb+w]|e.sa1[mb+w] != 0 {
				masked = true
				break
			}
		}
		if !masked && pe-ps == 1 && c.code[ps] == opBuf &&
			c.outIndex[id] < 0 && !c.dPin[id] {
			// rWork is topological, so the source's own alias (if any)
			// is already final — chains of buffers flatten one hop at a
			// time and every emitted operand resolves in one lookup.
			e.aliasTo[id] = resolve(c.a0[ps])
			e.aliasEpoch[id] = e.epoch
			continue
		}
		for pc := ps; pc < pe; pc++ {
			a0, a1, a2 := resolve(c.a0[pc]), c.a1[pc], c.a2[pc]
			e.noteFrontier(a0)
			note(c.dst[pc])
			note(a0)
			switch c.code[pc] {
			case opBuf, opNot:
			case opMux:
				a1, a2 = resolve(a1), resolve(a2)
				e.noteFrontier(a1)
				e.noteFrontier(a2)
				note(a1)
				note(a2)
			default:
				a1 = resolve(a1)
				e.noteFrontier(a1)
				note(a1)
			}
			e.swCode = append(e.swCode, c.code[pc])
			e.swDst = append(e.swDst, c.dst[pc])
			e.swA0 = append(e.swA0, a0)
			e.swA1 = append(e.swA1, a1)
			e.swA2 = append(e.swA2, a2)
			if blkCount > blkBudget {
				e.swBlock = append(e.swBlock, int32(len(e.swCode)))
				e.blkEpoch++
				blkCount = 0
			}
		}
		if masked {
			// Fused mask application right after the chain's final
			// instruction: v = (v | sa1) &^ sa0 (the masks are lane-
			// disjoint, so the OR/AND order is equivalent), as two
			// instructions whose second operands live in the site's mask
			// slots — m0 holds the ^sa0 stripe, m1 the sa1 stripe — which
			// RetireLane edits in place.
			m0, m1 := e.nextMaskSlot, e.nextMaskSlot+1
			e.nextMaskSlot += 2
			e.maskSlot[id] = m0
			e.maskSlotEpoch[id] = e.epoch
			for w := 0; w < lw; w++ {
				e.swVals[int(m0)*lw+w] = ^e.sa0[mb+w]
				e.swVals[int(m1)*lw+w] = e.sa1[mb+w]
			}
			note(m0)
			note(m1)
			e.swCode = append(e.swCode, opOr2, opAnd2)
			e.swDst = append(e.swDst, int32(id), int32(id))
			e.swA0 = append(e.swA0, int32(id), int32(id))
			e.swA1 = append(e.swA1, m1, m0)
			e.swA2 = append(e.swA2, 0, 0)
			if blkCount > blkBudget {
				e.swBlock = append(e.swBlock, int32(len(e.swCode)))
				e.blkEpoch++
				blkCount = 0
			}
		}
	}
	if e.swBlock[len(e.swBlock)-1] != int32(len(e.swCode)) {
		e.swBlock = append(e.swBlock, int32(len(e.swCode)))
	}
	for _, di := range e.rDFF {
		e.noteFrontier(int32(c.n.gates[c.n.dffs[di]].In[0]))
	}
}

// noteFrontier adds a sweep-program operand to the read frontier unless
// the sweep computes it (in-cone combinational net), seeds it (in-cone
// flip-flop Q), or it is a chain temporary. Frontier nets carrying an
// injection mask — only injected primary-input/constant sites qualify —
// go on the separate boundMsk list so the per-cycle seed loop stays a
// plain broadcast for everything else.
func (e *EventSim) noteFrontier(op int32) {
	if int(op) >= e.c.numNets {
		return
	}
	if e.combEpoch[op] == e.epoch || e.bEpoch[op] == e.epoch {
		return
	}
	if e.c.dffIndex[op] >= 0 && e.rEpoch[op] == e.epoch {
		return
	}
	e.bEpoch[op] = e.epoch
	b := int(op) * e.lw
	for w := 0; w < e.lw; w++ {
		if e.sa0[b+w]|e.sa1[b+w] != 0 {
			e.boundMsk = append(e.boundMsk, NetID(op))
			return
		}
	}
	e.bound = append(e.bound, NetID(op))
}

// markFan schedules every combinational reader of net id for
// evaluation in the current cycle's settle. No membership or dedup test
// is needed: divergence is confined to the batch cone (readers of a
// cone net are in the cone by closure), and the bitmap OR is
// idempotent.
func (e *EventSim) markFan(id NetID) {
	c := e.c
	for _, p := range c.foPosList[c.foPosOff[id]:c.foPosOff[id+1]] {
		e.bm[p>>6] |= 1 << (uint(p) & 63)
	}
}

// operand reconstructs the absolute 64-lane word of one instruction
// operand at the cycle being settled (single-word path): good-trace
// value (from the hoisted row) XOR current divergence for real nets,
// the chain-local scratch for temporaries. The divergence merge is
// branchless — the stamp comparison becomes an all-ones/zero mask —
// because the branch is data-dependent and mispredicts heavily in
// half-diverged regions.
func (e *EventSim) operand(idx int32) uint64 {
	if int(idx) >= e.c.numNets {
		return e.tmpAbs[idx]
	}
	v := -(e.row[idx>>6] >> (uint(idx) & 63) & 1)
	x := e.divStamp[idx] ^ e.cyc
	live := ((x | -x) >> 63) - 1 // all-ones iff divStamp == cyc
	return v ^ (e.diff[idx] & live)
}

// operandStripes is operand for lw > 1: it reconstructs the stripe into
// buf (temporaries are returned in place from tmpAbs). The stamp mask
// is computed once per operand and applied branchlessly per word.
func (e *EventSim) operandStripes(idx int32, buf []uint64) []uint64 {
	lw := e.lw
	if int(idx) >= e.c.numNets {
		return e.tmpAbs[int(idx)*lw:][:lw]
	}
	v := -(e.row[idx>>6] >> (uint(idx) & 63) & 1)
	x := e.divStamp[idx] ^ e.cyc
	live := ((x | -x) >> 63) - 1
	dv := e.diff[int(idx)*lw:][:lw]
	buf = buf[:lw]
	for w := range buf {
		buf[w] = v ^ (dv[w] & live)
	}
	return buf
}

// evalNet executes net id's instruction chain against reconstructed
// absolute operands (single-word path) and returns the net's absolute
// word with its injection masks applied.
func (e *EventSim) evalNet(id NetID) uint64 {
	c := e.c
	code, dst, a0, a1, a2 := c.code, c.dst, c.a0, c.a1, c.a2
	var v uint64
	for pc := c.pcStart[id]; pc < c.pcEnd[id]; pc++ {
		switch code[pc] {
		case opBuf:
			v = e.operand(a0[pc])
		case opNot:
			v = ^e.operand(a0[pc])
		case opAnd2:
			v = e.operand(a0[pc]) & e.operand(a1[pc])
		case opOr2:
			v = e.operand(a0[pc]) | e.operand(a1[pc])
		case opNand2:
			v = ^(e.operand(a0[pc]) & e.operand(a1[pc]))
		case opNor2:
			v = ^(e.operand(a0[pc]) | e.operand(a1[pc]))
		case opXor2:
			v = e.operand(a0[pc]) ^ e.operand(a1[pc])
		case opXnor2:
			v = ^(e.operand(a0[pc]) ^ e.operand(a1[pc]))
		case opMux:
			sel := e.operand(a0[pc])
			v = (e.operand(a1[pc]) &^ sel) | (e.operand(a2[pc]) & sel)
		}
		if d := dst[pc]; int(d) >= c.numNets {
			e.tmpAbs[d] = v
		}
	}
	return (v &^ e.sa0[id]) | e.sa1[id]
}

// evalNetStripes executes net id's chain over lw-word stripes, applies
// the injection masks, writes the resulting divergence stripe into
// diff, and returns the OR of its words (zero = converged).
func (e *EventSim) evalNetStripes(id NetID) uint64 {
	c, lw := e.c, e.lw
	code, dst, a0, a1, a2 := c.code, c.dst, c.a0, c.a1, c.a2
	v := e.vBuf
	for pc := c.pcStart[id]; pc < c.pcEnd[id]; pc++ {
		x := e.operandStripes(a0[pc], e.ob0)
		switch code[pc] {
		case opBuf:
			copy(v, x)
		case opNot:
			for w := range v {
				v[w] = ^x[w]
			}
		case opAnd2:
			y := e.operandStripes(a1[pc], e.ob1)
			for w := range v {
				v[w] = x[w] & y[w]
			}
		case opOr2:
			y := e.operandStripes(a1[pc], e.ob1)
			for w := range v {
				v[w] = x[w] | y[w]
			}
		case opNand2:
			y := e.operandStripes(a1[pc], e.ob1)
			for w := range v {
				v[w] = ^(x[w] & y[w])
			}
		case opNor2:
			y := e.operandStripes(a1[pc], e.ob1)
			for w := range v {
				v[w] = ^(x[w] | y[w])
			}
		case opXor2:
			y := e.operandStripes(a1[pc], e.ob1)
			for w := range v {
				v[w] = x[w] ^ y[w]
			}
		case opXnor2:
			y := e.operandStripes(a1[pc], e.ob1)
			for w := range v {
				v[w] = ^(x[w] ^ y[w])
			}
		case opMux:
			y := e.operandStripes(a1[pc], e.ob1)
			z := e.operandStripes(a2[pc], e.ob2)
			for w := range v {
				v[w] = (y[w] &^ x[w]) | (z[w] & x[w])
			}
		}
		if d := dst[pc]; int(d) >= c.numNets {
			copy(e.tmpAbs[int(d)*lw:][:lw], v)
		}
	}
	b := int(id) * lw
	s0 := e.sa0[b:][:lw]
	s1 := e.sa1[b:][:lw]
	dv := e.diff[b:][:lw]
	good := e.goodWord(id)
	var any uint64
	for w := range dv {
		d := ((v[w] &^ s0[w]) | s1[w]) ^ good
		dv[w] = d
		any |= d
	}
	return any
}

// goodWord broadcasts net id's fault-free value from the hoisted row.
func (e *EventSim) goodWord(id NetID) uint64 {
	return -(e.row[id>>6] >> (uint(id) & 63) & 1)
}

// Cycle settles the given absolute cycle and fills det (length
// LaneWords) with the OR-ed per-output lane-difference stripe against
// the fault-free machine (bit 0 of every word always clear).
// Primary-input values come from the good trace — the good machine saw
// the same vectors — so no vector is needed; only the divergence
// sources (injected sites, diverged flip-flops) and their live fanout
// are evaluated. When divergence is dense the cycle runs the compacted
// cone sweep instead (see sweepCycle); the two modes interoperate
// freely because the only cross-cycle state is qDiff. Call Clock
// afterwards to advance state.
//
// The logic.eventsim.diff chaos point (internal/chaos) can corrupt the
// returned mask — one seeded-random lane-bit flip — to model a silently
// wrong compiled-kernel batch; the engine's shadow cross-check exists
// to catch exactly this class of failure.
func (e *EventSim) Cycle(cycle int, det []uint64) {
	e.cycleInto(cycle, det)
	if f := chaos.Maybe("logic.eventsim.diff"); f != nil {
		det[0] = f.CorruptWord(det[0]) &^ 1
	}
}

func (e *EventSim) cycleInto(cycle int, det []uint64) {
	c, n := e.c, e.c.n
	lw := e.lw
	det = det[:lw]
	for w := range det {
		det[w] = 0
	}
	e.cyc++
	e.row = e.trace.row(cycle)
	if e.pendingShrink {
		e.shrinkCone()
	}

	if e.sweepNext && e.sweepStreak < sweepRetryInterval {
		e.sweepStreak++
		e.swept = true
		e.sweepCycle(det)
		e.evals += int64(len(e.swCode)) * int64(lw)
		e.evalsSaved += int64(len(c.code)-len(e.swCode)) * int64(lw)
		return
	}
	e.sweepStreak = 0
	e.swept = false

	// Seed divergence sources. Injected non-DFF sites: the masks force
	// lanes away from the good value (a site that is also a scheduled
	// cone gate re-evaluates later with the same masks, reproducing or
	// refining this difference — never losing the forced lanes).
	for _, id := range e.sites {
		if n.gates[id].Kind == GateDFF {
			continue // carried by qDiff below
		}
		good := e.goodWord(id)
		b := int(id) * lw
		var any uint64
		for w := 0; w < lw; w++ {
			d := ((good &^ e.sa0[b+w]) | e.sa1[b+w]) ^ good
			e.diff[b+w] = d
			any |= d
		}
		if any != 0 {
			e.divStamp[id] = e.cyc
			e.markFan(id)
		}
	}
	for k, di := range e.rDFF {
		if e.qAny[k] != 0 {
			q := n.dffs[di]
			copy(e.diff[int(q)*lw:][:lw], e.qDiff[k*lw:(k+1)*lw])
			e.divStamp[q] = e.cyc
			e.markFan(q)
		}
	}

	// Topological settle of the scheduled gates by bitmap scan. The
	// word is drained lowest-bit-first, re-reading it every iteration:
	// an evaluation can mark a reader at a position below other pending
	// bits of the same word, and taking the minimum pending position
	// keeps the scan strictly topological (a mark is always above its
	// driver's position, so nothing ever lands behind the scan point and
	// every gate is evaluated exactly once per cycle). Divergence that
	// dies (recomputed value equals the good machine's) stops
	// propagating.
	executed := 0
	bm := e.bm
	sched := c.schedule
	for wi := 0; wi < len(bm); wi++ {
		base := int32(wi << 6)
		for bm[wi] != 0 {
			b := bits.TrailingZeros64(bm[wi])
			bm[wi] &^= 1 << uint(b)
			id := sched[base+int32(b)]
			executed += int(c.pcEnd[id] - c.pcStart[id])
			if lw == 1 {
				abs := e.evalNet(id)
				if d := abs ^ e.goodWord(id); d != 0 {
					e.diff[id] = d
					e.divStamp[id] = e.cyc
					e.markFan(id)
				} else {
					e.divStamp[id] = 0
				}
			} else {
				if e.evalNetStripes(id) != 0 {
					e.divStamp[id] = e.cyc
					e.markFan(id)
				} else {
					e.divStamp[id] = 0
				}
			}
		}
		if executed > e.budget {
			// Too dense for event scheduling to pay: abandon the pass and
			// settle with the sweep, which ignores the partial divStamp
			// state (it reads only qDiff and the trace), then stay in
			// sweep mode. The wasted event work is capped by Threshold.
			for i := wi + 1; i < len(bm); i++ {
				bm[i] = 0
			}
			e.swept = true
			e.sweepNext = true
			e.sweepCycle(det)
			executed += len(e.swCode)
			e.evals += int64(executed) * int64(lw)
			e.evalsSaved += int64(len(c.code)-executed) * int64(lw)
			return
		}
	}
	e.sweepNext = false
	e.evals += int64(executed) * int64(lw)
	e.evalsSaved += int64(len(c.code)-executed) * int64(lw)

	for _, oi := range e.rOut {
		o := n.outputs[oi]
		if e.divStamp[o] == e.cyc {
			ob := int(o) * lw
			for w := 0; w < lw; w++ {
				det[w] |= e.diff[ob+w]
			}
		}
	}
	for w := range det {
		det[w] &^= 1
	}
}

// sweepCycle settles the current cycle by evaluating the whole cone
// over absolute value stripes: seed the read frontier and the in-cone
// flip-flop Qs from the good row (plus divergence and injection masks),
// then run the compacted program tile by tile — the same cost profile
// as the full-sweep CompiledSim, but confined to the cone and amortized
// over lw words per instruction dispatch.
func (e *EventSim) sweepCycle(det []uint64) {
	n, lw := e.c.n, e.lw
	vals := e.swVals
	for _, bn := range e.bound {
		good := e.goodWord(bn)
		b := int(bn) * lw
		for w := 0; w < lw; w++ {
			vals[b+w] = good
		}
	}
	for _, bn := range e.boundMsk {
		// Injected frontier sites (primary inputs, constants).
		good := e.goodWord(bn)
		b := int(bn) * lw
		for w := 0; w < lw; w++ {
			vals[b+w] = (good &^ e.sa0[b+w]) | e.sa1[b+w]
		}
	}
	for k, di := range e.rDFF {
		q := n.dffs[di]
		good := e.goodWord(q)
		qb := int(q) * lw
		if e.qAny[k] == 0 {
			for w := 0; w < lw; w++ {
				vals[qb+w] = good
			}
			continue
		}
		for w := 0; w < lw; w++ {
			vals[qb+w] = good ^ e.qDiff[k*lw+w]
		}
	}
	for bi := 0; bi+1 < len(e.swBlock); bi++ {
		e.runSweep(e.swBlock[bi], e.swBlock[bi+1])
	}
	e.blocksRun += int64(len(e.swBlock) - 1)
	for _, oi := range e.rOut {
		o := n.outputs[oi]
		good := e.goodWord(o)
		ob := int(o) * lw
		for w := 0; w < lw; w++ {
			det[w] |= vals[ob+w] ^ good
		}
	}
	for w := 0; w < lw; w++ {
		det[w] &^= 1
	}
}

// runSweep executes sweep-program instructions [ps, pe) on the width
// the simulator was built with (specialized runners for 1 and 4 words).
func (e *EventSim) runSweep(ps, pe int32) {
	if ps >= pe {
		return
	}
	switch e.lw {
	case 1:
		runProgram(e.swCode, e.swDst, e.swA0, e.swA1, e.swA2, e.swVals, ps, pe)
	case 4:
		runProgramStripes4(e.swCode, e.swDst, e.swA0, e.swA1, e.swA2, e.swVals, ps, pe)
	case 8:
		runProgramStripes8(e.swCode, e.swDst, e.swA0, e.swA1, e.swA2, e.swVals, ps, pe)
	default:
		runProgramStripes(e.swCode, e.swDst, e.swA0, e.swA1, e.swA2, e.swVals, e.lw, ps, pe)
	}
}

// Clock advances every in-cone flip-flop's divergence (applying Q-site
// injection masks) for the cycle just settled by Cycle. The good
// machine's next Q value is its current D value, so the new divergence
// needs no lookahead. After an event-mode settle a single pass is safe
// even for direct Q→D chains: reading a Q operand consults
// diff/divStamp (seeded at the top of Cycle), which this loop never
// writes. After a sweep-mode settle the D values come from swVals,
// which the clock does not modify either. Out-of-cone flip-flops cannot
// diverge and are left to the trace.
func (e *EventSim) Clock() {
	n, lw := e.c.n, e.lw
	if e.swept {
		for k, di := range e.rDFF {
			q := n.dffs[di]
			d := n.gates[q].In[0]
			goodD := e.goodWord(d)
			db, qb := int(d)*lw, int(q)*lw
			var anyD uint64
			for w := 0; w < lw; w++ {
				nd := (((e.swVals[db+w] &^ e.sa0[qb+w]) | e.sa1[qb+w]) ^ goodD) &^ 1
				e.qDiff[k*lw+w] = nd
				anyD |= nd
			}
			e.qAny[k] = anyD
		}
		return
	}
	for k, di := range e.rDFF {
		q := n.dffs[di]
		d := n.gates[q].In[0]
		if e.divStamp[d] != e.cyc && e.qAny[k]|e.qMask[k] == 0 {
			continue // quiescent flip-flop stays at the good value
		}
		diverged := e.divStamp[d] == e.cyc
		goodD := e.goodWord(d)
		db, qb := int(d)*lw, int(q)*lw
		var anyD uint64
		for w := 0; w < lw; w++ {
			absD := goodD
			if diverged {
				absD ^= e.diff[db+w]
			}
			nd := (((absD &^ e.sa0[qb+w]) | e.sa1[qb+w]) ^ goodD) &^ 1
			e.qDiff[k*lw+w] = nd
			anyD |= nd
		}
		e.qAny[k] = anyD
	}
}

// RetireLane removes the fault in the given stripe word and lane from
// the batch: its injection mask bit and any state divergence it
// accumulated are cleared, so its divergence stops being simulated from
// the next cycle on. The fault simulator calls this once a fault
// reaches its detection quota — unlike the full-sweep kernels, whose
// cost is fixed per batch, the event kernel's cost shrinks with every
// retired fault. Surviving lanes are unaffected (lanes never interact).
func (e *EventSim) RetireLane(word int, lane uint) {
	lw := e.lw
	site := e.laneSite[word*63+int(lane)-1]
	bit := uint64(1) << lane
	b := int(site)*lw + word
	e.sa0[b] &^= bit
	e.sa1[b] &^= bit
	if e.maskSlotEpoch[site] == e.epoch {
		// Keep the sweep program's fused mask slots in step.
		ms := int(e.maskSlot[site])
		e.swVals[ms*lw+word] |= bit      // ^sa0 stripe
		e.swVals[(ms+1)*lw+word] &^= bit // sa1 stripe
	}
	if di := e.c.dffIndex[site]; di >= 0 {
		for k, d := range e.rDFF {
			if d == di {
				var m uint64
				qb := int(site) * lw
				for w := 0; w < lw; w++ {
					m |= e.sa0[qb+w] | e.sa1[qb+w]
				}
				e.qMask[k] = m
				break
			}
		}
	}
	// qAny is left as a conservative superset — the retired lane's bit
	// may still be live in other words, and every consumer treats a
	// stale nonzero as "do the exact stripe work", which the next Clock
	// uses to refresh it.
	for k := 0; k < len(e.rDFF); k++ {
		e.qDiff[k*lw+word] &^= bit
	}
	if e.retired[word]&bit == 0 {
		e.retired[word] |= bit
		e.liveCount--
		if e.liveCount <= e.shrinkAt {
			e.pendingShrink = true
		}
	}
}

// shrinkCone rebuilds the cone from the still-live faults' sites. The
// live cone is a subset of the current one (closure is monotonic in the
// site set), so every list is rebuilt by filtering — rWork keeps its
// topological order without re-sorting, and rDFF compacts qDiff in
// step. Dropped flip-flops are provably quiescent: a live fault's
// divergence stays inside its own site's closure, and RetireLane
// cleared the retired lanes' bits.
func (e *EventSim) shrinkCone() {
	c, n := e.c, e.c.n
	lw := e.lw
	e.pendingShrink = false
	e.epoch++
	e.rAll = e.rAll[:0]
	e.sites = e.sites[:0]
	for i, s := range e.laneSite {
		if e.retired[i/63]>>(uint(1+i%63))&1 == 0 && e.rEpoch[s] != e.epoch {
			e.rEpoch[s] = e.epoch
			e.rAll = append(e.rAll, s)
			e.sites = append(e.sites, s)
		}
	}
	for qi := 0; qi < len(e.rAll); qi++ {
		for _, r := range c.readers(e.rAll[qi]) {
			if e.rEpoch[r] != e.epoch {
				e.rEpoch[r] = e.epoch
				e.rAll = append(e.rAll, r)
			}
		}
	}
	nw := 0
	for _, id := range e.rWork {
		if e.rEpoch[id] == e.epoch {
			e.combEpoch[id] = e.epoch
			e.rWork[nw] = id
			nw++
		}
	}
	e.rWork = e.rWork[:nw]
	nd := 0
	for k, di := range e.rDFF {
		if e.rEpoch[n.dffs[di]] == e.epoch {
			e.rDFF[nd] = di
			copy(e.qDiff[nd*lw:(nd+1)*lw], e.qDiff[k*lw:(k+1)*lw])
			e.qAny[nd] = e.qAny[k]
			e.qMask[nd] = e.qMask[k]
			nd++
		}
	}
	e.rDFF = e.rDFF[:nd]
	e.qDiff = e.qDiff[:nd*lw]
	e.qAny = e.qAny[:nd]
	e.qMask = e.qMask[:nd]
	no := 0
	for _, oi := range e.rOut {
		if e.rEpoch[n.outputs[oi]] == e.epoch {
			e.rOut[no] = oi
			no++
		}
	}
	e.rOut = e.rOut[:no]
	e.buildSweep()
	e.budget = int(e.Threshold * float64(len(e.swCode)))
	if e.budget < 16 {
		e.budget = 16
	}
	e.shrinkAt = e.liveCount / 2
	// Divergence just dropped with the retirements, so retry event
	// scheduling immediately rather than waiting out the sweep streak.
	e.sweepStreak = sweepRetryInterval
}

// LaneStateInto writes one fault lane's packed DFF state to dst: the
// fault-free next state nextGood with the lane's in-cone flip-flop
// divergence bits flipped (out-of-cone flip-flops never diverge).
func (e *EventSim) LaneStateInto(word int, lane uint, nextGood, dst []uint64) {
	lw := e.lw
	copy(dst, nextGood)
	for k, di := range e.rDFF {
		if e.qDiff[k*lw+word]>>lane&1 == 1 {
			dst[di>>6] ^= 1 << (uint(di) & 63)
		}
	}
}

// ActiveFrac reports the batch cone's share of the combinational frame
// (instruction-weighted), for diagnostics.
func (e *EventSim) ActiveFrac() float64 {
	if len(e.c.code) == 0 {
		return 0
	}
	instrs := 0
	for _, id := range e.rWork {
		instrs += int(e.c.pcEnd[id] - e.c.pcStart[id])
	}
	return float64(instrs) / float64(len(e.c.code))
}

// EndBatch removes the batch's injection masks and returns and resets
// the evaluation counters: word-instruction evaluations executed
// (instructions × lane words, continuous with the single-word kernel's
// unit), evaluations saved versus a full-frame sweep per batch cycle
// (negative only if fallback re-evaluation overshot it), and sweep
// cache blocks run.
func (e *EventSim) EndBatch() (evals, saved, blocks int64) {
	lw := e.lw
	for _, id := range e.injected {
		b := int(id) * lw
		for w := 0; w < lw; w++ {
			e.sa0[b+w] = 0
			e.sa1[b+w] = 0
		}
	}
	e.injected = e.injected[:0]
	evals, saved, blocks = e.evals, e.evalsSaved, e.blocksRun
	e.evals, e.evalsSaved, e.blocksRun = 0, 0, 0
	return evals, saved, blocks
}

// sortByOrderPos sorts nets by their compiled chain position with shell
// sort (Ciura gaps) — the lists are per-batch scratch, and this avoids
// sort.Slice's closure allocation in the batch setup path.
func sortByOrderPos(nets []NetID, pos []int32) {
	gaps := []int{1, 4, 10, 23, 57, 132, 301, 701, 1577}
	for i := len(gaps) - 1; i >= 0; i-- {
		gap := gaps[i]
		if gap >= len(nets) {
			continue
		}
		for j := gap; j < len(nets); j++ {
			v := nets[j]
			k := j
			for k >= gap && pos[nets[k-gap]] > pos[v] {
				nets[k] = nets[k-gap]
				k -= gap
			}
			nets[k] = v
		}
	}
}
