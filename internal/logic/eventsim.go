package logic

import (
	"fmt"
	"math/bits"

	"repro/internal/chaos"
)

// eventsim.go is the event-driven half of the compiled fault-simulation
// kernel. The fault simulator runs the fault-free machine once per
// segment (recording every net's value per cycle into a GoodTrace) and
// then replays each 63-fault batch through an EventSim, which tracks
// only *divergence from the good machine*: per cycle the sole sources
// of divergence are the injected sites and flip-flops whose state
// already diverged, so the simulator seeds those and propagates
// XOR-difference words level by level through the batch's fanout cone.
// A net whose recomputed value matches the good machine stops the
// propagation (the fault effect is blocked), so each batch cycle costs
// the size of the live fault-effect region — usually a sliver of the
// circuit — rather than a full frame sweep. Absolute values are never
// materialized; a gate evaluation reconstructs its operands as
// good-trace bit ⊕ difference on demand.
//
// This is the classic PROOFS-style observation that makes event-driven
// fault simulation pay off under pseudorandom vectors: almost every net
// *toggles* every cycle (so change-driven scheduling saves nothing),
// but almost no net *diverges* from the good machine.

// GoodTrace stores the fault-free machine's per-cycle net values for
// one segment as packed bitsets (one bit per net per cycle, snapshotted
// after settle and before the clock edge).
type GoodTrace struct {
	words  int // uint64 words per cycle row
	cycles int
	bits   []uint64
}

// NewGoodTrace returns a trace for a circuit with numNets nets, sized
// for up to maxCycles cycles.
func NewGoodTrace(numNets, maxCycles int) *GoodTrace {
	w := (numNets + 63) / 64
	if w == 0 {
		w = 1
	}
	return &GoodTrace{words: w, bits: make([]uint64, w*maxCycles)}
}

// Reset prepares the trace to record a segment of the given length,
// growing the backing storage if needed.
func (t *GoodTrace) Reset(cycles int) {
	if need := cycles * t.words; need > len(t.bits) {
		t.bits = make([]uint64, need)
	}
	t.cycles = cycles
}

// Cycles returns the recorded segment length.
func (t *GoodTrace) Cycles() int { return t.cycles }

// Record snapshots lane 0 of the simulator's settled frame at the given
// segment-relative cycle.
func (t *GoodTrace) Record(cycle int, s *CompiledSim) {
	row := t.bits[cycle*t.words : (cycle+1)*t.words]
	for i := range row {
		row[i] = 0
	}
	for i, v := range s.vals[:s.c.numNets] {
		row[i>>6] |= (v & 1) << (uint(i) & 63)
	}
}

// Bit returns net id's fault-free value (0 or 1) at the cycle.
func (t *GoodTrace) Bit(cycle int, id NetID) uint64 {
	return t.bits[cycle*t.words+int(id)>>6] >> (uint(id) & 63) & 1
}

// Word returns net id's fault-free value broadcast across all 64 lanes.
func (t *GoodTrace) Word(cycle int, id NetID) uint64 {
	return -t.Bit(cycle, id)
}

// BatchFault is one stuck-at injection for an EventSim batch; the fault
// at index i of BeginBatch's slice occupies lane i+1.
type BatchFault struct {
	Site NetID
	SA1  bool
}

// DefaultSweepThreshold is the fraction of the batch cone's instruction
// count an event-driven settle may execute before the cycle abandons
// event scheduling and runs the cone sweep instead. The event path
// costs several times more per instruction than the sweep (scattered
// operand reconstruction and worklist bookkeeping versus a linear pass
// over a compacted program), so the break-even sits well below 1.0;
// 0.2 was measured on the gate-level DSP core (see
// docs/PERFORMANCE.md).
const DefaultSweepThreshold = 0.2

// sweepRetryInterval is how many consecutive sweep-mode cycles run
// before the simulator retries event scheduling. Divergence decays as
// faults are detected and retired, so a batch that went dense (sweep
// mode) usually becomes sparse again; the periodic retry converts back
// within a bounded number of cycles while capping the cost of failed
// retries (an abandoned event pass costs at most Threshold of a sweep's
// instructions, paid once per interval).
const sweepRetryInterval = 8

// EventSim replays one fault batch per segment against a GoodTrace.
// Usage per batch: BeginBatch, then per cycle Cycle followed by Clock,
// then LaneStateInto per surviving lane and EndBatch.
type EventSim struct {
	c *Compiled

	// Per-net injection masks (real nets only; the final instruction of
	// a chain is the only masked one).
	sa0      []uint64
	sa1      []uint64
	injected []NetID

	// diff[net] is the XOR divergence from the good machine, valid only
	// while divStamp[net] == cyc (stamps make per-cycle reset O(1)).
	diff     []uint64
	divStamp []uint64
	cyc      uint64

	// tmpAbs holds absolute values for the temporary slots of the chain
	// currently being evaluated (indices >= numNets only).
	tmpAbs []uint64

	// Batch membership is epoch-stamped so teardown is O(1).
	epoch     uint32
	rEpoch    []uint32 // net reachable from an injected site
	combEpoch []uint32 // reachable and combinational (eligible for queueing)

	// bm is the event scheduler: one bit per chain position
	// (Compiled.orderPos), set when the gate at that position must be
	// re-evaluated this cycle. Word-order scanning visits gates in
	// topological order, marking a reader is a single OR (idempotent, so
	// no dedup state), and a settled cycle leaves the bitmap zero.
	bm []uint64

	trace *GoodTrace
	row   []uint64 // trace row of the cycle being settled
	rAll  []NetID  // every reachable net (BFS order)
	rWork []NetID  // reachable combinational nets, topological order
	rDFF  []int32  // ordinals into Netlist.DFFs of reachable flip-flops
	qDiff []uint64 // per-rDFF state divergence from the good machine
	rOut  []int32  // ordinals into Netlist.Outputs of reachable outputs
	sites []NetID
	// laneSite[i] is lane i+1's injection site, for RetireLane.
	laneSite []NetID
	// Lane retirement bookkeeping: retired is the lane bitmask, and when
	// liveCount falls to shrinkAt the cone is rebuilt from the live
	// sites at the next Cycle (pendingShrink defers the rebuild so it
	// never lands between a Cycle and its Clock).
	retired       uint64
	liveCount     int
	shrinkAt      int
	pendingShrink bool

	// Sweep mode: a compacted copy of the cone's instruction chains in
	// topological order, evaluated over absolute values (swVals) at
	// full-sweep speed when divergence is too dense for event scheduling
	// to pay. bound lists the sweep's read-only frontier — nets read by
	// cone instructions (or cone flip-flop D pins) but computed outside
	// the cone — reseeded from the good trace each sweep cycle; bEpoch
	// dedups it. swMaskPC holds the positions of injected sites' final
	// instructions, so the stretches between them run mask-free. swept
	// records which mode settled the current cycle (so Clock reads the
	// matching state); sweepNext and sweepStreak drive the adaptive mode
	// switch.
	swCode      []opcode
	swDst       []int32
	swA0        []int32
	swA1        []int32
	swA2        []int32
	swMaskPC    []int32
	swVals      []uint64
	bound       []NetID
	bEpoch      []uint32
	swept       bool
	sweepNext   bool
	sweepStreak int

	// Buffer copy-propagation: mask-free single-buffer chains (fanout
	// branches, output aliases) are elided from the sweep program and
	// every later operand referencing them is rewritten to their source
	// (aliasTo, valid while aliasEpoch matches the batch epoch). On the
	// fanout-branched DSP core buffers are about two thirds of the
	// compiled program, so this more than halves the dense-cycle cost.
	aliasTo    []int32
	aliasEpoch []uint32

	// Threshold is the event-pass abandonment fraction of the cone's
	// instruction count (see DefaultSweepThreshold); budget is its
	// instruction-count form, recomputed per batch.
	Threshold float64
	budget    int

	evals      int64
	evalsSaved int64
}

// NewEventSim returns an EventSim for the compiled circuit.
func NewEventSim(c *Compiled) *EventSim {
	return &EventSim{
		c: c,
		// Masks are slot-sized (temporaries are never injected and stay
		// zero) so the sweep can apply them by instruction destination.
		sa0:       make([]uint64, c.slots),
		sa1:       make([]uint64, c.slots),
		diff:      make([]uint64, c.numNets),
		divStamp:  make([]uint64, c.numNets),
		tmpAbs:    make([]uint64, c.slots),
		rEpoch:    make([]uint32, c.numNets),
		combEpoch: make([]uint32, c.numNets),
		bm:        make([]uint64, (len(c.n.order)+63)/64),
		swVals:     make([]uint64, c.slots),
		bEpoch:     make([]uint32, c.numNets),
		aliasTo:    make([]int32, c.numNets),
		aliasEpoch: make([]uint32, c.numNets),
		Threshold: DefaultSweepThreshold,
	}
}

// BeginBatch installs a fault batch: injection masks, the reachable
// cone (transitive fanout of the sites, closed through DFF D→Q edges),
// and each lane's initial flip-flop divergence from laneStates (packed
// per Netlist.DFFs order; nil means the lane starts at the fault-free
// state). The trace must already hold the segment's fault-free run.
func (e *EventSim) BeginBatch(faults []BatchFault, trace *GoodTrace, laneStates [][]uint64) {
	if len(faults) > 63 {
		panic(fmt.Sprintf("logic: EventSim batch of %d faults exceeds 63 lanes", len(faults)))
	}
	c, n := e.c, e.c.n
	e.trace = trace
	e.epoch++
	e.rAll = e.rAll[:0]
	e.rWork = e.rWork[:0]
	e.rDFF = e.rDFF[:0]
	e.rOut = e.rOut[:0]
	e.sites = e.sites[:0]
	e.laneSite = e.laneSite[:0]

	// Injection masks; lane i+1 carries faults[i].
	for i, f := range faults {
		e.laneSite = append(e.laneSite, f.Site)
		lane := uint(i + 1)
		if e.sa0[f.Site] == 0 && e.sa1[f.Site] == 0 {
			e.injected = append(e.injected, f.Site)
		}
		if f.SA1 {
			e.sa1[f.Site] |= 1 << lane
		} else {
			e.sa0[f.Site] |= 1 << lane
		}
		if e.rEpoch[f.Site] != e.epoch {
			e.rEpoch[f.Site] = e.epoch
			e.rAll = append(e.rAll, f.Site)
			e.sites = append(e.sites, f.Site)
		}
	}

	// Reachable closure over the fanout relation. Netlist fanout lists
	// a DFF's Q net as a reader of its D net, so the BFS crosses clock
	// edges and the cone bounds every cycle's possible divergence.
	for qi := 0; qi < len(e.rAll); qi++ {
		for _, r := range c.readers(e.rAll[qi]) {
			if e.rEpoch[r] != e.epoch {
				e.rEpoch[r] = e.epoch
				e.rAll = append(e.rAll, r)
			}
		}
	}

	// Partition the cone.
	for _, id := range e.rAll {
		switch n.gates[id].Kind {
		case GateInput, GateConst0, GateConst1:
		case GateDFF:
			e.rDFF = append(e.rDFF, c.dffIndex[id])
		default:
			e.combEpoch[id] = e.epoch
			e.rWork = append(e.rWork, id)
		}
		if c.outIndex[id] >= 0 {
			e.rOut = append(e.rOut, c.outIndex[id])
		}
	}
	sortByOrderPos(e.rWork, c.orderPos)
	if cap(e.qDiff) < len(e.rDFF) {
		e.qDiff = make([]uint64, len(e.rDFF))
	}
	e.qDiff = e.qDiff[:len(e.rDFF)]
	e.buildSweep()
	e.budget = int(e.Threshold * float64(len(e.swCode)))
	if e.budget < 16 {
		e.budget = 16
	}
	e.swept = false
	e.sweepNext = false
	e.sweepStreak = 0
	e.retired = 0
	e.liveCount = len(faults)
	e.shrinkAt = len(faults) / 2
	e.pendingShrink = false

	// Initial flip-flop divergence: each lane's saved state overlaid on
	// the fault-free segment-start state (the trace's cycle-0 Q values),
	// masked for Q-site faults — the analogue of SetLaneState +
	// ApplyInjectionsToValues on the reference simulator.
	for k, di := range e.rDFF {
		q := n.dffs[di]
		good := trace.Word(0, q)
		w := good
		for li, st := range laneStates {
			if st == nil {
				continue
			}
			bit := uint64(1) << uint(li+1)
			if st[di>>6]>>(uint(di)&63)&1 == 1 {
				w |= bit
			} else {
				w &^= bit
			}
		}
		w = (w &^ e.sa0[q]) | e.sa1[q]
		e.qDiff[k] = (w ^ good) &^ 1
	}
}

// buildSweep compacts the cone's instruction chains (rWork is already
// in topological order) into the sweep program and collects its read
// frontier: every real-net operand that no cone instruction computes
// and no cone flip-flop seeds, plus the D nets the sweep-mode Clock
// reads. Temporary slots are always written by their own chain before
// use, so only real nets can be frontier.
//
// Mask-free buffer chains are copy-propagated away instead of emitted:
// on a fanout-branched netlist most "gates" are branch buffers whose
// sweep evaluation is a plain copy, so eliding them and rewriting later
// operands to read the source directly shrinks the program that runs
// every dense cycle. A buffer survives only if something outside the
// program reads its slot by net id: an injection mask applies to it, it
// is a primary output (the detection scan compares swVals[out]), or it
// feeds a flip-flop D pin (the sweep-mode Clock reads swVals[d]). The
// event path is untouched — it evaluates the full compiled program,
// where the buffers still exist.
func (e *EventSim) buildSweep() {
	c := e.c
	e.swCode = e.swCode[:0]
	e.swDst = e.swDst[:0]
	e.swA0 = e.swA0[:0]
	e.swA1 = e.swA1[:0]
	e.swA2 = e.swA2[:0]
	e.swMaskPC = e.swMaskPC[:0]
	e.bound = e.bound[:0]
	resolve := func(op int32) int32 {
		if int(op) < c.numNets && e.aliasEpoch[op] == e.epoch {
			return e.aliasTo[op]
		}
		return op
	}
	for _, id := range e.rWork {
		ps, pe := c.pcStart[id], c.pcEnd[id]
		masked := e.sa0[id]|e.sa1[id] != 0
		if !masked && pe-ps == 1 && c.code[ps] == opBuf &&
			c.outIndex[id] < 0 && !c.dPin[id] {
			// rWork is topological, so the source's own alias (if any)
			// is already final — chains of buffers flatten one hop at a
			// time and every emitted operand resolves in one lookup.
			e.aliasTo[id] = resolve(c.a0[ps])
			e.aliasEpoch[id] = e.epoch
			continue
		}
		if masked {
			// The chain's final instruction (the one driving the real
			// net) must apply this site's masks; everything between two
			// such positions runs mask-free.
			e.swMaskPC = append(e.swMaskPC, int32(len(e.swCode))+pe-ps-1)
		}
		for pc := ps; pc < pe; pc++ {
			a0, a1, a2 := resolve(c.a0[pc]), c.a1[pc], c.a2[pc]
			e.noteFrontier(a0)
			switch c.code[pc] {
			case opBuf, opNot:
			case opMux:
				a1, a2 = resolve(a1), resolve(a2)
				e.noteFrontier(a1)
				e.noteFrontier(a2)
			default:
				a1 = resolve(a1)
				e.noteFrontier(a1)
			}
			e.swCode = append(e.swCode, c.code[pc])
			e.swDst = append(e.swDst, c.dst[pc])
			e.swA0 = append(e.swA0, a0)
			e.swA1 = append(e.swA1, a1)
			e.swA2 = append(e.swA2, a2)
		}
	}
	for _, di := range e.rDFF {
		e.noteFrontier(int32(c.n.gates[c.n.dffs[di]].In[0]))
	}
}

// noteFrontier adds a sweep-program operand to the read frontier unless
// the sweep computes it (in-cone combinational net), seeds it (in-cone
// flip-flop Q), or it is a chain temporary.
func (e *EventSim) noteFrontier(op int32) {
	if int(op) >= e.c.numNets {
		return
	}
	if e.combEpoch[op] == e.epoch || e.bEpoch[op] == e.epoch {
		return
	}
	if e.c.dffIndex[op] >= 0 && e.rEpoch[op] == e.epoch {
		return
	}
	e.bEpoch[op] = e.epoch
	e.bound = append(e.bound, NetID(op))
}

// markFan schedules every combinational reader of net id for
// evaluation in the current cycle's settle. No membership or dedup test
// is needed: divergence is confined to the batch cone (readers of a
// cone net are in the cone by closure), and the bitmap OR is
// idempotent.
func (e *EventSim) markFan(id NetID) {
	c := e.c
	for _, p := range c.foPosList[c.foPosOff[id]:c.foPosOff[id+1]] {
		e.bm[p>>6] |= 1 << (uint(p) & 63)
	}
}

// operand reconstructs the absolute 64-lane word of one instruction
// operand at the cycle being settled: good-trace value (from the
// hoisted row) XOR current divergence for real nets, the chain-local
// scratch for temporaries. The divergence merge is branchless — the
// stamp comparison becomes an all-ones/zero mask — because the branch
// is data-dependent and mispredicts heavily in half-diverged regions.
func (e *EventSim) operand(idx int32) uint64 {
	if int(idx) >= e.c.numNets {
		return e.tmpAbs[idx]
	}
	v := -(e.row[idx>>6] >> (uint(idx) & 63) & 1)
	x := e.divStamp[idx] ^ e.cyc
	live := ((x | -x) >> 63) - 1 // all-ones iff divStamp == cyc
	return v ^ (e.diff[idx] & live)
}

// evalNet executes net id's instruction chain against reconstructed
// absolute operands and returns the net's absolute word with its
// injection masks applied.
func (e *EventSim) evalNet(id NetID) uint64 {
	c := e.c
	code, dst, a0, a1, a2 := c.code, c.dst, c.a0, c.a1, c.a2
	var v uint64
	for pc := c.pcStart[id]; pc < c.pcEnd[id]; pc++ {
		switch code[pc] {
		case opBuf:
			v = e.operand(a0[pc])
		case opNot:
			v = ^e.operand(a0[pc])
		case opAnd2:
			v = e.operand(a0[pc]) & e.operand(a1[pc])
		case opOr2:
			v = e.operand(a0[pc]) | e.operand(a1[pc])
		case opNand2:
			v = ^(e.operand(a0[pc]) & e.operand(a1[pc]))
		case opNor2:
			v = ^(e.operand(a0[pc]) | e.operand(a1[pc]))
		case opXor2:
			v = e.operand(a0[pc]) ^ e.operand(a1[pc])
		case opXnor2:
			v = ^(e.operand(a0[pc]) ^ e.operand(a1[pc]))
		case opMux:
			sel := e.operand(a0[pc])
			v = (e.operand(a1[pc]) &^ sel) | (e.operand(a2[pc]) & sel)
		}
		if d := dst[pc]; int(d) >= c.numNets {
			e.tmpAbs[d] = v
		}
	}
	return (v &^ e.sa0[id]) | e.sa1[id]
}

// goodWord broadcasts net id's fault-free value from the hoisted row.
func (e *EventSim) goodWord(id NetID) uint64 {
	return -(e.row[id>>6] >> (uint(id) & 63) & 1)
}

// Cycle settles segment-relative cycle rc and returns the OR-ed
// per-output lane-difference mask against the fault-free machine (bit 0
// always clear). Primary-input values come from the good trace — the
// good machine saw the same vectors — so no vector is needed; only the
// divergence sources (injected sites, diverged flip-flops) and their
// live fanout are evaluated. When divergence is dense the cycle runs
// the compacted cone sweep instead (see sweepCycle); the two modes
// interoperate freely because the only cross-cycle state is qDiff.
// Call Clock afterwards to advance state.
//
// The logic.eventsim.diff chaos point (internal/chaos) can corrupt the
// returned mask — one seeded-random lane-bit flip — to model a silently
// wrong compiled-kernel batch; the engine's shadow cross-check exists
// to catch exactly this class of failure.
func (e *EventSim) Cycle(rc int) uint64 {
	det := e.cycle(rc)
	if f := chaos.Maybe("logic.eventsim.diff"); f != nil {
		det = f.CorruptWord(det) &^ 1
	}
	return det
}

func (e *EventSim) cycle(rc int) uint64 {
	c, n := e.c, e.c.n
	e.cyc++
	e.row = e.trace.bits[rc*e.trace.words : (rc+1)*e.trace.words]
	if e.pendingShrink {
		e.shrinkCone()
	}

	if e.sweepNext && e.sweepStreak < sweepRetryInterval {
		e.sweepStreak++
		e.swept = true
		det := e.sweepCycle()
		e.evals += int64(len(e.swCode))
		e.evalsSaved += int64(len(c.code) - len(e.swCode))
		return det
	}
	e.sweepStreak = 0
	e.swept = false

	// Seed divergence sources. Injected non-DFF sites: the masks force
	// lanes away from the good value (a site that is also a scheduled
	// cone gate re-evaluates later with the same masks, reproducing or
	// refining this difference — never losing the forced lanes).
	for _, id := range e.sites {
		if n.gates[id].Kind == GateDFF {
			continue // carried by qDiff below
		}
		good := e.goodWord(id)
		d := ((good &^ e.sa0[id]) | e.sa1[id]) ^ good
		if d != 0 {
			e.diff[id] = d
			e.divStamp[id] = e.cyc
			e.markFan(id)
		}
	}
	for k, di := range e.rDFF {
		if d := e.qDiff[k]; d != 0 {
			q := n.dffs[di]
			e.diff[q] = d
			e.divStamp[q] = e.cyc
			e.markFan(q)
		}
	}

	// Topological settle of the scheduled gates by bitmap scan. The
	// word is drained lowest-bit-first, re-reading it every iteration:
	// an evaluation can mark a reader at a position below other pending
	// bits of the same word, and taking the minimum pending position
	// keeps the scan strictly topological (a mark is always above its
	// driver's position, so nothing ever lands behind the scan point and
	// every gate is evaluated exactly once per cycle). Divergence that
	// dies (recomputed value equals the good machine's) stops
	// propagating.
	executed := 0
	bm := e.bm
	order := n.order
	for wi := 0; wi < len(bm); wi++ {
		base := int32(wi << 6)
		for bm[wi] != 0 {
			b := bits.TrailingZeros64(bm[wi])
			bm[wi] &^= 1 << uint(b)
			id := order[base+int32(b)]
			abs := e.evalNet(id)
			executed += int(c.pcEnd[id] - c.pcStart[id])
			if d := abs ^ e.goodWord(id); d != 0 {
				e.diff[id] = d
				e.divStamp[id] = e.cyc
				e.markFan(id)
			} else {
				e.divStamp[id] = 0
			}
		}
		if executed > e.budget {
			// Too dense for event scheduling to pay: abandon the pass and
			// settle with the sweep, which ignores the partial divStamp
			// state (it reads only qDiff and the trace), then stay in
			// sweep mode. The wasted event work is capped by Threshold.
			for i := wi + 1; i < len(bm); i++ {
				bm[i] = 0
			}
			e.swept = true
			e.sweepNext = true
			det := e.sweepCycle()
			executed += len(e.swCode)
			e.evals += int64(executed)
			e.evalsSaved += int64(len(c.code) - executed)
			return det
		}
	}
	e.sweepNext = false
	e.evals += int64(executed)
	e.evalsSaved += int64(len(c.code) - executed)

	var det uint64
	for _, oi := range e.rOut {
		o := n.outputs[oi]
		if e.divStamp[o] == e.cyc {
			det |= e.diff[o]
		}
	}
	return det &^ 1
}

// sweepCycle settles the current cycle by evaluating the whole cone
// over absolute values: seed the read frontier and the in-cone
// flip-flop Qs from the good row (plus divergence and injection masks),
// then run the compacted program linearly — the same cost profile as
// the full-sweep CompiledSim, but confined to the cone. Dense cycles
// pay ~4ns per instruction here versus ~20ns on the event path.
func (e *EventSim) sweepCycle() uint64 {
	n := e.c.n
	vals := e.swVals
	for _, b := range e.bound {
		// Masks are zero except on injected sites (covers maskable
		// frontier sites: primary inputs and constants).
		vals[b] = (e.goodWord(b) &^ e.sa0[b]) | e.sa1[b]
	}
	for k, di := range e.rDFF {
		q := n.dffs[di]
		vals[q] = e.goodWord(q) ^ e.qDiff[k]
	}
	code, dst, a0, a1, a2 := e.swCode, e.swDst, e.swA0, e.swA1, e.swA2
	prev := int32(0)
	for _, mp := range e.swMaskPC {
		runProgram(code, dst, a0, a1, a2, vals, prev, mp+1)
		d := dst[mp]
		vals[d] = (vals[d] &^ e.sa0[d]) | e.sa1[d]
		prev = mp + 1
	}
	runProgram(code, dst, a0, a1, a2, vals, prev, int32(len(code)))
	var det uint64
	for _, oi := range e.rOut {
		o := n.outputs[oi]
		det |= vals[o] ^ e.goodWord(o)
	}
	return det &^ 1
}

// Clock advances every in-cone flip-flop's divergence (applying Q-site
// injection masks). The good machine's next Q value is its current D
// value, so the new divergence needs no lookahead. After an event-mode
// settle a single pass is safe even for direct Q→D chains: reading a Q
// operand consults diff/divStamp (seeded at the top of Cycle), which
// this loop never writes. After a sweep-mode settle the D values come
// from swVals, which the clock does not modify either. Out-of-cone
// flip-flops cannot diverge and are left to the trace.
func (e *EventSim) Clock(rc int) {
	n := e.c.n
	if e.swept {
		for k, di := range e.rDFF {
			q := n.dffs[di]
			d := n.gates[q].In[0]
			goodD := e.goodWord(d)
			e.qDiff[k] = (((e.swVals[d] &^ e.sa0[q]) | e.sa1[q]) ^ goodD) &^ 1
		}
		return
	}
	for k, di := range e.rDFF {
		q := n.dffs[di]
		d := n.gates[q].In[0]
		if e.qDiff[k] == 0 && e.divStamp[d] != e.cyc && e.sa0[q]|e.sa1[q] == 0 {
			continue // quiescent flip-flop stays at the good value
		}
		goodD := e.goodWord(d)
		absD := goodD
		if e.divStamp[d] == e.cyc {
			absD ^= e.diff[d]
		}
		e.qDiff[k] = (((absD &^ e.sa0[q]) | e.sa1[q]) ^ goodD) &^ 1
	}
}

// RetireLane removes lane's fault from the batch: its injection mask
// bit and any state divergence it accumulated are cleared, so its
// divergence stops being simulated from the next cycle on. The fault
// simulator calls this once a fault reaches its detection quota —
// unlike the full-sweep kernels, whose cost is fixed per batch, the
// event kernel's cost shrinks with every retired fault. Surviving lanes
// are unaffected (lanes never interact).
func (e *EventSim) RetireLane(lane uint) {
	site := e.laneSite[lane-1]
	bit := uint64(1) << lane
	e.sa0[site] &^= bit
	e.sa1[site] &^= bit
	for k := range e.qDiff {
		e.qDiff[k] &^= bit
	}
	if e.retired&bit == 0 {
		e.retired |= bit
		e.liveCount--
		if e.liveCount <= e.shrinkAt {
			e.pendingShrink = true
		}
	}
}

// shrinkCone rebuilds the cone from the still-live lanes' sites. The
// live cone is a subset of the current one (closure is monotonic in the
// site set), so every list is rebuilt by filtering — rWork keeps its
// topological order without re-sorting, and rDFF compacts qDiff in
// step. Dropped flip-flops are provably quiescent: a live lane's
// divergence stays inside its own site's closure, and RetireLane
// cleared the retired lanes' bits.
func (e *EventSim) shrinkCone() {
	c, n := e.c, e.c.n
	e.pendingShrink = false
	e.epoch++
	e.rAll = e.rAll[:0]
	e.sites = e.sites[:0]
	for i, s := range e.laneSite {
		if e.retired>>(uint(i)+1)&1 == 0 && e.rEpoch[s] != e.epoch {
			e.rEpoch[s] = e.epoch
			e.rAll = append(e.rAll, s)
			e.sites = append(e.sites, s)
		}
	}
	for qi := 0; qi < len(e.rAll); qi++ {
		for _, r := range c.readers(e.rAll[qi]) {
			if e.rEpoch[r] != e.epoch {
				e.rEpoch[r] = e.epoch
				e.rAll = append(e.rAll, r)
			}
		}
	}
	nw := 0
	for _, id := range e.rWork {
		if e.rEpoch[id] == e.epoch {
			e.combEpoch[id] = e.epoch
			e.rWork[nw] = id
			nw++
		}
	}
	e.rWork = e.rWork[:nw]
	nd := 0
	for k, di := range e.rDFF {
		if e.rEpoch[n.dffs[di]] == e.epoch {
			e.rDFF[nd] = di
			e.qDiff[nd] = e.qDiff[k]
			nd++
		}
	}
	e.rDFF = e.rDFF[:nd]
	e.qDiff = e.qDiff[:nd]
	no := 0
	for _, oi := range e.rOut {
		if e.rEpoch[n.outputs[oi]] == e.epoch {
			e.rOut[no] = oi
			no++
		}
	}
	e.rOut = e.rOut[:no]
	e.buildSweep()
	e.budget = int(e.Threshold * float64(len(e.swCode)))
	if e.budget < 16 {
		e.budget = 16
	}
	e.shrinkAt = e.liveCount / 2
	// Divergence just dropped with the retirements, so retry event
	// scheduling immediately rather than waiting out the sweep streak.
	e.sweepStreak = sweepRetryInterval
}

// LaneStateInto writes one lane's packed DFF state to dst: the
// fault-free next state nextGood with the lane's in-cone flip-flop
// divergence bits flipped (out-of-cone flip-flops never diverge).
func (e *EventSim) LaneStateInto(lane uint, nextGood, dst []uint64) {
	copy(dst, nextGood)
	for k, di := range e.rDFF {
		if e.qDiff[k]>>lane&1 == 1 {
			dst[di>>6] ^= 1 << (uint(di) & 63)
		}
	}
}

// ActiveFrac reports the batch cone's share of the combinational frame
// (instruction-weighted), for diagnostics.
func (e *EventSim) ActiveFrac() float64 {
	if len(e.c.code) == 0 {
		return 0
	}
	instrs := 0
	for _, id := range e.rWork {
		instrs += int(e.c.pcEnd[id] - e.c.pcStart[id])
	}
	return float64(instrs) / float64(len(e.c.code))
}

// EndBatch removes the batch's injection masks and returns and resets
// the evaluation counters: instructions executed, and instructions
// saved versus a full-frame sweep per cycle (negative only if fallback
// re-evaluation overshot it).
func (e *EventSim) EndBatch() (evals, saved int64) {
	for _, id := range e.injected {
		e.sa0[id] = 0
		e.sa1[id] = 0
	}
	e.injected = e.injected[:0]
	evals, saved = e.evals, e.evalsSaved
	e.evals, e.evalsSaved = 0, 0
	return evals, saved
}

// sortByOrderPos sorts nets by their compiled chain position with shell
// sort (Ciura gaps) — the lists are per-batch scratch, and this avoids
// sort.Slice's closure allocation in the batch setup path.
func sortByOrderPos(nets []NetID, pos []int32) {
	gaps := []int{1, 4, 10, 23, 57, 132, 301, 701, 1577}
	for i := len(gaps) - 1; i >= 0; i-- {
		gap := gaps[i]
		if gap >= len(nets) {
			continue
		}
		for j := gap; j < len(nets); j++ {
			v := nets[j]
			k := j
			for k >= gap && pos[nets[k-gap]] > pos[v] {
				nets[k] = nets[k-gap]
				k -= gap
			}
			nets[k] = v
		}
	}
}
