package logic

import "fmt"

// Bus is an ordered group of nets representing a multi-bit signal,
// least-significant bit first (Bus[0] is bit 0).
type Bus []NetID

// Width returns the number of bits.
func (bus Bus) Width() int { return len(bus) }

// Slice returns bits [lo, hi) as a new Bus.
func (bus Bus) Slice(lo, hi int) Bus { return bus[lo:hi:hi] }

// MSB returns the most-significant bit.
func (bus Bus) MSB() NetID { return bus[len(bus)-1] }

// InputBus declares width named primary inputs name[0..width-1],
// least-significant first.
func (b *Builder) InputBus(name string, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// ConstBus returns a Bus of constant nets encoding value (two's
// complement truncated to width).
func (b *Builder) ConstBus(value uint64, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.Const(value>>uint(i)&1 == 1)
	}
	return bus
}

// NameBus assigns names name[i] to each bit of the bus.
func (b *Builder) NameBus(bus Bus, name string) {
	for i, id := range bus {
		b.Name(id, fmt.Sprintf("%s[%d]", name, i))
	}
}

// MarkOutputBus declares each bit of bus as a primary output named
// name[i] and returns the alias nets.
func (b *Builder) MarkOutputBus(bus Bus, name string) Bus {
	out := make(Bus, len(bus))
	for i, id := range bus {
		out[i] = b.MarkOutput(id, fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

// DFFBus inserts a register of DFFs over the bus, named name[i].
func (b *Builder) DFFBus(d Bus, name string) Bus {
	q := make(Bus, len(d))
	for i, id := range d {
		q[i] = b.DFF(id, fmt.Sprintf("%s[%d]", name, i))
	}
	return q
}

// Mux2Bus selects a (sel=0) or bb (sel=1) bit-wise. Widths must match.
func (b *Builder) Mux2Bus(sel NetID, a, bb Bus) Bus {
	if len(a) != len(bb) {
		b.fail("Mux2Bus: width mismatch %d vs %d", len(a), len(bb))
		return nil
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = b.Mux2(sel, a[i], bb[i])
	}
	return out
}

// SignExtend widens bus to width by replicating the MSB through buffers.
func (b *Builder) SignExtend(bus Bus, width int) Bus {
	if width < len(bus) {
		b.fail("SignExtend: target width %d narrower than %d", width, len(bus))
		return nil
	}
	out := make(Bus, width)
	copy(out, bus)
	for i := len(bus); i < width; i++ {
		out[i] = bus.MSB()
	}
	return out
}

// ZeroExtend widens bus to width with constant-zero high bits.
func (b *Builder) ZeroExtend(bus Bus, width int) Bus {
	if width < len(bus) {
		b.fail("ZeroExtend: target width %d narrower than %d", width, len(bus))
		return nil
	}
	out := make(Bus, width)
	copy(out, bus)
	for i := len(bus); i < width; i++ {
		out[i] = b.Const(false)
	}
	return out
}
