package logic

import "testing"

func TestLiveNets(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	used := b.And(x, y)
	dangling := b.Or(x, y) // no consumer
	b.MarkOutput(used, "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live := n.LiveNets()
	if !live[used] || !live[x] || !live[y] {
		t.Fatal("live cone mis-marked")
	}
	if live[dangling] {
		t.Fatal("dangling gate marked live")
	}
}

func TestLiveNetsCrossesDFFs(t *testing.T) {
	// in -> comb -> DFF -> out: the comb logic upstream of the DFF is
	// live because liveness crosses the D pin.
	b := NewBuilder()
	in := b.Input("in")
	inv := b.Not(in)
	q := b.DFF(inv, "q")
	b.MarkOutput(q, "out")
	// A dead DFF: fed and never read.
	deadD := b.And(in, in)
	b.DFF(deadD, "deadq")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live := n.LiveNets()
	if !live[inv] || !live[q] {
		t.Fatal("upstream of live DFF must be live")
	}
	if live[deadD] {
		t.Fatal("cone of dead DFF marked live")
	}
	if live[n.Lookup("deadq")] {
		t.Fatal("dead DFF marked live")
	}
}

func TestExtendHelpers(t *testing.T) {
	b := NewBuilder()
	bus := b.InputBus("v", 4)
	se := b.SignExtend(bus, 8)
	ze := b.ZeroExtend(bus, 8)
	b.MarkOutputBus(se, "se")
	b.MarkOutputBus(ze, "ze")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(n)
	for v := 0; v < 16; v++ {
		s.SetInputBus(bus, uint64(v))
		s.Settle()
		wantSE := uint64(v)
		if v >= 8 {
			wantSE |= 0xF0
		}
		if got := s.BusValue(se); got != wantSE {
			t.Fatalf("SignExtend(%d) = %x want %x", v, got, wantSE)
		}
		if got := s.BusValue(ze); got != uint64(v) {
			t.Fatalf("ZeroExtend(%d) = %x", v, got)
		}
	}
	if got := bus.Slice(1, 3).Width(); got != 2 {
		t.Fatalf("Slice width %d", got)
	}
	if bus.MSB() != bus[3] {
		t.Fatal("MSB wrong")
	}
}

func TestConstBus(t *testing.T) {
	b := NewBuilder()
	cb := b.ConstBus(0b1010, 4)
	b.MarkOutputBus(cb, "c")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(n)
	s.Settle()
	if got := s.BusValue(cb); got != 0b1010 {
		t.Fatalf("ConstBus = %b", got)
	}
}

func TestDeferredBufUnresolvedFails(t *testing.T) {
	b := NewBuilder()
	d := b.DeferredBuf()
	b.MarkOutput(d, "out")
	if _, err := b.Build(BuildOptions{}); err == nil {
		t.Fatal("unresolved deferred buffer must fail Build")
	}

	b2 := NewBuilder()
	x := b2.Input("x")
	b2.ResolveBuf(x, x) // not a deferred buffer
	if _, err := b2.Build(BuildOptions{}); err == nil {
		t.Fatal("ResolveBuf on non-deferred net must fail")
	}
}

func TestNameCollisionAndAlias(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Not(x)
	b.Name(y, "inv")
	b.MarkOutput(y, "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Lookup("inv") != y {
		t.Fatal("Name alias lost")
	}
	if n.NameOf(y) != "inv" {
		t.Fatalf("NameOf = %q", n.NameOf(y))
	}
}
