package logic

import "fmt"

// Simulator evaluates a Netlist one clock cycle at a time with scalar
// (single-machine) two-valued logic. It is the reference evaluator the
// word-parallel fault simulator is validated against.
type Simulator struct {
	n    *Netlist
	vals []bool // current value of every net
	next []bool // pending DFF next-state (indexed by position in n.dffs)

	// Single-fault injection (scalar reference for the fault simulator).
	faultNet NetID
	faultSA1 bool
}

// NewSimulator returns a Simulator with all state initialized to 0.
func NewSimulator(n *Netlist) *Simulator {
	s := &Simulator{
		n:        n,
		vals:     make([]bool, n.NumNets()),
		next:     make([]bool, len(n.dffs)),
		faultNet: InvalidNet,
	}
	s.Reset()
	return s
}

// InjectFault forces net id permanently stuck at the given value until
// ClearFault. Only one fault is supported (single stuck-at model).
func (s *Simulator) InjectFault(id NetID, sa1 bool) {
	s.faultNet = id
	s.faultSA1 = sa1
}

// ClearFault removes the injected fault.
func (s *Simulator) ClearFault() { s.faultNet = InvalidNet }

func (s *Simulator) applyFault(id NetID) {
	if id == s.faultNet {
		s.vals[id] = s.faultSA1
	}
}

// Reset clears all nets and flip-flop state to 0.
func (s *Simulator) Reset() {
	for i := range s.vals {
		s.vals[i] = false
	}
	for i := range s.next {
		s.next[i] = false
	}
	// Constants must survive reset.
	for i := range s.n.gates {
		if s.n.gates[i].Kind == GateConst1 {
			s.vals[i] = true
		}
	}
}

// SetInput drives a primary input for the next Step.
func (s *Simulator) SetInput(id NetID, v bool) {
	if s.n.gates[id].Kind != GateInput {
		panic(fmt.Sprintf("logic: SetInput on non-input net %d (%s)", id, s.n.NameOf(id)))
	}
	s.vals[id] = v
	s.applyFault(id)
}

// SetInputBus drives a bus of primary inputs from the low bits of v.
func (s *Simulator) SetInputBus(bus Bus, v uint64) {
	for i, id := range bus {
		s.SetInput(id, v>>uint(i)&1 == 1)
	}
}

// Value returns the settled value of any net after the last Step (or the
// driven value for inputs before a Step).
func (s *Simulator) Value(id NetID) bool { return s.vals[id] }

// BusValue packs a bus into a uint64, bit i from bus[i].
func (s *Simulator) BusValue(bus Bus) uint64 {
	var v uint64
	for i, id := range bus {
		if s.vals[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Step settles the combinational frame for the currently driven inputs,
// then clocks every DFF. Primary outputs and all internal nets reflect
// pre-edge values after Step returns.
func (s *Simulator) Step() {
	s.Settle()
	s.ClockAfterSettle()
}

// ClockAfterSettle clocks every DFF using the already-settled frame
// (the strobe-between-settle-and-edge pattern the fault simulator and
// the bridge simulator use).
func (s *Simulator) ClockAfterSettle() {
	for i, q := range s.n.dffs {
		s.next[i] = s.vals[s.n.gates[q].In[0]]
	}
	for i, q := range s.n.dffs {
		s.vals[q] = s.next[i]
		s.applyFault(q)
	}
}

// Settle evaluates the combinational frame without clocking state. Use
// it to observe outputs as a pure function of inputs and current state.
func (s *Simulator) Settle() {
	// Constants are set at Reset; inputs via SetInput; DFF Q values carry.
	// A fault sited on a DFF Q or input net must hold before evaluation.
	if s.faultNet != InvalidNet {
		s.applyFault(s.faultNet)
	}
	for _, id := range s.n.order {
		g := &s.n.gates[id]
		s.vals[id] = evalScalar(g, s.vals)
		s.applyFault(id)
	}
}

func evalScalar(g *Gate, vals []bool) bool {
	switch g.Kind {
	case GateBuf:
		return vals[g.In[0]]
	case GateNot:
		return !vals[g.In[0]]
	case GateAnd:
		for _, in := range g.In {
			if !vals[in] {
				return false
			}
		}
		return true
	case GateOr:
		for _, in := range g.In {
			if vals[in] {
				return true
			}
		}
		return false
	case GateNand:
		for _, in := range g.In {
			if !vals[in] {
				return true
			}
		}
		return false
	case GateNor:
		for _, in := range g.In {
			if vals[in] {
				return false
			}
		}
		return true
	case GateXor:
		v := false
		for _, in := range g.In {
			v = v != vals[in]
		}
		return v
	case GateXnor:
		v := true
		for _, in := range g.In {
			v = v != vals[in]
		}
		return v
	case GateMux2:
		if vals[g.In[0]] {
			return vals[g.In[2]]
		}
		return vals[g.In[1]]
	default:
		panic(fmt.Sprintf("logic: evalScalar on %s", g.Kind))
	}
}

// StateSnapshot captures all DFF values for later restore.
func (s *Simulator) StateSnapshot() []bool {
	snap := make([]bool, len(s.n.dffs))
	for i, q := range s.n.dffs {
		snap[i] = s.vals[q]
	}
	return snap
}

// RestoreState loads a snapshot captured by StateSnapshot.
func (s *Simulator) RestoreState(snap []bool) {
	if len(snap) != len(s.n.dffs) {
		panic("logic: RestoreState snapshot size mismatch")
	}
	for i, q := range s.n.dffs {
		s.vals[q] = snap[i]
	}
}
