// Package logic provides a technology-independent gate-level netlist
// representation with scalar and 64-lane word-parallel simulation.
//
// The netlist is the substrate every gate-level experiment in this
// repository runs on: structural "synthesis" generators (package synth)
// emit logic gates through a Builder, the stuck-at fault simulator
// (package fault) replays vectors on the levelized result, and ATPG
// (package atpg) searches it with a five-valued calculus.
//
// A Netlist is sequential: DFF gates hold one bit of state each and the
// remaining gates form a combinational frame that is levelized once at
// build time. One simulation Step applies primary inputs, settles the
// combinational frame, samples primary outputs and then clocks every DFF.
package logic

import "fmt"

// NetID identifies a single-bit net within one Netlist. IDs are dense,
// starting at 0, in creation order (which is also a valid topological
// order for combinational nets after levelization).
type NetID int32

// InvalidNet is returned by lookups that fail.
const InvalidNet NetID = -1

// GateKind enumerates the primitive cell library. The library is kept
// deliberately small: every arithmetic block in package synth maps onto
// these primitives so the stuck-at fault universe is uniform.
type GateKind uint8

// Primitive gate kinds.
const (
	// GateConst0 and GateConst1 drive constant values and have no inputs.
	GateConst0 GateKind = iota
	GateConst1
	// GateInput marks a primary input; it has no inputs and its output is
	// set by the simulator each cycle.
	GateInput
	GateBuf
	GateNot
	GateAnd
	GateOr
	GateNand
	GateNor
	GateXor
	GateXnor
	// GateMux2 selects In[1] when In[0] is 0 and In[2] when In[0] is 1.
	GateMux2
	// GateDFF is a rising-edge D flip-flop: In[0] is D, the output net is Q.
	// State is updated at the end of each simulation Step.
	GateDFF
)

var gateKindNames = [...]string{
	GateConst0: "CONST0",
	GateConst1: "CONST1",
	GateInput:  "INPUT",
	GateBuf:    "BUF",
	GateNot:    "NOT",
	GateAnd:    "AND",
	GateOr:     "OR",
	GateNand:   "NAND",
	GateNor:    "NOR",
	GateXor:    "XOR",
	GateXnor:   "XNOR",
	GateMux2:   "MUX2",
	GateDFF:    "DFF",
}

// String returns the conventional cell name for the gate kind.
func (k GateKind) String() string {
	if int(k) < len(gateKindNames) {
		return gateKindNames[k]
	}
	return fmt.Sprintf("GateKind(%d)", uint8(k))
}

// arity reports the number of inputs the kind requires, or -1 for
// variadic kinds (And/Or/Nand/Nor/Xor/Xnor accept 2+ inputs).
func (k GateKind) arity() int {
	switch k {
	case GateConst0, GateConst1, GateInput:
		return 0
	case GateBuf, GateNot, GateDFF:
		return 1
	case GateMux2:
		return 3
	default:
		return -1
	}
}

// Gate is one primitive cell instance. Every gate drives exactly one net
// (Out); multi-output structures are expressed as multiple gates.
type Gate struct {
	Kind GateKind
	In   []NetID
	Out  NetID
}

// Netlist is an immutable, levelized gate-level circuit produced by
// Builder.Build. All exported slices must be treated as read-only.
type Netlist struct {
	gates []Gate // indexed by NetID of the driven net
	names []string

	inputs  []NetID // primary inputs in declaration order
	outputs []NetID // primary outputs in declaration order
	dffs    []NetID // Q nets of all flip-flops in declaration order

	// order holds non-input, non-DFF, non-const gate output nets in
	// topological order of the combinational frame. DFF Q nets and
	// primary inputs act as frame sources.
	order []NetID

	// fanout[n] lists the nets whose driving gates read net n.
	fanout [][]NetID

	byName map[string]NetID

	// regions maps a hierarchical scope name to the nets created inside
	// that scope, supporting per-component fault accounting.
	regions map[string][]NetID
	// regionOrder preserves scope creation order for deterministic output.
	regionOrder []string
}

// NumNets returns the total number of nets (one per gate).
func (n *Netlist) NumNets() int { return len(n.gates) }

// SizeBytes estimates the netlist's resident size — the gate table
// with its fan-in lists, the fanout lists, and the fixed-width net
// slices — for cache budgeting (the engine's design cache evicts by
// bytes, like the artifact store). Names and region maps are ignored:
// they are a small fraction and an estimate is all budgeting needs.
func (n *Netlist) SizeBytes() int64 {
	s := int64(len(n.gates))*32 + int64(len(n.names))*16
	for i := range n.gates {
		s += int64(len(n.gates[i].In)) * 4
	}
	for _, fo := range n.fanout {
		s += 24 + int64(len(fo))*4
	}
	s += int64(len(n.inputs)+len(n.outputs)+len(n.dffs)+len(n.order)) * 4
	return s
}

// NumGates returns the number of logic gates, excluding primary inputs
// and constants (DFFs are counted).
func (n *Netlist) NumGates() int {
	c := 0
	for i := range n.gates {
		switch n.gates[i].Kind {
		case GateInput, GateConst0, GateConst1:
		default:
			c++
		}
	}
	return c
}

// Gate returns the gate driving net id.
func (n *Netlist) Gate(id NetID) Gate { return n.gates[id] }

// NameOf returns the name of net id ("" if unnamed).
func (n *Netlist) NameOf(id NetID) string { return n.names[id] }

// Lookup resolves a net by name, returning InvalidNet if absent.
func (n *Netlist) Lookup(name string) NetID {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return InvalidNet
}

// Inputs returns the primary input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets in declaration order.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// DFFs returns the Q nets of all flip-flops in declaration order.
func (n *Netlist) DFFs() []NetID { return n.dffs }

// CombOrder returns the combinational frame in topological order.
func (n *Netlist) CombOrder() []NetID { return n.order }

// Fanout returns the nets driven by gates that read net id.
func (n *Netlist) Fanout(id NetID) []NetID { return n.fanout[id] }

// Regions returns the hierarchical scope names in creation order.
func (n *Netlist) Regions() []string { return n.regionOrder }

// RegionNets returns the nets created inside the named scope (including
// nested scopes), or nil if the scope does not exist.
func (n *Netlist) RegionNets(name string) []NetID { return n.regions[name] }

// Stats summarises the netlist for reports.
type Stats struct {
	Nets    int
	Gates   int
	Inputs  int
	Outputs int
	DFFs    int
	Levels  int
}

// Stats computes summary statistics.
func (n *Netlist) Stats() Stats {
	level := make([]int32, len(n.gates))
	maxLevel := int32(0)
	for _, id := range n.order {
		g := &n.gates[id]
		lv := int32(0)
		for _, in := range g.In {
			if level[in]+1 > lv {
				lv = level[in] + 1
			}
		}
		level[id] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	return Stats{
		Nets:    len(n.gates),
		Gates:   n.NumGates(),
		Inputs:  len(n.inputs),
		Outputs: len(n.outputs),
		DFFs:    len(n.dffs),
		Levels:  int(maxLevel),
	}
}
