package logic_test

import (
	"fmt"

	"repro/internal/logic"
)

// Example builds a two-bit equality comparator and simulates it.
func Example() {
	b := logic.NewBuilder()
	a := b.InputBus("a", 2)
	x := b.InputBus("x", 2)
	eq := b.And(b.Xnor(a[0], x[0]), b.Xnor(a[1], x[1]))
	out := b.MarkOutput(eq, "eq")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		panic(err)
	}
	s := logic.NewSimulator(n)
	for _, pair := range [][2]uint64{{1, 1}, {2, 3}} {
		s.SetInputBus(a, pair[0])
		s.SetInputBus(x, pair[1])
		s.Settle()
		fmt.Printf("%d==%d: %v\n", pair[0], pair[1], s.Value(out))
	}
	// Output:
	// 1==1: true
	// 2==3: false
}

// ExampleWordSim shows fault injection into one of the 64 parallel
// machine lanes — the primitive the stuck-at fault simulator is built
// on.
func ExampleWordSim() {
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	out := b.MarkOutput(b.And(x, y), "out")
	n, _ := b.Build(logic.BuildOptions{})

	w := logic.NewWordSim(n)
	w.Inject(out, true, 5) // stuck-at-1 in lane 5
	w.SetInput(x, true)
	w.SetInput(y, false) // good machine: AND = 0
	w.Settle()
	fmt.Printf("lanes differing from the good machine: %#x\n", w.OutputDiff())
	// Output:
	// lanes differing from the good machine: 0x20
}
