package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// exprNode is a tiny random expression-circuit generator used to
// property-test the simulators against direct recursive evaluation.
type exprNode struct {
	op       GateKind // And, Or, Xor, Not, Mux2, or GateInput for a leaf
	children []*exprNode
	input    int // leaf index into the input vector
}

func randExpr(rng *rand.Rand, depth, numInputs int) *exprNode {
	if depth == 0 || rng.Intn(4) == 0 {
		return &exprNode{op: GateInput, input: rng.Intn(numInputs)}
	}
	switch rng.Intn(5) {
	case 0:
		return &exprNode{op: GateNot, children: []*exprNode{randExpr(rng, depth-1, numInputs)}}
	case 1:
		return &exprNode{op: GateAnd, children: []*exprNode{randExpr(rng, depth-1, numInputs), randExpr(rng, depth-1, numInputs)}}
	case 2:
		return &exprNode{op: GateOr, children: []*exprNode{randExpr(rng, depth-1, numInputs), randExpr(rng, depth-1, numInputs)}}
	case 3:
		return &exprNode{op: GateXor, children: []*exprNode{randExpr(rng, depth-1, numInputs), randExpr(rng, depth-1, numInputs)}}
	default:
		return &exprNode{op: GateMux2, children: []*exprNode{
			randExpr(rng, depth-1, numInputs), randExpr(rng, depth-1, numInputs), randExpr(rng, depth-1, numInputs)}}
	}
}

func (e *exprNode) evalDirect(inputs []bool) bool {
	switch e.op {
	case GateInput:
		return inputs[e.input]
	case GateNot:
		return !e.children[0].evalDirect(inputs)
	case GateAnd:
		return e.children[0].evalDirect(inputs) && e.children[1].evalDirect(inputs)
	case GateOr:
		return e.children[0].evalDirect(inputs) || e.children[1].evalDirect(inputs)
	case GateXor:
		return e.children[0].evalDirect(inputs) != e.children[1].evalDirect(inputs)
	case GateMux2:
		if e.children[0].evalDirect(inputs) {
			return e.children[2].evalDirect(inputs)
		}
		return e.children[1].evalDirect(inputs)
	}
	panic("unreachable")
}

func (e *exprNode) emit(b *Builder, ins Bus) NetID {
	switch e.op {
	case GateInput:
		return ins[e.input]
	case GateNot:
		return b.Not(e.children[0].emit(b, ins))
	case GateAnd:
		return b.And(e.children[0].emit(b, ins), e.children[1].emit(b, ins))
	case GateOr:
		return b.Or(e.children[0].emit(b, ins), e.children[1].emit(b, ins))
	case GateXor:
		return b.Xor(e.children[0].emit(b, ins), e.children[1].emit(b, ins))
	case GateMux2:
		return b.Mux2(e.children[0].emit(b, ins), e.children[1].emit(b, ins), e.children[2].emit(b, ins))
	}
	panic("unreachable")
}

// TestQuickRandomCircuits checks that for random expression circuits and
// random input vectors, the scalar simulator, the word-parallel simulator
// (every lane), and direct recursive evaluation all agree — with and
// without fanout-branch insertion.
func TestQuickRandomCircuits(t *testing.T) {
	const numInputs = 6
	f := func(seed int64, assignment uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		expr := randExpr(rng, 5, numInputs)
		for _, branches := range []bool{false, true} {
			b := NewBuilder()
			ins := b.InputBus("in", numInputs)
			out := b.MarkOutput(expr.emit(b, ins), "out")
			n, err := b.Build(BuildOptions{InsertFanoutBranches: branches})
			if err != nil {
				t.Logf("build failed: %v", err)
				return false
			}
			inputs := make([]bool, numInputs)
			for i := range inputs {
				inputs[i] = assignment>>uint(i)&1 == 1
			}
			want := expr.evalDirect(inputs)
			s := NewSimulator(n)
			s.SetInputBus(ins, uint64(assignment)&((1<<numInputs)-1))
			s.Settle()
			if s.Value(out) != want {
				t.Logf("scalar mismatch: seed=%d assign=%b branches=%v", seed, assignment, branches)
				return false
			}
			w := NewWordSim(n)
			w.SetInputBus(ins, uint64(assignment)&((1<<numInputs)-1))
			w.Settle()
			word := w.Word(out)
			wantWord := uint64(0)
			if want {
				wantWord = ^uint64(0)
			}
			if word != wantWord {
				t.Logf("word mismatch: seed=%d assign=%b branches=%v word=%016x", seed, assignment, branches, word)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInjectionOnlyAffectsLane checks the core fault-sim invariant:
// injecting a stuck-at into lane L never disturbs any other lane.
func TestQuickInjectionOnlyAffectsLane(t *testing.T) {
	const numInputs = 6
	f := func(seed int64, assignment uint8, laneRaw uint8, sa1 bool) bool {
		lane := uint(laneRaw%63) + 1
		rng := rand.New(rand.NewSource(seed))
		expr := randExpr(rng, 5, numInputs)
		b := NewBuilder()
		ins := b.InputBus("in", numInputs)
		out := b.MarkOutput(expr.emit(b, ins), "out")
		n, err := b.Build(BuildOptions{InsertFanoutBranches: true})
		if err != nil {
			return false
		}
		target := NetID(rng.Intn(n.NumNets()))
		w := NewWordSim(n)
		w.Inject(target, sa1, lane)
		w.SetInputBus(ins, uint64(assignment)&((1<<numInputs)-1))
		w.Settle()
		word := w.Word(out)
		// All lanes except `lane` must equal lane 0.
		ref := uint64(0)
		if word&1 == 1 {
			ref = ^uint64(0)
		}
		mismatches := (word ^ ref) &^ (1 << lane)
		return mismatches == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
