package logic

import (
	"math/rand"
	"strings"
	"testing"
)

// benchTestCircuit builds a small sequential circuit that exercises
// every lowering path WriteBench has: n-ary gates, NOT/BUFF, a mux, a
// live constant, DFF feedback and fanout-branch buffers.
func benchTestCircuit(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder()
	a := b.Input("a")
	x := b.Input("x")
	y := b.Input("y")
	s := b.Xor(a, x, y)
	q := b.DFF(b.Mux2(a, s, b.Const(true)), "state")
	carry := b.Or(b.And(a, x), b.And(x, y), b.And(a, y))
	b.MarkOutput(b.Xnor(q, carry), "sum")
	b.MarkOutput(b.Nand(q, b.Not(carry)), "flag")
	n, err := b.Build(BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBenchRoundTrip: netlist → WriteBench → ReadBench must preserve
// function. The reimported netlist's CompiledSim and WordSim outputs
// are bit-identical to each other and to the original netlist's
// WordSim, over random vectors, cycle by cycle.
func TestBenchRoundTrip(t *testing.T) {
	orig := benchTestCircuit(t)
	var sb strings.Builder
	if err := WriteBench(&sb, orig, "roundtrip"); err != nil {
		t.Fatal(err)
	}
	re, err := ReadBench(strings.NewReader(sb.String()), BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatalf("ReadBench of exported netlist: %v\n%s", err, sb.String())
	}
	if got, want := len(re.Inputs()), len(orig.Inputs()); got != want {
		t.Fatalf("reimported %d inputs, want %d", got, want)
	}
	if got, want := len(re.Outputs()), len(orig.Outputs()); got != want {
		t.Fatalf("reimported %d outputs, want %d", got, want)
	}

	wsOrig := NewWordSim(orig)
	wsRe := NewWordSim(re)
	csRe := NewCompiledSim(Compile(re))
	rng := rand.New(rand.NewSource(11))
	for cycle := 0; cycle < 300; cycle++ {
		word := rng.Uint64()
		for i := range orig.Inputs() {
			bit := word>>uint(i)&1 == 1
			wsOrig.SetInput(orig.Inputs()[i], bit)
			wsRe.SetInput(re.Inputs()[i], bit)
			csRe.SetInput(re.Inputs()[i], bit)
		}
		wsOrig.Settle()
		wsRe.Settle()
		csRe.Settle()
		for i := range orig.Outputs() {
			want := wsOrig.Word(orig.Outputs()[i]) & 1
			gotWS := wsRe.Word(re.Outputs()[i]) & 1
			gotCS := csRe.Word(re.Outputs()[i]) & 1
			if gotWS != want || gotCS != want {
				t.Fatalf("cycle %d output %d: original=%d reimported WordSim=%d CompiledSim=%d",
					cycle, i, want, gotWS, gotCS)
			}
		}
		wsOrig.ClockAfterSettle()
		wsRe.ClockAfterSettle()
		csRe.ClockAfterSettle()
	}
}

// TestReadBenchSequentialFeedback: a DFF whose D input is defined after
// the DFF line and closes a feedback loop through the state bits — the
// s27 shape — must parse and simulate.
func TestReadBenchSequentialFeedback(t *testing.T) {
	src := `
# toggle-ish loop
INPUT(en)
OUTPUT(q)
q = DFF(d)
nq = NOT(q)
d = AND(en, nq)
`
	n, err := ReadBench(strings.NewReader(src), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWordSim(n)
	ws.SetInput(n.Inputs()[0], true)
	var seen []uint64
	for i := 0; i < 4; i++ {
		ws.Settle()
		seen = append(seen, ws.Word(n.Outputs()[0])&1)
		ws.ClockAfterSettle()
	}
	want := []uint64{0, 1, 0, 1}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("toggle sequence %v, want %v", seen, want)
		}
	}
}

// TestReadBenchErrors pins the parser's rejection paths.
func TestReadBenchErrors(t *testing.T) {
	for name, src := range map[string]string{
		"comb loop":        "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = BUFF(x)\n",
		"undefined signal": "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n",
		"redefined":        "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUFF(a)\n",
		"input and gate":   "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n",
		"unknown gate":     "INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n",
		"dff arity":        "INPUT(a)\nOUTPUT(x)\nx = DFF(a, a)\n",
		"not arity":        "INPUT(a)\nOUTPUT(x)\nx = NOT(a, a)\n",
		"undefined output": "INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)\n",
		"empty":            "# nothing here\n",
		"malformed":        "INPUT(a)\nwat\n",
	} {
		if _, err := ReadBench(strings.NewReader(src), BuildOptions{}); err == nil {
			t.Errorf("%s: ReadBench accepted invalid input", name)
		}
	}
}

// TestReadBenchInputAsOutput: OUTPUT of a raw INPUT gets an aliased
// port name instead of failing on the duplicate.
func TestReadBenchInputAsOutput(t *testing.T) {
	n, err := ReadBench(strings.NewReader("INPUT(a)\nOUTPUT(a)\nx = NOT(a)\n"), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Outputs()) != 1 {
		t.Fatalf("want 1 output, got %d", len(n.Outputs()))
	}
	if got := n.NameOf(n.Outputs()[0]); got != "a_out" {
		t.Fatalf("aliased output name %q, want a_out", got)
	}
}

// TestExportNamesNoSilentAlias: sanitization maps distinct source names
// onto one identifier ("a.b" and "a:b" both sanitize to "a_b"), and a
// literal source name can occupy the deduplication target itself. Every
// net must still end up with a unique exported name — the old suffixing
// scheme silently aliased the third case.
func TestExportNamesNoSilentAlias(t *testing.T) {
	b := NewBuilder()
	b.Input("a.b") // sanitizes to a_b
	x := b.Input("dummy")
	// The net id of the next input is 4 (const0, const1, a.b, dummy
	// precede it), so "a:b" dedupes to a_b_4 — which this input's name
	// deliberately occupies.
	b.Input("a_b_4")
	collide := b.Input("a:b")
	b.MarkOutput(b.And(x, collide), "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	names := exportNames(n, "clk", "rst")
	seen := map[string]NetID{}
	for id, name := range names {
		if prev, dup := seen[name]; dup {
			t.Fatalf("nets %d and %d both exported as %q", prev, id, name)
		}
		seen[name] = NetID(id)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, n, "collide"); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadBench: arbitrary bytes must never panic the parser or the
// builder behind it; valid files must round-trip through WriteBench.
func FuzzReadBench(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(x)\nx = NOT(a)\n")
	f.Add("INPUT(G0)\nINPUT(G1)\nOUTPUT(G17)\nG17 = NAND(G0, G1)\n")
	f.Add("# s27-ish\nINPUT(en)\nOUTPUT(q)\nq = DFF(d)\nnq = NOT(q)\nd = AND(en, nq)\n")
	f.Add("x = AND(a\nINPUT(()\nOUTPUT\n= NOT(x)\n")
	f.Add(strings.Repeat("INPUT(a)\n", 3))
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ReadBench(strings.NewReader(src), BuildOptions{})
		if err != nil || n == nil {
			return
		}
		var sb strings.Builder
		if err := WriteBench(&sb, n, "fuzz"); err != nil {
			t.Fatalf("WriteBench of a ReadBench-accepted netlist: %v", err)
		}
		if _, err := ReadBench(strings.NewReader(sb.String()), BuildOptions{}); err != nil {
			t.Fatalf("re-import of exported netlist: %v\n%s", err, sb.String())
		}
	})
}
