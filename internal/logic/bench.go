package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// bench.go reads and writes the ISCAS-style .bench structural netlist
// format — the lingua franca of the gate-level test-generation
// literature and the import path that lets campaigns run against
// standard benchmark circuits instead of only the generated cores.
//
// The subset understood here (documented in docs/DESIGNS.md):
//
//	# comment                      (to end of line)
//	INPUT(name)                    primary input
//	OUTPUT(name)                   primary output
//	name = AND(a, b, ...)          n-ary: AND OR NAND NOR XOR XNOR
//	name = NOT(a)                  unary: NOT BUFF
//	name = DFF(d)                  D flip-flop, reset state 0
//
// Signal definitions may appear in any order (ISCAS files routinely
// reference a DFF's D input before defining it); sequential feedback is
// legal, combinational loops are an error. Export lowers the netlist
// kinds the format lacks: Mux2 becomes an AND/OR/NOT cone and live
// constants become XOR/XNOR ties off the first primary input.

// benchDef is one parsed "name = OP(args...)" line.
type benchDef struct {
	op   string
	args []string
	line int
}

// ReadBench parses a .bench netlist and builds it with the given
// options. Inputs appear in file order (fault-simulation vector bit i
// drives the i-th INPUT line); every defined signal is built, reachable
// from an output or not, so fault lists cover the whole file.
func ReadBench(r io.Reader, opts BuildOptions) (*Netlist, error) {
	inputs, outputs, defs, order, err := parseBench(r)
	if err != nil {
		return nil, err
	}
	if len(inputs) == 0 && len(order) == 0 {
		return nil, fmt.Errorf("logic: bench: empty netlist")
	}

	b := NewBuilder()
	nets := make(map[string]NetID, len(inputs)+len(order))
	outSet := make(map[string]bool, len(outputs))
	for _, o := range outputs {
		outSet[o] = true
	}
	for _, in := range inputs {
		nets[in] = b.Input(in)
	}

	// DFFs first: their Q nets exist before any reader, and a deferred
	// buffer stands in for the D input so sequential feedback (s27's
	// state loop) resolves after the combinational frame is built.
	type pendingD struct {
		ph  NetID
		arg string
		at  int
	}
	var pending []pendingD
	for _, name := range order {
		d := defs[name]
		if !strings.EqualFold(d.op, "DFF") {
			continue
		}
		if len(d.args) != 1 {
			return nil, fmt.Errorf("logic: bench line %d: DFF takes one input, got %d", d.line, len(d.args))
		}
		ph := b.DeferredBuf()
		qName := name
		if outSet[name] {
			// MarkOutput below claims the name for the alias buffer.
			qName = ""
		}
		nets[name] = b.DFF(ph, qName)
		pending = append(pending, pendingD{ph, d.args[0], d.line})
	}

	// Combinational frame: iterative DFS so a pathologically deep chain
	// in a fuzzed file cannot overflow the goroutine stack.
	for _, name := range order {
		if err := buildBenchSignal(b, name, nets, defs, outSet); err != nil {
			return nil, err
		}
	}
	for _, p := range pending {
		id, ok := nets[p.arg]
		if !ok {
			return nil, fmt.Errorf("logic: bench line %d: undefined signal %q", p.at, p.arg)
		}
		b.ResolveBuf(p.ph, id)
	}

	seenOut := make(map[string]bool, len(outputs))
	for _, o := range outputs {
		if seenOut[o] {
			return nil, fmt.Errorf("logic: bench: duplicate OUTPUT(%s)", o)
		}
		seenOut[o] = true
		id, ok := nets[o]
		if !ok {
			return nil, fmt.Errorf("logic: bench: OUTPUT(%s) has no definition", o)
		}
		// The alias buffer takes the bench name; when the source net
		// already holds it (an INPUT fed straight to an OUTPUT), fall
		// back to a suffixed port name rather than failing the build.
		name := o
		for sfx := 0; ; sfx++ {
			if _, taken := b.byName[name]; !taken {
				break
			}
			name = o + "_out"
			if sfx > 0 {
				name = fmt.Sprintf("%s_out_%d", o, sfx)
			}
		}
		b.MarkOutput(id, name)
	}

	n, err := b.Build(opts)
	if err != nil {
		return nil, fmt.Errorf("logic: bench: %w", err)
	}
	return n, nil
}

// parseBench tokenizes the file into input/output lists and signal
// definitions, preserving definition order.
func parseBench(r io.Reader) (inputs, outputs []string, defs map[string]*benchDef, order []string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	defs = make(map[string]*benchDef)
	seenIn := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT") && !strings.Contains(line[:strings.IndexByte(line+"(", '(')], "="):
			name, perr := parseBenchDecl(line, lineNo)
			if perr != nil {
				return nil, nil, nil, nil, perr
			}
			if seenIn[name] {
				return nil, nil, nil, nil, fmt.Errorf("logic: bench line %d: duplicate INPUT(%s)", lineNo, name)
			}
			seenIn[name] = true
			inputs = append(inputs, name)
		case strings.HasPrefix(up, "OUTPUT") && !strings.Contains(line[:strings.IndexByte(line+"(", '(')], "="):
			name, perr := parseBenchDecl(line, lineNo)
			if perr != nil {
				return nil, nil, nil, nil, perr
			}
			outputs = append(outputs, name)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, nil, nil, nil, fmt.Errorf("logic: bench line %d: expected INPUT/OUTPUT or assignment, got %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			if lhs == "" {
				return nil, nil, nil, nil, fmt.Errorf("logic: bench line %d: missing signal name", lineNo)
			}
			op, args, perr := parseBenchCall(strings.TrimSpace(line[eq+1:]), lineNo)
			if perr != nil {
				return nil, nil, nil, nil, perr
			}
			if _, dup := defs[lhs]; dup {
				return nil, nil, nil, nil, fmt.Errorf("logic: bench line %d: signal %q redefined", lineNo, lhs)
			}
			if seenIn[lhs] {
				return nil, nil, nil, nil, fmt.Errorf("logic: bench line %d: signal %q is both INPUT and defined", lineNo, lhs)
			}
			defs[lhs] = &benchDef{op: op, args: args, line: lineNo}
			order = append(order, lhs)
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, nil, nil, nil, fmt.Errorf("logic: bench: %w", serr)
	}
	// A definition after an INPUT of the same name is caught above; an
	// INPUT after the definition is caught here.
	for in := range seenIn {
		if _, dup := defs[in]; dup {
			return nil, nil, nil, nil, fmt.Errorf("logic: bench: signal %q is both INPUT and defined", in)
		}
	}
	return inputs, outputs, defs, order, nil
}

// parseBenchDecl extracts the name from "INPUT(name)" / "OUTPUT(name)".
func parseBenchDecl(line string, lineNo int) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("logic: bench line %d: malformed declaration %q", lineNo, line)
	}
	name := strings.TrimSpace(line[open+1 : close])
	if name == "" || strings.ContainsAny(name, "(), \t") {
		return "", fmt.Errorf("logic: bench line %d: bad signal name %q", lineNo, name)
	}
	return name, nil
}

// parseBenchCall parses "OP(a, b, ...)".
func parseBenchCall(rhs string, lineNo int) (op string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open <= 0 || close < open {
		return "", nil, fmt.Errorf("logic: bench line %d: malformed gate %q", lineNo, rhs)
	}
	op = strings.ToUpper(strings.TrimSpace(rhs[:open]))
	switch op {
	case "AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF", "BUFF", "DFF":
	default:
		return "", nil, fmt.Errorf("logic: bench line %d: unknown gate type %q", lineNo, op)
	}
	for _, a := range strings.Split(rhs[open+1:close], ",") {
		a = strings.TrimSpace(a)
		if a == "" || strings.ContainsAny(a, "() \t") {
			return "", nil, fmt.Errorf("logic: bench line %d: bad gate input in %q", lineNo, rhs)
		}
		args = append(args, a)
	}
	if len(args) == 0 {
		return "", nil, fmt.Errorf("logic: bench line %d: gate %q has no inputs", lineNo, op)
	}
	return op, args, nil
}

// buildBenchSignal resolves one combinational definition and all of its
// not-yet-built dependencies, depth-first with an explicit stack.
func buildBenchSignal(b *Builder, root string, nets map[string]NetID, defs map[string]*benchDef, outSet map[string]bool) error {
	if _, done := nets[root]; done {
		return nil
	}
	type frame struct {
		name string
		next int
	}
	stack := []frame{{root, 0}}
	inStack := map[string]bool{root: true}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		d := defs[f.name]
		descended := false
		for f.next < len(d.args) {
			a := d.args[f.next]
			if _, ok := nets[a]; ok {
				f.next++
				continue
			}
			if _, ok := defs[a]; !ok {
				return fmt.Errorf("logic: bench line %d: undefined signal %q", d.line, a)
			}
			if inStack[a] {
				return fmt.Errorf("logic: bench line %d: combinational loop through %q", d.line, a)
			}
			stack = append(stack, frame{a, 0})
			inStack[a] = true
			descended = true
			break
		}
		if descended {
			continue
		}
		ins := make([]NetID, len(d.args))
		for i, a := range d.args {
			ins[i] = nets[a]
		}
		id, err := benchGate(b, d, ins)
		if err != nil {
			return err
		}
		if !outSet[f.name] {
			b.Name(id, f.name)
		}
		nets[f.name] = id
		delete(inStack, f.name)
		stack = stack[:len(stack)-1]
	}
	return nil
}

// benchGate instantiates one parsed gate. Single-input forms of the
// n-ary types (legal in some bench dialects) degrade to BUFF/NOT.
func benchGate(b *Builder, d *benchDef, ins []NetID) (NetID, error) {
	unary := func() (NetID, error) {
		if len(ins) != 1 {
			return InvalidNet, fmt.Errorf("logic: bench line %d: %s takes one input, got %d", d.line, d.op, len(ins))
		}
		return ins[0], nil
	}
	switch d.op {
	case "NOT":
		in, err := unary()
		if err != nil {
			return InvalidNet, err
		}
		return b.Not(in), nil
	case "BUF", "BUFF":
		in, err := unary()
		if err != nil {
			return InvalidNet, err
		}
		return b.Buf(in, ""), nil
	case "AND":
		if len(ins) == 1 {
			return b.Buf(ins[0], ""), nil
		}
		return b.And(ins...), nil
	case "OR":
		if len(ins) == 1 {
			return b.Buf(ins[0], ""), nil
		}
		return b.Or(ins...), nil
	case "NAND":
		if len(ins) == 1 {
			return b.Not(ins[0]), nil
		}
		return b.Nand(ins...), nil
	case "NOR":
		if len(ins) == 1 {
			return b.Not(ins[0]), nil
		}
		return b.Nor(ins...), nil
	case "XOR":
		if len(ins) == 1 {
			return b.Buf(ins[0], ""), nil
		}
		return b.Xor(ins...), nil
	case "XNOR":
		if len(ins) == 1 {
			return b.Not(ins[0]), nil
		}
		return b.Xnor(ins...), nil
	}
	return InvalidNet, fmt.Errorf("logic: bench line %d: unknown gate type %q", d.line, d.op)
}

// WriteBench exports the netlist in the .bench format. Gate kinds the
// format lacks are lowered functionally: Mux2 into sel ? b : a as an
// AND/OR/NOT cone, and constants (when live) into XOR/XNOR self-ties
// off the first primary input. The exported file reimports (ReadBench)
// to a functionally identical circuit.
func WriteBench(w io.Writer, n *Netlist, name string) error {
	// const0/const1 are claimed by NewBuilder in every netlist, so a
	// definition under either name could never re-import.
	names := exportNames(n, "const0", "const1")
	used := make(map[string]bool, n.NumNets())
	for _, nm := range names {
		used[nm] = true
	}
	fresh := func(base string) string {
		nm := base
		for sfx := 2; used[nm]; sfx++ {
			nm = fmt.Sprintf("%s_%d", base, sfx)
		}
		used[nm] = true
		return nm
	}

	// Constants only need a definition when something reads them.
	constRead := make(map[NetID]bool)
	for id := 0; id < n.NumNets(); id++ {
		for _, in := range n.Gate(NetID(id)).In {
			if k := n.Gate(in).Kind; k == GateConst0 || k == GateConst1 {
				constRead[in] = true
			}
		}
	}
	for _, out := range n.Outputs() {
		if k := n.Gate(out).Kind; k == GateConst0 || k == GateConst1 {
			constRead[out] = true
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", sanitizeIdent(name))
	fmt.Fprintf(bw, "# exported by logic.WriteBench: %d inputs, %d outputs, %d DFFs\n",
		len(n.Inputs()), len(n.Outputs()), len(n.DFFs()))
	for _, in := range n.Inputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", names[in])
	}
	for _, out := range n.Outputs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", names[out])
	}

	inList := func(g Gate) string {
		parts := make([]string, len(g.In))
		for i, in := range g.In {
			parts[i] = names[in]
		}
		return strings.Join(parts, ", ")
	}
	for id := 0; id < n.NumNets(); id++ {
		g := n.Gate(NetID(id))
		lhs := names[id]
		switch g.Kind {
		case GateInput:
			continue
		case GateConst0, GateConst1:
			if !constRead[NetID(id)] {
				continue
			}
			if len(n.Inputs()) == 0 {
				return fmt.Errorf("logic: WriteBench: live constant %s but no primary input to tie it to", lhs)
			}
			tie := names[n.Inputs()[0]]
			if g.Kind == GateConst0 {
				fmt.Fprintf(bw, "%s = XOR(%s, %s)\n", lhs, tie, tie)
			} else {
				fmt.Fprintf(bw, "%s = XNOR(%s, %s)\n", lhs, tie, tie)
			}
		case GateBuf:
			fmt.Fprintf(bw, "%s = BUFF(%s)\n", lhs, names[g.In[0]])
		case GateNot:
			fmt.Fprintf(bw, "%s = NOT(%s)\n", lhs, names[g.In[0]])
		case GateAnd:
			fmt.Fprintf(bw, "%s = AND(%s)\n", lhs, inList(g))
		case GateOr:
			fmt.Fprintf(bw, "%s = OR(%s)\n", lhs, inList(g))
		case GateNand:
			fmt.Fprintf(bw, "%s = NAND(%s)\n", lhs, inList(g))
		case GateNor:
			fmt.Fprintf(bw, "%s = NOR(%s)\n", lhs, inList(g))
		case GateXor:
			fmt.Fprintf(bw, "%s = XOR(%s)\n", lhs, inList(g))
		case GateXnor:
			fmt.Fprintf(bw, "%s = XNOR(%s)\n", lhs, inList(g))
		case GateDFF:
			fmt.Fprintf(bw, "%s = DFF(%s)\n", lhs, names[g.In[0]])
		case GateMux2:
			// sel ? c : a  →  (¬sel ∧ a) ∨ (sel ∧ c)
			sel, a, c := names[g.In[0]], names[g.In[1]], names[g.In[2]]
			sn := fresh(lhs + "_sn")
			m0 := fresh(lhs + "_m0")
			m1 := fresh(lhs + "_m1")
			fmt.Fprintf(bw, "%s = NOT(%s)\n", sn, sel)
			fmt.Fprintf(bw, "%s = AND(%s, %s)\n", m0, sn, a)
			fmt.Fprintf(bw, "%s = AND(%s, %s)\n", m1, sel, c)
			fmt.Fprintf(bw, "%s = OR(%s, %s)\n", lhs, m0, m1)
		default:
			return fmt.Errorf("logic: WriteBench: unknown gate kind %v", g.Kind)
		}
	}
	return bw.Flush()
}
