package logic

// goodtrace.go holds the fault-free machine's recorded behavior, shared
// between the good-machine pass and every fault batch replay of the
// compiled kernel (see eventsim.go), and — since the trace is addressed
// by absolute cycle — reusable across jobs: a trace filled once for a
// (design, vector source) pair can be replayed by any later campaign on
// the same pair (internal/artifacts keys them by content hash).

// GoodTrace stores the fault-free machine's per-cycle net values as
// packed bitsets (one bit per net per cycle, snapshotted after settle
// and before the clock edge) over a window of absolute cycles
// [off, off+cap). Rows [off, valid) are recorded; the frontier is the
// packed flip-flop state the machine held entering cycle
// frontierCycle, which lets a filler resume exactly where the previous
// one stopped (or a fresh window start without replaying the prefix).
type GoodTrace struct {
	words int // uint64 words per cycle row
	off   int // absolute cycle of row 0
	cap   int // window length in rows
	valid int // absolute cycle bound: rows [off, valid) are recorded
	bits  []uint64

	// frontier is the packed DFF state (Netlist.DFFs order) at the start
	// of cycle frontierCycle. nil means the all-zero reset state, which
	// is every simulation's cycle-0 state.
	frontier      []uint64
	frontierCycle int
}

// NewGoodTrace returns an empty trace for a circuit with numNets nets,
// windowed over absolute cycles [0, maxCycles). The frontier starts at
// cycle 0 in the all-zero reset state.
func NewGoodTrace(numNets, maxCycles int) *GoodTrace {
	w := (numNets + 63) / 64
	if w == 0 {
		w = 1
	}
	return &GoodTrace{words: w, cap: maxCycles, bits: make([]uint64, w*maxCycles)}
}

// Window repositions the trace over absolute cycles [off, off+cycles),
// discarding any recorded rows (valid falls back to off) and growing
// the backing storage if needed. The frontier is untouched: a filler
// that just finished cycle off-1 re-windows and resumes seamlessly.
func (t *GoodTrace) Window(off, cycles int) {
	t.EnsureCycles(cycles)
	t.off = off
	t.valid = off
}

// EnsureCycles grows the window capacity to at least cycles rows,
// preserving recorded rows. Growth copies — size windows up front when
// the final length is known.
func (t *GoodTrace) EnsureCycles(cycles int) {
	if cycles <= t.cap {
		return
	}
	grown := make([]uint64, cycles*t.words)
	copy(grown, t.bits)
	t.bits = grown
	t.cap = cycles
}

// Cycles returns the window capacity in rows.
func (t *GoodTrace) Cycles() int { return t.cap }

// ValidThrough returns the absolute cycle bound of the recorded prefix:
// rows for cycles [off, ValidThrough()) hold fault-free values.
func (t *GoodTrace) ValidThrough() int { return t.valid }

// SizeBytes reports the trace's backing memory, for cache budgeting.
func (t *GoodTrace) SizeBytes() int64 {
	return int64(len(t.bits)+len(t.frontier)) * 8
}

// Record snapshots lane 0 of the simulator's settled frame at the given
// absolute cycle and advances the valid watermark. Cycles must be
// recorded in order from the watermark.
func (t *GoodTrace) Record(cycle int, s *CompiledSim) {
	if cycle != t.valid || cycle < t.off || cycle >= t.off+t.cap {
		panic("logic: GoodTrace.Record out of order or outside window")
	}
	row := t.row(cycle)
	for i := range row {
		row[i] = 0
	}
	for i, v := range s.vals[:s.c.numNets] {
		row[i>>6] |= (v & 1) << (uint(i) & 63)
	}
	t.valid = cycle + 1
}

// SetFrontier saves the packed DFF state the fault-free machine holds
// entering the given absolute cycle. Fillers call it after their last
// recorded cycle's clock edge so a later fill (or a survivor-state
// query at a segment boundary) can pick up without resimulation.
func (t *GoodTrace) SetFrontier(cycle int, state []uint64) {
	if cap(t.frontier) < len(state) {
		t.frontier = make([]uint64, len(state))
	}
	t.frontier = t.frontier[:len(state)]
	copy(t.frontier, state)
	t.frontierCycle = cycle
}

// Frontier returns the saved frontier cycle and state (nil = the
// all-zero reset state, valid at cycle 0).
func (t *GoodTrace) Frontier() (cycle int, state []uint64) {
	return t.frontierCycle, t.frontier
}

// StateInto writes the fault-free machine's packed DFF state at the
// start of the given absolute cycle into dst. The state comes from the
// frontier when the cycle matches it, otherwise from the recorded row
// (a row's Q bits are the state the machine held during that cycle).
func (t *GoodTrace) StateInto(cycle int, dffs []NetID, dst []uint64) {
	if cycle == t.frontierCycle {
		for i := range dst {
			dst[i] = 0
		}
		copy(dst, t.frontier)
		return
	}
	if cycle < t.off || cycle >= t.valid {
		panic("logic: GoodTrace.StateInto outside recorded window")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, q := range dffs {
		dst[i>>6] |= t.Bit(cycle, q) << (uint(i) & 63)
	}
}

// row returns the packed net values of an absolute cycle.
func (t *GoodTrace) row(cycle int) []uint64 {
	r := cycle - t.off
	return t.bits[r*t.words : (r+1)*t.words]
}

// Bit returns net id's fault-free value (0 or 1) at the absolute cycle.
func (t *GoodTrace) Bit(cycle int, id NetID) uint64 {
	return t.row(cycle)[id>>6] >> (uint(id) & 63) & 1
}

// Word returns net id's fault-free value broadcast across all 64 lanes.
func (t *GoodTrace) Word(cycle int, id NetID) uint64 {
	return -t.Bit(cycle, id)
}
