package logic

import (
	"math/rand"
	"testing"
)

func buildFullAdder(t *testing.T, opts BuildOptions) (*Netlist, Bus, Bus, NetID, Bus, NetID) {
	t.Helper()
	b := NewBuilder()
	a := b.InputBus("a", 4)
	bb := b.InputBus("b", 4)
	cin := b.Input("cin")
	sum := make(Bus, 4)
	carry := cin
	for i := 0; i < 4; i++ {
		sum[i] = b.Xor(a[i], bb[i], carry)
		carry = b.Or(b.And(a[i], bb[i]), b.And(a[i], carry), b.And(bb[i], carry))
	}
	out := b.MarkOutputBus(sum, "sum")
	cout := b.MarkOutput(carry, "cout")
	n, err := b.Build(opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, a, bb, cin, out, cout
}

func TestAdderExhaustive(t *testing.T) {
	for _, branches := range []bool{false, true} {
		n, a, bb, cin, sum, cout := buildFullAdder(t, BuildOptions{InsertFanoutBranches: branches})
		s := NewSimulator(n)
		for x := 0; x < 16; x++ {
			for y := 0; y < 16; y++ {
				for c := 0; c < 2; c++ {
					s.SetInputBus(a, uint64(x))
					s.SetInputBus(bb, uint64(y))
					s.SetInput(cin, c == 1)
					s.Settle()
					want := x + y + c
					got := int(s.BusValue(sum))
					if s.Value(cout) {
						got |= 16
					}
					if got != want {
						t.Fatalf("branches=%v %d+%d+%d: got %d want %d", branches, x, y, c, got, want)
					}
				}
			}
		}
	}
}

func TestGateOps(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	and := b.MarkOutput(b.And(x, y), "and")
	or := b.MarkOutput(b.Or(x, y), "or")
	nand := b.MarkOutput(b.Nand(x, y), "nand")
	nor := b.MarkOutput(b.Nor(x, y), "nor")
	xor := b.MarkOutput(b.Xor(x, y), "xor")
	xnor := b.MarkOutput(b.Xnor(x, y), "xnor")
	not := b.MarkOutput(b.Not(x), "not")
	mux := b.MarkOutput(b.Mux2(x, y, b.Const(true)), "mux")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(n)
	for xi := 0; xi < 2; xi++ {
		for yi := 0; yi < 2; yi++ {
			xv, yv := xi == 1, yi == 1
			s.SetInput(x, xv)
			s.SetInput(y, yv)
			s.Settle()
			check := func(id NetID, want bool, name string) {
				if s.Value(id) != want {
					t.Errorf("x=%v y=%v %s: got %v want %v", xv, yv, name, s.Value(id), want)
				}
			}
			check(and, xv && yv, "and")
			check(or, xv || yv, "or")
			check(nand, !(xv && yv), "nand")
			check(nor, !(xv || yv), "nor")
			check(xor, xv != yv, "xor")
			check(xnor, xv == yv, "xnor")
			check(not, !xv, "not")
			muxWant := yv
			if xv {
				muxWant = true
			}
			check(mux, muxWant, "mux")
		}
	}
}

func TestDFFShiftRegister(t *testing.T) {
	b2 := NewBuilder()
	din := b2.Input("din")
	q0 := b2.DFF(din, "q0")
	q1 := b2.DFF(q0, "q1")
	q2 := b2.DFF(q1, "q2")
	out := b2.MarkOutput(q2, "out")
	n, err := b2.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator(n)
	pattern := []bool{true, false, true, true, false, false, true}
	var got []bool
	for i := 0; i < len(pattern)+3; i++ {
		if i < len(pattern) {
			s.SetInput(din, pattern[i])
		} else {
			s.SetInput(din, false)
		}
		s.Settle()
		got = append(got, s.Value(out))
		s.Step()
	}
	// Output lags input by 3 cycles; first 3 samples are reset zeros.
	for i, p := range pattern {
		if got[i+3] != p {
			t.Fatalf("shift register: cycle %d got %v want %v (all: %v)", i+3, got[i+3], p, got)
		}
	}
	for i := 0; i < 3; i++ {
		if got[i] {
			t.Fatalf("shift register: cycle %d expected reset 0", i)
		}
	}
}

func TestReconvergentFanoutBuilds(t *testing.T) {
	// The builder API cannot express combinational loops (gates only read
	// already-created nets), so the interesting structural case is
	// reconvergent fanout, which must levelize cleanly with and without
	// branch insertion.
	b := NewBuilder()
	x := b.Input("x")
	d1 := b.Not(x)
	d2 := b.Not(x)
	y := b.And(d1, d2)
	b.MarkOutput(y, "y")
	if _, err := b.Build(BuildOptions{InsertFanoutBranches: true}); err != nil {
		t.Fatalf("diamond should build: %v", err)
	}
}

func TestBranchInsertionPreservesFunction(t *testing.T) {
	plain, a1, b1, c1, s1, co1 := buildFullAdder(t, BuildOptions{})
	branched, a2, b2, c2, s2, co2 := buildFullAdder(t, BuildOptions{InsertFanoutBranches: true})
	if branched.NumNets() <= plain.NumNets() {
		t.Fatalf("branch insertion should add nets: %d vs %d", branched.NumNets(), plain.NumNets())
	}
	sp := NewSimulator(plain)
	sb := NewSimulator(branched)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x, y := rng.Uint64()&15, rng.Uint64()&15
		c := rng.Intn(2) == 1
		sp.SetInputBus(a1, x)
		sp.SetInputBus(b1, y)
		sp.SetInput(c1, c)
		sp.Settle()
		sb.SetInputBus(a2, x)
		sb.SetInputBus(b2, y)
		sb.SetInput(c2, c)
		sb.Settle()
		if sp.BusValue(s1) != sb.BusValue(s2) || sp.Value(co1) != sb.Value(co2) {
			t.Fatalf("branch insertion changed function at x=%d y=%d c=%v", x, y, c)
		}
	}
}

func TestWordSimMatchesScalar(t *testing.T) {
	n, a, bb, cin, sum, cout := buildFullAdder(t, BuildOptions{InsertFanoutBranches: true})
	s := NewSimulator(n)
	w := NewWordSim(n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		x, y := rng.Uint64()&15, rng.Uint64()&15
		c := rng.Intn(2) == 1
		s.SetInputBus(a, x)
		s.SetInputBus(bb, y)
		s.SetInput(cin, c)
		s.Settle()
		w.SetInputBus(a, x)
		w.SetInputBus(bb, y)
		w.SetInput(cin, c)
		w.Settle()
		if w.LaneBusValue(sum, 0) != s.BusValue(sum) {
			t.Fatalf("lane0 sum mismatch at %d+%d", x, y)
		}
		if (w.Word(cout)&1 == 1) != s.Value(cout) {
			t.Fatalf("lane0 cout mismatch at %d+%d", x, y)
		}
		// All lanes identical without injections.
		for _, id := range append(append(Bus{}, sum...), cout) {
			v := w.Word(id)
			if v != 0 && v != ^uint64(0) {
				t.Fatalf("uninjected lanes diverged on net %d: %016x", id, v)
			}
		}
	}
}

func TestWordSimInjection(t *testing.T) {
	n, a, bb, cin, sum, _ := buildFullAdder(t, BuildOptions{InsertFanoutBranches: true})
	w := NewWordSim(n)
	// Force sum[0]'s driving net stuck-at-1 in lane 3.
	target := sum[0]
	w.Inject(target, true, 3)
	w.SetInputBus(a, 0)
	w.SetInputBus(bb, 0)
	w.SetInput(cin, false)
	w.Settle()
	if w.Word(target)&(1<<3) == 0 {
		t.Fatal("injected lane not forced to 1")
	}
	if w.Word(target)&1 != 0 {
		t.Fatal("good lane corrupted by injection")
	}
	diff := w.OutputDiff()
	if diff&(1<<3) == 0 {
		t.Fatalf("OutputDiff missed injected lane: %016x", diff)
	}
	if diff&^(1<<3) != 0 {
		t.Fatalf("OutputDiff flagged clean lanes: %016x", diff)
	}
	w.ClearInjections()
	w.Settle()
	if w.OutputDiff() != 0 {
		t.Fatal("diff persists after ClearInjections on combinational circuit")
	}
}

func TestWordSimLaneState(t *testing.T) {
	b := NewBuilder()
	din := b.Input("din")
	q0 := b.DFF(din, "q0")
	q1 := b.DFF(q0, "q1")
	b.MarkOutput(q1, "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWordSim(n)
	w.SetInput(din, true)
	w.Step()
	w.SetInput(din, false)
	w.Step()
	// q0=0, q1=1 in every lane now.
	st := make([]uint64, w.StateWords())
	w.LaneState(0, st)
	if st[0] != 0b10 {
		t.Fatalf("LaneState got %b want 10", st[0])
	}
	// Move lane 5 to a different state and read it back.
	w.SetLaneState(5, []uint64{0b01})
	w.LaneState(5, st)
	if st[0] != 0b01 {
		t.Fatalf("SetLaneState round-trip got %b want 01", st[0])
	}
	w.LaneState(0, st)
	if st[0] != 0b10 {
		t.Fatalf("lane 0 state disturbed: %b", st[0])
	}
}

func TestRegions(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	var inner NetID
	b.Scoped("alu", func() {
		b.Scoped("add", func() {
			inner = b.And(x, y)
		})
	})
	b.MarkOutput(inner, "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.RegionNets("alu"); len(got) != 1 || got[0] != inner {
		t.Fatalf("alu region = %v, want [%d]", got, inner)
	}
	if got := n.RegionNets("alu.add"); len(got) != 1 || got[0] != inner {
		t.Fatalf("alu.add region = %v, want [%d]", got, inner)
	}
	if regions := n.Regions(); len(regions) != 2 {
		t.Fatalf("regions = %v", regions)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	b.And(x) // too few inputs
	if _, err := b.Build(BuildOptions{}); err == nil {
		t.Fatal("expected arity error")
	}

	b2 := NewBuilder()
	b2.Input("x")
	b2.Input("x") // duplicate name
	if _, err := b2.Build(BuildOptions{}); err == nil {
		t.Fatal("expected duplicate-name error")
	}

	b3 := NewBuilder()
	b3.PopScope()
	if _, err := b3.Build(BuildOptions{}); err == nil {
		t.Fatal("expected scope underflow error")
	}
}

func TestLookupAndStats(t *testing.T) {
	n, _, _, _, _, _ := buildFullAdder(t, BuildOptions{})
	if n.Lookup("a[0]") == InvalidNet {
		t.Fatal("Lookup a[0] failed")
	}
	if n.Lookup("nope") != InvalidNet {
		t.Fatal("Lookup nonexistent should fail")
	}
	st := n.Stats()
	if st.Inputs != 9 || st.Outputs != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Levels < 4 {
		t.Fatalf("4-bit ripple adder should have >=4 levels, got %d", st.Levels)
	}
}
