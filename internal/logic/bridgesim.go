package logic

// BridgeSimulator simulates a circuit with one two-net bridging fault
// under a zero-delay wired-resolution model. The two bridged nets must
// not lie in each other's combinational fanin cone (same topological
// level suffices); under that condition one re-evaluation pass after
// pinning the resolved values reaches the fixed point.
type BridgeSimulator struct {
	s    *Simulator
	a, b NetID
	// kind: 0 = wired-AND, 1 = wired-OR, 2 = A dominates B.
	kind uint8
}

// NewBridgeSimulator wraps a fresh Simulator with a bridge between nets
// a and b.
func NewBridgeSimulator(n *Netlist, a, b NetID, kind uint8) *BridgeSimulator {
	return &BridgeSimulator{s: NewSimulator(n), a: a, b: b, kind: kind}
}

// SetInput drives a primary input.
func (bs *BridgeSimulator) SetInput(id NetID, v bool) { bs.s.SetInput(id, v) }

// SetInputBus drives a bus of primary inputs.
func (bs *BridgeSimulator) SetInputBus(bus Bus, v uint64) { bs.s.SetInputBus(bus, v) }

// Value reads a settled net value.
func (bs *BridgeSimulator) Value(id NetID) bool { return bs.s.Value(id) }

// Settle evaluates the frame, applies the bridge resolution to the two
// nets and propagates it downstream.
func (bs *BridgeSimulator) Settle() {
	bs.s.Settle()
	va, vb := bs.s.vals[bs.a], bs.s.vals[bs.b]
	var ra, rb bool
	switch bs.kind {
	case 0:
		ra = va && vb
		rb = ra
	case 1:
		ra = va || vb
		rb = ra
	default:
		ra, rb = va, va
	}
	bs.s.vals[bs.a], bs.s.vals[bs.b] = ra, rb
	for _, id := range bs.s.n.order {
		if id == bs.a || id == bs.b {
			continue
		}
		g := &bs.s.n.gates[id]
		bs.s.vals[id] = evalScalar(g, bs.s.vals)
	}
}

// Step settles (with the bridge applied) and clocks the flip-flops.
func (bs *BridgeSimulator) Step() {
	bs.Settle()
	bs.s.ClockAfterSettle()
}
