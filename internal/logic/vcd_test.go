package logic

import (
	"strings"
	"testing"
)

func TestVCDWriter(t *testing.T) {
	b := NewBuilder()
	din := b.Input("din")
	q := b.DFF(din, "q")
	b.MarkOutput(q, "out")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	v := NewVCDWriter(&sb, n, nil)
	s := NewSimulator(n)
	for _, bit := range []bool{true, false, true, true} {
		s.SetInput(din, bit)
		s.Settle()
		v.Sample(s)
		s.Step()
	}
	if v.Err() != nil {
		t.Fatal(v.Err())
	}
	dump := sb.String()
	for _, want := range []string{
		"$timescale", "$var wire 1", "din", "$enddefinitions", "#0", "#10",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("vcd missing %q:\n%s", want, dump)
		}
	}
	// Value changes only on transitions: din toggles 1,0,1,1 → three
	// change records for din.
	if got := strings.Count(dump, "\n1!"); got == 0 {
		t.Error("no value-change records emitted")
	}
}

func TestVCDCodes(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		c := vcdCode(i)
		if c == "" || seen[c] {
			t.Fatalf("code collision or empty at %d: %q", i, c)
		}
		seen[c] = true
	}
}
