package logic

import (
	"strings"
	"testing"
)

func TestWriteVerilog(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a")
	x := b.Input("b[0]") // bracketed names must sanitize
	s := b.Xor(a, x)
	q := b.DFF(s, "state")
	y := b.And(q, b.Not(a))
	m := b.Mux2(a, y, b.Const(true))
	b.MarkOutput(m, "y")
	n, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, n, "toy-module"); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module toy_module(",
		"input clk, rst;",
		"input a;",
		"output y;",
		"reg state;",
		"always @(posedge clk)",
		"state <= 1'b0;",
		"endmodule",
		"?", // the mux
		"^", // the xor
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
	if strings.Contains(v, "b[0]") {
		t.Error("unsanitized name leaked")
	}
}

func TestWriteVerilogDSPScale(t *testing.T) {
	// The full adder from the shared fixture exports without error and
	// declares every net exactly once.
	n, _, _, _, _, _ := buildFullAdder(t, BuildOptions{InsertFanoutBranches: true})
	var sb strings.Builder
	if err := WriteVerilog(&sb, n, "adder"); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if got := strings.Count(v, "assign "); got < n.NumGates()-10 {
		t.Errorf("suspiciously few assigns: %d for %d gates", got, n.NumGates())
	}
}
