package logic

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog emits the netlist as a structural Verilog module built
// from primitive gates and DFF instances — the interchange format the
// paper's flow produces with Design Compiler and feeds to Tetramax.
// Net names follow the netlist's names where present (sanitized for
// Verilog), with n<id> fallbacks; primary inputs and outputs become
// module ports, and every DFF is an always @(posedge clk) assignment
// with a synchronous active-high reset matching the simulator's
// power-on state.
func WriteVerilog(w io.Writer, n *Netlist, moduleName string) error {
	names := exportNames(n, "clk", "rst")

	var ports []string
	ports = append(ports, "clk", "rst")
	for _, in := range n.Inputs() {
		ports = append(ports, names[in])
	}
	for _, out := range n.Outputs() {
		ports = append(ports, names[out])
	}
	if _, err := fmt.Fprintf(w, "module %s(%s);\n", sanitizeIdent(moduleName), strings.Join(ports, ", ")); err != nil {
		return err
	}
	fmt.Fprintf(w, "  input clk, rst;\n")
	for _, in := range n.Inputs() {
		fmt.Fprintf(w, "  input %s;\n", names[in])
	}
	for _, out := range n.Outputs() {
		fmt.Fprintf(w, "  output %s;\n", names[out])
	}

	isOutput := make(map[NetID]bool, len(n.Outputs()))
	for _, out := range n.Outputs() {
		isOutput[out] = true
	}
	var wires, regs []string
	for id := 0; id < n.NumNets(); id++ {
		g := n.Gate(NetID(id))
		switch g.Kind {
		case GateInput:
			continue
		case GateDFF:
			regs = append(regs, names[id])
		default:
			if !isOutput[NetID(id)] {
				wires = append(wires, names[id])
			}
		}
	}
	sort.Strings(wires)
	for _, chunk := range chunked(wires, 8) {
		fmt.Fprintf(w, "  wire %s;\n", strings.Join(chunk, ", "))
	}
	for _, chunk := range chunked(regs, 8) {
		fmt.Fprintf(w, "  reg %s;\n", strings.Join(chunk, ", "))
	}

	inList := func(g Gate, sep string) string {
		parts := make([]string, len(g.In))
		for i, in := range g.In {
			parts[i] = names[in]
		}
		return strings.Join(parts, sep)
	}
	for id := 0; id < n.NumNets(); id++ {
		g := n.Gate(NetID(id))
		lhs := names[id]
		switch g.Kind {
		case GateInput, GateDFF:
			continue
		case GateConst0:
			fmt.Fprintf(w, "  assign %s = 1'b0;\n", lhs)
		case GateConst1:
			fmt.Fprintf(w, "  assign %s = 1'b1;\n", lhs)
		case GateBuf:
			fmt.Fprintf(w, "  assign %s = %s;\n", lhs, names[g.In[0]])
		case GateNot:
			fmt.Fprintf(w, "  assign %s = ~%s;\n", lhs, names[g.In[0]])
		case GateAnd:
			fmt.Fprintf(w, "  assign %s = %s;\n", lhs, inList(g, " & "))
		case GateOr:
			fmt.Fprintf(w, "  assign %s = %s;\n", lhs, inList(g, " | "))
		case GateNand:
			fmt.Fprintf(w, "  assign %s = ~(%s);\n", lhs, inList(g, " & "))
		case GateNor:
			fmt.Fprintf(w, "  assign %s = ~(%s);\n", lhs, inList(g, " | "))
		case GateXor:
			fmt.Fprintf(w, "  assign %s = %s;\n", lhs, inList(g, " ^ "))
		case GateXnor:
			fmt.Fprintf(w, "  assign %s = ~(%s);\n", lhs, inList(g, " ^ "))
		case GateMux2:
			fmt.Fprintf(w, "  assign %s = %s ? %s : %s;\n",
				lhs, names[g.In[0]], names[g.In[2]], names[g.In[1]])
		default:
			return fmt.Errorf("logic: WriteVerilog: unknown gate kind %v", g.Kind)
		}
	}

	fmt.Fprintf(w, "  always @(posedge clk) begin\n")
	fmt.Fprintf(w, "    if (rst) begin\n")
	for _, q := range n.DFFs() {
		fmt.Fprintf(w, "      %s <= 1'b0;\n", names[q])
	}
	fmt.Fprintf(w, "    end else begin\n")
	for _, q := range n.DFFs() {
		fmt.Fprintf(w, "      %s <= %s;\n", names[q], names[n.Gate(q).In[0]])
	}
	fmt.Fprintf(w, "    end\n  end\nendmodule\n")
	return nil
}

func chunked(items []string, size int) [][]string {
	var out [][]string
	for len(items) > size {
		out = append(out, items[:size])
		items = items[size:]
	}
	if len(items) > 0 {
		out = append(out, items)
	}
	return out
}
