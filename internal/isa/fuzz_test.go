package isa

import "testing"

// FuzzDecode: any 17-bit word either fails to decode or round-trips
// through Encode to an equivalent word (don't-care fields may differ,
// so compare via re-decode).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x045A3))
	f.Add(uint32(0x1FFFF))
	f.Fuzz(func(t *testing.T, word uint32) {
		word &= 1<<Width - 1
		in, err := Decode(word)
		if err != nil {
			return
		}
		re, err := Decode(in.Encode())
		if err != nil {
			t.Fatalf("re-decode of %v failed: %v", in, err)
		}
		if re != in {
			t.Fatalf("decode(%05x)=%+v but re-decode gives %+v", word, in, re)
		}
	})
}

// FuzzParse: Parse must never panic, and anything it accepts must render
// to a string it accepts again with the same encoding.
func FuzzParse(f *testing.F) {
	f.Add("MPYB R0,R1,R2")
	f.Add("LD RND,R1")
	f.Add(`LD "01110000",R3`)
	f.Add("OUT R15 // comment")
	f.Add(".??!")
	f.Fuzz(func(t *testing.T, line string) {
		in, err := Parse(line)
		if err != nil {
			return
		}
		again, err := Parse(in.String())
		if err != nil {
			t.Fatalf("Parse(%q) ok but Parse(String()=%q) failed: %v", line, in.String(), err)
		}
		if again.Encode() != in.Encode() {
			t.Fatalf("encoding changed: %q -> %q", line, in.String())
		}
	})
}
