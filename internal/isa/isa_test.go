package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw, accRaw, ra, rb, rd, src, imm uint8) bool {
		op := Op(opRaw) % numOps
		i := Instr{Op: op, Acc: Acc(accRaw % 2)}
		switch op.Format() {
		case Format1:
			i.RA, i.RB, i.RD = ra%16, rb%16, rd%16
		case Format2:
			i.Imm, i.RD = imm, rd%16
		case Format3:
			i.Src = src % 16
		case Format4:
			i.Src, i.RD = src%16, rd%16
		}
		if !op.MacFamily() {
			i.Acc = AccA
		}
		word := i.Encode()
		if word >= 1<<Width {
			t.Logf("encoding overflows 17 bits: %#x", word)
			return false
		}
		got, err := Decode(word)
		if err != nil {
			t.Logf("decode failed: %v", err)
			return false
		}
		if i.Op == OpNop {
			// NOP fields are don't-care; only the opcode matters.
			return got.Op == OpNop
		}
		return got == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsUnassigned(t *testing.T) {
	// Opcode 0x1F is unassigned.
	if _, err := Decode(0x1F << 12); err == nil {
		t.Fatal("expected error for unassigned opcode")
	}
	if _, err := Decode(1 << 17); err == nil {
		t.Fatal("expected error for >17-bit word")
	}
}

func TestOpcodesUnique(t *testing.T) {
	seen := map[uint32]string{}
	for op := Op(0); op < numOps; op++ {
		i := Instr{Op: op}
		oc := i.Encode() >> 12
		if prev, dup := seen[oc]; dup {
			t.Fatalf("opcode %#x shared by %s and %s", oc, prev, op.Mnemonic())
		}
		seen[oc] = op.Mnemonic()
		if op.MacFamily() {
			i.Acc = AccB
			ocB := i.Encode() >> 12
			if prev, dup := seen[ocB]; dup {
				t.Fatalf("opcode %#x shared by %s and %sB", ocB, prev, op.Mnemonic())
			}
			seen[ocB] = op.Mnemonic() + "B"
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	lines := []string{
		"MPYB R0,R1,R2",
		"MACB+ R6,R5,R7",
		"MACA- R1,R2,R3",
		"MACTA- R8,R9,R11",
		"SHIFTA R3,R15,R4",
		"MPYSHIFTMACB R1,R2,R3",
		"LD 0x70,R3",
		"LD RND,R1",
		"OUT R2",
		"MOV R5,R6",
		"NOP",
	}
	for _, line := range lines {
		in, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		again, err := Parse(in.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", line, in.String(), err)
		}
		if again.Encode() != in.Encode() {
			t.Fatalf("round trip changed encoding: %q -> %q", line, in.String())
		}
	}
}

func TestParseQuotedBinary(t *testing.T) {
	in, err := Parse(`LD "01110000",R3`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != 0x70 || in.RD != 3 || in.Op != OpLdi {
		t.Fatalf("parsed %+v", in)
	}
}

func TestParseRndBecomesLdRnd(t *testing.T) {
	in, err := Parse("LD RND,R9")
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != OpLdRnd || !in.RndImm || in.RD != 9 {
		t.Fatalf("parsed %+v", in)
	}
	if !strings.Contains(in.String(), "RND") {
		t.Fatalf("String() lost RND: %s", in.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"BOGUS R1,R2,R3",
		"MPYA R1,R2",      // wrong arity
		"MPYA R1,R2,R316", // bad register
		"LD 0x1FF,R1",     // immediate too wide
		"OUT",             // missing operand
		"LD ,R1",
	} {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q): expected error", line)
		}
	}
}

func TestAssembleProgram(t *testing.T) {
	src := `
		// randomize operands
		LD RND,R1
		LD RND,R0
		MPYB R0,R1,R2   // exercise multiplier
		OUT R2

		; observe
		OUT R0
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 5 {
		t.Fatalf("assembled %d instructions, want 5", len(prog))
	}
	dis := Disassemble(prog)
	if !strings.Contains(dis, "MPYB R0,R1,R2") {
		t.Fatalf("disassembly missing MPYB: %s", dis)
	}
	// Every disassembled line must carry a 17-bit binary field.
	for _, line := range strings.Split(strings.TrimSpace(dis), "\n") {
		bin := strings.Fields(line)[0]
		if len(bin) != 17 {
			t.Fatalf("binary field %q not 17 bits", bin)
		}
	}
}

func TestAssembleErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("NOP\nBOGUS\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestMnemonicRendering(t *testing.T) {
	cases := map[string]Instr{
		"MACA+ R1,R2,R3":  {Op: OpMacP, Acc: AccA, RA: 1, RB: 2, RD: 3},
		"MACB- R1,R2,R3":  {Op: OpMacM, Acc: AccB, RA: 1, RB: 2, RD: 3},
		"MPYA R1,R2,R3":   {Op: OpMpy, Acc: AccA, RA: 1, RB: 2, RD: 3},
		"SHIFTB R1,R2,R3": {Op: OpShift, Acc: AccB, RA: 1, RB: 2, RD: 3},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if OpOut.WritesDest() || OpNop.WritesDest() {
		t.Fatal("OUT/NOP must not write dest")
	}
	if !OpLdi.WritesDest() || !OpMacP.WritesDest() || !OpMov.WritesDest() {
		t.Fatal("LD/MAC/MOV must write dest")
	}
	if !OpMacP.UsesSourceRegs() || OpLdi.UsesSourceRegs() {
		t.Fatal("source-register predicate wrong")
	}
	if len(Ops()) != int(numOps) {
		t.Fatal("Ops() incomplete")
	}
}
