// Package isa defines the DSP core's 17-bit instruction set: the four
// encoding formats of the paper's Figure 4, the operation repertoire of
// its Table 2, an assembler/disassembler, and the template-field
// annotations (pseudorandom immediates, register-field masking) consumed
// by the self-test template architecture.
//
// Instruction layout (Figure 4):
//
//	Format 1   [16:12] opcode  [11:8] RegA   [7:4] RegB    [3:0] Dest
//	Format 2   [16:12] opcode  [11:4] value                [3:0] Dest
//	Format 3   [16:12] opcode  [11:8] ----   [7:4] Source  [3:0] ----
//	Format 4   [16:12] 00010   [11:8] ----   [7:4] Source  [3:0] Dest
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Width is the instruction width in bits.
const Width = 17

// NumRegs is the register-file size.
const NumRegs = 16

// Op identifies an operation kind, independent of which accumulator a
// MAC-family instruction targets.
type Op uint8

// Operation kinds. MAC-family semantics (see package dsp for the exact
// datapath): prod is the sign-extended 18-bit product of the two source
// registers, acc the selected 18-bit accumulator, and every MAC-family
// instruction writes the limited 8-bit MAC result to its Dest register.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpOut drives the 8-bit output port with the source register.
	OpOut
	// OpMov copies Source to Dest through the stage-3 buffer.
	OpMov
	// OpLdi loads an 8-bit immediate into Dest.
	OpLdi
	// OpLdRnd is the template load: an unused opcode trapped by the
	// template architecture, which fills the immediate field from LFSR1
	// and forwards it to the core as a plain OpLdi.
	OpLdRnd
	// OpMpy sets acc = prod.
	OpMpy
	// OpMpyT sets acc = truncate(prod).
	OpMpyT
	// OpMacP sets acc = prod + acc.
	OpMacP
	// OpMacM sets acc = acc - prod.
	OpMacM
	// OpMactP sets acc = truncate(prod + acc).
	OpMactP
	// OpMactM sets acc = truncate(acc - prod).
	OpMactM
	// OpShift sets acc = shift(acc, amount) with the variable shifter
	// mode; the signed 4-bit amount is the low nibble of RegA's value.
	OpShift
	// OpMpyShift sets acc = prod + (acc << 1) (fixed left-1 shifter mode).
	OpMpyShift
	// OpMpyShiftMac sets acc = prod + shift(acc, amount): a MAC through
	// the variable shifter mode, amount from RegA's low nibble.
	OpMpyShiftMac
	numOps
)

// Acc selects a MAC accumulator.
type Acc uint8

// Accumulator selectors.
const (
	AccA Acc = 0
	AccB Acc = 1
)

// String returns "A" or "B".
func (a Acc) String() string {
	if a == AccB {
		return "B"
	}
	return "A"
}

// Format enumerates the four encoding formats of Figure 4.
type Format uint8

// Encoding formats.
const (
	Format1 Format = 1 // opcode, RegA, RegB, Dest
	Format2 Format = 2 // opcode, 8-bit value, Dest
	Format3 Format = 3 // opcode, Source
	Format4 Format = 4 // opcode, Source, Dest
)

// opInfo describes one operation kind.
type opInfo struct {
	name      string // mnemonic stem; MAC-family gets the Acc letter appended
	format    Format
	macFamily bool // uses the MAC datapath and takes an Acc selector
	opcodeA   uint32
	opcodeB   uint32 // only for macFamily; otherwise unused
}

var opTable = [numOps]opInfo{
	OpNop:         {name: "NOP", format: Format1, opcodeA: 0x00},
	OpOut:         {name: "OUT", format: Format3, opcodeA: 0x01},
	OpMov:         {name: "MOV", format: Format4, opcodeA: 0x02},
	OpLdi:         {name: "LD", format: Format2, opcodeA: 0x04},
	OpLdRnd:       {name: "LDRND", format: Format2, opcodeA: 0x07},
	OpMpy:         {name: "MPY", format: Format1, macFamily: true, opcodeA: 0x08, opcodeB: 0x09},
	OpMpyT:        {name: "MPYT", format: Format1, macFamily: true, opcodeA: 0x0A, opcodeB: 0x0B},
	OpMacP:        {name: "MAC+", format: Format1, macFamily: true, opcodeA: 0x0C, opcodeB: 0x0D},
	OpMacM:        {name: "MAC-", format: Format1, macFamily: true, opcodeA: 0x0E, opcodeB: 0x0F},
	OpMactP:       {name: "MACT+", format: Format1, macFamily: true, opcodeA: 0x10, opcodeB: 0x11},
	OpMactM:       {name: "MACT-", format: Format1, macFamily: true, opcodeA: 0x12, opcodeB: 0x13},
	OpShift:       {name: "SHIFT", format: Format1, macFamily: true, opcodeA: 0x14, opcodeB: 0x15},
	OpMpyShift:    {name: "MPYSHIFT", format: Format1, macFamily: true, opcodeA: 0x16, opcodeB: 0x17},
	OpMpyShiftMac: {name: "MPYSHIFTMAC", format: Format1, macFamily: true, opcodeA: 0x18, opcodeB: 0x19},
}

// Ops returns every operation kind in a stable order.
func Ops() []Op {
	out := make([]Op, 0, int(numOps))
	for op := Op(0); op < numOps; op++ {
		out = append(out, op)
	}
	return out
}

// MacFamily reports whether the operation uses the MAC datapath (and so
// takes an accumulator selector and writes the MAC result to Dest).
func (op Op) MacFamily() bool { return opTable[op].macFamily }

// Format returns the operation's encoding format.
func (op Op) Format() Format { return opTable[op].format }

// Mnemonic returns the bare mnemonic stem ("MAC+", "LD", ...).
func (op Op) Mnemonic() string { return opTable[op].name }

// UsesSourceRegs reports whether the instruction reads RegA/RegB.
func (op Op) UsesSourceRegs() bool { return opTable[op].macFamily }

// WritesDest reports whether the instruction writes a destination
// register.
func (op Op) WritesDest() bool {
	switch op {
	case OpNop, OpOut:
		return false
	}
	return true
}

// Instr is one decoded (or to-be-encoded) instruction, plus template
// annotations used by the self-test program generator: RndImm marks the
// immediate as "filled from LFSR1 each iteration" and MaskRegs marks the
// register fields as "XOR-masked with LFSR2 each iteration".
type Instr struct {
	Op      Op
	Acc     Acc   // meaningful only for MAC-family ops
	RA      uint8 // Format 1: first source (also shift amount register)
	RB      uint8 // Format 1: second source
	RD      uint8 // destination register
	Src     uint8 // Format 3/4 source register
	Imm     uint8 // Format 2 immediate
	Comment string

	RndImm   bool // template: immediate comes from LFSR1
	MaskRegs bool // template: register fields XOR LFSR2
}

// opcode returns the 5-bit opcode for the instruction.
func (i Instr) opcode() uint32 {
	info := opTable[i.Op]
	if info.macFamily && i.Acc == AccB {
		return info.opcodeB
	}
	return info.opcodeA
}

// Encode packs the instruction into its 17-bit binary form (template
// annotations are not represented in the encoding; the template
// architecture resolves them before the bits reach the core).
func (i Instr) Encode() uint32 {
	op := i.opcode() << 12
	switch opTable[i.Op].format {
	case Format1:
		return op | uint32(i.RA&0xF)<<8 | uint32(i.RB&0xF)<<4 | uint32(i.RD&0xF)
	case Format2:
		return op | uint32(i.Imm)<<4 | uint32(i.RD&0xF)
	case Format3:
		return op | uint32(i.Src&0xF)<<4
	case Format4:
		return op | uint32(i.Src&0xF)<<4 | uint32(i.RD&0xF)
	}
	panic("isa: unknown format")
}

// opcodeIndex maps 5-bit opcodes back to (Op, Acc).
var opcodeIndex = func() map[uint32]struct {
	op  Op
	acc Acc
} {
	m := make(map[uint32]struct {
		op  Op
		acc Acc
	})
	for op := Op(0); op < numOps; op++ {
		info := opTable[op]
		m[info.opcodeA] = struct {
			op  Op
			acc Acc
		}{op, AccA}
		if info.macFamily {
			m[info.opcodeB] = struct {
				op  Op
				acc Acc
			}{op, AccB}
		}
	}
	return m
}()

// Decode unpacks a 17-bit word. Unassigned opcodes return an error (the
// hardware would treat them as traps for the template architecture).
func Decode(word uint32) (Instr, error) {
	if word >= 1<<Width {
		return Instr{}, fmt.Errorf("isa: word %#x exceeds %d bits", word, Width)
	}
	oc := word >> 12 & 0x1F
	entry, ok := opcodeIndex[oc]
	if !ok {
		return Instr{}, fmt.Errorf("isa: unassigned opcode %#05b", oc)
	}
	i := Instr{Op: entry.op, Acc: entry.acc}
	switch opTable[i.Op].format {
	case Format1:
		i.RA = uint8(word >> 8 & 0xF)
		i.RB = uint8(word >> 4 & 0xF)
		i.RD = uint8(word & 0xF)
	case Format2:
		i.Imm = uint8(word >> 4 & 0xFF)
		i.RD = uint8(word & 0xF)
	case Format3:
		i.Src = uint8(word >> 4 & 0xF)
	case Format4:
		i.Src = uint8(word >> 4 & 0xF)
		i.RD = uint8(word & 0xF)
	}
	return i, nil
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	info := opTable[i.Op]
	mn := info.name
	if info.macFamily {
		// Insert the accumulator letter before a trailing +/- sign:
		// MAC+ on AccB renders as MACB+.
		if strings.HasSuffix(mn, "+") || strings.HasSuffix(mn, "-") {
			mn = mn[:len(mn)-1] + i.Acc.String() + mn[len(mn)-1:]
		} else {
			mn += i.Acc.String()
		}
	}
	switch info.format {
	case Format1:
		if i.Op == OpNop {
			return mn
		}
		return fmt.Sprintf("%s R%d,R%d,R%d", mn, i.RA, i.RB, i.RD)
	case Format2:
		if i.RndImm || i.Op == OpLdRnd {
			return fmt.Sprintf("%s RND,R%d", mn, i.RD)
		}
		return fmt.Sprintf("%s %#02x,R%d", mn, i.Imm, i.RD)
	case Format3:
		return fmt.Sprintf("%s R%d", mn, i.Src)
	case Format4:
		return fmt.Sprintf("%s R%d,R%d", mn, i.Src, i.RD)
	}
	panic("isa: unknown format")
}

// mnemonicIndex maps rendered mnemonics (with accumulator letters) back
// to (Op, Acc) for the assembler.
var mnemonicIndex = func() map[string]struct {
	op  Op
	acc Acc
} {
	m := make(map[string]struct {
		op  Op
		acc Acc
	})
	add := func(s string, op Op, acc Acc) {
		m[s] = struct {
			op  Op
			acc Acc
		}{op, acc}
	}
	for op := Op(0); op < numOps; op++ {
		info := opTable[op]
		if !info.macFamily {
			add(info.name, op, AccA)
			continue
		}
		for _, acc := range []Acc{AccA, AccB} {
			mn := info.name
			if strings.HasSuffix(mn, "+") || strings.HasSuffix(mn, "-") {
				mn = mn[:len(mn)-1] + acc.String() + mn[len(mn)-1:]
			} else {
				mn += acc.String()
			}
			add(mn, op, acc)
		}
	}
	return m
}()

// Parse assembles one line ("MACB+ R6,R5,R7", "LD 0x70,R3",
// "LD RND,R1", "OUT R2"). Comments start with "//" or ";".
func Parse(line string) (Instr, error) {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return Instr{}, fmt.Errorf("isa: empty line")
	}
	fields := strings.Fields(line)
	mn := strings.ToUpper(fields[0])
	entry, ok := mnemonicIndex[mn]
	if !ok {
		return Instr{}, fmt.Errorf("isa: unknown mnemonic %q", fields[0])
	}
	i := Instr{Op: entry.op, Acc: entry.acc}
	var operands []string
	if len(fields) > 1 {
		operands = strings.Split(strings.Join(fields[1:], ""), ",")
	}
	reg := func(s string) (uint8, error) {
		s = strings.ToUpper(strings.TrimSpace(s))
		if !strings.HasPrefix(s, "R") {
			return 0, fmt.Errorf("isa: bad register %q", s)
		}
		v, err := strconv.Atoi(s[1:])
		if err != nil || v < 0 || v >= NumRegs {
			return 0, fmt.Errorf("isa: bad register %q", s)
		}
		return uint8(v), nil
	}
	need := func(n int) error {
		if len(operands) != n {
			return fmt.Errorf("isa: %s needs %d operands, got %d", mn, n, len(operands))
		}
		return nil
	}
	var err error
	switch opTable[i.Op].format {
	case Format1:
		if i.Op == OpNop {
			if err := need(0); err != nil {
				return Instr{}, err
			}
			return i, nil
		}
		if err := need(3); err != nil {
			return Instr{}, err
		}
		if i.RA, err = reg(operands[0]); err != nil {
			return Instr{}, err
		}
		if i.RB, err = reg(operands[1]); err != nil {
			return Instr{}, err
		}
		if i.RD, err = reg(operands[2]); err != nil {
			return Instr{}, err
		}
	case Format2:
		if err := need(2); err != nil {
			return Instr{}, err
		}
		val := strings.TrimSpace(operands[0])
		switch {
		case strings.EqualFold(val, "RND"):
			i.RndImm = true
			if i.Op == OpLdi {
				i.Op = OpLdRnd
			}
		case len(val) >= 2 && val[0] == '"' && val[len(val)-1] == '"':
			// Quoted binary immediate, the paper's Figure 7 style:
			// LD "01110000",R3.
			v, err := strconv.ParseUint(val[1:len(val)-1], 2, 8)
			if err != nil {
				return Instr{}, fmt.Errorf("isa: bad binary immediate %q", val)
			}
			i.Imm = uint8(v)
		default:
			v, err := strconv.ParseUint(strings.ToLower(val), 0, 16)
			if err != nil || v > 0xFF {
				return Instr{}, fmt.Errorf("isa: bad immediate %q", operands[0])
			}
			i.Imm = uint8(v)
		}
		if i.RD, err = reg(operands[1]); err != nil {
			return Instr{}, err
		}
	case Format3:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		if i.Src, err = reg(operands[0]); err != nil {
			return Instr{}, err
		}
	case Format4:
		if err := need(2); err != nil {
			return Instr{}, err
		}
		if i.Src, err = reg(operands[0]); err != nil {
			return Instr{}, err
		}
		if i.RD, err = reg(operands[1]); err != nil {
			return Instr{}, err
		}
	}
	return i, nil
}

// Assemble parses a multi-line program, skipping blank and comment-only
// lines. Errors carry 1-based line numbers.
func Assemble(src string) ([]Instr, error) {
	var prog []Instr
	for ln, line := range strings.Split(src, "\n") {
		stripped := line
		if i := strings.Index(stripped, "//"); i >= 0 {
			stripped = stripped[:i]
		}
		if i := strings.Index(stripped, ";"); i >= 0 {
			stripped = stripped[:i]
		}
		if strings.TrimSpace(stripped) == "" {
			continue
		}
		in, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}

// Disassemble renders a program with one instruction per line, with
// binary encodings in the style of the paper's Figure 7.
func Disassemble(prog []Instr) string {
	var sb strings.Builder
	for _, in := range prog {
		fmt.Fprintf(&sb, "%017b  %s", in.Encode(), in.String())
		if in.Comment != "" {
			fmt.Fprintf(&sb, "  // %s", in.Comment)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
