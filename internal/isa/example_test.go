package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// ExampleAssemble assembles a fragment of the paper's Figure-7 program
// and prints it with binary encodings.
func ExampleAssemble() {
	prog, err := isa.Assemble(`
		LD RND,R1       // template load: immediate from LFSR1
		LD RND,R0
		NOP
		MPYB R0,R1,R2   // randomize accB
		NOP
		OUT R2
	`)
	if err != nil {
		panic(err)
	}
	fmt.Print(isa.Disassemble(prog))
	// Output:
	// 00111000000000001  LDRND RND,R1
	// 00111000000000000  LDRND RND,R0
	// 00000000000000000  NOP
	// 01001000000010010  MPYB R0,R1,R2
	// 00000000000000000  NOP
	// 00001000000100000  OUT R2
}
