package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

func fastOpts() Options {
	return Options{RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, MaxRetries: 4}
}

// TestRetryOn503: transient server trouble is absorbed by the backoff
// loop and the call eventually succeeds.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" {
			t.Errorf("path %s, want /v1/meta", r.URL.Path)
		}
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.Errf(api.CodeUnavailable, true, "warming up"))
			return
		}
		_ = json.NewEncoder(w).Encode(api.Meta{Service: "sbstd", APIVersion: api.Version})
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	m, err := c.Meta(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Service != "sbstd" || calls.Load() != 3 {
		t.Fatalf("meta %+v after %d calls, want success on the 3rd", m, calls.Load())
	}
}

// TestNoRetryOnContractErrors: 4xx answers — even retryable 409
// envelopes like job_not_finished — surface immediately; polling policy
// belongs to the caller, not the transport.
func TestNoRetryOnContractErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(api.Errf(api.CodeJobNotFinished, true, "job job-1 is running"))
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	_, err := c.Result(context.Background(), "job-1")
	var ae *api.Error
	if !api.AsError(err, &ae) || ae.Code != api.CodeJobNotFinished || !ae.Retryable {
		t.Fatalf("409 surfaced as %v, want job_not_finished envelope", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a contract error, want exactly 1", calls.Load())
	}
}

// TestUnknownKindSurfaces: the 422 envelope keeps its code across the
// wire so tools can distinguish contract skew from bad input.
func TestUnknownKindSurfaces(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(api.Errf(api.CodeUnknownKind, false, "api: unknown kind: job kind \"warp\""))
	}))
	defer srv.Close()
	_, err := New(srv.URL, fastOpts()).SubmitJob(context.Background(), api.JobSpec{Kind: "warp"})
	var ae *api.Error
	if !api.AsError(err, &ae) || ae.Code != api.CodeUnknownKind || ae.Retryable {
		t.Fatalf("422 surfaced as %v", err)
	}
}

// TestAcquireLease204: "no work right now" is a nil lease, not an error.
func TestAcquireLease204(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	l, err := New(srv.URL, fastOpts()).AcquireLease(context.Background(), "w1")
	if err != nil || l != nil {
		t.Fatalf("204 acquire = (%+v, %v), want (nil, nil)", l, err)
	}
}

// TestTransportErrorsRetryThenFail: a dead coordinator costs
// 1+MaxRetries attempts, then the last transport error surfaces.
func TestTransportErrorsRetryThenFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens anymore

	c := New(srv.URL, Options{RetryBase: time.Millisecond, RetryMax: time.Millisecond, MaxRetries: 2})
	start := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("call against a closed server succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ran far past its budget")
	}
}

// TestWaitResultPolls: WaitResult absorbs job_not_finished conflicts
// and returns the result once the job lands.
func TestWaitResultPolls(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(api.Errf(api.CodeJobNotFinished, true, "still running"))
			return
		}
		_ = json.NewEncoder(w).Encode(api.JobResult{Coverage: 0.9, Faults: 10})
	}))
	defer srv.Close()
	res, err := New(srv.URL, fastOpts()).WaitResult(context.Background(), "job-1", time.Millisecond)
	if err != nil || res.Coverage != 0.9 {
		t.Fatalf("WaitResult = (%+v, %v)", res, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d polls, want 3", calls.Load())
	}
}

// TestRetryAfterHonored: a Retry-After hint stretches the backoff.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.Errf(api.CodeUnavailable, true, "busy"))
			return
		}
		_ = json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	defer srv.Close()
	start := time.Now()
	if _, err := New(srv.URL, fastOpts()).Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 900*time.Millisecond {
		t.Fatalf("second attempt after %v, want the Retry-After second honored", d)
	}
}

// TestRetryDelayPrefersServerHint pins the replacement semantics: a
// Retry-After hint IS the delay — not a floor under the exponential
// backoff, not an addend on top of it, and not clamped by RetryMax.
func TestRetryDelayPrefersServerHint(t *testing.T) {
	c := New("http://coordinator", Options{RetryBase: time.Second, RetryMax: 8 * time.Second})
	if d := c.retryDelay(3, 50*time.Millisecond); d != 50*time.Millisecond {
		t.Fatalf("hinted delay %v, want exactly the 50ms Retry-After", d)
	}
	if d := c.retryDelay(5, 10*time.Second); d != 10*time.Second {
		t.Fatalf("hinted delay %v, want the hint even beyond RetryMax", d)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		if d := c.retryDelay(attempt, 0); d <= 0 || d > 8*time.Second {
			t.Fatalf("unhinted attempt %d: backoff %v out of range", attempt, d)
		}
	}
}

// TestRetryAfterOverridesLongBackoff is the load-shed flow: the client
// is configured with a long backoff, the coordinator sheds with a
// 1-second Retry-After, and the retry happens on the server's schedule
// — seconds before the configured backoff would have fired.
func TestRetryAfterOverridesLongBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.Errf(api.CodeUnavailable, true, "shedding load"))
			return
		}
		_ = json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	defer srv.Close()

	c := New(srv.URL, Options{RetryBase: 30 * time.Second, RetryMax: 30 * time.Second, MaxRetries: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	if d < 900*time.Millisecond || d > 5*time.Second {
		t.Fatalf("retried after %v, want ~1s (the hint), not the 30s backoff", d)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2", calls.Load())
	}
}
