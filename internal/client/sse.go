package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

var (
	ctrFollowEvents     = obs.Default().Counter("client.follow.events")
	ctrFollowReconnects = obs.Default().Counter("client.follow.reconnects")
)

// traceKey carries a campaign trace ID through a client context; calls
// made under it send the ID as an X-Trace-Id request header, so the
// coordinator's access path and the caller's NDJSON trace share one ID.
type traceKey struct{}

// WithTraceID returns a context whose client calls carry the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Follow consumes GET /v1/jobs/{id}/events — the job's Server-Sent
// Events stream — from just after sequence number `after` (0 = from the
// beginning) until the terminal result frame, calling fn (when non-nil)
// for every event including the terminal one. It returns the job's
// result exactly as the polled /result route would: the JobResult on
// success, a *api.Error with CodeJobFailed on job failure.
//
// A dropped connection resumes via Last-Event-ID from the last frame
// seen. Consecutive connection failures beyond MaxRetries abort;
// receiving any event resets the budget.
func (c *Client) Follow(ctx context.Context, jobID string, after int64, fn func(api.JobEvent)) (*api.JobResult, error) {
	// The streaming exchange must outlive Options.HTTP's overall request
	// timeout (30s would sever every long campaign), so Follow uses its
	// own client sharing the configured transport; lifetime is governed
	// by ctx alone.
	stream := &http.Client{Transport: c.opts.HTTP.Transport}
	fails := 0
	for {
		got, res, err := c.followOnce(ctx, stream, jobID, &after, fn)
		if res != nil || (err != nil && !retryableFollow(err)) {
			return res, err
		}
		if got {
			fails = 0
		} else {
			fails++
			if fails > c.opts.MaxRetries {
				return nil, fmt.Errorf("client: follow %s: %d consecutive failed connections (last: %v)", jobID, fails, err)
			}
			ctrRetries.Add(1)
		}
		ctrFollowReconnects.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.backoff(fails + 1)):
		}
	}
}

// followOnce runs a single streaming connection. It reports whether any
// event arrived, and returns a non-nil result (or terminal error) only
// when the stream reached its result frame.
func (c *Client) followOnce(ctx context.Context, stream *http.Client, jobID string,
	after *int64, fn func(api.JobEvent)) (gotEvent bool, res *api.JobResult, err error) {

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+api.Prefix+"/jobs/"+jobID+"/events", nil)
	if err != nil {
		return false, nil, fmt.Errorf("client: follow %s: %w", jobID, err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if *after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(*after, 10))
	}
	if id := traceIDFrom(ctx); id != "" {
		req.Header.Set("X-Trace-Id", id)
	}
	resp, err := stream.Do(req)
	if err != nil {
		return false, nil, fmt.Errorf("client: follow %s: %w", jobID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			return false, nil, &e
		}
		return false, nil, fmt.Errorf("client: follow %s: HTTP %d: %s", jobID, resp.StatusCode, firstLine(data))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() == 0 {
				continue // keepalive or id/event-only frame
			}
			var ev api.JobEvent
			if uerr := json.Unmarshal([]byte(data.String()), &ev); uerr != nil {
				return gotEvent, nil, fmt.Errorf("client: follow %s: bad event payload: %w", jobID, uerr)
			}
			data.Reset()
			gotEvent = true
			ctrFollowEvents.Add(1)
			if ev.Seq > *after {
				*after = ev.Seq
			}
			if fn != nil {
				fn(ev)
			}
			if ev.Type == api.JobEventResult {
				if ev.State == api.JobFailed {
					return true, nil, api.Errf(api.CodeJobFailed, false, "%s", ev.Error)
				}
				return true, ev.Result, nil
			}
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/comment lines — Seq rides inside the payload.
		}
	}
	if ctx.Err() != nil {
		return gotEvent, nil, ctx.Err()
	}
	// Server closed without a result frame (restart, shed, broker lag):
	// reconnect and resume from the last sequence seen.
	return gotEvent, nil, sc.Err()
}

// retryableFollow reports whether Follow may reconnect after err: any
// transport-level trouble (err == nil or unrecognized) qualifies;
// context ends and non-retryable contract errors do not.
func retryableFollow(err error) bool {
	if err == nil {
		return true
	}
	if err == context.Canceled || err == context.DeadlineExceeded {
		return false
	}
	var ae *api.Error
	if api.AsError(err, &ae) {
		return ae.Retryable
	}
	return true
}
