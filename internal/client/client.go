// Package client is the shared /v1 HTTP client for sbstd: one typed,
// retrying wrapper used by the worker fleet, the CLI tools and the
// tests, so every caller speaks the same contract (internal/api) with
// the same backoff discipline instead of hand-rolling http.Get loops.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
)

var (
	ctrRequests = obs.Default().Counter("client.requests")
	ctrRetries  = obs.Default().Counter("client.retries")
)

// Options configure New.
type Options struct {
	// HTTP is the underlying transport (default: a client with a 30s
	// overall request timeout).
	HTTP *http.Client
	// MaxRetries bounds retransmissions per call beyond the first
	// attempt (default 4). Only transport errors, 5xx responses and
	// retryable error envelopes are retried; a 4xx contract error never
	// is.
	MaxRetries int
	// RetryBase/RetryMax shape the exponential backoff between attempts
	// (defaults 100ms / 3s, doubling per attempt with jitter from the
	// upper half of the window — the same discipline as the queue).
	RetryBase time.Duration
	RetryMax  time.Duration
}

// Client talks to one coordinator. Safe for concurrent use.
type Client struct {
	base string
	opts Options

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client for the coordinator at baseURL (with or without
// a trailing slash; the /v1 prefix is appended per call).
func New(baseURL string, opts Options) *Client {
	if opts.HTTP == nil {
		opts.HTTP = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 4
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 3 * time.Second
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		opts: opts,
		rng:  rand.New(rand.NewSource(1)),
	}
}

// Meta fetches the coordinator's capabilities document.
func (c *Client) Meta(ctx context.Context) (*api.Meta, error) {
	var m api.Meta
	if _, err := c.do(ctx, http.MethodGet, "/meta", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health fetches liveness and occupancy.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// SubmitJob enqueues a campaign.
func (c *Client) SubmitJob(ctx context.Context, spec api.JobSpec) (*api.Job, error) {
	var j api.Job
	if _, err := c.do(ctx, http.MethodPost, "/jobs", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job's state and progress.
func (c *Client) Job(ctx context.Context, id string) (*api.Job, error) {
	var j api.Job
	if _, err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]api.Job, error) {
	var l api.JobList
	if _, err := c.do(ctx, http.MethodGet, "/jobs", nil, &l); err != nil {
		return nil, err
	}
	return l.Jobs, nil
}

// ListOptions filter and page a ListJobs walk.
type ListOptions struct {
	// Kind/State, when non-zero, restrict the listing server-side.
	Kind  api.JobKind
	State api.JobState
	// PageSize is the per-request limit (default 50).
	PageSize int
}

// ListJobs walks the job listing page by page (GET /v1/jobs with
// cursor pagination), calling fn for each job in submission order.
// Return false from fn to stop early. One coordinator round-trip per
// PageSize jobs.
func (c *Client) ListJobs(ctx context.Context, opts ListOptions, fn func(api.Job) bool) error {
	size := opts.PageSize
	if size <= 0 {
		size = 50
	}
	after := ""
	for {
		q := url.Values{}
		q.Set("limit", strconv.Itoa(size))
		if after != "" {
			q.Set("after", after)
		}
		if opts.Kind != "" {
			q.Set("kind", string(opts.Kind))
		}
		if opts.State != "" {
			q.Set("state", string(opts.State))
		}
		var l api.JobList
		if _, err := c.do(ctx, http.MethodGet, "/jobs?"+q.Encode(), nil, &l); err != nil {
			return err
		}
		for _, j := range l.Jobs {
			if !fn(j) {
				return nil
			}
		}
		if l.NextAfter == "" {
			return nil
		}
		after = l.NextAfter
	}
}

// SubmitFaultSim enqueues a fault-simulation campaign on a design.
func (c *Client) SubmitFaultSim(ctx context.Context, design string, vectors api.VectorSource) (*api.Job, error) {
	return c.SubmitJob(ctx, api.JobSpec{Kind: api.JobFaultSim, Design: design, Vectors: vectors})
}

// SubmitMatrix enqueues a campaign-matrix job (designs × schemes).
func (c *Client) SubmitMatrix(ctx context.Context, m api.MatrixSpec) (*api.Job, error) {
	return c.SubmitJob(ctx, api.JobSpec{Kind: api.JobCampaignMatrix, Matrix: &m})
}

// SubmitOnline enqueues an online_burst job for a design.
func (c *Client) SubmitOnline(ctx context.Context, design string, vectors api.VectorSource, o api.OnlineSpec) (*api.Job, error) {
	return c.SubmitJob(ctx, api.JobSpec{Kind: api.JobOnlineBurst, Design: design, Vectors: vectors, Online: &o})
}

// SubmitGA enqueues a ga_search job: the coordinator evolves a
// self-test program for the design and reports the best genome.
func (c *Client) SubmitGA(ctx context.Context, design string, g api.GaSpec) (*api.Job, error) {
	return c.SubmitJob(ctx, api.JobSpec{Kind: api.JobGaSearch, Design: design, Ga: &g})
}

// Result fetches a terminal job's result. While the job is still
// running the coordinator answers 409 job_not_finished — surfaced as a
// retryable *api.Error, which is NOT retried internally (polling policy
// belongs to the caller; see WaitResult).
func (c *Client) Result(ctx context.Context, id string) (*api.JobResult, error) {
	var r api.JobResult
	if _, err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WaitResult polls until the job reaches a terminal state, the result
// is served, or ctx ends.
func (c *Client) WaitResult(ctx context.Context, id string, poll time.Duration) (*api.JobResult, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		res, err := c.Result(ctx, id)
		var ae *api.Error
		if err == nil || !api.AsError(err, &ae) || ae.Code != api.CodeJobNotFinished {
			return res, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// AcquireLease asks for a work unit. (nil, nil) means no work is
// available right now (the coordinator answered 204).
func (c *Client) AcquireLease(ctx context.Context, workerID string) (*api.Lease, error) {
	var l api.Lease
	status, err := c.do(ctx, http.MethodPost, "/leases", api.LeaseRequest{WorkerID: workerID}, &l)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &l, nil
}

// HeartbeatLease extends a lease and reports unit progress.
func (c *Client) HeartbeatLease(ctx context.Context, leaseID string, hb api.Heartbeat) (*api.HeartbeatAck, error) {
	var ack api.HeartbeatAck
	if _, err := c.do(ctx, http.MethodPost, "/leases/"+leaseID+"/heartbeat", hb, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// CompleteLease uploads a finished unit's detection bitmaps.
func (c *Client) CompleteLease(ctx context.Context, leaseID string, res *api.UnitResult) error {
	_, err := c.do(ctx, http.MethodPost, "/leases/"+leaseID+"/result", res, nil)
	return err
}

// FailLease reports a unit the worker could not finish.
func (c *Client) FailLease(ctx context.Context, leaseID string, f api.LeaseFailure) error {
	_, err := c.do(ctx, http.MethodPost, "/leases/"+leaseID+"/fail", f, nil)
	return err
}

// do runs one API call with the retry/backoff loop: transport errors,
// 5xx responses and retryable envelopes are retried up to MaxRetries
// (honoring Retry-After when the server sends one); contract errors
// (4xx, including retryable 409s like job_not_finished and lease_gone)
// return immediately as *api.Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := c.once(ctx, method, path, in, out)
		if err == nil {
			return status, nil
		}
		lastErr = err
		if !retryableCall(status, err) || attempt >= c.opts.MaxRetries {
			return status, err
		}
		ctrRetries.Add(1)
		delay := c.retryDelay(attempt+1, retryAfter)
		select {
		case <-ctx.Done():
			return status, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		case <-time.After(delay):
		}
	}
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, method, path string, in, out any) (status int, retryAfter time.Duration, err error) {
	ctrRequests.Add(1)
	// Chaos point: a flaky link between worker and coordinator — the
	// request fails (or stalls) before reaching the wire, and the retry
	// loop must absorb it.
	if f := chaos.Maybe("client.request"); f != nil {
		f.Sleep(ctx)
		if ierr := f.Err(); ierr != nil {
			return 0, 0, fmt.Errorf("client: %s %s: %w", method, path, ierr)
		}
	}
	var body io.Reader
	if in != nil {
		data, merr := json.Marshal(in)
		if merr != nil {
			return 0, 0, fmt.Errorf("client: marshal %s %s: %w", method, path, merr)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+api.Prefix+path, body)
	if err != nil {
		return 0, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := traceIDFrom(ctx); id != "" {
		req.Header.Set("X-Trace-Id", id)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))

	if resp.StatusCode >= 400 || (resp.StatusCode >= 300 && resp.StatusCode != http.StatusNoContent) {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			return resp.StatusCode, retryAfter, &e
		}
		return resp.StatusCode, retryAfter,
			fmt.Errorf("client: %s %s: HTTP %d: %s", method, path, resp.StatusCode, firstLine(data))
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if rerr != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("client: read %s %s: %w", method, path, rerr)
		}
		// A job_failed envelope rides on HTTP 200 (the request itself
		// succeeded; the job didn't) — surface it as the error it is
		// instead of decoding a zero-valued result.
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Code != "" && e.Message != "" {
			return resp.StatusCode, retryAfter, &e
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("client: decode %s %s: %w", method, path, err)
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// retryableCall decides whether the retry loop may re-send: transport
// failures (status 0) and server-side trouble (5xx, or an envelope the
// server marked retryable on a 5xx) qualify; 4xx contract answers do
// not — a job_not_finished 409 is the caller's polling signal, not a
// transport fault.
func retryableCall(status int, err error) bool {
	if status == 0 {
		return true
	}
	if status >= 500 {
		var ae *api.Error
		if api.AsError(err, &ae) {
			return ae.Retryable
		}
		return true
	}
	return false
}

// retryDelay picks the wait before re-sending attempt N. A server that
// sent Retry-After (503 load shedding, queue-full, drain) knows its own
// recovery horizon better than our exponential guess does: its hint is
// THE delay, not a floor under an ever-growing backoff — retrying a
// shedding coordinator in 5s as asked beats sitting out a 3s-capped
// backoff that ignores it, and equally beats stacking the two. Without
// a hint the usual exponential backoff applies.
func (c *Client) retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	return c.backoff(attempt)
}

// backoff is the queue's retry formula: base doubled per attempt,
// capped, with jitter from the upper half of the window.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d)/2+1))
}

func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func firstLine(data []byte) string {
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
