package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/api"
	"repro/internal/bist"
	"repro/internal/chaos"
	"repro/internal/designs"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
)

// ExecConfig configures the standard executor.
type ExecConfig struct {
	// Workers is the default fault-simulation shard count for jobs that
	// leave Spec.Workers at zero (0 = all cores).
	Workers int
	// Sink receives each campaign's event stream.
	Sink obs.Sink
}

// The default metrics-driven self-test program is generated once on
// first use; built designs live in the designCache (designcache.go).
var (
	defProgOnce sync.Once
	defProg     *selftest.Program
)

// SharedCore exposes the default campaign fixture: the gate-level DSP
// core and its collapsed fault list. It is now a view over the design
// cache — GetDesign(designs.DefaultID) — kept because the distributed
// end-to-end tests and the bench use it as the serial oracle; new code
// should resolve designs by ID through GetDesign instead.
func SharedCore() (*dspgate.Core, []fault.Fault, error) {
	d, err := GetDesign(designs.DefaultID)
	if err != nil {
		return nil, nil, err
	}
	return d.Core, d.Faults, nil
}

// specNDetect resolves a spec's effective n-detect target: zero for
// plain campaigns, the spec's value (defaulted to the paper's n=5)
// for n_detect campaigns. Coordinator and workers must share this
// defaulting for unit results to merge bit-identically.
func specNDetect(spec JobSpec) int {
	if spec.Kind != JobNDetect {
		return 0
	}
	if spec.NDetect < 2 {
		return 5
	}
	return spec.NDetect
}

// NewExecutor returns the production Executor: it resolves the spec's
// design through the registry cache and runs every job kind against
// it, sharding fault simulation through Simulate.
func NewExecutor(cfg ExecConfig) Executor {
	return func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		// Chaos point: an executor that crashes, stalls, or fails with a
		// retryable environment error before the campaign starts.
		if f := chaos.Maybe("engine.exec"); f != nil {
			f.PanicNow()
			f.Sleep(ctx)
			if ierr := f.Err(); ierr != nil {
				return nil, fmt.Errorf("%w: %v", ErrTransient, ierr)
			}
		}
		if spec.Kind == JobCampaignMatrix {
			return runMatrix(ctx, spec, update, func(ctx context.Context, cell JobSpec, d *designs.Design, _ int, update func(Progress)) (*JobResult, error) {
				vecs, err := resolveVectors(d, cell.Vectors)
				if err != nil {
					return nil, err
				}
				return runFaultSim(ctx, cfg, d, cell, vecs, update)
			})
		}
		d, err := GetDesign(spec.Design)
		if err != nil {
			return nil, err
		}
		switch spec.Kind {
		case JobFaultSim, JobNDetect:
			vecs, err := resolveVectors(d, spec.Vectors)
			if err != nil {
				return nil, err
			}
			return runFaultSim(ctx, cfg, d, spec, vecs, update)
		case JobSeqATPG:
			return runSeqATPG(ctx, cfg, d, spec, update)
		case JobExperiment:
			return runExperiment(ctx, cfg, d, spec, update)
		case JobOnlineBurst:
			return runOnlineBurst(ctx, d, spec, update)
		case JobGaSearch:
			return runGaSearch(ctx, d, spec, update, localGaEvaluator(cfg, d))
		default:
			return nil, fmt.Errorf("engine: unknown job kind %q", spec.Kind)
		}
	}
}

// resolveVectors expands a VectorSource into the stimulus stream for a
// design. BIST vectors come from the 17-bit LFSR generator on the DSP
// core (bit-compatible with the paper's published coverage numbers)
// and from a width-matched LFSR on everything else. Program and
// self-test stimulus execute on the DSP template architecture, so they
// are refused for designs without the instruction port.
func resolveVectors(d *designs.Design, src VectorSource) (fault.Vectors, error) {
	switch src.Kind {
	case api.VecBIST:
		if d.InstructionDriven() {
			return bist.PseudorandomVectors(src.Count, uint64(src.Seed)), nil
		}
		return designs.PseudorandomVectors(len(d.Netlist.Inputs()), src.Count, uint64(src.Seed)), nil
	case api.VecProgram:
		if !d.InstructionDriven() {
			return nil, fmt.Errorf("engine: design %s has no instruction port; program stimulus needs the dsp design", d.ID)
		}
		prog, err := isa.Assemble(src.Program)
		if err != nil {
			return nil, err
		}
		iters := src.Iterations
		if iters <= 0 {
			iters = 1000
		}
		return selftest.Expand(&selftest.Program{Loop: prog},
			selftest.ExpandOptions{
				Iterations: iters, Seed1: uint64(src.Seed), Seed2: uint64(src.Seed2),
				Taps1: src.Taps, ReseedEvery: src.ReseedEvery, Reseeds: src.Reseeds,
			}), nil
	case api.VecSelfTest:
		if !d.InstructionDriven() {
			return nil, fmt.Errorf("engine: design %s has no instruction port; selftest stimulus needs the dsp design", d.ID)
		}
		prog := generatedProgram(src)
		iters := src.Iterations
		if iters <= 0 {
			iters = 1000
		}
		return selftest.Expand(prog,
			selftest.ExpandOptions{
				Iterations: iters, Seed1: uint64(src.Seed), Seed2: uint64(src.Seed2),
				Taps1: src.Taps, ReseedEvery: src.ReseedEvery, Reseeds: src.Reseeds,
			}), nil
	default:
		return nil, fmt.Errorf("engine: unknown vector source %q", src.Kind)
	}
}

// generatedProgram runs the metrics-driven generator. The default
// configuration is generated once and shared; explicit CTrials/OGoodRuns
// produce a fresh program.
func generatedProgram(src VectorSource) *selftest.Program {
	if src.CTrials == 0 && src.OGoodRuns == 0 {
		defProgOnce.Do(func() {
			eng := metrics.NewEngine(metrics.Config{CTrials: 8000, OGoodRuns: 6, Seed: 1})
			defProg, _ = selftest.NewGenerator(eng).Generate()
		})
		return defProg
	}
	cfg := metrics.Config{CTrials: src.CTrials, OGoodRuns: src.OGoodRuns, Seed: 1}
	if cfg.CTrials <= 0 {
		cfg.CTrials = 8000
	}
	if cfg.OGoodRuns <= 0 {
		cfg.OGoodRuns = 6
	}
	prog, _ := selftest.NewGenerator(metrics.NewEngine(cfg)).Generate()
	return prog
}

func runFaultSim(ctx context.Context, cfg ExecConfig, d *designs.Design,
	spec JobSpec, vecs fault.Vectors, update func(Progress)) (*JobResult, error) {

	ndet := specNDetect(spec)
	workers := spec.Workers
	if workers == 0 {
		workers = cfg.Workers
	}
	total := vecs.Len()
	res, err := Simulate(d.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{
			Faults:     d.Faults,
			NDetect:    ndet,
			SegmentLen: spec.SegmentLen,
			Ctx:        ctx,
			Sink:       cfg.Sink,
			Progress: func(cycles, detected, remaining int) {
				update(Progress{
					Done: cycles, Total: total,
					Detected: detected, Remaining: remaining,
					Coverage: safeRatio(detected, detected+remaining),
				})
			},
		},
		Workers:    workers,
		DesignHash: d.Hash,
	})
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		return nil, fmt.Errorf("%w: %d/%d vectors applied", ErrInterrupted, res.Cycles, total)
	}
	jr := &JobResult{
		Faults:   len(res.Faults),
		Detected: res.Detected(),
		Cycles:   res.Cycles,
		Coverage: res.Coverage(),
	}
	if ndet > 1 {
		jr.NDetect = ndet
		jr.NDetectCoverage = res.NDetectCoverage(ndet)
	}
	return jr, nil
}

func runSeqATPG(ctx context.Context, cfg ExecConfig, d *designs.Design,
	spec JobSpec, update func(Progress)) (*JobResult, error) {

	frames := spec.Frames
	if frames <= 0 {
		frames = 3
	}
	sample := spec.SampleEvery
	if sample <= 0 {
		sample = 40
	}
	backtracks := spec.MaxBacktracks
	if backtracks <= 0 {
		backtracks = 300
	}
	res, err := bist.SequentialATPGOpts(d.Netlist, bist.SeqATPGOptions{
		Frames: frames, SampleEvery: sample, MaxBacktracks: backtracks,
		Sink: cfg.Sink,
		Progress: func(done, total int) {
			update(Progress{Done: done, Total: total})
			// The ATPG loop has no cancellation hook; a drain deadline
			// surfaces as an interrupted job at the next fault boundary.
			if ctx != nil && ctx.Err() != nil {
				panic(ErrInterrupted)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Faults:     res.TotalFaults,
		Coverage:   res.Coverage(),
		TestsFound: res.TestsFound,
		Untestable: res.Untestable,
		Aborted:    res.Aborted,
	}, nil
}

// runExperiment is the composite campaign behind the paper's headline
// comparison: fault-simulate the requested stimulus and a raw-LFSR BIST
// baseline of the same length, reporting both coverages side by side.
func runExperiment(ctx context.Context, cfg ExecConfig, d *designs.Design,
	spec JobSpec, update func(Progress)) (*JobResult, error) {

	vecs, err := resolveVectors(d, spec.Vectors)
	if err != nil {
		return nil, err
	}
	sub := spec
	sub.Kind = JobFaultSim
	main, err := runFaultSim(ctx, cfg, d, sub, vecs, update)
	if err != nil {
		return nil, err
	}
	seed := spec.Vectors.Seed
	if seed == 0 {
		seed = 1
	}
	base := sub
	base.Vectors = VectorSource{Kind: api.VecBIST, Count: vecs.Len(), Seed: seed}
	baselineVecs, err := resolveVectors(d, base.Vectors)
	if err != nil {
		return nil, err
	}
	baseline, err := runFaultSim(ctx, cfg, d, base, baselineVecs, update)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Faults:   main.Faults,
		Detected: main.Detected,
		Cycles:   main.Cycles,
		Coverage: main.Coverage,
		Sub: map[string]*JobResult{
			"stimulus":      main,
			"bist_baseline": baseline,
		},
	}, nil
}

// cellRunner executes one matrix cell — a fault_sim campaign on one
// design with one stimulus scheme. The local executor simulates
// in-process; the coordinator registers the cell on the lease pool.
type cellRunner func(ctx context.Context, cell JobSpec, d *designs.Design, scheme int, update func(Progress)) (*JobResult, error)

// matrixCellScale is the per-cell width of a matrix job's progress
// axis: cell i occupies [i*scale, (i+1)*scale) of Progress.Done, so a
// dashboard sees smooth forward motion across cells of very different
// vector counts.
const matrixCellScale = 1000

// runMatrix fans spec.Matrix's designs × schemes cross product into
// independent fault-sim campaigns (designs-major order), rolling the
// per-cell results into the JobResult.Matrix table. Cells run through
// the given runner sequentially; the distributed runner fans each cell
// out over the worker fleet, so the fleet-level parallelism lives
// inside the cells.
func runMatrix(ctx context.Context, spec JobSpec, update func(Progress), run cellRunner) (*JobResult, error) {
	m := spec.Matrix
	if m == nil || len(m.Designs) == 0 || len(m.Schemes) == 0 {
		return nil, fmt.Errorf("engine: campaign_matrix job needs matrix designs and schemes")
	}
	nCells := len(m.Designs) * len(m.Schemes)
	out := &JobResult{Matrix: make([]api.MatrixCell, 0, nCells)}
	ci := 0
	for _, id := range m.Designs {
		d, err := GetDesign(id)
		if err != nil {
			return nil, err
		}
		for si, scheme := range m.Schemes {
			cell := spec
			cell.Kind = JobFaultSim
			cell.Design = d.ID
			cell.Vectors = scheme
			cell.Matrix = nil
			base := ci * matrixCellScale
			r, err := run(ctx, cell, d, si, func(p Progress) {
				frac := 0
				if p.Total > 0 {
					frac = p.Done * matrixCellScale / p.Total
				}
				update(Progress{
					Done: base + frac, Total: nCells * matrixCellScale,
					Detected: out.Detected + p.Detected, Remaining: p.Remaining,
					Coverage: safeRatio(out.Detected+p.Detected, out.Faults+len(d.Faults)),
				})
			})
			if err != nil {
				return nil, fmt.Errorf("engine: matrix cell %s × %s[%d]: %w", d.ID, scheme.Kind, si, err)
			}
			out.Matrix = append(out.Matrix, api.MatrixCell{
				Design: d.ID, Scheme: scheme.Kind, SchemeIndex: si,
				Faults: r.Faults, Detected: r.Detected, Cycles: r.Cycles, Coverage: r.Coverage,
			})
			out.Faults += r.Faults
			out.Detected += r.Detected
			out.Cycles += r.Cycles
			ci++
			update(Progress{
				Done: ci * matrixCellScale, Total: nCells * matrixCellScale,
				Detected: out.Detected,
				Coverage: safeRatio(out.Detected, out.Faults),
			})
		}
	}
	out.Coverage = safeRatio(out.Detected, out.Faults)
	return out, nil
}
