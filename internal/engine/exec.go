package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/api"
	"repro/internal/bist"
	"repro/internal/chaos"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
)

// ExecConfig configures the standard executor.
type ExecConfig struct {
	// Workers is the default fault-simulation shard count for jobs that
	// leave Spec.Workers at zero (0 = all cores).
	Workers int
	// Sink receives each campaign's event stream.
	Sink obs.Sink
}

// Shared, immutable campaign fixtures: the gate-level core (and its
// collapsed fault list) is built once per process, and the default
// metrics-driven self-test program is generated once on first use.
var (
	coreOnce   sync.Once
	coreVal    *dspgate.Core
	coreFaults []fault.Fault
	coreErr    error

	defProgOnce sync.Once
	defProg     *selftest.Program
)

func sharedCore() (*dspgate.Core, []fault.Fault, error) {
	coreOnce.Do(func() {
		coreVal, coreErr = dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
		if coreErr == nil {
			coreFaults, _ = fault.Collapse(coreVal.Netlist, fault.AllFaults(coreVal.Netlist))
		}
	})
	return coreVal, coreFaults, coreErr
}

// SharedCore exposes the process-wide campaign fixture: the gate-level
// DSP core and its collapsed fault list, built once on first use. The
// worker binary runs its units against this exact fixture, and the
// distributed end-to-end tests use it as the serial oracle, so both
// sides of the lease protocol agree on fault indices by construction.
func SharedCore() (*dspgate.Core, []fault.Fault, error) { return sharedCore() }

// specNDetect resolves a spec's effective n-detect target: zero for
// plain campaigns, the spec's value (defaulted to the paper's n=5)
// for n_detect campaigns. Coordinator and workers must share this
// defaulting for unit results to merge bit-identically.
func specNDetect(spec JobSpec) int {
	if spec.Kind != JobNDetect {
		return 0
	}
	if spec.NDetect < 2 {
		return 5
	}
	return spec.NDetect
}

// NewExecutor returns the production Executor: it runs every job kind
// against the gate-level DSP core, sharding fault simulation through
// Simulate.
func NewExecutor(cfg ExecConfig) Executor {
	return func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		// Chaos point: an executor that crashes, stalls, or fails with a
		// retryable environment error before the campaign starts.
		if f := chaos.Maybe("engine.exec"); f != nil {
			f.PanicNow()
			f.Sleep(ctx)
			if ierr := f.Err(); ierr != nil {
				return nil, fmt.Errorf("%w: %v", ErrTransient, ierr)
			}
		}
		core, faults, err := sharedCore()
		if err != nil {
			return nil, err
		}
		switch spec.Kind {
		case JobFaultSim, JobNDetect:
			vecs, err := resolveVectors(spec.Vectors)
			if err != nil {
				return nil, err
			}
			return runFaultSim(ctx, cfg, core, faults, spec, vecs, update)
		case JobSeqATPG:
			return runSeqATPG(ctx, cfg, core, spec, update)
		case JobExperiment:
			return runExperiment(ctx, cfg, core, faults, spec, update)
		default:
			return nil, fmt.Errorf("engine: unknown job kind %q", spec.Kind)
		}
	}
}

// resolveVectors expands a VectorSource into the stimulus stream.
func resolveVectors(src VectorSource) (fault.Vectors, error) {
	switch src.Kind {
	case api.VecBIST:
		return bist.PseudorandomVectors(src.Count, uint64(src.Seed)), nil
	case api.VecProgram:
		prog, err := isa.Assemble(src.Program)
		if err != nil {
			return nil, err
		}
		iters := src.Iterations
		if iters <= 0 {
			iters = 1000
		}
		return selftest.Expand(&selftest.Program{Loop: prog},
			selftest.ExpandOptions{Iterations: iters, Seed1: uint64(src.Seed)}), nil
	case api.VecSelfTest:
		prog := generatedProgram(src)
		iters := src.Iterations
		if iters <= 0 {
			iters = 1000
		}
		return selftest.Expand(prog,
			selftest.ExpandOptions{Iterations: iters, Seed1: uint64(src.Seed)}), nil
	default:
		return nil, fmt.Errorf("engine: unknown vector source %q", src.Kind)
	}
}

// generatedProgram runs the metrics-driven generator. The default
// configuration is generated once and shared; explicit CTrials/OGoodRuns
// produce a fresh program.
func generatedProgram(src VectorSource) *selftest.Program {
	if src.CTrials == 0 && src.OGoodRuns == 0 {
		defProgOnce.Do(func() {
			eng := metrics.NewEngine(metrics.Config{CTrials: 8000, OGoodRuns: 6, Seed: 1})
			defProg, _ = selftest.NewGenerator(eng).Generate()
		})
		return defProg
	}
	cfg := metrics.Config{CTrials: src.CTrials, OGoodRuns: src.OGoodRuns, Seed: 1}
	if cfg.CTrials <= 0 {
		cfg.CTrials = 8000
	}
	if cfg.OGoodRuns <= 0 {
		cfg.OGoodRuns = 6
	}
	prog, _ := selftest.NewGenerator(metrics.NewEngine(cfg)).Generate()
	return prog
}

func runFaultSim(ctx context.Context, cfg ExecConfig, core *dspgate.Core, faults []fault.Fault,
	spec JobSpec, vecs fault.Vectors, update func(Progress)) (*JobResult, error) {

	ndet := specNDetect(spec)
	workers := spec.Workers
	if workers == 0 {
		workers = cfg.Workers
	}
	total := vecs.Len()
	res, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{
			Faults:     faults,
			NDetect:    ndet,
			SegmentLen: spec.SegmentLen,
			Ctx:        ctx,
			Sink:       cfg.Sink,
			Progress: func(cycles, detected, remaining int) {
				update(Progress{
					Done: cycles, Total: total,
					Detected: detected, Remaining: remaining,
					Coverage: safeRatio(detected, detected+remaining),
				})
			},
		},
		Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		return nil, fmt.Errorf("%w: %d/%d vectors applied", ErrInterrupted, res.Cycles, total)
	}
	jr := &JobResult{
		Faults:   len(res.Faults),
		Detected: res.Detected(),
		Cycles:   res.Cycles,
		Coverage: res.Coverage(),
	}
	if ndet > 1 {
		jr.NDetect = ndet
		jr.NDetectCoverage = res.NDetectCoverage(ndet)
	}
	return jr, nil
}

func runSeqATPG(ctx context.Context, cfg ExecConfig, core *dspgate.Core,
	spec JobSpec, update func(Progress)) (*JobResult, error) {

	frames := spec.Frames
	if frames <= 0 {
		frames = 3
	}
	sample := spec.SampleEvery
	if sample <= 0 {
		sample = 40
	}
	backtracks := spec.MaxBacktracks
	if backtracks <= 0 {
		backtracks = 300
	}
	res, err := bist.SequentialATPGOpts(core.Netlist, bist.SeqATPGOptions{
		Frames: frames, SampleEvery: sample, MaxBacktracks: backtracks,
		Sink: cfg.Sink,
		Progress: func(done, total int) {
			update(Progress{Done: done, Total: total})
			// The ATPG loop has no cancellation hook; a drain deadline
			// surfaces as an interrupted job at the next fault boundary.
			if ctx != nil && ctx.Err() != nil {
				panic(ErrInterrupted)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Faults:     res.TotalFaults,
		Coverage:   res.Coverage(),
		TestsFound: res.TestsFound,
		Untestable: res.Untestable,
		Aborted:    res.Aborted,
	}, nil
}

// runExperiment is the composite campaign behind the paper's headline
// comparison: fault-simulate the requested stimulus and a raw-LFSR BIST
// baseline of the same length, reporting both coverages side by side.
func runExperiment(ctx context.Context, cfg ExecConfig, core *dspgate.Core, faults []fault.Fault,
	spec JobSpec, update func(Progress)) (*JobResult, error) {

	vecs, err := resolveVectors(spec.Vectors)
	if err != nil {
		return nil, err
	}
	sub := spec
	sub.Kind = JobFaultSim
	main, err := runFaultSim(ctx, cfg, core, faults, sub, vecs, update)
	if err != nil {
		return nil, err
	}
	seed := spec.Vectors.Seed
	if seed == 0 {
		seed = 1
	}
	baselineVecs := bist.PseudorandomVectors(vecs.Len(), uint64(seed))
	baseline, err := runFaultSim(ctx, cfg, core, faults, sub, baselineVecs, update)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Faults:   main.Faults,
		Detected: main.Detected,
		Cycles:   main.Cycles,
		Coverage: main.Coverage,
		Sub: map[string]*JobResult{
			"stimulus":      main,
			"bist_baseline": baseline,
		},
	}, nil
}
