package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bist"
	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/obs"
)

// armChaos arms a chaos spec for one test, disarming on cleanup.
func armChaos(t *testing.T, spec string, seed int64) {
	t.Helper()
	cfg, err := chaos.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Arm(cfg)
	t.Cleanup(chaos.Disarm)
}

func counter(name string) int64 { return obs.Default().Counter(name).Load() }

// referenceResult computes the oracle result on the serial reference
// kernel with chaos disarmed.
func referenceResult(t *testing.T, faults []fault.Fault, vecs fault.Vectors) *fault.Result {
	t.Helper()
	core, _ := testCore(t)
	res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{
		Faults: faults, Kernel: fault.KernelReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestShadowSampleSize(t *testing.T) {
	cases := []struct {
		k      int
		sample float64
		want   int
	}{
		{1000, 0, 5},    // default 0.005
		{100, 0, 1},     // default floored at one fault
		{1000, 1, 1000}, // full check
		{1000, 0.01, 10},
		{1000, -1, 0}, // disabled
		{0, 1, 0},
		{3, 0.5, 2},
	}
	for _, c := range cases {
		if got := shadowSampleSize(c.k, c.sample); got != c.want {
			t.Errorf("shadowSampleSize(%d, %v) = %d, want %d", c.k, c.sample, got, c.want)
		}
	}
}

func TestShadowIndicesDeterministic(t *testing.T) {
	a := shadowIndices(500, 20, 42, 3)
	b := shadowIndices(500, 20, 42, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed/shard produced different samples")
	}
	c := shadowIndices(500, 20, 42, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different shards produced identical samples")
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("sample not sorted/unique at %d: %v", i, a)
		}
	}
}

// TestShadowCleanRunMatchesReference: with no chaos, a full-sample
// shadow check neither changes the result nor reports divergence.
func TestShadowCleanRunMatchesReference(t *testing.T) {
	core, faults := testCore(t)
	if len(faults) > 800 {
		faults = faults[:800]
	}
	vecs := bist.PseudorandomVectors(300, 1)
	want := referenceResult(t, faults, vecs)

	before := counter("kernel.divergence")
	res, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions:   fault.SimOptions{Faults: faults},
		Workers:      2,
		ShadowSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.DetectedAt, want.DetectedAt) {
		t.Fatal("clean shadow-checked run diverges from reference")
	}
	if got := counter("kernel.divergence") - before; got != 0 {
		t.Fatalf("clean run recorded %d divergences", got)
	}
}

// TestShadowCatchesCorruptedKernel is the core cross-checking
// guarantee: with chaos corrupting compiled-kernel batch words, the
// full-sample shadow check must detect the divergence, quarantine the
// compiled kernel for the shard, and fall back to the reference kernel
// so the merged result is still bit-identical to the oracle.
func TestShadowCatchesCorruptedKernel(t *testing.T) {
	core, faults := testCore(t)
	if len(faults) > 800 {
		faults = faults[:800]
	}
	vecs := bist.PseudorandomVectors(300, 1)
	want := referenceResult(t, faults, vecs)

	armChaos(t, "logic.eventsim.diff=corrupt:times=100", 42)
	divBefore := counter("kernel.divergence")
	injBefore := counter("chaos.injected")
	diagDir := t.TempDir()
	res, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions:   fault.SimOptions{Faults: faults},
		Workers:      2,
		ShadowSample: 1,
		DiagDir:      diagDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter("chaos.injected") - injBefore; got != 100 {
		t.Fatalf("chaos.injected advanced by %d, want 100", got)
	}
	if got := counter("kernel.divergence") - divBefore; got < 1 {
		t.Fatal("corrupted kernel batches produced no recorded divergence")
	}
	if !reflect.DeepEqual(res.DetectedAt, want.DetectedAt) {
		t.Fatal("result after quarantine fallback diverges from reference oracle")
	}
	if res.Coverage() != want.Coverage() {
		t.Fatalf("coverage %v after fallback, want %v", res.Coverage(), want.Coverage())
	}
}

// TestShardPanicRecoveredAndRetried: an injected shard panic must not
// crash the process or fail the campaign — the shard supervisor
// retries it and the merged result stays bit-identical.
func TestShardPanicRecoveredAndRetried(t *testing.T) {
	core, faults := testCore(t)
	if len(faults) > 600 {
		faults = faults[:600]
	}
	vecs := bist.PseudorandomVectors(200, 1)
	want := referenceResult(t, faults, vecs)

	armChaos(t, "engine.shard=panic:times=1", 7)
	retriesBefore := counter("engine.shard_retries")
	res, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{Faults: faults},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter("engine.shard_retries") - retriesBefore; got != 1 {
		t.Fatalf("engine.shard_retries advanced by %d, want 1", got)
	}
	if !reflect.DeepEqual(res.DetectedAt, want.DetectedAt) {
		t.Fatal("post-retry result diverges from reference")
	}
}

// TestShardPanicBudgetExhausted: a shard that panics on every attempt
// surfaces as an error (with the panic message), never as a process
// crash.
func TestShardPanicBudgetExhausted(t *testing.T) {
	core, faults := testCore(t)
	if len(faults) > 200 {
		faults = faults[:200]
	}
	vecs := bist.PseudorandomVectors(100, 1)
	armChaos(t, "fault.segment=panic:times=0", 7)
	_, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{Faults: faults},
		Workers:    2,
	})
	if err == nil || !strings.Contains(err.Error(), "chaos: injected panic") {
		t.Fatalf("err = %v, want shard panic error", err)
	}
}
