package engine

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

func publishN(b *JobEventBroker, jobID string, n int) {
	for i := 0; i < n; i++ {
		b.Publish(api.JobEvent{Type: api.JobEventProgress, JobID: jobID})
	}
}

func TestBrokerReplayAndSeq(t *testing.T) {
	b := NewJobEventBroker()
	publishN(b, "j1", 5)

	replay, _, cancel := b.Subscribe("j1", 0)
	cancel()
	if len(replay) != 5 {
		t.Fatalf("replay %d events, want 5", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq != int64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}

	replay, _, cancel = b.Subscribe("j1", 3)
	cancel()
	if len(replay) != 2 || replay[0].Seq != 4 || replay[1].Seq != 5 {
		t.Fatalf("resume replay %+v, want seq 4,5", replay)
	}

	// Jobs do not share sequences.
	b.Publish(api.JobEvent{Type: api.JobEventState, JobID: "j2"})
	replay, _, cancel = b.Subscribe("j2", 0)
	cancel()
	if len(replay) != 1 || replay[0].Seq != 1 {
		t.Fatalf("j2 replay %+v, want one event with seq 1", replay)
	}
}

func TestBrokerLiveDelivery(t *testing.T) {
	b := NewJobEventBroker()
	replay, ch, cancel := b.Subscribe("j1", 0)
	defer cancel()
	if len(replay) != 0 {
		t.Fatalf("unexpected replay %+v", replay)
	}
	b.Publish(api.JobEvent{Type: api.JobEventProgress, JobID: "j1"})
	select {
	case ev := <-ch:
		if ev.Seq != 1 || ev.Type != api.JobEventProgress {
			t.Fatalf("live event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no live delivery")
	}
}

// TestBrokerSlowSubscriber pins the lag contract: a subscriber that
// stops draining is disconnected (channel closed), and re-subscribing
// from its last seen sequence recovers everything from the ring.
func TestBrokerSlowSubscriber(t *testing.T) {
	b := NewJobEventBroker()
	_, ch, cancel := b.Subscribe("j1", 0)
	defer cancel()

	publishN(b, "j1", b.chanBuf+10) // overflow the subscriber buffer

	seen := int64(0)
	closed := false
	for !closed {
		select {
		case ev, open := <-ch:
			if !open {
				closed = true
				break
			}
			seen = ev.Seq
		case <-time.After(time.Second):
			t.Fatal("channel neither delivered nor closed")
		}
	}
	if seen != int64(b.chanBuf) {
		t.Fatalf("drained %d events before close, want %d", seen, b.chanBuf)
	}
	replay, _, cancel2 := b.Subscribe("j1", seen)
	cancel2()
	if len(replay) != 10 || replay[len(replay)-1].Seq != int64(b.chanBuf+10) {
		t.Fatalf("recovery replay %d events ending at %d, want 10 ending at %d",
			len(replay), replay[len(replay)-1].Seq, b.chanBuf+10)
	}
}

func TestBrokerRingTrim(t *testing.T) {
	b := NewJobEventBroker()
	publishN(b, "j1", b.ring+88)
	replay, _, cancel := b.Subscribe("j1", 0)
	cancel()
	if len(replay) != b.ring {
		t.Fatalf("replay %d events, want ring size %d", len(replay), b.ring)
	}
	if replay[0].Seq != 89 || replay[len(replay)-1].Seq != int64(b.ring+88) {
		t.Fatalf("ring window [%d,%d], want [89,%d]", replay[0].Seq, replay[len(replay)-1].Seq, b.ring+88)
	}
}

func TestBrokerNilSafe(t *testing.T) {
	var b *JobEventBroker
	b.Publish(api.JobEvent{JobID: "x"}) // must not panic
	b.Forget("x")
}

// jsonEq compares two values by canonical JSON (JobResult carries a
// map of sub-results, so it is not directly comparable).
func jsonEq(t *testing.T, a, b any) bool {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(aj) == string(bj)
}

// sseFrame is one parsed frame off the wire.
type sseFrame struct {
	id    string
	event string
	data  api.JobEvent
}

// readSSE parses frames until the terminal result frame or EOF.
func readSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	var data string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				if err := json.Unmarshal([]byte(data), &cur.data); err != nil {
					t.Fatalf("bad SSE payload %q: %v", data, err)
				}
				frames = append(frames, cur)
				if cur.data.Type == api.JobEventResult {
					return frames
				}
			}
			cur, data = sseFrame{}, ""
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// testEventServer wires one broker through queue and server.
func testEventServer(t *testing.T, exec Executor) (*httptest.Server, *Queue, *JobEventBroker) {
	t.Helper()
	broker := NewJobEventBroker()
	q := NewQueue(QueueOptions{Workers: 1, Exec: exec, Events: broker})
	q.Start()
	srv := httptest.NewServer(NewServerWith(q, ServerOptions{Events: broker}))
	t.Cleanup(srv.Close)
	return srv, q, broker
}

// TestServerSSELifecycle follows a job over the wire: the stream must
// deliver ordered state → progress → result frames, and the terminal
// frame must carry the same result as the polled route.
func TestServerSSELifecycle(t *testing.T) {
	srv, _, _ := testEventServer(t, func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		update(Progress{Done: 10, Total: 20, Coverage: 0.5})
		update(Progress{Done: 20, Total: 20, Coverage: 0.9})
		return &JobResult{Coverage: 0.9, Cycles: 20, Faults: 7, Detected: 6}, nil
	})

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":20}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	if job.Spec.TraceID == "" {
		t.Fatal("submit minted no trace ID")
	}

	resp, err = http.Get(srv.URL + api.Prefix + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frames := readSSE(t, resp.Body)
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want at least submitted-state + result", len(frames))
	}
	if frames[0].data.Type != api.JobEventState {
		t.Fatalf("first frame %+v, want a state event", frames[0].data)
	}
	lastSeq := int64(0)
	for _, f := range frames {
		if f.data.Seq <= lastSeq {
			t.Fatalf("sequence not increasing: %d after %d", f.data.Seq, lastSeq)
		}
		lastSeq = f.data.Seq
		if f.id != fmt.Sprint(f.data.Seq) {
			t.Fatalf("SSE id %q != payload seq %d", f.id, f.data.Seq)
		}
		if f.data.TraceID != job.Spec.TraceID {
			t.Fatalf("frame trace %q, want %q", f.data.TraceID, job.Spec.TraceID)
		}
	}
	final := frames[len(frames)-1].data
	if final.Type != api.JobEventResult || final.State != JobCompleted {
		t.Fatalf("terminal frame %+v", final)
	}

	var polled JobResult
	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &polled)
	if jsonEq(t, final.Result, polled) != true {
		t.Fatalf("SSE result %+v != polled result %+v", *final.Result, polled)
	}

	// Resume past the end: the synthesized terminal frame answers even
	// though the broker already delivered the stream once.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+api.Prefix+"/jobs/"+job.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(final.Seq))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames = readSSE(t, resp.Body)
	if len(frames) != 1 || frames[0].data.Type != api.JobEventResult {
		t.Fatalf("resume frames %+v, want exactly the terminal frame", frames)
	}
	if jsonEq(t, frames[0].data.Result, polled) != true {
		t.Fatalf("resumed result %+v != polled %+v", *frames[0].data.Result, polled)
	}
}

func TestServerSSEFailedJob(t *testing.T) {
	srv, _, _ := testEventServer(t, func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		return nil, fmt.Errorf("boom: synthetic failure")
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	resp, err = http.Get(srv.URL + api.Prefix + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSE(t, resp.Body)
	final := frames[len(frames)-1].data
	if final.Type != api.JobEventResult || final.State != JobFailed || !strings.Contains(final.Error, "boom") {
		t.Fatalf("terminal frame %+v, want failed state carrying the error", final)
	}
}

func TestServerSSEUnknownJob(t *testing.T) {
	srv, _, _ := testEventServer(t, nil)
	resp, err := http.Get(srv.URL + api.Prefix + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestServerMetricsEndpoint scrapes /v1/metrics and lints the output.
func TestServerMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})
	resp, err := http.Get(srv.URL + api.Prefix + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"sbst_queue_jobs{state=\"queued\"}", "# TYPE sbst_queue_jobs gauge"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if problems := obs.LintExposition(text); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
}
