package engine

import (
	"sync"

	"repro/internal/api"
)

// JobEventBroker is the fan-out hub behind GET /v1/jobs/{id}/events:
// the queue and lease pool publish JobEvents into a per-job ring, and
// each SSE subscriber gets a replay of what it missed plus a live
// channel. The ring bounds memory per job; a subscriber that falls
// further behind than its channel buffer is disconnected (its channel
// closed) and re-subscribes from its last seen sequence number — the
// same contract a dropped HTTP connection already forces.
type JobEventBroker struct {
	mu   sync.Mutex
	logs map[string]*jobEventLog
	// ring caps retained events per job (default 512).
	ring int
	// chanBuf is each subscriber's buffer (default 128).
	chanBuf int
}

type jobEventLog struct {
	nextSeq int64
	events  []api.JobEvent // trailing window; events[i].Seq is set
	subs    map[chan api.JobEvent]struct{}
}

// NewJobEventBroker builds a broker with default ring sizing.
func NewJobEventBroker() *JobEventBroker {
	return &JobEventBroker{logs: make(map[string]*jobEventLog), ring: 512, chanBuf: 128}
}

// Publish assigns the event's per-job sequence number, retains it in
// the ring, and fans it out, returning the assigned sequence (0 on a
// nil broker). Nil-safe, so publishing layers need no broker-wired
// check. Slow subscribers are dropped (channel closed), never blocked
// on — event publication sits on queue and lease-pool code paths that
// must not stall.
func (b *JobEventBroker) Publish(ev api.JobEvent) int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	l := b.logs[ev.JobID]
	if l == nil {
		l = &jobEventLog{nextSeq: 1, subs: make(map[chan api.JobEvent]struct{})}
		b.logs[ev.JobID] = l
	}
	ev.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, ev)
	if len(l.events) > b.ring {
		l.events = l.events[len(l.events)-b.ring:]
	}
	var dropped []chan api.JobEvent
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			dropped = append(dropped, ch)
		}
	}
	for _, ch := range dropped {
		delete(l.subs, ch)
		close(ch)
	}
	seq := ev.Seq
	b.mu.Unlock()
	return seq
}

// Seed inserts a recovered event preserving its recorded sequence
// number (journal replay at startup). Events must be seeded in
// ascending Seq order per job; the ring cap still applies. Live
// publication after seeding continues from max(seeded)+1.
func (b *JobEventBroker) Seed(ev api.JobEvent) {
	if b == nil || ev.Seq <= 0 {
		return
	}
	b.mu.Lock()
	l := b.logs[ev.JobID]
	if l == nil {
		l = &jobEventLog{nextSeq: 1, subs: make(map[chan api.JobEvent]struct{})}
		b.logs[ev.JobID] = l
	}
	if ev.Seq >= l.nextSeq {
		l.nextSeq = ev.Seq + 1
		l.events = append(l.events, ev)
		if len(l.events) > b.ring {
			l.events = l.events[len(l.events)-b.ring:]
		}
	}
	b.mu.Unlock()
}

// Advance bumps a job's next sequence number to at least seq+1 without
// publishing anything. Recovery uses it so sequence numbers stay
// monotonic across a restart even when the tail of the event history
// (async journal records lost in the crash, or records dropped by a
// checkpoint truncation) is gone: subscribers resuming with
// Last-Event-ID never see a number reused for a different event.
func (b *JobEventBroker) Advance(jobID string, seq int64) {
	if b == nil || seq <= 0 {
		return
	}
	b.mu.Lock()
	l := b.logs[jobID]
	if l == nil {
		l = &jobEventLog{nextSeq: 1, subs: make(map[chan api.JobEvent]struct{})}
		b.logs[jobID] = l
	}
	if seq+1 > l.nextSeq {
		l.nextSeq = seq + 1
	}
	b.mu.Unlock()
}

// Seqs returns the last assigned sequence number per job (0 entries
// omitted). Checkpointing persists this so SSE numbering survives
// journal truncation.
func (b *JobEventBroker) Seqs() map[string]int64 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.logs))
	for id, l := range b.logs {
		if l.nextSeq > 1 {
			out[id] = l.nextSeq - 1
		}
	}
	return out
}

// Subscribe returns the retained events with Seq > after, a live
// channel for everything published from now on, and a cancel func.
// The channel is closed by the broker if the subscriber lags; call
// cancel exactly once when done (it tolerates a broker-side close).
func (b *JobEventBroker) Subscribe(jobID string, after int64) ([]api.JobEvent, <-chan api.JobEvent, func()) {
	b.mu.Lock()
	l := b.logs[jobID]
	if l == nil {
		l = &jobEventLog{nextSeq: 1, subs: make(map[chan api.JobEvent]struct{})}
		b.logs[jobID] = l
	}
	var replay []api.JobEvent
	for _, ev := range l.events {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan api.JobEvent, b.chanBuf)
	l.subs[ch] = struct{}{}
	b.mu.Unlock()

	cancel := func() {
		b.mu.Lock()
		// Ownership of close() follows map membership: Publish deletes
		// before closing, so a cancelled-after-drop channel is left alone.
		if _, live := l.subs[ch]; live {
			delete(l.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return replay, ch, cancel
}

// Forget drops a job's ring and disconnects its subscribers (job
// eviction; subscribers see a closed channel and re-subscribe, finding
// an empty ring).
func (b *JobEventBroker) Forget(jobID string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if l := b.logs[jobID]; l != nil {
		for ch := range l.subs {
			delete(l.subs, ch)
			close(ch)
		}
		delete(b.logs, jobID)
	}
	b.mu.Unlock()
}
