package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/bist"
	"repro/internal/chaos"
	"repro/internal/fault"
)

// TestChaosCampaignEndToEnd is the acceptance run for the whole
// robustness stack. One armed chaos config injects, into a single
// queued campaign:
//
//   - a stalled executor (engine.exec delay ≫ StuckTimeout) → the
//     watchdog cancels it and the queue retries with backoff,
//   - a shard panic (engine.shard) → the shard supervisor recovers and
//     retries the shard,
//   - 50 corrupted compiled-kernel batch words (logic.eventsim.diff) →
//     the full-sample shadow check detects the divergence and falls
//     back to the reference kernel,
//   - a torn checkpoint write (engine.checkpoint.write shortwrite on
//     the drain-time checkpoint) → Restore salvages the previous
//     generation.
//
// Despite all of it the campaign completes with DetectedAt and
// Coverage bit-identical to the clean reference oracle, and every
// guardrail's counter has advanced.
func TestChaosCampaignEndToEnd(t *testing.T) {
	core, faults := testCore(t)
	if len(faults) > 400 {
		faults = faults[:400]
	}
	vecs := bist.PseudorandomVectors(200, 1)
	want := referenceResult(t, faults, vecs)

	seed := int64(42)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	spec := "engine.exec=delay:delay=4s:times=1," +
		"engine.shard=panic:times=1," +
		"logic.eventsim.diff=corrupt:times=50," +
		"engine.checkpoint.write=shortwrite:after=1:times=1"
	armChaos(t, spec, seed)

	before := map[string]int64{}
	for _, name := range []string{"chaos.injected", "kernel.divergence", "queue.retries",
		"engine.shard_retries", "queue.watchdog_trips", "queue.checkpoint_salvaged"} {
		before[name] = counter(name)
	}

	var mu sync.Mutex
	var captured *fault.Result
	exec := func(ctx context.Context, jspec JobSpec, update func(Progress)) (*JobResult, error) {
		if f := chaos.Maybe("engine.exec"); f != nil {
			f.PanicNow()
			f.Sleep(ctx)
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: context closed before simulation", ErrInterrupted)
		}
		res, err := Simulate(core.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: faults, Ctx: ctx,
				// Short pinned segments make the watchdog heartbeat (the
				// progress callback, wired exactly as the real executor
				// does) tick well inside StuckTimeout even under -race.
				SegmentLen: 32,
				Progress: func(cycles, detected, remaining int) {
					update(Progress{Done: cycles, Total: vecs.Len(),
						Detected: detected, Remaining: remaining})
				},
			},
			Workers:      2,
			ShadowSample: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransient, err)
		}
		if res.Interrupted {
			return nil, fmt.Errorf("%w: interrupted mid-campaign", ErrInterrupted)
		}
		mu.Lock()
		captured = res
		mu.Unlock()
		return &JobResult{
			Faults: len(res.Faults), Detected: res.Detected(),
			Cycles: res.Cycles, Coverage: res.Coverage(),
		}, nil
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	q := NewQueue(QueueOptions{
		Workers:      1,
		MaxAttempts:  4,
		RetryBase:    2 * time.Millisecond,
		StuckTimeout: time.Second,
		Checkpoint:   ckpt,
		Exec:         exec,
	})
	q.Start()
	job, err := q.Submit(specN(10))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, job.ID, JobCompleted)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Correctness despite chaos: the merged result is bit-identical to
	// the clean serial reference oracle.
	mu.Lock()
	res := captured
	mu.Unlock()
	if res == nil {
		t.Fatal("no result captured")
	}
	if !reflect.DeepEqual(res.DetectedAt, want.DetectedAt) {
		t.Fatal("campaign DetectedAt diverges from the clean reference oracle")
	}
	if got.Result == nil || got.Result.Coverage != want.Coverage() {
		t.Fatalf("job coverage %+v, want %v", got.Result, want.Coverage())
	}

	// Every guardrail fired and was counted.
	delta := func(name string) int64 { return counter(name) - before[name] }
	if d := delta("chaos.injected"); d != 53 {
		// 1 exec delay + 1 shard panic + 50 corrupt words + 1 torn write.
		t.Errorf("chaos.injected advanced by %d, want 53", d)
	}
	if delta("kernel.divergence") < 1 {
		t.Error("kernel.divergence never advanced: shadow check missed the corruption")
	}
	if delta("queue.retries") < 1 {
		t.Error("queue.retries never advanced: stuck executor was not retried")
	}
	if delta("engine.shard_retries") < 1 {
		t.Error("engine.shard_retries never advanced: shard panic was not recovered")
	}
	if delta("queue.watchdog_trips") < 1 {
		t.Error("queue.watchdog_trips never advanced: stall was not detected")
	}

	// The drain-time checkpoint was torn; restoring salvages the clean
	// previous generation and the completed result survives.
	q2 := NewQueue(QueueOptions{Exec: exec})
	if err := q2.Restore(ckpt); err != nil {
		t.Fatalf("restore after torn final checkpoint: %v", err)
	}
	if d := delta("queue.checkpoint_salvaged"); d != 1 {
		t.Errorf("queue.checkpoint_salvaged advanced by %d, want 1", d)
	}
	rj, ok := q2.Get(job.ID)
	if !ok || rj.State != JobCompleted || rj.Result == nil || rj.Result.Coverage != want.Coverage() {
		t.Fatalf("salvaged job %+v does not carry the completed result", rj)
	}
}
