package engine

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server exposes a Queue over HTTP:
//
//	POST /jobs              submit a JobSpec, 202 + the queued job
//	GET  /jobs              list jobs in submission order
//	GET  /jobs/{id}         one job's state and progress snapshot
//	GET  /jobs/{id}/result  the completed result (409 until terminal)
//	GET  /healthz           liveness + queue occupancy
//
// Error bodies are {"error": "..."} JSON. Submission answers 400 on a
// malformed or invalid spec and 503 while draining or when the bounded
// queue is full.
type Server struct {
	q   *Queue
	mux *http.ServeMux
}

// NewServer wraps a queue in the HTTP API.
func NewServer(q *Queue) *Server {
	s := &Server{q: q, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.get)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /healthz", s.health)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	job, err := s.q.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.q.Jobs()})
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	switch job.State {
	case JobCompleted:
		writeJSON(w, http.StatusOK, job.Result)
	case JobFailed:
		writeJSON(w, http.StatusOK, map[string]any{"error": job.Error, "state": job.State})
	default:
		writeJSON(w, http.StatusConflict, map[string]any{
			"state":    job.State,
			"progress": job.Progress,
		})
	}
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.q.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"jobs":   s.q.Counts(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
