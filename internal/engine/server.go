package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/designs"
	"repro/internal/obs"
)

var ctrServerShed = obs.Default().Counter("sbstd.shed")

// ServerOptions are the degradation knobs for the HTTP layer. The zero
// value disables them all, preserving NewServer's original behavior.
type ServerOptions struct {
	// RequestTimeout bounds each request's handler time; expired
	// requests answer 503 with a JSON error envelope. Zero disables.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served requests; excess load is
	// shed with 503 + Retry-After instead of queueing without bound.
	// Zero disables shedding.
	MaxInflight int
	// RetryAfter is the Retry-After hint on shed and queue-full
	// responses (default 5s).
	RetryAfter time.Duration
	// Pool enables the distributed-campaign lease endpoints: workers
	// pull work units from it and upload detection bitmaps back. Nil
	// runs a jobs-only (single-process) server.
	Pool *LeasePool
	// Events enables GET /v1/jobs/{id}/events, the SSE job event
	// stream. Wire the same broker into QueueOptions.Events and
	// PoolOptions.Events so all three publish into one sequence.
	Events *JobEventBroker
}

// Server exposes a Queue (and optionally a LeasePool) over the
// versioned /v1 HTTP API:
//
//	POST /v1/jobs                    submit a JobSpec, 202 + the queued job
//	GET  /v1/jobs                    list jobs in submission order
//	GET  /v1/jobs/{id}               one job's state and progress snapshot
//	GET  /v1/jobs/{id}/result        the completed result (409 until terminal)
//	GET  /v1/jobs/{id}/events        SSE stream of job events (Last-Event-ID resume)
//	GET  /v1/healthz                 liveness + queue and lease occupancy
//	GET  /v1/meta                    API capabilities document
//	GET  /v1/metrics                 Prometheus text-format metrics
//	POST /v1/leases                  acquire a work-unit lease (204 = no work)
//	POST /v1/leases/{id}/heartbeat   extend a lease, report unit progress
//	POST /v1/leases/{id}/result      upload a finished unit's bitmaps
//	POST /v1/leases/{id}/fail        report a unit the worker could not finish
//
// GET /v1/jobs supports cursor pagination (?limit=N&after=<job-id>)
// and kind/state filters; the response's next_after field is the
// cursor for the following page.
//
// The pre-/v1 job routes (POST/GET /jobs, GET /healthz, ...) — aliases
// that shipped with a Deprecation header for several releases — have
// been removed: they now answer 404 with a Link header
// (rel="successor-version") pointing at the /v1 route.
//
// Error bodies are api.Error envelopes — {"code","message","retryable"}
// plus a legacy "error" key for pre-/v1 clients. Submission answers 400
// on a malformed spec, 422 on an unknown job or vector kind or a
// sub-spec that does not match the job kind (spec_mismatch), and 503
// (with Retry-After) while draining or when the bounded queue is full.
// Under ServerOptions the server also sheds excess concurrent load and
// times out stuck requests, so a wedged campaign can not pile up
// connections until the daemon dies.
type Server struct {
	q        *Queue
	pool     *LeasePool
	opts     ServerOptions
	inflight chan struct{}
	handler  http.Handler
}

// NewServer wraps a queue in the HTTP API with no degradation limits.
func NewServer(q *Queue) *Server { return NewServerWith(q, ServerOptions{}) }

// NewServerWith wraps a queue in the HTTP API with the given
// degradation options.
func NewServerWith(q *Queue, opts ServerOptions) *Server {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Second
	}
	s := &Server{q: q, pool: opts.Pool, opts: opts}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	mux := http.NewServeMux()
	v1 := func(pattern string, h http.HandlerFunc) {
		method, path, _ := splitPattern(pattern)
		mux.HandleFunc(method+" "+api.Prefix+path, h)
	}
	// legacy tombstones the removed pre-/v1 alias: 404 with a Link
	// header naming the successor route. The aliases answered with a
	// Deprecation header for several releases before removal.
	legacy := func(pattern string) {
		method, path, _ := splitPattern(pattern)
		mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Link", fmt.Sprintf("<%s%s>; rel=%q", api.Prefix, path, "successor-version"))
			writeAPIErr(w, api.Errf(api.CodeNotFound, false,
				"the unversioned %s route was removed; use %s%s", path, api.Prefix, path))
		})
	}
	for _, route := range []struct {
		pattern string
		h       http.HandlerFunc
		removed bool
	}{
		{"POST /jobs", s.submit, true},
		{"GET /jobs", s.list, true},
		{"GET /jobs/{id}", s.get, true},
		{"GET /jobs/{id}/result", s.result, true},
		{"GET /healthz", s.health, true},
		{"GET /meta", s.meta, false},
		{"GET /metrics", s.metrics, false},
		{"POST /leases", s.leaseAcquire, false},
		{"POST /leases/{id}/heartbeat", s.leaseHeartbeat, false},
		{"POST /leases/{id}/result", s.leaseResult, false},
		{"POST /leases/{id}/fail", s.leaseFail, false},
	} {
		v1(route.pattern, route.h)
		if route.removed {
			legacy(route.pattern)
		}
	}
	// Chaos point: a request that stalls while being handled (wedged
	// campaign lookup, saturated disk) — inside the timeout handler and
	// the inflight accounting, so tests can drive the timeout and
	// shedding paths end to end.
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f := chaos.Maybe("sbstd.request"); f != nil {
			f.Sleep(r.Context())
		}
		mux.ServeHTTP(w, r)
	})
	s.handler = inner
	if opts.RequestTimeout > 0 {
		timeoutBody, _ := json.Marshal(api.Errf(api.CodeTimeout, true, "request timed out"))
		s.handler = http.TimeoutHandler(inner, opts.RequestTimeout, string(timeoutBody))
	}
	// The SSE stream lives outside the timeout wrapper: a follow is
	// long-lived by design, and http.TimeoutHandler's ResponseWriter
	// implements no Flusher. Load shedding in ServeHTTP still applies.
	outer := http.NewServeMux()
	outer.HandleFunc("GET "+api.Prefix+"/jobs/{id}/events", s.events)
	outer.Handle("/", s.handler)
	s.handler = outer
	return s
}

// splitPattern separates "METHOD /path" for route registration.
func splitPattern(pattern string) (method, path string, ok bool) {
	for i := range pattern {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	return "", pattern, false
}

// ServeHTTP implements http.Handler: load shedding first, then the
// (optionally time-bounded) API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			ctrServerShed.Add(1)
			s.retryAfter(w)
			writeAPIErr(w, api.Errf(api.CodeUnavailable, true, "server at capacity"))
			return
		}
	}
	s.handler.ServeHTTP(w, r)
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "bad job spec: %v", err))
		return
	}
	job, err := s.q.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		// Back-pressure, not failure: tell the client when to retry.
		s.retryAfter(w)
		writeAPIErr(w, api.Errf(api.CodeUnavailable, true, "%v", err))
	case errors.Is(err, api.ErrUnknownKind):
		// 422: the request parsed, but names a kind this server does not
		// implement — a contract mismatch, not a malformed payload.
		writeAPIErr(w, api.Errf(api.CodeUnknownKind, false, "%v", err))
	case errors.Is(err, api.ErrUnknownDesign):
		// 422: same contract-mismatch family — the design ID does not
		// resolve in this server's registry.
		writeAPIErr(w, api.Errf(api.CodeUnknownDesign, false, "%v", err))
	case errors.Is(err, api.ErrSpecMismatch):
		// 422: the spec parsed but carries a sub-spec (matrix, online,
		// ga) that does not belong to its kind.
		writeAPIErr(w, api.Errf(api.CodeSpecMismatch, false, "%v", err))
	case err != nil:
		writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "%v", err))
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

// list serves GET /v1/jobs: every job in submission order, with
// optional kind/state filters and cursor pagination. The cursor
// (?after=) is a job ID in the unfiltered submission order, so a page
// boundary stays stable while new jobs arrive; next_after in the
// response is the cursor for the following page and is absent on the
// last one.
func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	limit := 0
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "bad limit %q", v))
			return
		}
		limit = n
	}
	var kind api.JobKind
	if v := qp.Get("kind"); v != "" {
		kind = api.JobKind(v)
		if !kind.Valid() {
			writeAPIErr(w, api.Errf(api.CodeUnknownKind, false, "unknown job kind %q", v))
			return
		}
	}
	var state JobState
	if v := qp.Get("state"); v != "" {
		state = JobState(v)
		switch state {
		case JobQueued, JobRunning, JobCompleted, JobFailed:
		default:
			writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "unknown job state %q", v))
			return
		}
	}
	jobs := s.q.Jobs()
	if after := qp.Get("after"); after != "" {
		idx := -1
		for i := range jobs {
			if jobs[i].ID == after {
				idx = i
				break
			}
		}
		if idx < 0 {
			writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "unknown cursor %q", after))
			return
		}
		jobs = jobs[idx+1:]
	}
	out := api.JobList{Jobs: []Job{}}
	for i := range jobs {
		if kind != "" && jobs[i].Spec.Kind != kind {
			continue
		}
		if state != "" && jobs[i].State != state {
			continue
		}
		if limit > 0 && len(out.Jobs) == limit {
			// Another match exists beyond this page: hand out the cursor.
			out.NextAfter = out.Jobs[len(out.Jobs)-1].ID
			break
		}
		out.Jobs = append(out.Jobs, jobs[i])
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, api.Errf(api.CodeNotFound, false, "unknown job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// result serves a job's terminal outcome. The documented lifecycle:
// queued/running answer 409 job_not_finished (retryable — poll again),
// completed answers 200 with the JobResult, failed answers 200 with a
// job_failed envelope carrying the error.
func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, api.Errf(api.CodeNotFound, false, "unknown job %s", r.PathValue("id")))
		return
	}
	switch job.State {
	case JobCompleted:
		writeJSON(w, http.StatusOK, job.Result)
	case JobFailed:
		e := api.Errf(api.CodeJobFailed, false, "%s", job.Error)
		e.Detail = map[string]any{"state": job.State}
		writeAPIErr(w, e)
	default:
		e := api.Errf(api.CodeJobNotFinished, true, "job %s is %s; retry after it finishes", job.ID, job.State)
		e.Detail = map[string]any{"state": job.State, "progress": job.Progress}
		writeAPIErr(w, e)
	}
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	h := api.Health{Status: "ok", Jobs: s.q.Counts()}
	if s.q.Draining() {
		h.Status = "draining"
	}
	if s.pool != nil {
		c := s.pool.Counts()
		h.Leases = &c
	}
	writeJSON(w, http.StatusOK, h)
}

// meta is the capabilities document: what this server speaks, so
// clients and workers can verify compatibility before doing work.
func (s *Server) meta(w http.ResponseWriter, r *http.Request) {
	caps := []string{"jobs", "checkpoint", "metrics", "designs", "online", "ga", "list_pagination"}
	if s.pool != nil {
		caps = append(caps, "leases")
	}
	if s.opts.Events != nil {
		caps = append(caps, "events")
	}
	if s.q != nil && s.q.opts.Journal != nil {
		caps = append(caps, "journal")
	}
	writeJSON(w, http.StatusOK, api.Meta{
		Service:      "sbstd",
		APIVersion:   api.Version,
		Versions:     []string{api.Version},
		JobKinds:     api.JobKinds(),
		VectorKinds:  api.VectorKinds(),
		Capabilities: caps,
		Designs:      designs.Bundled(),
		Obs:          metaObs(),
	})
}

// ctrGateEvalsMeta reads the fault simulator's lifetime gate-eval count
// for the meta snapshot (same counter the bench reports through).
var ctrGateEvalsMeta = obs.Default().Counter("faultsim.gate_evals")

// metaObs assembles the /v1/meta observability summary.
func metaObs() *api.MetaObs {
	return &api.MetaObs{
		GateEvals:          ctrGateEvalsMeta.Load(),
		VectorsPerSec:      gaugeVectorsPerSec.Load(),
		HeartbeatP99Millis: histHeartbeatGap.Quantile(0.99) * 1000,
	}
}

// metrics serves the process-wide registry in the Prometheus text
// exposition format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// events serves GET /v1/jobs/{id}/events: the job's event stream as
// Server-Sent Events. Each frame's SSE id is the JobEvent's Seq;
// clients resume with Last-Event-ID (or ?after=N). The stream ends
// after the terminal result frame. A subscriber that lags behind the
// broker's buffer is transparently re-subscribed from its last frame.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.q.Get(id); !ok {
		writeAPIErr(w, api.Errf(api.CodeNotFound, false, "unknown job %s", id))
		return
	}
	if s.opts.Events == nil {
		writeAPIErr(w, api.Errf(api.CodeUnavailable, false, "this server runs without an event stream"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeAPIErr(w, api.Errf(api.CodeUnavailable, false, "connection does not support streaming"))
		return
	}
	last := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		last, _ = strconv.ParseInt(v, 10, 64)
	} else if v := r.URL.Query().Get("after"); v != "" {
		last, _ = strconv.ParseInt(v, 10, 64)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		replay, ch, cancel := s.opts.Events.Subscribe(id, last)
		for _, ev := range replay {
			if !writeSSE(w, ev) {
				cancel()
				return
			}
			last = ev.Seq
			if ev.Type == api.JobEventResult {
				fl.Flush()
				cancel()
				return
			}
		}
		// A job that went terminal before the broker saw it (restored
		// from a checkpoint, or its ring trimmed past the result frame)
		// will never publish again: synthesize the terminal frame from
		// the job snapshot — same Result pointer the polled route serves.
		if job, ok := s.q.Get(id); ok && (job.State == JobCompleted || job.State == JobFailed) {
			writeSSE(w, api.JobEvent{
				Seq: last + 1, Type: api.JobEventResult, JobID: id,
				TraceID: job.Spec.TraceID, State: job.State,
				Result: job.Result, Error: job.Error,
			})
			fl.Flush()
			cancel()
			return
		}
		fl.Flush()
	live:
		for {
			select {
			case <-r.Context().Done():
				cancel()
				return
			case <-keepalive.C:
				if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
					cancel()
					return
				}
				fl.Flush()
			case ev, open := <-ch:
				if !open {
					// Lagged out of the broker's buffer; re-subscribe and
					// replay what we missed.
					break live
				}
				if !writeSSE(w, ev) {
					cancel()
					return
				}
				fl.Flush()
				last = ev.Seq
				if ev.Type == api.JobEventResult {
					cancel()
					return
				}
			}
		}
		cancel()
	}
}

// writeSSE renders one SSE frame; false on a dead connection.
func writeSSE(w io.Writer, ev api.JobEvent) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err == nil
}

// leasePool gates the lease endpoints on distributed mode.
func (s *Server) leasePool(w http.ResponseWriter) *LeasePool {
	if s.pool == nil {
		writeAPIErr(w, api.Errf(api.CodeUnavailable, false, "this coordinator runs without a worker fleet"))
		return nil
	}
	return s.pool
}

func (s *Server) leaseAcquire(w http.ResponseWriter, r *http.Request) {
	p := s.leasePool(w)
	if p == nil {
		return
	}
	var req api.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "bad lease request: %v", err))
		return
	}
	l, err := p.Acquire(req)
	if err != nil {
		writeAnyErr(w, err)
		return
	}
	if l == nil {
		// No offerable unit right now: the worker idles and polls again.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, l)
}

func (s *Server) leaseHeartbeat(w http.ResponseWriter, r *http.Request) {
	p := s.leasePool(w)
	if p == nil {
		return
	}
	var hb api.Heartbeat
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "bad heartbeat: %v", err))
		return
	}
	ack, err := p.Heartbeat(r.PathValue("id"), hb)
	if err != nil {
		writeAnyErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (s *Server) leaseResult(w http.ResponseWriter, r *http.Request) {
	p := s.leasePool(w)
	if p == nil {
		return
	}
	var res api.UnitResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "bad unit result: %v", err))
		return
	}
	if err := p.Complete(r.PathValue("id"), &res); err != nil {
		writeAnyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) leaseFail(w http.ResponseWriter, r *http.Request) {
	p := s.leasePool(w)
	if p == nil {
		return
	}
	var f api.LeaseFailure
	if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
		writeAPIErr(w, api.Errf(api.CodeBadRequest, false, "bad failure report: %v", err))
		return
	}
	if err := p.Fail(r.PathValue("id"), f); err != nil {
		writeAnyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeAPIErr serves an error envelope at its code's canonical status.
func writeAPIErr(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, api.HTTPStatus(e.Code), e)
}

// writeAnyErr envelopes arbitrary errors: api.Error verbatim, anything
// else as an internal error.
func writeAnyErr(w http.ResponseWriter, err error) {
	var e *api.Error
	if errors.As(err, &e) {
		writeAPIErr(w, e)
		return
	}
	writeAPIErr(w, api.Errf(api.CodeInternal, false, "%v", err))
}
