package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

var ctrServerShed = obs.Default().Counter("sbstd.shed")

// ServerOptions are the degradation knobs for the HTTP layer. The zero
// value disables them all, preserving NewServer's original behavior.
type ServerOptions struct {
	// RequestTimeout bounds each request's handler time; expired
	// requests answer 503 with a JSON error body. Zero disables.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served requests; excess load is
	// shed with 503 + Retry-After instead of queueing without bound.
	// Zero disables shedding.
	MaxInflight int
	// RetryAfter is the Retry-After hint on shed and queue-full
	// responses (default 5s).
	RetryAfter time.Duration
}

// Server exposes a Queue over HTTP:
//
//	POST /jobs              submit a JobSpec, 202 + the queued job
//	GET  /jobs              list jobs in submission order
//	GET  /jobs/{id}         one job's state and progress snapshot
//	GET  /jobs/{id}/result  the completed result (409 until terminal)
//	GET  /healthz           liveness + queue occupancy
//
// Error bodies are {"error": "..."} JSON. Submission answers 400 on a
// malformed or invalid spec and 503 (with Retry-After) while draining
// or when the bounded queue is full. Under ServerOptions the server
// also sheds excess concurrent load and times out stuck requests, so a
// wedged campaign can not pile up connections until the daemon dies.
type Server struct {
	q        *Queue
	opts     ServerOptions
	inflight chan struct{}
	handler  http.Handler
}

// NewServer wraps a queue in the HTTP API with no degradation limits.
func NewServer(q *Queue) *Server { return NewServerWith(q, ServerOptions{}) }

// NewServerWith wraps a queue in the HTTP API with the given
// degradation options.
func NewServerWith(q *Queue, opts ServerOptions) *Server {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Second
	}
	s := &Server{q: q, opts: opts}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.get)
	mux.HandleFunc("GET /jobs/{id}/result", s.result)
	mux.HandleFunc("GET /healthz", s.health)
	// Chaos point: a request that stalls while being handled (wedged
	// campaign lookup, saturated disk) — inside the timeout handler and
	// the inflight accounting, so tests can drive the timeout and
	// shedding paths end to end.
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f := chaos.Maybe("sbstd.request"); f != nil {
			f.Sleep(r.Context())
		}
		mux.ServeHTTP(w, r)
	})
	s.handler = inner
	if opts.RequestTimeout > 0 {
		s.handler = http.TimeoutHandler(inner, opts.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	return s
}

// ServeHTTP implements http.Handler: load shedding first, then the
// (optionally time-bounded) API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			ctrServerShed.Add(1)
			s.retryAfter(w)
			writeErr(w, http.StatusServiceUnavailable, "server at capacity")
			return
		}
	}
	s.handler.ServeHTTP(w, r)
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	job, err := s.q.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		// Back-pressure, not failure: tell the client when to retry.
		s.retryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.q.Jobs()})
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	switch job.State {
	case JobCompleted:
		writeJSON(w, http.StatusOK, job.Result)
	case JobFailed:
		writeJSON(w, http.StatusOK, map[string]any{"error": job.Error, "state": job.State})
	default:
		writeJSON(w, http.StatusConflict, map[string]any{
			"state":    job.State,
			"progress": job.Progress,
		})
	}
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.q.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"jobs":   s.q.Counts(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
