package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bist"
	"repro/internal/fault"
)

// startTestWorkers runs n in-process workers against a pool: the same
// Acquire → RunWorkUnit → Complete loop cmd/sbst-worker executes, minus
// HTTP. Returns a stop function.
func startTestWorkers(t *testing.T, p *LeasePool, n int) func() {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		worker := string(rune('a' + i))
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l, err := p.Acquire(api.LeaseRequest{WorkerID: "test-worker-" + worker})
				if err != nil || l == nil {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				res, rerr := RunWorkUnit(context.Background(), l.WorkerID, l.Unit, ExecConfig{}, nil)
				if rerr != nil {
					_ = p.Fail(l.ID, api.LeaseFailure{WorkerID: l.WorkerID, Reason: rerr.Error()})
					continue
				}
				_ = p.Complete(l.ID, res)
			}
		}()
	}
	return func() { close(stop); wg.Wait() }
}

// TestDistExecutorBitIdentical is the heart of the protocol: a campaign
// split into units, executed by concurrent workers and merged by the
// lease pool must be bit-identical to the serial oracle — same
// DetectedAt array, same Detections counts, same coverage.
func TestDistExecutorBitIdentical(t *testing.T) {
	core, faults := testCore(t)
	count := 120
	if testing.Short() {
		count = 48
	}

	p := NewLeasePool(PoolOptions{TTL: 5 * time.Second})
	defer p.Close()
	stop := startTestWorkers(t, p, 2)
	defer stop()

	var mu sync.Mutex
	merged := map[string]*fault.Result{}
	exec := NewDistExecutor(ExecConfig{}, p, DistOptions{
		Units: 4,
		OnMerged: func(jobID string, res *fault.Result) {
			mu.Lock()
			merged[jobID] = res
			mu.Unlock()
		},
	})

	t.Run("fault_sim", func(t *testing.T) {
		spec := JobSpec{Kind: JobFaultSim,
			Vectors: VectorSource{Kind: api.VecBIST, Count: count, Seed: 1}}
		jr, err := exec(withJobID(context.Background(), "dist-fs"), spec, func(Progress) {})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := fault.Simulate(core.Netlist, bist.PseudorandomVectors(count, 1),
			fault.SimOptions{Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		res := merged["dist-fs"]
		if res == nil {
			t.Fatal("OnMerged never fired for dist-fs")
		}
		if len(res.DetectedAt) != len(oracle.DetectedAt) {
			t.Fatalf("merged %d faults, oracle %d", len(res.DetectedAt), len(oracle.DetectedAt))
		}
		for i := range oracle.DetectedAt {
			if res.DetectedAt[i] != oracle.DetectedAt[i] {
				t.Fatalf("DetectedAt[%d] = %d, oracle %d — distributed run is not bit-identical",
					i, res.DetectedAt[i], oracle.DetectedAt[i])
			}
		}
		if jr.Coverage != oracle.Coverage() || jr.Cycles != oracle.Cycles || jr.Detected != oracle.Detected() {
			t.Fatalf("summary (%v, %d, %d) diverged from oracle (%v, %d, %d)",
				jr.Coverage, jr.Cycles, jr.Detected, oracle.Coverage(), oracle.Cycles, oracle.Detected())
		}
	})

	t.Run("n_detect", func(t *testing.T) {
		spec := JobSpec{Kind: JobNDetect, NDetect: 3,
			Vectors: VectorSource{Kind: api.VecBIST, Count: count, Seed: 1}}
		jr, err := exec(withJobID(context.Background(), "dist-nd"), spec, func(Progress) {})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := fault.Simulate(core.Netlist, bist.PseudorandomVectors(count, 1),
			fault.SimOptions{Faults: faults, NDetect: 3})
		if err != nil {
			t.Fatal(err)
		}
		res := merged["dist-nd"]
		if res == nil || res.Detections == nil {
			t.Fatal("n-detect merge missing detections bitmap")
		}
		for i := range oracle.Detections {
			if res.Detections[i] != oracle.Detections[i] {
				t.Fatalf("Detections[%d] = %d, oracle %d", i, res.Detections[i], oracle.Detections[i])
			}
		}
		if jr.NDetect != 3 || jr.NDetectCoverage != oracle.NDetectCoverage(3) {
			t.Fatalf("n-detect summary (%d, %v) vs oracle %v", jr.NDetect, jr.NDetectCoverage, oracle.NDetectCoverage(3))
		}
	})
}

// TestDistExecutorFallsBackForUnknownKind: kinds the distributed path
// does not handle route to the local executor (which rejects unknowns).
func TestDistExecutorFallsBackForUnknownKind(t *testing.T) {
	p := NewLeasePool(PoolOptions{TTL: time.Second})
	defer p.Close()
	exec := NewDistExecutor(ExecConfig{}, p, DistOptions{Units: 2})
	_, err := exec(context.Background(), JobSpec{Kind: "bogus"}, func(Progress) {})
	if err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("unknown kind through dist executor = %v", err)
	}
}

// TestRunWorkUnitValidation: a worker refuses units that disagree with
// its own build of the core (version skew) or carry bad ranges.
func TestRunWorkUnitValidation(t *testing.T) {
	_, faults := testCore(t)
	base := api.WorkUnit{
		JobID: "job-1", Unit: 0, Units: 1,
		Spec:    JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: api.VecBIST, Count: 4, Seed: 1}},
		FaultLo: 0, FaultHi: len(faults), TotalFaults: len(faults),
	}

	skew := base
	skew.TotalFaults = len(faults) + 1
	if _, err := RunWorkUnit(context.Background(), "w", skew, ExecConfig{}, nil); err == nil ||
		!strings.Contains(err.Error(), "mismatched design") {
		t.Fatalf("mismatched fault count = %v, want refusal", err)
	}

	bad := base
	bad.FaultLo, bad.FaultHi = 10, 5
	if _, err := RunWorkUnit(context.Background(), "w", bad, ExecConfig{}, nil); err == nil ||
		!strings.Contains(err.Error(), "bad fault range") {
		t.Fatalf("inverted range = %v, want refusal", err)
	}
}
