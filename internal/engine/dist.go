package engine

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/designs"
	"repro/internal/fault"
	"repro/internal/obs"
)

// dist.go turns the executor into a coordinator: instead of simulating
// fault-sim campaigns in-process, it registers their fault lists with
// the LeasePool as work units and waits for the worker fleet to merge
// them. The sequential-ATPG kind (whose inner loop does not partition
// over faults the same way) keeps running locally; experiment jobs
// distribute both of their sub-campaigns. RunWorkUnit is the other half
// of the protocol: the exact per-unit computation a worker performs,
// kept in this package so coordinator and worker share the fixtures,
// the n-detect defaulting and the shard arithmetic that make merged
// results bit-identical to a single-process run.

// DistOptions configure NewDistExecutor.
type DistOptions struct {
	// Units is the number of work units each fault-sim campaign is
	// split into (default 8). More units than workers keeps the fleet
	// busy and shrinks the re-run cost of a lost lease.
	Units int
	// ShadowSample/ShadowSeed forward the shadow cross-checking policy
	// into every unit, so workers guard their compiled kernel exactly
	// like the in-process path does (see docs/RESILIENCE.md).
	ShadowSample float64
	ShadowSeed   int64
	// OnMerged, when set, receives each distributed campaign's merged
	// fault.Result before it is summarized into a JobResult — a
	// diagnostics hook, and the lever the e2e tests use to pin
	// bit-identity against the serial oracle.
	OnMerged func(jobID string, res *fault.Result)
}

// jobIDKey carries the queue's job ID through the executor context, so
// a distributed executor can register lease-pool work under the same ID
// the HTTP surface and the checkpoint use.
type jobIDKey struct{}

func withJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobIDFromContext returns the queue job ID the executor is running
// under, or "" outside a queue.
func JobIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// traceIDKey carries the job's campaign trace ID the same way.
type traceIDKey struct{}

func withTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the campaign trace ID the executor is
// running under, or "" outside a traced queue job.
func TraceIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

var distAnonID atomic.Int64

// NewDistExecutor returns the coordinator Executor: fault_sim and
// n_detect campaigns (and both halves of an experiment) are split into
// work units on the lease pool and executed by the worker fleet;
// seq_atpg falls through to the local executor.
func NewDistExecutor(cfg ExecConfig, pool *LeasePool, opts DistOptions) Executor {
	if opts.Units <= 0 {
		opts.Units = 8
	}
	local := NewExecutor(cfg)
	return func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		switch spec.Kind {
		case JobFaultSim, JobNDetect:
			return runDistFaultSim(ctx, pool, cfg, opts, distJobID(ctx), spec, update)
		case JobExperiment:
			return runDistExperiment(ctx, pool, cfg, opts, distJobID(ctx), spec, update)
		case JobCampaignMatrix:
			return runDistMatrix(ctx, pool, cfg, opts, distJobID(ctx), spec, update)
		case JobGaSearch:
			return runDistGaSearch(ctx, pool, cfg, opts, distJobID(ctx), spec, update)
		default:
			return local(ctx, spec, update)
		}
	}
}

// distJobID resolves the pool registration ID: the queue's job ID when
// running under a queue, a fresh synthetic ID otherwise.
func distJobID(ctx context.Context) string {
	if id := JobIDFromContext(ctx); id != "" {
		return id
	}
	return fmt.Sprintf("dist-%04d", distAnonID.Add(1))
}

// runDistFaultSim distributes one fault-simulation campaign and
// summarizes the merged bitmaps exactly like the local runFaultSim.
func runDistFaultSim(ctx context.Context, pool *LeasePool, cfg ExecConfig, opts DistOptions,
	jobID string, spec JobSpec, update func(Progress)) (*JobResult, error) {

	merge, faults, err := distSimulate(ctx, pool, cfg, opts, jobID, spec, update)
	if err != nil {
		return nil, err
	}
	res := &fault.Result{
		Faults:     faults,
		DetectedAt: merge.DetectedAt,
		Detections: merge.Detections,
		Cycles:     merge.Cycles,
	}
	if opts.OnMerged != nil {
		opts.OnMerged(jobID, res)
	}
	jr := &JobResult{
		Faults:   len(res.Faults),
		Detected: res.Detected(),
		Cycles:   res.Cycles,
		Coverage: res.Coverage(),
	}
	if ndet := specNDetect(spec); ndet > 1 {
		jr.NDetect = ndet
		jr.NDetectCoverage = res.NDetectCoverage(ndet)
	}
	return jr, nil
}

// distSimulate registers the campaign's units and waits for the fleet.
func distSimulate(ctx context.Context, pool *LeasePool, cfg ExecConfig, opts DistOptions,
	jobID string, spec JobSpec, update func(Progress)) (*UnitMerge, []fault.Fault, error) {

	d, err := GetDesign(spec.Design)
	if err != nil {
		return nil, nil, err
	}
	faults := d.Faults
	span := obs.NewSpan(obs.WithTrace(cfg.Sink, spec.TraceID), "engine.dist")
	span.Add("units", int64(opts.Units))
	span.Add("faults", int64(len(faults)))
	defer span.End()

	h, err := pool.Register(jobID, spec, len(faults), opts.Units,
		opts.ShadowSample, opts.ShadowSeed, update)
	if err != nil {
		return nil, nil, err
	}
	merge, err := h.Wait(ctx)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			return nil, nil, fmt.Errorf("%w: distributed campaign cancelled", ErrInterrupted)
		case api.IsRetryable(err):
			// Pool shutdown or withdrawal: the environment, not the spec,
			// failed — the queue may retry within the job's budget.
			return nil, nil, fmt.Errorf("%w: %v", ErrTransient, err)
		default:
			return nil, nil, err
		}
	}
	span.Event(obs.EventSummary, map[string]any{
		"cycles": merge.Cycles,
		"faults": len(faults),
	})
	return merge, faults, nil
}

// runDistExperiment distributes the paper's composite comparison: the
// requested stimulus first, then a raw-LFSR BIST baseline of the same
// length. The baseline's vector count comes from the first phase's
// merged cycle count, so the coordinator never needs to expand
// program/selftest stimuli itself.
func runDistExperiment(ctx context.Context, pool *LeasePool, cfg ExecConfig, opts DistOptions,
	jobID string, spec JobSpec, update func(Progress)) (*JobResult, error) {

	sub := spec
	sub.Kind = JobFaultSim
	main, err := runDistFaultSim(ctx, pool, cfg, opts, jobID, sub, update)
	if err != nil {
		return nil, err
	}
	seed := spec.Vectors.Seed
	if seed == 0 {
		seed = 1
	}
	base := sub
	base.Vectors = VectorSource{Kind: api.VecBIST, Count: main.Cycles, Seed: seed}
	baseline, err := runDistFaultSim(ctx, pool, cfg, opts, jobID, base, update)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Faults:   main.Faults,
		Detected: main.Detected,
		Cycles:   main.Cycles,
		Coverage: main.Coverage,
		Sub: map[string]*JobResult{
			"stimulus":      main,
			"bist_baseline": baseline,
		},
	}, nil
}

// runDistMatrix fans a campaign_matrix job over the fleet: each cell
// becomes its own lease-pool registration under a derived job ID
// ("<job>/<design>+s<scheme>"), run sequentially — the fleet-level
// parallelism is inside each cell's work units, and sequential cells
// keep every worker's design cache hot on one design at a time.
// OnMerged fires per cell with the derived ID, which is how the e2e
// tests pin each cell's bitmaps against a serial oracle.
func runDistMatrix(ctx context.Context, pool *LeasePool, cfg ExecConfig, opts DistOptions,
	jobID string, spec JobSpec, update func(Progress)) (*JobResult, error) {

	return runMatrix(ctx, spec, update, func(ctx context.Context, cell JobSpec, d *designs.Design, scheme int, update func(Progress)) (*JobResult, error) {
		cellID := fmt.Sprintf("%s/%s+s%d", jobID, cell.Design, scheme)
		return runDistFaultSim(ctx, pool, cfg, opts, cellID, cell, update)
	})
}

// runDistGaSearch runs the GA on the coordinator and fans each
// generation's evaluations out to the fleet: every individual is its
// own lease-pool registration under a derived job ID
// ("<job>/g<gen>+i<idx>"), evaluated concurrently — a generation's
// individuals are independent, so the fleet chews the whole cohort at
// once while the GA itself stays strictly sequential and determinism
// rests on fitness values, never on evaluation timing.
func runDistGaSearch(ctx context.Context, pool *LeasePool, cfg ExecConfig, opts DistOptions,
	jobID string, spec JobSpec, update func(Progress)) (*JobResult, error) {

	d, err := GetDesign(spec.Design)
	if err != nil {
		return nil, err
	}
	return runGaSearch(ctx, d, spec, update, distGaEvaluator(pool, cfg, opts, jobID))
}

// RunWorkUnit executes one leased unit: the worker-side half of the
// protocol. It resolves the unit's design through the registry cache,
// refuses units whose fault-list length disagrees with its own build
// (version skew would silently mis-index the merge), simulates the
// unit's fault slice with the same sharded engine and shadow
// cross-checking as a local campaign, and packs the detection bitmaps
// with their checksum.
func RunWorkUnit(ctx context.Context, workerID string, u api.WorkUnit,
	cfg ExecConfig, progress func(api.Progress)) (*api.UnitResult, error) {

	// Chaos point: a worker whose unit crashes, stalls, or fails with a
	// transient environment error before simulating.
	if f := chaos.Maybe("worker.unit"); f != nil {
		f.PanicNow()
		f.Sleep(ctx)
		if ierr := f.Err(); ierr != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransient, ierr)
		}
	}
	d, err := GetDesign(u.Spec.Design)
	if err != nil {
		return nil, err
	}
	faults := d.Faults
	if u.TotalFaults != len(faults) {
		return nil, fmt.Errorf("engine: unit %d of job %s expects %d faults, this build of design %s collapses %d — refusing mismatched design",
			u.Unit, u.JobID, u.TotalFaults, d.ID, len(faults))
	}
	if u.FaultLo < 0 || u.FaultHi > len(faults) || u.FaultLo >= u.FaultHi {
		return nil, fmt.Errorf("engine: unit %d of job %s has bad fault range [%d,%d)", u.Unit, u.JobID, u.FaultLo, u.FaultHi)
	}
	vecs, err := resolveVectors(d, u.Spec.Vectors)
	if err != nil {
		return nil, err
	}
	workers := u.Spec.Workers
	if workers == 0 {
		workers = cfg.Workers
	}
	total := vecs.Len()
	start := time.Now()
	res, err := Simulate(d.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{
			Faults:     faults[u.FaultLo:u.FaultHi],
			NDetect:    specNDetect(u.Spec),
			SegmentLen: u.Spec.SegmentLen,
			Ctx:        ctx,
			Sink:       obs.WithTrace(cfg.Sink, u.Spec.TraceID),
			Progress: func(cycles, detected, remaining int) {
				if progress != nil {
					progress(api.Progress{
						Done: cycles, Total: total,
						Detected: detected, Remaining: remaining,
						Coverage: safeRatio(detected, detected+remaining),
					})
				}
			},
		},
		Workers:      workers,
		ShadowSample: u.ShadowSample,
		ShadowSeed:   u.ShadowSeed,
		DesignHash:   d.Hash,
	})
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		return nil, fmt.Errorf("%w: %d/%d vectors applied", ErrInterrupted, res.Cycles, total)
	}
	out := api.NewUnitResult(workerID, res.DetectedAt, res.Detections, res.Cycles, time.Since(start).Seconds())
	// Chaos point: a result corrupted after checksumming (bad NIC, bad
	// RAM on the upload path) — the coordinator's checksum verification
	// must catch it and requeue the unit.
	if f := chaos.Maybe("worker.result"); f != nil {
		if corrupted, ok := corruptPacked(out.DetectedAt, f); ok {
			out.DetectedAt = corrupted
		}
	}
	return out, nil
}

// corruptPacked flips one seeded-random bit in a packed bitmap's first
// word (corrupt-kind fires only).
func corruptPacked(s string, f *chaos.Fire) (string, bool) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(buf) < 8 {
		return s, false
	}
	w := binary.LittleEndian.Uint64(buf)
	cw := f.CorruptWord(w)
	if cw == w {
		return s, false
	}
	binary.LittleEndian.PutUint64(buf, cw)
	return base64.StdEncoding.EncodeToString(buf), true
}

// IsTerminalUnitError reports whether a unit failure is worth retrying
// on another lease (environment trouble, interruption) or is inherent
// to the unit (bad spec, mismatched core) and should charge hard.
func IsTerminalUnitError(err error) bool {
	return err != nil && !errors.Is(err, ErrTransient) && !errors.Is(err, ErrInterrupted)
}
