package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueBackoffRetryTransient: an executor failure wrapped in
// ErrTransient is retried after a backoff instead of failing the job.
func TestQueueBackoffRetryTransient(t *testing.T) {
	var calls atomic.Int32
	retriesBefore := counter("queue.retries")
	q := NewQueue(QueueOptions{
		Workers:     1,
		MaxAttempts: 3,
		RetryBase:   2 * time.Millisecond,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("%w: simulated flaky environment", ErrTransient)
			}
			return &JobResult{Coverage: 1}, nil
		},
	})
	q.Start()
	j, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, j.ID, JobCompleted)
	if got.Attempts != 2 {
		t.Fatalf("completed after %d attempts, want 2", got.Attempts)
	}
	if d := counter("queue.retries") - retriesBefore; d != 1 {
		t.Fatalf("queue.retries advanced by %d, want 1", d)
	}
	_ = q.Drain(context.Background())
}

// TestQueueTransientBudgetExhausted: a persistently transient job fails
// terminally once the attempt budget is spent, with a telltale error.
func TestQueueTransientBudgetExhausted(t *testing.T) {
	q := NewQueue(QueueOptions{
		Workers:     1,
		MaxAttempts: 2,
		RetryBase:   2 * time.Millisecond,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return nil, fmt.Errorf("%w: still flaky", ErrTransient)
		},
	})
	q.Start()
	j, _ := q.Submit(specN(1))
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := q.Get(j.ID)
		if got.State == JobFailed {
			if got.Attempts != 2 || !strings.Contains(got.Error, "retries exhausted") {
				t.Fatalf("failed job: attempts=%d error=%q", got.Attempts, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = q.Drain(context.Background())
}

// TestQueueJobDeadline: a job's DeadlineSec cancels the executor's
// context and fails the job terminally — rerunning a timed-out spec
// would only time out again.
func TestQueueJobDeadline(t *testing.T) {
	ddlBefore := counter("queue.deadline_exceeded")
	q := NewQueue(QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			<-ctx.Done()
			return nil, fmt.Errorf("%w: context closed", ErrInterrupted)
		},
	})
	q.Start()
	spec := specN(1)
	spec.DeadlineSec = 0.02
	j, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := q.Get(j.ID)
		if got.State == JobFailed {
			if !strings.Contains(got.Error, "deadline exceeded") {
				t.Fatalf("error %q, want deadline exceeded", got.Error)
			}
			if got.Attempts != 1 {
				t.Fatalf("deadline-failed job used %d attempts, want 1 (no retry)", got.Attempts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d := counter("queue.deadline_exceeded") - ddlBefore; d != 1 {
		t.Fatalf("queue.deadline_exceeded advanced by %d, want 1", d)
	}
	_ = q.Drain(context.Background())
}

// TestQueueBreakerTrips: enough consecutive terminal failures open the
// circuit breaker; workers pause for the cooldown and then resume, so a
// healthy job submitted after the trip still completes.
func TestQueueBreakerTrips(t *testing.T) {
	tripsBefore := counter("queue.breaker_trips")
	q := NewQueue(QueueOptions{
		Workers:          1,
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  60 * time.Millisecond,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			if spec.Vectors.Count < 100 {
				return nil, fmt.Errorf("engine: permanent failure %d", spec.Vectors.Count)
			}
			return &JobResult{Coverage: 1}, nil
		},
	})
	q.Start()
	bad1, _ := q.Submit(specN(1))
	bad2, _ := q.Submit(specN(2))
	deadline := time.Now().Add(10 * time.Second)
	for {
		j1, _ := q.Get(bad1.ID)
		j2, _ := q.Get(bad2.ID)
		if j1.State == JobFailed && j2.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad jobs stuck in %s/%s", j1.State, j2.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d := counter("queue.breaker_trips") - tripsBefore; d != 1 {
		t.Fatalf("queue.breaker_trips advanced by %d, want 1", d)
	}
	// The breaker is open now; a healthy job must still complete once
	// the cooldown elapses.
	start := time.Now()
	good, _ := q.Submit(specN(500))
	waitState(t, q, good.ID, JobCompleted)
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("healthy job ran before the breaker cooldown elapsed")
	}
	_ = q.Drain(context.Background())
}

// TestQueueWatchdogCancelsStuck: a running job that stops publishing
// progress is cancelled by the watchdog and retried; the retry
// completes the job.
func TestQueueWatchdogCancelsStuck(t *testing.T) {
	var calls atomic.Int32
	wdBefore := counter("queue.watchdog_trips")
	q := NewQueue(QueueOptions{
		Workers:      1,
		MaxAttempts:  2,
		RetryBase:    2 * time.Millisecond,
		StuckTimeout: 25 * time.Millisecond,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			if calls.Add(1) == 1 {
				// Simulate a wedged campaign: no progress, no return until
				// the watchdog pulls the context.
				<-ctx.Done()
				return nil, fmt.Errorf("%w: context closed", ErrInterrupted)
			}
			return &JobResult{Coverage: 1}, nil
		},
	})
	q.Start()
	j, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, j.ID, JobCompleted)
	if got.Attempts != 2 {
		t.Fatalf("completed after %d attempts, want 2 (watchdog retry)", got.Attempts)
	}
	if d := counter("queue.watchdog_trips") - wdBefore; d != 1 {
		t.Fatalf("queue.watchdog_trips advanced by %d, want 1", d)
	}
	_ = q.Drain(context.Background())
}

// TestQueueChaosCancelRetried: the queue.job.cancel chaos point yanks a
// job's context; the queue classifies it as retryable and the retry
// completes.
func TestQueueChaosCancelRetried(t *testing.T) {
	armChaos(t, "queue.job.cancel=cancel:delay=0s:times=1", 11)
	q := NewQueue(QueueOptions{
		Workers:     1,
		MaxAttempts: 2,
		RetryBase:   2 * time.Millisecond,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("%w: context closed", ErrInterrupted)
			}
			return &JobResult{Coverage: 1}, nil
		},
	})
	q.Start()
	j, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, j.ID, JobCompleted)
	if got.Attempts != 2 {
		t.Fatalf("completed after %d attempts, want 2 (chaos cancel retry)", got.Attempts)
	}
	_ = q.Drain(context.Background())
}
