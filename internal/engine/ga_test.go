package engine

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
)

// tinyGaSpec is the shared fixture: small enough to fault-simulate a
// dozen phenotypes in seconds, big enough to breed.
func tinyGaSpec() JobSpec {
	return JobSpec{
		Kind: JobGaSearch,
		Ga: &api.GaSpec{
			Population: 4, Generations: 3, Seed: 7,
			Slots: 6, Iterations: 20,
		},
	}
}

// sameGaResult pins bit-identity between two GA results: best genome,
// best fitness, and the whole per-generation fitness trajectory.
func sameGaResult(t *testing.T, label string, a, b *JobResult) {
	t.Helper()
	if a.Ga == nil || b.Ga == nil {
		t.Fatalf("%s: missing GaResult (%v vs %v)", label, a.Ga, b.Ga)
	}
	if a.Ga.BestGenome != b.Ga.BestGenome {
		t.Fatalf("%s: best genome diverged:\n%s\n%s", label, a.Ga.BestGenome, b.Ga.BestGenome)
	}
	if a.Ga.BestFitness != b.Ga.BestFitness || a.Coverage != b.Coverage || a.Cycles != b.Cycles {
		t.Fatalf("%s: best fitness/coverage/cycles diverged: %v/%v/%d vs %v/%v/%d",
			label, a.Ga.BestFitness, a.Coverage, a.Cycles, b.Ga.BestFitness, b.Coverage, b.Cycles)
	}
	if len(a.Ga.Generations) != len(b.Ga.Generations) {
		t.Fatalf("%s: %d vs %d generations", label, len(a.Ga.Generations), len(b.Ga.Generations))
	}
	for i := range a.Ga.Generations {
		ga, gb := a.Ga.Generations[i], b.Ga.Generations[i]
		if ga.BestFitness != gb.BestFitness || ga.MeanFitness != gb.MeanFitness ||
			ga.BestCoverage != gb.BestCoverage || ga.BestCycles != gb.BestCycles {
			t.Fatalf("%s: generation %d diverged: %+v vs %+v", label, i, ga, gb)
		}
	}
}

// runGaLocal executes one ga_search spec through the production local
// executor, outside any queue.
func runGaLocal(t *testing.T, spec JobSpec) *JobResult {
	t.Helper()
	exec := NewExecutor(ExecConfig{Workers: 2})
	res, err := exec(context.Background(), spec, func(Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGaSearchDeterminism: the same seeded spec evolves the same best
// genome and fitness trajectory on repeat runs; the phenotype dedup
// cache only saves work, never changes answers.
func TestGaSearchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real fault-sim campaigns in -short mode")
	}
	a := runGaLocal(t, tinyGaSpec())
	b := runGaLocal(t, tinyGaSpec())
	sameGaResult(t, "repeat run", a, b)
	if a.Ga.BestGenome == "" || a.Coverage <= 0 {
		t.Fatalf("implausible GA result %+v", a.Ga)
	}
	if a.Ga.Evaluations+a.Ga.CacheHits != 4*3 {
		t.Fatalf("evaluations %d + cache hits %d, want %d total",
			a.Ga.Evaluations, a.Ga.CacheHits, 4*3)
	}
}

// TestGaSearchResume: a ga_search interrupted mid-search by a hard
// queue shutdown resumes — through journal replay plus checkpoint
// adoption into a brand-new queue — and finishes bit-identically to an
// uninterrupted run, without re-evaluating the journaled generations.
func TestGaSearchResume(t *testing.T) {
	if testing.Short() {
		t.Skip("real fault-sim campaigns in -short mode")
	}
	ref := runGaLocal(t, tinyGaSpec())

	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	cpath := filepath.Join(dir, "checkpoint.json")

	j1, recs, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	q1 := NewQueue(QueueOptions{
		Workers: 1, Exec: NewExecutor(ExecConfig{Workers: 2}),
		Journal: j1, Checkpoint: cpath,
	})
	q1.Start()
	job, err := q1.Submit(tinyGaSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first generation to be durably recorded, then yank
	// the queue mid-search — the drain context is already expired, so
	// running jobs are cancelled at the next generation boundary.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		q1.mu.Lock()
		gens := len(q1.gaGens[job.ID])
		q1.mu.Unlock()
		if gens >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no generation journaled in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q1.Drain(expired); err != nil && err != context.Canceled {
		t.Fatal(err)
	}
	interrupted, _ := q1.Get(job.ID)
	if interrupted.State == JobCompleted {
		t.Skip("search finished before the drain landed; resume not exercised")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: fresh journal replay + checkpoint into a new queue.
	j2, recs, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	q2 := NewQueue(QueueOptions{
		Workers: 1, Exec: NewExecutor(ExecConfig{Workers: 2}),
		Journal: j2, Checkpoint: cpath,
	})
	if err := q2.Recover(cpath, recs); err != nil {
		t.Fatal(err)
	}
	q2.mu.Lock()
	resumeGens := len(q2.gaGens[job.ID])
	q2.mu.Unlock()
	if resumeGens < 1 {
		t.Fatalf("recovered queue holds %d generation records, want >= 1", resumeGens)
	}
	q2.Start()
	defer q2.Drain(context.Background())

	deadline = time.Now().Add(2 * time.Minute)
	var got Job
	for {
		got, _ = q2.Get(job.ID)
		if got.State == JobCompleted {
			break
		}
		if got.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("resumed job state %s (error %q)", got.State, got.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sameGaResult(t, "resumed run", ref, got.Result)
	if got.Result.Ga.ResumedFrom != resumeGens {
		t.Fatalf("ResumedFrom = %d, want %d", got.Result.Ga.ResumedFrom, resumeGens)
	}
	// The resumed attempt re-evaluated only the tail generations.
	if reEvaluated := got.Result.Ga.Evaluations + got.Result.Ga.CacheHits; reEvaluated > (3-resumeGens)*4 {
		t.Fatalf("resumed run evaluated %d phenotypes, want <= %d", reEvaluated, (3-resumeGens)*4)
	}
	// Terminal jobs drop their generation history.
	q2.mu.Lock()
	left := len(q2.gaGens[job.ID])
	q2.mu.Unlock()
	if left != 0 {
		t.Fatalf("terminal job still holds %d generation records", left)
	}
}
