package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// lease.go is the coordinator side of the distributed campaign
// protocol: a LeasePool splits each fault-simulation job's collapsed
// fault list into contiguous work units (the same partition arithmetic
// as the in-process shard planner), hands units to workers under
// time-bounded leases, and merges the uploaded detection bitmaps back
// into one per-fault array. Expired and failed leases requeue with the
// queue's exponential-backoff discipline and a bounded per-unit attempt
// budget, so a crashing worker delays a campaign instead of corrupting
// or wedging it. Fault independence makes per-fault results invariant
// under partitioning, so the merged campaign is bit-identical to a
// single-process run for any worker count and any kill/restart
// schedule — the distributed e2e test in internal/worker pins this
// against the serial oracle.

// Lease traffic reports through one labeled family (the flat lease.*
// counters of earlier revisions became its children; handles keep their
// old names so call sites read the same).
var (
	famLeaseEvents = obs.Default().CounterFamily("sbst_lease_events_total",
		"Lease lifecycle events on the coordinator, by event.", "event")
	ctrLeaseGranted   = famLeaseEvents.Counter("granted")
	ctrLeaseCompleted = famLeaseEvents.Counter("completed")
	ctrLeaseFailed    = famLeaseEvents.Counter("failed")
	ctrLeaseExpired   = famLeaseEvents.Counter("expired")
	ctrLeaseHeartbeat = famLeaseEvents.Counter("heartbeat")
	ctrLeaseBadResult = famLeaseEvents.Counter("bad_result")
	ctrDistJobs       = obs.Default().Counter("dist.jobs")

	famLeaseUnits = obs.Default().GaugeFamily("sbst_lease_units",
		"Work units registered with the lease pool, by state.", "state")
	gaugeUnitsPending = famLeaseUnits.Gauge("pending")
	gaugeUnitsLeased  = famLeaseUnits.Gauge("leased")
	gaugeUnitsDone    = famLeaseUnits.Gauge("done")

	// histHeartbeatGap feeds both the exposition histogram and the
	// heartbeat p99 served in /v1/meta.
	histHeartbeatGap = obs.Default().HistogramFamily("sbst_heartbeat_gap_seconds",
		"Gap between successive heartbeats on a lease, observed by the coordinator.",
		obs.DefBuckets).Histogram()
)

// PoolOptions configure NewLeasePool.
type PoolOptions struct {
	// TTL is the lease lifetime without a heartbeat (default 30s).
	TTL time.Duration
	// UnitAttempts is each unit's run budget across grants: expired
	// leases and failed uploads both charge it (default 3).
	UnitAttempts int
	// RetryBase/RetryMax shape the backoff before a failed unit is
	// offered again (defaults 100ms / 5s, doubling per spent attempt —
	// the queue's retry discipline applied to units).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Sink receives lease lifecycle events.
	Sink obs.Sink
	// Events, when set, receives lease-typed JobEvents for the SSE
	// stream. Share one broker with the queue and server.
	Events *JobEventBroker
	// Journal, when set, mirrors lease events into the write-ahead
	// journal so SSE streams replay grant/complete history across a
	// coordinator restart. Share the queue's journal.
	Journal *Journal

	// now overrides the clock in tests.
	now func() time.Time
}

// unitState is a work unit's position in the lease lifecycle.
type unitState uint8

const (
	unitPending unitState = iota
	unitLeased
	unitDone
)

// poolUnit is one work unit's coordinator-side record.
type poolUnit struct {
	wire      api.WorkUnit
	state     unitState
	attempts  int       // grants consumed
	notBefore time.Time // backoff gate while pending
	leaseID   string    // current lease while leased
	progress  api.Progress
}

// distJob is one distributed job's unit set and merge target.
type distJob struct {
	id        string
	trace     string // campaign trace ID from the registering spec
	units     []*poolUnit
	ndetect   int
	detected  []int32
	counts    []int32 // nil unless ndetect > 1
	cycles    int
	remaining int
	err       *api.Error
	done      chan struct{}
	progress  func(api.Progress)
}

// lease is one outstanding grant.
type lease struct {
	id       string
	workerID string
	job      *distJob
	unit     *poolUnit
	deadline time.Time
	lastBeat time.Time // grant or last heartbeat, for the gap histogram
}

// DistHandle is the executor's view of a registered distributed job:
// Wait blocks until every unit is merged (or the job's attempt budget
// is exhausted, or ctx is cancelled).
type DistHandle struct {
	pool *LeasePool
	job  *distJob
}

// UnitMerge is a completed distributed job's merged detection bitmaps.
type UnitMerge struct {
	DetectedAt []int32
	Detections []int32 // nil unless the campaign ran with NDetect > 1
	Cycles     int
}

// LeasePool coordinates work units across a worker fleet. All exported
// methods are safe for concurrent use. Protocol-level failures are
// returned as *api.Error envelopes so the HTTP layer can serve them
// verbatim.
type LeasePool struct {
	opts PoolOptions

	mu        sync.Mutex
	jobs      map[string]*distJob
	order     []string
	leases    map[string]*lease
	nextLease int
	rng       *rand.Rand
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewLeasePool builds and starts a pool (including its lease-expiry
// scanner); Close stops it.
func NewLeasePool(opts PoolOptions) *LeasePool {
	if opts.TTL <= 0 {
		opts.TTL = 30 * time.Second
	}
	if opts.UnitAttempts <= 0 {
		opts.UnitAttempts = 3
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 5 * time.Second
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	p := &LeasePool{
		opts:   opts,
		jobs:   make(map[string]*distJob),
		leases: make(map[string]*lease),
		rng:    rand.New(rand.NewSource(1)),
		stop:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.scanner()
	return p
}

// Close stops the expiry scanner and invalidates every outstanding
// lease and registered job. Waiters see a pool-closed failure.
func (p *LeasePool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.stop)
		for _, j := range p.jobs {
			if j.err == nil && j.remaining > 0 {
				j.err = api.Errf(api.CodeUnavailable, true, "coordinator shutting down")
				close(j.done)
			}
		}
		p.jobs = make(map[string]*distJob)
		p.leases = make(map[string]*lease)
		p.order = nil
	} else {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// unitRange is the shard planner shared with Simulate: unit i of n over
// total faults covers [i*total/n, (i+1)*total/n).
func unitRange(i, n, total int) (lo, hi int) {
	return i * total / n, (i + 1) * total / n
}

// Register splits a job into units and opens it for leasing. progress
// (may be nil) receives aggregated snapshots on every heartbeat and
// merge — wire it to the queue's update callback so worker heartbeats
// feed the stuck-job watchdog. The spec inside wire units carries the
// owning job's stimulus description.
func (p *LeasePool) Register(jobID string, spec api.JobSpec, totalFaults, units int,
	shadowSample float64, shadowSeed int64, progress func(api.Progress)) (*DistHandle, error) {

	if totalFaults <= 0 {
		return nil, fmt.Errorf("engine: distributed job %s with %d faults", jobID, totalFaults)
	}
	if units <= 0 {
		units = 1
	}
	if units > totalFaults {
		units = totalFaults
	}
	ndet := specNDetect(spec)
	j := &distJob{
		id:        jobID,
		trace:     spec.TraceID,
		ndetect:   ndet,
		detected:  make([]int32, totalFaults),
		remaining: units,
		done:      make(chan struct{}),
		progress:  progress,
	}
	if ndet > 1 {
		j.counts = make([]int32, totalFaults)
	}
	for i := 0; i < units; i++ {
		lo, hi := unitRange(i, units, totalFaults)
		j.units = append(j.units, &poolUnit{
			wire: api.WorkUnit{
				JobID: jobID, Unit: i, Units: units, Spec: spec,
				FaultLo: lo, FaultHi: hi, TotalFaults: totalFaults,
				ShadowSample: shadowSample, ShadowSeed: shadowSeed,
			},
			progress: api.Progress{Remaining: hi - lo},
		})
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("engine: lease pool closed")
	}
	if _, dup := p.jobs[jobID]; dup {
		return nil, fmt.Errorf("engine: job %s already registered", jobID)
	}
	p.jobs[jobID] = j
	p.order = append(p.order, jobID)
	ctrDistJobs.Add(1)
	p.updateUnitGaugesLocked()
	obs.Emit(p.opts.Sink, obs.Event{
		Type:  obs.EventPhase,
		Name:  "lease/" + jobID,
		Trace: j.trace,
		Fields: map[string]any{
			"event": "registered", "units": units, "faults": totalFaults,
		},
	})
	return &DistHandle{pool: p, job: j}, nil
}

// updateUnitGaugesLocked refreshes the pool's unit-state gauges.
// Caller holds p.mu.
func (p *LeasePool) updateUnitGaugesLocked() {
	var pending, leased, done float64
	for _, j := range p.jobs {
		for _, u := range j.units {
			switch u.state {
			case unitPending:
				pending++
			case unitLeased:
				leased++
			case unitDone:
				done++
			}
		}
	}
	gaugeUnitsPending.Set(pending)
	gaugeUnitsLeased.Set(leased)
	gaugeUnitsDone.Set(done)
}

// publishLease emits a lease-typed JobEvent on the shared broker
// (no-op without one). Callers may hold p.mu: the broker's lock is a
// leaf in the lock order.
func (p *LeasePool) publishLease(j *distJob, ev api.LeaseEvent) {
	seq := p.opts.Events.Publish(api.JobEvent{
		Type: api.JobEventLease, JobID: j.id, TraceID: j.trace, Lease: &ev,
	})
	if p.opts.Journal != nil {
		// Async: lease history feeds SSE replay, not queue state — the
		// units themselves are re-planned when a recovered job re-runs.
		lc := ev
		_ = p.opts.Journal.Append(JournalRecord{
			T: recLease, JobID: j.id, Seq: seq, State: JobRunning, Lease: &lc,
		}, false)
	}
}

// Release withdraws a job from the pool (executor cancelled, job done).
// Outstanding leases for it answer lease_gone from here on.
func (p *LeasePool) Release(jobID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[jobID]
	if !ok {
		return
	}
	delete(p.jobs, jobID)
	for i, id := range p.order {
		if id == jobID {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	for id, l := range p.leases {
		if l.job == j {
			delete(p.leases, id)
		}
	}
	if j.err == nil && j.remaining > 0 {
		j.err = api.Errf(api.CodeUnavailable, true, "job %s withdrawn from the pool", jobID)
		close(j.done)
	}
	p.updateUnitGaugesLocked()
}

// Wait blocks until the job's units are all merged, the job failed, or
// ctx is cancelled (in which case the job is withdrawn so stray workers
// get lease_gone instead of feeding a dead campaign).
func (h *DistHandle) Wait(ctx context.Context) (*UnitMerge, error) {
	select {
	case <-h.job.done:
	case <-ctx.Done():
		h.pool.Release(h.job.id)
		return nil, ctx.Err()
	}
	h.pool.mu.Lock()
	err := h.job.err
	merge := &UnitMerge{DetectedAt: h.job.detected, Detections: h.job.counts, Cycles: h.job.cycles}
	h.pool.mu.Unlock()
	h.pool.Release(h.job.id)
	if err != nil {
		return nil, err
	}
	return merge, nil
}

// Acquire grants the oldest offerable unit to a worker, or returns
// (nil, nil) when no work is available (the HTTP layer answers 204 and
// the worker polls again).
func (p *LeasePool) Acquire(req api.LeaseRequest) (*api.Lease, error) {
	if req.WorkerID == "" {
		return nil, api.Errf(api.CodeBadRequest, false, "lease request without worker_id")
	}
	// Chaos point: a coordinator that stalls or errors while granting —
	// workers must treat it as back-pressure, not failure.
	if f := chaos.Maybe("engine.lease.grant"); f != nil {
		f.Sleep(nil)
		if ierr := f.Err(); ierr != nil {
			return nil, api.Errf(api.CodeUnavailable, true, "%v", ierr)
		}
	}
	now := p.opts.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, api.Errf(api.CodeUnavailable, false, "coordinator shutting down")
	}
	for _, jobID := range p.order {
		j := p.jobs[jobID]
		if j.err != nil {
			// Failed (budget-exhausted) jobs stay registered until their
			// waiter collects the error, but offer no further work.
			continue
		}
		for _, u := range j.units {
			if u.state != unitPending || now.Before(u.notBefore) {
				continue
			}
			p.nextLease++
			l := &lease{
				id:       fmt.Sprintf("lease-%04d", p.nextLease),
				workerID: req.WorkerID,
				job:      j,
				unit:     u,
				deadline: now.Add(p.opts.TTL),
				lastBeat: now,
			}
			u.state = unitLeased
			u.leaseID = l.id
			p.leases[l.id] = l
			ctrLeaseGranted.Add(1)
			p.updateUnitGaugesLocked()
			obs.Emit(p.opts.Sink, obs.Event{
				Type:  obs.EventPhase,
				Name:  "lease/" + jobID,
				Trace: j.trace,
				Fields: map[string]any{
					"event": "granted", "lease": l.id, "unit": u.wire.Unit,
					"worker": req.WorkerID, "attempt": u.attempts,
				},
			})
			p.publishLease(j, api.LeaseEvent{
				Event: "granted", LeaseID: l.id, Unit: u.wire.Unit,
				WorkerID: req.WorkerID, Attempt: u.attempts,
			})
			return &api.Lease{
				ID: l.id, WorkerID: req.WorkerID, Unit: u.wire,
				TTLMillis:       p.opts.TTL.Milliseconds(),
				HeartbeatMillis: (p.opts.TTL / 3).Milliseconds(),
				Attempt:         u.attempts,
			}, nil
		}
	}
	return nil, nil
}

// Heartbeat extends a lease and folds the worker's unit-local progress
// into the job's aggregate snapshot.
func (p *LeasePool) Heartbeat(leaseID string, hb api.Heartbeat) (*api.HeartbeatAck, error) {
	p.mu.Lock()
	l, ok := p.leases[leaseID]
	if !ok {
		p.mu.Unlock()
		return nil, api.Errf(api.CodeLeaseGone, true, "lease %s expired, reassigned or withdrawn", leaseID)
	}
	now := p.opts.now()
	histHeartbeatGap.Observe(now.Sub(l.lastBeat).Seconds())
	l.lastBeat = now
	l.deadline = now.Add(p.opts.TTL)
	l.unit.progress = hb.Progress
	ctrLeaseHeartbeat.Add(1)
	snap, notify := p.jobProgressLocked(l.job)
	p.mu.Unlock()
	if notify != nil {
		notify(snap)
	}
	return &api.HeartbeatAck{TTLMillis: p.opts.TTL.Milliseconds()}, nil
}

// Complete merges a finished unit's bitmaps. A checksum or shape
// mismatch charges the unit's attempt budget and requeues it — a
// corrupted upload costs a retry, never a wrong campaign.
func (p *LeasePool) Complete(leaseID string, res *api.UnitResult) error {
	p.mu.Lock()
	l, ok := p.leases[leaseID]
	if !ok {
		p.mu.Unlock()
		return api.Errf(api.CodeLeaseGone, true, "lease %s expired, reassigned or withdrawn", leaseID)
	}
	u, j := l.unit, l.job
	if j.err != nil {
		// The job failed while this worker was still simulating (another
		// unit exhausted its budget); its upload has nowhere to land.
		delete(p.leases, leaseID)
		p.mu.Unlock()
		return api.Errf(api.CodeLeaseGone, true, "lease %s belongs to a failed job", leaseID)
	}
	detected, counts, err := res.Unpack()
	if err == nil && len(detected) != u.wire.FaultHi-u.wire.FaultLo {
		err = fmt.Errorf("unit covers %d faults, upload has %d", u.wire.FaultHi-u.wire.FaultLo, len(detected))
	}
	if err == nil && (j.counts != nil) != (counts != nil) {
		err = fmt.Errorf("detections bitmap presence disagrees with the campaign's n-detect mode")
	}
	if err != nil {
		ctrLeaseBadResult.Add(1)
		delete(p.leases, leaseID)
		apiErr := api.Errf(api.CodeBadResult, true, "unit %d upload rejected: %v", u.wire.Unit, err)
		p.requeueLocked(j, u, "bad_result", apiErr.Message)
		p.mu.Unlock()
		return apiErr
	}

	delete(p.leases, leaseID)
	copy(j.detected[u.wire.FaultLo:u.wire.FaultHi], detected)
	if j.counts != nil {
		copy(j.counts[u.wire.FaultLo:u.wire.FaultHi], counts)
	}
	if res.Cycles > j.cycles {
		j.cycles = res.Cycles
	}
	u.state = unitDone
	u.progress = api.Progress{Done: res.Cycles, Total: res.Cycles}
	j.remaining--
	ctrLeaseCompleted.Add(1)
	p.updateUnitGaugesLocked()
	obs.Emit(p.opts.Sink, obs.Event{
		Type:  obs.EventPhase,
		Name:  "lease/" + j.id,
		Trace: j.trace,
		Fields: map[string]any{
			"event": "completed", "lease": leaseID, "unit": u.wire.Unit,
			"worker": res.WorkerID, "seconds": res.Seconds,
		},
	})
	p.publishLease(j, api.LeaseEvent{
		Event: "completed", LeaseID: leaseID, Unit: u.wire.Unit,
		WorkerID: res.WorkerID, Attempt: u.attempts,
	})
	finished := j.remaining == 0
	if finished {
		close(j.done)
	}
	snap, notify := p.jobProgressLocked(j)
	p.mu.Unlock()
	if notify != nil {
		notify(snap)
	}
	return nil
}

// Fail reports a unit its worker could not finish; the unit requeues
// with backoff while its attempt budget lasts, then fails the job.
func (p *LeasePool) Fail(leaseID string, f api.LeaseFailure) error {
	p.mu.Lock()
	l, ok := p.leases[leaseID]
	if !ok {
		p.mu.Unlock()
		return api.Errf(api.CodeLeaseGone, true, "lease %s expired, reassigned or withdrawn", leaseID)
	}
	delete(p.leases, leaseID)
	ctrLeaseFailed.Add(1)
	p.requeueLocked(l.job, l.unit, "worker_failure", f.Reason)
	p.mu.Unlock()
	return nil
}

// requeueLocked returns a unit to the pending pool with a backoff gate,
// charging one attempt; an exhausted budget fails the whole job.
// Caller holds p.mu.
func (p *LeasePool) requeueLocked(j *distJob, u *poolUnit, event, reason string) {
	u.attempts++
	u.leaseID = ""
	u.state = unitPending
	if u.attempts >= p.opts.UnitAttempts {
		if j.err == nil && j.remaining > 0 {
			j.err = api.Errf(api.CodeInternal, false,
				"unit %d failed %d times, last: %s", u.wire.Unit, u.attempts, reason)
			close(j.done)
		}
		event = "unit_exhausted"
	} else {
		u.notBefore = p.opts.now().Add(p.unitBackoffLocked(u.attempts))
	}
	p.updateUnitGaugesLocked()
	obs.Emit(p.opts.Sink, obs.Event{
		Type:  obs.EventPhase,
		Name:  "lease/" + j.id,
		Trace: j.trace,
		Fields: map[string]any{
			"event": event, "unit": u.wire.Unit,
			"attempts": u.attempts, "reason": reason,
		},
	})
	p.publishLease(j, api.LeaseEvent{
		Event: event, Unit: u.wire.Unit, Attempt: u.attempts, Reason: reason,
	})
}

// unitBackoffLocked is the queue's retry formula applied to units:
// RetryBase doubled per spent attempt, capped at RetryMax, jitter from
// the upper half of the window. Caller holds p.mu (for the rng).
func (p *LeasePool) unitBackoffLocked(attempts int) time.Duration {
	d := p.opts.RetryBase
	for i := 1; i < attempts && d < p.opts.RetryMax; i++ {
		d *= 2
	}
	if d > p.opts.RetryMax {
		d = p.opts.RetryMax
	}
	return d/2 + time.Duration(p.rng.Int63n(int64(d)/2+1))
}

// scanner expires leases whose workers stopped heartbeating: the unit
// requeues (with an attempt charge, so a unit bouncing between dead
// workers eventually fails the job) and any late call on the old lease
// answers lease_gone.
func (p *LeasePool) scanner() {
	defer p.wg.Done()
	interval := p.opts.TTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			now := p.opts.now()
			var snaps []func()
			p.mu.Lock()
			for id, l := range p.leases {
				if now.Before(l.deadline) {
					continue
				}
				delete(p.leases, id)
				ctrLeaseExpired.Add(1)
				p.requeueLocked(l.job, l.unit, "lease_expired",
					fmt.Sprintf("worker %s stopped heartbeating", l.workerID))
				if snap, notify := p.jobProgressLocked(l.job); notify != nil {
					snaps = append(snaps, func() { notify(snap) })
				}
			}
			p.mu.Unlock()
			for _, fn := range snaps {
				fn()
			}
		}
	}
}

// jobProgressLocked aggregates unit progress the same way the
// in-process aggregator does: the reported cycle count is the frontier
// every unit has passed, detected/remaining are summed. Caller holds
// p.mu; the returned callback (if any) must be invoked after unlocking.
func (p *LeasePool) jobProgressLocked(j *distJob) (api.Progress, func(api.Progress)) {
	if j.progress == nil {
		return api.Progress{}, nil
	}
	frontier := -1
	detected, remaining := 0, 0
	for _, u := range j.units {
		c := u.progress.Done
		if frontier < 0 || c < frontier {
			frontier = c
		}
		detected += u.progress.Detected
		remaining += u.progress.Remaining
	}
	if frontier < 0 {
		frontier = 0
	}
	return api.Progress{
		Done: frontier, Total: j.units[0].progress.Total,
		Detected: detected, Remaining: remaining,
		Coverage: safeRatio(detected, detected+remaining),
	}, j.progress
}

// Counts reports pool occupancy for healthz.
func (p *LeasePool) Counts() api.LeaseCounts {
	p.mu.Lock()
	defer p.mu.Unlock()
	var c api.LeaseCounts
	for _, j := range p.jobs {
		for _, u := range j.units {
			switch u.state {
			case unitPending:
				c.Pending++
			case unitLeased:
				c.Leased++
			case unitDone:
				c.Done++
			}
		}
	}
	return c
}

// SnapshotJob renders a job's distribution state for checkpoint v3
// (nil when the job is not registered).
func (p *LeasePool) SnapshotJob(jobID string) *api.DistState {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[jobID]
	if !ok {
		return nil
	}
	st := &api.DistState{Units: len(j.units)}
	for i, u := range j.units {
		if u.state == unitDone {
			st.Completed = append(st.Completed, i)
		}
		st.Attempts = append(st.Attempts, u.attempts)
	}
	return st
}
