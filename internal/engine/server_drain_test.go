package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestServerDrainUnderLoad hammers POST /jobs from many goroutines
// while the queue drains mid-flight. The invariant: every job the
// server accepted (202) appears in the final checkpoint exactly once —
// no accepted job is lost, none is duplicated — and a restore sees the
// same set.
func TestServerDrainUnderLoad(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	exec := func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		time.Sleep(time.Millisecond) // keep a few jobs in flight during drain
		return &JobResult{Coverage: 1}, nil
	}
	q := NewQueue(QueueOptions{Workers: 2, MaxPending: 256, Checkpoint: ckpt, Exec: exec})
	q.Start()
	srv := httptest.NewServer(NewServerWith(q, ServerOptions{MaxInflight: 64}))
	defer srv.Close()

	const clients, perClient = 8, 20
	var mu sync.Mutex
	accepted := make(map[string]bool)
	var wg sync.WaitGroup
	startDrain := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/2 {
					close(startDrain) // drain begins mid-barrage
				}
				body := []byte(`{"kind":"fault_sim","vectors":{"kind":"bist","count":10}}`)
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var j Job
					if err := json.Unmarshal(data, &j); err != nil {
						t.Errorf("bad 202 body %q: %v", data, err)
						return
					}
					mu.Lock()
					if accepted[j.ID] {
						t.Errorf("job %s accepted twice", j.ID)
					}
					accepted[j.ID] = true
					mu.Unlock()
				case http.StatusServiceUnavailable:
					// Draining or full: the server must say when to retry.
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("503 without Retry-After: %s", data)
						return
					}
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(c)
	}

	<-startDrain
	drainErr := make(chan error, 1)
	go func() { drainErr <- q.Drain(context.Background()) }()
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}
	if len(accepted) == 0 {
		t.Fatal("no job was accepted before the drain; test proves nothing")
	}

	// The final checkpoint must hold exactly the accepted set.
	q2 := NewQueue(QueueOptions{Exec: exec})
	if err := q2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, j := range q2.Jobs() {
		seen[j.ID]++
	}
	for id := range accepted {
		if seen[id] != 1 {
			t.Errorf("accepted job %s appears %d times in checkpoint, want 1", id, seen[id])
		}
	}
	for id, n := range seen {
		if !accepted[id] {
			t.Errorf("checkpoint holds job %s (%d times) that no client saw accepted", id, n)
		}
	}
}

// TestServerShedsLoad: with one inflight slot held by a chaos-stalled
// request, a concurrent request is shed with 503 + Retry-After and the
// sbstd.shed counter advances.
func TestServerShedsLoad(t *testing.T) {
	armChaos(t, "sbstd.request=delay:delay=300ms:times=1", 5)
	q := NewQueue(QueueOptions{Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		return &JobResult{}, nil
	}})
	srv := httptest.NewServer(NewServerWith(q, ServerOptions{MaxInflight: 1, RetryAfter: 2 * time.Second}))
	defer srv.Close()

	shedBefore := counter("sbstd.shed")
	slow := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
		}
		slow <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the stalled request take the slot
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d under full inflight, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", got)
	}
	if d := counter("sbstd.shed") - shedBefore; d != 1 {
		t.Fatalf("sbstd.shed advanced by %d, want 1", d)
	}
	if err := <-slow; err != nil {
		t.Fatalf("stalled request failed: %v", err)
	}
}

// TestServerRequestTimeout: a chaos-stalled request is cut off by the
// request timeout with a JSON 503 body instead of hanging the client.
func TestServerRequestTimeout(t *testing.T) {
	armChaos(t, "sbstd.request=delay:delay=5s:times=1", 5)
	q := NewQueue(QueueOptions{Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		return &JobResult{}, nil
	}})
	srv := httptest.NewServer(NewServerWith(q, ServerOptions{RequestTimeout: 50 * time.Millisecond}))
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d for timed-out request, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var msg map[string]any
	if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
		t.Fatalf("timeout body %q is not the JSON error shape", body)
	}
	if msg["code"] != "timeout" || msg["retryable"] != true {
		t.Fatalf("timeout body %q is not a retryable timeout envelope", body)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("request hung far past the timeout")
	}
}
