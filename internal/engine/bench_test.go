package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bist"
	"repro/internal/fault"
)

// benchWorkload is the Table-1-scale pseudorandom campaign on the
// gate-level DSP core: the full collapsed fault list against 8192 LFSR
// vectors, the same workload shape cmd/experiments runs for the paper
// tables. Compare BenchmarkSimulateSerial with the sharded variants:
//
//	go test -bench Simulate -benchtime 3x ./internal/engine
//
// The acceptance bar is ≥ 2× wall-clock speedup at 4+ workers.
const benchVectors = 8192

func benchSimulate(b *testing.B, workers int) {
	core, faults, err := sharedCore()
	if err != nil {
		b.Fatal(err)
	}
	vecs := bist.PseudorandomVectors(benchVectors, 1)
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(core.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: faults},
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		cov = res.Coverage()
	}
	b.ReportMetric(cov*100, "coverage%")
	b.ReportMetric(float64(benchVectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
}

func BenchmarkSimulateSerial(b *testing.B) { benchSimulate(b, 1) }

func BenchmarkSimulateSharded(b *testing.B) {
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSimulate(b, workers)
		})
	}
}
