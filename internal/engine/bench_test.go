package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/artifacts"
	"repro/internal/bist"
	"repro/internal/designs"
	"repro/internal/fault"
	"repro/internal/obs"
)

// benchWorkload is the Table-1-scale pseudorandom campaign on the
// gate-level DSP core: the full collapsed fault list against 8192 LFSR
// vectors, the same workload shape cmd/experiments runs for the paper
// tables. Compare BenchmarkSimulateSerial with the sharded variants:
//
//	go test -bench Simulate -benchtime 3x ./internal/engine
//
// The acceptance bar is ≥ 2× wall-clock speedup at 4+ workers.
const benchVectors = 8192

func benchSimulate(b *testing.B, workers int, kernel fault.Kernel) {
	core, faults, err := SharedCore()
	if err != nil {
		b.Fatal(err)
	}
	vecs := bist.PseudorandomVectors(benchVectors, 1)
	evals := obs.Default().Counter("faultsim.gate_evals")
	evals0 := evals.Load()
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(core.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: faults, Kernel: kernel},
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		cov = res.Coverage()
	}
	b.ReportMetric(cov*100, "coverage%")
	if kernel == fault.KernelCompiled {
		// Default options auto-pick the stripe width; label the result
		// with the width that actually ran (8 on the full fault list).
		b.ReportMetric(float64(fault.EffectiveLaneWords(fault.SimOptions{}, len(faults))), "lane-words")
	}
	b.ReportMetric(float64(benchVectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
	// Gate evaluations per applied vector cycle, from the obs counter
	// delta over the timed runs (the saving the event-driven kernel's
	// whole point; the reference kernel counts whole gates, the compiled
	// kernel compiled instructions).
	b.ReportMetric(float64(evals.Load()-evals0)/(float64(benchVectors)*float64(b.N)), "gate-evals/cycle")
}

func BenchmarkSimulateSerial(b *testing.B) { benchSimulate(b, 1, fault.KernelCompiled) }

// BenchmarkSimulateLanes sweeps the compiled kernel's bitslice stripe
// width (fault.SimOptions.LaneWords) on the serial Table-1 workload;
// scripts/bench_kernel.sh records the sweep into BENCH_4.json. Coverage
// must be bit-identical at every width — the sub-benchmarks fail on any
// divergence from width 1, which is what CI's -race smoke asserts.
func BenchmarkSimulateLanes(b *testing.B) {
	core, faults, err := SharedCore()
	if err != nil {
		b.Fatal(err)
	}
	vecs := bist.PseudorandomVectors(benchVectors, 1)
	evals := obs.Default().Counter("faultsim.gate_evals")
	var covFirst float64
	haveFirst := false
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			evals0 := evals.Load()
			var cov float64
			for i := 0; i < b.N; i++ {
				res, err := Simulate(core.Netlist, vecs, SimOptions{
					SimOptions: fault.SimOptions{Faults: faults, LaneWords: w},
					Workers:    1,
				})
				if err != nil {
					b.Fatal(err)
				}
				cov = res.Coverage()
			}
			// Parity across whichever widths actually ran (a -bench
			// filter may exclude w=1).
			if !haveFirst {
				covFirst, haveFirst = cov, true
			} else if cov != covFirst {
				b.Fatalf("coverage diverges across lane widths: %.6f vs %.6f at w=%d", covFirst, cov, w)
			}
			b.ReportMetric(cov*100, "coverage%")
			b.ReportMetric(float64(w), "lane-words")
			b.ReportMetric(float64(benchVectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
			b.ReportMetric(float64(evals.Load()-evals0)/(float64(benchVectors)*float64(b.N)), "gate-evals/cycle")
		})
	}
}

// BenchmarkSimulateArtifacts prices the content-addressed artifact
// cache on the serial Table-1 workload at the winning lane width:
// `cold` resolves through a fresh store every iteration, so each run
// pays the compile and the whole-trace good-machine prefill; `warm`
// resolves through a store primed once outside the timer, so every
// timed run performs zero compiles and zero good-machine cycles — the
// repeated-submission / matrix-cell path. The cold/warm gap is the
// per-job cost the cache retires; BENCH_4.json records both entries
// with their artifact state.
func BenchmarkSimulateArtifacts(b *testing.B) {
	d, err := GetDesign(designs.DefaultID)
	if err != nil {
		b.Fatal(err)
	}
	vecs := bist.PseudorandomVectors(benchVectors, 1)
	const lanes = 8
	run := func(b *testing.B, store *artifacts.Store) float64 {
		res, err := Simulate(d.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: d.Faults, LaneWords: lanes},
			Workers:    1,
			DesignHash: d.Hash,
			Artifacts:  store,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Coverage()
	}
	report := func(b *testing.B, cov float64) {
		b.ReportMetric(cov*100, "coverage%")
		b.ReportMetric(lanes, "lane-words")
		b.ReportMetric(float64(benchVectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
	}
	b.Run("cold", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			cov = run(b, artifacts.NewStore(0))
		}
		report(b, cov)
	})
	b.Run("warm", func(b *testing.B) {
		store := artifacts.NewStore(0)
		goodCycles := obs.Default().Counter("faultsim.good_cycles")
		run(b, store) // prime: compile + prefill land in the store
		good0 := goodCycles.Load()
		b.ResetTimer()
		var cov float64
		for i := 0; i < b.N; i++ {
			cov = run(b, store)
		}
		b.StopTimer()
		if g := goodCycles.Load() - good0; g != 0 {
			b.Fatalf("warm runs simulated %d good-machine cycles, want 0", g)
		}
		report(b, cov)
	})
}

func BenchmarkSimulateSharded(b *testing.B) {
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSimulate(b, workers, fault.KernelCompiled)
		})
	}
}

// BenchmarkSimulateKernels pits the kernels against each other on the
// serial path: `reference` is the pre-compiled-kernel WordSim full
// sweep, `compiled` the event-driven kernel with good-machine caching.
// scripts/bench_kernel.sh records both into BENCH_3.json; the acceptance
// bar is ≥ 3× wall-clock on `compiled` versus `reference`.
func BenchmarkSimulateKernels(b *testing.B) {
	b.Run("reference", func(b *testing.B) { benchSimulate(b, 1, fault.KernelReference) })
	b.Run("compiled", func(b *testing.B) { benchSimulate(b, 1, fault.KernelCompiled) })
}

// BenchmarkMetricsOverhead measures what the metric instrumentation on
// the compiled-kernel hot path costs: the same serial workload with the
// registry armed (default) versus disarmed via obs.SetArmed, which
// turns every Counter.Add and Histogram.Observe into a load-and-skip.
// The acceptance bar is ≤ 1% wall-clock difference — the per-segment
// counter adds must stay invisible next to the per-vector simulation
// work. Compare:
//
//	go test -bench MetricsOverhead -benchtime 3x ./internal/engine
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("armed", func(b *testing.B) {
		obs.SetArmed(true)
		benchSimulate(b, 1, fault.KernelCompiled)
	})
	b.Run("disarmed", func(b *testing.B) {
		obs.SetArmed(false)
		defer obs.SetArmed(true)
		benchSimulate(b, 1, fault.KernelCompiled)
	})
}
