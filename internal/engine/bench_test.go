package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bist"
	"repro/internal/fault"
	"repro/internal/obs"
)

// benchWorkload is the Table-1-scale pseudorandom campaign on the
// gate-level DSP core: the full collapsed fault list against 8192 LFSR
// vectors, the same workload shape cmd/experiments runs for the paper
// tables. Compare BenchmarkSimulateSerial with the sharded variants:
//
//	go test -bench Simulate -benchtime 3x ./internal/engine
//
// The acceptance bar is ≥ 2× wall-clock speedup at 4+ workers.
const benchVectors = 8192

func benchSimulate(b *testing.B, workers int, kernel fault.Kernel) {
	core, faults, err := SharedCore()
	if err != nil {
		b.Fatal(err)
	}
	vecs := bist.PseudorandomVectors(benchVectors, 1)
	evals := obs.Default().Counter("faultsim.gate_evals")
	evals0 := evals.Load()
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(core.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: faults, Kernel: kernel},
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		cov = res.Coverage()
	}
	b.ReportMetric(cov*100, "coverage%")
	b.ReportMetric(float64(benchVectors)*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
	// Gate evaluations per applied vector cycle, from the obs counter
	// delta over the timed runs (the saving the event-driven kernel's
	// whole point; the reference kernel counts whole gates, the compiled
	// kernel compiled instructions).
	b.ReportMetric(float64(evals.Load()-evals0)/(float64(benchVectors)*float64(b.N)), "gate-evals/cycle")
}

func BenchmarkSimulateSerial(b *testing.B) { benchSimulate(b, 1, fault.KernelCompiled) }

func BenchmarkSimulateSharded(b *testing.B) {
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSimulate(b, workers, fault.KernelCompiled)
		})
	}
}

// BenchmarkSimulateKernels pits the kernels against each other on the
// serial path: `reference` is the pre-compiled-kernel WordSim full
// sweep, `compiled` the event-driven kernel with good-machine caching.
// scripts/bench_kernel.sh records both into BENCH_3.json; the acceptance
// bar is ≥ 3× wall-clock on `compiled` versus `reference`.
func BenchmarkSimulateKernels(b *testing.B) {
	b.Run("reference", func(b *testing.B) { benchSimulate(b, 1, fault.KernelReference) })
	b.Run("compiled", func(b *testing.B) { benchSimulate(b, 1, fault.KernelCompiled) })
}

// BenchmarkMetricsOverhead measures what the metric instrumentation on
// the compiled-kernel hot path costs: the same serial workload with the
// registry armed (default) versus disarmed via obs.SetArmed, which
// turns every Counter.Add and Histogram.Observe into a load-and-skip.
// The acceptance bar is ≤ 1% wall-clock difference — the per-segment
// counter adds must stay invisible next to the per-vector simulation
// work. Compare:
//
//	go test -bench MetricsOverhead -benchtime 3x ./internal/engine
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("armed", func(b *testing.B) {
		obs.SetArmed(true)
		benchSimulate(b, 1, fault.KernelCompiled)
	})
	b.Run("disarmed", func(b *testing.B) {
		obs.SetArmed(false)
		defer obs.SetArmed(true)
		benchSimulate(b, 1, fault.KernelCompiled)
	})
}
