package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

func testServer(t *testing.T, opts QueueOptions) (*httptest.Server, *Queue) {
	t.Helper()
	if opts.Exec == nil {
		opts.Exec = func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			update(Progress{Done: spec.Vectors.Count, Total: spec.Vectors.Count, Coverage: 0.75})
			return &JobResult{Coverage: 0.75, Cycles: spec.Vectors.Count, Faults: 42, Detected: 31}, nil
		}
	}
	q := NewQueue(opts)
	q.Start()
	srv := httptest.NewServer(NewServer(q))
	t.Cleanup(srv.Close)
	return srv, q
}

func decode(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestServerJobLifecycle drives the full submit → poll → result flow.
func TestServerJobLifecycle(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":512},"workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var job Job
	decode(t, resp, &job)
	if job.ID == "" || job.Spec.Kind != JobFaultSim {
		t.Fatalf("submitted job %+v", job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		decode(t, resp, &job)
		if job.State == JobCompleted {
			break
		}
		if job.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %q)", job.State, job.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.Progress.Done != 512 || job.Progress.Coverage != 0.75 {
		t.Fatalf("final progress %+v", job.Progress)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", resp.StatusCode)
	}
	var res JobResult
	decode(t, resp, &res)
	if res.Coverage != 0.75 || res.Cycles != 512 || res.Faults != 42 {
		t.Fatalf("result %+v", res)
	}

	var list struct{ Jobs []Job }
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("job list %+v", list.Jobs)
	}

	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string
		Jobs   map[JobState]int
	}
	decode(t, resp, &health)
	if health.Status != "ok" || health.Jobs[JobCompleted] != 1 {
		t.Fatalf("health %+v", health)
	}
}

// TestServerErrorPaths covers the 400/404/409 surface.
func TestServerErrorPaths(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"kind":"bogus"}`, http.StatusUnprocessableEntity},
		{`{"kind":"fault_sim","vectors":{"kind":"csv","count":10}}`, http.StatusUnprocessableEntity},
		{`{"kind":"fault_sim","vectors":{"kind":"bist"}}`, http.StatusBadRequest},
		{`{"kind":"fault_sim","vectors":{"kind":"bist","count":10},"unknown_field":1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			Retryable bool   `json:"retryable"`
			Legacy    string `json:"error"`
		}
		decode(t, resp, &envelope)
		if resp.StatusCode != tc.want {
			t.Fatalf("submit %q status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
		if envelope.Code == "" || envelope.Message == "" || envelope.Legacy == "" {
			t.Fatalf("submit %q error envelope %+v missing fields", tc.body, envelope)
		}
		if tc.want == http.StatusUnprocessableEntity && envelope.Code != "unknown_kind" {
			t.Fatalf("submit %q code %q, want unknown_kind", tc.body, envelope.Code)
		}
	}
	for _, path := range []string{"/v1/jobs/job-9999", "/v1/jobs/job-9999/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServerResultNotReady answers 409 with a retryable job_not_finished
// envelope (carrying the live progress) while the job is still queued or
// running.
func TestServerResultNotReady(t *testing.T) {
	release := make(chan struct{})
	srv, _ := testServer(t, QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			<-release
			return &JobResult{Coverage: 1}, nil
		},
	})
	defer close(release)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result status %d, want 409", resp.StatusCode)
	}
	var envelope struct {
		Code      string         `json:"code"`
		Retryable bool           `json:"retryable"`
		Detail    map[string]any `json:"detail"`
	}
	decode(t, resp, &envelope)
	if envelope.Code != "job_not_finished" || !envelope.Retryable {
		t.Fatalf("early result envelope %+v, want retryable job_not_finished", envelope)
	}
	if envelope.Detail["state"] == nil {
		t.Fatalf("early result envelope %+v lacks the job state detail", envelope)
	}
}

// TestServerV1Surface: the versioned routes answer, /v1/meta documents
// the contract, and the removed legacy aliases answer 404 with a Link
// to the /v1 successor.
func TestServerV1Surface(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":32}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("v1 submit status %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}
	var job Job
	decode(t, resp, &job)
	for _, path := range []string{"/v1/jobs", "/v1/jobs/" + job.ID, "/v1/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Service      string   `json:"service"`
		APIVersion   string   `json:"api_version"`
		JobKinds     []string `json:"job_kinds"`
		Capabilities []string `json:"capabilities"`
		Designs      []string `json:"designs"`
	}
	decode(t, resp, &meta)
	if meta.Service != "sbstd" || meta.APIVersion != "v1" || len(meta.JobKinds) != 7 {
		t.Fatalf("meta %+v", meta)
	}
	if !slices.Contains(meta.Capabilities, "designs") {
		t.Fatalf("meta capabilities %v lack designs", meta.Capabilities)
	}
	if !slices.Contains(meta.Designs, "dsp") || !slices.Contains(meta.Designs, "bench/s27") {
		t.Fatalf("meta designs %v lack the bundled IDs", meta.Designs)
	}

	// The unversioned aliases are gone: 404 with a Link header naming
	// the successor route, and no Deprecation header (nothing left to
	// deprecate).
	for _, path := range []string{"/jobs", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("removed legacy GET %s status %d, want 404", path, resp.StatusCode)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1"+path) || !strings.Contains(link, "successor-version") {
			t.Fatalf("removed legacy GET %s Link header %q does not name the /v1 successor", path, link)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Fatalf("removed legacy GET %s still carries a Deprecation header", path)
		}
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":32}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed legacy POST /jobs status %d, want 404", resp.StatusCode)
	}
}

// TestServerSpecMismatch: a sub-spec on the wrong kind is a 422
// spec_mismatch — the kind-safety half of the /v1 contract.
func TestServerSpecMismatch(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	for _, body := range []string{
		`{"kind":"fault_sim","vectors":{"kind":"bist","count":32},"ga":{"population":4}}`,
		`{"kind":"fault_sim","vectors":{"kind":"bist","count":32},"online":{"intervals":2}}`,
		`{"kind":"online_burst","ga":{"population":4}}`,
		`{"kind":"ga_search","vectors":{"kind":"bist","count":32}}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		}
		decode(t, resp, &envelope)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("submit %q status %d, want 422", body, resp.StatusCode)
		}
		if envelope.Code != "spec_mismatch" || envelope.Retryable {
			t.Fatalf("submit %q envelope %+v, want non-retryable spec_mismatch", body, envelope)
		}
	}
}

// TestServerListPagination drives GET /v1/jobs cursor pagination and
// the kind/state filters against a queue of parked jobs.
func TestServerListPagination(t *testing.T) {
	release := make(chan struct{})
	srv, q := testServer(t, QueueOptions{
		Workers: 1, MaxPending: 16,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			<-release
			return &JobResult{}, nil
		},
	})
	defer close(release)
	var ids []string
	for i := 0; i < 5; i++ {
		spec := JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: api.VecBIST, Count: 8}}
		if i == 4 {
			spec = JobSpec{Kind: JobGaSearch, Ga: &api.GaSpec{Population: 4}}
		}
		j, err := q.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	page := func(query string) (api.JobList, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		var l api.JobList
		code := resp.StatusCode
		if code == http.StatusOK {
			decode(t, resp, &l)
		} else {
			resp.Body.Close()
		}
		return l, code
	}

	// Walk in pages of 2: 2 + 2 + 1, stable submission order.
	var walked []string
	after := ""
	for {
		query := "?limit=2"
		if after != "" {
			query += "&after=" + after
		}
		l, code := page(query)
		if code != http.StatusOK {
			t.Fatalf("page %q status %d", query, code)
		}
		if len(l.Jobs) > 2 {
			t.Fatalf("page %q has %d jobs, want <= 2", query, len(l.Jobs))
		}
		for _, j := range l.Jobs {
			walked = append(walked, j.ID)
		}
		if l.NextAfter == "" {
			break
		}
		after = l.NextAfter
	}
	if !slices.Equal(walked, ids) {
		t.Fatalf("paged walk %v, want %v", walked, ids)
	}

	// Kind filter.
	l, code := page("?kind=ga_search")
	if code != http.StatusOK || len(l.Jobs) != 1 || l.Jobs[0].ID != ids[4] {
		t.Fatalf("kind filter: code %d jobs %+v", code, l.Jobs)
	}
	if l.NextAfter != "" {
		t.Fatalf("exhausted filter page has next_after %q", l.NextAfter)
	}

	// Bad inputs: unknown kind 422, bad state/limit/cursor 400.
	if _, code := page("?kind=bogus"); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown kind filter status %d, want 422", code)
	}
	for _, q := range []string{"?state=bogus", "?limit=x", "?limit=-1", "?after=job-9999"} {
		if _, code := page(q); code != http.StatusBadRequest {
			t.Fatalf("list %q status %d, want 400", q, code)
		}
	}
}

// TestServerUnknownDesign: a spec naming a design the registry cannot
// build is rejected at submission with 422 unknown_design, both as the
// top-level design field and inside a matrix; a known non-default
// design is accepted.
func TestServerUnknownDesign(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	for _, body := range []string{
		`{"kind":"fault_sim","design":"bench/ghost","vectors":{"kind":"bist","count":32}}`,
		`{"kind":"fault_sim","design":"fam/w99r4s1l1p1","vectors":{"kind":"bist","count":32}}`,
		`{"kind":"campaign_matrix","matrix":{"designs":["dsp","bench/ghost"],"schemes":[{"kind":"bist","count":32}]}}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			Retryable bool   `json:"retryable"`
		}
		decode(t, resp, &envelope)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("submit %q status %d, want 422", body, resp.StatusCode)
		}
		if envelope.Code != "unknown_design" || envelope.Retryable {
			t.Fatalf("submit %q envelope %+v, want non-retryable unknown_design", body, envelope)
		}
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","design":"bench/s27","vectors":{"kind":"bist","count":32}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("known design rejected: status %d, want 202", resp.StatusCode)
	}
}

// TestServerLeaseEndpoints drives the worker protocol over HTTP:
// acquire → heartbeat → upload against a live pool, plus the
// jobs-only-server and no-work answers.
func TestServerLeaseEndpoints(t *testing.T) {
	// Without a pool, lease routes answer 503.
	bare, _ := testServer(t, QueueOptions{Workers: 1})
	resp, err := http.Post(bare.URL+"/v1/leases", "application/json",
		strings.NewReader(`{"worker_id":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lease acquire without a pool = %d, want 503", resp.StatusCode)
	}

	pool := NewLeasePool(PoolOptions{TTL: time.Second})
	defer pool.Close()
	q := NewQueue(QueueOptions{Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		return &JobResult{}, nil
	}})
	q.Start()
	srv := httptest.NewServer(NewServerWith(q, ServerOptions{Pool: pool}))
	t.Cleanup(srv.Close)

	// No registered work: 204.
	resp, err = http.Post(srv.URL+"/v1/leases", "application/json",
		strings.NewReader(`{"worker_id":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("lease acquire with no work = %d, want 204", resp.StatusCode)
	}

	h, err := pool.Register("job-7", poolSpec(), 8, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/v1/leases", "application/json",
		strings.NewReader(`{"worker_id":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease acquire = %d, want 200", resp.StatusCode)
	}
	var lease struct {
		ID   string `json:"id"`
		Unit struct {
			FaultLo int `json:"fault_lo"`
			FaultHi int `json:"fault_hi"`
		} `json:"unit"`
		TTLMillis int `json:"ttl_ms"`
	}
	decode(t, resp, &lease)
	if lease.ID == "" || lease.Unit.FaultHi != 8 || lease.TTLMillis <= 0 {
		t.Fatalf("lease %+v", lease)
	}

	hb, _ := json.Marshal(map[string]any{"worker_id": "w1", "progress": map[string]int{"done": 4}})
	resp, err = http.Post(srv.URL+"/v1/leases/"+lease.ID+"/heartbeat", "application/json", strings.NewReader(string(hb)))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		TTLMillis int `json:"ttl_ms"`
	}
	decode(t, resp, &ack)
	if ack.TTLMillis <= 0 {
		t.Fatalf("heartbeat ack %+v", ack)
	}

	up, _ := json.Marshal(identityResult("w1", toWorkUnit(t, pool, lease.ID), 16))
	resp, err = http.Post(srv.URL+"/v1/leases/"+lease.ID+"/result", "application/json", strings.NewReader(string(up)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("result upload = %d, want 204", resp.StatusCode)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The lease is spent: further calls answer 409 lease_gone.
	resp, err = http.Post(srv.URL+"/v1/leases/"+lease.ID+"/fail", "application/json",
		strings.NewReader(`{"worker_id":"w1","reason":"late"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fail on spent lease = %d, want 409", resp.StatusCode)
	}
	var envelope struct {
		Code string `json:"code"`
	}
	decode(t, resp, &envelope)
	if envelope.Code != "lease_gone" {
		t.Fatalf("fail on spent lease code %q, want lease_gone", envelope.Code)
	}
}

// toWorkUnit fetches the wire unit behind a granted lease.
func toWorkUnit(t *testing.T, p *LeasePool, leaseID string) api.WorkUnit {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.leases[leaseID]
	if !ok {
		t.Fatalf("lease %s not in pool", leaseID)
	}
	return l.unit.wire
}

// TestServerGracefulDrain: during a drain, running work finishes,
// submissions get 503 and healthz reports draining.
func TestServerGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv, q := testServer(t, QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			started <- struct{}{}
			<-release
			return &JobResult{Coverage: 0.5}, nil
		},
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	waitDraining := time.Now().Add(5 * time.Second)
	for !q.Draining() {
		if time.Now().After(waitDraining) {
			t.Fatal("queue never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct{ Status string }
	decode(t, resp, &health)
	if health.Status != "draining" {
		t.Fatalf("health status %q during drain", health.Status)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(job.ID)
	if got.State != JobCompleted {
		t.Fatalf("job state %s after graceful drain, want completed", got.State)
	}
}

// TestServerRealFaultSimJob runs one genuine sharded campaign through
// the HTTP surface against the gate-level core.
func TestServerRealFaultSimJob(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign in -short mode")
	}
	srv, _ := testServer(t, QueueOptions{
		Workers: 1,
		Exec:    NewExecutor(ExecConfig{Workers: 4}),
	})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":1024,"seed":1},"workers":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	deadline := time.Now().Add(2 * time.Minute)
	for job.State != JobCompleted {
		if job.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %q)", job.State, job.Error)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		decode(t, resp, &job)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res JobResult
	decode(t, resp, &res)
	if res.Faults == 0 || res.Detected == 0 || res.Coverage <= 0.5 || res.Cycles != 1024 {
		t.Fatalf("implausible campaign result %+v", res)
	}
	fmt.Printf("real campaign: %d/%d faults, coverage %.2f%%\n", res.Detected, res.Faults, 100*res.Coverage)
}
