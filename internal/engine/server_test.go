package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, opts QueueOptions) (*httptest.Server, *Queue) {
	t.Helper()
	if opts.Exec == nil {
		opts.Exec = func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			update(Progress{Done: spec.Vectors.Count, Total: spec.Vectors.Count, Coverage: 0.75})
			return &JobResult{Coverage: 0.75, Cycles: spec.Vectors.Count, Faults: 42, Detected: 31}, nil
		}
	}
	q := NewQueue(opts)
	q.Start()
	srv := httptest.NewServer(NewServer(q))
	t.Cleanup(srv.Close)
	return srv, q
}

func decode(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestServerJobLifecycle drives the full submit → poll → result flow.
func TestServerJobLifecycle(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":512},"workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var job Job
	decode(t, resp, &job)
	if job.ID == "" || job.Spec.Kind != JobFaultSim {
		t.Fatalf("submitted job %+v", job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(srv.URL + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		decode(t, resp, &job)
		if job.State == JobCompleted {
			break
		}
		if job.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %q)", job.State, job.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.Progress.Done != 512 || job.Progress.Coverage != 0.75 {
		t.Fatalf("final progress %+v", job.Progress)
	}

	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", resp.StatusCode)
	}
	var res JobResult
	decode(t, resp, &res)
	if res.Coverage != 0.75 || res.Cycles != 512 || res.Faults != 42 {
		t.Fatalf("result %+v", res)
	}

	var list struct{ Jobs []Job }
	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("job list %+v", list.Jobs)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string
		Jobs   map[JobState]int
	}
	decode(t, resp, &health)
	if health.Status != "ok" || health.Jobs[JobCompleted] != 1 {
		t.Fatalf("health %+v", health)
	}
}

// TestServerErrorPaths covers the 400/404/409 surface.
func TestServerErrorPaths(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{Workers: 1})

	for _, body := range []string{
		`{not json`,
		`{"kind":"bogus"}`,
		`{"kind":"fault_sim","vectors":{"kind":"bist"}}`,
		`{"kind":"fault_sim","vectors":{"kind":"bist","count":10},"unknown_field":1}`,
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %q status %d, want 400", body, resp.StatusCode)
		}
	}
	for _, path := range []string{"/jobs/job-9999", "/jobs/job-9999/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServerResultNotReady answers 409 with the live progress while the
// job is still queued or running.
func TestServerResultNotReady(t *testing.T) {
	release := make(chan struct{})
	srv, _ := testServer(t, QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			<-release
			return &JobResult{Coverage: 1}, nil
		},
	})
	defer close(release)
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result status %d, want 409", resp.StatusCode)
	}
}

// TestServerGracefulDrain: during a drain, running work finishes,
// submissions get 503 and healthz reports draining.
func TestServerGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv, q := testServer(t, QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			started <- struct{}{}
			<-release
			return &JobResult{Coverage: 0.5}, nil
		},
	})
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	waitDraining := time.Now().Add(5 * time.Second)
	for !q.Draining() {
		if time.Now().After(waitDraining) {
			t.Fatal("queue never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct{ Status string }
	decode(t, resp, &health)
	if health.Status != "draining" {
		t.Fatalf("health status %q during drain", health.Status)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(job.ID)
	if got.State != JobCompleted {
		t.Fatalf("job state %s after graceful drain, want completed", got.State)
	}
}

// TestServerRealFaultSimJob runs one genuine sharded campaign through
// the HTTP surface against the gate-level core.
func TestServerRealFaultSimJob(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign in -short mode")
	}
	srv, _ := testServer(t, QueueOptions{
		Workers: 1,
		Exec:    NewExecutor(ExecConfig{Workers: 4}),
	})
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fault_sim","vectors":{"kind":"bist","count":1024,"seed":1},"workers":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decode(t, resp, &job)
	deadline := time.Now().Add(2 * time.Minute)
	for job.State != JobCompleted {
		if job.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %q)", job.State, job.Error)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err = http.Get(srv.URL + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		decode(t, resp, &job)
	}
	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res JobResult
	decode(t, resp, &res)
	if res.Faults == 0 || res.Detected == 0 || res.Coverage <= 0.5 || res.Cycles != 1024 {
		t.Fatalf("implausible campaign result %+v", res)
	}
	fmt.Printf("real campaign: %d/%d faults, coverage %.2f%%\n", res.Detected, res.Faults, 100*res.Coverage)
}
