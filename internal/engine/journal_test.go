package engine

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/api"
)

// mustFrames renders records into wire bytes the way Append would.
func mustFrames(t testing.TB, recs ...JournalRecord) []byte {
	t.Helper()
	var out []byte
	for i := range recs {
		frame, err := encodeFrame(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, frame...)
	}
	return out
}

// TestJournalAppendReplay: records appended in one life come back in
// append order in the next, sync and async alike.
func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	at := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	want := []JournalRecord{
		{T: recSubmit, JobID: "job-0001", Seq: 1, At: at, NextID: 1,
			Job: &Job{ID: "job-0001", Spec: specN(100), State: JobQueued, Created: at}},
		{T: recState, JobID: "job-0001", Seq: 2, At: at.Add(time.Second), State: JobRunning, Attempts: 1},
		{T: recProgress, JobID: "job-0001", Seq: 3, Progress: &Progress{Done: 50, Total: 100}},
		{T: recFinish, JobID: "job-0001", Seq: 4, At: at.Add(2 * time.Second),
			State: JobCompleted, Result: &JobResult{Coverage: 0.5, Cycles: 100}, Attempts: 1},
	}
	for i, rec := range want {
		// Alternate sync/async: the close below must group-commit the
		// async stragglers.
		if err := j.Append(rec, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial frame; the
// reopen keeps every whole record, drops the tail, and truncates the
// file so the next append starts on a clean boundary.
func TestJournalTornTail(t *testing.T) {
	full := mustFrames(t,
		JournalRecord{T: recSubmit, JobID: "job-0001", Job: &Job{ID: "job-0001", Spec: specN(1), State: JobQueued}},
		JournalRecord{T: recState, JobID: "job-0001", State: JobRunning, Attempts: 1},
	)
	tornFrame := mustFrames(t, JournalRecord{T: recFinish, JobID: "job-0001", State: JobCompleted})
	cases := map[string][]byte{
		"short header":    append(append([]byte{}, full...), tornFrame[:5]...),
		"short payload":   append(append([]byte{}, full...), tornFrame[:len(tornFrame)-3]...),
		"flipped payload": append(append([]byte{}, full...), flipBit(tornFrame, 9)...),
		"flipped length":  append(append([]byte{}, full...), flipBit(tornFrame, 2)...),
		"zero garbage":    append(append([]byte{}, full...), make([]byte, 11)...),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.wal")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			j, recs, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 || recs[0].T != recSubmit || recs[1].T != recState {
				t.Fatalf("salvaged %d records (%+v), want the 2 whole ones", len(recs), recs)
			}
			// The torn bytes are physically gone: appending and reopening
			// yields 3 clean records.
			if err := j.Append(JournalRecord{T: recFinish, JobID: "job-0001", State: JobFailed}, true); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, recs2, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if len(recs2) != 3 || recs2[2].State != JobFailed {
				t.Fatalf("post-truncate append replayed as %+v", recs2)
			}
		})
	}
}

func flipBit(frame []byte, i int) []byte {
	out := append([]byte{}, frame...)
	out[i] ^= 0x40
	return out
}

// TestJournalTruncate: Mark/Truncate drop exactly the covered prefix,
// keep the tail byte-for-byte, and the journal stays appendable through
// the file swap.
func TestJournalTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(JournalRecord{T: recSubmit, JobID: "old", NextID: i,
			Job: &Job{ID: "old", Spec: specN(i), State: JobQueued}}, true); err != nil {
			t.Fatal(err)
		}
	}
	mark := j.Mark()
	if err := j.Append(JournalRecord{T: recState, JobID: "old", State: JobRunning, Attempts: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := j.Truncate(mark); err != nil {
		t.Fatal(err)
	}
	// The swapped-in file descriptor still appends correctly.
	if err := j.Append(JournalRecord{T: recFinish, JobID: "old", State: JobCompleted}, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 2 || recs[0].T != recState || recs[1].T != recFinish {
		t.Fatalf("post-truncate journal replays %+v, want the 2 tail records", recs)
	}

	// Truncating everything leaves an empty, working journal.
	if err := j2.Truncate(j2.Mark()); err != nil {
		t.Fatal(err)
	}
	if got := j2.Mark(); got != 0 {
		t.Fatalf("fully truncated journal has %d logical bytes", got)
	}
}

// TestDecodeJournalPrefixStability is the replay contract in miniature:
// re-decoding the good prefix reproduces exactly the same records, so a
// crash between checkpoint and truncation (both files readable) cannot
// diverge from a clean shutdown.
func TestDecodeJournalPrefixStability(t *testing.T) {
	data := mustFrames(t,
		JournalRecord{T: recSubmit, JobID: "a", Job: &Job{ID: "a", Spec: specN(1), State: JobQueued}},
		JournalRecord{T: recProgress, JobID: "a", Progress: &Progress{Done: 1, Total: 2}},
	)
	data = append(data, 0xde, 0xad) // torn tail
	recs, good := decodeJournal(data)
	recs2, good2 := decodeJournal(data[:good])
	if good2 != good || !reflect.DeepEqual(recs, recs2) {
		t.Fatalf("prefix re-decode diverged: %d/%d records, %d/%d bytes",
			len(recs), len(recs2), good, good2)
	}
}

// FuzzReplayJournal: decodeJournal must never panic, never read past
// the reported good offset, and always yield a stable prefix — whatever
// bytes a crash, bit rot, or an adversarial writer left behind.
func FuzzReplayJournal(f *testing.F) {
	valid := mustFrames(f,
		JournalRecord{T: recSubmit, JobID: "job-0001", Seq: 1, NextID: 1,
			Job: &Job{ID: "job-0001", Spec: JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: "bist", Count: 64}}, State: JobQueued}},
		JournalRecord{T: recFinish, JobID: "job-0001", Seq: 2, State: JobCompleted,
			Result: &JobResult{Coverage: 1}},
	)
	f.Add(valid)
	f.Add(valid[:len(valid)-4])                       // torn tail
	f.Add(flipBit(valid, len(valid)/2))               // payload corruption
	f.Add(flipBit(valid, 0))                          // length corruption
	f.Add([]byte{})                                   // empty file
	f.Add(make([]byte, 64))                           // all zeros
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	// A frame whose payload is valid JSON but not a record (empty T).
	bogus, _ := json.Marshal(map[string]int{"x": 1})
	frame := make([]byte, 8+len(bogus))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(bogus)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(bogus, castagnoli))
	copy(frame[8:], bogus)
	f.Add(append(append([]byte{}, valid...), frame...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := decodeJournal(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
		recs2, good2 := decodeJournal(data[:good])
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("prefix not stable: %d bytes/%d recs, re-decode %d bytes/%d recs",
				good, len(recs), good2, len(recs2))
		}
		for i := range recs {
			if recs[i].T == "" {
				t.Fatalf("record %d has empty type", i)
			}
		}
		// OpenJournal on the same bytes must agree with the pure decoder
		// and leave a cleanly truncated file behind.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs3, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if len(recs3) != len(recs) {
			t.Fatalf("OpenJournal replayed %d records, decodeJournal %d", len(recs3), len(recs))
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != good {
			t.Fatalf("truncated file is %d bytes (err %v), want %d", fi.Size(), err, good)
		}
	})
}

// replayRecords is the journal from one deterministic little campaign:
// two submits, one finished, one mid-run at the crash.
func replayRecords() []JournalRecord {
	at := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	return []JournalRecord{
		{T: recSubmit, JobID: "job-0001", Seq: 1, At: at, NextID: 1,
			Job: &Job{ID: "job-0001", Spec: specN(100), State: JobQueued, Created: at}},
		{T: recSubmit, JobID: "job-0002", Seq: 1, At: at, NextID: 2,
			Job: &Job{ID: "job-0002", Spec: specN(200), State: JobQueued, Created: at}},
		{T: recState, JobID: "job-0001", Seq: 2, At: at.Add(time.Second), State: JobRunning, Attempts: 1},
		{T: recProgress, JobID: "job-0001", Seq: 3, Progress: &Progress{Done: 100, Total: 100, Coverage: 0.5}},
		{T: recFinish, JobID: "job-0001", Seq: 4, At: at.Add(2 * time.Second), State: JobCompleted,
			Result: &JobResult{Coverage: 0.5, Cycles: 100}, Attempts: 1},
		{T: recState, JobID: "job-0002", Seq: 2, At: at.Add(3 * time.Second), State: JobRunning, Attempts: 1},
		{T: recProgress, JobID: "job-0002", Seq: 3, Progress: &Progress{Done: 40, Total: 200}},
	}
}

func recoverInto(t *testing.T, recs []JournalRecord) []Job {
	t.Helper()
	q := NewQueue(QueueOptions{
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		},
	})
	if err := q.Recover("", recs); err != nil {
		t.Fatal(err)
	}
	return q.Jobs()
}

// TestReplayIdempotence: applying a journal twice (the overlap a crash
// between checkpoint write and journal truncation produces) must equal
// applying it once, record for record and job for job.
func TestReplayIdempotence(t *testing.T) {
	recs := replayRecords()
	once := recoverInto(t, recs)
	twice := recoverInto(t, append(append([]JournalRecord{}, recs...), recs...))
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("replaying twice diverged:\nonce  %+v\ntwice %+v", once, twice)
	}

	// And the replayed state itself is what the records say: job-0001
	// keeps its exactly-once result, job-0002 goes back to queued.
	if len(once) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(once))
	}
	j1, j2 := once[0], once[1]
	if j1.State != JobCompleted || j1.Result == nil || j1.Result.Cycles != 100 {
		t.Fatalf("finished job replayed as %+v", j1)
	}
	if j2.State != JobQueued || j2.Attempts != 1 || j2.Progress.Done != 40 {
		t.Fatalf("mid-run job replayed as %+v", j2)
	}
}

// TestRecoverCheckpointJournalOverlap is the crash window between a
// durable checkpoint and its journal truncation: recovering from
// checkpoint+full-journal must equal recovering from the journal alone.
func TestRecoverCheckpointJournalOverlap(t *testing.T) {
	recs := replayRecords()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")

	// Build the checkpoint by recovering the prefix (through job-0001's
	// finish) and checkpointing that queue — exactly the bytes a real
	// Checkpoint() would have written before the crash.
	q1 := NewQueue(QueueOptions{Checkpoint: ckpt,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		}})
	if err := q1.Recover("", recs[:5]); err != nil {
		t.Fatal(err)
	}
	if err := q1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	q2 := NewQueue(QueueOptions{
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		}})
	if err := q2.Recover(ckpt, recs); err != nil {
		t.Fatal(err)
	}
	want := recoverInto(t, recs)
	if got := q2.Jobs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint+journal overlap diverged from journal-only:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestRecoverSeedsEventRing: after recovery an SSE subscriber with a
// pre-crash Last-Event-ID gets the journaled tail replayed under the
// original sequence numbers, and live numbering restarts past the slack
// gap so no seq is ever reused.
func TestRecoverSeedsEventRing(t *testing.T) {
	recs := replayRecords()
	events := NewJobEventBroker()
	q := NewQueue(QueueOptions{Events: events,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		}})
	if err := q.Recover("", recs); err != nil {
		t.Fatal(err)
	}
	replay, _, cancel := events.Subscribe("job-0001", 2)
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 3 || replay[1].Seq != 4 {
		t.Fatalf("Last-Event-ID=2 replay %+v, want seqs 3,4", replay)
	}
	if replay[1].Result == nil || replay[1].Result.Cycles != 100 {
		t.Fatalf("seeded result event %+v lost its payload", replay[1])
	}
	// Live numbering resumes beyond the recovered max plus slack.
	seq := events.Publish(api.JobEvent{JobID: "job-0001", Type: api.JobEventState, State: JobQueued})
	if seq <= 4+journalSeqSlack {
		t.Fatalf("post-recovery publish got seq %d, want > %d", seq, 4+journalSeqSlack)
	}
}

// TestSubmitIdempotency: a duplicate submit_id returns the original job
// instead of enqueueing a second campaign — live and across recovery.
func TestSubmitIdempotency(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &JobResult{Coverage: 1}, nil
	}
	q := NewQueue(QueueOptions{Workers: 1, Exec: exec})
	q.Start()
	spec := specN(100)
	spec.SubmitID = "cli/retry-abc"
	first, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate submit created %s, want %s", dup.ID, first.ID)
	}
	other := specN(100)
	other.SubmitID = "cli/retry-def"
	second, err := q.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("distinct submit_id deduplicated")
	}
	if jobs := q.Jobs(); len(jobs) != 2 {
		t.Fatalf("%d jobs enqueued, want 2", len(jobs))
	}
	close(block)

	// The dedup index survives journal replay: a client retrying its
	// submit against the restarted coordinator still gets the same job.
	at := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	recs := []JournalRecord{{T: recSubmit, JobID: "job-0001", Seq: 1, NextID: 1,
		Job: &Job{ID: "job-0001", Spec: spec, State: JobQueued, Created: at}}}
	q2 := NewQueue(QueueOptions{Exec: exec})
	if err := q2.Recover("", recs); err != nil {
		t.Fatal(err)
	}
	again, err := q2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != "job-0001" {
		t.Fatalf("post-recovery duplicate submit created %s, want job-0001", again.ID)
	}
}

// TestQueueJournalsLifecycle wires a real journal into a running queue
// and checks the full lifecycle lands on disk: submit (sync), start,
// progress, finish — enough for a cold replay to reconstruct the job
// with its result.
func TestQueueJournalsLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(QueueOptions{Workers: 1, Journal: j,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			update(Progress{Done: 1, Total: 2})
			return &JobResult{Coverage: 0.9, Cycles: spec.Vectors.Count}, nil
		}})
	q.Start()
	job, err := q.Submit(specN(64))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, job.ID, JobCompleted)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	types := map[string]int{}
	for _, r := range recs {
		types[r.T]++
	}
	if types[recSubmit] != 1 || types[recState] == 0 || types[recFinish] != 1 {
		t.Fatalf("journal types %v, want 1 submit, ≥1 state, 1 finish", types)
	}
	q2 := NewQueue(QueueOptions{Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		return &JobResult{}, nil
	}})
	if err := q2.Recover("", recs); err != nil {
		t.Fatal(err)
	}
	got, ok := q2.Get(job.ID)
	if !ok || got.State != JobCompleted || got.Result == nil || got.Result.Cycles != 64 {
		t.Fatalf("cold replay reconstructed %+v", got)
	}
}

// TestJournalCheckpointTruncates: a successful checkpoint shrinks the
// journal to just the records appended after the checkpoint's mark.
func TestJournalCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.wal")
	cpath := filepath.Join(dir, "ckpt.json")
	j, _, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	q := NewQueue(QueueOptions{Workers: 1, Journal: j, Checkpoint: cpath,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{Coverage: 1}, nil
		}})
	q.Start()
	job, _ := q.Submit(specN(32))
	waitState(t, q, job.ID, JobCompleted)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := j.Mark(); got != 0 {
		t.Fatalf("journal holds %d bytes after checkpoint, want 0", got)
	}
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, nil) && len(data) != 0 {
		t.Fatalf("journal file holds %d bytes after checkpoint", len(data))
	}
	// And the checkpoint alone reconstructs the finished job.
	q2 := NewQueue(QueueOptions{Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		return &JobResult{}, nil
	}})
	if err := q2.Recover(cpath, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := q2.Get(job.ID); !ok || got.State != JobCompleted {
		t.Fatalf("checkpoint-only recovery got %+v", got)
	}
}
