package engine

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedQueue builds the deterministic queue state behind the golden
// file: a completed, a failed, a still-queued and a panic-requeued job
// (attempts already spent, sitting out its retry backoff) with pinned
// timestamps.
func fixedQueue(t *testing.T, checkpointPath string) *Queue {
	t.Helper()
	clock := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	q := NewQueue(QueueOptions{
		Checkpoint: checkpointPath,
		now:        func() time.Time { return clock },
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		},
	})
	done, _ := q.Submit(JobSpec{Kind: JobFaultSim,
		Vectors: VectorSource{Kind: "bist", Count: 4096, Seed: 1}, Workers: 4})
	bad, _ := q.Submit(JobSpec{Kind: JobSeqATPG, Frames: 3, SampleEvery: 40})
	if _, err := q.Submit(JobSpec{Kind: JobNDetect, NDetect: 5,
		Vectors: VectorSource{Kind: "bist", Count: 2048}}); err != nil {
		t.Fatal(err)
	}
	retrying, _ := q.Submit(JobSpec{Kind: JobFaultSim,
		Vectors: VectorSource{Kind: "bist", Count: 512}, DeadlineSec: 30})
	// Hand-finish the first two without running the pool so the state
	// is fully deterministic.
	q.mu.Lock()
	started := clock.Add(time.Second)
	finished := clock.Add(3 * time.Second)
	j1 := q.jobs[done.ID]
	j1.State = JobCompleted
	j1.Attempts = 1
	j1.Started, j1.Finished = &started, &finished
	j1.Progress = Progress{Done: 4096, Total: 4096, Detected: 8800, Remaining: 520, Coverage: 0.9442}
	j1.Result = &JobResult{Faults: 9320, Detected: 8800, Cycles: 4096, Coverage: 0.9442, Seconds: 2}
	j2 := q.jobs[bad.ID]
	j2.State = JobFailed
	j2.Attempts = 2
	j2.Started, j2.Finished = &started, &finished
	j2.Error = "engine: job panic: simulated"
	// A job that panicked once and went back to queued: Attempts must
	// survive the checkpoint round trip so a restore keeps charging the
	// same retry budget.
	j4 := q.jobs[retrying.ID]
	j4.Attempts = 1
	j4.Error = "engine: job panic: simulated"
	q.mu.Unlock()
	return q
}

// TestCheckpointGoldenRoundTrip pins the on-disk schema: the golden
// file restores into a queue whose own checkpoint is byte-identical.
func TestCheckpointGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "checkpoint.golden.json")
	tmp := filepath.Join(t.TempDir(), "ckpt.json")

	if *update {
		q := fixedQueue(t, tmp)
		if err := q.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	q := NewQueue(QueueOptions{Checkpoint: tmp,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		}})
	if err := q.Restore(golden); err != nil {
		t.Fatal(err)
	}
	// Satellite guarantee: a requeued job's spent attempts survive the
	// round trip, so retry budgets keep charging across restarts.
	if j, ok := q.Get("job-0004"); !ok || j.Attempts != 1 || j.State != JobQueued || j.Spec.DeadlineSec != 30 {
		t.Fatalf("requeued job did not survive restore intact: %+v", j)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("checkpoint round trip drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCheckpointResume is the restart story: drain a queue with work
// still pending, restore the checkpoint into a fresh queue, and watch
// the pending job run to completion while finished results survive.
func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	release := make(chan struct{})
	exec := func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
		if spec.Vectors.Count == 200 {
			// Blocks forever in the first life; a forced drain cancels
			// it back to queued, exactly like a long campaign cut short
			// by SIGTERM.
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ErrInterrupted
			}
		}
		return &JobResult{Coverage: 0.5, Cycles: spec.Vectors.Count}, nil
	}

	q1 := NewQueue(QueueOptions{Workers: 1, Checkpoint: path, Exec: exec})
	q1.Start()
	first, _ := q1.Submit(specN(100))
	waitState(t, q1, first.ID, JobCompleted)
	second, _ := q1.Submit(specN(200))
	waitState(t, q1, second.ID, JobRunning)
	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q1.Drain(drainCtx); err == nil {
		t.Fatal("forced drain of a blocked job reported no deadline error")
	}
	if j, _ := q1.Get(second.ID); j.State != JobQueued {
		t.Fatalf("interrupted job state %s, want queued", j.State)
	}

	close(release)
	q2 := NewQueue(QueueOptions{Workers: 1, Checkpoint: path, Exec: exec})
	if err := q2.Restore(path); err != nil {
		t.Fatal(err)
	}
	if j, ok := q2.Get(first.ID); !ok || j.State != JobCompleted || j.Result == nil || j.Result.Cycles != 100 {
		t.Fatalf("completed job did not survive restart: %+v", j)
	}
	q2.Start()
	j := waitState(t, q2, second.ID, JobCompleted)
	if j.Result == nil || j.Result.Cycles != 200 {
		t.Fatalf("resumed job result %+v", j.Result)
	}
	// A third submission continues the ID sequence instead of reusing
	// job-0002.
	third, err := q2.Submit(specN(300))
	if err != nil {
		t.Fatal(err)
	}
	if third.ID != "job-0003" {
		t.Fatalf("post-restore ID %s, want job-0003", third.ID)
	}
	waitState(t, q2, third.ID, JobCompleted)
	// Settle the pool before t.TempDir cleanup races its checkpoints.
	if err := q2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
