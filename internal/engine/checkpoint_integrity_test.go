package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func integrityQueue(path string) *Queue {
	return NewQueue(QueueOptions{
		Checkpoint: path,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		},
	})
}

// writeGenerations writes two checkpoint generations: one job in the
// .prev slot, two jobs in the live file.
func writeGenerations(t *testing.T, path string) {
	t.Helper()
	q := integrityQueue(path)
	if _, err := q.Submit(specN(100)); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(specN(200)); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prevPath(path)); err != nil {
		t.Fatalf("checkpoint rotation left no .prev: %v", err)
	}
}

// TestCheckpointDetectsCorruption: a bit flip anywhere in the live file
// fails CRC validation, and Restore salvages the previous generation
// instead of resuming garbage or crashing.
func TestCheckpointDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	writeGenerations(t, path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	salvagedBefore := counter("queue.checkpoint_salvaged")
	q := integrityQueue(path)
	if err := q.Restore(path); err != nil {
		t.Fatalf("restore with valid .prev failed: %v", err)
	}
	if d := counter("queue.checkpoint_salvaged") - salvagedBefore; d != 1 {
		t.Fatalf("queue.checkpoint_salvaged advanced by %d, want 1", d)
	}
	// The salvaged generation has one job, not two.
	if jobs := q.Jobs(); len(jobs) != 1 || jobs[0].Spec.Vectors.Count != 100 {
		t.Fatalf("salvaged queue has %+v, want the single first-generation job", jobs)
	}
}

// TestCheckpointTornWriteSalvaged: the engine.checkpoint.write chaos
// point tears the live file mid-write, exactly like a crash between
// write and fsync. Restore detects the truncation and salvages .prev.
func TestCheckpointTornWriteSalvaged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	q := integrityQueue(path)
	if _, err := q.Submit(specN(100)); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	armChaos(t, "engine.checkpoint.write=shortwrite", 9)
	if _, err := q.Submit(specN(200)); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err) // the torn write itself reports success, like a real tear
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeCheckpoint(data); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("torn file decoded with err %v, want ErrCheckpointCorrupt", err)
	}

	q2 := integrityQueue(path)
	if err := q2.Restore(path); err != nil {
		t.Fatalf("restore after torn write failed: %v", err)
	}
	if jobs := q2.Jobs(); len(jobs) != 1 {
		t.Fatalf("salvaged %d jobs, want 1", len(jobs))
	}
}

// TestCheckpointBothGenerationsCorrupt: with no loadable generation,
// Restore reports ErrCheckpointCorrupt (so the caller can decide to
// start fresh) rather than crashing or silently resuming nothing.
func TestCheckpointBothGenerationsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	writeGenerations(t, path)
	for _, p := range []string{path, prevPath(path)} {
		if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	q := integrityQueue(path)
	err := q.Restore(path)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("restore err %v, want ErrCheckpointCorrupt", err)
	}
}

// TestCheckpointMissingLiveFallsBackToPrev: a crash after rotation but
// before the rename leaves only .prev; Restore picks it up.
func TestCheckpointMissingLiveFallsBackToPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	writeGenerations(t, path)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	q := integrityQueue(path)
	if err := q.Restore(path); err != nil {
		t.Fatalf("restore from .prev failed: %v", err)
	}
	if jobs := q.Jobs(); len(jobs) != 1 {
		t.Fatalf("salvaged %d jobs, want 1", len(jobs))
	}
}

// TestCheckpointMissingEntirely: no file, no .prev — plain NotExist so
// callers can distinguish "first boot" from corruption.
func TestCheckpointMissingEntirely(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	q := integrityQueue(path)
	err := q.Restore(path)
	if !os.IsNotExist(err) {
		t.Fatalf("restore err %v, want NotExist", err)
	}
}

// TestCheckpointVersion1Rejected: a pre-integrity checkpoint (no CRC
// trailer) is refused with a version message, not silently accepted.
func TestCheckpointVersion1Rejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	v1 := []byte("{\n  \"version\": 1,\n  \"next_id\": 1,\n  \"jobs\": []\n}\n")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	q := integrityQueue(path)
	err := q.Restore(path)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("restore of v1 file err %v, want ErrCheckpointCorrupt", err)
	}
}

// FuzzLoadCheckpoint throws arbitrary bytes at the live checkpoint slot
// with a valid previous generation alongside. Whatever the corruption —
// truncation, bit flips, hostile JSON — Restore must never panic, and
// must land in exactly one of two states: the fuzzed bytes decoded
// cleanly, or the .prev generation was salvaged.
func FuzzLoadCheckpoint(f *testing.F) {
	// Seed with a valid encoding plus characteristic corruptions.
	valid, err := encodeCheckpoint(&checkpointFile{Version: checkpointVersion, NextID: 1, Jobs: []Job{
		{ID: "job-0001", Spec: JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: "bist", Count: 10}}, State: JobQueued},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 1
	f.Add(flipped)
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte("#crc32c=00000000\n"))

	prev, err := encodeCheckpoint(&checkpointFile{Version: checkpointVersion, NextID: 2, Jobs: []Job{
		{ID: "job-0002", Spec: JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: "bist", Count: 20}}, State: JobCompleted},
	}})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ckpt.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(prevPath(path), prev, 0o644); err != nil {
			t.Fatal(err)
		}
		q := integrityQueue(path)
		if err := q.Restore(path); err != nil {
			t.Fatalf("restore with valid .prev errored: %v", err)
		}
		jobs := q.Jobs()
		if _, derr := decodeCheckpoint(data); derr == nil {
			return // fuzz happened to build a valid checkpoint; its content won
		}
		// Corrupt live file: the salvaged state must be exactly .prev.
		if len(jobs) != 1 || jobs[0].ID != "job-0002" || jobs[0].State != JobCompleted {
			t.Fatalf("salvage produced %+v, want the .prev generation", jobs)
		}
	})
}
