package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

func poolSpec() JobSpec {
	return JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: api.VecBIST, Count: 16, Seed: 1}}
}

// acquireNow polls Acquire past backoff gates until a lease is granted.
func acquireNow(t *testing.T, p *LeasePool, worker string) *api.Lease {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		l, err := p.Acquire(api.LeaseRequest{WorkerID: worker})
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if l != nil {
			return l
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no lease granted within 5s")
	return nil
}

// identityResult packs a unit upload whose DetectedAt values equal the
// global fault indices they cover — any mis-merge (wrong slice, wrong
// offset) becomes visible in the merged array.
func identityResult(worker string, u api.WorkUnit, cycles int) *api.UnitResult {
	det := make([]int32, u.FaultHi-u.FaultLo)
	for i := range det {
		det[i] = int32(u.FaultLo + i)
	}
	return api.NewUnitResult(worker, det, nil, cycles, 0.1)
}

// TestUnitRangePartition: the shard planner tiles [0,total) exactly —
// the same arithmetic Simulate uses, so worker units and in-process
// shards agree on fault slices by construction.
func TestUnitRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, total int }{
		{1, 10}, {3, 10}, {7, 9320}, {16, 9320}, {10, 10},
	} {
		prev := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := unitRange(i, tc.n, tc.total)
			if lo != prev {
				t.Fatalf("unitRange(%d,%d,%d): lo=%d, want %d (gap or overlap)", i, tc.n, tc.total, lo, prev)
			}
			if hi < lo {
				t.Fatalf("unitRange(%d,%d,%d): hi=%d < lo=%d", i, tc.n, tc.total, hi, lo)
			}
			if want := i * tc.total / tc.n; lo != want {
				t.Fatalf("planner drifted from Simulate arithmetic: lo=%d want %d", lo, want)
			}
			prev = hi
		}
		if prev != tc.total {
			t.Fatalf("unitRange(%d units, %d faults) covers [0,%d)", tc.n, tc.total, prev)
		}
	}
}

// TestLeasePoolLifecycle drives a 3-unit job through grant → upload →
// merge and checks the merged bitmap against the identity pattern.
func TestLeasePoolLifecycle(t *testing.T) {
	p := NewLeasePool(PoolOptions{TTL: time.Second})
	defer p.Close()

	h, err := p.Register("job-1", poolSpec(), 10, 3, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Counts(); c.Pending != 3 || c.Leased != 0 || c.Done != 0 {
		t.Fatalf("fresh counts = %+v", c)
	}

	var leases []*api.Lease
	wantRanges := [][2]int{{0, 3}, {3, 6}, {6, 10}}
	for i := 0; i < 3; i++ {
		l := acquireNow(t, p, "w1")
		if l.Unit.FaultLo != wantRanges[i][0] || l.Unit.FaultHi != wantRanges[i][1] {
			t.Fatalf("unit %d range [%d,%d), want %v", i, l.Unit.FaultLo, l.Unit.FaultHi, wantRanges[i])
		}
		if l.Unit.TotalFaults != 10 || l.Unit.Units != 3 || l.Attempt != 0 {
			t.Fatalf("lease %d malformed: %+v", i, l)
		}
		leases = append(leases, l)
	}
	if extra, err := p.Acquire(api.LeaseRequest{WorkerID: "w2"}); err != nil || extra != nil {
		t.Fatalf("acquire with all units leased = (%v, %v), want (nil, nil)", extra, err)
	}

	// Complete two units, then check the live distribution snapshot.
	for _, l := range leases[:2] {
		if err := p.Complete(l.ID, identityResult("w1", l.Unit, 16)); err != nil {
			t.Fatalf("complete %s: %v", l.ID, err)
		}
	}
	st := p.SnapshotJob("job-1")
	if st == nil || st.Units != 3 || len(st.Completed) != 2 {
		t.Fatalf("mid-flight snapshot = %+v", st)
	}
	if err := p.Complete(leases[2].ID, identityResult("w1", leases[2].Unit, 16)); err != nil {
		t.Fatal(err)
	}

	merge, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if merge.Cycles != 16 || len(merge.DetectedAt) != 10 || merge.Detections != nil {
		t.Fatalf("merge = cycles %d, %d faults, detections %v", merge.Cycles, len(merge.DetectedAt), merge.Detections)
	}
	for i, v := range merge.DetectedAt {
		if v != int32(i) {
			t.Fatalf("merged DetectedAt[%d] = %d, want %d (mis-merged slice)", i, v, i)
		}
	}
	if st := p.SnapshotJob("job-1"); st != nil {
		t.Fatalf("job still registered after Wait: %+v", st)
	}
}

// TestLeaseExpiryRequeues: a worker that stops heartbeating loses its
// lease; the unit is re-offered with an attempt charge and late calls on
// the dead lease answer lease_gone.
func TestLeaseExpiryRequeues(t *testing.T) {
	p := NewLeasePool(PoolOptions{TTL: 30 * time.Millisecond, RetryBase: 2 * time.Millisecond, RetryMax: 4 * time.Millisecond})
	defer p.Close()
	h, err := p.Register("job-1", poolSpec(), 4, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	dead := acquireNow(t, p, "doomed")
	time.Sleep(120 * time.Millisecond) // several scanner passes past the TTL

	if _, err := p.Heartbeat(dead.ID, api.Heartbeat{WorkerID: "doomed"}); !isCode(err, api.CodeLeaseGone) {
		t.Fatalf("heartbeat on expired lease = %v, want lease_gone", err)
	}
	if err := p.Complete(dead.ID, identityResult("doomed", dead.Unit, 16)); !isCode(err, api.CodeLeaseGone) {
		t.Fatalf("complete on expired lease = %v, want lease_gone", err)
	}

	fresh := acquireNow(t, p, "w2")
	if fresh.ID == dead.ID || fresh.Attempt != 1 {
		t.Fatalf("reissued lease = %+v, want new ID with attempt 1", fresh)
	}
	if err := p.Complete(fresh.ID, identityResult("w2", fresh.Unit, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatalf("campaign should survive one lost lease: %v", err)
	}
}

// TestLeaseBadResultRequeues: corrupted or mis-shaped uploads are
// rejected with bad_result and cost the unit a retry — never a wrong
// campaign.
func TestLeaseBadResultRequeues(t *testing.T) {
	p := NewLeasePool(PoolOptions{TTL: time.Second, UnitAttempts: 5, RetryBase: 2 * time.Millisecond, RetryMax: 4 * time.Millisecond})
	defer p.Close()
	h, err := p.Register("job-1", poolSpec(), 6, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Upload 1: checksum flipped after packing.
	l := acquireNow(t, p, "w1")
	res := identityResult("w1", l.Unit, 16)
	res.Checksum ^= 1
	if err := p.Complete(l.ID, res); !isCode(err, api.CodeBadResult) {
		t.Fatalf("checksum-corrupt upload = %v, want bad_result", err)
	}

	// Upload 2: wrong slice width.
	l = acquireNow(t, p, "w1")
	short := api.NewUnitResult("w1", []int32{1, 2, 3}, nil, 16, 0)
	if err := p.Complete(l.ID, short); !isCode(err, api.CodeBadResult) {
		t.Fatalf("short upload = %v, want bad_result", err)
	}

	// Upload 3: detections bitmap on a non-n-detect campaign.
	l = acquireNow(t, p, "w1")
	wide := api.NewUnitResult("w1", make([]int32, 6), make([]int32, 6), 16, 0)
	if err := p.Complete(l.ID, wide); !isCode(err, api.CodeBadResult) {
		t.Fatalf("mismatched-mode upload = %v, want bad_result", err)
	}

	// A clean upload within the attempt budget still lands the campaign.
	l = acquireNow(t, p, "w1")
	if l.Attempt != 3 {
		t.Fatalf("attempt = %d after three rejected uploads, want 3", l.Attempt)
	}
	if err := p.Complete(l.ID, identityResult("w1", l.Unit, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseAttemptsExhaustFailJob: a unit that keeps failing consumes
// its budget and fails the whole job with a terminal (non-retryable at
// the lease level) error.
func TestLeaseAttemptsExhaustFailJob(t *testing.T) {
	p := NewLeasePool(PoolOptions{TTL: time.Second, UnitAttempts: 2, RetryBase: 2 * time.Millisecond, RetryMax: 4 * time.Millisecond})
	defer p.Close()
	h, err := p.Register("job-1", poolSpec(), 4, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		l := acquireNow(t, p, "w1")
		if err := p.Fail(l.ID, api.LeaseFailure{WorkerID: "w1", Reason: "simulated crash"}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = h.Wait(context.Background())
	if err == nil || api.IsRetryable(err) {
		t.Fatalf("exhausted job Wait = %v, want terminal error", err)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInternal {
		t.Fatalf("exhausted job error = %v, want internal envelope", err)
	}
	if l, err := p.Acquire(api.LeaseRequest{WorkerID: "w1"}); err != nil || l != nil {
		t.Fatalf("failed job still offers work: (%v, %v)", l, err)
	}
}

// TestLeasePoolCloseAndCancel: shutdown fails waiters retryably, and a
// cancelled executor withdraws its job so stray workers get lease_gone.
func TestLeasePoolCloseAndCancel(t *testing.T) {
	p := NewLeasePool(PoolOptions{TTL: time.Second})
	h, err := p.Register("job-1", poolSpec(), 4, 2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := acquireNow(t, p, "w1")
	p.Close()
	if _, err := h.Wait(context.Background()); !api.IsRetryable(err) {
		t.Fatalf("Wait after Close = %v, want retryable", err)
	}
	if err := p.Complete(l.ID, identityResult("w1", l.Unit, 16)); !isCode(err, api.CodeLeaseGone) {
		t.Fatalf("complete after Close = %v, want lease_gone", err)
	}

	p2 := NewLeasePool(PoolOptions{TTL: time.Second})
	defer p2.Close()
	h2, err := p2.Register("job-2", poolSpec(), 4, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2 := acquireNow(t, p2, "w1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h2.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Wait = %v", err)
	}
	if err := p2.Complete(l2.ID, identityResult("w1", l2.Unit, 16)); !isCode(err, api.CodeLeaseGone) {
		t.Fatalf("complete after withdrawal = %v, want lease_gone", err)
	}
}

// TestHeartbeatAggregatesProgress: worker heartbeats roll up into the
// job-level snapshot with the frontier (minimum) cycle count, feeding
// the queue's stuck-job watchdog.
func TestHeartbeatAggregatesProgress(t *testing.T) {
	var mu sync.Mutex
	var last api.Progress
	p := NewLeasePool(PoolOptions{TTL: time.Second})
	defer p.Close()
	_, err := p.Register("job-1", poolSpec(), 10, 2, 0, 0, func(pr api.Progress) {
		mu.Lock()
		last = pr
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	l0 := acquireNow(t, p, "w1")
	l1 := acquireNow(t, p, "w2")
	ack, err := p.Heartbeat(l0.ID, api.Heartbeat{WorkerID: "w1",
		Progress: api.Progress{Done: 10, Total: 16, Detected: 3, Remaining: 2}})
	if err != nil || ack.TTLMillis <= 0 {
		t.Fatalf("heartbeat = (%+v, %v)", ack, err)
	}
	if _, err := p.Heartbeat(l1.ID, api.Heartbeat{WorkerID: "w2",
		Progress: api.Progress{Done: 4, Total: 16, Detected: 1, Remaining: 4}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if last.Done != 4 || last.Total != 16 || last.Detected != 4 || last.Remaining != 6 {
		t.Fatalf("aggregated progress = %+v, want frontier 4/16 with summed counts", last)
	}
}

// isCode reports whether err is an *api.Error with the given code.
func isCode(err error, code string) bool {
	var ae *api.Error
	return errors.As(err, &ae) && ae.Code == code
}
