// Write-ahead job journal: the durability layer between checkpoints.
//
// Checkpoints (checkpoint.go) snapshot the whole queue but are only
// written on terminal transitions and drain — everything that happens
// in between (a submit acked to a client, a lease granted to a worker,
// a progress watermark) dies with a kill -9. The journal closes that
// window: every state transition is appended as a crc32c-framed record
// before the queue moves on, fsync-batched so the hot path pays one
// group commit instead of a sync per record. On startup the journal is
// replayed on top of the newest loadable checkpoint (Queue.Recover);
// after every successful checkpoint the covered prefix is truncated
// away so the journal stays short.
//
// Frame layout, little-endian:
//
//	[4B payload length][4B crc32c(payload)][payload JSON]
//
// A torn tail — short header, impossible length, checksum mismatch,
// unparsable JSON — marks the end of the readable log: everything
// before it is kept, the tail is dropped and the file truncated at the
// last good frame. Torn tails are expected under kill -9 and are never
// fatal. Replay is idempotent (replaying a prefix twice equals once),
// which is what makes the checkpoint-then-truncate dance crash-safe at
// every intermediate point.
package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Journal record types, one per queue transition.
const (
	recSubmit   = "submit"   // job accepted; carries the full job snapshot
	recState    = "state"    // started / requeued-for-retry
	recProgress = "progress" // throttled progress watermark
	recFinish   = "finish"   // terminal transition; carries the result
	recLease    = "lease"    // lease pool grant/complete/expiry (SSE ring only)
	recGaGen    = "ga_gen"   // ga_search generation checkpoint; carries per-individual outcomes
)

// journalMaxRecord bounds a single frame's payload so a corrupted
// length field cannot make the reader allocate gigabytes.
const journalMaxRecord = 16 << 20

// journalSeqSlack is added to every job's recovered SSE sequence
// number. Async records (progress, lease) are fsync-batched, so a crash
// can lose a few events that subscribers already saw live; restarting
// numbering past a slack gap guarantees no sequence number is ever
// reused for a different event. Gaps are harmless to subscribers —
// Last-Event-ID only has to be monotonic.
const journalSeqSlack = 256

// journalFlushInterval is the group-commit cadence for async records.
const journalFlushInterval = 25 * time.Millisecond

var (
	ctrJournalErrors   = obs.Default().Counter("queue.journal_errors")
	ctrJournalTorn     = obs.Default().Counter("queue.journal_torn_tail")
	famJournalRecords  = obs.Default().CounterFamily("sbst_journal_records_total", "Write-ahead journal records appended, by type.", "type")
	ctrJournalTruncate = obs.Default().CounterFamily("sbst_journal_truncations_total", "Journal prefix truncations after successful checkpoints.").Counter()
	gaugeJournalBytes  = obs.Default().GaugeFamily("sbst_journal_bytes", "Current journal file size including unflushed buffer.").Gauge()
)

// JournalRecord is one framed journal entry. The T field selects which
// of the optional fields are meaningful; unknown fields from a newer
// writer are ignored on replay.
type JournalRecord struct {
	T     string `json:"t"`
	JobID string `json:"job,omitempty"`
	// Seq is the SSE sequence number the broker assigned to the event
	// this record mirrors; replay seeds the event ring with it so
	// Last-Event-ID resume works across a restart.
	Seq int64 `json:"seq,omitempty"`
	// At is the transition time (submit → Created, state running →
	// Started, finish → Finished).
	At time.Time `json:"at,omitempty"`
	// NextID is the queue's ID counter after a submit minted its job ID.
	NextID int `json:"next_id,omitempty"`
	// Job is the full snapshot of a freshly submitted job.
	Job      *Job            `json:"snapshot,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	State    JobState        `json:"state,omitempty"`
	Progress *Progress       `json:"progress,omitempty"`
	Result   *JobResult      `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	Lease    *api.LeaseEvent `json:"lease,omitempty"`
	// Ga is a ga_search job's completed-generation record (recGaGen):
	// the per-individual outcomes the GA replays to resume a search
	// bit-identically after a crash.
	Ga *GaGenRecord `json:"ga,omitempty"`
}

// Journal is an append-only crc32c-framed log with group-commit fsync
// batching. Safe for concurrent use; nil-safe on every method so wiring
// stays optional.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// buf holds encoded frames not yet written to the file; size is the
	// logical journal length (flushed bytes + buffered bytes).
	buf     []byte
	flushed int64
	dirty   bool
	err     error // sticky: after a write/sync failure the journal is dead
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// OpenJournal opens (creating if needed) the journal at path, replays
// its readable prefix into records, and truncates any torn tail. The
// returned records are in append order; feed them to Queue.Recover.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("engine: read journal: %w", err)
	}
	recs, good := decodeJournal(data)
	if good < int64(len(data)) {
		// Torn tail from a crash mid-append: drop it. The transitions it
		// held were never acknowledged as durable.
		ctrJournalTorn.Add(1)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("engine: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("engine: seek journal: %w", err)
	}
	j := &Journal{
		f:       f,
		path:    path,
		flushed: good,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	gaugeJournalBytes.Set(float64(good))
	go j.flusher()
	return j, recs, nil
}

// decodeJournal parses frames from data, returning every record before
// the first undecodable frame and the byte offset where the good prefix
// ends. It never fails: a corrupt frame just ends the log early.
func decodeJournal(data []byte) ([]JournalRecord, int64) {
	var recs []JournalRecord
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return recs, off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > journalMaxRecord || int64(len(rest)) < 8+int64(n) {
			return recs, off
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off
		}
		var rec JournalRecord
		if json.Unmarshal(payload, &rec) != nil || rec.T == "" {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + int64(n)
	}
}

// encodeFrame renders one record with its length+crc header.
func encodeFrame(rec *JournalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("engine: marshal journal record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	return frame, nil
}

// Append encodes and buffers one record. With sync set (submits and
// terminal transitions — the records whose loss would break exactly-once
// semantics) the whole buffer is flushed and fsynced before returning:
// one group commit covers every async record buffered before it.
// Without sync the record rides the next group commit (the flusher's
// tick, or the next sync append). Nil-safe.
func (j *Journal) Append(rec JournalRecord, sync bool) error {
	if j == nil {
		return nil
	}
	frame, err := encodeFrame(&rec)
	if err != nil {
		ctrJournalErrors.Add(1)
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if j.err != nil {
		return j.err
	}
	j.buf = append(j.buf, frame...)
	j.dirty = true
	famJournalRecords.Counter(rec.T).Add(1)
	gaugeJournalBytes.Set(float64(j.flushed + int64(len(j.buf))))
	if !sync {
		return nil
	}
	return j.flushLocked(true)
}

// flushLocked writes the buffer through and optionally fsyncs. Caller
// holds j.mu. A failure is sticky: the journal refuses further appends
// so recovery never trusts a half-written log.
func (j *Journal) flushLocked(fsync bool) error {
	if j.err != nil {
		return j.err
	}
	if len(j.buf) > 0 {
		n, err := j.f.Write(j.buf)
		j.flushed += int64(n)
		if err != nil {
			j.err = fmt.Errorf("engine: journal write: %w", err)
			ctrJournalErrors.Add(1)
			return j.err
		}
		j.buf = j.buf[:0]
	}
	if fsync {
		if err := j.f.Sync(); err != nil {
			j.err = fmt.Errorf("engine: journal sync: %w", err)
			ctrJournalErrors.Add(1)
			return j.err
		}
		j.dirty = false
	}
	return nil
}

// flusher is the group-commit loop for async records.
func (j *Journal) flusher() {
	defer close(j.done)
	tick := time.NewTicker(journalFlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-tick.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				_ = j.flushLocked(true)
			}
			j.mu.Unlock()
		}
	}
}

// Mark returns the current logical journal length. Checkpoint takes the
// mark BEFORE snapshotting queue state: every record below the mark
// describes a mutation that is already visible in the snapshot (records
// are appended after their mutation), so truncating the prefix at the
// mark after the checkpoint lands durably can never drop an uncovered
// transition.
func (j *Journal) Mark() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushed + int64(len(j.buf))
}

// Truncate drops the journal prefix below mark (records now covered by
// a durable checkpoint), keeping the tail. The tail is rewritten into a
// temp file and atomically renamed over the journal, so a crash at any
// point leaves either the old full journal or the new tail — both
// replay correctly (the old journal merely replays covered records,
// which is idempotent). Nil-safe.
func (j *Journal) Truncate(mark int64) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.err != nil {
		return j.err
	}
	if err := j.flushLocked(true); err != nil {
		return err
	}
	if mark <= 0 {
		return nil
	}
	if mark > j.flushed {
		mark = j.flushed
	}
	tail := make([]byte, j.flushed-mark)
	if len(tail) > 0 {
		if _, err := j.f.ReadAt(tail, mark); err != nil {
			j.err = fmt.Errorf("engine: journal tail read: %w", err)
			ctrJournalErrors.Add(1)
			return j.err
		}
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".sbstd-journal-*")
	if err != nil {
		return fmt.Errorf("engine: journal truncate temp: %w", err)
	}
	_ = tmp.Chmod(0o644)
	if _, err := tmp.Write(tail); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: journal truncate write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: journal truncate sync: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: journal truncate rename: %w", err)
	}
	syncDir(dir)
	old := j.f
	j.f = tmp
	j.flushed = int64(len(tail))
	old.Close()
	ctrJournalTruncate.Add(1)
	gaugeJournalBytes.Set(float64(j.flushed))
	return nil
}

// Close flushes, fsyncs, and closes the journal. Nil-safe; idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	err := j.flushLocked(true)
	j.closed = true
	close(j.stop)
	cerr := j.f.Close()
	j.mu.Unlock()
	<-j.done
	if err != nil {
		return err
	}
	return cerr
}

// Path returns the journal file path ("" on nil).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}
