package engine

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/api"
	"repro/internal/designs"
	"repro/internal/obs"
)

// ctrDesignBuilds counts registry builds per design — a cache miss on
// the coordinator or a worker. Rendered as
// sbst_design_builds_total{design="..."} on /v1/metrics; a fleet where
// this grows linearly with jobs has a cache that is thrashing.
var ctrDesignBuilds = obs.Default().CounterFamily(
	"sbst.design_builds_total",
	"Design registry builds (netlist + collapsed fault list) by design ID.",
	"design")

// designCacheCap bounds the per-process built-design LRU. A built
// design owns a levelized netlist and its collapsed fault list —
// megabytes for large designs — so the cache holds the working set of
// a matrix campaign, not every design ever requested.
const designCacheCap = 8

// designCache is a small LRU of built designs keyed by canonical
// design ID. It replaces the old sync.Once DSP-core singleton: the
// same build-once behavior for the common single-design fleet, without
// pinning the process to one circuit.
type designCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used; values are *designEntry
	byI map[string]*list.Element // canonical ID → element
}

type designEntry struct {
	id  string
	d   *designs.Design
	err error
	// built gates waiters: entries are published under mu before the
	// (potentially slow) registry build runs, so concurrent requests
	// for one design share a single build instead of racing.
	built chan struct{}
}

func newDesignCache(capacity int) *designCache {
	return &designCache{cap: capacity, ll: list.New(), byI: make(map[string]*list.Element)}
}

// get returns the built design for id (registry grammar; "" = the DSP
// core), building and caching it on first use. Build failures are not
// cached: an unknown ID fails Parse before touching the cache, and a
// failed build of a valid ID retries on the next request.
func (c *designCache) get(id string) (*designs.Design, error) {
	ref, err := designs.Parse(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.byI[ref.ID]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*designEntry)
		c.mu.Unlock()
		<-e.built
		return e.d, e.err
	}
	e := &designEntry{id: ref.ID, built: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.byI[ref.ID] = el
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byI, oldest.Value.(*designEntry).id)
	}
	c.mu.Unlock()

	e.d, e.err = designs.Build(ref.ID)
	ctrDesignBuilds.Counter(ref.ID).Add(1)
	close(e.built)
	if e.err != nil {
		c.mu.Lock()
		// The element may already have been evicted; delete by ID only
		// if it still maps to this entry.
		if cur, ok := c.byI[ref.ID]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.byI, ref.ID)
		}
		c.mu.Unlock()
	}
	return e.d, e.err
}

// sharedDesigns is the process-wide cache every executor, worker unit
// and CLI entry point resolves designs through.
var sharedDesigns = newDesignCache(designCacheCap)

// GetDesign resolves a design ID through the process-wide cache — the
// multi-design successor of SharedCore. Both coordinator and worker
// call it, so a fleet agrees on each design's fault indices by
// construction.
func GetDesign(id string) (*designs.Design, error) { return sharedDesigns.get(id) }

// validateSpecDesigns checks every design ID a spec references against
// the registry grammar at submission time (no build), wrapping
// failures in api.ErrUnknownDesign so the server answers 422
// unknown_design instead of failing the job mid-campaign.
func validateSpecDesigns(spec JobSpec) error {
	check := func(id string) error {
		if err := designs.Validate(id); err != nil {
			return fmt.Errorf("%w: %v", api.ErrUnknownDesign, err)
		}
		return nil
	}
	if err := check(spec.Design); err != nil {
		return err
	}
	if spec.Matrix != nil {
		for _, id := range spec.Matrix.Designs {
			if err := check(id); err != nil {
				return err
			}
		}
	}
	return nil
}
