package engine

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/api"
	"repro/internal/artifacts"
	"repro/internal/designs"
	"repro/internal/obs"
)

// ctrDesignBuilds counts registry builds per design — a cache miss on
// the coordinator or a worker. Rendered as
// sbst_design_builds_total{design="..."} on /v1/metrics; a fleet where
// this grows linearly with jobs has a cache that is thrashing.
var ctrDesignBuilds = obs.Default().CounterFamily(
	"sbst.design_builds_total",
	"Design registry builds (netlist + collapsed fault list) by design ID.",
	"design")

// Cache traffic by outcome, the companion to sbst_design_builds_total:
// hits/(hits+misses) is the fleet's design-reuse rate, mirroring the
// artifact store's sbst_artifact_{hits,misses}_total.
var (
	ctrDesignCacheHit = obs.Default().CounterFamily(
		"sbst.design_cache_events_total",
		"Design cache lookups by outcome.",
		"result").Counter("hit")
	ctrDesignCacheMiss = obs.Default().CounterFamily(
		"sbst.design_cache_events_total",
		"Design cache lookups by outcome.",
		"result").Counter("miss")
)

// designCacheCap bounds the per-process built-design LRU by entry
// count; designCacheBudget bounds it by bytes (a built design owns a
// levelized netlist and its collapsed fault list — megabytes for large
// designs). Whichever bound is hit first evicts least-recently-used,
// the same policy as the artifact store, whose budget this borrows so
// the two caches exert comparable memory pressure.
const designCacheCap = 8

const designCacheBudget = artifacts.DefaultBudget

// designCache is a small LRU of built designs keyed by canonical
// design ID. It replaces the old sync.Once DSP-core singleton: the
// same build-once behavior for the common single-design fleet, without
// pinning the process to one circuit.
type designCache struct {
	mu     sync.Mutex
	cap    int
	budget int64
	bytes  int64
	ll     *list.List               // front = most recently used; values are *designEntry
	byI    map[string]*list.Element // canonical ID → element
}

type designEntry struct {
	id    string
	d     *designs.Design
	err   error
	bytes int64 // accounted share of designCache.bytes (0 until built)
	// built gates waiters: entries are published under mu before the
	// (potentially slow) registry build runs, so concurrent requests
	// for one design share a single build instead of racing.
	built chan struct{}
}

func newDesignCache(capacity int) *designCache {
	return &designCache{
		cap:    capacity,
		budget: designCacheBudget,
		ll:     list.New(),
		byI:    make(map[string]*list.Element),
	}
}

// evictLocked drops LRU entries until both the entry cap and the byte
// budget hold. Evicting only unlinks the cache reference: a design a
// running job still holds stays alive through its own pointer.
func (c *designCache) evictLocked() {
	for c.ll.Len() > c.cap || c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			return
		}
		c.ll.Remove(oldest)
		e := oldest.Value.(*designEntry)
		delete(c.byI, e.id)
		c.bytes -= e.bytes
	}
}

// get returns the built design for id (registry grammar; "" = the DSP
// core), building and caching it on first use. Build failures are not
// cached: an unknown ID fails Parse before touching the cache, and a
// failed build of a valid ID retries on the next request.
func (c *designCache) get(id string) (*designs.Design, error) {
	ref, err := designs.Parse(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.byI[ref.ID]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*designEntry)
		c.mu.Unlock()
		ctrDesignCacheHit.Add(1)
		<-e.built
		return e.d, e.err
	}
	e := &designEntry{id: ref.ID, built: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.byI[ref.ID] = el
	c.evictLocked()
	c.mu.Unlock()
	ctrDesignCacheMiss.Add(1)

	e.d, e.err = designs.Build(ref.ID)
	ctrDesignBuilds.Counter(ref.ID).Add(1)
	if e.err == nil {
		e.bytes = e.d.SizeBytes()
		c.mu.Lock()
		// The entry may have been evicted while building; only account
		// (and re-evict to budget) if it is still cached.
		if cur, ok := c.byI[ref.ID]; ok && cur == el {
			c.bytes += e.bytes
			c.evictLocked()
		}
		c.mu.Unlock()
	}
	close(e.built)
	if e.err != nil {
		c.mu.Lock()
		// The element may already have been evicted; delete by ID only
		// if it still maps to this entry.
		if cur, ok := c.byI[ref.ID]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.byI, ref.ID)
		}
		c.mu.Unlock()
	}
	return e.d, e.err
}

// sharedDesigns is the process-wide cache every executor, worker unit
// and CLI entry point resolves designs through.
var sharedDesigns = newDesignCache(designCacheCap)

// GetDesign resolves a design ID through the process-wide cache — the
// multi-design successor of SharedCore. Both coordinator and worker
// call it, so a fleet agrees on each design's fault indices by
// construction.
func GetDesign(id string) (*designs.Design, error) { return sharedDesigns.get(id) }

// validateSpecDesigns checks every design ID a spec references against
// the registry grammar at submission time (no build), wrapping
// failures in api.ErrUnknownDesign so the server answers 422
// unknown_design instead of failing the job mid-campaign.
func validateSpecDesigns(spec JobSpec) error {
	check := func(id string) error {
		if err := designs.Validate(id); err != nil {
			return fmt.Errorf("%w: %v", api.ErrUnknownDesign, err)
		}
		return nil
	}
	if err := check(spec.Design); err != nil {
		return err
	}
	if spec.Matrix != nil {
		for _, id := range spec.Matrix.Designs {
			if err := check(id); err != nil {
				return err
			}
		}
	}
	return nil
}
