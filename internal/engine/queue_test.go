package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// specN builds a distinct valid spec (bist count doubles as a marker).
func specN(n int) JobSpec {
	return JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: "bist", Count: n}}
}

func waitState(t *testing.T, q *Queue, id string, want JobState) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == want {
			return j
		}
		if (j.State == JobFailed || j.State == JobCompleted) && j.State != want {
			t.Fatalf("job %s reached terminal state %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Job{}
}

func TestQueueRunsJobsInOrder(t *testing.T) {
	var ran []int
	q := NewQueue(QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			ran = append(ran, spec.Vectors.Count)
			update(Progress{Done: spec.Vectors.Count, Total: spec.Vectors.Count, Coverage: 0.5})
			return &JobResult{Coverage: 0.5, Cycles: spec.Vectors.Count}, nil
		},
	})
	q.Start()
	var ids []string
	for i := 1; i <= 3; i++ {
		j, err := q.Submit(specN(i * 100))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for i, id := range ids {
		j := waitState(t, q, id, JobCompleted)
		if j.Result == nil || j.Result.Cycles != (i+1)*100 {
			t.Fatalf("job %s result %+v", id, j.Result)
		}
		if j.Progress.Done != (i+1)*100 {
			t.Fatalf("job %s progress %+v not captured", id, j.Progress)
		}
		if j.Attempts != 1 || j.Started == nil || j.Finished == nil {
			t.Fatalf("job %s bookkeeping %+v", id, j)
		}
	}
	if fmt.Sprint(ran) != "[100 200 300]" {
		t.Fatalf("execution order %v", ran)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueSurvivesPanic is the retry-on-panic guarantee: a panicking
// job neither kills its worker nor drops queued work, and a second
// attempt can complete it.
func TestQueueSurvivesPanic(t *testing.T) {
	var calls atomic.Int32
	q := NewQueue(QueueOptions{
		Workers:     1,
		MaxAttempts: 2,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			if spec.Vectors.Count == 666 && calls.Add(1) == 1 {
				panic("simulated executor crash")
			}
			return &JobResult{Coverage: 1}, nil
		},
	})
	q.Start()
	crash, err := q.Submit(specN(666))
	if err != nil {
		t.Fatal(err)
	}
	after, err := q.Submit(specN(10))
	if err != nil {
		t.Fatal(err)
	}
	j := waitState(t, q, crash.ID, JobCompleted)
	if j.Attempts != 2 {
		t.Fatalf("crashing job completed after %d attempts, want 2", j.Attempts)
	}
	waitState(t, q, after.ID, JobCompleted)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueuePanicBudgetExhausted fails the job once attempts run out,
// keeping the panic message.
func TestQueuePanicBudgetExhausted(t *testing.T) {
	q := NewQueue(QueueOptions{
		Workers:     1,
		MaxAttempts: 2,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			panic("always crashing")
		},
	})
	q.Start()
	j, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := q.Get(j.ID)
		if got.State == JobFailed {
			if got.Attempts != 2 {
				t.Fatalf("failed after %d attempts, want 2", got.Attempts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = q.Drain(context.Background())
}

func TestQueueBoundedAndValidated(t *testing.T) {
	q := NewQueue(QueueOptions{
		MaxPending: 2,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			return &JobResult{}, nil
		},
	})
	// Not started: submissions park in the pending buffer.
	if _, err := q.Submit(specN(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(specN(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(specN(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err %v, want ErrQueueFull", err)
	}
	if _, err := q.Submit(JobSpec{Kind: "nonsense"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := q.Submit(JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: "bist"}}); err == nil {
		t.Fatal("bist source without count accepted")
	}
	if _, err := q.Submit(JobSpec{Kind: JobFaultSim,
		Vectors: VectorSource{Kind: "program", Program: "BOGUS r1"}}); err == nil {
		t.Fatal("unassemblable program accepted")
	}
}

// TestQueueDrainKeepsPendingQueued: a drain lets the running job finish,
// leaves queued jobs queued, and rejects new submissions.
func TestQueueDrainKeepsPendingQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	q := NewQueue(QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			started <- struct{}{}
			<-release
			return &JobResult{Coverage: 0.9}, nil
		},
	})
	q.Start()
	first, _ := q.Submit(specN(1))
	second, _ := q.Submit(specN(2))
	<-started // first job is now running

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	// Drain must not finish while a job runs.
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a job still running", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if j, _ := q.Get(first.ID); j.State != JobCompleted {
		t.Fatalf("running job state %s after drain, want completed", j.State)
	}
	if j, _ := q.Get(second.ID); j.State != JobQueued {
		t.Fatalf("pending job state %s after drain, want queued", j.State)
	}
	if _, err := q.Submit(specN(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain err %v, want ErrDraining", err)
	}
}

// TestQueueForcedDrainRequeuesRunning: when the drain deadline expires,
// the running job is cancelled and returns to queued for resume.
func TestQueueForcedDrainRequeuesRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	q := NewQueue(QueueOptions{
		Workers: 1,
		Exec: func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ErrInterrupted
		},
	})
	q.Start()
	j, _ := q.Submit(specN(1))
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err %v, want deadline exceeded", err)
	}
	got, _ := q.Get(j.ID)
	if got.State != JobQueued {
		t.Fatalf("interrupted job state %s, want queued for resume", got.State)
	}
	if got.Attempts != 0 {
		t.Fatalf("interrupted job consumed %d attempts, want 0", got.Attempts)
	}
}
