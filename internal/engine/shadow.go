package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
)

// shadow.go is the compiled-kernel cross-checking guardrail: after a
// shard completes on the compiled event-driven kernel, a deterministic
// sample of its faults is re-simulated through the serial reference
// kernel (fault.KernelReference, the differential oracle). The two
// kernels are bit-identical by construction, so any divergence means
// the compiled kernel — or the memory under it — silently produced a
// wrong batch. In that case the compiled kernel is quarantined for the
// shard: the whole shard re-runs on the reference kernel, the
// kernel.divergence counter advances, and a diagnostic bundle records
// exactly which faults disagreed and how.

var ctrKernelDivergence = obs.Default().Counter("kernel.divergence")

// defaultShadowSample keeps the cross-check under the <5% overhead
// budget on the Table-1 workload: the reference kernel costs ~3.4x the
// compiled kernel per fault, so re-checking 0.5% of each shard's
// faults costs roughly 1.7% of the shard.
const defaultShadowSample = 0.005

// runShard executes one shard with panic containment, the engine.shard
// chaos point, and the sampled shadow cross-check. It is the unit the
// shard supervisor in Simulate retries.
func runShard(n *logic.Netlist, vecs fault.VectorSeq, shard fault.SimOptions,
	opts SimOptions, s int) (res *fault.Result, err error) {

	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("engine: shard %d panic: %v\n%s", s, r, debug.Stack())
		}
	}()
	// Chaos point: a shard that crashes outright, stalls, or fails with
	// a transient error before doing any work.
	if f := chaos.Maybe("engine.shard"); f != nil {
		f.PanicNow()
		f.Sleep(shard.Ctx)
		if ierr := f.Err(); ierr != nil {
			return nil, fmt.Errorf("engine: shard %d: %w", s, ierr)
		}
	}
	res, err = fault.Simulate(n, vecs, shard)
	if err != nil || res.Interrupted {
		// Interrupted shards stop at kernel-specific segment boundaries,
		// so a shadow comparison would be apples-to-oranges; the partial
		// result is reported as-is.
		return res, err
	}
	return shadowVerify(n, vecs, shard, opts, s, res)
}

// shadowSampleSize resolves the effective sample count for a shard of k
// faults: the configured fraction, defaulted, floored at one fault.
func shadowSampleSize(k int, sample float64) int {
	if sample == 0 {
		sample = defaultShadowSample
	}
	if sample < 0 || k == 0 {
		return 0
	}
	count := int(math.Ceil(sample * float64(k)))
	if count < 1 {
		count = 1
	}
	if count > k {
		count = k
	}
	return count
}

// shadowIndices picks the deterministic fault sample for a shard: a
// seeded partial shuffle, sorted for readable diagnostics.
func shadowIndices(k, count int, seed int64, s int) []int {
	if seed == 0 {
		seed = 1
	}
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(s)))
	idx := r.Perm(k)[:count]
	sort.Ints(idx)
	return idx
}

// kernelDivergence is one fault's disagreement between the compiled
// kernel and the reference oracle, as recorded in diagnostic bundles.
type kernelDivergence struct {
	FaultIndex   int  `json:"fault_index"`
	Site         int  `json:"site"`
	SA1          bool `json:"sa1"`
	WantDetected int  `json:"want_detected_at"`
	GotDetected  int  `json:"got_detected_at"`
	WantCount    int  `json:"want_detections,omitempty"`
	GotCount     int  `json:"got_detections,omitempty"`
}

// shadowVerify cross-checks a completed compiled-kernel shard result
// against the reference kernel on a sampled fault subset and, on
// divergence, falls back to a full reference re-run of the shard.
func shadowVerify(n *logic.Netlist, vecs fault.VectorSeq, shard fault.SimOptions,
	opts SimOptions, s int, res *fault.Result) (*fault.Result, error) {

	if shard.Kernel != fault.KernelCompiled {
		return res, nil
	}
	count := shadowSampleSize(len(res.Faults), opts.ShadowSample)
	if count == 0 {
		return res, nil
	}
	idx := shadowIndices(len(res.Faults), count, opts.ShadowSeed, s)
	sub := make([]fault.Fault, len(idx))
	for i, ix := range idx {
		sub[i] = res.Faults[ix]
	}
	// Fault independence makes per-fault results invariant under batch
	// composition and segment length, so the sampled re-run is directly
	// comparable to the shard's slots.
	ref := shard
	ref.Faults = sub
	ref.Kernel = fault.KernelReference
	ref.Progress = nil
	ref.Sink = nil
	refRes, err := fault.Simulate(n, vecs, ref)
	if err != nil {
		return nil, fmt.Errorf("engine: shard %d shadow check: %w", s, err)
	}
	if refRes.Interrupted {
		return res, nil // cancelled mid-check: keep the primary result
	}
	var div []kernelDivergence
	for i, ix := range idx {
		d := kernelDivergence{
			FaultIndex:   ix,
			Site:         int(res.Faults[ix].Site),
			SA1:          res.Faults[ix].SA1,
			WantDetected: int(refRes.DetectedAt[i]),
			GotDetected:  int(res.DetectedAt[ix]),
		}
		mismatch := d.WantDetected != d.GotDetected
		if res.Detections != nil {
			d.WantCount = int(refRes.Detections[i])
			d.GotCount = int(res.Detections[ix])
			mismatch = mismatch || d.WantCount != d.GotCount
		}
		if mismatch {
			div = append(div, d)
		}
	}
	if len(div) == 0 {
		return res, nil
	}

	// The compiled kernel lied about at least one sampled fault:
	// quarantine it for this shard and fall back to the oracle.
	ctrKernelDivergence.Add(1)
	obs.Emit(opts.Sink, obs.Event{
		Type: obs.EventPhase,
		Name: fmt.Sprintf("engine.sim/shard%d", s),
		Fields: map[string]any{
			"event":      "kernel.divergence",
			"sampled":    count,
			"divergent":  len(div),
			"quarantine": "reference_fallback",
		},
	})
	if opts.DiagDir != "" {
		writeDivergenceBundle(opts.DiagDir, s, count, div)
	}
	fb := shard
	fb.Kernel = fault.KernelReference
	fbRes, err := fault.Simulate(n, vecs, fb)
	if err != nil {
		return nil, fmt.Errorf("engine: shard %d reference fallback: %w", s, err)
	}
	return fbRes, nil
}

// writeDivergenceBundle drops the divergence diagnostics as JSON for
// offline kernel debugging. Bundle writing is best-effort: a failed
// write never fails the campaign (the counters and events already
// recorded the divergence).
func writeDivergenceBundle(dir string, s, sampled int, div []kernelDivergence) {
	bundle := struct {
		Shard       int                `json:"shard"`
		Sampled     int                `json:"sampled"`
		Divergences []kernelDivergence `json:"divergences"`
	}{Shard: s, Sampled: sampled, Divergences: div}
	data, err := json.MarshalIndent(&bundle, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("kernel-divergence-shard%d.json", s))
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}
