package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// Queue errors surfaced to submitters.
var (
	// ErrQueueFull reports that the bounded pending buffer is at
	// capacity; the caller should retry later (HTTP 503).
	ErrQueueFull = errors.New("engine: job queue full")
	// ErrDraining reports that the queue has stopped accepting work.
	ErrDraining = errors.New("engine: queue draining")
	// ErrInterrupted is returned by executors whose campaign was cut
	// short by queue shutdown; the job goes back to queued so a
	// checkpoint restore re-runs it.
	ErrInterrupted = errors.New("engine: job interrupted by shutdown")
)

// Executor runs one job spec to completion. update (never nil) publishes
// progress snapshots; ctx is cancelled when a drain deadline forces
// running jobs to stop, in which case the executor should return
// ErrInterrupted (wrapped or bare).
type Executor func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error)

// QueueOptions configure NewQueue.
type QueueOptions struct {
	// Workers is the number of concurrent job executors (default 1;
	// each fault-sim job additionally shards across cores on its own).
	Workers int
	// MaxPending bounds the not-yet-running buffer (default 64).
	MaxPending int
	// MaxAttempts is the per-job run budget consumed by panics before
	// the job fails (default 2: one retry after a first panic).
	MaxAttempts int
	// Exec runs jobs; required.
	Exec Executor
	// Checkpoint, when non-empty, is the JSON state file written after
	// every terminal job transition and on drain.
	Checkpoint string
	// Sink receives queue lifecycle events (job state transitions).
	Sink obs.Sink
	// now overrides the clock in tests.
	now func() time.Time
}

// Queue is a bounded in-process job queue with a worker pool,
// retry-on-panic recovery and JSON checkpoint/resume. All exported
// methods are safe for concurrent use.
type Queue struct {
	opts QueueOptions

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	work     chan string
	stop     chan struct{}
	wg       sync.WaitGroup
	draining bool
	started  bool

	jobCtx    context.Context
	jobCancel context.CancelFunc
}

// NewQueue builds a queue; call Start (after an optional Restore) to
// launch the worker pool.
func NewQueue(opts QueueOptions) *Queue {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 64
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 2
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Queue{
		opts:      opts,
		jobs:      make(map[string]*Job),
		work:      make(chan string, opts.MaxPending),
		stop:      make(chan struct{}),
		jobCtx:    ctx,
		jobCancel: cancel,
	}
}

// Start launches the worker pool. It is a no-op when already started.
func (q *Queue) Start() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started || q.draining {
		return
	}
	q.started = true
	for i := 0; i < q.opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
}

// Submit validates and enqueues a job, returning a snapshot of the
// queued entry. It fails fast with ErrDraining after a drain began and
// ErrQueueFull when the pending buffer is at capacity.
func (q *Queue) Submit(spec JobSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return Job{}, ErrDraining
	}
	q.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%04d", q.nextID),
		Spec:    spec,
		State:   JobQueued,
		Created: q.opts.now().UTC(),
	}
	select {
	case q.work <- j.ID:
	default:
		q.nextID--
		q.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	snap := snapshotJob(j)
	q.mu.Unlock()
	q.emit(snap, "submitted")
	return snap, nil
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return snapshotJob(j), true
}

// Jobs returns snapshots of every job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, snapshotJob(q.jobs[id]))
	}
	return out
}

// Counts reports queue occupancy by state.
func (q *Queue) Counts() map[JobState]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	counts := make(map[JobState]int, 4)
	for _, j := range q.jobs {
		counts[j.State]++
	}
	return counts
}

// Draining reports whether the queue has stopped accepting work.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain stops accepting submissions, lets running jobs finish, then
// writes a final checkpoint. If ctx expires first, running jobs are
// cancelled (they stop at the next segment boundary and return to the
// queued state) and the checkpoint still captures them for resume.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.stop)
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		q.jobCancel()
		<-done
		err = ctx.Err()
	}
	if cerr := q.Checkpoint(); err == nil {
		err = cerr
	}
	return err
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		// Drain takes priority over pending work: queued jobs stay
		// queued (and checkpointed) rather than starting mid-shutdown.
		select {
		case <-q.stop:
			return
		default:
		}
		select {
		case <-q.stop:
			return
		case id := <-q.work:
			q.run(id)
		}
	}
}

func (q *Queue) run(id string) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return
	}
	now := q.opts.now().UTC()
	j.State = JobRunning
	j.Attempts++
	j.Started = &now
	j.Error = ""
	snap := snapshotJob(j)
	q.mu.Unlock()
	q.emit(snap, "started")

	update := func(p Progress) {
		q.mu.Lock()
		j.Progress = p
		q.mu.Unlock()
	}
	start := time.Now()
	res, err, panicked := q.execute(j.Spec, update)
	elapsed := time.Since(start).Seconds()

	q.mu.Lock()
	fin := q.opts.now().UTC()
	j.Finished = &fin
	requeue := false
	switch {
	case err == nil:
		if res != nil {
			res.Seconds = elapsed
		}
		j.State = JobCompleted
		j.Result = res
	case errors.Is(err, ErrInterrupted) || q.jobCtx.Err() != nil:
		// Shutdown cut the campaign short: keep the job queued so a
		// checkpoint restore re-runs it, and give the attempt back.
		j.State = JobQueued
		j.Attempts--
		j.Error = err.Error()
	case panicked && j.Attempts < q.opts.MaxAttempts:
		j.State = JobQueued
		j.Error = err.Error()
		requeue = true
	default:
		j.State = JobFailed
		j.Error = err.Error()
	}
	if requeue {
		select {
		case q.work <- j.ID:
		default:
			j.State = JobFailed
			j.Error = "retry dropped: " + j.Error + " (queue full)"
			requeue = false
		}
	}
	snap = snapshotJob(j)
	q.mu.Unlock()
	q.emit(snap, string(snap.State))
	if snap.State == JobCompleted || snap.State == JobFailed {
		if q.opts.Checkpoint != "" {
			_ = q.Checkpoint()
		}
	}
}

// execute runs the executor with panic containment: a panicking job
// takes down neither its worker goroutine nor the queue.
func (q *Queue) execute(spec JobSpec, update func(Progress)) (res *JobResult, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("engine: job panic: %v\n%s", r, debug.Stack())
		}
	}()
	res, err = q.opts.Exec(q.jobCtx, spec, update)
	return res, err, false
}

func (q *Queue) emit(j Job, what string) {
	obs.Emit(q.opts.Sink, obs.Event{
		Type: obs.EventPhase,
		Name: "queue/" + j.ID,
		Fields: map[string]any{
			"event":    what,
			"kind":     string(j.Spec.Kind),
			"state":    string(j.State),
			"attempts": j.Attempts,
		},
	})
}

// snapshotJob copies a job for hand-out. Result is shared intentionally:
// it is written once before the terminal transition and immutable after.
func snapshotJob(j *Job) Job {
	c := *j
	if j.Started != nil {
		t := *j.Started
		c.Started = &t
	}
	if j.Finished != nil {
		t := *j.Finished
		c.Finished = &t
	}
	return c
}
