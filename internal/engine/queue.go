package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// Queue errors surfaced to submitters.
var (
	// ErrQueueFull reports that the bounded pending buffer is at
	// capacity; the caller should retry later (HTTP 503).
	ErrQueueFull = errors.New("engine: job queue full")
	// ErrDraining reports that the queue has stopped accepting work.
	ErrDraining = errors.New("engine: queue draining")
	// ErrInterrupted is returned by executors whose campaign was cut
	// short by queue shutdown; the job goes back to queued so a
	// checkpoint restore re-runs it.
	ErrInterrupted = errors.New("engine: job interrupted by shutdown")
	// ErrTransient marks executor failures worth retrying (flaky
	// environment, injected chaos). Wrap it — the queue classifies with
	// errors.Is and retries with exponential backoff while the job's
	// attempt budget lasts.
	ErrTransient = errors.New("engine: transient job failure")
)

var (
	ctrQueueRetries     = obs.Default().Counter("queue.retries")
	ctrBreakerTrips     = obs.Default().Counter("queue.breaker_trips")
	ctrWatchdogTrips    = obs.Default().Counter("queue.watchdog_trips")
	ctrDeadlineExceeded = obs.Default().Counter("queue.deadline_exceeded")
	ctrCheckpointErrors = obs.Default().Counter("queue.checkpoint_errors")

	famQueueJobs   = obs.Default().GaugeFamily("sbst_queue_jobs", "Jobs in the queue, by lifecycle state.", "state")
	gaugeQueued    = famQueueJobs.Gauge("queued")
	gaugeRunning   = famQueueJobs.Gauge("running")
	gaugeCompleted = famQueueJobs.Gauge("completed")
	gaugeFailed    = famQueueJobs.Gauge("failed")
	gaugeBreaker   = obs.Default().GaugeFamily("sbst_queue_breaker_open", "1 while the consecutive-failure circuit breaker holds workers paused.").Gauge()
)

// progressEventPeriod throttles SSE progress publication per job.
const progressEventPeriod = 100 * time.Millisecond

// Executor runs one job spec to completion. update (never nil) publishes
// progress snapshots; ctx is cancelled when a drain deadline forces
// running jobs to stop, in which case the executor should return
// ErrInterrupted (wrapped or bare). The context also carries the job's
// own deadline (Spec.DeadlineSec / QueueOptions.JobTimeout) and is
// cancelled by the stuck-job watchdog.
type Executor func(ctx context.Context, spec JobSpec, update func(Progress)) (*JobResult, error)

// QueueOptions configure NewQueue.
type QueueOptions struct {
	// Workers is the number of concurrent job executors (default 1;
	// each fault-sim job additionally shards across cores on its own).
	Workers int
	// MaxPending bounds the not-yet-running buffer (default 64).
	MaxPending int
	// MaxAttempts is the per-job run budget consumed by retryable
	// failures — panics, ErrTransient errors, watchdog cancellations —
	// before the job fails (default 2: one retry after a first failure).
	MaxAttempts int
	// Exec runs jobs; required.
	Exec Executor
	// Checkpoint, when non-empty, is the JSON state file written after
	// every terminal job transition and on drain.
	Checkpoint string
	// Sink receives queue lifecycle events (job state transitions).
	Sink obs.Sink

	// RetryBase is the first retry's backoff ceiling; each further
	// attempt doubles it up to RetryMax, with jitter drawn from the
	// upper half of the window (default 50ms, capped at 5s).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 5s).
	RetryMax time.Duration
	// JobTimeout bounds every job's wall time unless the spec's own
	// DeadlineSec is tighter. Zero means no queue-wide deadline.
	JobTimeout time.Duration
	// BreakerThreshold is the number of consecutive terminal job
	// failures that trips the circuit breaker (default 5). Zero keeps
	// the default; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long workers pause after the breaker trips
	// (default 30s).
	BreakerCooldown time.Duration
	// StuckTimeout enables the watchdog: a running job that publishes no
	// progress for this long is cancelled and retried. Zero disables.
	StuckTimeout time.Duration

	// DistState, when set, resolves a job's distributed execution
	// snapshot (work-unit layout, completions, attempt counts) for
	// checkpoints and the HTTP surface. Wire it to LeasePool.SnapshotJob
	// when the queue runs a distributed executor.
	DistState func(jobID string) *api.DistState

	// Events, when set, receives the job event stream served over SSE:
	// state transitions, throttled progress samples, and the terminal
	// result frame. Share one broker with the lease pool and server.
	Events *JobEventBroker

	// Journal, when set, receives a write-ahead record for every state
	// transition (submits and terminal transitions fsynced inline, the
	// rest group-committed). Open it with OpenJournal and feed the
	// replayed records to Recover before Start.
	Journal *Journal

	// now overrides the clock in tests.
	now func() time.Time
	// traceID overrides trace-ID minting in tests (golden determinism);
	// default obs.NewTraceID.
	traceID func() string
}

// runningJob is the queue's handle on an in-flight execution: the lever
// to cancel it and the progress heartbeat the watchdog reads.
type runningJob struct {
	cancel       context.CancelFunc
	lastProgress atomic.Int64 // UnixNano of the last update callback
	lastEvent    atomic.Int64 // UnixNano of the last published progress event
	stuck        atomic.Bool  // set by the watchdog before cancelling
	injected     bool         // chaos queue.job.cancel armed for this run
}

func (rj *runningJob) touch() { rj.lastProgress.Store(time.Now().UnixNano()) }

// Queue is a bounded in-process job queue with a worker pool, graceful
// degradation guardrails (exponential-backoff retries, per-job
// deadlines, a consecutive-failure circuit breaker, a stuck-job
// watchdog) and JSON checkpoint/resume. All exported methods are safe
// for concurrent use.
type Queue struct {
	opts QueueOptions

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	// submitIDs maps client-supplied idempotency keys to job IDs so a
	// re-submitted spec (client retry across a coordinator restart) is
	// served the original job instead of minting a duplicate.
	submitIDs map[string]string

	running map[string]*runningJob
	timers  map[string]*time.Timer
	// gaGens holds each running ga_search job's journaled generation
	// records, replayed into the executor on (re)start so a search
	// resumes from its last completed generation. Populated by
	// recordGaGen and by recovery (journal replay + checkpoint GaGens);
	// cleared on the job's terminal transition.
	gaGens map[string][]GaGenRecord

	failStreak  int       // consecutive terminal failures, guarded by mu
	breakerOpen time.Time // workers pause until this instant, guarded by mu
	rng         *rand.Rand

	work     chan string
	stop     chan struct{}
	wg       sync.WaitGroup
	draining bool
	started  bool

	jobCtx    context.Context
	jobCancel context.CancelFunc
}

// NewQueue builds a queue; call Start (after an optional Restore) to
// launch the worker pool.
func NewQueue(opts QueueOptions) *Queue {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 64
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 2
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 5 * time.Second
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	if opts.traceID == nil {
		opts.traceID = obs.NewTraceID
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Queue{
		opts:      opts,
		jobs:      make(map[string]*Job),
		submitIDs: make(map[string]string),
		running:   make(map[string]*runningJob),
		timers:    make(map[string]*time.Timer),
		gaGens:    make(map[string][]GaGenRecord),
		rng:       rand.New(rand.NewSource(1)),
		work:      make(chan string, opts.MaxPending),
		stop:      make(chan struct{}),
		jobCtx:    ctx,
		jobCancel: cancel,
	}
}

// Start launches the worker pool (and the watchdog when StuckTimeout is
// set). It is a no-op when already started.
func (q *Queue) Start() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started || q.draining {
		return
	}
	q.started = true
	for i := 0; i < q.opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	if q.opts.StuckTimeout > 0 {
		q.wg.Add(1)
		go q.watchdog()
	}
}

// Submit validates and enqueues a job, returning a snapshot of the
// queued entry. It fails fast with ErrDraining after a drain began and
// ErrQueueFull when the pending buffer is at capacity. A spec carrying
// a SubmitID the queue has already accepted is served idempotently: the
// existing job's snapshot comes back instead of a duplicate enqueue —
// the contract that lets clients retry submits across a coordinator
// crash without double-running campaigns.
func (q *Queue) Submit(spec JobSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	if err := validateSpecDesigns(spec); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	if spec.SubmitID != "" {
		if id, ok := q.submitIDs[spec.SubmitID]; ok {
			snap := snapshotJob(q.jobs[id])
			q.fillDistLocked(&snap)
			q.mu.Unlock()
			return snap, nil
		}
	}
	if q.draining {
		q.mu.Unlock()
		return Job{}, ErrDraining
	}
	q.nextID++
	if spec.TraceID == "" {
		// Mint the campaign trace ID here, at the top of the funnel:
		// every span and event this job produces — queue, lease pool,
		// workers — carries it from now on.
		spec.TraceID = q.opts.traceID()
	}
	j := &Job{
		ID:      fmt.Sprintf("job-%04d", q.nextID),
		Spec:    spec,
		State:   JobQueued,
		Created: q.opts.now().UTC(),
	}
	select {
	case q.work <- j.ID:
	default:
		q.nextID--
		q.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.indexSubmitIDLocked(j)
	nextID := q.nextID
	snap := snapshotJob(j)
	q.updateGaugesLocked()
	q.mu.Unlock()
	q.emit(snap, "submitted")
	seq := q.publishState(snap)
	// Journal the accepted submit durably before acking it to the
	// client: a kill -9 one instruction after this return must still
	// know the job exists.
	jsnap := snap
	q.journal(JournalRecord{
		T: recSubmit, JobID: snap.ID, Seq: seq, At: snap.Created,
		NextID: nextID, Job: &jsnap, State: JobQueued,
	}, true)
	return snap, nil
}

// indexSubmitIDLocked records a job's idempotency key. Caller holds
// q.mu. First writer wins: a key can only ever map to one job.
func (q *Queue) indexSubmitIDLocked(j *Job) {
	if key := j.Spec.SubmitID; key != "" {
		if _, taken := q.submitIDs[key]; !taken {
			q.submitIDs[key] = j.ID
		}
	}
}

// journal appends a write-ahead record, counting (not propagating)
// failures: journal trouble must not fail the queue's hot path, it
// only narrows the recovery window back to the last checkpoint.
func (q *Queue) journal(rec JournalRecord, sync bool) {
	if q.opts.Journal == nil {
		return
	}
	if err := q.opts.Journal.Append(rec, sync); err != nil {
		obs.Emit(q.opts.Sink, obs.Event{
			Type: obs.EventPhase, Name: "queue",
			Fields: map[string]any{"event": "journal_error", "error": err.Error()},
		})
	}
}

// recordGaGen durably records one completed ga_search generation: the
// in-memory mirror first (so a checkpoint taken between the two always
// covers what the journal is about to say), then a synced journal
// append — the generation a client saw progress past must survive any
// crash from here on. Only contiguous generations are accepted; a
// stale executor racing a restart cannot corrupt the history.
func (q *Queue) recordGaGen(id string, rec GaGenRecord) {
	q.mu.Lock()
	if len(q.gaGens[id]) != rec.Gen {
		q.mu.Unlock()
		return
	}
	q.gaGens[id] = append(q.gaGens[id], rec)
	q.mu.Unlock()
	r := rec
	q.journal(JournalRecord{T: recGaGen, JobID: id, Ga: &r}, true)
}

// updateGaugesLocked refreshes the queue-depth gauges. Caller holds
// q.mu; the scan is O(jobs), acceptable at queue scale.
func (q *Queue) updateGaugesLocked() {
	var counts [4]float64
	for _, j := range q.jobs {
		switch j.State {
		case JobQueued:
			counts[0]++
		case JobRunning:
			counts[1]++
		case JobCompleted:
			counts[2]++
		case JobFailed:
			counts[3]++
		}
	}
	gaugeQueued.Set(counts[0])
	gaugeRunning.Set(counts[1])
	gaugeCompleted.Set(counts[2])
	gaugeFailed.Set(counts[3])
}

// publishState emits a lifecycle JobEvent (terminal states publish a
// result frame instead, via publishTerminal), returning the assigned
// SSE sequence number for the journal.
func (q *Queue) publishState(j Job) int64 {
	return q.opts.Events.Publish(api.JobEvent{
		Type: api.JobEventState, JobID: j.ID, TraceID: j.Spec.TraceID, State: j.State,
	})
}

// publishTerminal emits the stream-closing result frame.
func (q *Queue) publishTerminal(j Job) int64 {
	return q.opts.Events.Publish(api.JobEvent{
		Type: api.JobEventResult, JobID: j.ID, TraceID: j.Spec.TraceID,
		State: j.State, Result: j.Result, Error: j.Error,
	})
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	snap := snapshotJob(j)
	q.fillDistLocked(&snap)
	return snap, true
}

// fillDistLocked attaches the live distributed-execution snapshot to a
// running job's copy. Caller holds q.mu; the DistState hook takes only
// the lease pool's own lock (a leaf in the lock order).
func (q *Queue) fillDistLocked(j *Job) {
	if q.opts.DistState != nil && j.State == JobRunning {
		j.Dist = q.opts.DistState(j.ID)
	}
}

// Jobs returns snapshots of every job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		snap := snapshotJob(q.jobs[id])
		q.fillDistLocked(&snap)
		out = append(out, snap)
	}
	return out
}

// Counts reports queue occupancy by state.
func (q *Queue) Counts() map[JobState]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	counts := make(map[JobState]int, 4)
	for _, j := range q.jobs {
		counts[j.State]++
	}
	return counts
}

// Draining reports whether the queue has stopped accepting work.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain stops accepting submissions, lets running jobs finish, then
// writes a final checkpoint. If ctx expires first, running jobs are
// cancelled (they stop at the next segment boundary and return to the
// queued state) and the checkpoint still captures them for resume. Jobs
// sitting out a retry backoff stay queued and are likewise captured.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.stop)
		for id, t := range q.timers {
			t.Stop()
			delete(q.timers, id)
		}
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		q.jobCancel()
		<-done
		err = ctx.Err()
	}
	if cerr := q.Checkpoint(); err == nil {
		err = cerr
	}
	return err
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		// Drain takes priority over pending work: queued jobs stay
		// queued (and checkpointed) rather than starting mid-shutdown.
		select {
		case <-q.stop:
			return
		default:
		}
		select {
		case <-q.stop:
			return
		case id := <-q.work:
			if !q.breakerWait() {
				// Stopped while the breaker was open; the job is still
				// JobQueued and the final checkpoint captures it.
				return
			}
			q.run(id)
		}
	}
}

// breakerWait blocks while the circuit breaker is open. It returns
// false when the queue stops first.
func (q *Queue) breakerWait() bool {
	for {
		q.mu.Lock()
		wait := q.breakerOpen.Sub(q.opts.now())
		q.mu.Unlock()
		if wait <= 0 {
			gaugeBreaker.Set(0)
			return true
		}
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		select {
		case <-q.stop:
			return false
		case <-time.After(wait):
		}
	}
}

// jobContext derives the per-job execution context: the queue-wide
// JobTimeout unless the spec's own DeadlineSec is tighter.
func (q *Queue) jobContext(spec JobSpec) (context.Context, context.CancelFunc) {
	timeout := q.opts.JobTimeout
	if spec.DeadlineSec > 0 {
		d := time.Duration(spec.DeadlineSec * float64(time.Second))
		if timeout <= 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		return context.WithTimeout(q.jobCtx, timeout)
	}
	return context.WithCancel(q.jobCtx)
}

func (q *Queue) run(id string) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return
	}
	now := q.opts.now().UTC()
	j.State = JobRunning
	j.Attempts++
	j.Started = &now
	j.Error = ""
	jctx, cancel := q.jobContext(j.Spec)
	jctx = withJobID(jctx, id)
	jctx = withTraceID(jctx, j.Spec.TraceID)
	if j.Spec.Kind == JobGaSearch {
		// Hand the GA executor its journaled generations and a durable
		// append channel, so a restarted (or retried) search fast-forwards
		// instead of re-evaluating.
		jctx = withGaJournal(jctx, &gaJournal{
			replay: append([]GaGenRecord(nil), q.gaGens[id]...),
			record: func(rec GaGenRecord) { q.recordGaGen(id, rec) },
		})
	}
	rj := &runningJob{cancel: cancel}
	rj.touch()
	// Chaos point: a job whose context is yanked mid-flight for no
	// visible reason (operator kill, orphaned deadline). Classified as
	// retryable, like a watchdog trip.
	if f := chaos.Maybe("queue.job.cancel"); f != nil {
		rj.injected = true
		f.Cancel(cancel)
	}
	q.running[id] = rj
	snap := snapshotJob(j)
	q.updateGaugesLocked()
	q.mu.Unlock()
	q.emit(snap, "started")
	seq := q.publishState(snap)
	q.journal(JournalRecord{
		T: recState, JobID: id, Seq: seq, At: now,
		State: JobRunning, Attempts: snap.Attempts,
	}, false)

	trace := snap.Spec.TraceID
	update := func(p Progress) {
		rj.touch()
		q.mu.Lock()
		j.Progress = p
		q.mu.Unlock()
		// Feed the SSE stream from the same rollup, throttled per job;
		// the final sample (Done == Total) always goes out so followers
		// see 100% before the result frame.
		now := time.Now().UnixNano()
		last := rj.lastEvent.Load()
		if now-last >= int64(progressEventPeriod) || (p.Total > 0 && p.Done >= p.Total) {
			if rj.lastEvent.CompareAndSwap(last, now) {
				pc := p
				seq := q.opts.Events.Publish(api.JobEvent{
					Type: api.JobEventProgress, JobID: id, TraceID: trace,
					State: JobRunning, Progress: &pc,
				})
				// Progress watermarks ride the next group commit: losing
				// the tail only loses a cosmetic high-water mark.
				q.journal(JournalRecord{
					T: recProgress, JobID: id, Seq: seq,
					State: JobRunning, Progress: &pc,
				}, false)
			}
		}
	}
	start := time.Now()
	res, err, panicked := q.execute(jctx, j.Spec, update)
	elapsed := time.Since(start).Seconds()
	deadlineHit := errors.Is(jctx.Err(), context.DeadlineExceeded)
	cancel()

	q.mu.Lock()
	delete(q.running, id)
	fin := q.opts.now().UTC()
	j.Finished = &fin
	retryable := false
	switch {
	case err == nil:
		if res != nil {
			res.Seconds = elapsed
		}
		j.State = JobCompleted
		j.Result = res
		q.failStreak = 0
	case q.jobCtx.Err() != nil:
		// Shutdown cut the campaign short: keep the job queued so a
		// checkpoint restore re-runs it, and give the attempt back.
		j.State = JobQueued
		j.Attempts--
		j.Error = err.Error()
	case deadlineHit && !rj.stuck.Load() && !rj.injected:
		// The job's own deadline fired. Terminal: a rerun of the same
		// spec would only time out again.
		ctrDeadlineExceeded.Add(1)
		j.State = JobFailed
		j.Error = fmt.Sprintf("deadline exceeded after %.1fs: %v", elapsed, err)
	case rj.stuck.Load():
		retryable = true
		j.Error = "watchdog: no progress for " + q.opts.StuckTimeout.String() + ": " + err.Error()
	case rj.injected:
		retryable = true
		j.Error = err.Error()
	case panicked || errors.Is(err, ErrTransient) || errors.Is(err, ErrInterrupted):
		retryable = true
		j.Error = err.Error()
	default:
		j.State = JobFailed
		j.Error = err.Error()
	}
	if retryable {
		if j.Attempts < q.opts.MaxAttempts && !q.draining {
			j.State = JobQueued
			q.scheduleRetryLocked(id, j.Attempts)
		} else {
			j.State = JobFailed
			j.Error = fmt.Sprintf("retries exhausted after %d attempts: %s", j.Attempts, j.Error)
		}
	}
	if j.State == JobFailed {
		q.failStreakLocked()
	}
	if j.State == JobCompleted || j.State == JobFailed {
		// A terminal GA job's generation history is dead weight: the
		// result carries the trajectory, and resume no longer applies.
		delete(q.gaGens, id)
	}
	snap = snapshotJob(j)
	q.updateGaugesLocked()
	q.mu.Unlock()
	q.emit(snap, string(snap.State))
	if snap.State == JobCompleted || snap.State == JobFailed {
		seq := q.publishTerminal(snap)
		// Terminal records are fsynced: the result a client is about to
		// poll must survive any crash from here on.
		q.journal(JournalRecord{
			T: recFinish, JobID: id, Seq: seq, At: fin, State: snap.State,
			Result: snap.Result, Error: snap.Error, Attempts: snap.Attempts,
		}, true)
	} else {
		seq := q.publishState(snap)
		q.journal(JournalRecord{
			T: recState, JobID: id, Seq: seq, State: snap.State,
			Attempts: snap.Attempts, Error: snap.Error,
		}, false)
	}
	if snap.State == JobCompleted || snap.State == JobFailed {
		if q.opts.Checkpoint != "" {
			if cerr := q.Checkpoint(); cerr != nil {
				ctrCheckpointErrors.Add(1)
				obs.Emit(q.opts.Sink, obs.Event{
					Type: obs.EventPhase,
					Name: "queue/" + snap.ID,
					Fields: map[string]any{
						"event": "checkpoint_error",
						"error": cerr.Error(),
					},
				})
			}
		}
	}
}

// scheduleRetryLocked arms the backoff timer for a requeued job. Caller
// holds q.mu.
func (q *Queue) scheduleRetryLocked(id string, attempts int) {
	delay := q.retryDelayLocked(attempts)
	ctrQueueRetries.Add(1)
	obs.Emit(q.opts.Sink, obs.Event{
		Type: obs.EventPhase,
		Name: "queue/" + id,
		Fields: map[string]any{
			"event":    "retry_scheduled",
			"attempts": attempts,
			"delay_ms": delay.Milliseconds(),
		},
	})
	q.timers[id] = time.AfterFunc(delay, func() { q.requeue(id) })
}

// retryDelayLocked computes attempt N's backoff: RetryBase doubled per
// prior attempt, capped at RetryMax, with jitter drawn from the upper
// half of the window so synchronized failures fan out. Caller holds
// q.mu (for the rng).
func (q *Queue) retryDelayLocked(attempts int) time.Duration {
	d := q.opts.RetryBase
	for i := 1; i < attempts && d < q.opts.RetryMax; i++ {
		d *= 2
	}
	if d > q.opts.RetryMax {
		d = q.opts.RetryMax
	}
	return d/2 + time.Duration(q.rng.Int63n(int64(d)/2+1))
}

// requeue moves a backoff-expired job back into the work channel. If
// the pending buffer is momentarily full the retry re-arms instead of
// dropping the job.
func (q *Queue) requeue(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.timers, id)
	if q.draining {
		return
	}
	j, ok := q.jobs[id]
	if !ok || j.State != JobQueued {
		return
	}
	select {
	case q.work <- id:
	default:
		q.timers[id] = time.AfterFunc(q.opts.RetryBase, func() { q.requeue(id) })
	}
}

// failStreakLocked advances the consecutive-failure count and trips the
// circuit breaker at the threshold: workers pause for BreakerCooldown so
// a poisoned environment (bad core build, failing disk) stops burning
// the backlog. Caller holds q.mu.
func (q *Queue) failStreakLocked() {
	if q.opts.BreakerThreshold < 0 {
		return
	}
	q.failStreak++
	if q.failStreak < q.opts.BreakerThreshold {
		return
	}
	q.failStreak = 0
	q.breakerOpen = q.opts.now().Add(q.opts.BreakerCooldown)
	ctrBreakerTrips.Add(1)
	gaugeBreaker.Set(1)
	obs.Emit(q.opts.Sink, obs.Event{
		Type: obs.EventPhase,
		Name: "queue",
		Fields: map[string]any{
			"event":       "breaker_tripped",
			"cooldown_ms": q.opts.BreakerCooldown.Milliseconds(),
		},
	})
}

// watchdog cancels running jobs that stop publishing progress. The
// executor sees its context die, unwinds at the next segment boundary,
// and the queue retries the job within its attempt budget.
func (q *Queue) watchdog() {
	defer q.wg.Done()
	interval := q.opts.StuckTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-tick.C:
			now := time.Now()
			q.mu.Lock()
			for id, rj := range q.running {
				last := time.Unix(0, rj.lastProgress.Load())
				if now.Sub(last) <= q.opts.StuckTimeout || rj.stuck.Swap(true) {
					continue
				}
				ctrWatchdogTrips.Add(1)
				obs.Emit(q.opts.Sink, obs.Event{
					Type: obs.EventPhase,
					Name: "queue/" + id,
					Fields: map[string]any{
						"event":    "watchdog_cancel",
						"stuck_ms": now.Sub(last).Milliseconds(),
					},
				})
				rj.cancel()
			}
			q.mu.Unlock()
		}
	}
}

// execute runs the executor with panic containment: a panicking job
// takes down neither its worker goroutine nor the queue.
func (q *Queue) execute(ctx context.Context, spec JobSpec, update func(Progress)) (res *JobResult, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("engine: job panic: %v\n%s", r, debug.Stack())
		}
	}()
	res, err = q.opts.Exec(ctx, spec, update)
	return res, err, false
}

func (q *Queue) emit(j Job, what string) {
	obs.Emit(q.opts.Sink, obs.Event{
		Type:  obs.EventPhase,
		Name:  "queue/" + j.ID,
		Trace: j.Spec.TraceID,
		Fields: map[string]any{
			"event":    what,
			"kind":     string(j.Spec.Kind),
			"state":    string(j.State),
			"attempts": j.Attempts,
		},
	})
}

// snapshotJob copies a job for hand-out. Result is shared intentionally:
// it is written once before the terminal transition and immutable after.
func snapshotJob(j *Job) Job {
	c := *j
	if j.Started != nil {
		t := *j.Started
		c.Started = &t
	}
	if j.Finished != nil {
		t := *j.Finished
		c.Finished = &t
	}
	return c
}
