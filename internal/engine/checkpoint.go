package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// checkpointVersion guards the on-disk schema; bump on incompatible
// changes so a stale file fails loudly instead of resuming garbage.
// Version 2 added the crc32c integrity trailer; version 3 records each
// running job's distributed lease state (job.dist) and moves the wire
// schema to internal/api.
const checkpointVersion = 3

// crcPrefix introduces the integrity trailer: the final line of a
// checkpoint is "#crc32c=%08x\n" over every byte before it. JSON has no
// comment syntax, so the loader strips the trailer before parsing; the
// '#' makes the file obviously annotated to a human reader.
const crcPrefix = "#crc32c="

// ErrCheckpointCorrupt reports a checkpoint file that exists but cannot
// be trusted: bad checksum, torn write, unparsable JSON, or inconsistent
// job records. Restore salvages the previous checkpoint when possible
// and wraps this error only when no generation is loadable.
var ErrCheckpointCorrupt = errors.New("engine: checkpoint corrupt")

var ctrCheckpointSalvaged = obs.Default().Counter("queue.checkpoint_salvaged")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checkpointFile is the JSON state written by Checkpoint: every job in
// submission order plus the ID counter, enough to resume a partially
// completed campaign after a restart. Completed and failed jobs keep
// their results; queued and running jobs are restored as queued and
// re-enqueued.
type checkpointFile struct {
	Version int   `json:"version"`
	NextID  int   `json:"next_id"`
	Jobs    []Job `json:"jobs"`
	// EventSeqs records the last SSE sequence number published per job,
	// so event numbering stays monotonic across a restart even after the
	// journal prefix holding those events was truncated. Additive field;
	// version-3 files without it load fine.
	EventSeqs map[string]int64 `json:"event_seqs,omitempty"`
	// GaGens carries each non-terminal ga_search job's completed
	// generation records. Without this the checkpoint-then-truncate
	// dance would drop a running search's resume data: the journal
	// prefix holding its recGaGen records is truncated the moment any
	// other job's terminal checkpoint lands. Additive field; older
	// files load fine.
	GaGens map[string][]GaGenRecord `json:"ga_gens,omitempty"`
}

// prevPath is the previous-generation checkpoint kept as a salvage
// target: every successful write first rotates the live file aside, so
// a torn or corrupted write loses at most one generation.
func prevPath(path string) string { return path + ".prev" }

// encodeCheckpoint renders the state with the crc32c trailer appended.
func encodeCheckpoint(cp *checkpointFile) ([]byte, error) {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("engine: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	sum := crc32.Checksum(data, castagnoli)
	return append(data, []byte(fmt.Sprintf("%s%08x\n", crcPrefix, sum))...), nil
}

// decodeCheckpoint verifies the trailer and the record invariants before
// handing the state back. Every failure wraps ErrCheckpointCorrupt so
// Restore can distinguish "corrupt, try the previous generation" from
// I/O errors.
func decodeCheckpoint(data []byte) (*checkpointFile, error) {
	payload, sumHex, ok := splitTrailer(data)
	if !ok {
		// No trailer. A version-1 file parses as JSON but predates the
		// integrity scheme; report the version mismatch specifically.
		var cp checkpointFile
		if json.Unmarshal(data, &cp) == nil && cp.Version != 0 && cp.Version != checkpointVersion {
			return nil, fmt.Errorf("%w: version %d, want %d", ErrCheckpointCorrupt, cp.Version, checkpointVersion)
		}
		return nil, fmt.Errorf("%w: missing checksum trailer", ErrCheckpointCorrupt)
	}
	var want uint32
	if _, err := fmt.Sscanf(sumHex, "%08x", &want); err != nil {
		return nil, fmt.Errorf("%w: unreadable checksum %q", ErrCheckpointCorrupt, sumHex)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc32c %08x, trailer says %08x", ErrCheckpointCorrupt, got, want)
	}
	var cp checkpointFile
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCheckpointCorrupt, cp.Version, checkpointVersion)
	}
	seen := make(map[string]bool, len(cp.Jobs))
	for i := range cp.Jobs {
		j := &cp.Jobs[i]
		if j.ID == "" || seen[j.ID] {
			return nil, fmt.Errorf("%w: duplicate or empty job id %q", ErrCheckpointCorrupt, j.ID)
		}
		seen[j.ID] = true
		switch j.State {
		case JobQueued, JobRunning, JobCompleted, JobFailed:
		default:
			return nil, fmt.Errorf("%w: job %s has unknown state %q", ErrCheckpointCorrupt, j.ID, j.State)
		}
	}
	return &cp, nil
}

// splitTrailer separates the payload from the "#crc32c=xxxxxxxx\n"
// final line.
func splitTrailer(data []byte) (payload []byte, sumHex string, ok bool) {
	// The trailer line has fixed length: prefix + 8 hex digits + newline.
	n := len(crcPrefix) + 8 + 1
	if len(data) < n || data[len(data)-1] != '\n' {
		return nil, "", false
	}
	line := data[len(data)-n:]
	if string(line[:len(crcPrefix)]) != crcPrefix {
		return nil, "", false
	}
	return data[:len(data)-n], string(line[len(crcPrefix) : n-1]), true
}

// Checkpoint durably writes the queue state to the configured path:
// temp file in the same directory, fsync, rotate the live file to
// <path>.prev, rename the temp into place, fsync the directory. A crash
// at any point leaves either the old generation, the new one, or a
// detectably torn file plus the .prev salvage copy — never a silent
// mix. A queue without a checkpoint path is a no-op.
func (q *Queue) Checkpoint() error {
	if q.opts.Checkpoint == "" {
		return nil
	}
	// Mark the journal BEFORE snapshotting: every record below the mark
	// was appended after its mutation landed in q.jobs, so the snapshot
	// taken next covers it and the prefix can be truncated once the
	// checkpoint is durable. Records appended after the mark survive
	// truncation and replay idempotently on top of this checkpoint.
	mark := q.opts.Journal.Mark()
	q.mu.Lock()
	cp := checkpointFile{Version: checkpointVersion, NextID: q.nextID}
	cp.Jobs = make([]Job, 0, len(q.order))
	for _, id := range q.order {
		j := snapshotJob(q.jobs[id])
		if j.State == JobRunning {
			// A running job serialized mid-flight resumes from scratch
			// (unit results are not persisted), but its lease-pool layout
			// is recorded so operators can see how far the fleet got.
			j.State = JobQueued
			if q.opts.DistState != nil {
				j.Dist = q.opts.DistState(j.ID)
			}
		}
		cp.Jobs = append(cp.Jobs, j)
	}
	if len(q.gaGens) > 0 {
		cp.GaGens = make(map[string][]GaGenRecord, len(q.gaGens))
		for id, gens := range q.gaGens {
			cp.GaGens[id] = append([]GaGenRecord(nil), gens...)
		}
	}
	q.mu.Unlock()
	cp.EventSeqs = q.opts.Events.Seqs()

	data, err := encodeCheckpoint(&cp)
	if err != nil {
		return err
	}
	dest := q.opts.Checkpoint
	// Chaos point: a checkpoint write that tears mid-file (shortwrite —
	// the dest ends up truncated, CRC-invalid) or fails outright (error).
	// The rotation below has already preserved .prev by the time a real
	// rename could tear, which is what the injected torn write emulates.
	if f := chaos.Maybe("engine.checkpoint.write"); f != nil {
		if ierr := f.Err(); ierr != nil {
			return fmt.Errorf("engine: write checkpoint: %w", ierr)
		}
		if torn, ok := f.ShortWrite(data); ok {
			rotateCheckpoint(dest)
			_ = os.WriteFile(dest, torn, 0o644)
			return nil
		}
	}
	dir := filepath.Dir(dest)
	tmp, err := os.CreateTemp(dir, ".sbstd-checkpoint-*")
	if err != nil {
		return fmt.Errorf("engine: checkpoint temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: close checkpoint: %w", err)
	}
	rotateCheckpoint(dest)
	if err := os.Rename(tmp.Name(), dest); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: rename checkpoint: %w", err)
	}
	syncDir(dir)
	// The checkpoint is durable: the journal prefix it covers is dead
	// weight. Truncation failure is non-fatal — the prefix just replays
	// idempotently next startup.
	if err := q.opts.Journal.Truncate(mark); err != nil {
		obs.Emit(q.opts.Sink, obs.Event{
			Type: obs.EventPhase, Name: "queue",
			Fields: map[string]any{"event": "journal_truncate_error", "error": err.Error()},
		})
	}
	return nil
}

// rotateCheckpoint moves the live checkpoint to its .prev slot
// (best-effort: a missing live file just leaves the old .prev).
func rotateCheckpoint(dest string) {
	if _, err := os.Stat(dest); err == nil {
		_ = os.Rename(dest, prevPath(dest))
	}
}

// syncDir fsyncs a directory so the renames within it are durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// Restore loads a checkpoint into a fresh queue, re-enqueueing every
// non-terminal job. Call before Start and before any Submit; restoring
// into a started or non-empty queue is an error.
//
// A corrupt or torn live checkpoint is not fatal: Restore falls back to
// the previous generation (<path>.prev) written by the last successful
// Checkpoint, counting the salvage on queue.checkpoint_salvaged. Only
// when no generation is loadable does it return an error wrapping
// ErrCheckpointCorrupt.
func (q *Queue) Restore(path string) error {
	cp, err := q.loadSalvage(path)
	if err != nil {
		return err
	}
	return q.adopt(cp, nil)
}

// Recover is Restore plus journal replay: it loads the newest loadable
// checkpoint generation (a missing checkpoint is fine — first boot, or
// a crash before the first checkpoint landed) and applies the journal
// records on top. Replay is idempotent, so a journal whose prefix
// overlaps the checkpoint (crash between checkpoint write and journal
// truncation) recovers cleanly. Call before Start with the records
// returned by OpenJournal.
func (q *Queue) Recover(path string, recs []JournalRecord) error {
	var cp *checkpointFile
	if path != "" {
		loaded, err := q.loadSalvage(path)
		if err != nil {
			if !os.IsNotExist(err) {
				return err
			}
		} else {
			cp = loaded
		}
	}
	return q.adopt(cp, recs)
}

// loadSalvage loads a checkpoint, falling back to the .prev generation
// when the live file is corrupt or missing-with-a-prev.
func (q *Queue) loadSalvage(path string) (*checkpointFile, error) {
	cp, mainErr := loadCheckpoint(path)
	if mainErr == nil {
		return cp, nil
	}
	if os.IsNotExist(mainErr) {
		if _, perr := os.Stat(prevPath(path)); perr != nil {
			return nil, mainErr // genuinely no checkpoint: not an error to salvage
		}
	}
	prev, prevErr := loadCheckpoint(prevPath(path))
	if prevErr != nil {
		if errors.Is(mainErr, ErrCheckpointCorrupt) {
			return nil, fmt.Errorf("engine: checkpoint %s unrecoverable (%v; previous: %v): %w",
				path, mainErr, prevErr, ErrCheckpointCorrupt)
		}
		return nil, mainErr
	}
	ctrCheckpointSalvaged.Add(1)
	obs.Emit(q.opts.Sink, obs.Event{
		Type: obs.EventPhase,
		Name: "queue",
		Fields: map[string]any{
			"event":  "checkpoint_salvaged",
			"path":   prevPath(path),
			"reason": mainErr.Error(),
		},
	})
	return prev, nil
}

// adopt installs recovered state into a fresh queue: checkpoint jobs
// first, then journal records replayed in append order, then every
// non-terminal job re-enqueued and the SSE broker seeded so
// Last-Event-ID resume works across the restart.
func (q *Queue) adopt(cp *checkpointFile, recs []JournalRecord) error {
	if cp == nil {
		cp = &checkpointFile{Version: checkpointVersion}
	}
	q.mu.Lock()
	if q.started || len(q.jobs) > 0 {
		q.mu.Unlock()
		return fmt.Errorf("engine: Restore on a started or non-empty queue")
	}
	q.nextID = cp.NextID
	for i := range cp.Jobs {
		j := cp.Jobs[i]
		// The same kind-safety validator that gates submission gates
		// recovery: a checkpoint record whose spec no longer validates
		// (hand-edited file, or written by a version with laxer rules)
		// must not resurrect as a runnable job.
		if err := j.Spec.Validate(); err != nil {
			q.emitInvalidRecovered("checkpoint", j.ID, err)
			continue
		}
		if j.State == JobRunning {
			j.State = JobQueued
		}
		// Restored jobs re-plan their units on the next run; a stale
		// dist snapshot would misreport the new campaign.
		j.Dist = nil
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
		q.indexSubmitIDLocked(&j)
	}
	for id, gens := range cp.GaGens {
		if j, ok := q.jobs[id]; ok && j.State != JobCompleted && j.State != JobFailed {
			q.gaGens[id] = append([]GaGenRecord(nil), gens...)
		}
	}
	for i := range recs {
		q.applyRecordLocked(&recs[i])
	}
	pending := 0
	for _, j := range q.jobs {
		if j.State == JobQueued {
			pending++
		}
	}
	if pending > cap(q.work) {
		// Grow the pending buffer so every resumable job fits.
		q.work = make(chan string, pending)
	}
	for _, id := range q.order {
		if q.jobs[id].State == JobQueued {
			q.work <- id
		}
	}
	q.updateGaugesLocked()
	q.mu.Unlock()

	q.seedEvents(cp.EventSeqs, recs)
	return nil
}

// applyRecordLocked replays one journal record onto the queue state.
// Idempotent by construction: submits skip existing IDs, everything
// else is an absolute assignment. Caller holds q.mu.
func (q *Queue) applyRecordLocked(rec *JournalRecord) {
	if rec.NextID > q.nextID {
		q.nextID = rec.NextID
	}
	switch rec.T {
	case recSubmit:
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		if _, exists := q.jobs[rec.Job.ID]; exists {
			return
		}
		j := *rec.Job
		// Same shared validator as Submit and checkpoint adoption.
		if err := j.Spec.Validate(); err != nil {
			q.emitInvalidRecovered("journal", j.ID, err)
			return
		}
		if j.State == JobRunning {
			j.State = JobQueued
		}
		j.Dist = nil
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
		q.indexSubmitIDLocked(&j)
	case recState:
		j, ok := q.jobs[rec.JobID]
		if !ok || j.State == JobCompleted || j.State == JobFailed {
			return
		}
		j.Attempts = rec.Attempts
		j.Error = rec.Error
		switch rec.State {
		case JobRunning:
			// The run itself did not survive the crash; what the record
			// proves is that an attempt started. Re-run from queued.
			j.State = JobQueued
			if !rec.At.IsZero() {
				t := rec.At
				j.Started = &t
			}
		default:
			j.State = JobQueued
		}
	case recProgress:
		if j, ok := q.jobs[rec.JobID]; ok && rec.Progress != nil {
			j.Progress = *rec.Progress
		}
	case recGaGen:
		if rec.Ga == nil {
			return
		}
		j, ok := q.jobs[rec.JobID]
		if !ok || j.State == JobCompleted || j.State == JobFailed {
			return
		}
		// Contiguous-append only: a record already covered by the
		// checkpoint's GaGens replays as a no-op (idempotence), and a
		// gap means the history is unusable past this point anyway.
		if len(q.gaGens[rec.JobID]) == rec.Ga.Gen {
			q.gaGens[rec.JobID] = append(q.gaGens[rec.JobID], *rec.Ga)
		}
	case recFinish:
		j, ok := q.jobs[rec.JobID]
		if !ok {
			return
		}
		delete(q.gaGens, rec.JobID)
		j.State = rec.State
		j.Result = rec.Result
		j.Error = rec.Error
		if rec.Attempts > 0 {
			j.Attempts = rec.Attempts
		}
		if !rec.At.IsZero() {
			t := rec.At
			j.Finished = &t
		}
	case recLease:
		// Lease records only feed the SSE ring (seedEvents); the work
		// units themselves are re-planned when the job re-runs.
	}
}

// emitInvalidRecovered reports a recovered job record the shared spec
// validator rejected (dropped rather than resurrected). Caller holds
// q.mu or runs before Start.
func (q *Queue) emitInvalidRecovered(source, id string, err error) {
	obs.Emit(q.opts.Sink, obs.Event{
		Type: obs.EventPhase, Name: "queue",
		Fields: map[string]any{
			"event": "recovered_job_invalid", "source": source,
			"job": id, "error": err.Error(),
		},
	})
}

// seedEvents rebuilds the SSE broker's per-job state after recovery:
// journaled events are re-seeded with their original sequence numbers,
// then every job's numbering is advanced past both the checkpointed
// high-water mark and a slack gap covering async records lost in the
// crash, so no sequence number is ever reused for a different event.
func (q *Queue) seedEvents(cpSeqs map[string]int64, recs []JournalRecord) {
	if q.opts.Events == nil {
		return
	}
	last := make(map[string]int64, len(cpSeqs))
	for id, seq := range cpSeqs {
		last[id] = seq
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Seq <= 0 || rec.JobID == "" {
			continue
		}
		ev := api.JobEvent{Seq: rec.Seq, JobID: rec.JobID}
		q.mu.Lock()
		if j, ok := q.jobs[rec.JobID]; ok {
			ev.TraceID = j.Spec.TraceID
		}
		q.mu.Unlock()
		switch rec.T {
		case recSubmit, recState:
			ev.Type = api.JobEventState
			ev.State = rec.State
			if rec.T == recSubmit {
				ev.State = JobQueued
			}
		case recProgress:
			ev.Type = api.JobEventProgress
			ev.State = JobRunning
			ev.Progress = rec.Progress
		case recFinish:
			ev.Type = api.JobEventResult
			ev.State = rec.State
			ev.Result = rec.Result
			ev.Error = rec.Error
		case recLease:
			ev.Type = api.JobEventLease
			ev.State = JobRunning
			ev.Lease = rec.Lease
		default:
			continue
		}
		q.opts.Events.Seed(ev)
		if rec.Seq > last[rec.JobID] {
			last[rec.JobID] = rec.Seq
		}
	}
	for id, seq := range last {
		q.opts.Events.Advance(id, seq+journalSeqSlack)
	}
}

func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return cp, nil
}
