package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointVersion guards the on-disk schema; bump on incompatible
// changes so a stale file fails loudly instead of resuming garbage.
const checkpointVersion = 1

// checkpointFile is the JSON state written by Checkpoint: every job in
// submission order plus the ID counter, enough to resume a partially
// completed campaign after a restart. Completed and failed jobs keep
// their results; queued and running jobs are restored as queued and
// re-enqueued.
type checkpointFile struct {
	Version int   `json:"version"`
	NextID  int   `json:"next_id"`
	Jobs    []Job `json:"jobs"`
}

// Checkpoint atomically writes the queue state to the configured path
// (write to a temp file in the same directory, then rename). A queue
// without a checkpoint path is a no-op.
func (q *Queue) Checkpoint() error {
	if q.opts.Checkpoint == "" {
		return nil
	}
	q.mu.Lock()
	cp := checkpointFile{Version: checkpointVersion, NextID: q.nextID}
	cp.Jobs = make([]Job, 0, len(q.order))
	for _, id := range q.order {
		j := snapshotJob(q.jobs[id])
		if j.State == JobRunning {
			// A running job serialized mid-flight resumes from scratch.
			j.State = JobQueued
		}
		cp.Jobs = append(cp.Jobs, j)
	}
	q.mu.Unlock()

	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(q.opts.Checkpoint)
	tmp, err := os.CreateTemp(dir, ".sbstd-checkpoint-*")
	if err != nil {
		return fmt.Errorf("engine: checkpoint temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), q.opts.Checkpoint); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: rename checkpoint: %w", err)
	}
	return nil
}

// Restore loads a checkpoint file into a fresh queue, re-enqueueing
// every non-terminal job. Call before Start and before any Submit;
// restoring into a started or non-empty queue is an error.
func (q *Queue) Restore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("engine: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("engine: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started || len(q.jobs) > 0 {
		return fmt.Errorf("engine: Restore on a started or non-empty queue")
	}
	pending := 0
	for i := range cp.Jobs {
		if cp.Jobs[i].State == JobQueued || cp.Jobs[i].State == JobRunning {
			pending++
		}
	}
	if pending > cap(q.work) {
		// Grow the pending buffer so every resumable job fits.
		q.work = make(chan string, pending)
	}
	q.nextID = cp.NextID
	for i := range cp.Jobs {
		j := cp.Jobs[i]
		if j.State == JobRunning {
			j.State = JobQueued
		}
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
		if j.State == JobQueued {
			q.work <- j.ID
		}
	}
	return nil
}
