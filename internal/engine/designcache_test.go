package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/designs"
	"repro/internal/fault"
)

// TestDesignCacheSharing: repeated and concurrent gets of one design
// return the same built instance (one build, shared pointer), and ID
// aliases ("" vs "dsp") hit the same entry.
func TestDesignCacheSharing(t *testing.T) {
	c := newDesignCache(4)
	var wg sync.WaitGroup
	got := make([]any, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.get("bench/s27")
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent gets returned distinct builds")
		}
	}
	a, err := c.get("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.get("dsp")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("\"\" and \"dsp\" must alias one cache entry")
	}
}

// TestDesignCacheEviction: the LRU bound holds, and an evicted design
// is rebuilt (a new instance) on the next request.
func TestDesignCacheEviction(t *testing.T) {
	c := newDesignCache(2)
	first, err := c.get("fam/w4r2s0l0p1")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fam/w5r2s0l0p1", "fam/w6r2s0l0p1"} {
		if _, err := c.get(id); err != nil {
			t.Fatal(err)
		}
	}
	if c.ll.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.ll.Len())
	}
	again, err := c.get("fam/w4r2s0l0p1")
	if err != nil {
		t.Fatal(err)
	}
	if again == first {
		t.Fatal("evicted design returned cached instance")
	}
	if again.Hash != first.Hash {
		t.Fatalf("rebuild hash %s != original %s", again.Hash, first.Hash)
	}
}

// TestDesignCacheByteBudget: the cache also evicts by bytes — a budget
// that holds either design but not both drops the least recently used
// one when the second build lands, and the accounting tracks it.
func TestDesignCacheByteBudget(t *testing.T) {
	a, err := designs.Build("bench/s27")
	if err != nil {
		t.Fatal(err)
	}
	b, err := designs.Build("fam/w4r2s0l0p1")
	if err != nil {
		t.Fatal(err)
	}
	c := newDesignCache(8)
	c.budget = a.SizeBytes() + b.SizeBytes() - 1
	if _, err := c.get("bench/s27"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("fam/w4r2s0l0p1"); err != nil {
		t.Fatal(err)
	}
	if c.ll.Len() != 1 {
		t.Fatalf("cache holds %d entries, byte budget allows 1", c.ll.Len())
	}
	if _, ok := c.byI["fam/w4r2s0l0p1"]; !ok {
		t.Fatal("wrong entry evicted: most recent design gone")
	}
	if c.bytes > c.budget {
		t.Fatalf("accounting over budget: %d > %d", c.bytes, c.budget)
	}
	if c.bytes != b.SizeBytes() {
		t.Fatalf("accounted %d bytes, want the resident design's %d", c.bytes, b.SizeBytes())
	}
}

// TestDesignCacheEventMetric: lookups move
// sbst_design_cache_events_total{result}.
func TestDesignCacheEventMetric(t *testing.T) {
	c := newDesignCache(4)
	hits0, misses0 := ctrDesignCacheHit.Load(), ctrDesignCacheMiss.Load()
	if _, err := c.get("bench/s27"); err != nil {
		t.Fatal(err)
	}
	if d := ctrDesignCacheMiss.Load() - misses0; d != 1 {
		t.Fatalf("miss delta %d, want 1", d)
	}
	if _, err := c.get("bench/s27"); err != nil {
		t.Fatal(err)
	}
	if d := ctrDesignCacheHit.Load() - hits0; d != 1 {
		t.Fatalf("hit delta %d, want 1", d)
	}
}

// TestDesignCacheUnknown: unknown IDs fail without polluting the cache
// and wrap the registry's unknown-design error.
func TestDesignCacheUnknown(t *testing.T) {
	c := newDesignCache(2)
	if _, err := c.get("bench/ghost"); err == nil {
		t.Fatal("unknown design accepted")
	}
	if c.ll.Len() != 0 {
		t.Fatalf("failed get left %d cache entries", c.ll.Len())
	}
}

// TestDesignBuildMetric: a cache-miss build bumps
// sbst_design_builds_total{design}; a hit does not.
func TestDesignBuildMetric(t *testing.T) {
	const id = "fam/w4r4s0l0p1"
	ctr := ctrDesignBuilds.Counter(id)
	before := ctr.Load()
	if _, err := GetDesign(id); err != nil {
		t.Fatal(err)
	}
	afterMiss := ctr.Load()
	if afterMiss <= before {
		t.Fatalf("build did not bump counter: %d -> %d", before, afterMiss)
	}
	if _, err := GetDesign(id); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Load(); got != afterMiss {
		t.Fatalf("cache hit bumped counter: %d -> %d", afterMiss, got)
	}
}

// TestValidateSpecDesigns: submission-time design checks wrap
// api.ErrUnknownDesign for the 422 path and accept known IDs.
func TestValidateSpecDesigns(t *testing.T) {
	ok := JobSpec{Kind: JobFaultSim, Design: "bench/s27"}
	if err := validateSpecDesigns(ok); err != nil {
		t.Fatal(err)
	}
	bad := JobSpec{Kind: JobFaultSim, Design: "bench/ghost"}
	if err := validateSpecDesigns(bad); !errors.Is(err, api.ErrUnknownDesign) {
		t.Fatalf("unknown design: %v, want api.ErrUnknownDesign", err)
	}
	badMatrix := JobSpec{Kind: JobCampaignMatrix, Matrix: &api.MatrixSpec{
		Designs: []string{"dsp", "fam/w99r4s1l1p1"},
		Schemes: []VectorSource{{Kind: api.VecBIST, Count: 8}},
	}}
	if err := validateSpecDesigns(badMatrix); !errors.Is(err, api.ErrUnknownDesign) {
		t.Fatalf("unknown matrix design: %v, want api.ErrUnknownDesign", err)
	}
}

// TestExecutorDesignSelection: the local executor runs a fault_sim
// campaign on a non-default design, and program stimulus on a
// vector-driven design is refused.
func TestExecutorDesignSelection(t *testing.T) {
	exec := NewExecutor(ExecConfig{Workers: 1})
	res, err := exec(context.Background(), JobSpec{
		Kind:    JobFaultSim,
		Design:  "bench/s27",
		Vectors: VectorSource{Kind: api.VecBIST, Count: 256, Seed: 1},
	}, func(Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	d, err := GetDesign("bench/s27")
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != len(d.Faults) || res.Detected == 0 {
		t.Fatalf("s27 campaign: %d/%d detected", res.Detected, res.Faults)
	}

	_, err = exec(context.Background(), JobSpec{
		Kind:    JobFaultSim,
		Design:  "bench/s27",
		Vectors: VectorSource{Kind: api.VecProgram, Program: "NOP"},
	}, func(Progress) {})
	if err == nil {
		t.Fatal("program stimulus on a vector-driven design must be refused")
	}
}

// TestMatrixLocalExecution: a 2-design × 2-scheme matrix on the local
// executor produces one cell per combination, each bit-identical to a
// standalone fault_sim run of the same (design, scheme), with summed
// headline numbers.
func TestMatrixLocalExecution(t *testing.T) {
	exec := NewExecutor(ExecConfig{Workers: 1})
	schemes := []VectorSource{
		{Kind: api.VecBIST, Count: 200, Seed: 1},
		{Kind: api.VecBIST, Count: 120, Seed: 9},
	}
	designIDs := []string{"bench/s27", "fam/w4r2s0l0p1"}
	var lastDone int
	res, err := exec(context.Background(), JobSpec{
		Kind:   JobCampaignMatrix,
		Matrix: &api.MatrixSpec{Designs: designIDs, Schemes: schemes},
	}, func(p Progress) {
		if p.Done < lastDone {
			t.Errorf("progress went backwards: %d -> %d", lastDone, p.Done)
		}
		lastDone = p.Done
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Matrix))
	}
	var sumF, sumD, sumC int
	for _, cell := range res.Matrix {
		d, err := GetDesign(cell.Design)
		if err != nil {
			t.Fatal(err)
		}
		vecs, err := resolveVectors(d, schemes[cell.SchemeIndex])
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := fault.Simulate(d.Netlist, vecs, fault.SimOptions{Faults: d.Faults})
		if err != nil {
			t.Fatal(err)
		}
		if cell.Faults != len(oracle.Faults) || cell.Detected != oracle.Detected() || cell.Cycles != oracle.Cycles {
			t.Fatalf("cell %s×%d = %d/%d in %d cycles, oracle %d/%d in %d",
				cell.Design, cell.SchemeIndex, cell.Detected, cell.Faults, cell.Cycles,
				oracle.Detected(), len(oracle.Faults), oracle.Cycles)
		}
		sumF += cell.Faults
		sumD += cell.Detected
		sumC += cell.Cycles
	}
	if res.Faults != sumF || res.Detected != sumD || res.Cycles != sumC {
		t.Fatalf("headline %d/%d/%d != cell sums %d/%d/%d",
			res.Faults, res.Detected, res.Cycles, sumF, sumD, sumC)
	}
	if res.Coverage == 0 {
		t.Fatal("zero matrix coverage")
	}
}
