package engine

import (
	"fmt"
	"time"

	"repro/internal/isa"
)

// JobKind selects the campaign a job runs.
type JobKind string

// The campaign kinds the executor understands. They mirror the paper's
// evaluation: plain stuck-at fault simulation, the n-detect quality
// variant, the bounded sequential-ATPG baseline, and the composite
// experiment comparing a self-test program against raw BIST.
const (
	JobFaultSim   JobKind = "fault_sim"
	JobNDetect    JobKind = "n_detect"
	JobSeqATPG    JobKind = "seq_atpg"
	JobExperiment JobKind = "experiment"
)

// VectorSource describes where a job's stimulus stream comes from.
type VectorSource struct {
	// Kind is "bist" (raw 17-bit LFSR vectors), "program" (an inline
	// self-test program in assembler syntax, looped through the template
	// architecture) or "selftest" (the metrics-driven generated program).
	Kind string `json:"kind"`
	// Count is the vector count for "bist".
	Count int `json:"count,omitempty"`
	// Seed seeds the LFSRs (vector generation for "bist", template
	// expansion for "program"/"selftest").
	Seed int64 `json:"seed,omitempty"`
	// Program is the assembler source for "program".
	Program string `json:"program,omitempty"`
	// Iterations is the loop count for "program"/"selftest" expansion.
	Iterations int `json:"iterations,omitempty"`
	// CTrials and OGoodRuns size the metrics engine behind "selftest"
	// generation; zero selects fast defaults.
	CTrials   int `json:"c_trials,omitempty"`
	OGoodRuns int `json:"o_good_runs,omitempty"`
}

// JobSpec is the typed request submitted to the queue (and the sbstd
// POST /jobs body).
type JobSpec struct {
	Kind JobKind `json:"kind"`
	// Vectors is the stimulus source for fault_sim, n_detect and
	// experiment jobs; seq_atpg generates its own tests.
	Vectors VectorSource `json:"vectors,omitempty"`
	// Workers is the fault-simulation shard count (0 = all cores,
	// 1 = exact serial path).
	Workers int `json:"workers,omitempty"`
	// NDetect is the per-fault detection target for n_detect jobs
	// (default 5).
	NDetect int `json:"n_detect,omitempty"`
	// SegmentLen overrides the simulator's drop/repack segment length.
	SegmentLen int `json:"segment_len,omitempty"`
	// Frames, SampleEvery and MaxBacktracks configure seq_atpg jobs.
	Frames        int `json:"frames,omitempty"`
	SampleEvery   int `json:"sample_every,omitempty"`
	MaxBacktracks int `json:"max_backtracks,omitempty"`
	// DeadlineSec bounds the job's wall time: the executor's context is
	// cancelled that many seconds after the job starts and the job fails
	// with a deadline error (no retry — a rerun would only time out
	// again). Zero inherits the queue's JobTimeout, if any.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

// Validate rejects specs the executor could not run, so the server can
// answer 400 at submission instead of failing the job later.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case JobFaultSim, JobNDetect, JobExperiment:
		switch s.Vectors.Kind {
		case "bist":
			if s.Vectors.Count <= 0 {
				return fmt.Errorf("engine: %s job with bist vectors needs count > 0", s.Kind)
			}
		case "program":
			if s.Vectors.Program == "" {
				return fmt.Errorf("engine: %s job with program vectors needs source", s.Kind)
			}
			if _, err := isa.Assemble(s.Vectors.Program); err != nil {
				return fmt.Errorf("engine: bad program: %w", err)
			}
		case "selftest":
			// Generated program; all fields optional.
		default:
			return fmt.Errorf("engine: unknown vector source %q", s.Vectors.Kind)
		}
	case JobSeqATPG:
		if s.Frames < 0 || s.SampleEvery < 0 || s.MaxBacktracks < 0 {
			return fmt.Errorf("engine: negative seq_atpg bounds")
		}
	default:
		return fmt.Errorf("engine: unknown job kind %q", s.Kind)
	}
	if s.Workers < 0 || s.NDetect < 0 || s.SegmentLen < 0 || s.DeadlineSec < 0 {
		return fmt.Errorf("engine: negative option")
	}
	return nil
}

// JobState is a job's lifecycle position.
type JobState string

// Lifecycle: queued → running → completed | failed. A forced drain or a
// recoverable worker panic moves a running job back to queued so a
// checkpoint restore re-runs it.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
)

// Progress is a live campaign snapshot, updated by the executor at
// segment boundaries (fault simulation) or per targeted fault (ATPG).
type Progress struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Detected  int     `json:"detected,omitempty"`
	Remaining int     `json:"remaining,omitempty"`
	Coverage  float64 `json:"coverage,omitempty"`
}

// JobResult is a completed campaign's headline numbers.
type JobResult struct {
	Faults   int     `json:"faults,omitempty"`
	Detected int     `json:"detected,omitempty"`
	Cycles   int     `json:"cycles,omitempty"`
	Coverage float64 `json:"coverage"`
	// NDetect results.
	NDetect         int     `json:"n_detect,omitempty"`
	NDetectCoverage float64 `json:"n_detect_coverage,omitempty"`
	// Sequential-ATPG results.
	TestsFound int `json:"tests_found,omitempty"`
	Untestable int `json:"untestable,omitempty"`
	Aborted    int `json:"aborted,omitempty"`
	// Sub holds named sub-campaign results for experiment jobs.
	Sub map[string]*JobResult `json:"sub,omitempty"`
	// Seconds is the job's wall time.
	Seconds float64 `json:"seconds,omitempty"`
}

// Job is one queue entry. The queue hands out value copies; the Result
// pointer is written once before the job reaches a terminal state and
// never mutated afterwards.
type Job struct {
	ID       string     `json:"id"`
	Spec     JobSpec    `json:"spec"`
	State    JobState   `json:"state"`
	Attempts int        `json:"attempts,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Progress Progress   `json:"progress"`
	Result   *JobResult `json:"result,omitempty"`
}
