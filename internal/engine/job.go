package engine

import (
	"repro/internal/api"
)

// The job wire types live in internal/api — the single versioned
// contract shared by the server, the client package and the worker
// fleet. The engine aliases them so the queue, executor and checkpoint
// code (and their long-standing callers) keep reading naturally;
// nothing here defines schema.

// JobKind selects the campaign a job runs (validated enum; see
// api.JobKind).
type JobKind = api.JobKind

// The campaign kinds the executor understands.
const (
	JobFaultSim       = api.JobFaultSim
	JobNDetect        = api.JobNDetect
	JobSeqATPG        = api.JobSeqATPG
	JobExperiment     = api.JobExperiment
	JobCampaignMatrix = api.JobCampaignMatrix
	JobOnlineBurst    = api.JobOnlineBurst
	JobGaSearch       = api.JobGaSearch
)

// VectorSource describes where a job's stimulus stream comes from; its
// Kind field is the validated api.VectorKind enum.
type VectorSource = api.VectorSource

// JobSpec is the typed request submitted to the queue (the
// POST /v1/jobs body). Validate rejects unknown kinds with
// api.ErrUnknownKind so the server can answer 422 at submission.
type JobSpec = api.JobSpec

// JobState is a job's lifecycle position:
// queued → running → completed | failed.
type JobState = api.JobState

// The lifecycle states.
const (
	JobQueued    = api.JobQueued
	JobRunning   = api.JobRunning
	JobCompleted = api.JobCompleted
	JobFailed    = api.JobFailed
)

// Progress is a live campaign snapshot.
type Progress = api.Progress

// JobResult is a completed campaign's headline numbers.
type JobResult = api.JobResult

// Job is one queue entry. The queue hands out value copies; the Result
// pointer is written once before the job reaches a terminal state and
// never mutated afterwards.
type Job = api.Job

// DistState is a running job's distributed execution snapshot (unit
// completion and attempt counts), filled by QueueOptions.DistState.
type DistState = api.DistState
