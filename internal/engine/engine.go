// Package engine is the campaign layer above the single-threaded fault
// simulator: a sharded multi-core fault simulation front-end, a bounded
// job queue with panic recovery and JSON checkpoint/resume, and the job
// executor behind the sbstd HTTP server.
//
// The sharding model exploits the independence of single-stuck-at
// faults: each faulty machine evolves in its own bit lane and never
// observes its batch-mates, so partitioning the collapsed fault list
// into contiguous shards and simulating each shard on its own simulator
// produces per-fault results bit-identical to the serial fault.Simulate.
// Simulate merges the shard results back into one fault.Result by
// index, so every downstream consumer (coverage curves, region
// breakdowns, diagnosis presimulation) is oblivious to the parallelism.
//
// Each shard runs the kernel selected by the embedded
// fault.SimOptions.Kernel — the compiled event-driven kernel by default
// (see docs/PERFORMANCE.md); sharding composes with it because shards
// share one immutable compiled program via logic.CompiledFor.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/artifacts"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
)

var (
	ctrSimRuns      = obs.Default().Counter("engine.sim.runs")
	ctrSimShards    = obs.Default().Counter("engine.sim.shards")
	ctrShardRetries = obs.Default().Counter("engine.shard_retries")

	// gaugeVectorsPerSec is the most recent campaign's whole-run
	// throughput; also surfaced through /v1/meta.
	gaugeVectorsPerSec = obs.Default().GaugeFamily("sbst_sim_vectors_per_second",
		"Most recent sharded simulation's vectors-per-second throughput.").Gauge()
	// histShardRate distributes per-shard throughput, exposing slow-core
	// or contended shards a whole-run average would hide.
	histShardRate = obs.Default().HistogramFamily("sbst_shard_vectors_per_second",
		"Per-shard vectors-per-second throughput of sharded simulations.",
		[]float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7}).Histogram()
)

// shardAttempts is the per-shard run budget: a shard that panics or
// returns a transient error (including chaos-injected ones) is retried
// from scratch once before the whole campaign fails. Fault simulation
// is deterministic, so a retried shard reproduces the identical result.
const shardAttempts = 2

// SimOptions extend fault.SimOptions with the shard count and the
// shadow cross-checking knobs.
type SimOptions struct {
	fault.SimOptions
	// Workers is the number of simulation shards, each with its own
	// simulator on its own goroutine. Zero selects runtime.NumCPU(); one
	// takes the exact serial fault.Simulate path.
	Workers int
	// ShadowSample is the fraction of each shard's faults re-simulated
	// through the serial reference kernel (fault.KernelReference) after
	// the shard completes, as a cross-check on the compiled kernel. On
	// divergence the compiled kernel is quarantined for that shard: the
	// shard falls back to a full reference re-run, the kernel.divergence
	// counter advances, and a diagnostic bundle is emitted. Zero selects
	// the default (0.005 ≈ <5% overhead); negative disables shadow
	// checking. Ignored when Kernel is already KernelReference or on the
	// Workers<=1 exact-serial path.
	ShadowSample float64
	// ShadowSeed seeds the deterministic shadow sample selection
	// (0 = 1).
	ShadowSeed int64
	// DiagDir, when non-empty, receives a JSON diagnostic bundle per
	// kernel divergence (shard, sampled faults, expected vs observed
	// detection cycles). Divergences are always reported through the
	// Sink and counters regardless.
	DiagDir string
	// DesignHash, when non-empty, enables the cross-job artifact cache:
	// the compiled program and the fault-free good trace are resolved
	// from (and published to) the artifact store under
	// (DesignHash, hash of the expanded vectors), so a repeated
	// submission of the same design and vector source performs zero
	// compiles and zero good-machine cycles. Use designs.Design.Hash —
	// the caller owns the guarantee that the hash matches the netlist.
	DesignHash string
	// Artifacts overrides the process-wide artifact store; nil selects
	// artifacts.Default(). Tests and benchmarks inject private stores.
	Artifacts *artifacts.Store
	// NoArtifacts disables artifact resolution even with a DesignHash
	// set — the cold path, for benchmarks that price compilation and
	// the good machine.
	NoArtifacts bool
}

// Simulate runs the vector sequence against the netlist with the fault
// list split into Workers contiguous shards simulated concurrently. The
// merged Result's DetectedAt and Detections are bit-identical to the
// serial fault.Simulate on the same fault list for every worker count.
//
// Progress (when set) receives aggregated snapshots: the cycle frontier
// every shard has passed, and detected/remaining summed over shards.
// The Sink (when set) receives each shard's own event stream under
// engine.sim/shard<k>/ plus aggregate segment and summary events under
// engine.sim. Ctx cancellation stops every shard at its next segment
// boundary; the merged result carries Interrupted and the highest cycle
// count any shard reached.
func Simulate(n *logic.Netlist, vecs fault.VectorSeq, opts SimOptions) (*fault.Result, error) {
	if len(n.Inputs()) > 64 {
		return nil, fmt.Errorf("engine: %d primary inputs exceed the 64 supported", len(n.Inputs()))
	}
	faults := opts.Faults
	if faults == nil {
		faults, _ = fault.Collapse(n, fault.AllFaults(n))
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	start := time.Now()
	// Artifact resolution (no-op without a DesignHash): shares the
	// compiled program and the completed good trace across jobs keyed by
	// content, and holds the store lease until every shard is done.
	release := resolveArtifacts(n, vecs, &opts)
	defer release()
	if workers <= 1 {
		serial := opts.SimOptions
		serial.Faults = faults
		res, err := fault.Simulate(n, vecs, serial)
		if err == nil && res != nil {
			recordRunRate(res.Cycles, start)
		}
		return res, err
	}

	ctrSimRuns.Add(1)
	ctrSimShards.Add(int64(workers))
	span := obs.NewSpan(opts.Sink, "engine.sim")
	span.Add("workers", int64(workers))
	span.Add("faults", int64(len(faults)))

	agg := newAggregator(span, opts.Progress, workers, vecs.Len())
	shardRes := make([]*fault.Result, workers)
	shardErr := make([]error, workers)
	var wg sync.WaitGroup
	// Seed every shard's remaining count before any shard goroutine
	// starts: emitLocked scans the full per-shard arrays.
	for s := 0; s < workers; s++ {
		agg.init(s, (s+1)*len(faults)/workers-s*len(faults)/workers)
	}
	for s := 0; s < workers; s++ {
		lo := s * len(faults) / workers
		hi := (s + 1) * len(faults) / workers
		shard := opts.SimOptions
		shard.Faults = faults[lo:hi]
		shard.Progress = agg.progressFn(s)
		if opts.Sink != nil {
			shard.Sink = prefixSink{prefix: fmt.Sprintf("engine.sim/shard%d/", s), sink: opts.Sink}
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Shard supervisor: a panicking or transiently failing shard
			// is retried once from scratch (simulation is deterministic,
			// so the retry reproduces the identical result) instead of
			// taking down the whole campaign — or, without the recover,
			// the whole process.
			for attempt := 1; ; attempt++ {
				shardStart := time.Now()
				res, err := runShard(n, vecs, shard, opts, s)
				if err == nil || attempt >= shardAttempts ||
					(opts.Ctx != nil && opts.Ctx.Err() != nil) {
					if err == nil && res != nil {
						if secs := time.Since(shardStart).Seconds(); secs > 0 {
							histShardRate.Observe(float64(res.Cycles) / secs)
						}
					}
					shardRes[s], shardErr[s] = res, err
					break
				}
				ctrShardRetries.Add(1)
				obs.Emit(opts.Sink, obs.Event{
					Type: obs.EventPhase,
					Name: fmt.Sprintf("engine.sim/shard%d", s),
					Fields: map[string]any{
						"event":   "shard_retry",
						"attempt": attempt,
						"error":   err.Error(),
					},
				})
			}
			agg.finish(s)
		}(s)
	}
	wg.Wait()

	res := &fault.Result{
		Faults:     faults,
		DetectedAt: make([]int32, len(faults)),
		Cycles:     vecs.Len(),
	}
	if opts.NDetect > 1 {
		res.Detections = make([]int32, len(faults))
	}
	for s := 0; s < workers; s++ {
		if shardErr[s] != nil {
			span.End()
			return nil, shardErr[s]
		}
	}
	applied := 0
	for s := 0; s < workers; s++ {
		lo := s * len(faults) / workers
		copy(res.DetectedAt[lo:lo+len(shardRes[s].DetectedAt)], shardRes[s].DetectedAt)
		if res.Detections != nil {
			copy(res.Detections[lo:lo+len(shardRes[s].Detections)], shardRes[s].Detections)
		}
		if shardRes[s].Interrupted {
			res.Interrupted = true
		}
		if shardRes[s].Cycles > applied {
			applied = shardRes[s].Cycles
		}
	}
	if res.Interrupted {
		res.Cycles = applied
	}
	span.Event(obs.EventSummary, map[string]any{
		"cycles":      res.Cycles,
		"faults":      len(faults),
		"detected":    res.Detected(),
		"coverage":    res.Coverage(),
		"workers":     workers,
		"interrupted": res.Interrupted,
	})
	span.End()
	recordRunRate(res.Cycles, start)
	return res, nil
}

// recordRunRate publishes the run's whole-campaign throughput gauge.
func recordRunRate(cycles int, start time.Time) {
	if secs := time.Since(start).Seconds(); secs > 0 {
		gaugeVectorsPerSec.Set(float64(cycles) / secs)
	}
}

// aggregator folds per-shard progress callbacks into global snapshots.
// Detected/remaining are summed over shards; the reported cycle count is
// the frontier every shard has passed (finished shards count as having
// reached the end of the sequence).
type aggregator struct {
	span     *obs.Span
	progress func(cycles, detected, remaining int)
	total    int

	mu        sync.Mutex
	cycles    []int
	detected  []int
	remaining []int
	done      []bool
}

func newAggregator(span *obs.Span, progress func(cycles, detected, remaining int), workers, total int) *aggregator {
	return &aggregator{
		span:      span,
		progress:  progress,
		total:     total,
		cycles:    make([]int, workers),
		detected:  make([]int, workers),
		remaining: make([]int, workers),
		done:      make([]bool, workers),
	}
}

func (a *aggregator) init(s, shardFaults int) {
	a.remaining[s] = shardFaults
}

func (a *aggregator) progressFn(s int) func(cycles, detected, remaining int) {
	if a.progress == nil && a.span == nil {
		return nil
	}
	return func(cycles, detected, remaining int) {
		a.mu.Lock()
		a.cycles[s] = cycles
		a.detected[s] = detected
		a.remaining[s] = remaining
		a.emitLocked()
		a.mu.Unlock()
	}
}

func (a *aggregator) finish(s int) {
	a.mu.Lock()
	a.done[s] = true
	a.emitLocked()
	a.mu.Unlock()
}

func (a *aggregator) emitLocked() {
	frontier := a.total
	detected, remaining := 0, 0
	for s := range a.cycles {
		c := a.cycles[s]
		if a.done[s] {
			c = a.total
		}
		if c < frontier {
			frontier = c
		}
		detected += a.detected[s]
		remaining += a.remaining[s]
	}
	if a.progress != nil {
		a.progress(frontier, detected, remaining)
	}
	a.span.Event(obs.EventSegment, map[string]any{
		"done":      frontier,
		"total":     a.total,
		"detected":  detected,
		"remaining": remaining,
		"coverage":  safeRatio(detected, detected+remaining),
	})
}

func safeRatio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// prefixSink namespaces a shard's event stream under the engine span so
// traces from concurrent shards stay distinguishable.
type prefixSink struct {
	prefix string
	sink   obs.Sink
}

func (p prefixSink) Emit(ev obs.Event) {
	ev.Name = p.prefix + ev.Name
	p.sink.Emit(ev)
}
