package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/api"
)

func onlineSpec(mod func(*api.OnlineSpec)) JobSpec {
	o := &api.OnlineSpec{Intervals: 4, Iterations: 3, MISRWidth: 24}
	if mod != nil {
		mod(o)
	}
	return JobSpec{Kind: JobOnlineBurst, Online: o}
}

// TestOnlineBurstJob: the executor characterizes a schedule, proves the
// comparator with a planted fault, and runs a clean core through every
// interval — the acceptance shape of the online_burst job kind.
func TestOnlineBurstJob(t *testing.T) {
	exec := NewExecutor(ExecConfig{})
	var last Progress
	res, err := exec(context.Background(), onlineSpec(func(o *api.OnlineSpec) {
		o.SelfCheck = true
		o.FaultSeed = 3
	}), func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if res.Online == nil {
		t.Fatal("no online result")
	}
	or := res.Online
	if or.Intervals != 4 || or.Passed != 4 || or.Mismatches != 0 || or.Timeouts != 0 {
		t.Fatalf("online result %+v", or)
	}
	if len(or.Schedule) != 4 {
		t.Fatalf("schedule has %d intervals", len(or.Schedule))
	}
	for _, iv := range or.Schedule {
		if iv.Cycles <= 0 || iv.Golden == "" {
			t.Fatalf("schedule entry %+v", iv)
		}
	}
	if or.SelfCheck == nil || !or.SelfCheck.Caught || len(or.SelfCheck.MismatchedIntervals) == 0 {
		t.Fatalf("self-check %+v, want the planted fault caught", or.SelfCheck)
	}
	if res.Coverage != 1 {
		t.Fatalf("coverage %v, want 1 (all intervals passed)", res.Coverage)
	}
	if last.Done != 4 || last.Total != 4 {
		t.Fatalf("final progress %+v", last)
	}
}

// TestOnlineBurstBudgetedSlotsMatchUnbudgeted: slicing the schedule
// into budget-bounded slots changes the slot count, never the
// signatures — the characterized goldens and pass counts are identical.
func TestOnlineBurstBudgetedSlotsMatchUnbudgeted(t *testing.T) {
	exec := NewExecutor(ExecConfig{})
	whole, err := exec(context.Background(), onlineSpec(nil), func(Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	biggest := 0
	for _, iv := range whole.Online.Schedule {
		if iv.Cycles > biggest {
			biggest = iv.Cycles
		}
	}
	sliced, err := exec(context.Background(), onlineSpec(func(o *api.OnlineSpec) {
		o.BudgetCycles = biggest
	}), func(Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Online.Slots < 2 {
		t.Fatalf("budget %d used %d slots; never actually preempted", biggest, sliced.Online.Slots)
	}
	if sliced.Online.Passed != whole.Online.Passed || sliced.Online.Mismatches != 0 {
		t.Fatalf("sliced run diverged: %+v vs %+v", sliced.Online, whole.Online)
	}
	for i := range whole.Online.Schedule {
		if sliced.Online.Schedule[i].Golden != whole.Online.Schedule[i].Golden {
			t.Fatalf("interval %d golden drifted across runs", i)
		}
	}
}

// TestOnlineBurstRejections pins the executor's validation errors.
func TestOnlineBurstRejections(t *testing.T) {
	exec := NewExecutor(ExecConfig{})
	cases := map[string]struct {
		spec JobSpec
		want string
	}{
		"bad policy": {onlineSpec(func(o *api.OnlineSpec) { o.Policy = "bogus" }), "unknown policy"},
		"budget below an interval": {onlineSpec(func(o *api.OnlineSpec) { o.BudgetCycles = 1 }),
			"cannot fit interval"},
		"restart never completes": {onlineSpec(func(o *api.OnlineSpec) {
			o.Policy = "restart"
			o.BudgetCycles = 1 << 20
		}), ""}, // big budget is fine — flipped below
		"gate-level design": {func() JobSpec {
			s := onlineSpec(nil)
			s.Design = "bench/s27"
			return s
		}(), "no instruction port"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := exec(context.Background(), tc.spec, func(Progress) {})
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want %q", err, tc.want)
			}
		})
	}

	// Restart policy with a budget below the schedule would preempt
	// forever; the executor must refuse it upfront. Size the budget off
	// the real schedule: fits the biggest interval, not the whole thing.
	whole, err := exec(context.Background(), onlineSpec(nil), func(Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	biggest := 0
	for _, iv := range whole.Online.Schedule {
		if iv.Cycles > biggest {
			biggest = iv.Cycles
		}
	}
	_, err = exec(context.Background(), onlineSpec(func(o *api.OnlineSpec) {
		o.Policy = "restart"
		o.BudgetCycles = biggest
	}), func(Progress) {})
	if err == nil || !strings.Contains(err.Error(), "never completes") {
		t.Fatalf("restart+small budget: %v, want a never-completes rejection", err)
	}
}

// TestOnlineSpecValidation pins the /v1 validation rules for the new
// kind (the 422 surface).
func TestOnlineSpecValidation(t *testing.T) {
	ok := onlineSpec(nil)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid online spec rejected: %v", err)
	}
	bare := JobSpec{Kind: JobOnlineBurst}
	if err := bare.Validate(); err != nil {
		t.Fatalf("bare online spec rejected: %v", err)
	}
	for name, spec := range map[string]JobSpec{
		"negative intervals": onlineSpec(func(o *api.OnlineSpec) { o.Intervals = -1 }),
		"huge misr":          onlineSpec(func(o *api.OnlineSpec) { o.MISRWidth = 65 }),
		"bad policy":         onlineSpec(func(o *api.OnlineSpec) { o.Policy = "maybe" }),
		"bist stimulus":      {Kind: JobOnlineBurst, Vectors: VectorSource{Kind: "bist", Count: 10}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
