package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/api"
	"repro/internal/designs"
	"repro/internal/evolve"
	"repro/internal/lfsr"
	"repro/internal/obs"
)

// ga.go runs ga_search jobs: a deterministic evolutionary search over
// self-test program skeletons (internal/evolve genomes) whose fitness
// is fault coverage per test cycle. The coordinator owns the GA state;
// each individual's evaluation is an ordinary fault_sim campaign —
// locally through runFaultSim, or fanned out to the worker fleet as a
// lease-pool registration per individual, so workers need zero GA
// knowledge. Every completed generation is journaled (recGaGen) and
// mirrored into the checkpoint, so a kill -9 mid-search resumes from
// the last completed generation bit-identically to an uninterrupted
// run: the GA's random draws depend only on the seed and the fitness
// values fed back, and those fitness values are replayed verbatim from
// the journal.

// ga_search defaults, deliberately tiny: a GA burns one full fault-sim
// campaign per individual per generation.
const (
	defGaPopulation  = 12
	defGaGenerations = 6
	defGaSlots       = 12
	defGaIterations  = 150
	defGaElite       = 2
	defGaTournament  = 3
	defGaMutationPct = 15
	// gaTapsPool is how many maximal-length LFSR1 polynomials the search
	// draws from.
	gaTapsPool = 4
)

var (
	ctrGaGenerations = obs.Default().CounterFamily("sbst_ga_generations_total",
		"GA generations evaluated across ga_search jobs.").Counter()
	ctrGaCacheHits = obs.Default().CounterFamily("sbst_ga_cache_hits_total",
		"GA phenotype evaluations served from the in-search dedup cache.").Counter()
)

// GaGenRecord is one completed generation's evaluation outcome, in
// population order — exactly the data the GA needs to replay its
// Advance step after a crash. Journaled as recGaGen and carried in the
// checkpoint so truncation cannot lose a running search's history.
type GaGenRecord struct {
	Gen      int       `json:"gen"`
	Coverage []float64 `json:"coverage"`
	Cycles   []int     `json:"cycles"`
	Faults   int       `json:"faults,omitempty"`
	Detected []int     `json:"detected,omitempty"`
}

// gaJournal is the queue-installed resume channel for a ga_search job:
// replay holds the generations already journaled for this job ID, and
// record durably appends a freshly completed one.
type gaJournal struct {
	replay []GaGenRecord
	record func(GaGenRecord)
}

type gaJournalKey struct{}

func withGaJournal(ctx context.Context, gj *gaJournal) context.Context {
	return context.WithValue(ctx, gaJournalKey{}, gj)
}

func gaJournalFrom(ctx context.Context) *gaJournal {
	gj, _ := ctx.Value(gaJournalKey{}).(*gaJournal)
	return gj
}

// gaOutcome is one phenotype's fault-simulation verdict.
type gaOutcome struct {
	Coverage float64
	Detected int
	Faults   int
	Cycles   int
}

// gaEvaluator scores phenotypes. run executes one individual's
// fault_sim cell; parallel lets runGaSearch evaluate a generation
// concurrently (the distributed evaluator — each individual is its own
// lease-pool registration, so concurrency keeps the fleet busy).
// Results are collected by index, so evaluation timing never leaks
// into the GA's deterministic state.
type gaEvaluator struct {
	run      func(ctx context.Context, cell JobSpec, gen, idx int, touch func()) (gaOutcome, error)
	parallel bool
}

// localGaEvaluator simulates individuals in-process, sequentially.
func localGaEvaluator(cfg ExecConfig, d *designs.Design) gaEvaluator {
	return gaEvaluator{run: func(ctx context.Context, cell JobSpec, gen, idx int, touch func()) (gaOutcome, error) {
		vecs, err := resolveVectors(d, cell.Vectors)
		if err != nil {
			return gaOutcome{}, err
		}
		r, err := runFaultSim(ctx, cfg, d, cell, vecs, func(Progress) { touch() })
		if err != nil {
			return gaOutcome{}, err
		}
		return gaOutcome{Coverage: r.Coverage, Detected: r.Detected, Faults: r.Faults, Cycles: r.Cycles}, nil
	}}
}

// distGaEvaluator registers each individual on the lease pool under a
// derived job ID ("<job>/g<gen>+i<idx>", mirroring the matrix cell
// scheme) and waits for the fleet to merge it.
func distGaEvaluator(pool *LeasePool, cfg ExecConfig, opts DistOptions, jobID string) gaEvaluator {
	return gaEvaluator{parallel: true, run: func(ctx context.Context, cell JobSpec, gen, idx int, touch func()) (gaOutcome, error) {
		cellID := fmt.Sprintf("%s/g%02d+i%02d", jobID, gen, idx)
		r, err := runDistFaultSim(ctx, pool, cfg, opts, cellID, cell, func(Progress) { touch() })
		if err != nil {
			return gaOutcome{}, err
		}
		return gaOutcome{Coverage: r.Coverage, Detected: r.Detected, Faults: r.Faults, Cycles: r.Cycles}, nil
	}}
}

// runGaSearch executes one ga_search job against a design.
func runGaSearch(ctx context.Context, d *designs.Design, spec JobSpec, update func(Progress), eval gaEvaluator) (*JobResult, error) {
	if !d.InstructionDriven() {
		return nil, fmt.Errorf("engine: design %s has no instruction port; ga_search needs the dsp design", d.ID)
	}
	g := spec.Ga
	if g == nil {
		g = &api.GaSpec{}
	}
	popN := orDefault(g.Population, defGaPopulation)
	gens := orDefault(g.Generations, defGaGenerations)
	iters := orDefault(g.Iterations, defGaIterations)
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	taps, err := lfsr.MaximalTaps(16, gaTapsPool)
	if err != nil {
		return nil, fmt.Errorf("engine: ga_search taps pool: %w", err)
	}
	search := evolve.New(evolve.Params{
		Population:  popN,
		Slots:       orDefault(g.Slots, defGaSlots),
		Elite:       orDefault(g.Elite, defGaElite),
		Tournament:  orDefault(g.Tournament, defGaTournament),
		MutationPct: orDefault(g.MutationPct, defGaMutationPct),
		Seed:        seed,
		Taps:        taps,
	})

	res := &api.GaResult{Population: popN, Generations: make([]api.GaGeneration, 0, gens)}
	var (
		bestFit    = -1.0
		bestGenome evolve.Genome
		bestOut    gaOutcome
		memo       = map[string]gaOutcome{} // phenotype dedup: genome rendering → verdict
		done       int
		total      = gens * popN
	)
	absorb := func(gen int, pop []evolve.Genome, outs []gaOutcome) []float64 {
		fit := make([]float64, len(outs))
		var sum float64
		bi := 0
		for i, o := range outs {
			fit[i] = evolve.Fitness(o.Coverage, o.Cycles)
			sum += fit[i]
			if fit[i] > fit[bi] {
				bi = i
			}
			if fit[i] > bestFit {
				bestFit = fit[i]
				bestGenome = pop[i]
				bestOut = o
			}
		}
		res.Generations = append(res.Generations, api.GaGeneration{
			Gen: gen, BestFitness: fit[bi], MeanFitness: sum / float64(len(fit)),
			BestCoverage: outs[bi].Coverage, BestCycles: outs[bi].Cycles,
		})
		return fit
	}
	progress := func() {
		update(Progress{
			Done: done, Total: total,
			Detected: bestOut.Detected, Remaining: bestOut.Faults - bestOut.Detected,
			Coverage: bestOut.Coverage,
		})
	}

	// Fast-forward journaled generations: re-derive each generation's
	// population from the seeded search and replay Advance with the
	// journaled outcomes — no re-evaluation, bit-identical trajectory.
	gj := gaJournalFrom(ctx)
	resumed := 0
	if gj != nil {
		for _, rec := range gj.replay {
			if rec.Gen != resumed || len(rec.Coverage) != popN || len(rec.Cycles) != popN {
				break // non-contiguous or mismatched record: evaluate from here
			}
			pop := search.Population()
			outs := make([]gaOutcome, popN)
			for i := range outs {
				outs[i] = gaOutcome{Coverage: rec.Coverage[i], Cycles: rec.Cycles[i], Faults: rec.Faults}
				if i < len(rec.Detected) {
					outs[i].Detected = rec.Detected[i]
				}
				memo[pop[i].String()] = outs[i]
			}
			search.Advance(absorb(rec.Gen, pop, outs))
			resumed++
			done += popN
		}
	}
	if resumed > 0 {
		res.ResumedFrom = resumed
		progress()
	}

	for gen := resumed; gen < gens; gen++ {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: ga_search at generation %d", ErrInterrupted, gen)
		}
		pop := search.Population()
		outs := make([]gaOutcome, len(pop))
		errs := make([]error, len(pop))
		var pending []int
		for i, ind := range pop {
			if o, ok := memo[ind.String()]; ok {
				outs[i] = o
				res.CacheHits++
				ctrGaCacheHits.Add(1)
				done++
				continue
			}
			pending = append(pending, i)
		}
		evalOne := func(i int) {
			ind := pop[i]
			cell := spec
			cell.Kind = JobFaultSim
			cell.Ga = nil
			cell.Vectors = VectorSource{
				Kind:        api.VecProgram,
				Program:     ind.Source(),
				Seed:        int64(ind.Seed1),
				Seed2:       int64(ind.Seed2),
				Taps:        ind.Taps1,
				ReseedEvery: ind.ReseedEvery,
				Reseeds:     append([]uint64(nil), ind.Reseeds...),
				Iterations:  iters,
			}
			outs[i], errs[i] = eval.run(ctx, cell, gen, i, progress)
		}
		if eval.parallel {
			var wg sync.WaitGroup
			for _, i := range pending {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					evalOne(i)
				}(i)
			}
			wg.Wait()
			done += len(pending)
		} else {
			for _, i := range pending {
				evalOne(i)
				done++
				progress()
			}
		}
		for _, i := range pending {
			if errs[i] != nil {
				return nil, fmt.Errorf("engine: ga_search generation %d individual %d: %w", gen, i, errs[i])
			}
			memo[pop[i].String()] = outs[i]
			res.Evaluations++
		}
		// Durably record the generation BEFORE advancing: a crash after
		// this point replays it; a crash before re-evaluates it. Either
		// way the fitness the GA consumes is identical.
		if gj != nil {
			rec := GaGenRecord{Gen: gen, Coverage: make([]float64, len(outs)),
				Cycles: make([]int, len(outs)), Detected: make([]int, len(outs))}
			for i, o := range outs {
				rec.Coverage[i] = o.Coverage
				rec.Cycles[i] = o.Cycles
				rec.Detected[i] = o.Detected
				rec.Faults = o.Faults
			}
			gj.record(rec)
		}
		search.Advance(absorb(gen, pop, outs))
		ctrGaGenerations.Add(1)
		progress()
	}

	res.BestGenome = bestGenome.String()
	res.BestFitness = bestFit
	res.BestCoverage = bestOut.Coverage
	res.BestCycles = bestOut.Cycles
	res.Best = VectorSource{
		Kind:        api.VecProgram,
		Program:     bestGenome.Source(),
		Seed:        int64(bestGenome.Seed1),
		Seed2:       int64(bestGenome.Seed2),
		Taps:        bestGenome.Taps1,
		ReseedEvery: bestGenome.ReseedEvery,
		Reseeds:     append([]uint64(nil), bestGenome.Reseeds...),
		Iterations:  iters,
	}
	return &JobResult{
		Faults:   bestOut.Faults,
		Detected: bestOut.Detected,
		Cycles:   bestOut.Cycles,
		Coverage: bestOut.Coverage,
		Ga:       res,
	}, nil
}
