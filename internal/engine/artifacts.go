package engine

import (
	"repro/internal/artifacts"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
)

var (
	// ctrProgramBuilds counts artifact-path program resolutions that had
	// to go to the compiler — an artifact-cache hit leaves it untouched,
	// which is what the repeat-submission acceptance test asserts.
	ctrProgramBuilds = obs.Default().Counter("engine.sim.program_builds")
	// ctrTracePrefills counts whole-trace good-machine prefills on the
	// artifact path (each one is vecs.Len() cycles of fault-free
	// simulation, done once and then shared by every shard and every
	// later job on the same key).
	ctrTracePrefills = obs.Default().Counter("engine.sim.trace_prefills")
)

// resolveArtifacts points opts.SimOptions at cached artifacts for
// (opts.DesignHash, vecs): the compiled program always, and the
// complete fault-free trace when it is resident or this call wins the
// fill. On a warm hit the subsequent simulation performs zero compiles
// and zero good-machine cycles; on a cold miss this call pays the
// whole good-machine pass up front (the same cycles the kernel would
// have spent per segment) and publishes it for every later job.
//
// The returned release function drops the store lease and must run
// after the simulation completes — leased entries are exempt from
// eviction, which is what keeps a shared trace alive while shards
// replay it.
func resolveArtifacts(n *logic.Netlist, vecs fault.VectorSeq, opts *SimOptions) func() {
	if opts.NoArtifacts || opts.DesignHash == "" || vecs.Len() == 0 {
		return func() {}
	}
	store := opts.Artifacts
	if store == nil {
		store = artifacts.Default()
	}
	key := artifacts.Key{
		Design:  opts.DesignHash,
		Vectors: artifacts.HashVectors(vecs.Len(), vecs.At),
	}
	h := store.Lease(key)
	opts.Program = h.Program(func() *logic.Compiled {
		ctrProgramBuilds.Add(1)
		return logic.CompiledFor(n)
	})
	if tr := h.Trace(n.NumNets(), vecs.Len(), func(tr *logic.GoodTrace) {
		ctrTracePrefills.Add(1)
		fault.FillGoodTrace(n, opts.Program, vecs, tr, vecs.Len())
	}); tr != nil && tr.ValidThrough() >= vecs.Len() {
		opts.Trace = tr
	}
	return h.Release
}
