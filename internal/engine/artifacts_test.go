package engine

import (
	"testing"

	"repro/internal/artifacts"
	"repro/internal/bist"
	"repro/internal/designs"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestArtifactRepeatSubmissionSkipsWork is the artifact cache's
// acceptance test: a second submission of the same (design, vector
// source) pair performs zero compiles and zero good-machine cycles.
// The design is built twice — two distinct netlist identities with the
// same content hash — so logic.CompiledFor's per-netlist memoization
// cannot mask a cache miss; only the artifact store can skip the work.
func TestArtifactRepeatSubmissionSkipsWork(t *testing.T) {
	const id = "fam/w8r4s1l1p2"
	d1, err := designs.Build(id)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := designs.Build(id)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Netlist == d2.Netlist {
		t.Fatal("designs.Build memoizes netlists; the rebuild no longer isolates CompiledFor")
	}
	if d1.Hash != d2.Hash {
		t.Fatalf("content hash unstable across builds: %s vs %s", d1.Hash, d2.Hash)
	}

	vecs := bist.PseudorandomVectors(512, 1)
	store := artifacts.NewStore(0)
	goodCycles := obs.Default().Counter("faultsim.good_cycles")
	builds := obs.Default().Counter("engine.sim.program_builds")

	run := func(d *designs.Design) float64 {
		res, err := Simulate(d.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: d.Faults},
			Workers:    2,
			DesignHash: d.Hash,
			Artifacts:  store,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Coverage()
	}

	g0, b0 := goodCycles.Load(), builds.Load()
	cov1 := run(d1)
	g1, b1 := goodCycles.Load(), builds.Load()
	if g1-g0 != int64(vecs.Len()) {
		t.Fatalf("cold run filled %d good cycles, want exactly %d (one shared prefill)", g1-g0, vecs.Len())
	}
	if b1-b0 != 1 {
		t.Fatalf("cold run built %d programs, want 1", b1-b0)
	}

	cov2 := run(d2)
	g2, b2 := goodCycles.Load(), builds.Load()
	if g2 != g1 {
		t.Fatalf("warm run simulated %d good-machine cycles, want 0", g2-g1)
	}
	if b2 != b1 {
		t.Fatalf("warm run compiled %d programs, want 0", b2-b1)
	}
	if cov1 != cov2 {
		t.Fatalf("coverage diverges across cache states: %v vs %v", cov1, cov2)
	}
}

// TestArtifactsOffByDefault: without a DesignHash the options are
// untouched — no lease, no shared trace — so direct Simulate callers
// (benchmarks, tests) keep the cold path they always had.
func TestArtifactsOffByDefault(t *testing.T) {
	core, faults, err := SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	vecs := bist.PseudorandomVectors(64, 1)
	store := artifacts.NewStore(0)
	res, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{Faults: faults[:100]},
		Workers:    1,
		Artifacts:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != vecs.Len() {
		t.Fatalf("cycles %d, want %d", res.Cycles, vecs.Len())
	}
	if store.Len() != 0 {
		t.Fatalf("store gained %d entries without a DesignHash", store.Len())
	}
}
