package engine

import (
	"context"
	"fmt"

	"repro/internal/api"
	"repro/internal/designs"
	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/online"
	"repro/internal/selftest"
)

// Online interval-scheduler defaults for online_burst jobs. The paper's
// deployment mode runs short bursts, so the job-level defaults are
// smaller than the library's characterization defaults.
const (
	defOnlineIntervals  = 8
	defOnlineIterations = 4
	defOnlineMISRWidth  = 24
)

// resolveProgram yields the self-test program an online_burst job
// schedules: an inline assembled program or the metrics-driven
// generated one.
func resolveProgram(src VectorSource) (*selftest.Program, error) {
	switch src.Kind {
	case api.VecProgram:
		prog, err := isa.Assemble(src.Program)
		if err != nil {
			return nil, err
		}
		return &selftest.Program{Loop: prog}, nil
	case "", api.VecSelfTest:
		prog := generatedProgram(src)
		if prog == nil {
			return nil, fmt.Errorf("engine: self-test program generation failed")
		}
		return prog, nil
	default:
		return nil, fmt.Errorf("engine: online_burst takes program or selftest stimulus, not %q", src.Kind)
	}
}

// runOnlineBurst executes an online_burst job: characterize the
// interval schedule for the spec's program, optionally prove the
// signature comparator with a deliberate injected fault, then run the
// full schedule on a clean core across budget-bounded slots. The job
// fails when the comparator misses the planted fault or when a clean
// core mismatches any interval signature — both mean the part (or the
// test) cannot be trusted in the field.
func runOnlineBurst(ctx context.Context, d *designs.Design, spec JobSpec, update func(Progress)) (*JobResult, error) {
	if !d.InstructionDriven() {
		return nil, fmt.Errorf("engine: design %s has no instruction port; online_burst needs the dsp design", d.ID)
	}
	o := spec.Online
	if o == nil {
		o = &api.OnlineSpec{}
	}
	policy, err := online.ParsePolicy(o.Policy)
	if err != nil {
		return nil, err
	}
	prog, err := resolveProgram(spec.Vectors)
	if err != nil {
		return nil, err
	}
	cfg := online.IntervalConfig{
		Config: online.Config{
			Iterations: orDefault(o.Iterations, defOnlineIterations),
			MISRWidth:  orDefault(o.MISRWidth, defOnlineMISRWidth),
			Seed1:      uint64(spec.Vectors.Seed),
		},
		Intervals:     orDefault(o.Intervals, defOnlineIntervals),
		TimeoutCycles: o.TimeoutCycles,
		Policy:        policy,
	}
	set, err := online.CharacterizeIntervals(prog, cfg)
	if err != nil {
		return nil, err
	}
	intervals := set.Intervals()
	res := &api.OnlineResult{
		Intervals:   len(intervals),
		BurstCycles: set.BurstCycles(),
		Schedule:    make([]api.OnlineIntervalInfo, 0, len(intervals)),
	}
	for _, iv := range intervals {
		res.Schedule = append(res.Schedule, api.OnlineIntervalInfo{
			Index: iv.Index, Cycles: iv.Cycles,
			Golden: fmt.Sprintf("%0*x", (cfg.MISRWidth+3)/4, iv.Golden),
		})
	}
	if o.BudgetCycles > 0 {
		for _, iv := range intervals {
			if iv.Cycles > o.BudgetCycles {
				return nil, fmt.Errorf("engine: online_burst budget_cycles %d cannot fit interval %d (%d cycles)",
					o.BudgetCycles, iv.Index, iv.Cycles)
			}
		}
		// Restart policy re-runs from interval 0 after every preemption: a
		// budget below the whole schedule preempts every slot and the
		// schedule never completes. Reject it rather than spin.
		if policy == online.PolicyRestart && o.BudgetCycles < set.BurstCycles() {
			return nil, fmt.Errorf("engine: online_burst restart policy with budget_cycles %d below the %d-cycle schedule never completes",
				o.BudgetCycles, set.BurstCycles())
		}
	}

	if o.SelfCheck {
		sc, err := set.SelfCheck(o.FaultSeed)
		if err != nil {
			return nil, err
		}
		res.SelfCheck = &api.OnlineSelfCheck{
			Component:           sc.Component.Name(),
			Bit:                 sc.Bit,
			Caught:              sc.Caught,
			MismatchedIntervals: sc.MismatchedIntervals,
		}
		if !sc.Caught {
			jr := &JobResult{Online: res}
			return jr, fmt.Errorf("engine: online_burst self-check: comparator missed injected %s bit %d fault",
				sc.Component.Name(), sc.Bit)
		}
	}

	// The field run: a clean core, whole intervals per budget slot.
	runner := online.NewRunner(set, dsp.New())
	for {
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("%w: online burst at interval %d", ErrInterrupted, runner.Status().Next)
		}
		outcomes, err := runner.Run(o.BudgetCycles)
		if err != nil {
			return nil, err
		}
		st := runner.Status()
		update(Progress{Done: st.Completed, Total: len(intervals)})
		if st.Done || st.Failed {
			break
		}
		if len(outcomes) == 0 {
			// A slot that fits no interval will never make progress.
			return nil, fmt.Errorf("engine: online_burst budget_cycles %d makes no progress at interval %d",
				o.BudgetCycles, st.Next)
		}
	}
	st := runner.Status()
	res.Passed = st.Passed
	res.Mismatches = st.Mismatches
	res.Timeouts = st.Timeouts
	res.Preemptions = st.Preemptions
	res.Slots = st.Slots
	jr := &JobResult{Online: res, Cycles: set.BurstCycles()}
	if st.Failed {
		return jr, fmt.Errorf("engine: online_burst interval %d failed (mismatches %d, timeouts %d)",
			st.FailedInterval, st.Mismatches, st.Timeouts)
	}
	// Headline coverage slot: intervals passed over intervals scheduled.
	jr.Coverage = safeRatio(st.Passed, len(intervals))
	return jr, nil
}

// orDefault returns v, or def when v is zero.
func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
