package engine

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bist"
	"repro/internal/dspgate"
	"repro/internal/fault"
)

func testCore(t testing.TB) (*dspgate.Core, []fault.Fault) {
	t.Helper()
	core, faults, err := SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	return core, faults
}

// shortFaults trims the fault list under -short: the race detector
// multiplies per-batch simulation cost, and shard-merge semantics are
// fully exercised by a prefix of the collapsed list.
func shortFaults(faults []fault.Fault, n int) []fault.Fault {
	if testing.Short() && len(faults) > n {
		return faults[:n]
	}
	return faults
}

// TestSimulateMatchesSerial is the shard-merge equivalence guarantee:
// for every worker count, the merged DetectedAt, Detections and the
// coverage curve must be byte-identical to the serial fault.Simulate on
// the dspgate netlist.
func TestSimulateMatchesSerial(t *testing.T) {
	core, faults := testCore(t)
	count := 1500
	workerCounts := []int{1, 2, 7, runtime.NumCPU()}
	if testing.Short() {
		// The race detector multiplies simulation cost; shrink the
		// workload but keep real multi-shard coverage.
		count = 300
		workerCounts = []int{1, 2, 7}
		faults = shortFaults(faults, 1500)
	}
	vecs := bist.PseudorandomVectors(count, 1)
	serial, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{
		Faults: faults, SegmentLen: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		par, err := Simulate(core.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: faults, SegmentLen: 256},
			Workers:    workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.DetectedAt, serial.DetectedAt) {
			t.Fatalf("workers=%d: DetectedAt diverges from serial", workers)
		}
		if par.Detections != nil || serial.Detections != nil {
			t.Fatalf("workers=%d: unexpected Detections", workers)
		}
		if par.Cycles != serial.Cycles || par.Interrupted != serial.Interrupted {
			t.Fatalf("workers=%d: cycles/interrupted %d/%v vs serial %d/%v",
				workers, par.Cycles, par.Interrupted, serial.Cycles, serial.Interrupted)
		}
		if par.Coverage() != serial.Coverage() {
			t.Fatalf("workers=%d: coverage %v vs serial %v", workers, par.Coverage(), serial.Coverage())
		}
		for cyc := 0; cyc <= serial.Cycles; cyc += 250 {
			if par.CoverageAt(cyc) != serial.CoverageAt(cyc) {
				t.Fatalf("workers=%d: coverage curve diverges at cycle %d", workers, cyc)
			}
		}
	}
}

// TestSimulateNDetectMatchesSerial extends equivalence to the n-detect
// counters.
func TestSimulateNDetectMatchesSerial(t *testing.T) {
	core, faults := testCore(t)
	count := 800
	workerCounts := []int{2, 7}
	if testing.Short() {
		count = 250
		workerCounts = []int{2}
		faults = shortFaults(faults, 1000)
	}
	vecs := bist.PseudorandomVectors(count, 3)
	serial, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{
		Faults: faults, SegmentLen: 256, NDetect: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		par, err := Simulate(core.Netlist, vecs, SimOptions{
			SimOptions: fault.SimOptions{Faults: faults, SegmentLen: 256, NDetect: 3},
			Workers:    workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.DetectedAt, serial.DetectedAt) {
			t.Fatalf("workers=%d: DetectedAt diverges", workers)
		}
		if !reflect.DeepEqual(par.Detections, serial.Detections) {
			t.Fatalf("workers=%d: Detections diverges", workers)
		}
		if par.NDetectCoverage(3) != serial.NDetectCoverage(3) {
			t.Fatalf("workers=%d: n-detect coverage diverges", workers)
		}
	}
}

// TestSimulateNilFaultsCollapses checks the convenience path where the
// fault list is derived from the netlist, against serial with the same
// default.
func TestSimulateNilFaultsCollapses(t *testing.T) {
	core, faults := testCore(t)
	count := 600
	if testing.Short() {
		// Cannot trim the fault list here — the point is the nil-Faults
		// collapse — so trim the vector count instead.
		count = 128
	}
	vecs := bist.PseudorandomVectors(count, 1)
	par, err := Simulate(core.Netlist, vecs, SimOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Faults) != len(faults) {
		t.Fatalf("collapsed %d faults, want %d", len(par.Faults), len(faults))
	}
	if par.Detected() == 0 {
		t.Fatal("no detections on the default fault list")
	}
}

// TestSimulateCancellationMidCampaign cancels from inside a progress
// callback: every shard must stop at a segment boundary, the merged
// result must be marked interrupted, and the partial detections must
// all lie inside the applied prefix.
func TestSimulateCancellationMidCampaign(t *testing.T) {
	core, faults := testCore(t)
	segment := 512
	if testing.Short() {
		faults = shortFaults(faults, 1500)
		segment = 256
	}
	vecs := bist.PseudorandomVectors(50000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{
			Faults:     faults,
			SegmentLen: segment,
			Ctx:        ctx,
			Progress:   func(cycles, detected, remaining int) { cancel() },
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if res.Cycles <= 0 || res.Cycles >= vecs.Len() {
		t.Fatalf("interrupted run applied %d of %d cycles", res.Cycles, vecs.Len())
	}
	for i, c := range res.DetectedAt {
		if c >= 0 && int(c) >= res.Cycles {
			t.Fatalf("fault %d detected at cycle %d beyond applied prefix %d", i, c, res.Cycles)
		}
	}
	if res.Detected() == 0 {
		t.Fatal("interrupted run should still report the detections it made")
	}
}

// TestAggregatorProgress checks the merged progress stream: the frontier
// never regresses and ends at the sequence length, and the final
// detected+remaining sums to the fault count.
func TestAggregatorProgress(t *testing.T) {
	core, faults := testCore(t)
	count := 1200
	if testing.Short() {
		count = 400
		faults = shortFaults(faults, 1000)
	}
	vecs := bist.PseudorandomVectors(count, 1)
	last := Progress{}
	frontier := -1
	_, err := Simulate(core.Netlist, vecs, SimOptions{
		SimOptions: fault.SimOptions{
			Faults:     faults,
			SegmentLen: 256,
			Progress: func(cycles, detected, remaining int) {
				if cycles < frontier {
					t.Errorf("progress frontier regressed: %d after %d", cycles, frontier)
				}
				frontier = cycles
				last = Progress{Done: cycles, Detected: detected, Remaining: remaining}
			},
		},
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frontier != vecs.Len() {
		t.Fatalf("final frontier %d, want %d", frontier, vecs.Len())
	}
	if last.Detected+last.Remaining != len(faults) {
		t.Fatalf("final detected+remaining %d, want %d", last.Detected+last.Remaining, len(faults))
	}
}
