package simpledsp

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestBehavioralSemantics(t *testing.T) {
	c := &Core{}
	// 2 * 3 = 6 (raw integer product into the accumulator).
	c.Step(OpAdd, 2, 3)
	if c.Acc != 6 {
		t.Fatalf("Acc = %d, want 6", c.Acc)
	}
	c.Step(OpAdd, 10, 10) // acc = 100 + 6
	if c.Acc != 106 {
		t.Fatalf("Acc = %d, want 106", c.Acc)
	}
	c.Step(OpSub, 2, 2) // acc = 4 - 106
	if got := int16(c.Acc); got != -102 {
		t.Fatalf("Acc = %d, want -102", got)
	}
	c.Step(OpClr, 99, 99)
	if c.Acc != 0 {
		t.Fatalf("Acc = %d after clear", c.Acc)
	}
	c.Step(OpAdd, 4, 4)
	c.Step(OpMac, 0, 0) // acc = 0 + (16 << 1)
	if c.Acc != 32 {
		t.Fatalf("Acc = %d, want 32", c.Acc)
	}
}

func TestGateMatchesBehavioral(t *testing.T) {
	n, aBus, bBus, opBus, err := BuildGate()
	if err != nil {
		t.Fatal(err)
	}
	sim := logic.NewSimulator(n)
	beh := &Core{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		op := Op(rng.Intn(4))
		a, b := uint8(rng.Uint32()), uint8(rng.Uint32())
		out := beh.Step(op, a, b)
		sim.SetInputBus(aBus, uint64(a))
		sim.SetInputBus(bBus, uint64(b))
		sim.SetInputBus(opBus, uint64(op))
		sim.Step()
		sim.Settle()
		if got := uint8(sim.BusValue(n.Outputs()[0:0:0])); got != 0 {
			_ = got // outputs read below via named bus
		}
		var gateOut uint64
		for bit, o := range n.Outputs() {
			if sim.Value(o) {
				gateOut |= 1 << uint(bit)
			}
		}
		if uint8(gateOut) != out {
			t.Fatalf("step %d op=%v a=%d b=%d: gate %#x beh %#x (acc=%#x)",
				i, op, a, b, gateOut, out, beh.Acc)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := BuildTable(Config{CTrials: 4000, OGoodRuns: 30, Seed: 9})
	t.Logf("\n%s", tab.Render())
	cell := func(rowName string, comp Comp) Cell {
		for r, row := range tab.Rows {
			if row.Name() == rowName {
				return tab.Cells[r][comp]
			}
		}
		t.Fatalf("row %q missing", rowName)
		return Cell{}
	}
	// Paper Table 1 shape:
	// 1. Observability ≈0.99 everywhere except the multiplier under Clr.
	for _, rn := range []string{"Add 0", "Add R", "Sub 0", "Sub R", "Mac 0", "Mac R"} {
		if o := cell(rn, CompMult).O; o < 0.9 {
			t.Errorf("%s/Mult O = %.2f, want ≈0.99", rn, o)
		}
		if o := cell(rn, CompAcc).O; o < 0.9 {
			t.Errorf("%s/Acc O = %.2f, want ≈0.99", rn, o)
		}
	}
	// 2. Clr kills multiplier observability.
	if o := cell("Clr 0", CompMult).O; o != 0 {
		t.Errorf("Clr 0/Mult O = %.2f, want 0.00", o)
	}
	if o := cell("Clr R", CompMult).O; o != 0 {
		t.Errorf("Clr R/Mult O = %.2f, want 0.00", o)
	}
	// 3. Multiplier controllability is high (two independent random
	// operands).
	if c := cell("Add 0", CompMult).C; c < 0.95 {
		t.Errorf("Add 0/Mult C = %.2f, want ≈0.99", c)
	}
	// 4. Random accumulator state raises ALU controllability.
	if c0, cr := cell("Add 0", CompAdd).C, cell("Add R", CompAdd).C; cr <= c0 {
		t.Errorf("Add R ALU C (%.2f) should exceed Add 0 (%.2f)", cr, c0)
	}
	// 5. Mode columns: Add rows never exercise Sub/Clear and vice versa.
	if cell("Add 0", CompSub).Active || cell("Sub 0", CompAdd).Active || cell("Clr 0", CompAdd).Active {
		t.Error("mode column cross-contamination")
	}
}

func TestRowsAndNames(t *testing.T) {
	rows := Rows()
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	if rows[0].Name() != "Add 0" || rows[1].Name() != "Add R" {
		t.Fatalf("row names: %s, %s", rows[0].Name(), rows[1].Name())
	}
}
