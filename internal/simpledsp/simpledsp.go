// Package simpledsp models the small DSP datapath of the paper's
// Figure 1 — a multiplier feeding an ALU (add / subtract / clear) that
// writes an accumulator — and reproduces the controllability/
// observability metrics table of Table 1.
//
// The datapath executes one "instruction" per cycle: two 8-bit operands
// enter, the multiplier forms their 16-bit product, the ALU combines it
// with the accumulator under the instruction's mode, and the result is
// stored back and observed at the 8-bit output (the accumulator's high
// byte). Each instruction's metrics are computed twice, with the
// accumulator zero ("0" rows) and holding a random value ("R" rows).
package simpledsp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/synth"
)

// Op is a simple-datapath instruction.
type Op uint8

// Instructions (Table 1 rows, without the accumulator-state suffix).
const (
	// OpAdd sets acc = product + acc.
	OpAdd Op = iota
	// OpSub sets acc = product − acc.
	OpSub
	// OpMac sets acc = product + (acc << 1): the multiply-accumulate
	// variant with a doubled feedback term.
	OpMac
	// OpClr clears the accumulator; the product is computed but unused.
	OpClr
	numOps
)

var opNames = [numOps]string{"Add", "Sub", "Mac", "Clr"}

// String returns the mnemonic.
func (o Op) String() string { return opNames[o] }

// Ops lists all instructions.
func Ops() []Op { return []Op{OpAdd, OpSub, OpMac, OpClr} }

// Comp is a probed datapath component (Table 1 columns).
type Comp uint8

// Components.
const (
	CompMult  Comp = iota
	CompAdd        // ALU in add mode
	CompSub        // ALU in subtract mode
	CompClear      // ALU in clear mode
	CompAcc
	numComps
)

var compNames = [numComps]string{"Mult", "Add", "Sub", "Clear", "Acc"}

// String returns the component name.
func (c Comp) String() string { return compNames[c] }

// Comps lists all components.
func Comps() []Comp { return []Comp{CompMult, CompAdd, CompSub, CompClear, CompAcc} }

// aluMode maps an op to the ALU mode component exercised.
func (o Op) aluMode() Comp {
	switch o {
	case OpAdd, OpMac:
		return CompAdd
	case OpSub:
		return CompSub
	default:
		return CompClear
	}
}

const accWidth = 16

// Core is the behavioral simple datapath.
type Core struct {
	Acc uint32 // 16-bit accumulator

	// Probe hooks, optional: called with each component's output.
	Observe func(c Comp, value uint32) uint32
}

func (c *Core) observe(comp Comp, v uint32, width int) uint32 {
	mask := uint32(1)<<uint(width) - 1
	if c.Observe == nil {
		return v & mask
	}
	return c.Observe(comp, v&mask) & mask
}

// Step executes one instruction with the given operands and returns the
// observable 8-bit output (the accumulator's high byte after the write).
func (c *Core) Step(op Op, a, b uint8) uint8 {
	prod := c.observe(CompMult, uint32(int32(int8(a))*int32(int8(b))), accWidth)
	accIn := c.observe(CompAcc, c.Acc, accWidth)
	var alu uint32
	switch op {
	case OpAdd:
		alu = c.observe(CompAdd, prod+accIn, accWidth)
	case OpSub:
		alu = c.observe(CompSub, prod-accIn, accWidth)
	case OpMac:
		alu = c.observe(CompAdd, prod+(accIn<<1), accWidth)
	case OpClr:
		alu = c.observe(CompClear, 0, accWidth)
	}
	c.Acc = alu & (1<<accWidth - 1)
	return uint8(c.Acc >> 8)
}

// BuildGate emits the gate-level equivalent (for fault-simulating the
// toy datapath in examples and benches).
func BuildGate() (*logic.Netlist, logic.Bus, logic.Bus, logic.Bus, error) {
	b := logic.NewBuilder()
	a := b.InputBus("a", 8)
	x := b.InputBus("b", 8)
	opSel := b.InputBus("op", 2) // 00 add, 01 sub, 10 mac, 11 clr
	var prod logic.Bus
	b.Scoped("Mult", func() {
		prod = synth.MulSigned(b, a, x, accWidth)
	})
	accFeed := make(logic.Bus, accWidth)
	for i := range accFeed {
		accFeed[i] = b.DeferredBuf()
	}
	var acc logic.Bus
	b.Scoped("Acc", func() { acc = b.DFFBus(accFeed, "acc") })
	var alu logic.Bus
	b.Scoped("ALU", func() {
		accTerm := b.Mux2Bus(opSel[1], acc, shiftLeft1(b, acc)) // mac doubles the feedback
		sum, _ := synth.AddSub(b, prod, accTerm, opSel[0])
		isClr := b.And(opSel[0], opSel[1])
		zero := b.ConstBus(0, accWidth)
		alu = b.Mux2Bus(isClr, sum, zero)
	})
	for i := range accFeed {
		b.ResolveBuf(accFeed[i], alu[i])
	}
	out := make(logic.Bus, 8)
	copy(out, acc[8:])
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return n, a, x, opSel, err
}

func shiftLeft1(b *logic.Builder, bus logic.Bus) logic.Bus {
	out := make(logic.Bus, len(bus))
	out[0] = b.Const(false)
	copy(out[1:], bus[:len(bus)-1])
	return out
}

// Row is a Table 1 row: an instruction under an accumulator-state
// assumption.
type Row struct {
	Op     Op
	Random bool // accumulator holds a random value ("R") vs zero ("0")
}

// Name renders the paper's row label ("Add 0", "Mac R", ...).
func (r Row) Name() string {
	suffix := "0"
	if r.Random {
		suffix = "R"
	}
	return fmt.Sprintf("%s %s", r.Op, suffix)
}

// Rows returns Table 1's eight rows.
func Rows() []Row {
	var rows []Row
	for _, op := range Ops() {
		rows = append(rows, Row{Op: op}, Row{Op: op, Random: true})
	}
	return rows
}

// Cell is one Table 1 entry.
type Cell struct {
	Active bool
	C, O   float64
}

// Table is the Table 1 reproduction.
type Table struct {
	Rows  []Row
	Cols  []Comp
	Cells [][]Cell
}

// Config sizes the measurement.
type Config struct {
	CTrials   int // controllability trials per row (default 20000)
	OGoodRuns int // observability good runs per row (default 200)
	Seed      int64
}

// BuildTable measures the full metrics table. Controllability is the
// normalized input entropy of each component (multiplier: the two
// operands; ALU: product and accumulator term; accumulator: the ALU
// result); observability is the detected fraction of 2×n random output
// corruptions per good run, observed at the 8-bit output over a short
// horizon.
func BuildTable(cfg Config) *Table {
	if cfg.CTrials == 0 {
		cfg.CTrials = 20000
	}
	if cfg.OGoodRuns == 0 {
		cfg.OGoodRuns = 200
	}
	t := &Table{Rows: Rows(), Cols: Comps()}
	t.Cells = make([][]Cell, len(t.Rows))
	for r, row := range t.Rows {
		t.Cells[r] = measureRow(row, cfg)
	}
	return t
}

func measureRow(row Row, cfg Config) []Cell {
	cells := make([]Cell, numComps)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(row.Op)*2 + b2i(row.Random)))

	// Controllability: per-component input-port histograms.
	multA := metrics.NewHistogram(8)
	multB := metrics.NewHistogram(8)
	aluP := metrics.NewHistogram(accWidth)
	aluAcc := metrics.NewHistogram(accWidth)
	accState := metrics.NewHistogram(accWidth)
	for i := 0; i < cfg.CTrials; i++ {
		a, b := uint8(rng.Uint32()), uint8(rng.Uint32())
		core := &Core{}
		if row.Random {
			core.Acc = rng.Uint32() & (1<<accWidth - 1)
		}
		var prodSeen, accSeen uint32
		core.Observe = func(c Comp, v uint32) uint32 {
			switch c {
			case CompMult:
				prodSeen = v
			case CompAcc:
				accSeen = v
			}
			return v
		}
		core.Step(row.Op, a, b)
		multA.Add(uint32(a))
		multB.Add(uint32(b))
		aluP.Add(prodSeen)
		aluAcc.Add(accSeen)
		// The accumulator is a register: its metric tracks the stored
		// state over the target and the two follow-up instructions every
		// real test sequence contains.
		accState.Add(core.Acc)
		core.Step(OpAdd, uint8(rng.Uint32()), uint8(rng.Uint32()))
		accState.Add(core.Acc)
		core.Step(OpAdd, uint8(rng.Uint32()), uint8(rng.Uint32()))
		accState.Add(core.Acc)
	}
	cells[CompMult] = Cell{Active: true, C: metrics.Controllability(multA, multB)}
	aluC := metrics.Controllability(aluP, aluAcc)
	cells[row.Op.aluMode()] = Cell{Active: true, C: aluC}
	cells[CompAcc] = Cell{Active: true, C: metrics.Controllability(accState)}

	// Observability: corrupt each component's output, watch the output
	// for this and the next few cycles (follow-up adds propagate the
	// accumulator state).
	for _, comp := range Comps() {
		if !cells[comp].Active {
			continue
		}
		inj, det := 0, 0
		for g := 0; g < cfg.OGoodRuns; g++ {
			seed := cfg.Seed*7919 + int64(g)
			goodTrace := obsTrial(row, seed, comp, false, 0)
			for k := 0; k < 2*accWidth; k++ {
				errVal := uint32(rng.Uint32()) & (1<<accWidth - 1)
				badTrace := obsTrial(row, seed, comp, true, errVal)
				inj++
				if goodTrace != badTrace {
					det++
				}
			}
		}
		cells[comp].O = float64(det) / float64(inj)
	}
	return cells
}

// obsTrial runs the target instruction then two follow-up adds (the
// wrapper that exposes accumulator state) and packs the output trace.
func obsTrial(row Row, seed int64, comp Comp, inject bool, errVal uint32) uint64 {
	rng := rand.New(rand.NewSource(seed))
	a, b := uint8(rng.Uint32()), uint8(rng.Uint32())
	core := &Core{}
	if row.Random {
		core.Acc = rng.Uint32() & (1<<accWidth - 1)
	}
	injected := false
	first := true
	core.Observe = func(c Comp, v uint32) uint32 {
		if inject && first && c == comp && comp != CompAcc && !injected {
			injected = true
			if errVal == v {
				errVal = ^v & (1<<accWidth - 1)
			}
			return errVal
		}
		return v
	}
	var trace uint64
	trace = uint64(core.Step(row.Op, a, b))
	if inject && comp == CompAcc {
		// A register's output error is an error in its contents.
		if errVal == core.Acc {
			errVal = ^core.Acc & (1<<accWidth - 1)
		}
		core.Acc = errVal
		trace = uint64(uint8(core.Acc >> 8))
	}
	first = false
	fa, fb := uint8(rng.Uint32()), uint8(rng.Uint32())
	trace = trace<<8 | uint64(core.Step(OpAdd, fa, fb))
	trace = trace<<8 | uint64(core.Step(OpAdd, fa, fb))
	return trace
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Render formats the table in the paper's Table 1 style.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "Opcode")
	for _, c := range t.Cols {
		fmt.Fprintf(&sb, "| %-11s", c)
	}
	sb.WriteByte('\n')
	for r, row := range t.Rows {
		fmt.Fprintf(&sb, "%-8s", row.Name())
		for ci := range t.Cols {
			cell := t.Cells[r][ci]
			if !cell.Active {
				fmt.Fprintf(&sb, "| %-11s", "")
				continue
			}
			fmt.Fprintf(&sb, "| %.2f/%.2f   ", cell.C, cell.O)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
