package dspgate

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/logic"
)

// TestDecoderMatchesControlTable drives every assigned opcode through
// the gate-level core and compares the execute-stage control flip-flops
// against the shared dsp.ControlBits table — the decoder's ground truth.
func TestDecoderMatchesControlTable(t *testing.T) {
	c := buildCore(t, false)
	n := c.Netlist
	sim := logic.NewSimulator(n)
	ctrl := map[string]logic.NetID{}
	for _, name := range []string{
		"ex_sub", "ex_accb", "ex_trunc", "ex_mode0", "ex_mode1",
		"ex_zacc", "ex_zprod", "ex_mac", "ex_ldi", "ex_out", "ex_wd",
	} {
		id := n.Lookup("Pipeline." + name)
		if id == logic.InvalidNet {
			t.Fatalf("missing ctrl net %s", name)
		}
		ctrl[name] = id
	}
	for oc := uint32(0); oc < 32; oc++ {
		in, err := isa.Decode(oc << 12)
		word := oc << 12
		sim.Reset()
		sim.SetInputBus(c.Instr, uint64(word))
		sim.Step() // IR
		sim.SetInputBus(c.Instr, 0)
		sim.Step() // decode: ex_* latch

		var want dsp.CtrlBits // zero ctrl word for trap opcodes
		if err == nil {
			want = dsp.ControlBits(in.Op, in.Acc)
		}
		check := func(name string, wantV bool) {
			if got := sim.Value(ctrl[name]); got != wantV {
				t.Errorf("opcode %05b (%v): %s = %v, want %v", oc, in.Op, name, got, wantV)
			}
		}
		check("ex_sub", want.Sub)
		check("ex_accb", want.AccB)
		check("ex_trunc", want.TruncEn)
		check("ex_mode0", want.Mode&1 == 1)
		check("ex_mode1", want.Mode&2 == 2)
		check("ex_zacc", want.ZeroAcc)
		check("ex_zprod", want.ZeroProd)
		check("ex_mac", want.MacFamily)
		check("ex_ldi", want.IsLdi)
		check("ex_out", want.IsOut)
		check("ex_wd", want.WritesDest)
	}
}

// TestGateVerilogExport sanity-checks the full-core Verilog dump.
func TestGateVerilogExport(t *testing.T) {
	c := buildCore(t, false)
	var counter lineCounter
	if err := logic.WriteVerilog(&counter, c.Netlist, "dsp_core"); err != nil {
		t.Fatal(err)
	}
	if counter.lines < c.Netlist.NumGates()/2 {
		t.Fatalf("verilog suspiciously short: %d lines for %d gates", counter.lines, c.Netlist.NumGates())
	}
}

type lineCounter struct{ lines int }

func (lc *lineCounter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			lc.lines++
		}
	}
	return len(p), nil
}
