// Package dspgate constructs the gate-level netlist of the DSP core —
// the role Synopsys Design Compiler plays in the paper's flow. The
// netlist mirrors the behavioral model in package dsp cycle-for-cycle
// (verified by cross-simulation tests) and is the circuit every fault
// coverage number in this repository is measured on.
//
// Datapath components are emitted inside named hierarchical scopes
// ("Multiplier", "Shifter", ...) so the fault simulator can attribute
// faults to components, mirroring the per-component fault counts of the
// paper's Table 2.
package dspgate

import (
	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/synth"
)

// Core bundles the built netlist with its port buses and, for
// verification, the architectural-state buses.
type Core struct {
	Netlist *logic.Netlist
	// Instr is the 17-bit instruction input bus (Instr[i] = bit i).
	Instr logic.Bus
	// Out is the 8-bit output-port bus.
	Out logic.Bus

	// Regs are the register-file Q buses (16×8), AccABus/AccBBus the
	// accumulator Q buses (18 bits each). Exposed for the cross-check
	// tests against the behavioral model; fault detection uses Out only.
	Regs    []logic.Bus
	AccABus logic.Bus
	AccBBus logic.Bus
}

// Options control construction.
type Options struct {
	// InsertFanoutBranches builds the netlist with per-branch buffers so
	// the stuck-at fault list is pin-accurate. Enable for fault
	// simulation; disable for the fastest logic simulation.
	InsertFanoutBranches bool
}

// ComponentRegions lists the hierarchical scope names of the datapath
// components, in Table 2 column-walk order.
var ComponentRegions = []string{
	"Multiplier", "Shifter", "AddSub", "MuxA", "MuxB", "Truncater",
	"AccA", "AccB", "Limiter", "RegFile", "Forward", "Buffer",
	"OutPort", "Decoder", "Pipeline",
}

// Build emits the complete core.
func Build(opts Options) (*Core, error) {
	b := logic.NewBuilder()
	instr := b.InputBus("instr", isa.Width)

	// ---- Stage 1: instruction register ----
	var ir logic.Bus
	b.Scoped("Pipeline", func() {
		ir = b.DFFBus(instr, "ir")
	})

	// ---- Stage 2: decode + register read ----
	opcode := ir.Slice(12, 17)
	fieldRA := ir.Slice(8, 12)
	fieldRB := ir.Slice(4, 8)
	fieldRD := ir.Slice(0, 4)
	fieldImm := ir.Slice(4, 12)
	fieldSrc := ir.Slice(4, 8)

	// Decoder: one-hot opcode lines OR-ed into control signals from the
	// shared dsp.ControlBits table.
	type ctrlNets struct {
		sub, accB, truncEn, mode0, mode1             logic.NetID
		zeroAcc, zeroProd                            logic.NetID
		macFamily, isLdi, isOut, readSrc, writesDest logic.NetID
	}
	var cw ctrlNets
	b.Scoped("Decoder", func() {
		hot := synth.Decoder(b, opcode)
		gather := func(pick func(dsp.CtrlBits) bool) logic.NetID {
			var lines []logic.NetID
			for oc := 0; oc < 32; oc++ {
				in, err := isa.Decode(uint32(oc) << 12)
				if err != nil {
					continue // unassigned opcode: trap, contributes 0
				}
				if pick(dsp.ControlBits(in.Op, in.Acc)) {
					lines = append(lines, hot[oc])
				}
			}
			switch len(lines) {
			case 0:
				return b.Const(false)
			case 1:
				return b.Buf(lines[0], "")
			default:
				return b.Or(lines...)
			}
		}
		cw.sub = gather(func(c dsp.CtrlBits) bool { return c.Sub })
		cw.accB = gather(func(c dsp.CtrlBits) bool { return c.AccB })
		cw.truncEn = gather(func(c dsp.CtrlBits) bool { return c.TruncEn })
		cw.mode0 = gather(func(c dsp.CtrlBits) bool { return c.Mode&1 == 1 })
		cw.mode1 = gather(func(c dsp.CtrlBits) bool { return c.Mode&2 == 2 })
		cw.zeroAcc = gather(func(c dsp.CtrlBits) bool { return c.ZeroAcc })
		cw.zeroProd = gather(func(c dsp.CtrlBits) bool { return c.ZeroProd })
		cw.macFamily = gather(func(c dsp.CtrlBits) bool { return c.MacFamily })
		cw.isLdi = gather(func(c dsp.CtrlBits) bool { return c.IsLdi })
		cw.isOut = gather(func(c dsp.CtrlBits) bool { return c.IsOut })
		cw.readSrc = gather(func(c dsp.CtrlBits) bool { return c.ReadSrc })
		cw.writesDest = gather(func(c dsp.CtrlBits) bool { return c.WritesDest })
	})

	// WB-stage registers are needed by stage 2 (forwarding) and by the
	// register file write port; declare them as deferred feedback.
	wbDataFeed := deferBus(b, 8)
	wbDestFeed := deferBus(b, 4)
	wbWriteEnFeed := b.DeferredBuf()
	wbOutEnFeed := b.DeferredBuf()
	wbOutValFeed := deferBus(b, 8)
	var wbData, wbDest, wbOutVal logic.Bus
	var wbWriteEn, wbOutEn logic.NetID
	b.Scoped("Pipeline", func() {
		wbData = b.DFFBus(wbDataFeed, "wb_data")
		wbDest = b.DFFBus(wbDestFeed, "wb_dest")
		wbWriteEn = b.DFF(wbWriteEnFeed, "wb_we")
		wbOutEn = b.DFF(wbOutEnFeed, "wb_oe")
		wbOutVal = b.DFFBus(wbOutValFeed, "wb_outval")
	})

	// Register file with write port driven by the WB stage.
	var rf *synth.RegFile
	b.Scoped("RegFile", func() {
		rf = synth.RegisterFile(b, synth.RegisterFileConfig{NumRegs: isa.NumRegs, Width: 8},
			wbDest, wbData, wbWriteEn)
	})

	// Read addresses come from fixed instruction bit positions: port A
	// reads RegA (bits [11:8]) except for OUT/MOV, which read the Source
	// field; port B always reads bits [7:4].
	addrA := b.Mux2Bus(cw.readSrc, fieldRA, fieldSrc)
	addrB := fieldRB

	var readA, readB logic.Bus
	b.Scoped("RegFile", func() {
		readA = rf.ReadPort(b, addrA)
		readB = rf.ReadPort(b, addrB)
	})

	// Forwarding (temporary) register bypass.
	var fwdA, fwdB logic.Bus
	b.Scoped("Forward", func() {
		matchA := b.And(wbWriteEn, synth.Equal(b, addrA, wbDest))
		matchB := b.And(wbWriteEn, synth.Equal(b, addrB, wbDest))
		fwdA = b.Mux2Bus(matchA, readA, wbData)
		fwdB = b.Mux2Bus(matchB, readB, wbData)
	})

	// ---- EX-stage pipeline registers ----
	var exSub, exAccB, exTruncEn, exZeroAcc, exZeroProd logic.NetID
	var exMacFamily, exIsLdi, exIsOut, exWritesDest logic.NetID
	var exMode, exOpA, exOpB, exImm, exSrcVal, exDest logic.Bus
	b.Scoped("Pipeline", func() {
		exSub = b.DFF(cw.sub, "ex_sub")
		exAccB = b.DFF(cw.accB, "ex_accb")
		exTruncEn = b.DFF(cw.truncEn, "ex_trunc")
		exMode = logic.Bus{b.DFF(cw.mode0, "ex_mode0"), b.DFF(cw.mode1, "ex_mode1")}
		exZeroAcc = b.DFF(cw.zeroAcc, "ex_zacc")
		exZeroProd = b.DFF(cw.zeroProd, "ex_zprod")
		exMacFamily = b.DFF(cw.macFamily, "ex_mac")
		exIsLdi = b.DFF(cw.isLdi, "ex_ldi")
		exIsOut = b.DFF(cw.isOut, "ex_out")
		exWritesDest = b.DFF(cw.writesDest, "ex_wd")
		exOpA = b.DFFBus(fwdA, "ex_opa")
		exOpB = b.DFFBus(fwdB, "ex_opb")
		exImm = b.DFFBus(fieldImm, "ex_imm")
		exSrcVal = b.DFFBus(fwdA, "ex_src")
		exDest = b.DFFBus(fieldRD, "ex_dest")
	})

	// ---- Execute stage: the MAC datapath of Figure 5 ----
	// Accumulators close a combinational loop through the shifter and
	// adder, so their D inputs are deferred.
	accAFeed := deferBus(b, 18)
	accBFeed := deferBus(b, 18)
	var accA, accB logic.Bus
	b.Scoped("AccA", func() { accA = b.DFFBus(accAFeed, "accA") })
	b.Scoped("AccB", func() { accB = b.DFFBus(accBFeed, "accB") })

	var prod logic.Bus
	b.Scoped("Multiplier", func() {
		p16 := synth.MulSigned(b, exOpA, exOpB, 16)
		prod = b.SignExtend(p16, 18)
		b.NameBus(prod, "prod")
	})

	accSel := b.Mux2Bus(exAccB, accA, accB)

	var shifted logic.Bus
	b.Scoped("Shifter", func() {
		shifted = synth.BarrelShifter(b, accSel, exOpA.Slice(0, 4), exMode)
		b.NameBus(shifted, "shifted")
	})

	zero18 := b.ConstBus(0, 18)
	var addA, addB logic.Bus
	b.Scoped("MuxA", func() {
		addA = b.Mux2Bus(exZeroAcc, shifted, zero18)
		b.NameBus(addA, "addA")
	})
	b.Scoped("MuxB", func() {
		addB = b.Mux2Bus(exZeroProd, prod, zero18)
		b.NameBus(addB, "addB")
	})

	var sum logic.Bus
	b.Scoped("AddSub", func() {
		sum, _ = synth.AddSub(b, addA, addB, exSub)
		b.NameBus(sum, "sum")
	})

	var truncated logic.Bus
	b.Scoped("Truncater", func() {
		truncated = synth.Truncate(b, sum, 8, exTruncEn)
		b.NameBus(truncated, "trunc")
	})

	var macOut logic.Bus
	b.Scoped("Limiter", func() {
		macOut = synth.Limiter(b, truncated, 4, 8)
		b.NameBus(macOut, "macOut")
	})

	// Accumulator write-back.
	enA := b.And(exMacFamily, b.Not(exAccB))
	enB := b.And(exMacFamily, exAccB)
	dAccA := b.Mux2Bus(enA, accA, truncated)
	dAccB := b.Mux2Bus(enB, accB, truncated)
	resolveBus(b, accAFeed, dAccA)
	resolveBus(b, accBFeed, dAccB)

	// Stage-3 buffer and writeback muxing.
	var bufVal logic.Bus
	b.Scoped("Buffer", func() {
		bufVal = b.Mux2Bus(exIsLdi, exSrcVal, exImm)
		b.NameBus(bufVal, "buf")
	})
	wbDataNext := b.Mux2Bus(exMacFamily, bufVal, macOut)

	resolveBus(b, wbDataFeed, wbDataNext)
	resolveBus(b, wbDestFeed, exDest)
	b.ResolveBuf(wbWriteEnFeed, exWritesDest)
	b.ResolveBuf(wbOutEnFeed, exIsOut)
	resolveBus(b, wbOutValFeed, bufVal)

	// ---- Writeback: output port register ----
	var outPort logic.Bus
	b.Scoped("OutPort", func() {
		outPort = synth.Register(b, wbOutVal, wbOutEn, "outp")
	})
	outBus := b.MarkOutputBus(outPort, "out")

	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: opts.InsertFanoutBranches})
	if err != nil {
		return nil, err
	}
	return &Core{
		Netlist: n,
		Instr:   instr,
		Out:     outBus,
		Regs:    rf.Regs,
		AccABus: accA,
		AccBBus: accB,
	}, nil
}

func deferBus(b *logic.Builder, width int) logic.Bus {
	bus := make(logic.Bus, width)
	for i := range bus {
		bus[i] = b.DeferredBuf()
	}
	return bus
}

func resolveBus(b *logic.Builder, feeds, d logic.Bus) {
	for i := range feeds {
		b.ResolveBuf(feeds[i], d[i])
	}
}
