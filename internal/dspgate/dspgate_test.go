package dspgate

import (
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/logic"
)

func buildCore(t *testing.T, branches bool) *Core {
	t.Helper()
	c, err := Build(Options{InsertFanoutBranches: branches})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// crossCheck steps both models with the same instruction stream and
// compares all architectural state every cycle.
func crossCheck(t *testing.T, words []uint32) {
	t.Helper()
	gc := buildCore(t, false)
	sim := logic.NewSimulator(gc.Netlist)
	beh := dsp.New()
	for cyc, w := range words {
		sim.SetInputBus(gc.Instr, uint64(w))
		sim.Step()
		// Step leaves combinational nets stale (pre-edge); the Out bus is
		// a buffer of the output-port DFF, so re-settle to read the
		// post-edge value the behavioral model exposes.
		sim.Settle()
		beh.Step(w)

		if got, want := uint8(sim.BusValue(gc.Out)), beh.Output(); got != want {
			t.Fatalf("cycle %d (word %05x): out gate=%#x beh=%#x", cyc, w, got, want)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if got, want := uint8(sim.BusValue(gc.Regs[r])), beh.Reg(r); got != want {
				t.Fatalf("cycle %d (word %05x): R%d gate=%#x beh=%#x", cyc, w, r, got, want)
			}
		}
		if got, want := uint32(sim.BusValue(gc.AccABus)), beh.AccValue(isa.AccA); got != want {
			t.Fatalf("cycle %d (word %05x): AccA gate=%#x beh=%#x", cyc, w, got, want)
		}
		if got, want := uint32(sim.BusValue(gc.AccBBus)), beh.AccValue(isa.AccB); got != want {
			t.Fatalf("cycle %d (word %05x): AccB gate=%#x beh=%#x", cyc, w, got, want)
		}
	}
}

func assemble(t *testing.T, src string) []uint32 {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint32, 0, len(prog)+4)
	for _, in := range prog {
		words = append(words, in.Encode())
	}
	for i := 0; i < 4; i++ {
		words = append(words, 0)
	}
	return words
}

func TestCrossCheckDirectedProgram(t *testing.T) {
	crossCheck(t, assemble(t, `
		LD 0x20,R0
		LD 0x30,R1
		MPYA R0,R1,R2
		NOP
		NOP
		OUT R2
		MACA+ R0,R1,R3
		NOP
		NOP
		OUT R3
		MACB- R0,R1,R4
		LD 0x03,R5
		NOP
		SHIFTA R5,R0,R6
		NOP
		NOP
		OUT R6
		MPYTB R0,R1,R7
		MPYSHIFTA R0,R1,R8
		LD 0x0E,R9
		NOP
		MPYSHIFTMACB R9,R1,R10
		MOV R2,R11
		NOP
		NOP
		OUT R11
		LD 0x7F,R0
		LD 0x80,R1
		NOP
		MPYA R0,R1,R12
		MACTA- R0,R1,R13
		NOP
		NOP
		OUT R13
	`))
}

func TestCrossCheckHazards(t *testing.T) {
	// Back-to-back writes and reads exercising the forwarding register
	// and the delay slot.
	crossCheck(t, assemble(t, `
		LD 0x11,R1
		LD 0x22,R1
		MOV R1,R2
		MOV R1,R3
		MOV R2,R2
		OUT R2
		OUT R3
		LD 0x44,R4
		MPYA R4,R4,R4
		MPYA R4,R4,R5
		MACA+ R4,R5,R4
		OUT R4
	`))
}

func TestCrossCheckRandomWords(t *testing.T) {
	// Random 17-bit words, including unassigned opcodes (pipeline
	// bubbles). Architectural state must match cycle for cycle.
	rng := rand.New(rand.NewSource(21))
	words := make([]uint32, 3000)
	for i := range words {
		words[i] = rng.Uint32() & (1<<isa.Width - 1)
	}
	crossCheck(t, words)
}

func TestCrossCheckRandomValidInstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var words []uint32
	for len(words) < 3000 {
		w := rng.Uint32() & (1<<isa.Width - 1)
		if _, err := isa.Decode(w); err == nil {
			words = append(words, w)
		}
	}
	crossCheck(t, words)
}

func TestBranchInsertionPreservesCore(t *testing.T) {
	plain := buildCore(t, false)
	branched := buildCore(t, true)
	sp := logic.NewSimulator(plain.Netlist)
	sb := logic.NewSimulator(branched.Netlist)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		w := uint64(rng.Uint32() & (1<<isa.Width - 1))
		sp.SetInputBus(plain.Instr, w)
		sb.SetInputBus(branched.Instr, w)
		sp.Step()
		sb.Step()
		if sp.BusValue(plain.Out) != sb.BusValue(branched.Out) {
			t.Fatalf("cycle %d: outputs diverge", i)
		}
	}
}

func TestRegionsPresent(t *testing.T) {
	c := buildCore(t, true)
	stats := c.Netlist.Stats()
	t.Logf("core: %d nets, %d gates, %d DFFs, %d levels", stats.Nets, stats.Gates, stats.DFFs, stats.Levels)
	for _, region := range ComponentRegions {
		nets := c.Netlist.RegionNets(region)
		if len(nets) == 0 {
			t.Errorf("region %s has no nets", region)
		}
	}
	if stats.DFFs < 200 {
		t.Errorf("expected ≥200 DFFs (regfile alone has 128), got %d", stats.DFFs)
	}
	if stats.Inputs != isa.Width || stats.Outputs != 8 {
		t.Errorf("ports: %d in, %d out", stats.Inputs, stats.Outputs)
	}
}
