// Package worker is the fleet side of distributed campaign execution:
// a pull-mode loop that leases work units from an sbstd coordinator,
// simulates each unit's fault slice against the shared gate-level core,
// heartbeats while it runs, and uploads checksummed detection bitmaps.
// cmd/sbst-worker wraps it in a binary; the distributed e2e tests run
// it in-process.
package worker

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/obs"
)

var (
	ctrUnitsDone   = obs.Default().Counter("worker.units_done")
	ctrUnitsFailed = obs.Default().Counter("worker.units_failed")
	ctrLeasesLost  = obs.Default().Counter("worker.leases_lost")

	// Labeled twins of the flat counters above, for /v1/metrics scrapes
	// (the -metrics-addr listener on sbst-worker).
	famUnits      = obs.Default().CounterFamily("sbst_worker_units_total", "Leased units by outcome.", "outcome")
	ctrUnitsDoneL = famUnits.Counter("done")
	ctrUnitsFailL = famUnits.Counter("failed")
	ctrLeaseLostL = famUnits.Counter("lease_lost")
	histHeartbeat = obs.Default().HistogramFamily("sbst_worker_heartbeat_seconds",
		"Round-trip time of lease heartbeats to the coordinator.", nil).Histogram()
)

// Options configure New.
type Options struct {
	// Coordinator is the sbstd base URL (e.g. http://localhost:8321).
	Coordinator string
	// ID names this worker in leases and logs (default host-pid).
	ID string
	// Poll is the idle sleep between acquire attempts when the
	// coordinator has no work (default 500ms).
	Poll time.Duration
	// Exec configures the unit simulations (shard count, event sink).
	Exec engine.ExecConfig
	// Client overrides the HTTP client (tests); built from Coordinator
	// when nil.
	Client *client.Client
	// Sink receives worker lifecycle events.
	Sink obs.Sink
	// SkipMetaCheck disables the startup capability handshake (tests).
	SkipMetaCheck bool
}

// Worker runs the lease loop against one coordinator.
type Worker struct {
	opts Options
	c    *client.Client
}

// New builds a worker.
func New(opts Options) *Worker {
	if opts.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = client.New(opts.Coordinator, client.Options{})
	}
	return &Worker{opts: opts, c: opts.Client}
}

// ID returns the worker's lease identity.
func (w *Worker) ID() string { return w.opts.ID }

// Run executes the lease loop until ctx is cancelled (the graceful
// exit: a unit in flight is failed back to the coordinator as
// retryable, so another worker picks it up). Only a startup handshake
// mismatch is a hard error.
func (w *Worker) Run(ctx context.Context) error {
	if !w.opts.SkipMetaCheck {
		if err := w.handshake(ctx); err != nil {
			return err
		}
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, err := w.c.AcquireLease(ctx, w.opts.ID)
		if err != nil {
			// The client already retried transport trouble; whatever is
			// left (coordinator restarting, drain) just means "no work".
			w.idle(ctx)
			continue
		}
		if lease == nil {
			w.idle(ctx)
			continue
		}
		w.runUnit(ctx, lease)
	}
}

// handshake verifies the coordinator speaks /v1 and hands out leases,
// failing fast on version or capability skew instead of polling a
// server that will never feed us.
func (w *Worker) handshake(ctx context.Context) error {
	m, err := w.c.Meta(ctx)
	if err != nil {
		return fmt.Errorf("worker %s: coordinator handshake: %w", w.opts.ID, err)
	}
	if m.APIVersion != api.Version {
		return fmt.Errorf("worker %s: coordinator speaks %s, this build speaks %s",
			w.opts.ID, m.APIVersion, api.Version)
	}
	for _, c := range m.Capabilities {
		if c == "leases" {
			return nil
		}
	}
	return fmt.Errorf("worker %s: coordinator %s has no lease capability (jobs-only server?)",
		w.opts.ID, w.opts.Coordinator)
}

func (w *Worker) idle(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(w.opts.Poll):
	}
}

// runUnit simulates one leased unit under a heartbeat, then uploads the
// result or reports the failure.
func (w *Worker) runUnit(ctx context.Context, lease *api.Lease) {
	// Every call made for this unit — heartbeats, result upload, failure
	// report — carries the campaign's trace ID as X-Trace-Id, and every
	// lifecycle event lands in the worker's NDJSON trace under the same
	// ID, so sbst-trace can stitch coordinator and fleet into one
	// timeline.
	ctx = client.WithTraceID(ctx, lease.Unit.Spec.TraceID)
	w.emit(lease, "unit_start", nil)
	uctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Latest unit progress, shared with the heartbeater.
	var mu sync.Mutex
	var last api.Progress
	progress := func(p api.Progress) {
		mu.Lock()
		last = p
		mu.Unlock()
	}

	// Heartbeat until the unit finishes. A lease_gone answer means the
	// coordinator gave the unit away (we were presumed dead) — cancel
	// the simulation instead of burning cores on a result nobody wants.
	hbInterval := time.Duration(lease.HeartbeatMillis) * time.Millisecond
	if hbInterval <= 0 {
		hbInterval = time.Duration(lease.TTLMillis/3) * time.Millisecond
	}
	if hbInterval <= 0 {
		hbInterval = 5 * time.Second
	}
	// beat sends one heartbeat; it reports false when the lease is gone
	// (the coordinator gave the unit away because we were presumed dead)
	// — cancel the simulation instead of burning cores on a result
	// nobody wants.
	beat := func() bool {
		mu.Lock()
		p := last
		mu.Unlock()
		sent := time.Now()
		_, err := w.c.HeartbeatLease(uctx, lease.ID, api.Heartbeat{WorkerID: w.opts.ID, Progress: p})
		histHeartbeat.Observe(time.Since(sent).Seconds())
		var ae *api.Error
		if api.AsError(err, &ae) && ae.Code == api.CodeLeaseGone {
			ctrLeasesLost.Add(1)
			ctrLeaseLostL.Add(1)
			w.emit(lease, "lease_lost", nil)
			cancel()
			return false
		}
		return true
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// First beat immediately: on a loaded machine the simulation can
		// outlive the TTL before the first ticker fire, and liveness must
		// be established from the moment the unit starts.
		if !beat() {
			return
		}
		tick := time.NewTicker(hbInterval)
		defer tick.Stop()
		for {
			select {
			case <-uctx.Done():
				return
			case <-tick.C:
				if !beat() {
					return
				}
			}
		}
	}()

	res, err := engine.RunWorkUnit(uctx, w.opts.ID, lease.Unit, w.opts.Exec, progress)
	cancel()
	wg.Wait()

	if err != nil {
		ctrUnitsFailed.Add(1)
		ctrUnitsFailL.Add(1)
		w.emit(lease, "unit_failed", map[string]any{"error": err.Error()})
		// Interrupted or transient failures are the fleet's problem to
		// absorb (another lease, another worker); terminal ones (core
		// mismatch, bad spec) charge the unit's budget hard either way —
		// the retryable flag is advisory context for the coordinator log.
		_ = w.c.FailLease(context.WithoutCancel(ctx), lease.ID, api.LeaseFailure{
			WorkerID:  w.opts.ID,
			Reason:    err.Error(),
			Retryable: !engine.IsTerminalUnitError(err),
		})
		return
	}
	// Upload with a context that survives worker shutdown: the unit is
	// finished, losing the result would only make the fleet redo it.
	if err := w.c.CompleteLease(context.WithoutCancel(ctx), lease.ID, res); err != nil {
		ctrUnitsFailed.Add(1)
		ctrUnitsFailL.Add(1)
		w.emit(lease, "upload_rejected", map[string]any{"error": err.Error()})
		return
	}
	ctrUnitsDone.Add(1)
	ctrUnitsDoneL.Add(1)
	w.emit(lease, "unit_done", map[string]any{"cycles": res.Cycles})
}

func (w *Worker) emit(lease *api.Lease, event string, extra map[string]any) {
	fields := map[string]any{
		"event":  event,
		"worker": w.opts.ID,
		"lease":  lease.ID,
		"job":    lease.Unit.JobID,
		"unit":   lease.Unit.Unit,
	}
	for k, v := range extra {
		fields[k] = v
	}
	obs.Emit(w.opts.Sink, obs.Event{
		Type: obs.EventPhase, Name: "worker/" + w.opts.ID,
		Trace: lease.Unit.Spec.TraceID, Fields: fields,
	})
}

// IsTerminal reports whether a Run error is a startup handshake
// failure (the only kind Run returns).
func IsTerminal(err error) bool { return err != nil && !errors.Is(err, context.Canceled) }
