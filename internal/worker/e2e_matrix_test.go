package worker

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/designs"
	"repro/internal/engine"
	"repro/internal/fault"
)

// TestMatrixCampaignE2E runs a campaign_matrix job over the full
// distributed stack: 3 designs (one bundled .bench netlist, two
// generated family members) × 2 BIST schemes on a two-worker fleet,
// with a third worker killed mid-lease so one unit travels the
// expire-and-requeue path. Every cell's merged detection map must be
// bit-identical to a serial single-process simulation of that
// (design, scheme) pair, and the rolled-up table served over /v1 must
// agree with the oracles.
func TestMatrixCampaignE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed matrix e2e in -short mode")
	}
	designIDs := []string{"bench/s27", "fam/w4r2s0l0p1", "fam/w6r4s1l1p2"}
	schemes := []api.VectorSource{
		{Kind: api.VecBIST, Count: 200, Seed: 3},
		{Kind: api.VecBIST, Count: 140, Seed: 11},
	}
	spec := api.JobSpec{
		Kind:   api.JobCampaignMatrix,
		Matrix: &api.MatrixSpec{Designs: designIDs, Schemes: schemes},
	}

	pool := engine.NewLeasePool(engine.PoolOptions{
		TTL:          time.Second,
		UnitAttempts: 3,
		RetryBase:    time.Millisecond,
		RetryMax:     5 * time.Millisecond,
	})
	defer pool.Close()

	// Each cell runs through the pool under its own derived job ID, so
	// OnMerged fires once per cell — capture them all.
	var mu sync.Mutex
	merged := map[string]*fault.Result{}
	exec := engine.NewDistExecutor(engine.ExecConfig{Workers: 2}, pool, engine.DistOptions{
		Units: 3,
		OnMerged: func(cellID string, res *fault.Result) {
			mu.Lock()
			merged[cellID] = res
			mu.Unlock()
		},
	})
	q := engine.NewQueue(engine.QueueOptions{
		Workers:    1,
		MaxPending: 8,
		Exec:       exec,
		DistState:  pool.SnapshotJob,
	})
	q.Start()
	srv := httptest.NewServer(engine.NewServerWith(q, engine.ServerOptions{Pool: pool}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fastClient := func() *client.Client {
		return client.New(srv.URL, client.Options{
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, MaxRetries: 4,
		})
	}
	c := fastClient()

	job, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// A doomed worker abandons the first lease of the first cell; the
	// lease must expire back into the pool for the honest pair.
	var doomed *api.Lease
	for doomed == nil {
		if ctx.Err() != nil {
			t.Fatal("no lease offered before timeout")
		}
		if doomed, err = c.AcquireLease(ctx, "doomed"); err != nil {
			t.Fatal(err)
		}
		if doomed == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := c.HeartbeatLease(ctx, doomed.ID, api.Heartbeat{WorkerID: "doomed"}); err != nil {
		t.Fatalf("doomed heartbeat: %v", err)
	}

	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		w := New(Options{
			Coordinator: srv.URL,
			ID:          id,
			Poll:        10 * time.Millisecond,
			Exec:        engine.ExecConfig{Workers: 1},
			Client:      fastClient(),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker %s: %v", w.ID(), err)
			}
		}()
	}

	res, err := c.WaitResult(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitResult: %v", err)
	}
	stopWorkers()
	wg.Wait()

	if len(res.Matrix) != len(designIDs)*len(schemes) {
		t.Fatalf("served %d matrix cells, want %d", len(res.Matrix), len(designIDs)*len(schemes))
	}

	// Serial oracles: each (design, scheme) pair in one process. All
	// three designs are vector-driven, so BIST resolves to the
	// registry's width-matched LFSR stream.
	var sumF, sumD, sumC int
	for _, cell := range res.Matrix {
		d, err := engine.GetDesign(cell.Design)
		if err != nil {
			t.Fatal(err)
		}
		scheme := schemes[cell.SchemeIndex]
		vecs := designs.PseudorandomVectors(len(d.Netlist.Inputs()), scheme.Count, uint64(scheme.Seed))
		want, err := fault.Simulate(d.Netlist, vecs, fault.SimOptions{Faults: d.Faults})
		if err != nil {
			t.Fatal(err)
		}

		cellID := fmt.Sprintf("%s/%s+s%d", job.ID, cell.Design, cell.SchemeIndex)
		mu.Lock()
		got := merged[cellID]
		mu.Unlock()
		if got == nil {
			keys := make([]string, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			t.Fatalf("no merged result for cell %s (have %v)", cellID, keys)
		}
		if len(got.DetectedAt) != len(want.DetectedAt) {
			t.Fatalf("cell %s merged %d faults, oracle %d", cellID, len(got.DetectedAt), len(want.DetectedAt))
		}
		diffs := 0
		for i := range want.DetectedAt {
			if got.DetectedAt[i] != want.DetectedAt[i] {
				diffs++
				if diffs <= 5 {
					t.Errorf("cell %s fault %d: distributed DetectedAt=%d, serial=%d",
						cellID, i, got.DetectedAt[i], want.DetectedAt[i])
				}
			}
		}
		if diffs > 0 {
			t.Fatalf("cell %s: %d/%d faults diverge from the serial oracle",
				cellID, diffs, len(want.DetectedAt))
		}

		if cell.Faults != len(want.DetectedAt) || cell.Detected != want.Detected() || cell.Cycles != want.Cycles {
			t.Fatalf("cell %s served %d/%d in %d cycles; oracle %d/%d in %d",
				cellID, cell.Detected, cell.Faults, cell.Cycles,
				want.Detected(), len(want.DetectedAt), want.Cycles)
		}
		sumF += cell.Faults
		sumD += cell.Detected
		sumC += cell.Cycles
	}
	if res.Faults != sumF || res.Detected != sumD || res.Cycles != sumC {
		t.Fatalf("headline %d/%d/%d != cell sums %d/%d/%d",
			res.Faults, res.Detected, res.Cycles, sumF, sumD, sumC)
	}

	// The abandoned lease must have expired, not silently merged.
	_, err = c.HeartbeatLease(ctx, doomed.ID, api.Heartbeat{WorkerID: "doomed"})
	var ae *api.Error
	if !api.AsError(err, &ae) || ae.Code != api.CodeLeaseGone {
		t.Fatalf("late heartbeat on abandoned lease = %v, want lease_gone", err)
	}

	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := q.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
