package worker

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/tracemerge"
)

// traceFile is one process's NDJSON trace in the fleet-telemetry e2e.
type traceFile struct {
	path string
	f    *os.File
	sink *obs.NDJSONSink
}

func newTraceFile(t *testing.T, dir, source string) *traceFile {
	t.Helper()
	path := filepath.Join(dir, source+".ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewNDJSONSink(f)
	obs.AnnounceTrace(sink, source)
	return &traceFile{path: path, f: f, sink: sink}
}

func (tf *traceFile) close(t *testing.T) {
	t.Helper()
	if err := tf.sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tf.f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSSEFollowAndTraceMergeE2E is the fleet-telemetry e2e: a
// distributed campaign on a coordinator with two workers — one killed
// mid-lease — followed live over the SSE event stream. The terminal SSE
// frame must be bit-identical to the polled /v1/result answer, and
// merging the three processes' NDJSON traces must produce one timeline
// whose spans come from all three under the job's single trace ID.
func TestSSEFollowAndTraceMergeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e in -short mode")
	}
	dir := t.TempDir()
	coordTrace := newTraceFile(t, dir, "sbstd")
	w1Trace := newTraceFile(t, dir, "w1")
	doomedTrace := newTraceFile(t, dir, "doomed")

	spec := api.JobSpec{
		Kind:       api.JobFaultSim,
		Vectors:    api.VectorSource{Kind: api.VecBIST, Count: 240, Seed: 7},
		SegmentLen: 64,
	}

	events := engine.NewJobEventBroker()
	pool := engine.NewLeasePool(engine.PoolOptions{
		TTL:          time.Second,
		UnitAttempts: 3,
		RetryBase:    time.Millisecond,
		RetryMax:     5 * time.Millisecond,
		Sink:         coordTrace.sink,
		Events:       events,
	})
	defer pool.Close()
	exec := engine.NewDistExecutor(engine.ExecConfig{Workers: 2, Sink: coordTrace.sink},
		pool, engine.DistOptions{Units: 4})
	q := engine.NewQueue(engine.QueueOptions{
		Workers:    1,
		MaxPending: 8,
		Exec:       exec,
		DistState:  pool.SnapshotJob,
		Sink:       coordTrace.sink,
		Events:     events,
	})
	q.Start()
	srv := httptest.NewServer(engine.NewServerWith(q, engine.ServerOptions{Pool: pool, Events: events}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fastClient := func() *client.Client {
		return client.New(srv.URL, client.Options{
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, MaxRetries: 4,
		})
	}
	c := fastClient()

	job, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.Spec.TraceID == "" {
		t.Fatal("submission minted no trace ID")
	}

	// Follow the job live over SSE while the fleet works.
	type followOut struct {
		res *api.JobResult
		err error
	}
	var followEvents []api.JobEvent
	var evMu sync.Mutex
	followCh := make(chan followOut, 1)
	go func() {
		res, err := c.Follow(client.WithTraceID(ctx, job.Spec.TraceID), job.ID, 0, func(ev api.JobEvent) {
			evMu.Lock()
			followEvents = append(followEvents, ev)
			evMu.Unlock()
		})
		followCh <- followOut{res, err}
	}()

	// The doomed worker: acquire the first lease, heartbeat once, start
	// simulating with its own traced sink, get killed mid-unit (context
	// cancelled at the first segment boundary), and never report back —
	// the lease must expire on TTL and the unit requeue.
	var doomed *api.Lease
	for doomed == nil {
		if ctx.Err() != nil {
			t.Fatal("no lease offered before timeout")
		}
		if doomed, err = c.AcquireLease(ctx, "doomed"); err != nil {
			t.Fatal(err)
		}
		if doomed == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := c.HeartbeatLease(ctx, doomed.ID, api.Heartbeat{WorkerID: "doomed"}); err != nil {
		t.Fatalf("doomed heartbeat: %v", err)
	}
	dctx, dcancel := context.WithCancel(ctx)
	_, derr := engine.RunWorkUnit(dctx, "doomed", doomed.Unit,
		engine.ExecConfig{Workers: 2, Sink: doomedTrace.sink},
		func(p api.Progress) { dcancel() })
	dcancel()
	if derr == nil {
		t.Fatal("doomed unit ran to completion despite cancellation")
	}

	// The one honest worker finishes the campaign, re-running the
	// doomed unit after its lease expires.
	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	var wg sync.WaitGroup
	w := New(Options{
		Coordinator: srv.URL,
		ID:          "w1",
		Poll:        10 * time.Millisecond,
		Exec:        engine.ExecConfig{Workers: 1, Sink: w1Trace.sink},
		Client:      fastClient(),
		Sink:        w1Trace.sink,
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(wctx); err != nil {
			t.Errorf("worker w1: %v", err)
		}
	}()

	var followed followOut
	select {
	case followed = <-followCh:
	case <-ctx.Done():
		t.Fatal("SSE follow did not finish before timeout")
	}
	stopWorker()
	wg.Wait()
	if followed.err != nil {
		t.Fatalf("Follow: %v", followed.err)
	}

	// The terminal SSE frame must match the polled result bit for bit.
	polled, err := c.Result(ctx, job.ID)
	if err != nil {
		t.Fatalf("polled result: %v", err)
	}
	fj, _ := json.Marshal(followed.res)
	pj, _ := json.Marshal(polled)
	if string(fj) != string(pj) {
		t.Fatalf("SSE result %s != polled result %s", fj, pj)
	}

	// The stream saw the whole lifecycle under one trace.
	evMu.Lock()
	evs := append([]api.JobEvent(nil), followEvents...)
	evMu.Unlock()
	sawState, sawLease, sawResult := false, false, false
	lastSeq := int64(0)
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("SSE sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.TraceID != job.Spec.TraceID {
			t.Fatalf("event %+v carries trace %q, want %q", ev, ev.TraceID, job.Spec.TraceID)
		}
		switch ev.Type {
		case api.JobEventState:
			sawState = true
		case api.JobEventLease:
			sawLease = true
		case api.JobEventResult:
			sawResult = true
		}
	}
	if !sawState || !sawLease || !sawResult {
		t.Fatalf("stream missing event types: state=%v lease=%v result=%v (%d events)",
			sawState, sawLease, sawResult, len(evs))
	}

	// A second Follow after the fact replays to the identical terminal
	// result (Last-Event-ID resume path over a finished job).
	res2, err := c.Follow(ctx, job.ID, 0, nil)
	if err != nil {
		t.Fatalf("replay Follow: %v", err)
	}
	rj, _ := json.Marshal(res2)
	if string(rj) != string(pj) {
		t.Fatalf("replayed SSE result %s != polled result %s", rj, pj)
	}

	// Merge the three NDJSON traces: one timeline, all three processes.
	coordTrace.close(t)
	w1Trace.close(t)
	doomedTrace.close(t)
	tl, err := tracemerge.MergeFiles(
		[]string{coordTrace.path, w1Trace.path, doomedTrace.path}, job.Spec.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Trace != job.Spec.TraceID {
		t.Fatalf("merged trace %q, want %q", tl.Trace, job.Spec.TraceID)
	}
	spansBySource := make(map[string]int)
	for _, s := range tl.Spans {
		spansBySource[s.Source]++
	}
	for _, src := range []string{"sbstd", "w1", "doomed"} {
		if spansBySource[src] == 0 {
			t.Fatalf("merged timeline has no spans from %s (got %v)", src, spansBySource)
		}
	}
	if len(tl.Sources) != 3 {
		t.Fatalf("merged sources %v, want all three processes", tl.Sources)
	}

	drainCtx, dcancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel2()
	if err := q.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
