package worker

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bist"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fault"
)

// TestDistributedCampaignE2E is the full distributed stack over real
// HTTP: a coordinator (queue + dist executor + lease pool + /v1
// server) and a small worker fleet, with one worker killed mid-lease.
// A doomed worker acquires the first lease, heartbeats once, and
// abandons it; the lease expires, the unit requeues, and three honest
// workers finish the campaign. The merged result must be bit-identical
// to a serial single-process simulation of the same spec.
func TestDistributedCampaignE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e in -short mode")
	}
	core, faults, err := engine.SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	const (
		vecCount = 240
		vecSeed  = 7
		units    = 5
	)
	spec := api.JobSpec{
		Kind:    api.JobFaultSim,
		Vectors: api.VectorSource{Kind: api.VecBIST, Count: vecCount, Seed: vecSeed},
	}

	// Coordinator: a TTL short enough that the abandoned lease expires
	// within the test, but long enough that honest workers on a loaded
	// single-core machine (unit sims are CPU-bound) keep their leases.
	pool := engine.NewLeasePool(engine.PoolOptions{
		TTL:          time.Second,
		UnitAttempts: 3,
		RetryBase:    time.Millisecond,
		RetryMax:     5 * time.Millisecond,
	})
	defer pool.Close()

	var mu sync.Mutex
	var merged *fault.Result
	exec := engine.NewDistExecutor(engine.ExecConfig{Workers: 2}, pool, engine.DistOptions{
		Units: units,
		OnMerged: func(jobID string, res *fault.Result) {
			mu.Lock()
			merged = res
			mu.Unlock()
		},
	})
	q := engine.NewQueue(engine.QueueOptions{
		Workers:    1,
		MaxPending: 8,
		Exec:       exec,
		DistState:  pool.SnapshotJob,
	})
	q.Start()
	srv := httptest.NewServer(engine.NewServerWith(q, engine.ServerOptions{Pool: pool}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fastClient := func() *client.Client {
		return client.New(srv.URL, client.Options{
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, MaxRetries: 4,
		})
	}
	c := fastClient()

	job, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker: grab the first lease the coordinator offers,
	// heartbeat once like a healthy worker would, then vanish without
	// completing or failing it — the crash-mid-unit schedule.
	var doomed *api.Lease
	for doomed == nil {
		if ctx.Err() != nil {
			t.Fatal("no lease offered before timeout")
		}
		if doomed, err = c.AcquireLease(ctx, "doomed"); err != nil {
			t.Fatal(err)
		}
		if doomed == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := c.HeartbeatLease(ctx, doomed.ID, api.Heartbeat{WorkerID: "doomed"}); err != nil {
		t.Fatalf("doomed heartbeat: %v", err)
	}

	// The honest fleet: three workers over the same HTTP surface.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2", "w3"} {
		w := New(Options{
			Coordinator: srv.URL,
			ID:          id,
			Poll:        10 * time.Millisecond,
			Exec:        engine.ExecConfig{Workers: 1},
			Client:      fastClient(),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker %s: %v", w.ID(), err)
			}
		}()
	}

	res, err := c.WaitResult(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitResult: %v", err)
	}
	stopWorkers()
	wg.Wait()

	// The abandoned lease must have expired and been given away, not
	// silently merged: a late call on it answers lease_gone.
	_, err = c.HeartbeatLease(ctx, doomed.ID, api.Heartbeat{WorkerID: "doomed"})
	var ae *api.Error
	if !api.AsError(err, &ae) || ae.Code != api.CodeLeaseGone {
		t.Fatalf("late heartbeat on abandoned lease = %v, want lease_gone", err)
	}

	// Serial oracle: the same spec in one process, no sharding games.
	vecs := bist.PseudorandomVectors(vecCount, vecSeed)
	want, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	got := merged
	mu.Unlock()
	if got == nil {
		t.Fatal("OnMerged never fired")
	}
	if len(got.DetectedAt) != len(want.DetectedAt) {
		t.Fatalf("merged %d faults, oracle %d", len(got.DetectedAt), len(want.DetectedAt))
	}
	diffs := 0
	for i := range want.DetectedAt {
		if got.DetectedAt[i] != want.DetectedAt[i] {
			diffs++
			if diffs <= 5 {
				t.Errorf("fault %d: distributed DetectedAt=%d, serial=%d",
					i, got.DetectedAt[i], want.DetectedAt[i])
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d/%d faults diverge from the serial oracle", diffs, len(want.DetectedAt))
	}

	// And the headline numbers served over /v1 agree with the oracle.
	detected := 0
	for _, d := range want.DetectedAt {
		if d >= 0 {
			detected++
		}
	}
	if res.Faults != len(want.DetectedAt) || res.Detected != detected || res.Cycles != want.Cycles {
		t.Fatalf("served result %+v; oracle faults=%d detected=%d cycles=%d",
			res, len(want.DetectedAt), detected, want.Cycles)
	}

	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := q.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestWorkerHandshakeRejectsJobsOnlyServer: a worker pointed at a
// coordinator without a lease pool fails fast instead of polling
// forever.
func TestWorkerHandshakeRejectsJobsOnlyServer(t *testing.T) {
	q := engine.NewQueue(engine.QueueOptions{Workers: 1, MaxPending: 1,
		Exec: engine.NewExecutor(engine.ExecConfig{Workers: 1})})
	q.Start()
	srv := httptest.NewServer(engine.NewServerWith(q, engine.ServerOptions{}))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Drain(ctx)
	}()

	w := New(Options{Coordinator: srv.URL, ID: "w-nolease",
		Client: client.New(srv.URL, client.Options{RetryBase: time.Millisecond, MaxRetries: 1})})
	err := w.Run(context.Background())
	if err == nil {
		t.Fatal("Run against a jobs-only server returned nil")
	}
}
