package worker

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/engine"
)

// gaE2ESpec is the shared ga_search fixture for the fleet tests.
func gaE2ESpec() api.JobSpec {
	return api.JobSpec{
		Kind: api.JobGaSearch,
		Ga: &api.GaSpec{
			Population: 4, Generations: 3, Seed: 11,
			Slots: 6, Iterations: 20,
		},
	}
}

// sameGa pins bit-identity between two GA results: best genome, best
// fitness, and every generation of the fitness trajectory.
func sameGa(t *testing.T, label string, a, b *api.JobResult) {
	t.Helper()
	if a.Ga == nil || b.Ga == nil {
		t.Fatalf("%s: missing GaResult", label)
	}
	if a.Ga.BestGenome != b.Ga.BestGenome {
		t.Fatalf("%s: best genome diverged:\n%s\n%s", label, a.Ga.BestGenome, b.Ga.BestGenome)
	}
	if a.Ga.BestFitness != b.Ga.BestFitness || a.Coverage != b.Coverage || a.Cycles != b.Cycles {
		t.Fatalf("%s: fitness/coverage/cycles diverged: %v/%v/%d vs %v/%v/%d",
			label, a.Ga.BestFitness, a.Coverage, a.Cycles, b.Ga.BestFitness, b.Coverage, b.Cycles)
	}
	if len(a.Ga.Generations) != len(b.Ga.Generations) {
		t.Fatalf("%s: %d vs %d generations", label, len(a.Ga.Generations), len(b.Ga.Generations))
	}
	for i := range a.Ga.Generations {
		ga, gb := a.Ga.Generations[i], b.Ga.Generations[i]
		if ga.BestFitness != gb.BestFitness || ga.MeanFitness != gb.MeanFitness ||
			ga.BestCoverage != gb.BestCoverage || ga.BestCycles != gb.BestCycles {
			t.Fatalf("%s: generation %d diverged: %+v vs %+v", label, i, ga, gb)
		}
	}
}

// runGaFleet runs gaE2ESpec on an in-process coordinator whose
// generations fan out to a fleet of n workers over real HTTP.
func runGaFleet(t *testing.T, n int) *api.JobResult {
	t.Helper()
	pool := engine.NewLeasePool(engine.PoolOptions{
		TTL:          5 * time.Second,
		UnitAttempts: 3,
		RetryBase:    time.Millisecond,
		RetryMax:     5 * time.Millisecond,
	})
	defer pool.Close()
	q := engine.NewQueue(engine.QueueOptions{
		Workers:   1,
		Exec:      engine.NewDistExecutor(engine.ExecConfig{Workers: 1}, pool, engine.DistOptions{Units: 2}),
		DistState: pool.SnapshotJob,
	})
	q.Start()
	srv := httptest.NewServer(engine.NewServerWith(q, engine.ServerOptions{Pool: pool}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	fastClient := func() *client.Client {
		return client.New(srv.URL, client.Options{
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, MaxRetries: 4,
		})
	}
	c := fastClient()
	spec := gaE2ESpec()
	job, err := c.SubmitGA(ctx, spec.Design, *spec.Ga)
	if err != nil {
		t.Fatal(err)
	}

	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := New(Options{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("w%d", i+1),
			Poll:        5 * time.Millisecond,
			Exec:        engine.ExecConfig{Workers: 1},
			Client:      fastClient(),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker %s: %v", w.ID(), err)
			}
		}()
	}

	res, err := c.WaitResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitResult (%d workers): %v", n, err)
	}
	stopWorkers()
	wg.Wait()
	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := q.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return res
}

// TestGaFleetDeterminism: the same seeded GaSpec evolves a byte-
// identical best genome and fitness trajectory whether individuals are
// evaluated in-process, by a single worker, or raced across a
// four-worker fleet. Evaluation timing and unit interleaving must never
// leak into the search's random draws.
func TestGaFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed GA e2e in -short mode")
	}
	local, err := engine.NewExecutor(engine.ExecConfig{Workers: 2})(
		context.Background(), gaE2ESpec(), func(engine.Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	solo := runGaFleet(t, 1)
	fleet := runGaFleet(t, 4)
	sameGa(t, "local vs 1 worker", local, solo)
	sameGa(t, "1 worker vs 4 workers", solo, fleet)
	if solo.Ga.BestGenome == "" || solo.Coverage <= 0 {
		t.Fatalf("implausible GA result %+v", solo.Ga)
	}
}

// gaGenerationsMetric scrapes sbst_ga_generations_total from the
// coordinator's Prometheus endpoint.
var gaGenRe = regexp.MustCompile(`(?m)^sbst_ga_generations_total\s+(\d+)`)

func gaGenerationsMetric(baseURL string) int {
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := gaGenRe.FindSubmatch(body)
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(string(m[1]))
	return n
}

// TestGaCrashRecoveryE2E is the kill -9 half of the GA determinism
// pin: a real sbstd coordinator (journal + checkpoint) is SIGKILLed
// after at least one generation is durably journaled but before the
// search finishes, then restarted on the same state directory. The
// resumed search must replay the journaled generations instead of
// re-evaluating them and finish byte-identical to an uninterrupted
// in-process run of the same spec.
func TestGaCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("crash recovery e2e in -short mode")
	}
	spec := api.JobSpec{
		Kind:     api.JobGaSearch,
		SubmitID: "crash-e2e/ga-1",
		Ga: &api.GaSpec{
			Population: 4, Generations: 6, Seed: 11,
			Slots: 6, Iterations: 20,
		},
	}
	ref, err := engine.NewExecutor(engine.ExecConfig{Workers: 2})(
		context.Background(), spec, func(engine.Progress) {})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	dir := t.TempDir()
	bin := buildSbstd(t, dir)
	port := freePort(t)
	baseURL := fmt.Sprintf("http://127.0.0.1:%d", port)
	logPath := filepath.Join(dir, "sbstd.log")

	startCoordinator := func() *exec.Cmd {
		t.Helper()
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-distributed",
			"-units", "2",
			"-lease-ttl", "2s",
			"-queue-workers", "1",
			"-journal", filepath.Join(dir, "journal.wal"),
			"-checkpoint", filepath.Join(dir, "ckpt.json"),
		)
		cmd.Stdout, cmd.Stderr = logf, logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		logf.Close() // the child holds its own descriptor
		return cmd
	}
	fastClient := func() *client.Client {
		return client.New(baseURL, client.Options{
			RetryBase: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond, MaxRetries: 4,
		})
	}
	waitHealthy := func(c *client.Client) {
		t.Helper()
		for {
			if _, err := c.Health(ctx); err == nil {
				return
			}
			if ctx.Err() != nil {
				log, _ := os.ReadFile(logPath)
				t.Fatalf("coordinator never became healthy; log:\n%s", log)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	coord := startCoordinator()
	c := fastClient()
	waitHealthy(c)

	job, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		w := New(Options{
			Coordinator: baseURL,
			ID:          id,
			Poll:        10 * time.Millisecond,
			Exec:        engine.ExecConfig{Workers: 1},
			Client:      fastClient(),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx) // transport errors during the outage are expected
		}()
	}

	// Kill once at least one generation has been journaled (the
	// generations counter increments only after the journal append) but
	// while the search is still running.
	for {
		if gaGenerationsMetric(baseURL) >= 1 {
			break
		}
		if j, jerr := c.Job(ctx, job.ID); jerr == nil &&
			(j.State == api.JobCompleted || j.State == api.JobFailed) {
			t.Fatalf("search reached %s before the kill; grow the spec", j.State)
		}
		if ctx.Err() != nil {
			t.Fatal("no generation journaled before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := coord.Process.Kill(); err != nil { // SIGKILL: no drain, no final checkpoint
		t.Fatal(err)
	}
	_ = coord.Wait()

	coord2 := startCoordinator()
	defer func() {
		_ = coord2.Process.Kill()
		_ = coord2.Wait()
	}()
	waitHealthy(c)

	res, err := c.WaitResult(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		log, _ := os.ReadFile(logPath)
		t.Fatalf("WaitResult after restart: %v\ncoordinator log:\n%s", err, log)
	}
	stopWorkers()
	wg.Wait()

	sameGa(t, "crash-resumed vs uninterrupted", ref, res)
	if res.Ga.ResumedFrom < 1 {
		t.Fatalf("ResumedFrom = %d, want >= 1 (the journaled prefix was replayed)", res.Ga.ResumedFrom)
	}
	// The restarted process only evaluated the tail generations.
	if left := gaGenerationsMetric(baseURL); left >= 6 {
		t.Fatalf("restarted coordinator counted %d generations, want < 6", left)
	}
}
