package worker

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bist"
	"repro/internal/client"
	"repro/internal/designs"
	"repro/internal/engine"
	"repro/internal/fault"
)

// buildSbstd compiles the coordinator binary into dir.
func buildSbstd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "sbstd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/sbstd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build sbstd: %v\n%s", err, out)
	}
	return bin
}

// freePort grabs an ephemeral TCP port and releases it for the
// coordinator to bind.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestCoordinatorCrashRecoveryE2E is the kill -9 acceptance run: a real
// sbstd process (distributed mode, journal + checkpoint) takes a
// campaign_matrix job, gets SIGKILLed while a matrix cell is mid-lease,
// and is restarted on the same state directory. The restarted
// coordinator must (a) serve the same job for a retried submit_id, (b)
// keep the worker fleet and an SSE follower attached across the
// restart, and (c) finish the campaign with every cell bit-identical
// to a serial single-process oracle — exactly what an uninterrupted
// run would have served.
func TestCoordinatorCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("crash recovery e2e in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	dir := t.TempDir()
	bin := buildSbstd(t, dir)
	port := freePort(t)
	baseURL := fmt.Sprintf("http://127.0.0.1:%d", port)
	logPath := filepath.Join(dir, "sbstd.log")

	startCoordinator := func() *exec.Cmd {
		t.Helper()
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-distributed",
			"-units", "4",
			"-lease-ttl", "2s",
			"-queue-workers", "1",
			"-journal", filepath.Join(dir, "journal.wal"),
			"-checkpoint", filepath.Join(dir, "ckpt.json"),
		)
		cmd.Stdout, cmd.Stderr = logf, logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		logf.Close() // the child holds its own descriptor
		return cmd
	}
	waitHealthy := func(c *client.Client) {
		t.Helper()
		for {
			if _, err := c.Health(ctx); err == nil {
				return
			}
			if ctx.Err() != nil {
				log, _ := os.ReadFile(logPath)
				t.Fatalf("coordinator never became healthy; log:\n%s", log)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	fastClient := func() *client.Client {
		return client.New(baseURL, client.Options{
			RetryBase: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond, MaxRetries: 4,
		})
	}

	coord := startCoordinator()
	c := fastClient()
	waitHealthy(c)

	// Two cells: the instruction-driven DSP core (the slow one — it is
	// still mid-flight at the kill) and a bundled .bench netlist.
	designIDs := []string{"dsp", "bench/s27"}
	schemes := []api.VectorSource{{Kind: api.VecBIST, Count: 240, Seed: 7}}
	spec := api.JobSpec{
		Kind:     api.JobCampaignMatrix,
		SubmitID: "crash-e2e/matrix-1",
		Matrix:   &api.MatrixSpec{Designs: designIDs, Schemes: schemes},
	}
	job, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// A client retrying its acked submit gets the same job back.
	if dup, err := c.SubmitJob(ctx, spec); err != nil || dup.ID != job.ID {
		t.Fatalf("duplicate submit: %v, %v; want the original job %s", dup, err, job.ID)
	}

	// The follower rides the SSE stream through the crash: a patient
	// retry budget bridges the coordinator's downtime, and Last-Event-ID
	// resume picks the stream back up on the restarted process.
	followC := client.New(baseURL, client.Options{
		RetryBase: 50 * time.Millisecond, RetryMax: 300 * time.Millisecond, MaxRetries: 200,
	})
	type followOut struct {
		res *api.JobResult
		err error
	}
	followCh := make(chan followOut, 1)
	go func() {
		res, err := followC.Follow(ctx, job.ID, 0, nil)
		followCh <- followOut{res, err}
	}()

	// The worker fleet outlives the coordinator: lease-acquire errors
	// idle-and-retry, so the same two processes serve both lives.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		w := New(Options{
			Coordinator: baseURL,
			ID:          id,
			Poll:        10 * time.Millisecond,
			Exec:        engine.ExecConfig{Workers: 1},
			Client:      fastClient(),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx) // transport errors during the outage are expected
		}()
	}

	// Kill -9 once the campaign is demonstrably mid-lease: a worker
	// currently holds a work unit (healthz lease occupancy; matrix cells
	// lease under derived cell IDs, so the job's own Dist is not the
	// signal here).
	for {
		h, err := c.Health(ctx)
		if err == nil && h.Leases != nil && h.Leases.Leased > 0 {
			break
		}
		if j, jerr := c.Job(ctx, job.ID); jerr == nil &&
			(j.State == api.JobCompleted || j.State == api.JobFailed) {
			t.Fatalf("campaign reached %s before the kill; grow the spec", j.State)
		}
		if ctx.Err() != nil {
			t.Fatal("campaign never went mid-lease before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := coord.Process.Kill(); err != nil { // SIGKILL: no drain, no final checkpoint
		t.Fatal(err)
	}
	_ = coord.Wait()

	// Second life: same binary, same flags, same state directory.
	coord2 := startCoordinator()
	defer func() {
		_ = coord2.Process.Kill()
		_ = coord2.Wait()
	}()
	waitHealthy(c)

	// The journal-replayed queue still knows the job; the retried submit
	// is served idempotently instead of double-running the campaign.
	again, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID {
		t.Fatalf("post-restart duplicate submit created %s, want %s", again.ID, job.ID)
	}

	res, err := c.WaitResult(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		log, _ := os.ReadFile(logPath)
		t.Fatalf("WaitResult after restart: %v\ncoordinator log:\n%s", err, log)
	}

	// Serial oracle per cell: the recovered, re-run campaign must serve
	// numbers bit-identical to a single uninterrupted process.
	if len(res.Matrix) != len(designIDs)*len(schemes) {
		t.Fatalf("served %d matrix cells, want %d", len(res.Matrix), len(designIDs)*len(schemes))
	}
	var sumF, sumD, sumC int
	for _, cell := range res.Matrix {
		d, err := engine.GetDesign(cell.Design)
		if err != nil {
			t.Fatal(err)
		}
		scheme := schemes[cell.SchemeIndex]
		var vecs fault.Vectors
		if d.InstructionDriven() {
			vecs = bist.PseudorandomVectors(scheme.Count, uint64(scheme.Seed))
		} else {
			vecs = designs.PseudorandomVectors(len(d.Netlist.Inputs()), scheme.Count, uint64(scheme.Seed))
		}
		want, err := fault.Simulate(d.Netlist, vecs, fault.SimOptions{Faults: d.Faults})
		if err != nil {
			t.Fatal(err)
		}
		if cell.Faults != len(want.DetectedAt) || cell.Detected != want.Detected() || cell.Cycles != want.Cycles {
			t.Fatalf("cell %s/s%d served %d/%d in %d cycles; oracle %d/%d in %d",
				cell.Design, cell.SchemeIndex, cell.Detected, cell.Faults, cell.Cycles,
				want.Detected(), len(want.DetectedAt), want.Cycles)
		}
		sumF += cell.Faults
		sumD += cell.Detected
		sumC += cell.Cycles
	}
	if res.Faults != sumF || res.Detected != sumD || res.Cycles != sumC {
		t.Fatalf("headline %d/%d/%d != cell sums %d/%d/%d",
			res.Faults, res.Detected, res.Cycles, sumF, sumD, sumC)
	}

	// The SSE follower crossed the restart and saw the same terminal
	// result the polled route served.
	select {
	case out := <-followCh:
		if out.err != nil {
			t.Fatalf("follower: %v", out.err)
		}
		if out.res.Faults != res.Faults || out.res.Detected != res.Detected || out.res.Cycles != res.Cycles {
			t.Fatalf("follower result %+v != polled result %+v", out.res, res)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE follower never reached the result frame")
	}

	stopWorkers()
	wg.Wait()
}
