package metrics

import (
	"math/rand"

	"repro/internal/dsp"
)

// MeasureSequence computes one metrics-table row for the target
// instruction of a sequence: controllability from CTrials monitored
// runs and observability from OGoodRuns × 2×n error injections per
// component. The returned cells align with StandardColumns().
func (e *Engine) MeasureSequence(seq Sequence) []Cell {
	cols := StandardColumns()
	cells := make([]Cell, len(cols))
	colIdx := func(comp dsp.Component, mode int) int {
		for i, c := range cols {
			if c.Comp == comp && c.Mode == mode {
				return i
			}
		}
		return -1
	}

	// ---- Controllability pass ----
	hists := make([][]*Histogram, len(cols))
	core := dsp.New()
	rec := &recorder{}
	core.SetProbe(rec)
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	for trial := 0; trial < e.cfg.CTrials; trial++ {
		e.runTrial(core, rec, seq, rng, noAcc, 0)
		for _, comp := range dsp.Components() {
			mode, seen := observedMode(rec, comp)
			if !seen {
				continue
			}
			ci := colIdx(comp, mode)
			if ci < 0 {
				continue
			}
			ports := compPorts[comp]
			if hists[ci] == nil {
				hists[ci] = make([]*Histogram, len(ports))
				for pi, p := range ports {
					hists[ci][pi] = NewHistogram(p.width())
				}
			}
			for pi, p := range ports {
				v, ok := portValue(rec, p)
				if !ok {
					continue
				}
				hists[ci][pi].Add(v)
			}
		}
	}
	for ci := range cols {
		if hists[ci] == nil {
			continue
		}
		cells[ci].Active = true
		cells[ci].C = Controllability(hists[ci]...)
		cells[ci].CSamples = hists[ci][0].Total()
	}

	// ---- Observability pass ----
	errRng := rand.New(rand.NewSource(e.cfg.Seed ^ 0x5bd1e995))
	for g := 0; g < e.cfg.OGoodRuns; g++ {
		seed := e.cfg.Seed + int64(g)*7919 + 1
		goodRng := rand.New(rand.NewSource(seed))
		goodTrace := e.runTrial(core, rec, seq, goodRng, noAcc, 0)
		good := *rec // snapshot of observed values and modes

		for _, comp := range dsp.Components() {
			mode, seen := observedMode(&good, comp)
			if !seen {
				continue
			}
			ci := colIdx(comp, mode)
			if ci < 0 {
				continue
			}
			width := comp.Width()
			correct := good.compVal[comp]
			isAcc := comp == dsp.CompAccA || comp == dsp.CompAccB
			if comp == dsp.CompAccA {
				correct = good.accAAfter
			}
			if comp == dsp.CompAccB {
				correct = good.accBAfter
			}
			if comp == dsp.CompOutPort {
				correct = good.outVal
			}
			mask := uint32(1)<<uint(width) - 1
			for k := 0; k < 2*width; k++ {
				errVal := errRng.Uint32() & mask
				for errVal == correct {
					errVal = errRng.Uint32() & mask
				}
				replayRng := rand.New(rand.NewSource(seed))
				var badTrace []uint8
				if isAcc {
					badTrace = e.runTrial(core, rec, seq, replayRng, comp, errVal)
				} else {
					rec.inject = true
					rec.injectComp = comp
					rec.injectVal = errVal
					badTrace = e.runTrial(core, rec, seq, replayRng, noAcc, 0)
					rec.inject = false
				}
				cells[ci].Injections++
				if !equalTrace(goodTrace, badTrace) {
					cells[ci].Detections++
				}
			}
		}
	}
	for ci := range cells {
		if cells[ci].Injections > 0 {
			cells[ci].O = float64(cells[ci].Detections) / float64(cells[ci].Injections)
		}
	}
	return cells
}

// observedMode returns the component's active mode in the last recorded
// trial and whether the component was exercised at all.
func observedMode(rec *recorder, comp dsp.Component) (int, bool) {
	if comp == dsp.CompOutPort {
		return 0, rec.outSeen
	}
	if !rec.compSeen[comp] {
		return 0, false
	}
	return rec.compMode[comp], true
}

func portValue(rec *recorder, p portSrc) (uint32, bool) {
	if p.isComp {
		if !rec.compSeen[p.comp] {
			return 0, false
		}
		return rec.compVal[p.comp], true
	}
	if !rec.sigSeen[p.sig] {
		return 0, false
	}
	return rec.sigVal[p.sig], true
}

func equalTrace(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BuildTable measures the full standard metrics table (the paper's
// Table 2): every instruction variant × every component mode.
func (e *Engine) BuildTable() *Table {
	rows := StandardRows()
	t := &Table{
		Rows:       rows,
		Cols:       StandardColumns(),
		Cells:      make([][]Cell, len(rows)),
		CThreshold: e.cfg.CThreshold,
		OThreshold: e.cfg.OThreshold,
	}
	for r, row := range rows {
		t.Cells[r] = e.MeasureSequence(StandardSequence(row.Op, row.Acc, row.State))
	}
	return t
}

// MeasureRow measures a single standard row (convenience for tests and
// incremental exploration).
func (e *Engine) MeasureRow(row Row) []Cell {
	return e.MeasureSequence(StandardSequence(row.Op, row.Acc, row.State))
}
