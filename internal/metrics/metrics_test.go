package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/isa"
)

func TestHistogramEntropy(t *testing.T) {
	// Constant signal: zero entropy.
	h := NewHistogram(8)
	for i := 0; i < 1000; i++ {
		h.Add(42)
	}
	if got := h.Entropy(); got != 0 {
		t.Fatalf("constant entropy = %v", got)
	}
	// Uniform 4-bit, exhaustively sampled: exactly 4 bits (Miller-Madow
	// correction stays under the clamp).
	h2 := NewHistogram(4)
	for i := 0; i < 16*1000; i++ {
		h2.Add(uint32(i % 16))
	}
	if got := h2.Entropy(); math.Abs(got-4) > 0.01 {
		t.Fatalf("uniform 4-bit entropy = %v", got)
	}
	// Two equally likely values: 1 bit.
	h3 := NewHistogram(8)
	for i := 0; i < 1000; i++ {
		h3.Add(uint32(i % 2))
	}
	if got := h3.Entropy(); math.Abs(got-1) > 0.01 {
		t.Fatalf("binary entropy = %v", got)
	}
}

func TestHistogramWideUniform(t *testing.T) {
	// 18-bit uniform with 300k samples: Miller-Madow should land close
	// to 18 bits (plug-in alone would be ~0.5 bit short).
	h := NewHistogram(18)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300000; i++ {
		h.Add(rng.Uint32())
	}
	if got := h.Entropy(); got < 17.5 {
		t.Fatalf("wide uniform entropy = %v, want ≥17.5", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(6)
	h.Add(1)
	h.Add(2)
	h.Reset()
	if h.Total() != 0 || h.Entropy() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHistogramSparse(t *testing.T) {
	h := NewHistogram(24)
	if h.counts != nil {
		t.Fatal("24-bit histogram should be sparse")
	}
	for i := 0; i < 4096; i++ {
		h.Add(uint32(i))
	}
	// Every sample distinct: plug-in gives exactly 12 bits; Miller-Madow
	// adds its (K−1)/(2N·ln2) ≈ 0.72-bit correction on top.
	if got := h.Entropy(); got < 12 || got > 12.8 {
		t.Fatalf("sparse uniform-4096 entropy = %v", got)
	}
}

func TestControllabilityMultiPort(t *testing.T) {
	// One uniform 4-bit port + one constant 4-bit port → C = 0.5.
	a := NewHistogram(4)
	b := NewHistogram(4)
	for i := 0; i < 16*500; i++ {
		a.Add(uint32(i % 16))
		b.Add(7)
	}
	if got := Controllability(a, b); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("C = %v, want 0.5", got)
	}
}

func TestQuickEntropyBounds(t *testing.T) {
	// Entropy is always within [0, width], for any sample multiset.
	f := func(samples []uint16, widthRaw uint8) bool {
		width := int(widthRaw%16) + 1
		h := NewHistogram(width)
		for _, s := range samples {
			h.Add(uint32(s))
		}
		got := h.Entropy()
		return got >= 0 && got <= float64(width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fastEngine returns an engine sized for unit tests. 3000 trials pin
// 8-bit-port controllability well but underestimate 18-bit-port entropy
// (plug-in H is capped near log2(N)); assertions on wide signals use
// wideEngine instead.
func fastEngine() *Engine {
	return NewEngine(Config{CTrials: 3000, OGoodRuns: 12, Seed: 11})
}

// wideEngine trades observability precision for enough controllability
// trials to resolve 18-bit-port entropy.
func wideEngine() *Engine {
	return NewEngine(Config{CTrials: 150000, OGoodRuns: 2, Seed: 11})
}

func cellFor(t *testing.T, cells []Cell, comp dsp.Component, mode int) Cell {
	t.Helper()
	for i, col := range StandardColumns() {
		if col.Comp == comp && col.Mode == mode {
			return cells[i]
		}
	}
	t.Fatalf("no column %v mode %d", comp, mode)
	return Cell{}
}

func TestLoadRowMetrics(t *testing.T) {
	e := fastEngine()
	// Paper Table 2, "load" row (accumulators zero):
	//   Multiplier C≈0.99 O=0   Shifter00 C≈0.18 O=0   AddSub0 C≈0.35 O=0
	cells := e.MeasureRow(Row{Op: isa.OpLdi, Acc: isa.AccA, State: AccZero})

	mult := cellFor(t, cells, dsp.CompMultiplier, 0)
	if !mult.Active || mult.C < 0.95 {
		t.Errorf("load/Multiplier C = %.3f, want ≈0.99", mult.C)
	}
	if mult.O != 0 {
		t.Errorf("load/Multiplier O = %.3f, want 0 (load result bypasses the MAC)", mult.O)
	}
	sh := cellFor(t, cells, dsp.CompShifter, 0)
	if math.Abs(sh.C-0.18) > 0.02 {
		t.Errorf("load/Shifter00 C = %.3f, want ≈0.18 (4 random amount bits / 22)", sh.C)
	}
	as := cellFor(t, cells, dsp.CompAddSub, 0)
	if math.Abs(as.C-0.36) > 0.05 {
		t.Errorf("load/AddSub C = %.3f, want ≈0.35", as.C)
	}
	if out := cellFor(t, cells, dsp.CompOutPort, 0); !out.Active || out.O < 0.99 {
		t.Errorf("load/OutPort O = %.3f, want 1.0", out.O)
	}
}

func TestLoadRowRandomAcc(t *testing.T) {
	e := wideEngine()
	// Paper Table 2 "load" R row: Shifter00 C≈0.99, AddSub C≈0.85.
	cells := e.MeasureRow(Row{Op: isa.OpLdi, Acc: isa.AccA, State: AccRandom})
	sh := cellFor(t, cells, dsp.CompShifter, 0)
	if sh.C < 0.90 {
		t.Errorf("loadR/Shifter00 C = %.3f, want ≈0.99", sh.C)
	}
	as := cellFor(t, cells, dsp.CompAddSub, 0)
	if math.Abs(as.C-0.85) > 0.07 {
		t.Errorf("loadR/AddSub C = %.3f, want ≈0.85", as.C)
	}
}

func TestMpyRowMetrics(t *testing.T) {
	e := fastEngine()
	cells := e.MeasureRow(Row{Op: isa.OpMpy, Acc: isa.AccA, State: AccZero})
	mult := cellFor(t, cells, dsp.CompMultiplier, 0)
	if mult.C < 0.95 {
		t.Errorf("mpy/Multiplier C = %.3f", mult.C)
	}
	// Errors in the product reach the destination register and the OUT
	// wrapper: observability must clear the 0.5 threshold comfortably.
	if mult.O < 0.5 {
		t.Errorf("mpy/Multiplier O = %.3f, want ≥0.5", mult.O)
	}
	// Accumulator contents are unobservable without a follow-on MAC op
	// (the paper's AccA column is 0.00 everywhere in Table 2).
	accA := cellFor(t, cells, dsp.CompAccA, 0)
	if accA.O != 0 {
		t.Errorf("mpy/AccA O = %.3f, want 0 (needs a Phase-2 sequence)", accA.O)
	}
}

func TestShiftRowUsesVariableMode(t *testing.T) {
	e := NewEngine(Config{CTrials: 150000, OGoodRuns: 12, Seed: 11})
	cells := e.MeasureRow(Row{Op: isa.OpShift, Acc: isa.AccA, State: AccRandom})
	varCell := cellFor(t, cells, dsp.CompShifter, 1)
	if !varCell.Active {
		t.Fatal("shift row did not exercise variable mode")
	}
	if varCell.C < 0.90 {
		t.Errorf("shiftR/Shifter01 C = %.3f, want ≈0.99", varCell.C)
	}
	if varCell.O < 0.5 {
		t.Errorf("shiftR/Shifter01 O = %.3f, want ≥0.5", varCell.O)
	}
	// Pass-mode column must be inactive for this row.
	if cellFor(t, cells, dsp.CompShifter, 0).Active {
		t.Error("shift row wrongly exercised pass mode")
	}
	// Mode 11 is unreachable by the entire ISA (paper Phase-2b discards
	// that column).
	if cellFor(t, cells, dsp.CompShifter, 3).Active {
		t.Error("mode 11 should never be active")
	}
}

func TestMacRandomVsZeroAcc(t *testing.T) {
	e := fastEngine()
	zero := e.MeasureRow(Row{Op: isa.OpMacP, Acc: isa.AccA, State: AccZero})
	rnd := e.MeasureRow(Row{Op: isa.OpMacP, Acc: isa.AccA, State: AccRandom})
	cz := cellFor(t, zero, dsp.CompShifter, 0).C
	cr := cellFor(t, rnd, dsp.CompShifter, 0).C
	if cr <= cz+0.3 {
		t.Errorf("random acc should raise shifter C: zero=%.3f random=%.3f", cz, cr)
	}
	// AddSub in add mode for MAC+.
	if !cellFor(t, rnd, dsp.CompAddSub, 0).Active {
		t.Error("MAC+ should use add mode")
	}
	if cellFor(t, rnd, dsp.CompAddSub, 1).Active {
		t.Error("MAC+ must not use subtract mode")
	}
}

func TestMacMinusUsesSubMode(t *testing.T) {
	e := fastEngine()
	cells := e.MeasureRow(Row{Op: isa.OpMacM, Acc: isa.AccA, State: AccRandom})
	if !cellFor(t, cells, dsp.CompAddSub, 1).Active {
		t.Error("MAC- should use subtract mode")
	}
	if cellFor(t, cells, dsp.CompAddSub, 0).Active {
		t.Error("MAC- must not use add mode")
	}
}

func TestPhase2SequenceObservesAcc(t *testing.T) {
	// The paper's Phase-2 trick: follow the target with a SHIFT (reads
	// the accumulator) and OUT to make accumulator errors observable.
	e := fastEngine()
	seq := Sequence{
		Instrs: []isa.Instr{
			{Op: isa.OpMacP, Acc: isa.AccA, RA: 1, RB: 2, RD: 3},
			{Op: isa.OpNop},
			{Op: isa.OpNop},
			{Op: isa.OpShift, Acc: isa.AccA, RA: 4, RB: 5, RD: 6},
			{Op: isa.OpNop},
			{Op: isa.OpNop},
			{Op: isa.OpOut, Src: 6},
		},
		Target: 0,
		State:  AccRandom,
	}
	cells := e.MeasureSequence(seq)
	accA := cellFor(t, cells, dsp.CompAccA, 0)
	if accA.O < 0.5 {
		t.Errorf("Phase-2 sequence AccA O = %.3f, want ≥0.5", accA.O)
	}
}

func TestStandardRowsAndColumns(t *testing.T) {
	rows := StandardRows()
	if len(rows) != 24 {
		t.Fatalf("standard rows = %d, want 24", len(rows))
	}
	cols := StandardColumns()
	// 14 components + 3 extra shifter modes + 1 extra addsub mode.
	if len(cols) != 18 {
		t.Fatalf("standard columns = %d, want 18", len(cols))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Name] {
			t.Fatalf("duplicate row name %s", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestTableCoveredAndRender(t *testing.T) {
	tab := &Table{
		Rows:       []Row{{Name: "mpy"}},
		Cols:       []Column{{Comp: dsp.CompMultiplier}},
		Cells:      [][]Cell{{{Active: true, C: 0.99, O: 0.71}}},
		CThreshold: 0.70,
		OThreshold: 0.50,
	}
	if !tab.Covered(0, 0) {
		t.Fatal("cell should be covered")
	}
	tab.Cells[0][0].O = 0.3
	if tab.Covered(0, 0) {
		t.Fatal("low O should not cover")
	}
	if tab.Render() == "" {
		t.Fatal("empty render")
	}
	if tab.ColumnIndex(dsp.CompMultiplier, 0) != 0 || tab.ColumnIndex(dsp.CompShifter, 1) != -1 {
		t.Fatal("ColumnIndex wrong")
	}
}

func TestEngineDeterminism(t *testing.T) {
	a := NewEngine(Config{CTrials: 500, OGoodRuns: 3, Seed: 5}).
		MeasureRow(Row{Op: isa.OpMpy, Acc: isa.AccA, State: AccZero})
	b := NewEngine(Config{CTrials: 500, OGoodRuns: 3, Seed: 5}).
		MeasureRow(Row{Op: isa.OpMpy, Acc: isa.AccA, State: AccZero})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("column %d differs between identical runs", i)
		}
	}
}
