package metrics

import (
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/isa"
)

// Config tunes the measurement engine.
type Config struct {
	// CTrials is the number of behavioral simulations per row for the
	// controllability metric. The paper used 2000 for narrow signals and
	// "much more" (via generated C++) for wide ones; 20000 is a usable
	// default, 200000+ gives publication-quality wide-signal entropy.
	CTrials int
	// OGoodRuns is the number of good simulations per row for the
	// observability metric; each spawns 2×n error injections per
	// component (paper Section 2.2).
	OGoodRuns int
	// Seed makes the engine deterministic.
	Seed int64
	// CThreshold and OThreshold are the coverage thresholds
	// (paper defaults: Cθ = 0.70, Oθ = 0.50).
	CThreshold, OThreshold float64
	// DrainCycles is how long outputs are watched past the end of a
	// sequence when detecting propagated errors.
	DrainCycles int
}

func (c Config) withDefaults() Config {
	if c.CTrials == 0 {
		c.CTrials = 20000
	}
	if c.OGoodRuns == 0 {
		c.OGoodRuns = 100
	}
	if c.CThreshold == 0 {
		c.CThreshold = 0.70
	}
	if c.OThreshold == 0 {
		c.OThreshold = 0.50
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 6
	}
	return c
}

// Engine measures instruction-level testability metrics on the
// behavioral DSP core.
type Engine struct {
	cfg Config
}

// NewEngine returns an Engine with defaults applied.
func NewEngine(cfg Config) *Engine { return &Engine{cfg: cfg.withDefaults()} }

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Sequence is an instruction sequence with a designated target
// instruction whose metrics are measured. Wrapper instructions before
// and after the target (the paper's Load/Out wrappers, Phase-2
// propagation sequences) are part of the sequence.
type Sequence struct {
	Instrs []isa.Instr
	Target int
	State  AccState // accumulator state loaded before the run
}

// StandardSequence builds the paper's default measurement harness for an
// instruction: the instruction itself, two delay slots, and an OUT
// wrapper observing its destination register. Operand registers are R1
// and R2 (their contents are randomized per trial), destination R3.
func StandardSequence(op isa.Op, acc isa.Acc, state AccState) Sequence {
	target := isa.Instr{Op: op, Acc: acc}
	switch op.Format() {
	case isa.Format1:
		target.RA, target.RB, target.RD = 1, 2, 3
	case isa.Format2:
		target.RD = 3 // immediate randomized per trial
	case isa.Format3:
		target.Src = 1
	case isa.Format4:
		target.Src, target.RD = 1, 3
	}
	if op.Format() == isa.Format2 {
		// Load immediates come from LFSR1 in the template architecture;
		// measure them as random.
		target.RndImm = true
	}
	seq := Sequence{Instrs: []isa.Instr{target}, State: state}
	if op.WritesDest() {
		seq.Instrs = append(seq.Instrs,
			isa.Instr{Op: isa.OpNop},
			isa.Instr{Op: isa.OpNop},
			isa.Instr{Op: isa.OpOut, Src: target.RD},
		)
	}
	return seq
}

// componentStage assigns each component to the pipeline stage (relative
// to the target instruction) in which its metrics are sampled.
type stage uint8

const (
	stageS2  stage = iota // target in decode/read
	stageEX               // target in execute
	stageAny              // sampled whenever exercised (output port)
)

func componentStage(c dsp.Component) stage {
	switch c {
	case dsp.CompRegPortA, dsp.CompRegPortB, dsp.CompForward:
		return stageS2
	case dsp.CompOutPort:
		return stageAny
	default:
		return stageEX
	}
}

// portSrc names one input port of a component: either another
// component's observed output or a raw datapath signal.
type portSrc struct {
	isComp bool
	comp   dsp.Component
	sig    dsp.Signal
}

func (p portSrc) width() int {
	if p.isComp {
		return p.comp.Width()
	}
	return p.sig.Width()
}

// compPorts maps each component to its input ports, the signals the
// controllability metric measures (paper Section 3.2). Register-file
// read ports, the forwarding register and the accumulators are sampled
// at the value they deliver/store.
var compPorts = map[dsp.Component][]portSrc{
	dsp.CompMultiplier: {{sig: dsp.SigOpA}, {sig: dsp.SigOpB}},
	dsp.CompShifter:    {{sig: dsp.SigAccSel}, {sig: dsp.SigShiftAmt}},
	dsp.CompAddSub:     {{isComp: true, comp: dsp.CompMuxA}, {isComp: true, comp: dsp.CompMuxB}},
	dsp.CompMuxA:       {{isComp: true, comp: dsp.CompShifter}},
	dsp.CompMuxB:       {{isComp: true, comp: dsp.CompMultiplier}},
	dsp.CompTruncater:  {{isComp: true, comp: dsp.CompAddSub}},
	dsp.CompAccA:       {{isComp: true, comp: dsp.CompTruncater}},
	dsp.CompAccB:       {{isComp: true, comp: dsp.CompTruncater}},
	dsp.CompLimiter:    {{isComp: true, comp: dsp.CompTruncater}},
	dsp.CompRegPortA:   {{isComp: true, comp: dsp.CompRegPortA}},
	dsp.CompRegPortB:   {{isComp: true, comp: dsp.CompRegPortB}},
	dsp.CompForward:    {{isComp: true, comp: dsp.CompForward}},
	dsp.CompBuffer:     {{sig: dsp.SigSrcVal}, {sig: dsp.SigImm}},
	dsp.CompOutPort:    {{sig: dsp.SigOutVal}},
}

// recorder is the probe used for both metric passes. In monitoring mode
// it captures component outputs, modes and signals inside the armed
// windows. In injection mode it additionally overrides one component's
// output during its window.
type recorder struct {
	window stage // currently armed window
	armed  bool

	compSeen [16]bool
	compVal  [16]uint32
	compMode [16]int
	sigSeen  [8]bool
	sigVal   [8]uint32

	outSeen bool
	outVal  uint32

	inject     bool
	injectComp dsp.Component
	injectVal  uint32
	injected   bool

	// Accumulator contents right after the target's execute cycle
	// (captured for accumulator error injection).
	accAAfter, accBAfter uint32
}

func (r *recorder) resetTrial() {
	r.compSeen = [16]bool{}
	r.sigSeen = [8]bool{}
	r.outSeen = false
	r.injected = false
}

func (r *recorder) Observe(comp dsp.Component, mode int, value uint32) uint32 {
	if comp == dsp.CompOutPort {
		// Exercised by any OUT reaching writeback, wrapper included.
		if !r.outSeen {
			r.outSeen = true
			r.outVal = value
			if r.inject && r.injectComp == comp && !r.injected {
				r.injected = true
				return r.injectVal
			}
		}
		return value
	}
	if !r.armed || componentStage(comp) != r.window {
		return value
	}
	r.compSeen[comp] = true
	r.compVal[comp] = value
	r.compMode[comp] = mode
	if r.inject && r.injectComp == comp && !r.injected {
		r.injected = true
		return r.injectVal
	}
	return value
}

func (r *recorder) Signal(sig dsp.Signal, value uint32) {
	if sig == dsp.SigOutVal {
		r.sigSeen[sig] = true
		r.sigVal[sig] = value
		return
	}
	if !r.armed || r.window != stageEX {
		return
	}
	r.sigSeen[sig] = true
	r.sigVal[sig] = value
}

// runTrial executes one randomized trial of the sequence. The returned
// output trace has one entry per cycle. When inject targets an
// accumulator, the stored state is corrupted right after the target's
// execute cycle (errors at a register's output are errors in its
// contents); other components are overridden through the probe.
func (e *Engine) runTrial(core *dsp.Core, rec *recorder, seq Sequence, rng *rand.Rand,
	injectAcc dsp.Component, accErr uint32) []uint8 {

	core.Reset()
	rec.resetTrial()
	for i := 0; i < isa.NumRegs; i++ {
		core.SetReg(i, uint8(rng.Uint32()))
	}
	var accA, accB uint32
	if seq.State == AccRandom {
		accA = rng.Uint32() & dsp.Mask18
		accB = rng.Uint32() & dsp.Mask18
	}
	core.SetAcc(isa.AccA, accA)
	core.SetAcc(isa.AccB, accB)

	total := len(seq.Instrs) + e.cfg.DrainCycles
	trace := make([]uint8, 0, total)
	s2Cycle := seq.Target + 1
	exCycle := seq.Target + dsp.EXLatency

	for cyc := 0; cyc < total; cyc++ {
		word := uint32(0)
		if cyc < len(seq.Instrs) {
			in := seq.Instrs[cyc]
			if in.Op == isa.OpLdi || in.Op == isa.OpLdRnd {
				if in.RndImm || in.Op == isa.OpLdRnd {
					in.Imm = uint8(rng.Uint32())
					in.Op = isa.OpLdi
				}
			}
			word = in.Encode()
		}
		switch cyc {
		case s2Cycle:
			rec.armed, rec.window = true, stageS2
		case exCycle:
			rec.armed, rec.window = true, stageEX
		default:
			rec.armed = false
		}
		core.Step(word)
		if cyc == exCycle {
			rec.accAAfter = core.AccValue(isa.AccA)
			rec.accBAfter = core.AccValue(isa.AccB)
			if injectAcc == dsp.CompAccA {
				core.SetAcc(isa.AccA, accErr)
			}
			if injectAcc == dsp.CompAccB {
				core.SetAcc(isa.AccB, accErr)
			}
		}
		trace = append(trace, core.Output())
	}
	rec.armed = false
	return trace
}

// noAcc marks "no accumulator state injection" for runTrial.
const noAcc = dsp.Component(255)
