package metrics

import (
	"strings"
	"testing"

	"repro/internal/dsp"
)

func tinyTable() *Table {
	return &Table{
		Rows: []Row{{Name: "mpy"}, {Name: "shift"}},
		Cols: []Column{{Comp: dsp.CompMultiplier}, {Comp: dsp.CompShifter, Mode: 1}},
		Cells: [][]Cell{
			{{Active: true, C: 0.99, O: 0.71}, {}},
			{{Active: true, C: 0.98, O: 0.12}, {Active: true, C: 0.95, O: 0.64}},
		},
		CThreshold: 0.70,
		OThreshold: 0.50,
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := tinyTable().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "instruction,Multiplier C,Multiplier O,Shifter 01 C") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "mpy,0.990,0.710,,") {
		t.Fatalf("row 1: %s", lines[1])
	}
	// mpy covers Multiplier only; shift covers both columns? shift's
	// Multiplier O=0.12 fails Oθ, Shifter 01 passes.
	if !strings.HasSuffix(lines[1], ",1") || !strings.HasSuffix(lines[2], ",1") {
		t.Fatalf("covered counts wrong:\n%s", out)
	}
}

func TestDiff(t *testing.T) {
	a := tinyTable()
	b := tinyTable()
	if d := Diff(a, b, 0.01); len(d) != 0 {
		t.Fatalf("identical tables diff: %v", d)
	}
	b.Cells[0][0].C = 0.80
	if d := Diff(a, b, 0.01); len(d) != 1 || !strings.Contains(d[0], "mpy/Multiplier") {
		t.Fatalf("diff = %v", d)
	}
	b.Cells[1][1].Active = false
	if d := Diff(a, b, 0.01); len(d) != 2 {
		t.Fatalf("diff = %v", d)
	}
	c := tinyTable()
	c.Cols = c.Cols[:1]
	if d := Diff(a, c, 0.01); len(d) != 1 || !strings.Contains(d[0], "shape") {
		t.Fatalf("shape diff = %v", d)
	}
}
