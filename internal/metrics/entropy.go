// Package metrics implements the paper's instruction-level testability
// metrics: the entropy-based controllability metric C(X) and the
// error-injection observability metric O(X), assembled into a metrics
// table (one row per instruction variant, one column per component mode)
// that drives the self-test program generator.
//
// Controllability follows the paper's Section 2.1/3.2 definitions: the
// normalized entropy of a component's *input* ports under behavioral
// simulation, with statistically independent ports decomposed as
// C(X,Y) = (H(X)+H(Y)) / (n_X + n_Y). Observability follows Section 2.2:
// random erroneous values replace a component's output (2×n injections
// per good simulation for an n-bit output) and O(X) is the fraction that
// reach the core's primary output.
package metrics

import "math"

// Histogram accumulates a value distribution for entropy estimation.
// Widths up to HistArrayBits use a dense array; use one Histogram per
// signal and Reset between measurements to reuse the allocation.
type Histogram struct {
	width  int
	total  int
	counts []uint32       // dense, when width <= HistArrayBits
	sparse map[uint32]int // fallback for wider signals
}

// HistArrayBits is the widest signal backed by a dense count array
// (2^18 × 4 bytes = 1 MiB, the accumulator width of the DSP core).
const HistArrayBits = 18

// NewHistogram returns an empty histogram for width-bit values.
func NewHistogram(width int) *Histogram {
	h := &Histogram{width: width}
	if width <= HistArrayBits {
		h.counts = make([]uint32, 1<<uint(width))
	} else {
		h.sparse = make(map[uint32]int)
	}
	return h
}

// Width returns the signal width in bits.
func (h *Histogram) Width() int { return h.width }

// Total returns the number of accumulated samples.
func (h *Histogram) Total() int { return h.total }

// Add accumulates one sample (masked to the histogram width).
func (h *Histogram) Add(v uint32) {
	v &= uint32(1)<<uint(h.width) - 1
	if h.counts != nil {
		h.counts[v]++
	} else {
		h.sparse[v]++
	}
	h.total++
}

// Reset clears all counts, keeping the allocation.
func (h *Histogram) Reset() {
	if h.counts != nil {
		for i := range h.counts {
			h.counts[i] = 0
		}
	} else {
		clear(h.sparse)
	}
	h.total = 0
}

// Entropy returns the Miller-Madow-corrected plug-in entropy estimate in
// bits, clamped to [0, width]. The correction (K−1)/(2N·ln2) compensates
// the plug-in estimator's downward bias when the sample count is not
// much larger than the support size — the regime the paper's wide
// (18-bit) accumulator signals put us in.
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	n := float64(h.total)
	var hPlug float64
	distinct := 0
	if h.counts != nil {
		for _, c := range h.counts {
			if c == 0 {
				continue
			}
			distinct++
			p := float64(c) / n
			hPlug -= p * math.Log2(p)
		}
	} else {
		for _, c := range h.sparse {
			distinct++
			p := float64(c) / n
			hPlug -= p * math.Log2(p)
		}
	}
	hMM := hPlug + float64(distinct-1)/(2*n*math.Ln2)
	if hMM < 0 {
		hMM = 0
	}
	if max := float64(h.width); hMM > max {
		hMM = max
	}
	return hMM
}

// Controllability returns the normalized multi-port controllability:
// the sum of per-port entropies divided by the total input width,
// following the paper's independence decomposition.
func Controllability(ports ...*Histogram) float64 {
	var hSum, wSum float64
	for _, p := range ports {
		if p.Total() == 0 {
			continue
		}
		hSum += p.Entropy()
		wSum += float64(p.Width())
	}
	if wSum == 0 {
		return 0
	}
	c := hSum / wSum
	if c > 1 {
		c = 1
	}
	return c
}
