package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the metrics table as CSV: one row per instruction
// variant, two columns (C and O) per component mode, empty cells for
// inactive combinations. Spreadsheet-friendly form of Render.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"instruction"}
	for _, c := range t.Cols {
		header = append(header, c.Label()+" C", c.Label()+" O")
	}
	header = append(header, "covered columns")
	if err := cw.Write(header); err != nil {
		return err
	}
	for r, row := range t.Rows {
		rec := []string{row.Name}
		covered := 0
		for c := range t.Cols {
			cell := t.Cells[r][c]
			if !cell.Active {
				rec = append(rec, "", "")
				continue
			}
			rec = append(rec,
				strconv.FormatFloat(cell.C, 'f', 3, 64),
				strconv.FormatFloat(cell.O, 'f', 3, 64))
			if t.Covered(r, c) {
				covered++
			}
		}
		rec = append(rec, strconv.Itoa(covered))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Diff compares two tables cell by cell and returns a report of entries
// whose metrics moved by more than tol — the regression check for
// metric-engine changes.
func Diff(a, b *Table, tol float64) []string {
	var out []string
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		return []string{fmt.Sprintf("shape mismatch: %dx%d vs %dx%d",
			len(a.Rows), len(a.Cols), len(b.Rows), len(b.Cols))}
	}
	for r := range a.Rows {
		for c := range a.Cols {
			ca, cb := a.Cells[r][c], b.Cells[r][c]
			if ca.Active != cb.Active {
				out = append(out, fmt.Sprintf("%s/%s: active %v vs %v",
					a.Rows[r].Name, a.Cols[c].Label(), ca.Active, cb.Active))
				continue
			}
			if !ca.Active {
				continue
			}
			if abs(ca.C-cb.C) > tol {
				out = append(out, fmt.Sprintf("%s/%s: C %.3f vs %.3f",
					a.Rows[r].Name, a.Cols[c].Label(), ca.C, cb.C))
			}
			if abs(ca.O-cb.O) > tol {
				out = append(out, fmt.Sprintf("%s/%s: O %.3f vs %.3f",
					a.Rows[r].Name, a.Cols[c].Label(), ca.O, cb.O))
			}
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
