package metrics

import (
	"fmt"
	"strings"

	"repro/internal/dsp"
	"repro/internal/isa"
)

// AccState is the assumed accumulator state for a metrics row: the paper
// computes every instruction's metrics twice, once with the accumulators
// holding zero ("0" rows) and once holding a random value ("R" rows),
// because the test program can steer the core into either state with a
// preamble.
type AccState uint8

// Accumulator state assumptions.
const (
	AccZero AccState = iota
	AccRandom
)

// String renders the paper's suffix convention.
func (s AccState) String() string {
	if s == AccRandom {
		return "R"
	}
	return "0"
}

// Row is one metrics-table row: an instruction variant under an
// accumulator-state assumption.
type Row struct {
	Name  string
	Op    isa.Op
	Acc   isa.Acc
	State AccState
}

// StandardRows returns the row set of the paper's Table 2: every
// data-processing instruction, each under both accumulator-state
// assumptions (accumulator A variants; B is symmetric).
func StandardRows() []Row {
	ops := []isa.Op{
		isa.OpLdi, isa.OpOut, isa.OpMov,
		isa.OpMpy, isa.OpMpyT,
		isa.OpMacP, isa.OpMacM, isa.OpMactP, isa.OpMactM,
		isa.OpShift, isa.OpMpyShift, isa.OpMpyShiftMac,
	}
	var rows []Row
	for _, op := range ops {
		for _, st := range []AccState{AccZero, AccRandom} {
			name := op.Mnemonic()
			if st == AccRandom {
				name += "R"
			}
			rows = append(rows, Row{Name: name, Op: op, Acc: isa.AccA, State: st})
		}
	}
	return rows
}

// Column is one metrics-table column: a component in one of its
// control-bit modes ("Shifter 01", "AddSub 1", ...).
type Column struct {
	Comp dsp.Component
	Mode int
}

// Label renders the column header in the paper's style.
func (c Column) Label() string {
	if c.Comp.Modes() == 1 {
		return c.Comp.Name()
	}
	if c.Comp == dsp.CompShifter {
		return fmt.Sprintf("%s %02b", c.Comp.Name(), c.Mode)
	}
	return fmt.Sprintf("%s %d", c.Comp.Name(), c.Mode)
}

// StandardColumns returns one column per component mode, walking the
// components in Table 2 order.
func StandardColumns() []Column {
	var cols []Column
	for _, comp := range dsp.Components() {
		for m := 0; m < comp.Modes(); m++ {
			cols = append(cols, Column{Comp: comp, Mode: m})
		}
	}
	return cols
}

// Cell is one metrics-table entry.
type Cell struct {
	// Active reports whether the row's instruction exercises the column
	// at all (an instruction never puts the shifter in a mode other than
	// its own, so those cells are blank in the paper's table).
	Active bool
	// C is the controllability metric (0..1).
	C float64
	// O is the observability metric (0..1).
	O float64
	// CSamples counts the controllability trials behind C.
	CSamples int
	// Injections and Detections are the observability counts behind O.
	Injections, Detections int
}

// Table is the full instruction × component-mode metrics table.
type Table struct {
	Rows []Row
	Cols []Column
	// Cells[r][c] corresponds to Rows[r] × Cols[c].
	Cells [][]Cell
	// CThreshold and OThreshold are the coverage thresholds Cθ and Oθ.
	CThreshold, OThreshold float64
}

// Covered reports whether row r covers column c: both metrics meet their
// thresholds (the paper's "X" mark).
func (t *Table) Covered(r, c int) bool {
	cell := t.Cells[r][c]
	return cell.Active && cell.C >= t.CThreshold && cell.O >= t.OThreshold
}

// ColumnIndex finds the column for a component mode, or -1.
func (t *Table) ColumnIndex(comp dsp.Component, mode int) int {
	for i, c := range t.Cols {
		if c.Comp == comp && c.Mode == mode {
			return i
		}
	}
	return -1
}

// Render formats the table in the paper's "C,O X" style.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-14s", ""))
	for _, c := range t.Cols {
		sb.WriteString(fmt.Sprintf("| %-11s", c.Label()))
	}
	sb.WriteByte('\n')
	for r, row := range t.Rows {
		sb.WriteString(fmt.Sprintf("%-14s", row.Name))
		for c := range t.Cols {
			cell := t.Cells[r][c]
			if !cell.Active {
				sb.WriteString(fmt.Sprintf("| %-11s", ""))
				continue
			}
			mark := " "
			if t.Covered(r, c) {
				mark = "X"
			}
			sb.WriteString(fmt.Sprintf("| %.2f,%.2f %s ", cell.C, cell.O, mark))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
