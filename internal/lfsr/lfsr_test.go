package lfsr

import (
	"testing"
	"testing/quick"
)

func TestMaximalPeriods(t *testing.T) {
	// Every built-in polynomial up to 20 bits must be maximal length
	// (2^w − 1). Larger widths are spot-checked by statistics instead.
	for _, w := range SupportedWidths() {
		if w > 20 {
			continue
		}
		l := MustNew(w, 1)
		want := uint64(1)<<uint(w) - 1
		if got := l.Period(); got != want {
			t.Errorf("width %d: period %d, want %d", w, got, want)
		}
	}
}

func TestSeventeenBitFullSequence(t *testing.T) {
	// The pseudorandom BIST baseline relies on the 17-bit LFSR visiting
	// all 131,071 non-zero states exactly once.
	l := MustNew(17, 1)
	seen := make(map[uint64]bool, 1<<17)
	for i := 0; i < 1<<17-1; i++ {
		s := l.Next()
		if s == 0 {
			t.Fatal("LFSR reached the all-zero state")
		}
		if seen[s] {
			t.Fatalf("state %x repeated at step %d", s, i)
		}
		seen[s] = true
	}
	if len(seen) != 1<<17-1 {
		t.Fatalf("visited %d states, want %d", len(seen), 1<<17-1)
	}
}

func TestSeedHandling(t *testing.T) {
	l := MustNew(8, 0)
	if l.State() == 0 {
		t.Fatal("zero seed must be replaced")
	}
	l2 := MustNew(8, 0xFFF) // masked to width
	if l2.State() != 0xFF {
		t.Fatalf("seed not masked: %x", l2.State())
	}
	if _, err := New(21, 1); err == nil {
		t.Fatal("unsupported width should error")
	}
	if _, err := NewWithTaps(1, 1, 1); err == nil {
		t.Fatal("width 1 should error")
	}
	if _, err := NewWithTaps(8, 0, 1); err == nil {
		t.Fatal("empty taps should error")
	}
}

func TestNextBits(t *testing.T) {
	a := MustNew(8, 1)
	bl := MustNew(8, 1)
	want := uint64(0)
	for i := 0; i < 5; i++ {
		want = a.Next()
	}
	if got := bl.NextBits(5); got != want {
		t.Fatalf("NextBits(5)=%x, want %x", got, want)
	}
}

func TestLFSRStatisticallyBalanced(t *testing.T) {
	// Over a full period each bit is 1 for 2^(w-1) of the 2^w−1 states.
	l := MustNew(12, 1)
	counts := make([]int, 12)
	period := 1<<12 - 1
	for i := 0; i < period; i++ {
		s := l.Next()
		for b := 0; b < 12; b++ {
			if s>>uint(b)&1 == 1 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if c != 1<<11 {
			t.Errorf("bit %d: %d ones, want %d", b, c, 1<<11)
		}
	}
}

func TestMISRDistinguishesStreams(t *testing.T) {
	m, err := NewMISR(16)
	if err != nil {
		t.Fatal(err)
	}
	stream := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, w := range stream {
		m.Absorb(w)
	}
	sig := m.Signature()
	m.Reset()
	if m.Signature() != 0 {
		t.Fatal("Reset did not clear")
	}
	// Single-bit corruption anywhere must change the signature.
	for i := range stream {
		for bit := 0; bit < 16; bit++ {
			m.Reset()
			for j, w := range stream {
				if j == i {
					w ^= 1 << uint(bit)
				}
				m.Absorb(w)
			}
			if m.Signature() == sig {
				t.Fatalf("corruption at word %d bit %d aliased", i, bit)
			}
		}
	}
}

func TestMISRLinear(t *testing.T) {
	// MISR compaction is linear over GF(2): sig(a xor b) = sig(a) xor
	// sig(b) when both streams start from signature 0.
	f := func(a, b [6]uint16) bool {
		sig := func(s [6]uint16, mask [6]uint16) uint64 {
			m, _ := NewMISR(16)
			for i := range s {
				m.Absorb(uint64(s[i] ^ mask[i]))
			}
			return m.Signature()
		}
		var zero [6]uint16
		sa := sig(a, zero)
		sb := sig(b, zero)
		var ab [6]uint16
		for i := range ab {
			ab[i] = a[i] ^ b[i]
		}
		return sig(ab, zero) == sa^sb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalTaps(t *testing.T) {
	// The ga_search taps pool: every polynomial returned must be
	// genuinely maximal-length, the builtin must lead, and the list
	// must be deterministic.
	taps, err := MaximalTaps(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 4 {
		t.Fatalf("got %d taps, want 4", len(taps))
	}
	if taps[0] != 0xD008 {
		t.Fatalf("pool does not lead with the builtin polynomial: %#x", taps[0])
	}
	seen := map[uint64]bool{}
	for _, tp := range taps {
		if seen[tp] {
			t.Fatalf("duplicate polynomial %#x", tp)
		}
		seen[tp] = true
		l, err := NewWithTaps(16, tp, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p := l.Period(); p != (1<<16)-1 {
			t.Fatalf("taps %#x: period %d, want %d", tp, p, (1<<16)-1)
		}
	}
	again, err := MaximalTaps(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range taps {
		if taps[i] != again[i] {
			t.Fatalf("MaximalTaps not deterministic at %d: %#x vs %#x", i, taps[i], again[i])
		}
	}
	if _, err := MaximalTaps(2, 1<<20); err == nil {
		t.Fatal("impossible pool size did not error")
	}
}
