package lfsr_test

import (
	"fmt"

	"repro/internal/lfsr"
)

// ExampleLFSR draws pseudorandom data the way the template
// architecture's LFSR1 fills load immediates.
func ExampleLFSR() {
	l := lfsr.MustNew(8, 1)
	for i := 0; i < 4; i++ {
		fmt.Printf("%02x ", l.Next())
	}
	fmt.Println()
	// Output:
	// 02 04 08 11
}

// ExampleMISR compacts an output stream into a signature; any
// single-bit corruption changes it.
func ExampleMISR() {
	m, _ := lfsr.NewMISR(16)
	for _, word := range []uint64{0x12, 0x34, 0x56} {
		m.Absorb(word)
	}
	good := m.Signature()

	m.Reset()
	for _, word := range []uint64{0x12, 0x35, 0x56} { // one bit flipped
		m.Absorb(word)
	}
	fmt.Println("signatures differ:", m.Signature() != good)
	// Output:
	// signatures differ: true
}
