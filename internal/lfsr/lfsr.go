// Package lfsr provides linear feedback shift registers and a MISR
// (multiple-input signature register), the pseudorandom pattern sources
// and response compactor of the paper's self-test template architecture.
//
// LFSR1 in the template architecture fills load-instruction immediate
// fields, LFSR2 XOR-masks register fields to rotate register coverage
// between loop iterations, and a plain 17-bit LFSR drives the raw
// pseudorandom-BIST baseline of Section 3.5.
package lfsr

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// ctrReseeds counts every LFSR (re)seeding on the default observability
// registry — construction and explicit Reseed calls both count, so a
// trace shows how many independent pseudorandom streams a run consumed.
var ctrReseeds = obs.Default().Counter("lfsr.reseeds")

// primitiveTaps maps register width to a tap mask for a maximal-length
// Fibonacci LFSR (taps from the standard XNOR/XOR tables; bit i set means
// stage i, counting stage 1 as bit 0, feeds the XOR).
var primitiveTaps = map[int]uint64{
	2:  0x3,
	3:  0x6,
	4:  0xC,
	5:  0x14,
	6:  0x30,
	7:  0x60,
	8:  0xB8,
	9:  0x110,
	10: 0x240,
	11: 0x500,
	12: 0xE08,
	13: 0x1C80,
	14: 0x3802,
	15: 0x6000,
	16: 0xD008,
	17: 0x12000,
	18: 0x20400,
	19: 0x72000,
	20: 0x90000,
	24: 0xE10000,
	32: 0xA3000000,
}

// SupportedWidths lists the widths with built-in primitive polynomials.
func SupportedWidths() []int {
	ws := make([]int, 0, len(primitiveTaps))
	for w := range primitiveTaps {
		ws = append(ws, w)
	}
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j-1] > ws[j]; j-- {
			ws[j-1], ws[j] = ws[j], ws[j-1]
		}
	}
	return ws
}

// maximalCache memoizes MaximalTaps scans per width: the scan is a
// brute-force period check (O(n · 2^width) steps), cheap enough for the
// template widths but not worth repeating per search.
var maximalCache struct {
	sync.Mutex
	byWidth map[int][]uint64
}

// MaximalTaps returns the first n tap masks (in a fixed, deterministic
// order) that give a maximal-length sequence at the given width: the
// built-in primitive polynomial first, then candidate masks in
// increasing numeric order, each verified by stepping the register
// through its full 2^width − 1 period. Only masks with the top stage
// tapped are considered — that keeps the state update invertible, so
// every trajectory is purely periodic and the check terminates. The
// result is the ga_search polynomial gene pool: every entry is a
// legitimate maximal-length LFSR1 feedback choice. Intended for small
// widths (the scan is O(n · 2^width)); results are memoized.
func MaximalTaps(width, n int) ([]uint64, error) {
	if width < 2 || width > 24 {
		return nil, fmt.Errorf("lfsr: MaximalTaps width %d out of range 2..24", width)
	}
	if n <= 0 {
		return nil, fmt.Errorf("lfsr: MaximalTaps n %d <= 0", n)
	}
	maximalCache.Lock()
	defer maximalCache.Unlock()
	if maximalCache.byWidth == nil {
		maximalCache.byWidth = make(map[int][]uint64)
	}
	cached := maximalCache.byWidth[width]
	if len(cached) >= n {
		return append([]uint64(nil), cached[:n]...), nil
	}
	found := cached
	if len(found) == 0 {
		if builtin, ok := primitiveTaps[width]; ok {
			found = append(found, builtin)
		}
	}
	top := uint64(1) << uint(width-1)
	for mask := top; mask < top<<1 && len(found) < n; mask++ {
		if len(found) > 0 && mask == found[0] {
			continue // the built-in leads the list; don't repeat it
		}
		if isMaximal(width, mask) {
			found = append(found, mask)
		}
	}
	if len(found) < n {
		return nil, fmt.Errorf("lfsr: width %d has only %d maximal tap masks with the top stage tapped, %d requested",
			width, len(found), n)
	}
	maximalCache.byWidth[width] = found
	return append([]uint64(nil), found[:n]...), nil
}

// isMaximal steps an LFSR with the given mask from seed 1 and reports
// whether the seed recurs exactly at step 2^width − 1 and no earlier.
func isMaximal(width int, taps uint64) bool {
	l, err := NewWithTaps(width, taps, 1)
	if err != nil {
		return false
	}
	want := widthMask(width)
	start := l.State()
	for step := uint64(1); step <= want; step++ {
		if l.Next() == start {
			return step == want
		}
	}
	return false
}

// LFSR is a Fibonacci linear feedback shift register of up to 64 bits.
// With a primitive tap polynomial and a non-zero seed, it cycles through
// all 2^width − 1 non-zero states.
type LFSR struct {
	state uint64
	taps  uint64
	width int
}

// New returns an LFSR with a built-in primitive polynomial for the given
// width, seeded with the non-zero seed (seed 0 is replaced by 1, the
// conventional reset value, because the all-zero state is a fixed point).
func New(width int, seed uint64) (*LFSR, error) {
	taps, ok := primitiveTaps[width]
	if !ok {
		return nil, fmt.Errorf("lfsr: no built-in primitive polynomial for width %d", width)
	}
	return NewWithTaps(width, taps, seed)
}

// MustNew is New for widths known to be supported; it panics otherwise.
func MustNew(width int, seed uint64) *LFSR {
	l, err := New(width, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// NewWithTaps returns an LFSR with an explicit tap mask.
func NewWithTaps(width int, taps uint64, seed uint64) (*LFSR, error) {
	if width < 2 || width > 64 {
		return nil, fmt.Errorf("lfsr: width %d out of range 2..64", width)
	}
	mask := widthMask(width)
	if taps&mask == 0 {
		return nil, fmt.Errorf("lfsr: empty tap mask")
	}
	seed &= mask
	if seed == 0 {
		seed = 1
	}
	ctrReseeds.Add(1)
	return &LFSR{state: seed, taps: taps & mask, width: width}, nil
}

// Reseed restarts the register from a new seed (0 is replaced by 1, as
// in New) without changing the polynomial.
func (l *LFSR) Reseed(seed uint64) {
	seed &= widthMask(l.width)
	if seed == 0 {
		seed = 1
	}
	l.state = seed
	ctrReseeds.Add(1)
}

func widthMask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(width) - 1
}

// Width returns the register width in bits.
func (l *LFSR) Width() int { return l.width }

// State returns the current register contents without advancing.
func (l *LFSR) State() uint64 { return l.state }

// Next advances one step and returns the new state.
func (l *LFSR) Next() uint64 {
	fb := parity64(l.state & l.taps)
	l.state = (l.state << 1 & widthMask(l.width)) | fb
	return l.state
}

// NextBits advances k steps and returns the last state (a cheap way to
// decorrelate successive draws when one state is consumed per field).
func (l *LFSR) NextBits(k int) uint64 {
	var v uint64
	for i := 0; i < k; i++ {
		v = l.Next()
	}
	return v
}

// Period measures the sequence length by stepping until the seed state
// recurs. Intended for tests and small widths; O(period).
func (l *LFSR) Period() uint64 {
	start := l.state
	var count uint64
	for {
		l.Next()
		count++
		if l.state == start {
			return count
		}
	}
}

func parity64(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// MISR is a multiple-input signature register: an LFSR whose state is
// additionally XORed with a parallel input word each cycle, compacting a
// response stream into a single signature.
type MISR struct {
	state uint64
	taps  uint64
	width int
}

// NewMISR returns a MISR with the built-in primitive polynomial for the
// width and an all-zero initial signature.
func NewMISR(width int) (*MISR, error) {
	taps, ok := primitiveTaps[width]
	if !ok {
		return nil, fmt.Errorf("lfsr: no built-in primitive polynomial for width %d", width)
	}
	return &MISR{taps: taps, width: width}, nil
}

// Width returns the register width in bits.
func (m *MISR) Width() int { return m.width }

// Absorb folds one response word into the signature.
func (m *MISR) Absorb(word uint64) {
	fb := parity64(m.state & m.taps)
	m.state = ((m.state<<1 | fb) ^ word) & widthMask(m.width)
}

// Signature returns the current compacted signature.
func (m *MISR) Signature() uint64 { return m.state }

// Reset clears the signature to zero.
func (m *MISR) Reset() { m.state = 0 }
