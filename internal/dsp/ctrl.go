package dsp

import "repro/internal/isa"

// CtrlBits is the exported control word: the seven MAC control bits of
// the paper's Figure 5 plus the pipeline controls. The gate-level core
// (package dspgate) synthesizes its second-stage decoder from this same
// table, keeping the two models in lockstep by construction.
type CtrlBits struct {
	Sub      bool  // adder/subtracter mode: 1 = addA − addB
	AccB     bool  // accumulator select
	TruncEn  bool  // truncater enable
	Mode     uint8 // shifter mode (2 bits)
	ZeroAcc  bool  // adder A operand forced to zero (no accumulate)
	ZeroProd bool  // adder B operand forced to zero (no product)

	MacFamily  bool // result from MAC; writes selected accumulator
	IsLdi      bool // stage-3 buffer takes the immediate field
	IsOut      bool // drives the output port at writeback
	ReadSrc    bool // read port A addresses bits [7:4] instead of [11:8]
	WritesDest bool
}

// ControlBits returns the decoded control word for an operation.
func ControlBits(op isa.Op, acc isa.Acc) CtrlBits {
	c := decodeCtrl(op, acc)
	return CtrlBits{
		Sub:        c.sub,
		AccB:       c.accB,
		TruncEn:    c.truncEn,
		Mode:       c.mode,
		ZeroAcc:    c.zeroAcc,
		ZeroProd:   c.zeroProd,
		MacFamily:  c.macFamily,
		IsLdi:      c.isLdi,
		IsOut:      c.isOut,
		ReadSrc:    c.readSrc,
		WritesDest: c.writesDest,
	}
}
