package dsp

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// progRun assembles and runs a program on a fresh core, padding each
// instruction with two NOPs so every result is architecturally visible
// to the next instruction (the test programs here are about semantics,
// not scheduling).
func progRun(t *testing.T, src string) *Core {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	for _, in := range prog {
		c.StepInstr(in)
		c.Step(0)
		c.Step(0)
	}
	c.Drain()
	return c
}

func TestLoadAndOut(t *testing.T) {
	c := progRun(t, `
		LD 0x5A,R3
		OUT R3
	`)
	if c.Reg(3) != 0x5A {
		t.Fatalf("R3 = %#x, want 0x5A", c.Reg(3))
	}
	if c.Output() != 0x5A {
		t.Fatalf("out = %#x, want 0x5A", c.Output())
	}
}

func TestMov(t *testing.T) {
	c := progRun(t, `
		LD 0x21,R1
		MOV R1,R9
	`)
	if c.Reg(9) != 0x21 {
		t.Fatalf("R9 = %#x", c.Reg(9))
	}
}

func TestMpyWritesAccAndDest(t *testing.T) {
	// 4.4 fixed point: 2.0 * 3.0 = 6.0 → acc 8.8 holds 6.0 = 0x600,
	// dest register 4.4 holds 0x60.
	c := progRun(t, `
		LD 0x20,R0
		LD 0x30,R1
		MPYA R0,R1,R2
	`)
	if got := c.AccValue(isa.AccA); got != 0x600 {
		t.Fatalf("AccA = %#x, want 0x600", got)
	}
	if c.Reg(2) != 0x60 {
		t.Fatalf("R2 = %#x, want 0x60 (limited 4.4 result)", c.Reg(2))
	}
	if c.AccValue(isa.AccB) != 0 {
		t.Fatal("AccB disturbed by MPYA")
	}
}

func TestMpyNegative(t *testing.T) {
	// -1.0 * 1.5 = -1.5 → acc = -384 (0x3FE80 in 18-bit two's complement).
	c := progRun(t, `
		LD 0xF0,R0
		LD 0x18,R1
		MPYB R0,R1,R2
	`)
	if got := SignExtend18(c.AccValue(isa.AccB)); got != -384 {
		t.Fatalf("AccB = %d, want -384", got)
	}
	if got := int8(c.Reg(2)); got != -24 {
		t.Fatalf("R2 = %d, want -24 (-1.5 in 4.4)", got)
	}
}

func TestMacAccumulates(t *testing.T) {
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		MACA+ R0,R1,R3
		MACA+ R0,R1,R4
	`)
	// 1.0*1.0 = 1.0 accumulated three times = 3.0 = 0x300 in 8.8.
	if got := c.AccValue(isa.AccA); got != 0x300 {
		t.Fatalf("AccA = %#x, want 0x300", got)
	}
	if c.Reg(4) != 0x30 {
		t.Fatalf("R4 = %#x, want 0x30", c.Reg(4))
	}
}

func TestMacMinus(t *testing.T) {
	// acc = acc - prod: 0 - 1.0 = -1.0.
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MACA- R0,R1,R2
	`)
	if got := SignExtend18(c.AccValue(isa.AccA)); got != -256 {
		t.Fatalf("AccA = %d, want -256", got)
	}
	if got := int8(c.Reg(2)); got != -16 {
		t.Fatalf("R2 = %d, want -16", got)
	}
}

func TestTruncate(t *testing.T) {
	// 0.5*0.5 = 0.25 → acc frac bits only; MACT truncates them to 0.
	c := progRun(t, `
		LD 0x08,R0
		LD 0x08,R1
		MPYTA R0,R1,R2
	`)
	if got := c.AccValue(isa.AccA); got != 0 {
		t.Fatalf("AccA = %#x, want 0 after truncate", got)
	}
	c2 := progRun(t, `
		LD 0x08,R0
		LD 0x08,R1
		MPYA R0,R1,R2
	`)
	if got := c2.AccValue(isa.AccA); got != 0x40 {
		t.Fatalf("untruncated AccA = %#x, want 0x40", got)
	}
}

func TestLimiterSaturates(t *testing.T) {
	// 7.9375 * 7.9375 ≈ 63 → way over the 4.4 max of 7.9375: saturate
	// to 0x7F.
	c := progRun(t, `
		LD 0x7F,R0
		LD 0x7F,R1
		MPYA R0,R1,R2
	`)
	if c.Reg(2) != 0x7F {
		t.Fatalf("R2 = %#x, want saturated 0x7F", c.Reg(2))
	}
	// -8.0 * 7.9375 saturates negative.
	c2 := progRun(t, `
		LD 0x80,R0
		LD 0x7F,R1
		MPYA R0,R1,R2
	`)
	if c2.Reg(2) != 0x80 {
		t.Fatalf("R2 = %#x, want saturated 0x80", c2.Reg(2))
	}
}

func TestShiftVariable(t *testing.T) {
	// Load acc with 1.0 via MPY, then shift left 2 → 4.0.
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		LD 0x02,R5
		SHIFTA R5,R0,R3
	`)
	if got := c.AccValue(isa.AccA); got != 0x400 {
		t.Fatalf("AccA = %#x, want 0x400 after left-2", got)
	}
	if c.Reg(3) != 0x40 {
		t.Fatalf("R3 = %#x, want 0x40", c.Reg(3))
	}
	// Negative amount: right shift. 0xE = -2.
	c2 := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		LD 0x0E,R5
		SHIFTA R5,R0,R3
	`)
	if got := c2.AccValue(isa.AccA); got != 0x40 {
		t.Fatalf("AccA = %#x, want 0x40 after right-2", got)
	}
}

func TestMpyShift(t *testing.T) {
	// acc=1.0; MPYSHIFT: acc = (acc<<1) + prod = 2.0 + 1.0 = 3.0.
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		MPYSHIFTA R0,R1,R3
	`)
	if got := c.AccValue(isa.AccA); got != 0x300 {
		t.Fatalf("AccA = %#x, want 0x300", got)
	}
}

func TestMpyShiftMac(t *testing.T) {
	// acc=1.0; amount nibble of RA=3 (opA=0x13: 1.1875 as value, low
	// nibble 3 as shift): acc = (acc<<3) + prod.
	// prod = 0x13 * 0x10 → (19*16)=304 = 0x130.
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		LD 0x13,R6
		MPYSHIFTMACA R6,R1,R3
	`)
	want := uint32(0x100<<3 + 0x130)
	if got := c.AccValue(isa.AccA); got != want {
		t.Fatalf("AccA = %#x, want %#x", got, want)
	}
}

func TestAccumulatorIndependence(t *testing.T) {
	c := progRun(t, `
		LD 0x10,R0
		LD 0x20,R1
		MPYA R0,R1,R2
		LD 0x30,R1
		MPYB R0,R1,R3
	`)
	if got := c.AccValue(isa.AccA); got != 0x200 {
		t.Fatalf("AccA = %#x, want 0x200", got)
	}
	if got := c.AccValue(isa.AccB); got != 0x300 {
		t.Fatalf("AccB = %#x, want 0x300", got)
	}
}

func TestPipelineForwardingContract(t *testing.T) {
	// i+1 must read the OLD value (delay slot); i+2 reads the new value
	// through the forwarding register.
	prog, err := isa.Assemble(`
		LD 0x11,R1
		LD 0x22,R1
		MOV R1,R2
		MOV R1,R3
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	for _, in := range prog {
		c.StepInstr(in)
	}
	c.Drain()
	// MOV R1,R2 is i+1 of the second load: sees the first load's value.
	if c.Reg(2) != 0x11 {
		t.Fatalf("delay-slot read R2 = %#x, want 0x11 (old value)", c.Reg(2))
	}
	// MOV R1,R3 is i+2: sees the new value via forwarding.
	if c.Reg(3) != 0x22 {
		t.Fatalf("forwarded read R3 = %#x, want 0x22", c.Reg(3))
	}
	if c.Reg(1) != 0x22 {
		t.Fatalf("R1 = %#x, want 0x22", c.Reg(1))
	}
}

func TestBackToBackLoadsNoHazard(t *testing.T) {
	prog, err := isa.Assemble(`
		LD 0x01,R1
		LD 0x02,R2
		LD 0x03,R3
		LD 0x04,R4
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	for _, in := range prog {
		c.StepInstr(in)
	}
	c.Drain()
	for i := 1; i <= 4; i++ {
		if c.Reg(i) != uint8(i) {
			t.Fatalf("R%d = %#x", i, c.Reg(i))
		}
	}
}

func TestPipelineLatency(t *testing.T) {
	// A load's result must be committed exactly PipelineDepth cycles
	// after it is fed.
	c := New()
	c.StepInstr(isa.Instr{Op: isa.OpLdi, Imm: 0x77, RD: 5})
	for i := 1; i < PipelineDepth; i++ {
		if c.Reg(5) != 0 {
			t.Fatalf("R5 written early at cycle %d", i)
		}
		c.Step(0)
	}
	if c.Reg(5) != 0x77 {
		t.Fatalf("R5 = %#x after %d cycles", c.Reg(5), PipelineDepth)
	}
}

func TestUndecodableWordIsBubble(t *testing.T) {
	c := New()
	c.Step(0x1F << 12) // unassigned opcode
	c.Step(0)
	c.Step(0)
	c.Step(0)
	for i := 0; i < isa.NumRegs; i++ {
		if c.Reg(i) != 0 {
			t.Fatalf("R%d modified by trap word", i)
		}
	}
}

// recordingProbe captures every Observe call.
type recordingProbe struct {
	calls map[Component]int
	// override, when set, forces the component's value.
	overrideComp Component
	overrideVal  uint32
	overrideOn   bool
}

func (p *recordingProbe) Observe(comp Component, mode int, value uint32) uint32 {
	if p.calls == nil {
		p.calls = map[Component]int{}
	}
	p.calls[comp]++
	if p.overrideOn && comp == p.overrideComp {
		return p.overrideVal
	}
	return value
}

func TestProbeSeesAllMACComponents(t *testing.T) {
	c := New()
	p := &recordingProbe{}
	c.SetProbe(p)
	prog, _ := isa.Assemble(`
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		OUT R2
	`)
	for _, in := range prog {
		c.StepInstr(in)
		c.Step(0)
		c.Step(0)
	}
	c.Drain()
	for _, comp := range []Component{
		CompMultiplier, CompShifter, CompAddSub, CompMuxA, CompMuxB,
		CompTruncater, CompAccA, CompAccB, CompLimiter, CompBuffer,
		CompRegPortA, CompRegPortB, CompForward, CompOutPort,
	} {
		if p.calls[comp] == 0 {
			t.Errorf("component %s never observed", comp)
		}
	}
}

func TestProbeErrorInjectionPropagates(t *testing.T) {
	// Corrupt the multiplier output during MPYA's execute cycle; the
	// error must reach the destination register and then the output.
	prog, _ := isa.Assemble(`
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		OUT R2
	`)
	run := func(corrupt bool) uint8 {
		c := New()
		p := &recordingProbe{overrideComp: CompMultiplier, overrideVal: 0x5555, overrideOn: corrupt}
		c.SetProbe(p)
		for _, in := range prog {
			c.StepInstr(in)
			c.Step(0)
			c.Step(0)
		}
		c.Drain()
		return c.Output()
	}
	clean := run(false)
	bad := run(true)
	if clean == bad {
		t.Fatalf("multiplier corruption did not reach the output (both %#x)", clean)
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		OUT R2
	`)
	c.Reset()
	if c.Output() != 0 || c.Reg(0) != 0 || c.AccValue(isa.AccA) != 0 || c.Cycle() != 0 {
		t.Fatal("Reset left state behind")
	}
}

// TestRandomProgramsDontPanic fuzzes the core with random (decodable and
// undecodable) words.
func TestRandomProgramsDontPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New()
	for i := 0; i < 20000; i++ {
		c.Step(rng.Uint32() & (1<<isa.Width - 1))
	}
	// Accumulators must stay within 18 bits.
	if c.AccValue(isa.AccA) > Mask18 || c.AccValue(isa.AccB) > Mask18 {
		t.Fatal("accumulator escaped 18-bit range")
	}
}

func TestShiftAmountFromLowNibble(t *testing.T) {
	// The shift amount is RA's low nibble; the high nibble is ignored.
	c := progRun(t, `
		LD 0x10,R0
		LD 0x10,R1
		MPYA R0,R1,R2
		LD 0xF1,R5
		SHIFTA R5,R0,R3
	`)
	if got := c.AccValue(isa.AccA); got != 0x200 {
		t.Fatalf("AccA = %#x, want 0x200 (left-1)", got)
	}
}
