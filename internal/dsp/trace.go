package dsp

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Tracer logs one line per retiring cycle of a behavioral Core run —
// the disassembled instruction entering the pipeline plus the
// architectural state after the clock edge. It is the debugging
// companion to the gate-level VCD dump.
type Tracer struct {
	W io.Writer
	// Regs selects which registers to show (nil = R0..R3).
	Regs []int
}

// Step advances the core one cycle and logs it.
func (t *Tracer) Step(c *Core, word uint32) {
	c.Step(word)
	regs := t.Regs
	if regs == nil {
		regs = []int{0, 1, 2, 3}
	}
	dis := "-"
	if in, err := isa.Decode(word); err == nil {
		dis = in.String()
	}
	fmt.Fprintf(t.W, "%5d  %-22s out=%02x accA=%05x accB=%05x", c.Cycle(), dis,
		c.Output(), c.AccValue(isa.AccA), c.AccValue(isa.AccB))
	for _, r := range regs {
		fmt.Fprintf(t.W, " R%d=%02x", r, c.Reg(r))
	}
	fmt.Fprintln(t.W)
}

// Run traces a whole program (with pipeline drain).
func (t *Tracer) Run(c *Core, prog []isa.Instr) {
	for _, in := range prog {
		t.Step(c, in.Encode())
	}
	for i := 0; i < 3; i++ {
		t.Step(c, 0)
	}
}
