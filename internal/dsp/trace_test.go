package dsp

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestTracer(t *testing.T) {
	var sb strings.Builder
	tr := &Tracer{W: &sb, Regs: []int{3}}
	c := New()
	prog, err := isa.Assemble(`
		LD 0x5A,R3
		NOP
		NOP
		OUT R3
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(c, prog)
	out := sb.String()
	if !strings.Contains(out, "LD 0x5a,R3") {
		t.Errorf("trace missing disassembly:\n%s", out)
	}
	if !strings.Contains(out, "R3=5a") {
		t.Errorf("trace missing register value:\n%s", out)
	}
	if !strings.Contains(out, "out=5a") {
		t.Errorf("trace missing output value:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != len(prog)+3 {
		t.Errorf("trace has %d lines, want %d", lines, len(prog)+3)
	}
	// Undecodable word renders as "-".
	var sb2 strings.Builder
	tr2 := &Tracer{W: &sb2}
	tr2.Step(New(), 0x1F<<12)
	if !strings.Contains(sb2.String(), "-") {
		t.Error("trap word not rendered as '-'")
	}
}
