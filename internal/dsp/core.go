package dsp

import (
	"fmt"

	"repro/internal/isa"
)

// Mask18 masks an accumulator-width (18-bit) value.
const Mask18 = 1<<18 - 1

// ctrl is the decoded control word: the seven MAC control bits the paper
// describes (sub, accumulator select, truncate, two shifter mode bits,
// and the two operand-zeroing mux selects) plus pipeline controls.
type ctrl struct {
	// MAC control bits.
	sub      bool  // adder/subtracter: 1 = subtract (addA - addB)
	accB     bool  // accumulator select: 1 = AccB
	truncEn  bool  // truncater enable
	mode     uint8 // shifter mode (2 bits, see synth.ShifterMode)
	zeroAcc  bool  // adder A operand: 1 = zero instead of shifted acc
	zeroProd bool  // adder B operand: 1 = zero instead of product

	// Pipeline controls.
	macFamily  bool // instruction result comes from the MAC (writes acc)
	isLdi      bool // stage-3 buffer takes the immediate
	isOut      bool // drives the output port in WB
	readSrc    bool // port A reads the Source field (bits 7:4) — OUT/MOV
	writesDest bool
}

// decodeCtrl derives the control word for an operation; it is the
// behavioral counterpart of the second-stage decoder.
func decodeCtrl(op isa.Op, acc isa.Acc) ctrl {
	c := ctrl{
		accB:       acc == isa.AccB,
		macFamily:  op.MacFamily(),
		writesDest: op.WritesDest(),
	}
	switch op {
	case isa.OpLdi, isa.OpLdRnd:
		c.isLdi = true
	case isa.OpMov:
		c.readSrc = true
	case isa.OpOut:
		c.isOut = true
		c.readSrc = true
	case isa.OpMpy:
		c.zeroAcc = true
	case isa.OpMpyT:
		c.zeroAcc = true
		c.truncEn = true
	case isa.OpMacP:
		// acc = acc + prod, shifter passes.
	case isa.OpMacM:
		c.sub = true // acc - prod
	case isa.OpMactP:
		c.truncEn = true
	case isa.OpMactM:
		c.sub = true
		c.truncEn = true
	case isa.OpShift:
		c.mode = 1 // variable
		c.zeroProd = true
	case isa.OpMpyShift:
		c.mode = 2 // left-1
	case isa.OpMpyShiftMac:
		c.mode = 1 // variable
	}
	return c
}

// exRegs are the pipeline registers feeding the execute stage.
type exRegs struct {
	c      ctrl
	opA    uint8 // MAC operand A (also supplies the shift amount nibble)
	opB    uint8 // MAC operand B
	imm    uint8
	srcVal uint8 // source register value for MOV/OUT
	dest   uint8
}

// wbRegs are the pipeline registers feeding the writeback stage. The
// data register doubles as the forwarding (temporary) register.
type wbRegs struct {
	data    uint8
	dest    uint8
	writeEn bool
	outEn   bool
	outVal  uint8
}

// Core is the behavioral DSP core. The zero value is not ready;
// use New.
type Core struct {
	probe Probe

	regs    [isa.NumRegs]uint8
	accA    uint32 // 18-bit
	accB    uint32 // 18-bit
	outPort uint8

	ir uint32 // stage-1 instruction register
	ex exRegs
	wb wbRegs

	cycle int64
}

// New returns a reset Core with no probe installed.
func New() *Core { return &Core{} }

// SetProbe installs (or removes, with nil) the component probe.
func (c *Core) SetProbe(p Probe) { c.probe = p }

// Reset returns all architectural and pipeline state to zero.
func (c *Core) Reset() {
	p := c.probe
	*c = Core{probe: p}
}

// Output returns the current value of the 8-bit output port.
func (c *Core) Output() uint8 { return c.outPort }

// Reg returns register i's current value.
func (c *Core) Reg(i int) uint8 { return c.regs[i] }

// SetReg pokes a register (test and metrics setup).
func (c *Core) SetReg(i int, v uint8) { c.regs[i] = v }

// AccValue returns the selected accumulator's raw 18-bit contents.
func (c *Core) AccValue(a isa.Acc) uint32 {
	if a == isa.AccB {
		return c.accB
	}
	return c.accA
}

// SetAcc pokes an accumulator (test and metrics setup).
func (c *Core) SetAcc(a isa.Acc, v uint32) {
	if a == isa.AccB {
		c.accB = v & Mask18
	} else {
		c.accA = v & Mask18
	}
}

// Cycle returns the number of Step calls since reset.
func (c *Core) Cycle() int64 { return c.cycle }

func (c *Core) observe(comp Component, mode int, value uint32) uint32 {
	if c.probe == nil {
		return value
	}
	mask := uint32(1)<<uint(comp.Width()) - 1
	return c.probe.Observe(comp, mode, value&mask) & mask
}

func (c *Core) signal(sig Signal, value uint32) {
	if c.probe == nil {
		return
	}
	sp, ok := c.probe.(SignalProbe)
	if !ok {
		return
	}
	mask := uint32(1)<<uint(sig.Width()) - 1
	sp.Signal(sig, value&mask)
}

// SignExtend18 interprets an 18-bit value as signed.
func SignExtend18(v uint32) int32 {
	v &= Mask18
	if v>>17&1 == 1 {
		return int32(v) - (1 << 18)
	}
	return int32(v)
}

// shift18 mirrors synth.BarrelShifter: mode pass/variable/left1/right1,
// 4-bit signed amount, zero fill left, sign fill right.
func shift18(v uint32, mode uint8, amt uint8) uint32 {
	sv := SignExtend18(v)
	switch mode {
	case 0:
		return v & Mask18
	case 1:
		s := int(amt & 0xF)
		if s >= 8 {
			s -= 16
		}
		if s >= 0 {
			return uint32(sv<<uint(s)) & Mask18
		}
		return uint32(sv>>uint(-s)) & Mask18
	case 2:
		return uint32(sv<<1) & Mask18
	case 3:
		return uint32(sv>>1) & Mask18
	}
	panic(fmt.Sprintf("dsp: bad shifter mode %d", mode))
}

// limit8 mirrors synth.Limiter(lo=4, outW=8): the 18-bit (10.8 fixed
// point) value is windowed to bits [11:4] (4.4 output format) with
// saturation.
func limit8(v uint32) uint8 {
	sv := SignExtend18(v)
	w := sv >> 4
	if w > 127 {
		return 0x7F
	}
	if w < -128 {
		return 0x80
	}
	return uint8(w)
}

// Step advances one clock cycle, fetching instrWord (17 bits) into the
// pipeline and retiring whatever reaches writeback.
func (c *Core) Step(instrWord uint32) {
	// ---- Stage 2: decode + register read (uses c.ir) ----
	var exNext exRegs
	if in, err := isa.Decode(c.ir); err == nil {
		exNext.c = decodeCtrl(in.Op, in.Acc)
		exNext.imm = in.Imm
		exNext.dest = in.RD

		// Read-port addresses come from fixed instruction bit positions,
		// as in the hardware: port A reads bits [11:8] (RegA) except for
		// OUT/MOV, which read the Source field in bits [7:4]; port B
		// always reads bits [7:4]. Loads therefore read two
		// pseudorandomly addressed registers — harmless architecturally
		// and exactly what gives the multiplier its high controllability
		// under the load instruction in the paper's Table 2.
		addrA := uint8(c.ir >> 8 & 0xF)
		if exNext.c.readSrc {
			addrA = uint8(c.ir >> 4 & 0xF)
		}
		addrB := uint8(c.ir >> 4 & 0xF)

		fwd := c.observe(CompForward, 0, uint32(c.wb.data))
		readA := uint32(c.regs[addrA])
		if c.wb.writeEn && c.wb.dest == addrA {
			readA = fwd
		}
		readA = c.observe(CompRegPortA, 0, readA)
		readB := uint32(c.regs[addrB])
		if c.wb.writeEn && c.wb.dest == addrB {
			readB = fwd
		}
		readB = c.observe(CompRegPortB, 0, readB)

		exNext.opA = uint8(readA)
		exNext.opB = uint8(readB)
		exNext.srcVal = uint8(readA)
	}
	// Undecodable words behave as NOP bubbles (the template architecture
	// never forwards unassigned opcodes to the core).

	// ---- Execute stage: MAC datapath (uses c.ex, current accumulators) ----
	ex := &c.ex
	c.signal(SigOpA, uint32(ex.opA))
	c.signal(SigOpB, uint32(ex.opB))
	c.signal(SigShiftAmt, uint32(ex.opA&0xF))
	c.signal(SigImm, uint32(ex.imm))
	c.signal(SigSrcVal, uint32(ex.srcVal))
	prodS := int32(int8(ex.opA)) * int32(int8(ex.opB))
	prod := c.observe(CompMultiplier, 0, uint32(prodS)&Mask18)

	accAVal := c.observe(CompAccA, 0, c.accA)
	accBVal := c.observe(CompAccB, 0, c.accB)
	accSel := accAVal
	if ex.c.accB {
		accSel = accBVal
	}
	c.signal(SigAccSel, accSel)
	shifted := c.observe(CompShifter, int(ex.c.mode), shift18(accSel, ex.c.mode, ex.opA))

	addA := shifted
	if ex.c.zeroAcc {
		addA = 0
	}
	addA = c.observe(CompMuxA, 0, addA)
	addB := prod
	if ex.c.zeroProd {
		addB = 0
	}
	addB = c.observe(CompMuxB, 0, addB)

	var sum uint32
	subMode := 0
	if ex.c.sub {
		sum = (addA - addB) & Mask18
		subMode = 1
	} else {
		sum = (addA + addB) & Mask18
	}
	sum = c.observe(CompAddSub, subMode, sum)

	truncated := sum
	if ex.c.truncEn {
		truncated &^= 0xFF
	}
	truncated = c.observe(CompTruncater, 0, truncated)

	macOut := c.observe(CompLimiter, 0, uint32(limit8(truncated)))

	bufVal := uint32(ex.srcVal)
	if ex.c.isLdi {
		bufVal = uint32(ex.imm)
	}
	bufVal = c.observe(CompBuffer, 0, bufVal)

	var wbNext wbRegs
	wbNext.dest = ex.dest
	wbNext.writeEn = ex.c.writesDest
	if ex.c.macFamily {
		wbNext.data = uint8(macOut)
	} else {
		wbNext.data = uint8(bufVal)
	}
	wbNext.outEn = ex.c.isOut
	wbNext.outVal = uint8(bufVal)

	// Accumulator update (end of execute stage).
	accANext, accBNext := c.accA, c.accB
	if ex.c.macFamily {
		if ex.c.accB {
			accBNext = truncated
		} else {
			accANext = truncated
		}
	}

	// ---- Writeback stage: commit (uses c.wb) ----
	regsNext := c.regs
	if c.wb.writeEn {
		regsNext[c.wb.dest] = c.wb.data
	}
	outNext := c.outPort
	if c.wb.outEn {
		c.signal(SigOutVal, uint32(c.wb.outVal))
		outNext = uint8(c.observe(CompOutPort, 0, uint32(c.wb.outVal)))
	}

	// ---- Clock edge: commit all state simultaneously ----
	c.regs = regsNext
	c.outPort = outNext
	c.accA = accANext & Mask18
	c.accB = accBNext & Mask18
	c.wb = wbNext
	c.ex = exNext
	c.ir = instrWord & (1<<isa.Width - 1)
	c.cycle++
}

// StepInstr is Step on an assembled instruction.
func (c *Core) StepInstr(in isa.Instr) { c.Step(in.Encode()) }

// State is a snapshot of the core's architectural state (registers,
// accumulators, output port). Pipeline registers are not captured: take
// snapshots at drained points, the way an OS context switch would.
type State struct {
	Regs    [isa.NumRegs]uint8
	AccA    uint32
	AccB    uint32
	OutPort uint8
}

// SaveState captures the architectural state (drain the pipeline first).
func (c *Core) SaveState() State {
	return State{Regs: c.regs, AccA: c.accA, AccB: c.accB, OutPort: c.outPort}
}

// RestoreState reloads a snapshot taken with SaveState.
func (c *Core) RestoreState(s State) {
	c.regs = s.Regs
	c.accA = s.AccA & Mask18
	c.accB = s.AccB & Mask18
	c.outPort = s.OutPort
}

// Run feeds the program followed by enough NOPs to drain the pipeline.
func (c *Core) Run(prog []isa.Instr) {
	for _, in := range prog {
		c.StepInstr(in)
	}
	c.Drain()
}

// Drain feeds NOPs until the pipeline is empty (three cycles).
func (c *Core) Drain() {
	for i := 0; i < 3; i++ {
		c.Step(0)
	}
}

// PipelineDepth is the number of stages (and the latency, in cycles,
// from feeding an instruction to its writeback).
const PipelineDepth = 4

// EXLatency is the number of cycles after feeding an instruction at
// which it occupies the execute stage (fetch + decode).
const EXLatency = 2
