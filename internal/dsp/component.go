// Package dsp is the cycle-accurate behavioral model of the paper's
// industry-based pipelined DSP core (Figures 4–6): a four-stage RISC
// load/store pipeline around a MAC datapath with an 8×8→18-bit signed
// multiplier, a four-mode arithmetic shifter, an 18-bit adder/subtracter,
// two 18-bit accumulators, a fraction truncater and a saturating limiter,
// fed from a sixteen-entry 8-bit register file with a single forwarding
// (temporary) register resolving read-after-write hazards.
//
// The model exposes a Probe hook on every named datapath component: the
// testability-metrics engine (package metrics) monitors component output
// distributions through it for the controllability metric and overrides
// component outputs with random erroneous values for the observability
// metric, exactly the role the paper's modified-VHDL simulations play.
//
// Pipeline contract: the result of instruction i is visible to
// instruction i+2 (through the forwarding register) and later (through
// the register file). Instruction i+1 reads the pre-i value — a classic
// exposed delay slot the self-test program generator must respect.
package dsp

import "fmt"

// Component identifies a probed datapath component.
type Component uint8

// Datapath components, in the order the paper's Table 2 columns walk the
// MAC datapath of Figure 5 plus the surrounding pipeline of Figure 6.
const (
	// CompMultiplier is the 8×8 signed multiplier (18-bit sign-extended
	// product output).
	CompMultiplier Component = iota
	// CompShifter is the arithmetic shifter (modes: pass, variable,
	// left-1, right-1 — its two control bits give it four metric columns).
	CompShifter
	// CompAddSub is the 18-bit adder/subtracter (two metric columns: add
	// and subtract mode).
	CompAddSub
	// CompMuxA is the adder A-operand mux (shifted accumulator or zero).
	CompMuxA
	// CompMuxB is the adder B-operand mux (product or zero) — the
	// reconvergent-fanout mux the paper's Section 3.2 calls out.
	CompMuxB
	// CompTruncater clears the bits right of the binary point.
	CompTruncater
	// CompAccA is accumulator A (18-bit).
	CompAccA
	// CompAccB is accumulator B (18-bit).
	CompAccB
	// CompLimiter saturates the 18-bit accumulator value to the 8-bit
	// MAC result.
	CompLimiter
	// CompRegPortA is register-file read port A (after forwarding).
	CompRegPortA
	// CompRegPortB is register-file read port B (after forwarding).
	CompRegPortB
	// CompForward is the forwarding (temporary) register output.
	CompForward
	// CompBuffer is the stage-3 buffer feeding loads, moves and OUT.
	CompBuffer
	// CompOutPort is the 8-bit output port register.
	CompOutPort
	numComponents
)

type componentInfo struct {
	name  string
	width int
	modes int // number of control-bit modes (1 = unmoded)
}

var componentTable = [numComponents]componentInfo{
	CompMultiplier: {"Multiplier", 18, 1},
	CompShifter:    {"Shifter", 18, 4},
	CompAddSub:     {"AddSub", 18, 2},
	CompMuxA:       {"MuxA", 18, 1},
	CompMuxB:       {"MuxB", 18, 1},
	CompTruncater:  {"Truncater", 18, 1},
	CompAccA:       {"AccA", 18, 1},
	CompAccB:       {"AccB", 18, 1},
	CompLimiter:    {"Limiter", 8, 1},
	CompRegPortA:   {"RegPortA", 8, 1},
	CompRegPortB:   {"RegPortB", 8, 1},
	CompForward:    {"Forward", 8, 1},
	CompBuffer:     {"Buffer", 8, 1},
	CompOutPort:    {"OutPort", 8, 1},
}

// Components returns every component in a stable order.
func Components() []Component {
	out := make([]Component, 0, int(numComponents))
	for c := Component(0); c < numComponents; c++ {
		out = append(out, c)
	}
	return out
}

// Name returns the component's display name.
func (c Component) Name() string { return componentTable[c].name }

// Width returns the component's output width in bits.
func (c Component) Width() int { return componentTable[c].width }

// Modes returns the number of control-bit modes the component has; a
// metrics table allocates one column per mode.
func (c Component) Modes() int { return componentTable[c].modes }

// String implements fmt.Stringer.
func (c Component) String() string {
	if int(c) < len(componentTable) {
		return componentTable[c].name
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// ShifterModeName names the shifter's four control-bit modes.
func ShifterModeName(mode int) string {
	switch mode {
	case 0:
		return "pass"
	case 1:
		return "variable"
	case 2:
		return "left1"
	case 3:
		return "right1"
	}
	return "?"
}

// Probe observes (and may override) component outputs during behavioral
// simulation. Observe is called once per active component evaluation per
// cycle; mode is the component's active control-bit mode (0 for unmoded
// components). The returned value replaces the component's output,
// truncated to the component width; return value unchanged to monitor.
type Probe interface {
	Observe(comp Component, mode int, value uint32) uint32
}

// Signal identifies a raw datapath signal that is not itself a component
// output. Together with component outputs, signals give the metrics
// engine every component's *input* ports — the paper computes the
// controllability metric on component inputs.
type Signal uint8

// Datapath signals reported through SignalProbe.
const (
	// SigOpA is the execute-stage A operand (also the shift amount source).
	SigOpA Signal = iota
	// SigOpB is the execute-stage B operand.
	SigOpB
	// SigShiftAmt is the 4-bit signed shift amount (low nibble of opA).
	SigShiftAmt
	// SigAccSel is the selected accumulator value feeding the shifter.
	SigAccSel
	// SigImm is the execute-stage immediate field.
	SigImm
	// SigSrcVal is the execute-stage source-register value.
	SigSrcVal
	// SigOutVal is the writeback-stage output-port value.
	SigOutVal
	numSignals
)

var signalInfo = [numSignals]struct {
	name  string
	width int
}{
	SigOpA:      {"opA", 8},
	SigOpB:      {"opB", 8},
	SigShiftAmt: {"shiftAmt", 4},
	SigAccSel:   {"accSel", 18},
	SigImm:      {"imm", 8},
	SigSrcVal:   {"srcVal", 8},
	SigOutVal:   {"outVal", 8},
}

// Name returns the signal's display name.
func (s Signal) Name() string { return signalInfo[s].name }

// Width returns the signal's width in bits.
func (s Signal) Width() int { return signalInfo[s].width }

// String implements fmt.Stringer.
func (s Signal) String() string { return signalInfo[s].name }

// SignalProbe is an optional extension of Probe: when the installed
// probe implements it, the core additionally reports raw datapath
// signals (monitoring only — signals cannot be overridden).
type SignalProbe interface {
	Signal(sig Signal, value uint32)
}
