package selftest

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func lintMsgs(t *testing.T, p *Program) string {
	t.Helper()
	var sb strings.Builder
	for _, w := range Lint(p) {
		sb.WriteString(w.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestLintCleanProgram(t *testing.T) {
	p := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 2},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
	if msgs := lintMsgs(t, p); msgs != "" {
		t.Fatalf("clean program flagged:\n%s", msgs)
	}
}

func TestLintDelaySlot(t *testing.T) {
	p := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpMov, Src: 1, RD: 2}, // one cycle after the write
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
	if msgs := lintMsgs(t, p); !strings.Contains(msgs, "delay slot") {
		t.Fatalf("delay slot not flagged:\n%s", msgs)
	}
}

func TestLintUnobservedResult(t *testing.T) {
	p := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpLdRnd, RD: 2, RndImm: true}, // dead: overwritten below, never read
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 2},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
	msgs := lintMsgs(t, p)
	if !strings.Contains(msgs, "overwritten before any OUT") {
		t.Fatalf("dead result not flagged:\n%s", msgs)
	}
	if strings.Count(msgs, "overwritten before any OUT") != 1 {
		t.Fatalf("expected exactly one dead-result warning:\n%s", msgs)
	}
}

func TestLintDeadMacWithUnusedAcc(t *testing.T) {
	// A MAC whose destination dies AND whose accumulator is never read
	// again is genuinely wasted — must be flagged.
	p := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccB, RA: 0, RB: 1, RD: 2}, // AccB never reused
		{Op: isa.OpMov, Src: 0, RD: 2},                      // overwrites R2 unseen
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
	msgs := lintMsgs(t, p)
	if !strings.Contains(msgs, "overwritten before any OUT") {
		t.Fatalf("dead MAC not flagged:\n%s", msgs)
	}
}

func TestLintNoRandomData(t *testing.T) {
	p := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdi, Imm: 3, RD: 0},
		{Op: isa.OpLdi, Imm: 5, RD: 1},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 2},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
	if msgs := lintMsgs(t, p); !strings.Contains(msgs, "no pseudorandom loads") {
		t.Fatalf("constant-only loop not flagged:\n%s", msgs)
	}
}

func TestLintUndefinedRead(t *testing.T) {
	p := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 9, RD: 2}, // R9 never written
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
	if msgs := lintMsgs(t, p); !strings.Contains(msgs, "reads R9") {
		t.Fatalf("undefined read not flagged:\n%s", msgs)
	}
}

func TestLintEmptyLoop(t *testing.T) {
	if msgs := lintMsgs(t, &Program{}); !strings.Contains(msgs, "empty loop") {
		t.Fatalf("empty loop not flagged: %q", msgs)
	}
}

func TestGeneratedProgramLintsClean(t *testing.T) {
	g := sharedGenerator()
	prog, _ := g.Generate()
	var real []LintWarning
	for _, w := range Lint(prog) {
		real = append(real, w)
	}
	if len(real) != 0 {
		t.Fatalf("generator output flagged:\n%v\n%s", real, prog)
	}
}
