package selftest

import (
	"testing"

	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
)

func TestBoostDuplicatesAndStaysClean(t *testing.T) {
	prog := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpShift, Acc: isa.AccA, RA: 0, RB: 1, RD: 3},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 3},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 5},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 5},
	}}
	boosted := Boost(prog, map[isa.Op]bool{isa.OpShift: true}, 2)
	shiftCount := 0
	for _, in := range boosted.Loop {
		if in.Op == isa.OpShift {
			shiftCount++
		}
	}
	if shiftCount != 3 {
		t.Fatalf("shift count after boost = %d, want 3", shiftCount)
	}
	mpyCount := 0
	for _, in := range boosted.Loop {
		if in.Op == isa.OpMpy {
			mpyCount++
		}
	}
	if mpyCount != 1 {
		t.Fatalf("mpy duplicated unexpectedly: %d", mpyCount)
	}
	if v := HazardViolations(boosted.Loop); len(v) != 0 {
		t.Fatalf("boosted loop has hazards: %v", v)
	}
}

func TestShifterConstraintStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("constrained ATPG over the full shifter fault list is slow")
	}
	results, err := ShifterConstraintStudy(PaperShifterSets())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ConstraintResult{}
	for _, r := range results {
		byLabel[r.Label] = r
		t.Logf("%-12s coverage %6.2f%% (%d/%d testable, %d aborted)",
			r.Label, 100*r.Coverage(), r.Testable, r.Total, r.Aborted)
	}
	all := byLabel["all modes"].Coverage()
	// The paper's shape (its absolute ceilings differ because its
	// shifter netlist has no redundant logic): banning 11 or 10 barely
	// matters; banning 01 collapses coverage; only{00,01} stays close.
	if byLabel["ban 11"].Coverage() < 0.94*all {
		t.Errorf("ban 11 should be nearly free: %.3f vs %.3f", byLabel["ban 11"].Coverage(), all)
	}
	if byLabel["ban 10"].Coverage() < 0.94*all {
		t.Errorf("ban 10 should be cheap: %.3f vs %.3f", byLabel["ban 10"].Coverage(), all)
	}
	if byLabel["ban 01"].Coverage() > 0.5*all {
		t.Errorf("ban 01 should collapse coverage: %.3f vs %.3f", byLabel["ban 01"].Coverage(), all)
	}
	if byLabel["only 00,01"].Coverage() < 0.85*all {
		t.Errorf("only{00,01} should stay close: %.3f vs %.3f", byLabel["only 00,01"].Coverage(), all)
	}
}

func TestTopUpSynthesizesVerifiedPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("needs gate-level core + fault simulation")
	}
	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	// Run a very short random-program fault simulation to leave plenty
	// of undetected faults, then top up the multiplier region.
	prog := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 3},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 3},
	}}
	vecs := Expand(prog, ExpandOptions{Iterations: 10})
	mult := fault.RegionFaults(core.Netlist, "Multiplier")
	collapsed, _ := fault.Collapse(core.Netlist, mult)
	res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{Faults: collapsed})
	if err != nil {
		t.Fatal(err)
	}
	var undetected []fault.Fault
	for i, c := range res.DetectedAt {
		if c < 0 {
			undetected = append(undetected, res.Faults[i])
		}
	}
	if len(undetected) == 0 {
		t.Skip("short run already detected everything")
	}
	top := TopUp(core, undetected, 5)
	t.Logf("top-up: %d justified, %d unjustified, %d untestable (from %d undetected)",
		top.Justified, top.Unjustified, top.Untestable, len(undetected))
	if top.Justified == 0 {
		t.Fatal("expected at least one verified ATPG pattern")
	}
	if len(top.Once) == 0 {
		t.Fatal("no once-instructions emitted")
	}
}
