package selftest

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestProgramSourceRoundTrip(t *testing.T) {
	p := &Program{
		Once: []isa.Instr{
			{Op: isa.OpLdi, Imm: 0x42, RD: 1, Comment: "atpg pattern"},
			{Op: isa.OpMpy, Acc: isa.AccA, RA: 1, RB: 1, RD: 2},
			{Op: isa.OpOut, Src: 2},
		},
		Loop: []isa.Instr{
			{Op: isa.OpLdRnd, RD: 0, RndImm: true, Comment: "operand"},
			{Op: isa.OpNop},
			{Op: isa.OpMacP, Acc: isa.AccB, RA: 0, RB: 1, RD: 3},
			{Op: isa.OpOut, Src: 3},
		},
	}
	src := p.Source()
	q, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v\n%s", err, src)
	}
	if len(q.Once) != len(p.Once) || len(q.Loop) != len(p.Loop) {
		t.Fatalf("sections: once %d/%d loop %d/%d", len(q.Once), len(p.Once), len(q.Loop), len(p.Loop))
	}
	for i := range p.Once {
		if q.Once[i].Encode() != p.Once[i].Encode() {
			t.Fatalf("once[%d]: %s != %s", i, q.Once[i], p.Once[i])
		}
	}
	for i := range p.Loop {
		if q.Loop[i].Encode() != p.Loop[i].Encode() {
			t.Fatalf("loop[%d]: %s != %s", i, q.Loop[i], p.Loop[i])
		}
	}
	if q.Loop[0].Comment != "operand" {
		t.Fatalf("comment lost: %q", q.Loop[0].Comment)
	}
	// The RND template annotation must survive the round trip.
	if q.Loop[0].Op != isa.OpLdRnd {
		t.Fatalf("template load became %v", q.Loop[0].Op)
	}
}

func TestParseProgramPlainAsm(t *testing.T) {
	p, err := ParseProgram("LD RND,R1\nMPYA R1,R1,R2\nOUT R2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loop) != 3 || len(p.Once) != 0 {
		t.Fatalf("sections: %d/%d", len(p.Once), len(p.Loop))
	}
}

func TestParseProgramErrors(t *testing.T) {
	if _, err := ParseProgram(".bogus\nNOP\n"); err == nil || !strings.Contains(err.Error(), "directive") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseProgram(".once\nNOP\n"); err == nil {
		t.Fatal("empty loop should error")
	}
	if _, err := ParseProgram("BOGUS\n"); err == nil {
		t.Fatal("bad mnemonic should error")
	}
}

func TestGeneratedProgramRoundTrips(t *testing.T) {
	g := sharedGenerator()
	prog, _ := g.Generate()
	q, err := ParseProgram(prog.Source())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Loop) != len(prog.Loop) {
		t.Fatalf("loop %d != %d", len(q.Loop), len(prog.Loop))
	}
	for i := range prog.Loop {
		if q.Loop[i].Encode() != prog.Loop[i].Encode() ||
			q.Loop[i].RndImm != prog.Loop[i].RndImm {
			t.Fatalf("loop[%d] mismatch: %s vs %s", i, q.Loop[i], prog.Loop[i])
		}
	}
	// Expansion of the round-tripped program is identical.
	a := Expand(prog, ExpandOptions{Iterations: 5})
	b := Expand(q, ExpandOptions{Iterations: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vector %d differs after round trip", i)
		}
	}
}
