// Package selftest implements the paper's contribution: metrics-driven
// generation of self-test programs for the DSP core, and the template
// architecture that turns a small looped program into a long
// pseudorandom test-vector stream.
//
// The flow follows the paper's Figure 3:
//
//	Phase 1 (global coverage):  greedy cover of the metrics table —
//	    repeatedly pick the instruction covering the most remaining
//	    component-mode columns, after removing columns covered by the
//	    automatic Load/Out wrappers.
//	Phase 2 (specific coverage): for columns no single instruction
//	    covers, try knowledge-based instruction sequences (e.g. follow a
//	    MAC with a SHIFT and an OUT to observe the accumulators) and
//	    validate them with the metrics engine; columns whose control-bit
//	    mode no instruction can produce are discarded.
//	Phase 3 (optional, gate level): control-bit constraint analysis,
//	    execution-frequency boosting, and component-local ATPG top-up
//	    patterns executed once outside the loop.
//
// Expansion mirrors the paper's Figure 2 template architecture: the
// program is a template whose load immediates are instantiated from
// LFSR1 and whose register fields are XOR-masked with LFSR2 once per
// loop iteration, so each pass exercises a different register group
// while preserving the program's dataflow (XOR with a constant mask is a
// bijection on register numbers).
package selftest

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/lfsr"
)

// Program is a self-test program template. Loop is executed repeatedly
// with fresh LFSR data; Once holds Phase-3 ATPG top-up instructions that
// run a single time before the loop (the paper stores them in memory but
// executes them once).
type Program struct {
	Once []isa.Instr
	Loop []isa.Instr
}

// Len returns the loop length in instructions (the paper's "34
// instructions" count refers to the loop body).
func (p *Program) Len() int { return len(p.Loop) }

// String renders the program in the style of the paper's Figure 7.
func (p *Program) String() string {
	var sb strings.Builder
	if len(p.Once) > 0 {
		sb.WriteString("// once (Phase-3 deterministic patterns)\n")
		sb.WriteString(isa.Disassemble(p.Once))
		sb.WriteString("// loop\n")
	}
	sb.WriteString(isa.Disassemble(p.Loop))
	return sb.String()
}

// ExpandOptions configure template expansion.
type ExpandOptions struct {
	// Iterations is the number of passes through the loop body.
	Iterations int
	// Seed1 and Seed2 seed LFSR1 (8-bit immediate data) and LFSR2
	// (register-field mask). Zero seeds select the LFSR default.
	Seed1, Seed2 uint64
	// Taps1 overrides LFSR1's feedback polynomial (a 16-bit tap mask);
	// zero keeps the built-in primitive polynomial. Evolved programs
	// carry their polynomial gene here.
	Taps1 uint64
	// ReseedEvery, when > 0, reseeds LFSR1 at the top of every
	// ReseedEvery-th loop iteration, cycling through Reseeds — the
	// hybrid-BIST deterministic reseed schedule. Empty Reseeds disables
	// reseeding.
	ReseedEvery int
	Reseeds     []uint64
	// DisableRegMask turns off LFSR2 register rotation (ablation).
	DisableRegMask bool
}

// Expand simulates the template architecture: it instantiates the
// program's template fields and returns the instruction-word stream the
// core would receive, ready for fault simulation (one 17-bit word per
// cycle, packed for fault.Vectors).
func Expand(p *Program, opts ExpandOptions) fault.Vectors {
	var l1 *lfsr.LFSR
	if opts.Taps1 != 0 {
		var err error
		if l1, err = lfsr.NewWithTaps(16, opts.Taps1, opts.Seed1|1); err != nil {
			panic(fmt.Sprintf("selftest: bad LFSR1 taps %#x: %v", opts.Taps1, err))
		}
	} else {
		l1 = lfsr.MustNew(16, opts.Seed1|1)
	}
	l2 := lfsr.MustNew(12, opts.Seed2|1)
	vecs := make(fault.Vectors, 0, len(p.Once)+opts.Iterations*len(p.Loop))
	for _, in := range p.Once {
		vecs = append(vecs, uint64(instantiate(in, l1, 0)))
	}
	reseed := 0
	for it := 0; it < opts.Iterations; it++ {
		if opts.ReseedEvery > 0 && len(opts.Reseeds) > 0 && it > 0 && it%opts.ReseedEvery == 0 {
			l1.Reseed(opts.Reseeds[reseed%len(opts.Reseeds)])
			reseed++
		}
		mask := uint8(0)
		if !opts.DisableRegMask {
			mask = uint8(l2.Next() & 0xF)
		}
		for _, in := range p.Loop {
			vecs = append(vecs, uint64(instantiate(in, l1, mask)))
		}
	}
	return vecs
}

// instantiate resolves one template instruction: random immediates from
// LFSR1 and register-field rotation by the iteration mask. The same mask
// applies to every register field so intra-iteration dataflow (which
// register feeds which consumer) is preserved.
func instantiate(in isa.Instr, l1 *lfsr.LFSR, mask uint8) uint32 {
	if in.Op == isa.OpLdRnd || (in.RndImm && in.Op == isa.OpLdi) {
		in.Imm = uint8(l1.NextBits(8))
		in.Op = isa.OpLdi
	}
	if mask != 0 {
		in.RA ^= mask & 0xF
		in.RB ^= mask & 0xF
		in.RD ^= mask & 0xF
		in.Src ^= mask & 0xF
	}
	return in.Encode()
}

// HazardViolations reports loop positions whose instruction reads a
// register written exactly one instruction earlier — the pipeline's
// exposed delay slot, where the read returns the old value. The check
// wraps around the loop boundary. The generator schedules around these;
// the checker guards hand-written programs.
func HazardViolations(loop []isa.Instr) []int {
	var bad []int
	n := len(loop)
	for i := 0; i < n; i++ {
		prev := loop[(i-1+n)%n]
		if !prev.Op.WritesDest() {
			continue
		}
		cur := loop[i]
		reads := readRegs(cur)
		for _, r := range reads {
			if r == prev.RD {
				bad = append(bad, i)
				break
			}
		}
	}
	return bad
}

// readRegs lists the registers an instruction reads.
func readRegs(in isa.Instr) []uint8 {
	switch in.Op.Format() {
	case isa.Format1:
		if in.Op.UsesSourceRegs() {
			return []uint8{in.RA, in.RB}
		}
		return nil
	case isa.Format3, isa.Format4:
		return []uint8{in.Src}
	}
	return nil
}

// mustParse assembles one line, panicking on error (generator-internal
// program fragments are compile-time constants in spirit).
func mustParse(line string) isa.Instr {
	in, err := isa.Parse(line)
	if err != nil {
		panic(fmt.Sprintf("selftest: bad internal fragment %q: %v", line, err))
	}
	return in
}
