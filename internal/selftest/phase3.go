package selftest

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/dsp"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/synth"
)

// ---- Enhancement 1: control-bit constraint analysis (Section 3.4) ----

// ConstraintResult reports the achievable stuck-at coverage of a
// component when its control bits are restricted to an allowed mode set,
// determined exactly by constrained PODEM per collapsed fault.
type ConstraintResult struct {
	Label    string
	Allowed  []uint8
	Testable int
	Total    int
	Aborted  int
}

// Coverage returns testable/total.
func (r ConstraintResult) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Testable) / float64(r.Total)
}

// ShifterConstraintStudy reproduces the paper's shifter analysis: for
// each allowed-mode set, how many of the standalone shifter's collapsed
// faults remain testable. The flow is the classic hybrid a commercial
// tool uses: constrained random fault simulation detects the easy bulk,
// then constrained PODEM settles each survivor exactly. The paper's
// conclusion — mode 01 (variable) is essential while 10/11 are nearly
// redundant — justifies discarding those metric columns.
func ShifterConstraintStudy(sets []ConstraintSet) ([]ConstraintResult, error) {
	b := logic.NewBuilder()
	data := b.InputBus("d", 18)
	amt := b.InputBus("amt", 4)
	mode := b.InputBus("mode", 2)
	out := synth.BarrelShifter(b, data, amt, mode)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		return nil, err
	}
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	results := make([]ConstraintResult, 0, len(sets))
	for _, set := range sets {
		res := ConstraintResult{Label: set.Label, Allowed: set.Modes, Total: len(faults)}

		// Random pass: 18+4 data/amount bits pseudorandom, mode cycling
		// through the allowed set. Inputs are ordered d, amt, mode.
		const randVectors = 4096
		l := lfsr.MustNew(24, 0xBEEF)
		vecs := make(fault.Vectors, randVectors)
		for cycle := range vecs {
			v := l.NextBits(3) & (1<<22 - 1)
			m := set.Modes[cycle%len(set.Modes)]
			vecs[cycle] = v | uint64(m)<<22
		}
		sim, err := fault.Simulate(n, vecs, fault.SimOptions{Faults: faults})
		if err != nil {
			return nil, err
		}

		// Exact pass for survivors.
		for i, f := range faults {
			if sim.DetectedAt[i] >= 0 {
				res.Testable++
				continue
			}
			status := atpg.Untestable
			for _, m := range set.Modes {
				fixed := map[logic.NetID]bool{
					mode[0]: m&1 == 1,
					mode[1]: m&2 == 2,
				}
				r := atpg.Generate(n, f, atpg.Options{Fixed: fixed, MaxBacktracks: 8000})
				if r.Status == atpg.Detected {
					status = atpg.Detected
					break
				}
				if r.Status == atpg.Aborted {
					status = atpg.Aborted
				}
			}
			switch status {
			case atpg.Detected:
				res.Testable++
			case atpg.Aborted:
				res.Aborted++
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// ConstraintSet names an allowed control-bit mode set.
type ConstraintSet struct {
	Label string
	Modes []uint8
}

// PaperShifterSets returns the five constraint sets of Section 3.4.
func PaperShifterSets() []ConstraintSet {
	return []ConstraintSet{
		{Label: "all modes", Modes: []uint8{0, 1, 2, 3}},
		{Label: "ban 11", Modes: []uint8{0, 1, 2}},
		{Label: "ban 00", Modes: []uint8{1, 2, 3}},
		{Label: "ban 01", Modes: []uint8{0, 2, 3}},
		{Label: "ban 10", Modes: []uint8{0, 1, 3}},
		{Label: "only 00,01", Modes: []uint8{0, 1}},
	}
}

// ---- Enhancement 2: execution-frequency boosting (Section 3.4) ----

// Boost returns a program whose loop executes instructions of the given
// operations (with their immediately following OUT wrappers) extra times
// per iteration, speeding coverage of slow components so the total test
// length can shrink. Each extra copy is preceded by fresh pseudorandom
// operand loads — a duplicate fed the same operands would recompute the
// same values and add nothing.
func Boost(p *Program, ops map[isa.Op]bool, extraCopies int) *Program {
	var loop []isa.Instr
	for i := 0; i < len(p.Loop); i++ {
		in := p.Loop[i]
		loop = append(loop, in)
		if !ops[in.Op] || !in.Op.MacFamily() {
			continue
		}
		block := []isa.Instr{in}
		// Carry the wrapper OUT (and any delay-slot NOP before it).
		for j := i + 1; j < len(p.Loop) && j <= i+2; j++ {
			next := p.Loop[j]
			if next.Op == isa.OpNop || (next.Op == isa.OpOut && next.Src == in.RD) {
				block = append(block, next)
				if next.Op == isa.OpOut {
					break
				}
			} else {
				break
			}
		}
		for c := 0; c < extraCopies; c++ {
			loop = append(loop,
				isa.Instr{Op: isa.OpLdRnd, RD: in.RA, RndImm: true, Comment: "phase 3: boost operand"},
				isa.Instr{Op: isa.OpLdRnd, RD: in.RB, RndImm: true, Comment: "phase 3: boost operand"})
			for _, bi := range block {
				bi.Comment = "phase 3: frequency boost"
				loop = append(loop, bi)
			}
		}
	}
	return &Program{Once: p.Once, Loop: fixHazards(loop)}
}

// ---- Enhancement 3: ATPG top-up for random-resistant faults ----

// TopUpResult reports the deterministic-pattern pass.
type TopUpResult struct {
	// Once holds the synthesized run-once instruction blocks.
	Once []isa.Instr
	// Justified counts faults for which a verified block was emitted.
	Justified int
	// Unjustified counts faults PODEM could test but whose pattern the
	// instruction set could not deliver (or whose block failed
	// verification) — the difficulty the paper's Section 3.4 discusses.
	Unjustified int
	// Untestable counts faults PODEM proved untestable even with the
	// operand registers freely controllable.
	Untestable int
}

// TopUp attacks undetected (random-resistant) faults with
// component-local ATPG: PODEM runs on the core's combinational frame
// with the execute-stage operand registers as the only decision inputs
// and one operation's control word fixed (with the accumulators zeroed,
// a state the preamble can always establish), so a found test is exactly
// "load these two values and execute that operation". Each synthesized
// block is verified by fault-simulating it against the target fault
// before being accepted — the justification difficulty the paper's
// Section 3.4 discusses shows up here as the Unjustified count.
func TopUp(core *dspgate.Core, undetected []fault.Fault, maxPatterns int) TopUpResult {
	n := core.Netlist
	opA := lookupBus(n, "Pipeline.ex_opa", 8)
	opB := lookupBus(n, "Pipeline.ex_opb", 8)
	macOut := lookupBus(n, "Limiter.macOut", 8)
	accNets := append(lookupBus(n, "AccA.accA", 18), lookupBus(n, "AccB.accB", 18)...)

	pis := append(append([]logic.NetID{}, opA...), opB...)
	ops := []struct {
		op  isa.Op
		acc isa.Acc
	}{
		{isa.OpMpy, isa.AccA}, {isa.OpMpyT, isa.AccA},
		{isa.OpMpyShift, isa.AccA}, {isa.OpMpyShiftMac, isa.AccA},
		{isa.OpMacM, isa.AccA},
	}
	fixedFor := make([]map[logic.NetID]bool, len(ops))
	for i, o := range ops {
		fixed := ctrlFixed(n, o.op, o.acc)
		for _, a := range accNets {
			fixed[a] = false // zeroed accumulators, reachable via preamble
		}
		fixedFor[i] = fixed
	}

	var res TopUpResult
	for _, f := range undetected {
		if res.Justified >= maxPatterns {
			break
		}
		verdict := atpg.Untestable
		for oi, o := range ops {
			r := atpg.Generate(n, f, atpg.Options{
				PIs:           pis,
				Fixed:         fixedFor[oi],
				Observe:       macOut,
				MaxBacktracks: 4000,
			})
			if r.Status == atpg.Aborted && verdict != atpg.Detected {
				verdict = atpg.Aborted
			}
			if r.Status != atpg.Detected {
				continue
			}
			verdict = atpg.Detected
			a, bv := packAssignment(r.Assignment, opA), packAssignment(r.Assignment, opB)
			block := fixHazards([]isa.Instr{
				{Op: isa.OpLdi, Imm: 0, RD: 4, Comment: fmt.Sprintf("phase 3: ATPG pattern for %v", f)},
				{Op: isa.OpLdi, Imm: a, RD: 1},
				{Op: isa.OpLdi, Imm: bv, RD: 2},
				{Op: isa.OpMpy, Acc: isa.AccA, RA: 4, RB: 4, RD: 5}, // zero accA
				{Op: isa.OpMpy, Acc: isa.AccB, RA: 4, RB: 4, RD: 5}, // zero accB
				{Op: o.op, Acc: o.acc, RA: 1, RB: 2, RD: 3},
				{Op: isa.OpOut, Src: 3},
			})
			if verifyBlock(n, block, f) {
				res.Once = append(res.Once, block...)
				res.Justified++
				break
			}
			verdict = atpg.Aborted // found but not deliverable via this op
		}
		switch verdict {
		case atpg.Detected:
		case atpg.Untestable:
			res.Untestable++
		default:
			res.Unjustified++
		}
	}
	return res
}

// ctrlFixed fixes the execute-stage control flip-flops to an operation's
// control word.
func ctrlFixed(n *logic.Netlist, op isa.Op, acc isa.Acc) map[logic.NetID]bool {
	cw := ctrlWord(op, acc)
	fixed := map[logic.NetID]bool{}
	for name, v := range cw {
		id := n.Lookup("Pipeline." + name)
		if id != logic.InvalidNet {
			fixed[id] = v
		}
	}
	return fixed
}

func ctrlWord(op isa.Op, acc isa.Acc) map[string]bool {
	c := dsp.ControlBits(op, acc)
	return map[string]bool{
		"ex_sub":   c.Sub,
		"ex_accb":  c.AccB,
		"ex_trunc": c.TruncEn,
		"ex_mode0": c.Mode&1 == 1,
		"ex_mode1": c.Mode&2 == 2,
		"ex_zacc":  c.ZeroAcc,
		"ex_zprod": c.ZeroProd,
		"ex_mac":   c.MacFamily,
		"ex_ldi":   c.IsLdi,
		"ex_out":   c.IsOut,
		"ex_wd":    c.WritesDest,
	}
}

func lookupBus(n *logic.Netlist, base string, width int) logic.Bus {
	bus := make(logic.Bus, width)
	for i := range bus {
		bus[i] = n.Lookup(fmt.Sprintf("%s[%d]", base, i))
		if bus[i] == logic.InvalidNet {
			panic("selftest: missing net " + fmt.Sprintf("%s[%d]", base, i))
		}
	}
	return bus
}

func packAssignment(assign map[logic.NetID]bool, bus logic.Bus) uint8 {
	var v uint8
	for i, id := range bus {
		if assign[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// verifyBlock fault-simulates the block (plus pipeline drain) against
// the single target fault and reports whether it detects it.
func verifyBlock(n *logic.Netlist, block []isa.Instr, f fault.Fault) bool {
	vecs := make(fault.Vectors, 0, len(block)+6)
	for _, in := range block {
		vecs = append(vecs, uint64(in.Encode()))
	}
	for i := 0; i < 6; i++ {
		vecs = append(vecs, 0)
	}
	res, err := fault.Simulate(n, vecs, fault.SimOptions{Faults: []fault.Fault{f}})
	if err != nil {
		return false
	}
	return res.Detected() == 1
}
