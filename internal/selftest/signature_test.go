package selftest

import (
	"testing"

	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
)

func signatureProgram() *Program {
	return &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 2},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
	}}
}

func TestSignatureGoldenDeterministic(t *testing.T) {
	core, err := dspgate.Build(dspgate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vecs := Expand(signatureProgram(), ExpandOptions{Iterations: 30})
	a, err := Signature(core.Netlist, vecs, SignatureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Signature(core.Netlist, vecs, SignatureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("golden signature not deterministic: %x vs %x", a, b)
	}
}

func TestSignatureDetectsFaults(t *testing.T) {
	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	vecs := Expand(signatureProgram(), ExpandOptions{Iterations: 30})
	golden, err := Signature(core.Netlist, vecs, SignatureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the exact per-cycle fault simulator: every
	// fault it detects should flip the signature (barring ~2^-16
	// aliasing), and every fault it misses must keep it.
	faults, _ := fault.Collapse(core.Netlist, fault.AllFaults(core.Netlist))
	sample := faults
	if len(sample) > 40 {
		step := len(sample) / 40
		var s []fault.Fault
		for i := 0; i < len(sample); i += step {
			s = append(s, sample[i])
		}
		sample = s
	}
	res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{Faults: sample})
	if err != nil {
		t.Fatal(err)
	}
	aliased := 0
	for i, f := range sample {
		sig, err := Signature(core.Netlist, vecs, SignatureOptions{Fault: &f})
		if err != nil {
			t.Fatal(err)
		}
		detected := res.DetectedAt[i] >= 0
		flipped := sig != golden
		if !detected && flipped {
			t.Fatalf("fault %v: undetected at outputs but signature flipped", f)
		}
		if detected && !flipped {
			aliased++
		}
	}
	if aliased > 1 {
		t.Fatalf("%d of %d detected faults aliased in a 16-bit MISR (expected ≈0)", aliased, len(sample))
	}
}

func TestSignatureMISRWidths(t *testing.T) {
	core, err := dspgate.Build(dspgate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vecs := Expand(signatureProgram(), ExpandOptions{Iterations: 3})
	for _, w := range []int{8, 16, 32} {
		if _, err := Signature(core.Netlist, vecs, SignatureOptions{MISRWidth: w}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
	if _, err := Signature(core.Netlist, vecs, SignatureOptions{MISRWidth: 23}); err == nil {
		t.Error("unsupported width should error")
	}
}
