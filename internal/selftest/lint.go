package selftest

import (
	"fmt"

	"repro/internal/isa"
)

// LintWarning flags a suspicious construct in a self-test program.
type LintWarning struct {
	// Pos is the loop index (or −1 for program-level findings).
	Pos int
	Msg string
}

// String renders the warning.
func (w LintWarning) String() string {
	if w.Pos < 0 {
		return w.Msg
	}
	return fmt.Sprintf("loop[%d]: %s", w.Pos, w.Msg)
}

// Lint checks a self-test program for the mistakes that silently gut
// coverage in hand-written programs:
//
//   - delay-slot hazards (a read one cycle after the write returns the
//     old value — almost never what the author meant);
//   - MAC results that are never observed (no OUT of the destination
//     before it is overwritten, considering the loop's wrap-around);
//   - no pseudorandom data at all (a loop without LD RND re-applies the
//     same constants every iteration, so extra iterations add nothing
//     beyond register rotation);
//   - reads of registers that are never written inside the loop (their
//     value depends on what previous code left behind).
//
// Programs emitted by the Generator lint clean; the checks exist for
// programs fed to cmd/faultsim and the template hardware from files.
func Lint(p *Program) []LintWarning {
	var warns []LintWarning
	loop := p.Loop
	n := len(loop)
	if n == 0 {
		return []LintWarning{{Pos: -1, Msg: "empty loop body"}}
	}

	for _, pos := range HazardViolations(loop) {
		warns = append(warns, LintWarning{Pos: pos,
			Msg: fmt.Sprintf("%s reads a register written one cycle earlier (delay slot returns the old value)", loop[pos])})
	}

	hasRnd := false
	written := map[uint8]bool{}
	for _, in := range loop {
		if in.RndImm || in.Op == isa.OpLdRnd {
			hasRnd = true
		}
		if in.Op.WritesDest() {
			written[in.RD] = true
		}
	}
	if !hasRnd {
		warns = append(warns, LintWarning{Pos: -1,
			Msg: "no pseudorandom loads (LD RND): iterations repeat the same data"})
	}

	// Unobserved results: walk each write forward (wrapping once) until
	// an OUT of that register, a read, or an overwrite. A MAC-family
	// instruction also deposits its full result in the accumulator, so a
	// later MAC-family instruction on the same accumulator counts as
	// consumption even when the destination register is scratch (the
	// generator's accumulator-zeroing preambles are the legitimate case).
	for i, in := range loop {
		if !in.Op.WritesDest() {
			continue
		}
		observed := false
		for k := 1; k <= n; k++ {
			next := loop[(i+k)%n]
			if next.Op == isa.OpOut && next.Src == in.RD {
				observed = true
				break
			}
			if reads(next, in.RD) {
				observed = true // consumed: flows onward
				break
			}
			if next.Op.WritesDest() && next.RD == in.RD {
				break // overwritten unseen
			}
		}
		if !observed && in.Op.MacFamily() {
			for k := 1; k < n; k++ { // excludes the instruction itself
				next := loop[(i+k)%n]
				if next.Op.MacFamily() && next.Acc == in.Acc {
					observed = true // result lives on in the accumulator
					break
				}
			}
		}
		if !observed {
			warns = append(warns, LintWarning{Pos: i,
				Msg: fmt.Sprintf("%s: result in R%d is overwritten before any OUT or use", in, in.RD)})
		}
	}

	// Reads of loop-undefined registers.
	reported := map[uint8]bool{}
	for i, in := range loop {
		for _, r := range readRegs(in) {
			if !written[r] && !reported[r] {
				reported[r] = true
				warns = append(warns, LintWarning{Pos: i,
					Msg: fmt.Sprintf("reads R%d, which no loop instruction writes (value inherited from outside the loop)", r)})
			}
		}
	}
	return warns
}

func reads(in isa.Instr, r uint8) bool {
	for _, x := range readRegs(in) {
		if x == r {
			return true
		}
	}
	return false
}
