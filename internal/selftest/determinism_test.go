package selftest

import (
	"testing"

	"repro/internal/metrics"
)

// TestGenerateDeterministic: two generators with identical configuration
// must emit byte-identical programs — the property that makes golden
// MISR signatures reproducible across characterization runs.
func TestGenerateDeterministic(t *testing.T) {
	build := func() *Program {
		eng := metrics.NewEngine(metrics.Config{CTrials: 2500, OGoodRuns: 3, Seed: 77})
		p, _ := NewGenerator(eng).Generate()
		return p
	}
	a, b := build(), build()
	if a.Source() != b.Source() {
		t.Fatalf("programs differ:\n--- a ---\n%s\n--- b ---\n%s", a.Source(), b.Source())
	}
	va := Expand(a, ExpandOptions{Iterations: 7})
	vb := Expand(b, ExpandOptions{Iterations: 7})
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("expansion differs at %d", i)
		}
	}
}

// TestExpandSeedSensitivity: different LFSR seeds change the data but
// not the instruction skeleton.
func TestExpandSeedSensitivity(t *testing.T) {
	g := sharedGenerator()
	prog, _ := g.Generate()
	a := Expand(prog, ExpandOptions{Iterations: 4, Seed1: 1})
	b := Expand(prog, ExpandOptions{Iterations: 4, Seed1: 999})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	differ := false
	for i := range a {
		// Opcode field must match position-for-position with rotation
		// from the same Seed2.
		if a[i]>>12 != b[i]>>12 {
			t.Fatalf("opcode skeleton differs at %d", i)
		}
		if a[i] != b[i] {
			differ = true
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical data")
	}
}
