package selftest

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Report documents how a program was derived: the metrics table, the
// Phase-1 covering and the Phase-2 sequences, mirroring the paper's
// Tables 2–3 and Figure 7 narrative.
type Report struct {
	Table  *metrics.Table
	Phase1 *Phase1Result
	Phase2 *Phase2Result
}

// Summary renders a human-readable derivation report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("phase 1: %d wrapper rows, %d chosen rows, %d columns left uncovered\n",
		len(r.Phase1.WrapperRows), len(r.Phase1.Chosen), len(r.Phase1.Uncovered))
	for _, ri := range r.Phase1.Chosen {
		covered := 0
		for _, row := range r.Phase1.CoveredBy {
			if row == ri {
				covered++
			}
		}
		s += fmt.Sprintf("  chose %-14s covering %d columns\n", r.Table.Rows[ri].Name, covered)
	}
	s += fmt.Sprintf("phase 2: %d sequences, %d columns discarded (unreachable modes), %d unresolved\n",
		len(r.Phase2.Sequences), len(r.Phase2.Discarded), len(r.Phase2.Unresolved))
	for _, vs := range r.Phase2.Sequences {
		s += fmt.Sprintf("  column %-12s covered by %d-instruction sequence (C=%.2f O=%.2f)\n",
			r.Table.Cols[vs.Col].Label(), len(vs.Seq.Instrs), vs.Cell.C, vs.Cell.O)
	}
	for _, c := range r.Phase2.Discarded {
		s += fmt.Sprintf("  column %-12s discarded: no instruction reaches this mode\n", r.Table.Cols[c].Label())
	}
	return s
}

// Generator derives self-test programs from the metrics table.
type Generator struct {
	eng   *metrics.Engine
	table *metrics.Table
	span  *obs.Span
}

// NewGenerator wraps a metrics engine.
func NewGenerator(eng *metrics.Engine) *Generator { return &Generator{eng: eng} }

// WithObs attaches an instrumentation span: table construction, the
// Phase-1 covering pass, Phase-2 sequence construction and final
// assembly each run under a child span, with per-step phase events.
func (g *Generator) WithObs(span *obs.Span) *Generator {
	g.span = span
	return g
}

// Table builds (once) and returns the metrics table.
func (g *Generator) Table() *metrics.Table {
	if g.table == nil {
		sub := g.span.Child("metrics_table")
		g.table = g.eng.BuildTable()
		sub.Add("rows", int64(len(g.table.Rows)))
		sub.Add("cols", int64(len(g.table.Cols)))
		sub.End()
	}
	return g.table
}

// Generate runs Phases 1 and 2 and assembles the loop program: the
// randomization preamble, one covering instruction per chosen row (with
// its OUT wrapper), and the validated Phase-2 sequences, scheduled
// around the pipeline's delay slot.
func (g *Generator) Generate() (*Program, *Report) {
	t := g.Table()

	sub := g.span.Child("phase1")
	p1 := Phase1Traced(t, sub)
	sub.Add("chosen", int64(len(p1.Chosen)))
	sub.Add("uncovered", int64(len(p1.Uncovered)))
	sub.End()

	sub = g.span.Child("phase2")
	p2 := Phase2Traced(g.eng, t, p1, sub)
	sub.Add("sequences", int64(len(p2.Sequences)))
	sub.Add("discarded", int64(len(p2.Discarded)))
	sub.Add("unresolved", int64(len(p2.Unresolved)))
	sub.End()

	sub = g.span.Child("assemble")
	prog := g.assemble(t, p1, p2)
	sub.Add("loop_instrs", int64(prog.Len()))
	sub.End()
	g.span.Event(obs.EventSummary, map[string]any{
		"loop_instrs": prog.Len(),
		"phase1_rows": len(p1.Chosen),
		"phase2_seqs": len(p2.Sequences),
		"unresolved":  len(p2.Unresolved),
	})
	return prog, &Report{Table: t, Phase1: p1, Phase2: p2}
}

// Register allocation for the emitted loop. LFSR2 rotation remaps all of
// these each iteration, so the static assignment only fixes dataflow.
const (
	regOpA   = 0  // random operand (LD RND)
	regOpB   = 1  // random operand (LD RND)
	regOpC   = 14 // random operand / load-spacer
	regZero  = 4  // constant zero for 0-state preambles
	regPre   = 2  // preamble destination
	seqRegLo = 8  // Phase-2 sequences use R8..R11 (see phase2.go)
)

var rowDests = []uint8{3, 5, 6, 7, 12, 13}

func (g *Generator) assemble(t *metrics.Table, p1 *Phase1Result, p2 *Phase2Result) *Program {
	var loop []isa.Instr
	emit := func(line string, comment string) {
		in := mustParse(line)
		in.Comment = comment
		loop = append(loop, in)
	}

	// Randomization preamble: fresh operands every iteration, both
	// accumulators loaded with pseudorandom products (the paper's
	// "randomize accb" sequences in Figure 7).
	emit("LD RND,R0", "pseudorandom operand (LFSR1)")
	emit("LD RND,R1", "pseudorandom operand (LFSR1)")
	emit("LD RND,R14", "pseudorandom operand + load spacer")
	emit("MPYB R0,R1,R2", "randomize accB")
	emit("OUT R2", "wrapper: observe")
	emit("MPYA R1,R14,R2", "randomize accA")
	emit("OUT R2", "wrapper: observe")

	// Chosen Phase-1 rows. The preamble already realizes the mpy rows,
	// so they are not emitted twice. Accumulators alternate to spread
	// coverage over both halves, except where the row's own metrics were
	// measured per-accumulator (they are symmetric).
	dest := 0
	needZero := false
	var body []isa.Instr
	emitted := map[isa.Op]bool{isa.OpMpy: true} // preamble covers MPY
	emitRow := func(op isa.Op, acc isa.Acc, state metrics.AccState, comment string) {
		d := rowDests[dest%len(rowDests)]
		dest++
		if state == metrics.AccZero {
			needZero = true
			zero := mustParse(fmt.Sprintf("MPY%s R4,R4,R2", acc))
			zero.Comment = "zero acc for 0-state row"
			body = append(body, zero)
		}
		in := isa.Instr{Op: op, Acc: acc, RA: regOpA, RB: regOpB, RD: d}
		if op.Format() == isa.Format2 {
			in = isa.Instr{Op: op, RD: d, RndImm: true}
		}
		in = normalizeTemplate(in)
		in.Comment = comment
		body = append(body, in)
		body = append(body, isa.Instr{Op: isa.OpOut, Src: d, Comment: "wrapper: observe"})
		emitted[op] = true
	}
	for i, ri := range p1.Chosen {
		row := t.Rows[ri]
		if row.Op == isa.OpMpy && row.State == metrics.AccRandom {
			continue // realized by the preamble
		}
		acc := isa.AccA
		if i%2 == 1 {
			acc = isa.AccB
		}
		emitRow(row.Op, acc, row.State, fmt.Sprintf("phase 1: row %s", row.Name))
	}
	// Decoder sweep: every MAC-family opcode (both accumulator variants)
	// appears at least once so each decode line toggles — the decoder is
	// itself a core component, and an opcode the program never issues
	// leaves its one-hot logic untested.
	seen := map[uint32]bool{}
	for _, in := range loop {
		seen[in.Encode()>>12] = true
	}
	for _, in := range body {
		seen[in.Encode()>>12] = true
	}
	for _, op := range isa.Ops() {
		if !op.MacFamily() {
			continue
		}
		for _, acc := range []isa.Acc{isa.AccA, isa.AccB} {
			oc := isa.Instr{Op: op, Acc: acc}.Encode() >> 12
			if seen[oc] {
				continue
			}
			seen[oc] = true
			emitRow(op, acc, metrics.AccRandom, "decoder sweep: "+op.Mnemonic()+acc.String())
		}
	}
	if needZero {
		emit("LD 0x00,R4", "constant zero for 0-state preambles")
	}
	loop = append(loop, body...)

	// Phase-2 sequences, embedded verbatim (their register usage is
	// disjoint from the preamble's by construction).
	for _, vs := range p2.Sequences {
		// Track destinations the sequence writes but never observes or
		// consumes; give each a wrapper OUT so no result is dead. Order
		// is kept deterministic (first-write order).
		pending := map[uint8]bool{}
		var pendingOrder []uint8
		for i, in := range vs.Seq.Instrs {
			if in.Op == isa.OpNop {
				continue // the scheduler below re-inserts only needed slack
			}
			in = normalizeTemplate(in)
			if i == vs.Seq.Target {
				in.Comment = fmt.Sprintf("phase 2: target for %s", t.Cols[vs.Col].Label())
			} else if in.Comment == "" {
				in.Comment = "phase 2: wrapper"
			}
			for _, r := range readRegs(in) {
				delete(pending, r)
			}
			if in.Op == isa.OpOut {
				delete(pending, in.Src)
			}
			if in.Op.WritesDest() {
				if !pending[in.RD] {
					pendingOrder = append(pendingOrder, in.RD)
				}
				pending[in.RD] = true
			}
			loop = append(loop, in)
		}
		for _, r := range pendingOrder {
			if pending[r] {
				loop = append(loop, isa.Instr{Op: isa.OpOut, Src: r, Comment: "phase 2: observe dest"})
			}
		}
	}
	// Phase-2 targets read R8/R9; load them with the preamble operands.
	if len(p2.Sequences) > 0 {
		pre := []isa.Instr{
			{Op: isa.OpLdRnd, RD: 8, RndImm: true, Comment: "phase 2 operand"},
			{Op: isa.OpLdRnd, RD: 9, RndImm: true, Comment: "phase 2 operand"},
		}
		loop = append(loop[:3:3], append(pre, loop[3:]...)...)
	}

	// Delay-slot scheduling: insert a NOP wherever an instruction reads
	// a register written exactly one cycle earlier.
	loop = fixHazards(loop)
	return &Program{Loop: loop}
}

// normalizeTemplate canonicalizes random-immediate loads to the trapped
// LDRND opcode — the form the template memory image actually stores, so
// the template architecture knows which immediates to fill from LFSR1.
func normalizeTemplate(in isa.Instr) isa.Instr {
	if in.RndImm && in.Op == isa.OpLdi {
		in.Op = isa.OpLdRnd
	}
	return in
}

// fixHazards inserts NOPs to break write→read distance-1 hazards,
// iterating until the loop (including its wrap-around) is clean.
func fixHazards(loop []isa.Instr) []isa.Instr {
	for iter := 0; iter < 2*len(loop)+4; iter++ {
		bad := HazardViolations(loop)
		if len(bad) == 0 {
			return loop
		}
		i := bad[0]
		nop := isa.Instr{Op: isa.OpNop, Comment: "delay slot"}
		loop = append(loop[:i:i], append([]isa.Instr{nop}, loop[i:]...)...)
	}
	return loop
}
