package selftest

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Source renders the program in a round-trippable assembler format:
// optional ".once" and ".loop" section directives followed by one
// instruction per line (comments preserved). ParseProgram reads it back.
func (p *Program) Source() string {
	var sb strings.Builder
	write := func(ins []isa.Instr) {
		for _, in := range ins {
			sb.WriteString(in.String())
			if in.Comment != "" {
				sb.WriteString("  // ")
				sb.WriteString(in.Comment)
			}
			sb.WriteByte('\n')
		}
	}
	if len(p.Once) > 0 {
		sb.WriteString(".once\n")
		write(p.Once)
	}
	sb.WriteString(".loop\n")
	write(p.Loop)
	return sb.String()
}

// ParseProgram parses the Source format. Plain assembler with no
// directives is accepted and treated as a loop body.
func ParseProgram(src string) (*Program, error) {
	p := &Program{}
	section := &p.Loop
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch strings.ToLower(line) {
		case ".once":
			section = &p.Once
			continue
		case ".loop":
			section = &p.Loop
			continue
		}
		if strings.HasPrefix(line, ".") {
			return nil, fmt.Errorf("line %d: unknown directive %q", ln+1, line)
		}
		in, err := isa.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if i := strings.Index(raw, "//"); i >= 0 {
			in.Comment = strings.TrimSpace(raw[i+2:])
		}
		*section = append(*section, in)
	}
	if len(p.Loop) == 0 {
		return nil, fmt.Errorf("selftest: program has no loop body")
	}
	return p, nil
}
