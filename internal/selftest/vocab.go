package selftest

import "repro/internal/isa"

// This file exports the generator's instruction vocabulary so external
// searchers (internal/evolve) can compose programs from the same raw
// material the metrics-driven generator draws on: the MAC-family and
// random-load operations, the row destination pool, the randomization
// preamble, and the delay-slot scheduler.

// SlotOps returns the operations an evolved instruction slot may hold:
// every MAC-family operation plus the template random-immediate load,
// in a fixed order.
func SlotOps() []isa.Op {
	ops := []isa.Op{isa.OpLdRnd}
	for _, op := range isa.Ops() {
		if op.MacFamily() {
			ops = append(ops, op)
		}
	}
	return ops
}

// SlotDests returns a copy of the generator's row destination pool —
// the registers a covering instruction may write without colliding
// with the preamble operands or Phase-2 sequence registers.
func SlotDests() []uint8 {
	return append([]uint8(nil), rowDests...)
}

// SlotSources returns the preamble-loaded operand registers a slot
// instruction reads (RA, RB).
func SlotSources() (ra, rb uint8) { return regOpA, regOpB }

// Preamble returns a fresh copy of the randomization preamble every
// generated loop starts with: pseudorandom operands in R0/R1/R14 and
// both accumulators randomized with observed products.
func Preamble() []isa.Instr {
	lines := []struct{ text, comment string }{
		{"LD RND,R0", "pseudorandom operand (LFSR1)"},
		{"LD RND,R1", "pseudorandom operand (LFSR1)"},
		{"LD RND,R14", "pseudorandom operand + load spacer"},
		{"MPYB R0,R1,R2", "randomize accB"},
		{"OUT R2", "wrapper: observe"},
		{"MPYA R1,R14,R2", "randomize accA"},
		{"OUT R2", "wrapper: observe"},
	}
	pre := make([]isa.Instr, 0, len(lines))
	for _, l := range lines {
		in := mustParse(l.text)
		in.Comment = l.comment
		pre = append(pre, in)
	}
	return pre
}

// FixHazards schedules a loop around the pipeline's exposed delay slot:
// a NOP is inserted wherever an instruction reads a register written
// exactly one cycle earlier (including across the loop wrap-around).
func FixHazards(loop []isa.Instr) []isa.Instr {
	return fixHazards(loop)
}
