package selftest

import (
	"testing"

	"repro/internal/dspgate"
	"repro/internal/fault"
)

// TestEndToEndFaultCoverage is the integration test for the whole flow:
// metrics table → phases 1–2 → template expansion → gate-level stuck-at
// fault simulation. A few hundred loop iterations must already push
// coverage high; the full paper-scale run (6000 iterations) lives in the
// experiments harness.
func TestEndToEndFaultCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("fault simulation of the full core is slow")
	}
	g := sharedGenerator()
	prog, _ := g.Generate()
	vecs := Expand(prog, ExpandOptions{Iterations: 300})
	core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage()
	t.Logf("e2e: %d vectors, %d/%d faults detected (%.2f%% coverage)",
		vecs.Len(), res.Detected(), len(res.Faults), 100*cov)
	for _, region := range dspgate.ComponentRegions {
		det, tot := res.RegionCoverage(core.Netlist, region)
		t.Logf("  %-12s %5d faults  %6.2f%%", region, tot, 100*float64(det)/float64(max(tot, 1)))
	}
	if cov < 0.85 {
		t.Fatalf("coverage %.2f%% too low after 300 iterations", 100*cov)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
