package selftest

import (
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Greedy-cover effort counter (one increment per candidate-row scan).
var ctrGreedyIters = obs.Default().Counter("phase1.greedy_iterations")

// Phase1Result records the global-coverage covering pass.
type Phase1Result struct {
	// WrapperRows are the row indices of the automatic wrapper
	// instructions (Load and Out), whose covered columns are removed
	// before the greedy pass.
	WrapperRows []int
	// Chosen lists the selected row indices in pick order.
	Chosen []int
	// CoveredBy maps each covered column index to the row that covered
	// it (-1 when a wrapper covered it).
	CoveredBy map[int]int
	// Uncovered lists column indices no single instruction covers;
	// Phase 2 targets these.
	Uncovered []int
}

// Phase1 runs the paper's global coverage phase: remove the columns the
// Load/Out wrappers cover, then repeatedly pick the instruction variant
// covering the most remaining columns until no instruction covers any.
func Phase1(t *metrics.Table) *Phase1Result { return Phase1Traced(t, nil) }

// Phase1Traced is Phase1 with an optional span: each greedy pick emits
// an obs.EventPhase (row, name, covered, remaining) so the covering
// pass is visible while it runs and replayable from a trace.
func Phase1Traced(t *metrics.Table, span *obs.Span) *Phase1Result {
	res := &Phase1Result{CoveredBy: make(map[int]int)}
	remaining := make(map[int]bool, len(t.Cols))
	for c := range t.Cols {
		remaining[c] = true
	}

	// Wrapper pre-pass: every test sequence begins with loads and ends
	// with an Out, so anything they cover comes for free.
	for r, row := range t.Rows {
		if row.Op != isa.OpLdi && row.Op != isa.OpOut {
			continue
		}
		res.WrapperRows = append(res.WrapperRows, r)
		for c := range t.Cols {
			if remaining[c] && t.Covered(r, c) {
				delete(remaining, c)
				res.CoveredBy[c] = -1
			}
		}
	}

	// Greedy cover.
	for len(remaining) > 0 {
		ctrGreedyIters.Add(1)
		best, bestCount := -1, 0
		for r, row := range t.Rows {
			if row.Op == isa.OpLdi || row.Op == isa.OpOut {
				continue
			}
			count := 0
			for c := range remaining {
				if t.Covered(r, c) {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = r, count
			}
		}
		if best < 0 {
			break
		}
		res.Chosen = append(res.Chosen, best)
		for c := range remaining {
			if t.Covered(best, c) {
				delete(remaining, c)
				res.CoveredBy[c] = best
			}
		}
		span.EventNamed(obs.EventPhase, "pick", map[string]any{
			"row":       best,
			"name":      t.Rows[best].Name,
			"covered":   bestCount,
			"remaining": len(remaining),
		})
		span.Add("picks", 1)
	}

	for c := range t.Cols {
		if remaining[c] {
			res.Uncovered = append(res.Uncovered, c)
		}
	}
	sortInts(res.Uncovered)
	return res
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
