package selftest

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/metrics"
)

func TestExpandInstantiatesTemplates(t *testing.T) {
	prog := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 1, RB: 2, RD: 3},
		{Op: isa.OpOut, Src: 3},
	}}
	vecs := Expand(prog, ExpandOptions{Iterations: 4, DisableRegMask: true})
	if vecs.Len() != 12 {
		t.Fatalf("expanded %d vectors, want 12", vecs.Len())
	}
	// The load immediate must vary between iterations (LFSR1 data).
	imm := map[uint64]bool{}
	for it := 0; it < 4; it++ {
		word := vecs.At(it * 3)
		in, err := isa.Decode(uint32(word))
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != isa.OpLdi {
			t.Fatalf("template load reached the core as %v, want plain LD", in.Op)
		}
		imm[uint64(in.Imm)] = true
	}
	if len(imm) < 3 {
		t.Fatalf("immediates not randomized: %v", imm)
	}
	// Non-template instructions are stable across iterations.
	if vecs.At(1) != vecs.At(4) || vecs.At(2) != vecs.At(5) {
		t.Fatal("non-template instructions changed between iterations without masking")
	}
}

func TestExpandRegisterMaskPreservesDataflow(t *testing.T) {
	prog := &Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 1, RB: 2, RD: 3},
		{Op: isa.OpOut, Src: 3},
	}}
	vecs := Expand(prog, ExpandOptions{Iterations: 8})
	destsSeen := map[uint8]bool{}
	for it := 0; it < 8; it++ {
		ld, _ := isa.Decode(uint32(vecs.At(it * 3)))
		mpy, _ := isa.Decode(uint32(vecs.At(it*3 + 1)))
		out, _ := isa.Decode(uint32(vecs.At(it*3 + 2)))
		// Dataflow: the load's dest must still be the multiply's RA, and
		// the multiply's dest must be the OUT's source.
		if ld.RD != mpy.RA {
			t.Fatalf("iteration %d: load dest R%d != mpy RA R%d", it, ld.RD, mpy.RA)
		}
		if mpy.RD != out.Src {
			t.Fatalf("iteration %d: mpy dest R%d != out src R%d", it, mpy.RD, out.Src)
		}
		destsSeen[ld.RD] = true
	}
	// Register rotation must actually visit multiple register groups.
	if len(destsSeen) < 4 {
		t.Fatalf("register mask visited only %d registers: %v", len(destsSeen), destsSeen)
	}
}

func TestHazardViolations(t *testing.T) {
	clean := []isa.Instr{
		{Op: isa.OpLdi, Imm: 1, RD: 1},
		{Op: isa.OpLdi, Imm: 2, RD: 2},
		{Op: isa.OpNop}, // R2 written one cycle ago: needs the slot
		{Op: isa.OpMpy, RA: 1, RB: 2, RD: 3},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 3},
	}
	if v := HazardViolations(clean); len(v) != 0 {
		t.Fatalf("clean loop flagged: %v", v)
	}
	hazard := []isa.Instr{
		{Op: isa.OpLdi, Imm: 1, RD: 1},
		{Op: isa.OpMov, Src: 1, RD: 2}, // reads R1 one cycle after its write
	}
	if v := HazardViolations(hazard); len(v) != 1 || v[0] != 1 {
		t.Fatalf("hazard not flagged: %v", v)
	}
	// Wrap-around: last instruction writes what the first reads.
	wrap := []isa.Instr{
		{Op: isa.OpOut, Src: 5},
		{Op: isa.OpNop},
		{Op: isa.OpLdi, Imm: 1, RD: 5},
	}
	if v := HazardViolations(wrap); len(v) != 1 || v[0] != 0 {
		t.Fatalf("wrap hazard not flagged: %v", v)
	}
}

func TestFixHazards(t *testing.T) {
	loop := []isa.Instr{
		{Op: isa.OpLdi, Imm: 1, RD: 1},
		{Op: isa.OpMov, Src: 1, RD: 2},
		{Op: isa.OpOut, Src: 2},
	}
	fixed := fixHazards(loop)
	if v := HazardViolations(fixed); len(v) != 0 {
		t.Fatalf("fixHazards left violations: %v", v)
	}
	if len(fixed) <= len(loop) {
		t.Fatal("expected NOP insertion")
	}
}

// sharedTable caches one mid-quality metrics table across tests in this
// package (building it is the expensive part of generation).
var (
	tableOnce sync.Once
	tableEng  *metrics.Engine
	tableGen  *Generator
)

func sharedGenerator() *Generator {
	tableOnce.Do(func() {
		tableEng = metrics.NewEngine(metrics.Config{CTrials: 12000, OGoodRuns: 8, Seed: 33})
		tableGen = NewGenerator(tableEng)
		tableGen.Table()
	})
	return tableGen
}

func TestPhase1GreedyCover(t *testing.T) {
	g := sharedGenerator()
	tab := g.Table()
	p1 := Phase1(tab)
	if len(p1.Chosen) == 0 {
		t.Fatal("phase 1 chose nothing")
	}
	// Greedy order: each chosen row must cover at least as many columns
	// as the next.
	counts := make([]int, len(p1.Chosen))
	for c, r := range p1.CoveredBy {
		for i, cr := range p1.Chosen {
			if cr == r {
				counts[i]++
			}
		}
		_ = c
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("greedy order violated: pick %d covers %d > pick %d covers %d",
				i, counts[i], i-1, counts[i-1])
		}
	}
	// The accumulator columns cannot be covered by any single
	// instruction (their errors need a follow-on reader): they must be
	// among the uncovered set.
	accACol := tab.ColumnIndex(dsp.CompAccA, 0)
	found := false
	for _, c := range p1.Uncovered {
		if c == accACol {
			found = true
		}
	}
	if !found {
		t.Error("AccA column unexpectedly covered in phase 1")
	}
	// Wrapper-covered columns include the output port.
	outCol := tab.ColumnIndex(dsp.CompOutPort, 0)
	if r, ok := p1.CoveredBy[outCol]; !ok || r != -1 {
		t.Errorf("OutPort should be wrapper-covered, got %v %v", r, ok)
	}
}

func TestPhase2CoversAccumulators(t *testing.T) {
	g := sharedGenerator()
	tab := g.Table()
	p1 := Phase1(tab)
	p2 := Phase2(tableEng, tab, p1)

	// Shifter mode 11 is unreachable: must be discarded, not unresolved.
	m11 := tab.ColumnIndex(dsp.CompShifter, 3)
	inDiscarded := false
	for _, c := range p2.Discarded {
		if c == m11 {
			inDiscarded = true
		}
	}
	if !inDiscarded {
		t.Error("shifter mode 11 not discarded")
	}
	// Both accumulators must end up covered by validated sequences.
	for _, comp := range []dsp.Component{dsp.CompAccA, dsp.CompAccB} {
		col := tab.ColumnIndex(comp, 0)
		covered := false
		for _, vs := range p2.Sequences {
			if vs.Col == col {
				covered = true
				if vs.Cell.O < tab.OThreshold {
					t.Errorf("%v sequence O=%.2f below threshold", comp, vs.Cell.O)
				}
			}
		}
		if !covered {
			// Only acceptable if phase 1 somehow covered it already.
			if _, ok := p1.CoveredBy[col]; !ok {
				t.Errorf("%v not covered by phase 2: unresolved=%v", comp, p2.Unresolved)
			}
		}
	}
}

func TestGenerateProgram(t *testing.T) {
	g := sharedGenerator()
	prog, report := g.Generate()
	if prog.Len() < 15 || prog.Len() > 80 {
		t.Fatalf("loop length %d out of plausible range (paper: 34)", prog.Len())
	}
	if v := HazardViolations(prog.Loop); len(v) != 0 {
		t.Fatalf("generated loop has delay-slot hazards at %v:\n%s", v, prog)
	}
	// Every column is either covered (phase 1, wrapper, or phase 2) or
	// discarded as unreachable.
	tab := report.Table
	accounted := map[int]bool{}
	for c := range report.Phase1.CoveredBy {
		accounted[c] = true
	}
	for _, vs := range report.Phase2.Sequences {
		accounted[vs.Col] = true
	}
	for _, c := range report.Phase2.Discarded {
		accounted[c] = true
	}
	for _, c := range report.Phase2.Unresolved {
		accounted[c] = true
	}
	for c := range tab.Cols {
		if !accounted[c] {
			t.Errorf("column %s unaccounted", tab.Cols[c].Label())
		}
	}
	if len(report.Phase2.Unresolved) > 2 {
		t.Errorf("too many unresolved columns: %v", report.Phase2.Unresolved)
	}
	// The program must contain template loads and OUT wrappers.
	s := prog.String()
	if !strings.Contains(s, "RND") || !strings.Contains(s, "OUT") {
		t.Fatalf("program missing template loads or wrappers:\n%s", s)
	}
	t.Logf("generated %d-instruction loop:\n%s\n%s", prog.Len(), s, report.Summary())
}

func TestGeneratedProgramExpands(t *testing.T) {
	g := sharedGenerator()
	prog, _ := g.Generate()
	vecs := Expand(prog, ExpandOptions{Iterations: 10})
	if vecs.Len() != 10*prog.Len() {
		t.Fatalf("expanded %d vectors, want %d", vecs.Len(), 10*prog.Len())
	}
	// Every expanded word must be decodable (the template architecture
	// only forwards real instructions to the core).
	for i := 0; i < vecs.Len(); i++ {
		if _, err := isa.Decode(uint32(vecs.At(i))); err != nil {
			t.Fatalf("vector %d undecodable: %v", i, err)
		}
	}
}
