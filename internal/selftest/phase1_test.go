package selftest

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/metrics"
)

// synthTable builds a metrics table with hand-chosen coverage marks:
// covered[r][c] = true means row r covers column c. Rows use MAC-family
// ops so the wrapper pre-pass ignores them.
func synthTable(covered [][]bool) *metrics.Table {
	rows := make([]metrics.Row, len(covered))
	macOps := []isa.Op{isa.OpMpy, isa.OpMacP, isa.OpMacM, isa.OpMactP, isa.OpMactM, isa.OpShift, isa.OpMpyShift}
	for i := range rows {
		rows[i] = metrics.Row{Name: macOps[i%len(macOps)].Mnemonic() + string(rune('a'+i)), Op: macOps[i%len(macOps)]}
	}
	ncols := 0
	if len(covered) > 0 {
		ncols = len(covered[0])
	}
	cols := make([]metrics.Column, ncols)
	for c := range cols {
		cols[c] = metrics.Column{Comp: dsp.CompMultiplier, Mode: 0}
	}
	t := &metrics.Table{
		Rows: rows, Cols: cols,
		Cells:      make([][]metrics.Cell, len(rows)),
		CThreshold: 0.7, OThreshold: 0.5,
	}
	for r := range rows {
		t.Cells[r] = make([]metrics.Cell, ncols)
		for c := 0; c < ncols; c++ {
			if covered[r][c] {
				t.Cells[r][c] = metrics.Cell{Active: true, C: 0.99, O: 0.99}
			} else {
				t.Cells[r][c] = metrics.Cell{Active: true, C: 0.1, O: 0.1}
			}
		}
	}
	return t
}

// exhaustiveCoverSize finds the true minimum number of rows covering all
// coverable columns (columns no row covers are excluded).
func exhaustiveCoverSize(covered [][]bool) int {
	nrows := len(covered)
	ncols := len(covered[0])
	coverable := 0
	var colMask uint32
	for c := 0; c < ncols; c++ {
		for r := 0; r < nrows; r++ {
			if covered[r][c] {
				colMask |= 1 << uint(c)
				coverable++
				break
			}
		}
	}
	best := nrows + 1
	for pick := 0; pick < 1<<uint(nrows); pick++ {
		var got uint32
		bits := 0
		for r := 0; r < nrows; r++ {
			if pick>>uint(r)&1 == 1 {
				bits++
				for c := 0; c < ncols; c++ {
					if covered[r][c] {
						got |= 1 << uint(c)
					}
				}
			}
		}
		if got == colMask && bits < best {
			best = bits
		}
	}
	return best
}

func TestPhase1GreedyOptimalOnTable1SizedInstances(t *testing.T) {
	// DESIGN.md's ablation: on Table-1-sized instances the greedy cover
	// must match the exhaustive optimum. These shapes mirror the paper's
	// structure: a few broad instructions plus specialists.
	cases := [][][]bool{
		{
			// One row dominates, two specialists.
			{true, true, true, false, false},
			{false, false, false, true, false},
			{false, false, false, false, true},
			{true, false, false, false, false},
		},
		{
			// Two disjoint halves.
			{true, true, false, false},
			{false, false, true, true},
			{true, false, true, false},
		},
		{
			// Column 2 uncovered by everyone.
			{true, false, false},
			{false, false, false},
			{true, false, false},
		},
	}
	for i, covered := range cases {
		tab := synthTable(covered)
		p1 := Phase1(tab)
		want := exhaustiveCoverSize(covered)
		if got := len(p1.Chosen); got != want {
			t.Errorf("case %d: greedy used %d rows, optimum %d", i, got, want)
		}
		// Everything coverable must be covered.
		for c := 0; c < len(covered[0]); c++ {
			coverable := false
			for r := range covered {
				if covered[r][c] {
					coverable = true
				}
			}
			_, isCovered := p1.CoveredBy[c]
			if coverable != isCovered {
				t.Errorf("case %d col %d: coverable=%v covered=%v", i, c, coverable, isCovered)
			}
		}
	}
}

func TestPhase1WrapperPrePass(t *testing.T) {
	// A load row covering a column must remove it before the greedy
	// pass, so no MAC row is "charged" for it.
	tab := synthTable([][]bool{
		{true, false},
		{false, true},
	})
	tab.Rows[0].Op = isa.OpLdi // becomes a wrapper row
	p1 := Phase1(tab)
	if r, ok := p1.CoveredBy[0]; !ok || r != -1 {
		t.Fatalf("column 0 should be wrapper-covered, got %v %v", r, ok)
	}
	if len(p1.Chosen) != 1 {
		t.Fatalf("greedy should only pick one row, got %v", p1.Chosen)
	}
}

func TestPhase1EmptyTable(t *testing.T) {
	tab := &metrics.Table{CThreshold: 0.7, OThreshold: 0.5}
	p1 := Phase1(tab)
	if len(p1.Chosen) != 0 || len(p1.Uncovered) != 0 {
		t.Fatalf("empty table: %+v", p1)
	}
}
