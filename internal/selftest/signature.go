package selftest

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/logic"
)

// SignatureOptions configure MISR response compaction.
type SignatureOptions struct {
	// MISRWidth selects the signature register width (default 16).
	MISRWidth int
	// Fault, when non-nil, injects one stuck-at fault into the machine,
	// producing a faulty signature.
	Fault *fault.Fault
}

// Signature runs the vector stream on the netlist from the reset state
// and compacts the primary-output stream into a MISR signature — the
// paper's Figure-2 response analyzer. In the field, the core passes the
// self-test iff its signature equals the golden one recorded at
// characterization time.
func Signature(n *logic.Netlist, vecs fault.VectorSeq, opts SignatureOptions) (uint64, error) {
	width := opts.MISRWidth
	if width == 0 {
		width = 16
	}
	m, err := lfsr.NewMISR(width)
	if err != nil {
		return 0, err
	}
	if len(n.Inputs()) > 64 {
		return 0, fmt.Errorf("selftest: Signature supports up to 64 primary inputs")
	}
	sim := logic.NewSimulator(n)
	if opts.Fault != nil {
		sim.InjectFault(opts.Fault.Site, opts.Fault.SA1)
	}
	inputs := n.Inputs()
	outputs := n.Outputs()
	for cyc := 0; cyc < vecs.Len(); cyc++ {
		v := vecs.At(cyc)
		for b, in := range inputs {
			sim.SetInput(in, v>>uint(b)&1 == 1)
		}
		sim.Settle()
		var word uint64
		for b, out := range outputs {
			if sim.Value(out) {
				word |= 1 << uint(b)
			}
		}
		m.Absorb(word)
		sim.Step()
	}
	return m.Signature(), nil
}
