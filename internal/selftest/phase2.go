package selftest

import (
	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// ValidatedSeq is a Phase-2 instruction sequence proven (by the metrics
// engine) to cover one previously uncovered column.
type ValidatedSeq struct {
	Col  int
	Seq  metrics.Sequence
	Cell metrics.Cell
}

// Phase2Result records the specific-coverage pass.
type Phase2Result struct {
	Sequences []ValidatedSeq
	// Discarded lists columns eliminated by the paper's rule (b): no
	// instruction sets the component's control bits to that mode, so the
	// mode is unreachable and its column is dropped (e.g. shifter "11").
	Discarded []int
	// Unresolved lists columns Phase 2 could not cover; Phase 3's
	// deterministic patterns are their last resort.
	Unresolved []int
}

// Phase2 targets the columns Phase 1 left uncovered with knowledge-based
// instruction sequences, validating each candidate with the metrics
// engine before accepting it.
func Phase2(eng *metrics.Engine, t *metrics.Table, p1 *Phase1Result) *Phase2Result {
	return Phase2Traced(eng, t, p1, nil)
}

// Phase2Traced is Phase2 with an optional span: every column resolution
// (sequence found, discarded as unreachable, or unresolved) emits an
// obs.EventPhase, and candidate validations are counted on the span.
func Phase2Traced(eng *metrics.Engine, t *metrics.Table, p1 *Phase1Result, span *obs.Span) *Phase2Result {
	res := &Phase2Result{}
	for _, col := range p1.Uncovered {
		// Rule (b): unreachable control-bit modes are discarded.
		if !anyRowActive(t, col) {
			res.Discarded = append(res.Discarded, col)
			span.EventNamed(obs.EventPhase, "column", map[string]any{
				"column": t.Cols[col].Label(), "outcome": "discarded",
			})
			continue
		}
		covered := false
		candidates := 0
		for _, seq := range candidateSequences(t, col) {
			candidates++
			span.Add("candidates_validated", 1)
			cells := eng.MeasureSequence(seq)
			cell := cells[col]
			if cell.Active && cell.C >= t.CThreshold && cell.O >= t.OThreshold {
				res.Sequences = append(res.Sequences, ValidatedSeq{Col: col, Seq: seq, Cell: cell})
				covered = true
				span.EventNamed(obs.EventPhase, "column", map[string]any{
					"column": t.Cols[col].Label(), "outcome": "covered",
					"seq_len": len(seq.Instrs), "candidates": candidates,
					"c": cell.C, "o": cell.O,
				})
				break
			}
		}
		if !covered {
			res.Unresolved = append(res.Unresolved, col)
			span.EventNamed(obs.EventPhase, "column", map[string]any{
				"column": t.Cols[col].Label(), "outcome": "unresolved",
				"candidates": candidates,
			})
		}
	}
	return res
}

func nopInstr() isa.Instr { return isa.Instr{Op: isa.OpNop} }

func anyRowActive(t *metrics.Table, col int) bool {
	for r := range t.Rows {
		if t.Cells[r][col].Active {
			return true
		}
	}
	return false
}

// bestRowFor returns the row with the highest controllability in the
// column (preferring rows that meet Cθ), or -1.
func bestRowFor(t *metrics.Table, col int) int {
	best, bestC := -1, -1.0
	for r := range t.Rows {
		cell := t.Cells[r][col]
		if !cell.Active {
			continue
		}
		if cell.C > bestC {
			best, bestC = r, cell.C
		}
	}
	return best
}

// candidateSequences builds knowledge-based candidates for a column, in
// preference order. The central trick is the paper's: accumulator (and
// other deep-state) errors become observable by following the target
// with a SHIFT — which reads the accumulator back through the datapath —
// and an OUT on the shift result.
func candidateSequences(t *metrics.Table, col int) []metrics.Sequence {
	r := bestRowFor(t, col)
	if r < 0 {
		return nil
	}
	row := t.Rows[r]
	column := t.Cols[col]

	acc := isa.AccA
	if column.Comp == dsp.CompAccB {
		acc = isa.AccB
	}

	target := isa.Instr{Op: row.Op, Acc: acc, RA: 8, RB: 9, RD: 10}
	if row.Op.Format() == isa.Format2 {
		target = isa.Instr{Op: row.Op, RD: 10, RndImm: true}
	}
	nop := isa.Instr{Op: isa.OpNop}
	shift := isa.Instr{Op: isa.OpShift, Acc: acc, RA: 8, RB: 9, RD: 11}
	mac := isa.Instr{Op: isa.OpMacP, Acc: acc, RA: 8, RB: 9, RD: 11}
	outDest := isa.Instr{Op: isa.OpOut, Src: 10}
	outShift := isa.Instr{Op: isa.OpOut, Src: 11}

	var cands []metrics.Sequence
	if column.Comp == dsp.CompForward {
		// The forwarding register only matters when an instruction reads
		// a register written two cycles earlier; build exactly that. A
		// MAC reading the fresh value on both ports exercises both
		// forwarding muxes; the MOV variant covers the source path.
		ld := isa.Instr{Op: isa.OpLdRnd, RD: 8, RndImm: true}
		mac := isa.Instr{Op: isa.OpMacP, Acc: isa.AccA, RA: 8, RB: 8, RD: 10}
		mov := isa.Instr{Op: isa.OpMov, Src: 8, RD: 10}
		return []metrics.Sequence{{
			Instrs: []isa.Instr{ld, nopInstr(), mac, nopInstr(), nopInstr(), {Op: isa.OpOut, Src: 10}},
			Target: 2,
			State:  row.State,
		}, {
			Instrs: []isa.Instr{ld, nopInstr(), mov, nopInstr(), nopInstr(), {Op: isa.OpOut, Src: 10}},
			Target: 2,
			State:  row.State,
		}}
	}
	// 1. Observe through the shifter path (paper's "Phase2 Observe ACCA").
	cands = append(cands, metrics.Sequence{
		Instrs: []isa.Instr{target, nop, nop, shift, nop, nop, outShift},
		Target: 0,
		State:  row.State,
	})
	// 2. Observe through the accumulate path.
	cands = append(cands, metrics.Sequence{
		Instrs: []isa.Instr{target, nop, nop, mac, nop, nop, outShift},
		Target: 0,
		State:  row.State,
	})
	// 3. Both observation paths plus the direct destination.
	cands = append(cands, metrics.Sequence{
		Instrs: []isa.Instr{target, nop, nop, outDest, shift, nop, nop, outShift},
		Target: 0,
		State:  row.State,
	})
	return cands
}
