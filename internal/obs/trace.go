package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"time"
)

// Distributed trace correlation. A trace ID is minted once per job at
// submission, rides the /v1 wire types (JobSpec.TraceID), and every
// process touching the job — coordinator queue, lease pool, workers —
// stamps it on the events it emits. cmd/sbst-trace then merges the
// per-process NDJSON files into one campaign timeline.

// EventTraceOpen is the first event a process writes to its NDJSON
// trace: Name identifies the emitting process (worker ID, "sbstd"),
// and Fields carry "epoch_unix" (the sink's epoch as Unix seconds) so
// mergers can place the file's relative timestamps on an absolute
// axis, plus "pid".
const EventTraceOpen = "trace_open"

// NewTraceID mints a 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively impossible; degrade to a
		// still-unique-enough pid+time ID rather than failing the run.
		return fmt.Sprintf("%08x%08x", os.Getpid(), time.Now().UnixNano()&0xffffffff)
	}
	return hex.EncodeToString(b[:])
}

// traceSink stamps a fixed trace ID on every event passing through.
type traceSink struct {
	sink  Sink
	trace string
}

func (t traceSink) Emit(ev Event) {
	if ev.Trace == "" {
		ev.Trace = t.trace
	}
	t.sink.Emit(ev)
}

// WithTrace wraps sink so every emitted event carries trace (events
// already stamped keep their own). Nil sink or empty trace returns the
// sink unchanged, preserving the nil-sink fast path at emission sites.
func WithTrace(sink Sink, trace string) Sink {
	if sink == nil || trace == "" {
		return sink
	}
	return traceSink{sink: sink, trace: trace}
}

// AnnounceTrace emits the trace_open header event identifying source
// as the process writing to sink, with the current absolute time. Call
// it immediately after opening an NDJSON sink, so "epoch_unix" aligns
// with the sink's t=0 to within scheduling noise.
func AnnounceTrace(sink Sink, source string) {
	Emit(sink, Event{Type: EventTraceOpen, Name: source, Fields: map[string]any{
		"epoch_unix": float64(time.Now().UnixNano()) / 1e9,
		"pid":        os.Getpid(),
	}})
}
