package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestFlagsOnRegistersBundle(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	cfg := FlagsOn(fs)
	if err := fs.Parse([]string{"-trace", "t.ndjson", "-v", "-cpuprofile", "p.out", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace != "t.ndjson" || !cfg.Verbose || cfg.CPUProfile != "p.out" {
		t.Fatalf("parsed config %+v", cfg)
	}
	if cfg.Workers != 3 {
		t.Fatalf("parsed workers %d, want 3", cfg.Workers)
	}
}

func TestFlagsWorkersDefaultsToNumCPU(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	cfg := FlagsOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != runtime.NumCPU() {
		t.Fatalf("default workers %d, want NumCPU %d", cfg.Workers, runtime.NumCPU())
	}
}

func TestInertRuntimeHasNilSink(t *testing.T) {
	// Regression: Start once wrapped the nil *NDJSONSink in a non-nil
	// Sink interface, so emitting through the "inert" runtime crashed.
	rt, err := (&Config{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Sink() != nil {
		t.Fatalf("inert runtime sink %#v, want nil", rt.Sink())
	}
	// Emitting through spans/Close on the inert runtime must be no-ops.
	span := rt.Span("x")
	span.Add("n", 1)
	span.End()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeTraceLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	rt, err := (&Config{Trace: path}).Start()
	if err != nil {
		t.Fatal(err)
	}
	span := rt.Span("job")
	span.Add("items", 3)
	span.End()
	Default().Counter("flags_test.marker").Add(1)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines, want span_start+span_end+counters", len(lines))
	}
	sawCounters := false
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		if m["type"] == EventCounters && m["name"] == "registry" {
			sawCounters = true
			if _, ok := m["flags_test.marker"]; !ok {
				t.Fatalf("registry snapshot missing marker: %v", m)
			}
		}
	}
	if !sawCounters {
		t.Fatal("Close did not emit the registry counters snapshot")
	}
}

func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				lines = append(lines, data[start:i])
			}
			start = i + 1
		}
	}
	return lines
}
