package obs

import (
	"sync"
	"testing"
)

// recordSink captures events for assertions.
type recordSink struct {
	mu     sync.Mutex
	events []Event
}

func (r *recordSink) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recordSink) byType(typ string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, ev := range r.events {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func TestSpanHierarchyAndCounters(t *testing.T) {
	rec := &recordSink{}
	root := NewSpan(rec, "run")
	child := root.Child("faultsim")
	child.Add("vectors", 100)
	child.Add("vectors", 24)
	child.Event(EventProgress, map[string]any{"done": 100, "total": 124})
	child.End()
	child.End() // idempotent
	root.End()

	starts := rec.byType(EventSpanStart)
	if len(starts) != 2 || starts[0].Name != "run" || starts[1].Name != "run/faultsim" {
		t.Fatalf("span_start events: %+v", starts)
	}
	ends := rec.byType(EventSpanEnd)
	if len(ends) != 2 {
		t.Fatalf("span_end count %d (double End must emit once)", len(ends))
	}
	if ends[0].Name != "run/faultsim" {
		t.Fatalf("child must end first, got %q", ends[0].Name)
	}
	if got := ends[0].Fields["vectors"]; got != int64(124) {
		t.Fatalf("counter on span_end = %v", got)
	}
	if _, ok := ends[0].Fields["seconds"].(float64); !ok {
		t.Fatalf("span_end missing seconds: %+v", ends[0].Fields)
	}
	if len(rec.byType(EventProgress)) != 1 {
		t.Fatal("progress event lost")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.Add("x", 1)
	s.Event(EventPhase, nil)
	s.EventNamed(EventPhase, "y", nil)
	s.End()
	if s.Child("c") != nil {
		t.Fatal("nil span child must be nil")
	}
	if NewSpan(nil, "x") != nil {
		t.Fatal("nil sink must give nil span")
	}
	if s.Sink() != nil || s.Name() != "" || s.Elapsed() != 0 {
		t.Fatal("nil span accessors")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
				r.Add("cold", 1)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap["hot"] != 8000 || snap["cold"] != 8000 {
		t.Fatalf("snapshot %v", snap)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "cold" || got[1] != "hot" {
		t.Fatalf("names %v", got)
	}
	r.Reset()
	if r.Counter("hot").Load() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCombine(t *testing.T) {
	if Combine(nil, nil) != nil {
		t.Fatal("all-nil combine must be nil")
	}
	rec := &recordSink{}
	if s := Combine(nil, rec); s != Sink(rec) {
		t.Fatal("single sink must pass through unchanged")
	}
	rec2 := &recordSink{}
	multi := Combine(rec, rec2)
	multi.Emit(Event{Type: EventSummary, Name: "x"})
	if len(rec.events) != 1 || len(rec2.events) != 1 {
		t.Fatal("multi sink did not fan out")
	}
	// Emit helper tolerates nil.
	Emit(nil, Event{})
	Emit(rec, Event{Type: EventPhase})
	if len(rec.events) != 2 {
		t.Fatal("Emit helper")
	}
}
