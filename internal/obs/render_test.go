package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRendererRateAndETA(t *testing.T) {
	var buf bytes.Buffer
	r := NewRenderer(&buf)
	r.SetMinPeriod(0)
	fake := time.Now()
	r.now = func() time.Time { return fake }

	r.Emit(Event{Type: EventProgress, Name: "faultsim", Fields: map[string]any{
		"done": 0, "total": 20000,
	}})
	fake = fake.Add(2 * time.Second)
	r.Emit(Event{Type: EventProgress, Name: "faultsim", Fields: map[string]any{
		"done": 10000, "total": 20000, "detected": 412,
	}})
	out := buf.String()
	if !strings.Contains(out, "50%") {
		t.Fatalf("missing percentage: %q", out)
	}
	if !strings.Contains(out, "5.0k/s") {
		t.Fatalf("missing rate: %q", out)
	}
	if !strings.Contains(out, "ETA 2s") {
		t.Fatalf("missing ETA: %q", out)
	}
	if !strings.Contains(out, "detected 412") {
		t.Fatalf("missing extras: %q", out)
	}
}

func TestRendererThrottles(t *testing.T) {
	var buf bytes.Buffer
	r := NewRenderer(&buf)
	fake := time.Now()
	r.now = func() time.Time { return fake }
	r.SetMinPeriod(time.Second)

	for i := 0; i < 50; i++ {
		fake = fake.Add(10 * time.Millisecond) // 100 Hz event stream
		r.Emit(Event{Type: EventSegment, Name: "sim", Fields: map[string]any{"done": i}})
	}
	// 500 ms of 100 Hz events through a 1 Hz throttle: only the first
	// paint (throttle window starts empty) may appear.
	if got := strings.Count(buf.String(), "\r"); got > 1 {
		t.Fatalf("throttle let %d paints through in 500ms", got)
	}
}

func TestRendererFinalAndSummaryLines(t *testing.T) {
	var buf bytes.Buffer
	r := NewRenderer(&buf)
	r.SetMinPeriod(time.Hour) // final events must bypass the throttle
	r.Emit(Event{Type: EventProgress, Name: "sim", Fields: map[string]any{"done": 100, "total": 100}})
	r.Emit(Event{Type: EventSpanEnd, Name: "sim", Fields: map[string]any{"seconds": 1.5, "vectors": int64(9)}})
	r.Emit(Event{Type: EventSummary, Name: "sim", Fields: map[string]any{"coverage": 0.97}})
	out := buf.String()
	if !strings.Contains(out, "100%") {
		t.Fatalf("final progress suppressed: %q", out)
	}
	if !strings.Contains(out, "done in 1.5s") || !strings.Contains(out, "vectors=9") {
		t.Fatalf("span_end line: %q", out)
	}
	if !strings.Contains(out, "coverage=0.97") {
		t.Fatalf("summary line: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("output must end with newline: %q", out)
	}
}
