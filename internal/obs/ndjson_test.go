package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestNDJSONGolden locks the NDJSON wire format: one JSON object per
// line, stable key order, reserved keys t/type/name always present.
func TestNDJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	fake := sink.epoch
	sink.now = func() time.Time { fake = fake.Add(250 * time.Millisecond); return fake }

	sink.Emit(Event{Type: EventSpanStart, Name: "faultsim"})
	sink.Emit(Event{Type: EventSegment, Name: "faultsim", Fields: map[string]any{
		"done": 1024, "total": 4096, "detected": 310, "remaining": 205, "coverage": 0.6019,
	}})
	sink.Emit(Event{T: 1.5, Type: EventSummary, Name: "faultsim", Fields: map[string]any{
		"cycles": 4096, "faults": 515, "detected": 488, "coverage": 0.9476, "interrupted": false,
	}})
	sink.Emit(Event{T: 1.75, Type: EventCounters, Name: "registry", Fields: map[string]any{
		"faultsim.vectors": int64(4096), "podem.backtracks": int64(0),
	}})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("NDJSON output drifted from golden:\ngot:\n%swant:\n%s", got, want)
	}

	// Independently of the byte-exact golden, every line must be a
	// standalone JSON object with the reserved schema keys.
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
		for _, key := range []string{"t", "type", "name"} {
			if _, ok := obj[key]; !ok {
				t.Fatalf("line %d missing reserved key %q: %s", i+1, key, line)
			}
		}
		if _, ok := obj["t"].(float64); !ok {
			t.Fatalf("line %d: t is not a number", i+1)
		}
	}
}

func TestNDJSONStampsTime(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	fake := sink.epoch
	sink.now = func() time.Time { fake = fake.Add(2 * time.Second); return fake }
	sink.Emit(Event{Type: EventPhase, Name: "x"})
	sink.Flush()
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["t"].(float64) != 2 {
		t.Fatalf("auto-stamped t = %v, want 2", obj["t"])
	}
}
