package obs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Config is the shared observability-and-parallelism flag bundle every
// cmd/* tool registers: -trace (NDJSON event file), -v (human progress
// renderer), -cpuprofile (pprof capture of the hot loops) and -workers
// (fault-simulation shard count consumed by internal/engine).
type Config struct {
	Trace      string
	Verbose    bool
	CPUProfile string
	Workers    int
	// Source names this process in the trace_open header of its NDJSON
	// trace ("sbstd", a worker ID). Defaults to the binary name.
	Source string
}

// Flags registers the bundle on the default flag set (call before
// flag.Parse).
func Flags() *Config { return FlagsOn(flag.CommandLine) }

// FlagsOn registers the bundle on an explicit flag set.
func FlagsOn(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.Trace, "trace", "", "write an NDJSON event trace to this file")
	fs.BoolVar(&c.Verbose, "v", false, "render live progress (rate/ETA) to stderr")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.IntVar(&c.Workers, "workers", runtime.NumCPU(),
		"parallel fault-simulation shards (1 = exact serial path)")
	return c
}

// Runtime is a started observability configuration: the composite sink
// to hand to instrumented layers, the open trace file and the running
// CPU profile. Close flushes and stops everything and emits a final
// counters snapshot of the default registry. A nil *Runtime is inert.
type Runtime struct {
	sink     Sink
	ndjson   *NDJSONSink
	traceF   *os.File
	profF    *os.File
	renderer *Renderer
}

// Start opens the configured sinks and starts CPU profiling. It always
// returns a usable (possibly inert) Runtime on success.
func (c *Config) Start() (*Runtime, error) {
	rt := &Runtime{}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: create trace: %w", err)
		}
		rt.traceF = f
		rt.ndjson = NewNDJSONSink(f)
		source := c.Source
		if source == "" {
			source = fmt.Sprintf("%s-%d", filepath.Base(os.Args[0]), os.Getpid())
		}
		AnnounceTrace(rt.ndjson, source)
	}
	if c.Verbose {
		rt.renderer = NewRenderer(os.Stderr)
	}
	var sinks []Sink
	if rt.ndjson != nil {
		sinks = append(sinks, rt.ndjson)
	}
	if rt.renderer != nil {
		sinks = append(sinks, rt.renderer)
	}
	rt.sink = Combine(sinks...)
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("obs: create cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			rt.Close()
			return nil, fmt.Errorf("obs: start cpuprofile: %w", err)
		}
		rt.profF = f
	}
	return rt, nil
}

// MustStart is Start, exiting the process on error (command-line use).
func (c *Config) MustStart() *Runtime {
	rt, err := c.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rt
}

// Sink returns the composite event sink (nil when neither -trace nor -v
// was given, so instrumented layers skip event construction entirely).
func (r *Runtime) Sink() Sink {
	if r == nil {
		return nil
	}
	return r.sink
}

// Span opens a root span on the runtime's sink (nil span when inert).
func (r *Runtime) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return NewSpan(r.sink, name)
}

// Flush drains the NDJSON trace buffer to disk without closing
// anything. Daemons call it the moment a drain begins, so a process
// killed mid-shutdown (or mid-lease) has already persisted its tail
// events. Safe on a nil or traceless runtime.
func (r *Runtime) Flush() error {
	if r == nil || r.ndjson == nil {
		return nil
	}
	return r.ndjson.Flush()
}

// Close emits a final default-registry counters snapshot, flushes the
// trace, and stops CPU profiling. Safe on a nil runtime and idempotent
// for the profile (pprof tolerates a single stop).
func (r *Runtime) Close() error {
	if r == nil {
		return nil
	}
	if r.sink != nil {
		if snap := Default().Snapshot(); len(snap) > 0 {
			fields := make(map[string]any, len(snap))
			for k, v := range snap {
				fields[k] = v
			}
			r.sink.Emit(Event{Type: EventCounters, Name: "registry", Fields: fields})
		}
	}
	var err error
	if r.ndjson != nil {
		err = r.ndjson.Flush()
	}
	if r.traceF != nil {
		if cerr := r.traceF.Close(); err == nil {
			err = cerr
		}
		r.traceF = nil
	}
	if r.profF != nil {
		pprof.StopCPUProfile()
		if cerr := r.profF.Close(); err == nil {
			err = cerr
		}
		r.profF = nil
	}
	return err
}
