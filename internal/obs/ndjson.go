package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// NDJSONSink serializes events as newline-delimited JSON: exactly one
// JSON object per line, flat key space, with "t" (seconds since the
// sink was opened), "type" and "name" always present. encoding/json
// sorts map keys, so output is deterministic for a given event stream
// up to the timestamps.
type NDJSONSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	epoch time.Time
	// now is the clock (overridable in tests for golden output).
	now func() time.Time
}

// NewNDJSONSink wraps a writer. Call Flush (or Runtime.Close) before
// the process exits to drain the buffer.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: bufio.NewWriter(w), epoch: time.Now(), now: time.Now}
}

// Emit writes one event as a JSON line. Events with T == 0 are stamped
// with the time since the sink was opened. Encoding errors are silently
// dropped — telemetry must never fail the run it observes.
func (s *NDJSONSink) Emit(ev Event) {
	obj := make(map[string]any, len(ev.Fields)+3)
	for k, v := range ev.Fields {
		obj[k] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := ev.T
	if t == 0 {
		t = s.now().Sub(s.epoch).Seconds()
	}
	obj["t"] = t
	obj["type"] = ev.Type
	obj["name"] = ev.Name
	if ev.Trace != "" {
		obj["trace"] = ev.Trace
	}
	line, err := json.Marshal(obj)
	if err != nil {
		return
	}
	s.w.Write(line)
	s.w.WriteByte('\n')
}

// Flush drains the internal buffer to the underlying writer.
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}
