package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateMetricsGolden = flag.Bool("update-metrics-golden", false,
	"rewrite testdata/metrics.golden from current exposition output")

// buildExpositionRegistry populates a registry with one of everything
// the exposition writer renders: a labeled counter family, a gauge, a
// histogram with two children, escaping-hostile label values and help
// text, a flat legacy counter, and a name needing sanitization.
func buildExpositionRegistry() *Registry {
	r := NewRegistry()

	events := r.CounterFamily("sbst_lease_events_total", "Lease lifecycle events, by event.", "event")
	events.Counter("granted").Add(7)
	events.Counter("expired").Add(2)

	depth := r.GaugeFamily("sbst_queue_jobs", "Jobs in the queue, by state.", "state")
	depth.Gauge("queued").Set(3)
	depth.Gauge("running").Set(1.5)

	hb := r.HistogramFamily("sbst_heartbeat_gap_seconds",
		"Observed gap between worker heartbeats.", []float64{0.1, 0.5, 2.5}, "job")
	h := hb.Histogram("job-0001")
	for _, v := range []float64{0.05, 0.3, 0.3, 1.0, 9.9} {
		h.Observe(v)
	}
	hb.Histogram("job-0002").Observe(0.2)

	esc := r.GaugeFamily("sbst_escape_check", `Help with backslash \ and
newline.`, "path")
	esc.Gauge(`C:\tmp "quoted"` + "\nline2").Set(1)

	r.Counter("faultsim.gate_evals").Add(123456)
	r.Counter("9starts.with-digit").Add(1)
	return r
}

// TestPrometheusExpositionGolden pins the exact exposition bytes:
// stable family-then-flat ordering, label sorting, HELP/TYPE lines,
// histogram cumulative buckets, escaping, and name sanitization.
func TestPrometheusExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildExpositionRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateMetricsGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-metrics-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden output must also satisfy our own lint.
	if problems := LintExposition(got); len(problems) != 0 {
		t.Errorf("golden exposition fails lint: %v", problems)
	}
}

// TestExpositionLint is both the lint's own coverage and the CI
// exposition-format check: the live default registry (whatever the
// rest of the test binary registered) must produce lintable output.
func TestExpositionLint(t *testing.T) {
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(sb.String()); len(problems) != 0 {
		t.Errorf("default registry exposition fails lint: %v", problems)
	}

	bad := "# TYPE x wat\nx 1\n" + // unknown type
		"y{label=\"unterminated} 2\n" + // malformed sample
		"z 1\n# TYPE z counter\n" + // TYPE after samples
		"# TYPE w counter\n# TYPE w counter\n" // typed twice
	problems := LintExposition(bad)
	if len(problems) != 4 {
		t.Errorf("lint found %d problems in known-bad input, want 4: %v", len(problems), problems)
	}
}

// TestFamilyNilSafety: arity mismatches and wrong-type lookups return
// nil handles whose methods are no-ops — telemetry must never panic.
func TestFamilyNilSafety(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("c_total", "help", "a", "b")
	if got := f.Counter("only-one"); got != nil {
		t.Errorf("arity mismatch returned %v, want nil", got)
	}
	f.Counter("only-one").Add(1)     // no-op, must not panic
	f.Gauge("x", "y").Set(1)         // wrong type: nil gauge
	f.Histogram("x", "y").Observe(1) // wrong type: nil histogram
	if got := f.Counter("x", "y").Load(); got != 0 {
		t.Errorf("fresh counter = %d, want 0", got)
	}
	// Same-name re-registration returns the original family.
	if r.CounterFamily("c_total", "other help") != f {
		t.Error("re-registration did not return the existing family")
	}
}

// TestHistogramQuantile sanity-checks the interpolated estimate.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all samples in (1,2]
	}
	p50 := h.Quantile(0.5)
	if p50 <= 1 || p50 > 2 {
		t.Errorf("p50 = %v, want within owning bucket (1,2]", p50)
	}
	h.Observe(100) // overflow bucket clamps to the top bound
	if got := h.Quantile(1.0); got != 8 {
		t.Errorf("p100 with overflow sample = %v, want clamp to 8", got)
	}
}

// TestSetArmed: disarmed counters and histograms drop mutations.
func TestSetArmed(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("armed.check")
	h := r.HistogramFamily("armed_hist", "h", []float64{1}).Histogram()
	SetArmed(false)
	c.Add(5)
	h.Observe(0.5)
	SetArmed(true)
	if got := c.Load(); got != 0 {
		t.Errorf("disarmed counter advanced to %d", got)
	}
	if got := h.Count(); got != 0 {
		t.Errorf("disarmed histogram recorded %d samples", got)
	}
	c.Add(5)
	h.Observe(0.5)
	if c.Load() != 5 || h.Count() != 1 {
		t.Errorf("re-armed mutation lost: counter=%d hist=%d", c.Load(), h.Count())
	}
}

// TestRegistryConcurrentShards hammers one registry from many
// goroutines — the -race test for the labeled family path: concurrent
// child creation, counter adds, gauge CAS adds, and histogram observes
// interleaved with exposition renders and snapshots.
func TestRegistryConcurrentShards(t *testing.T) {
	r := NewRegistry()
	const shards, iters = 16, 500
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			label := string(rune('a' + shard%4))
			ctr := r.CounterFamily("shard_evals_total", "evals", "shard").Counter(label)
			g := r.GaugeFamily("shard_rate", "rate", "shard").Gauge(label)
			h := r.HistogramFamily("shard_seconds", "time", []float64{0.1, 1}, "shard").Histogram(label)
			for i := 0; i < iters; i++ {
				ctr.Add(1)
				g.Add(0.5)
				h.Observe(float64(i%3) * 0.2)
				r.Counter("shard.flat").Add(1)
			}
		}(s)
	}
	// Concurrent readers: exposition and snapshot while shards mutate.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()

	total := int64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.CounterFamily("shard_evals_total", "evals", "shard").Counter(l).Load()
	}
	if want := int64(shards * iters); total != want {
		t.Errorf("labeled counter total = %d, want %d", total, want)
	}
	if got := r.Counter("shard.flat").Load(); got != int64(shards*iters) {
		t.Errorf("flat counter = %d, want %d", got, shards*iters)
	}
	hTotal := int64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		hTotal += r.HistogramFamily("shard_seconds", "time", nil, "shard").Histogram(l).Count()
	}
	if want := int64(shards * iters); hTotal != want {
		t.Errorf("histogram sample total = %d, want %d", hTotal, want)
	}
}
