package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metrics.go promotes the registry from a flat counter table to typed
// metric families — counters, gauges and fixed-bucket histograms, each
// optionally labeled — with a Prometheus text-format exposition writer
// (format 0.0.4). The flat Counter namespace is unchanged and still
// exposed (as untyped samples), so the ~40 existing instrumentation
// sites keep working; new fleet-level metrics register families.
//
// The same nil-safety and hot-path discipline as the rest of the
// package applies: family children are cached handles (look them up
// once in a package variable, not per iteration), a nil child is a
// no-op, and SetArmed(false) turns every Add/Observe into a single
// atomic load so benchmarks can price the instrumentation itself.

// MetricType is a family's Prometheus type.
type MetricType string

// The family types the exposition writer understands.
const (
	MetricCounter   MetricType = "counter"
	MetricGauge     MetricType = "gauge"
	MetricHistogram MetricType = "histogram"
)

// DefBuckets are the default latency histogram bounds (seconds),
// spanning sub-millisecond heartbeats to multi-second stalls.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// disarmed gates Counter.Add and Histogram.Observe process-wide. The
// zero value (armed) is the default; the disarmed benchmark variant in
// internal/engine flips it to measure instrumentation overhead.
var disarmed atomic.Bool

// SetArmed enables (true, the default) or disables metric mutation.
// Disarmed, Counter.Add and Histogram.Observe return after one atomic
// load — the cost a hypothetical compiled-out build would still pay.
func SetArmed(on bool) { disarmed.Store(!on) }

// Armed reports whether metric mutation is enabled.
func Armed() bool { return !disarmed.Load() }

// Gauge is a float64 gauge handle. All methods are nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores an absolute value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by delta (CAS loop; gauges are cold-path).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram handle: per-bucket atomic
// counts plus a running sum, rendered in Prometheus cumulative form.
// All methods are nil-safe.
type Histogram struct {
	bounds []float64      // upper bounds, ascending, no +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || disarmed.Load() {
		return
	}
	// First bound >= v: Prometheus le semantics (bucket i counts v <= bound i).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the owning bucket — the usual fixed-bucket
// estimate, exact enough for a p99 health figure. Returns 0 on an
// empty histogram; samples in the +Inf overflow bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum+c) < target {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-float64(cum))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// reset zeroes the histogram (Registry.Reset).
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// child is one labeled instance of a family.
type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Family is one named metric family: a type, a help string, a label
// schema, and the labeled children created on demand. Child lookups
// are mutex-guarded — cache the returned handles.
type Family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*child
}

// Name returns the family's registered name.
func (f *Family) Name() string { return f.name }

// Type returns the family's metric type.
func (f *Family) Type() MetricType { return f.typ }

const labelSep = "\x1f"

// getChild returns (creating if needed) the child for the given label
// values, or nil on a label-arity mismatch — telemetry must never fail
// the run it observes, and every handle type is nil-safe.
func (f *Family) getChild(values []string) *child {
	if len(values) != len(f.labels) {
		return nil
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c == nil {
		c = &child{values: append([]string(nil), values...)}
		switch f.typ {
		case MetricCounter:
			c.counter = &Counter{}
		case MetricGauge:
			c.gauge = &Gauge{}
		case MetricHistogram:
			c.hist = newHistogram(f.bounds)
		}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter child for the given label values (one
// per declared label, in order). Nil — a safe no-op handle — on arity
// mismatch or on a non-counter family.
func (f *Family) Counter(values ...string) *Counter {
	if c := f.getChild(values); c != nil {
		return c.counter
	}
	return nil
}

// Gauge returns the gauge child for the given label values.
func (f *Family) Gauge(values ...string) *Gauge {
	if c := f.getChild(values); c != nil {
		return c.gauge
	}
	return nil
}

// Histogram returns the histogram child for the given label values.
func (f *Family) Histogram(values ...string) *Histogram {
	if c := f.getChild(values); c != nil {
		return c.hist
	}
	return nil
}

// family returns (creating if needed) a registered family. The first
// registration of a name pins its type, help, labels and buckets;
// later calls return the existing family unchanged.
func (r *Registry) family(name, help string, typ MetricType, bounds []float64, labels []string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*Family)
	}
	if f := r.families[name]; f != nil {
		return f
	}
	f := &Family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// CounterFamily registers (or returns) a labeled counter family.
func (r *Registry) CounterFamily(name, help string, labels ...string) *Family {
	return r.family(name, help, MetricCounter, nil, labels)
}

// GaugeFamily registers (or returns) a labeled gauge family.
func (r *Registry) GaugeFamily(name, help string, labels ...string) *Family {
	return r.family(name, help, MetricGauge, nil, labels)
}

// HistogramFamily registers (or returns) a labeled histogram family
// with the given upper bucket bounds (the +Inf bucket is implicit).
func (r *Registry) HistogramFamily(name, help string, buckets []float64, labels ...string) *Family {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.family(name, help, MetricHistogram, buckets, labels)
}

// sanitizeMetricName maps an internal dotted counter name onto the
// Prometheus charset [a-zA-Z0-9_:], prefixing names that would start
// with a digit.
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	for i, ch := range name {
		ok := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(ch >= '0' && ch <= '9')
		if ch >= '0' && ch <= '9' && i == 0 {
			sb.WriteByte('_')
		}
		if ok {
			sb.WriteRune(ch)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for a child, with extra appended
// (the histogram le label). Empty when there are no labels at all.
func labelString(names, values []string, extra ...string) string {
	var parts []string
	for i, n := range names {
		parts = append(parts, sanitizeMetricName(n)+`="`+escapeLabelValue(values[i])+`"`)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format 0.0.4: typed families first-class (HELP + TYPE +
// stable label-sorted samples, histograms in cumulative le form),
// legacy flat counters as untyped samples under their sanitized names.
// Output ordering is fully deterministic, so it can be golden-tested.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*Family, 0, len(r.families))
	taken := make(map[string]bool, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
		taken[sanitizeMetricName(f.name)] = true
	}
	type flat struct {
		name string
		val  int64
	}
	flats := make([]flat, 0, len(r.counters))
	for name, c := range r.counters {
		if n := sanitizeMetricName(name); !taken[n] {
			flats = append(flats, flat{n, c.Load()})
		}
	}
	r.mu.RUnlock()

	sort.Slice(fams, func(i, j int) bool {
		return sanitizeMetricName(fams[i].name) < sanitizeMetricName(fams[j].name)
	})
	sort.Slice(flats, func(i, j int) bool { return flats[i].name < flats[j].name })

	var sb strings.Builder
	for _, f := range fams {
		f.writePrometheus(&sb)
	}
	for _, fl := range flats {
		fmt.Fprintf(&sb, "# TYPE %s untyped\n%s %d\n", fl.name, fl.name, fl.val)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *Family) writePrometheus(sb *strings.Builder) {
	name := sanitizeMetricName(f.name)
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(f.help), name, f.typ)

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()

	for _, c := range children {
		switch f.typ {
		case MetricCounter:
			fmt.Fprintf(sb, "%s%s %d\n", name, labelString(f.labels, c.values), c.counter.Load())
		case MetricGauge:
			fmt.Fprintf(sb, "%s%s %s\n", name, labelString(f.labels, c.values), formatFloat(c.gauge.Load()))
		case MetricHistogram:
			cum := int64(0)
			for i, bound := range c.hist.bounds {
				cum += c.hist.counts[i].Load()
				le := fmt.Sprintf("le=%q", formatFloat(bound))
				fmt.Fprintf(sb, "%s_bucket%s %d\n", name, labelString(f.labels, c.values, le), cum)
			}
			fmt.Fprintf(sb, "%s_bucket%s %d\n", name, labelString(f.labels, c.values, `le="+Inf"`), c.hist.Count())
			fmt.Fprintf(sb, "%s_sum%s %s\n", name, labelString(f.labels, c.values), formatFloat(c.hist.Sum()))
			fmt.Fprintf(sb, "%s_count%s %d\n", name, labelString(f.labels, c.values), c.hist.Count())
		}
	}
}

// PrometheusHandler serves the registry as a scrape endpoint.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Exposition-format lint: the minimal structural checks CI runs against
// a live scrape (TestExpositionLint drives it against this process's
// registry; the workflow greps a running daemon's endpoint).
var (
	lintSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	lintMeta   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
)

// LintExposition checks text for exposition-format violations: every
// line must be a well-formed sample or a HELP/TYPE comment, each TYPE
// must name a known metric type and precede its samples, and no metric
// may be typed twice. It returns one message per violation.
func LintExposition(text string) []string {
	var problems []string
	typed := map[string]string{}
	seenSample := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE: %s", i+1, line))
				continue
			}
			name, typ := fields[2], fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, fmt.Sprintf("line %d: unknown metric type %q", i+1, typ))
			}
			if typed[name] != "" {
				problems = append(problems, fmt.Sprintf("line %d: %s typed twice", i+1, name))
			}
			if seenSample[name] {
				problems = append(problems, fmt.Sprintf("line %d: TYPE %s after its samples", i+1, name))
			}
			typed[name] = typ
		case strings.HasPrefix(line, "# HELP "):
			if !lintMeta.MatchString(line) {
				problems = append(problems, fmt.Sprintf("line %d: malformed HELP: %s", i+1, line))
			}
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal.
		default:
			if !lintSample.MatchString(line) {
				problems = append(problems, fmt.Sprintf("line %d: malformed sample: %s", i+1, line))
				continue
			}
			name := line
			if j := strings.IndexAny(name, "{ "); j >= 0 {
				name = name[:j]
			}
			seenSample[name] = true
			// Histogram series sample under the family's TYPE line.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
					seenSample[base] = true
				}
			}
		}
	}
	return problems
}
